// Package bisect implements the FLiT Bisect algorithms (paper §2.2–§2.5):
// Algorithm 1 (BisectAll/BisectOne) with its dynamic verification
// assertions, the BisectBiggest uniform-cost-search variant, and the
// hierarchical File-then-Symbol driver that searches real executables.
//
// The search operates on abstract items (file names or symbol names) through
// a user-supplied Test function mapping a set of items to a non-negative
// magnitude: 0 means no variability when exactly those items come from the
// variable compilation, positive means variability. Test executions are
// memoized — the paper's run counts assume the same linkage combination is
// never re-executed — and counted, since the number of program executions is
// the efficiency measure of the evaluation (Tables 2 and 4).
package bisect

import (
	"fmt"
	"sort"
	"strings"
)

// TestFn quantifies the variability observed when exactly the given items
// are taken from the variable compilation. It must be deterministic.
type TestFn func(items []string) (float64, error)

// Finding is one variability-inducing item with the magnitude it causes by
// itself (its singleton Test value).
type Finding struct {
	Item  string
	Value float64
}

// AssumptionError reports a violated search assumption: either Assumption 1
// (Unique Error) or Assumption 2 (Singleton Blame Site) failed a dynamic
// verification assertion, so the result set may contain false negatives.
type AssumptionError struct {
	Msg   string
	Items []string
}

func (e *AssumptionError) Error() string {
	if len(e.Items) == 0 {
		return "bisect: assumption violated: " + e.Msg
	}
	return fmt.Sprintf("bisect: assumption violated: %s (items %v)", e.Msg, e.Items)
}

// Searcher wraps a TestFn with memoization and execution counting.
type Searcher struct {
	fn    TestFn
	memo  map[string]float64
	execs int
}

// NewSearcher creates a Searcher for one bisect search. Execution counts
// accumulate across All/Biggest calls on the same Searcher.
func NewSearcher(fn TestFn) *Searcher {
	return &Searcher{fn: fn, memo: make(map[string]float64)}
}

// Execs returns how many distinct Test executions have run (memoized
// repeats are free, as in the paper's run accounting).
func (s *Searcher) Execs() int { return s.execs }

// Test evaluates the metric on a set of items, memoized.
func (s *Searcher) Test(items []string) (float64, error) {
	key := canonical(items)
	if v, ok := s.memo[key]; ok {
		return v, nil
	}
	s.execs++ // a crashed attempt still counts as a program execution
	v, err := s.fn(items)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("bisect: Test returned negative value %g for %v", v, items)
	}
	s.memo[key] = v
	return v, nil
}

func canonical(items []string) string {
	cp := append([]string(nil), items...)
	sort.Strings(cp)
	return strings.Join(cp, "\x00")
}

// All is procedure BisectAll of Algorithm 1: it finds every
// variability-inducing item, verifying the search assumptions dynamically.
// Findings are returned sorted by decreasing individual magnitude, the
// paper's "sorted by the most influential" ordering. The singleton values
// are free: BisectOne's base case already executed them.
func (s *Searcher) All(items []string) ([]Finding, error) {
	var found []Finding
	t := append([]string(nil), items...)
	for {
		v, err := s.Test(t)
		if err != nil {
			return found, err
		}
		if v == 0 {
			break
		}
		if len(t) == 0 {
			return found, &AssumptionError{
				Msg: "Test(∅) > 0: variability is not attributable to any searched item " +
					"(e.g. introduced by the link step)",
			}
		}
		g, next, err := s.one(t)
		if err != nil {
			return found, err
		}
		val, err := s.Test([]string{next})
		if err != nil {
			return found, err
		}
		found = append(found, Finding{Item: next, Value: val})
		t = subtract(t, g)
	}
	// Verification assertion (Algorithm 1, BisectAll line 8):
	// Test(items) must equal Test(found). Under Assumption 1 this proves
	// found == AV(items): no false negatives.
	vAll, err := s.Test(items)
	if err != nil {
		return found, err
	}
	vFound, err := s.Test(itemsOf(found))
	if err != nil {
		return found, err
	}
	if vAll != vFound {
		return found, &AssumptionError{
			Msg:   fmt.Sprintf("Test(items)=%g != Test(found)=%g; possible false negatives", vAll, vFound),
			Items: itemsOf(found),
		}
	}
	sort.SliceStable(found, func(i, j int) bool { return found[i].Value > found[j].Value })
	return found, nil
}

// one is procedure BisectOne of Algorithm 1. It returns the set of items
// that can safely be excluded from future searches (G ∪ ∆1 accumulated
// through the recursion) and the single found element.
func (s *Searcher) one(items []string) (exclude []string, next string, err error) {
	if len(items) == 1 {
		// Base-case assertion (Algorithm 1, BisectOne line 3): the
		// singleton must itself cause variability, or Assumption 2
		// (Singleton Blame Site) is violated.
		v, err := s.Test(items)
		if err != nil {
			return nil, "", err
		}
		if v == 0 {
			return nil, "", &AssumptionError{
				Msg:   "singleton does not reproduce variability: elements act only jointly",
				Items: items,
			}
		}
		return []string{items[0]}, items[0], nil
	}
	d1, d2 := items[:len(items)/2], items[len(items)/2:]
	v, err := s.Test(d1)
	if err != nil {
		return nil, "", err
	}
	if v > 0 {
		return s.one(d1)
	}
	g, next, err := s.one(d2)
	if err != nil {
		return nil, "", err
	}
	// Test(∆1) = 0, so ∆1 is excluded from future searches together with
	// whatever the recursion excluded (Algorithm 1, BisectOne line 10).
	// The halves alias the caller's slice, so build a fresh exclusion set.
	exclude = make([]string, 0, len(g)+len(d1))
	exclude = append(append(exclude, g...), d1...)
	return exclude, next, nil
}

func subtract(items, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, r := range remove {
		rm[r] = true
	}
	out := items[:0:0]
	for _, it := range items {
		if !rm[it] {
			out = append(out, it)
		}
	}
	return out
}

func itemsOf(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Item
	}
	return out
}
