package link

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/fp"
	"repro/internal/prog"
)

// fuzzPlanFrom assembles one build plan from free-form fuzz inputs: a
// one-file program, a compilation (optionally carrying an injection whose
// op byte and epsilon bits are fully attacker-chosen), one of the four
// plan shapes the drivers use, and an optional explicit link driver.
func fuzzPlanFrom(progName, file, sym, compiler, opt, sw, drv string,
	mode uint8, inj bool, epsBits uint64) Plan {
	p := prog.New(progName)
	p.AddFile(file, &prog.Symbol{Name: sym, Exported: true, Work: 1, FPOps: 2})
	c := comp.Compilation{Compiler: compiler, OptLevel: opt, Switches: sw}
	if inj {
		c = c.WithInjection(sym, fp.Injection{
			OpIndex: int(mode),
			Op:      fp.InjectOp(mode*7 + 43),
			Eps:     math.Float64frombits(epsBits),
		})
	}
	var plan Plan
	switch mode % 4 {
	case 0:
		plan = FullBuildPlan(p, c)
	case 1:
		plan = FileMixPlan(p, comp.Baseline(), c, []string{file})
	case 2:
		plan = SymbolMixPlan(p, comp.Baseline(), c, []string{sym})
	default:
		plan = FPICProbePlan(p, comp.Baseline(), c, file)
	}
	plan.Driver = drv
	return plan
}

// sameComp compares compilations with the epsilon of an injection compared
// as IEEE-754 bits: NaN payloads and signed zeros are distinct plan
// identities, exactly as the key renders them.
func sameComp(a, b comp.Compilation) bool {
	if a.Compiler != b.Compiler || a.OptLevel != b.OptLevel ||
		a.Switches != b.Switches || a.FPIC != b.FPIC {
		return false
	}
	if (a.Inject == nil) != (b.Inject == nil) {
		return false
	}
	if a.Inject == nil {
		return true
	}
	return a.Inject.Symbol == b.Inject.Symbol &&
		a.Inject.Inj.OpIndex == b.Inject.Inj.OpIndex &&
		a.Inject.Inj.Op == b.Inject.Inj.Op &&
		math.Float64bits(a.Inject.Inj.Eps) == math.Float64bits(b.Inject.Inj.Eps)
}

// samePlan is the semantic identity Plan.Key must be injective over:
// program name, baseline, resolved driver, and both override maps. Two
// different tuples may legitimately assemble the same plan (e.g. a full
// build and a file mix of the program's only file under the same
// compilation); those must share a key, everything else must not.
func samePlan(a, b Plan) bool {
	if a.Prog.Name != b.Prog.Name || !sameComp(a.Baseline, b.Baseline) {
		return false
	}
	da, db := a.Driver, b.Driver
	if da == "" {
		da = a.Baseline.Compiler
	}
	if db == "" {
		db = b.Baseline.Compiler
	}
	if da != db || len(a.FileComp) != len(b.FileComp) || len(a.SymbolComp) != len(b.SymbolComp) {
		return false
	}
	for f, c := range a.FileComp {
		o, ok := b.FileComp[f]
		if !ok || !sameComp(c, o) {
			return false
		}
	}
	for s, c := range a.SymbolComp {
		o, ok := b.SymbolComp[s]
		if !ok || !sameComp(c, o) {
			return false
		}
	}
	return true
}

// FuzzPlanKeyMatchesExecutableKey is the key-first safety net, in two
// halves. Equality: for any plan the drivers could assemble, Plan.Key —
// computed without linking — must equal the built Executable's Key, or a
// key-first lookup would miss entries the eager path recorded (silently
// re-executing) or, worse, hit a different plan's entry. Injectivity: two
// semantically distinct plans must never serialize to the same key, even
// with names and injection op bytes abusing the key format's structural
// characters ('|', '=', '%', NUL) — comp.KeyEscape and the bit-pattern
// epsilon rendering are what hold this.
func FuzzPlanKeyMatchesExecutableKey(f *testing.F) {
	f.Add("p", "f.cpp", "S", "g++", "-O2", "", "", uint8(0), false, uint64(0),
		"g++", "-O2", "", "", uint8(0), false, uint64(0))
	// Full build vs file mix of the only file under the same compilation:
	// different constructors, same plan, keys must agree.
	f.Add("p", "f.cpp", "S", "g++", "-O0", "", "", uint8(0), false, uint64(0),
		"g++", "-O0", "", "", uint8(1), false, uint64(0))
	// Structural-character abuse in every free-form field.
	f.Add("p|base=x", "f=1.cpp", "S%7C", "g++|", "-O2=3", "a|b", "icpc",
		uint8(2), false, uint64(0),
		"g++", "-O2", "", "", uint8(2), false, uint64(0))
	// Injections: epsilons differing only below three significant digits
	// (the old rounded rendering collided these), hostile op bytes, NaN
	// payloads, signed zero.
	f.Add("p", "f.cpp", "S", "clang++", "-O3", "-mavx2", "", uint8(0), true,
		math.Float64bits(0.1234567),
		"clang++", "-O3", "-mavx2", "", uint8(0), true, math.Float64bits(0.1234568))
	f.Add("p", "f.cpp", "S", "icpc", "-O1", "", "xlc++", uint8(3), true,
		math.Float64bits(math.NaN()),
		"icpc", "-O1", "", "xlc++", uint8(3), true, math.Float64bits(math.NaN())|1)
	f.Add("p", "f.cpp", "S", "g++", "-O2", "", "", uint8(2), true,
		math.Float64bits(0.0),
		"g++", "-O2", "", "", uint8(2), true, math.Float64bits(math.Copysign(0, -1)))
	// Explicit driver equal to the default vs defaulted: same plan.
	f.Add("p", "f.cpp", "S", "g++", "-O3", "-mfma", "g++", uint8(0), false, uint64(0),
		"g++", "-O3", "-mfma", "", uint8(0), false, uint64(0))
	f.Fuzz(func(t *testing.T,
		progName, file, sym string,
		comp1, opt1, sw1, drv1 string, mode1 uint8, inj1 bool, eps1 uint64,
		comp2, opt2, sw2, drv2 string, mode2 uint8, inj2 bool, eps2 uint64) {
		p1 := fuzzPlanFrom(progName, file, sym, comp1, opt1, sw1, drv1, mode1, inj1, eps1)
		p2 := fuzzPlanFrom(progName, file, sym, comp2, opt2, sw2, drv2, mode2, inj2, eps2)
		k1, k2 := p1.Key(), p2.Key()
		if samePlan(p1, p2) != (k1 == k2) {
			t.Fatalf("samePlan=%v but key equality=%v:\n%q\n%q",
				samePlan(p1, p2), k1 == k2, k1, k2)
		}
		for i, plan := range []Plan{p1, p2} {
			ex, err := Link(plan)
			if err != nil {
				// A hostile symbol mix can collide file and symbol names;
				// unbuildable plans have no executable key to match.
				continue
			}
			if got := ex.Key(); got != plan.Key() {
				t.Fatalf("plan %d: Executable.Key %q != Plan.Key %q", i, got, plan.Key())
			}
		}
	})
}
