package exec

import (
	"errors"
	"runtime"
	"testing"
)

// TestDoPanicGivesWaitersSentinelError: a computation that panics must
// hand every waiter blocked on its entry ErrComputePanicked — not a
// silently-memoized zero value with a nil error — while the panic itself
// still propagates to the caller that ran fn, and the key stays
// recomputable afterwards.
func TestDoPanicGivesWaitersSentinelError(t *testing.T) {
	c := NewCache[int]()
	started := make(chan struct{})
	release := make(chan struct{})
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		c.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started

	type res struct {
		v   int
		err error
	}
	waited := make(chan res, 1)
	go func() {
		v, err := c.Do("k", func() (int, error) {
			t.Error("waiter recomputed while the entry was in flight")
			return -1, nil
		})
		waited <- res{v, err}
	}()
	// The waiter increments the hit counter before blocking on the entry;
	// only then may the computation be allowed to panic.
	for {
		if h, _ := c.Stats(); h >= 1 {
			break
		}
		runtime.Gosched()
	}
	close(release)

	if p := <-panicked; p != "boom" {
		t.Fatalf("panic did not propagate to the computing caller: %v", p)
	}
	got := <-waited
	if !errors.Is(got.err, ErrComputePanicked) {
		t.Fatalf("waiter got (%d, %v), want ErrComputePanicked", got.v, got.err)
	}

	// The key was dropped, not poisoned: the next Do computes fresh.
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("recompute after panic = (%d, %v), want (7, nil)", v, err)
	}
	// And the panicked entry never leaked into the completed set.
	count := 0
	c.Each(func(key string, v int, err error) { count++ })
	if count != 1 {
		t.Fatalf("completed entries = %d, want 1 (the recomputed one)", count)
	}
}
