// Command flit is the reproduction's command-line interface: it runs the
// FLiT compilation matrix over the MFEM examples, root-causes variability
// with Bisect, and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	flit run [-test ExampleNN]              run the 244-compilation matrix
//	flit bisect -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
//	flit experiments <table1|figure4|figure5|figure6|table2|table3|
//	                  findings|motivation|table4|laghos-nan|table5|mpi|all>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/comp"
	"repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "bisect":
		err = cmdBisect(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  flit run [-test ExampleNN]
  flit bisect -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
  flit experiments <name|all>`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	test := fs.String("test", "", "restrict output to one test (e.g. Example05)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := experiments.MFEMResults()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-46s %-10s %-12s %s\n", "test", "compilation", "speedup", "compare", "class")
	for _, name := range res.TestNames() {
		if *test != "" && name != *test {
			continue
		}
		for _, rr := range res.SortedBySpeed(name) {
			class := "bitwise-equal"
			if rr.Variable() {
				class = "VARIABLE"
			}
			fmt.Printf("%-12s %-46s %-10.3f %-12.3g %s\n",
				name, rr.Comp, res.Speedup(rr), rr.CompareVal, class)
		}
	}
	return nil
}

func parseCompilation(s string) (comp.Compilation, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return comp.Compilation{}, fmt.Errorf("compilation %q: want 'compiler -Olevel [switches]'", s)
	}
	return comp.Compilation{
		Compiler: fields[0],
		OptLevel: fields[1],
		Switches: strings.Join(fields[2:], " "),
	}, nil
}

func cmdBisect(args []string) error {
	fs := flag.NewFlagSet("bisect", flag.ExitOnError)
	test := fs.String("test", "", "test name (e.g. Example13)")
	compStr := fs.String("comp", "", "variable compilation, e.g. 'g++ -O3 -mavx2 -mfma'")
	k := fs.Int("k", 0, "find only the top-k contributors (0 = all, with verification)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *test == "" || *compStr == "" {
		return fmt.Errorf("bisect requires -test and -comp")
	}
	variable, err := parseCompilation(*compStr)
	if err != nil {
		return err
	}
	wf := experiments.MFEMWorkflow()
	tc := wf.TestByName(*test)
	if tc == nil {
		return fmt.Errorf("unknown test %q (Example01..Example19)", *test)
	}
	report, err := wf.Bisect(tc, variable, *k)
	if err != nil {
		return err
	}
	if report.NoVariability {
		fmt.Println("no variability attributable to compiled files",
			"(it may come from the link step)")
		return nil
	}
	fmt.Printf("executions: %d\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Printf("file %-22s magnitude %-12.4g symbols: %s\n", ff.File, ff.Value, ff.Status)
		for _, sf := range ff.Symbols {
			fmt.Printf("    %-40s %.4g\n", sf.Item, sf.Value)
		}
	}
	return nil
}

func cmdExperiments(args []string) error {
	if len(args) == 0 {
		args = []string{"all"}
	}
	names := args
	if args[0] == "all" {
		names = []string{"table1", "figure4", "figure5", "figure6", "table3",
			"findings", "motivation", "table4", "laghos-nan", "table2", "table5", "mpi"}
	}
	for _, name := range names {
		fmt.Printf("=== %s ===\n", name)
		if err := runExperiment(name); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
	}
	return nil
}

func runExperiment(name string) error {
	switch name {
	case "table1":
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
	case "figure4":
		for _, ex := range []int{5, 9} {
			s, err := experiments.Figure4(ex)
			if err != nil {
				return err
			}
			fmt.Printf("%s: %d compilations\n", s.Example, len(s.Points))
			if s.HasEqual {
				fmt.Printf("  fastest bitwise equal: %-40s speedup %.3f\n",
					s.FastestEqual.Comp, s.FastestEqual.Speedup)
			}
			if s.HasVariable {
				fmt.Printf("  fastest variable:      %-40s speedup %.3f  variability %.3g\n",
					s.FastestVariable.Comp, s.FastestVariable.Speedup, s.FastestVariable.Error)
			}
		}
	case "figure5":
		rows, err := experiments.Figure5()
		if err != nil {
			return err
		}
		repro := 0
		fmt.Printf("%-8s %-10s %-10s %-10s %-12s %s\n",
			"example", "g++", "clang++", "icpc", "variable", "fastest-reproducible")
		for _, r := range rows {
			bar := func(c string) string {
				if v, ok := r.EqualByCompiler[c]; ok {
					return fmt.Sprintf("%.3f", v)
				}
				return "-"
			}
			va := "-"
			if r.HasVariable {
				va = fmt.Sprintf("%.3f", r.FastestVariable)
			}
			if r.FastestIsReproducible {
				repro++
			}
			fmt.Printf("%-8d %-10s %-10s %-10s %-12s %v\n", r.Example,
				bar(comp.GCC), bar(comp.Clang), bar(comp.ICPC), va, r.FastestIsReproducible)
		}
		fmt.Printf("%d of 19 examples fastest with a bitwise-reproducible compilation (paper: 14)\n", repro)
	case "figure6":
		rows, err := experiments.Figure6()
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-14s %-12s %-12s %s\n", "example", "# variable/244", "min err", "median err", "max err")
		for _, r := range rows {
			if r.VariableComps == 0 {
				fmt.Printf("%-8d %-14d (invariant)\n", r.Example, 0)
				continue
			}
			fmt.Printf("%-8d %-14d %-12.3g %-12.3g %.3g\n",
				r.Example, r.VariableComps, r.MinErr, r.MedianErr, r.MaxErr)
		}
	case "table2":
		rows, total, err := experiments.Table2(0)
		if err != nil {
			return err
		}
		fmt.Printf("variable (test, compilation) pairs bisected: %d\n", total)
		fmt.Print(experiments.RenderTable2(rows))
	case "table3":
		fmt.Printf("%-30s %-12s %s\n", "metric", "measured", "paper")
		for _, r := range experiments.Table3() {
			fmt.Printf("%-30s %-12.5g %.6g\n", r.Metric, r.Measured, r.Paper)
		}
	case "findings":
		fs, err := experiments.Findings()
		if err != nil {
			return err
		}
		for _, f := range fs {
			fmt.Printf("Example %d: max relative error %.3g, %d compilations examined\n",
				f.Example, f.MaxRelErr, len(f.Compilations))
			for _, fn := range f.Functions {
				fmt.Printf("    %s\n", fn)
			}
		}
	case "motivation":
		mo, err := experiments.RunMotivation()
		if err != nil {
			return err
		}
		fmt.Printf("xlc++ -O2: energy norm %.1f, %.1f s\n", mo.NormO2, mo.SecondsO2)
		fmt.Printf("xlc++ -O3: energy norm %.1f, %.1f s\n", mo.NormO3, mo.SecondsO3)
		fmt.Printf("relative difference %.1f%% (paper: 11.2%%), speedup %.2fx (paper: 2.42x)\n",
			100*mo.RelDiff, mo.SpeedupFactor)
	case "table4":
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable4(rows))
	case "laghos-nan":
		res, err := experiments.RunNaNBug()
		if err != nil {
			return err
		}
		fmt.Printf("executions: %d (paper: 45)\nsymbols:\n", res.Execs)
		for _, s := range res.Symbols {
			fmt.Printf("    %s\n", s)
		}
	case "table5":
		sum, err := experiments.Table5(1)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable5(sum))
	case "table5-sample":
		sum, err := experiments.Table5(13)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable5(sum))
	case "mpi":
		rows, err := experiments.MPIStudy(4, 3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderMPI(rows))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
