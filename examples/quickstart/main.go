// Quickstart: define a FLiT test case for your own numerical kernel, run it
// under the full compilation matrix, and root-cause any variability with
// Bisect — the paper's Figure 1 workflow end to end on a 30-line program.
//
// The quickstart also demonstrates the distributed workflow:
//
//	quickstart -shard 0/2 -shard-out s0.json   # machine 1
//	quickstart -shard 1/2 -shard-out s1.json   # machine 2
//	quickstart -merge s0.json,s1.json          # byte-identical to plain run
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/prog"
)

// Step 1: describe your "source tree". One file, two functions: a dot
// product kernel (hot: optimizers love it) and a driver.
func program() *prog.Program {
	p := prog.New("quickstart")
	p.AddFile("kernel.cpp",
		&prog.Symbol{Name: "DotKernel", Exported: true, Work: 4, FPOps: 4,
			Features: prog.Features{Reduction: true, MulAdd: true, Hot: true}},
		&prog.Symbol{Name: "Scale", Exported: true, Work: 1, FPOps: 1,
			Features: prog.Features{ShortExpr: true}},
	)
	p.AddFile("main.cpp",
		&prog.Symbol{Name: "main_quickstart", Exported: true, Work: 1, FPOps: 2,
			Callees: []string{"DotKernel", "Scale"}},
	)
	return p
}

// Step 2: write the FLiT test case — the paper's four-method protocol.
type myTest struct{ p *prog.Program }

func (t *myTest) Name() string               { return "Quickstart" }
func (t *myTest) Root() string               { return "main_quickstart" }
func (t *myTest) GetInputsPerRun() int       { return 1 }
func (t *myTest) GetDefaultInput() []float64 { return []float64{0.7} }

func (t *myTest) Run(input []float64, m *link.Machine) (flit.Result, error) {
	_, done := m.Fn("main_quickstart")
	defer done()
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Sin(input[0] + float64(i)*0.01)
	}
	envK, doneK := m.Fn("DotKernel")
	v := envK.Dot(xs, xs)
	doneK()
	envS, doneS := m.Fn("Scale")
	v = envS.Mul(v, 0.25)
	doneS()
	return flit.ScalarResult(v), nil
}

func (t *myTest) Compare(baseline, other flit.Result) float64 {
	return flit.L2Diff(baseline, other)
}

func main() {
	shardStr := flag.String("shard", "", `run one shard "i/N" of the matrix and write an artifact`)
	shardOut := flag.String("shard-out", "", "artifact file the -shard run writes")
	merge := flag.String("merge", "", "comma-separated shard artifacts to merge and replay")
	flag.Parse()
	if err := cli(*shardStr, *shardOut, *merge, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// cli dispatches between a plain run, one shard of a distributed run, and
// the merge replay — the same record/replay protocol `flit merge` uses.
func cli(shardStr, shardOut, merge string, w io.Writer) error {
	if merge != "" {
		if shardStr != "" || shardOut != "" {
			return fmt.Errorf("-merge cannot be combined with -shard/-shard-out")
		}
		cache := flit.NewCache()
		var arts []*flit.Artifact
		for _, path := range strings.Split(merge, ",") {
			a, err := flit.ReadArtifactFile(path)
			if err != nil {
				return err
			}
			arts = append(arts, a)
		}
		if err := flit.ValidateShardSet(arts); err != nil {
			return err
		}
		for _, a := range arts {
			if err := cache.Import(a); err != nil {
				return err
			}
		}
		// Replay the full workflow: every matrix evaluation is answered
		// from the merged cache, so the output is byte-identical to an
		// unsharded run.
		return runWith(w, exec.Shard{}, cache, 0)
	}
	shard, err := exec.ParseShard(shardStr)
	if err != nil {
		return err
	}
	// Any -shard request runs in artifact mode — including "0/1", the
	// degenerate single-shard set `flit merge` accepts as the N=1
	// partition.
	if shardStr != "" {
		if shardOut == "" {
			return fmt.Errorf("-shard requires -shard-out FILE")
		}
		cache := flit.NewCache()
		if err := runWith(io.Discard, shard, cache, 0); err != nil {
			return err
		}
		art := cache.Export(shard, []string{"quickstart"})
		if err := flit.WriteArtifactFile(art, shardOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "shard %s: %d runs, %d costs -> %s\n",
			shard, len(art.Runs), len(art.Costs), shardOut)
		return nil
	}
	return run(w)
}

func run(w io.Writer) error {
	return runWith(w, exec.Shard{}, flit.NewCache(), 0)
}

func runWith(w io.Writer, shard exec.Shard, cache *flit.Cache, workers int) error {
	p := program()
	// Step 3: pick the execution substrate — a worker pool fanning out the
	// matrix cells, a cache memoizing repeated build/run pairs, and
	// (optionally) this process's shard of a distributed run. Results are
	// bit-identical at any worker count, and bisect searches launched
	// through the workflow inherit pool and cache.
	wf := &core.Workflow{
		Suite: &flit.Suite{
			Prog:      p,
			Tests:     []flit.TestCase{&myTest{p: p}},
			Baseline:  comp.Baseline(),      // trusted: g++ -O0
			Reference: comp.PerfReference(), // speedups vs g++ -O2
			Pool:      exec.New(workers),
			Cache:     cache,
			Shard:     shard,
		},
		Matrix: comp.Matrix(), // all 244 compilations of the study
	}

	// Level 1 + 2: which compilations deviate, and what does speed cost?
	analysis, err := wf.Analyze()
	if err != nil {
		return err
	}
	rec := analysis.Recommendations()[0]
	fmt.Fprintf(w, "fastest bitwise-reproducible: %-40s speedup %.3f\n",
		rec.FastestEqual.Comp, rec.FastestEqualSpeedup)
	fmt.Fprintf(w, "fastest overall:              %-40s speedup %.3f (reproducible: %v)\n",
		rec.FastestAny.Comp, rec.FastestAnySpeedup, rec.FastestIsReproducible)

	variable := analysis.Results.VariableRuns()
	fmt.Fprintf(w, "variability-inducing compilations: %d of %d\n",
		len(variable), len(wf.Matrix))
	if len(variable) == 0 {
		return nil
	}

	// Level 3: root-cause one of them down to the function.
	target := variable[len(variable)-1].Comp
	fmt.Fprintf(w, "\nbisecting %s ...\n", target)
	report, err := wf.Bisect(wf.Suite.Tests[0], target, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d program executions\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Fprintf(w, "  file %-14s (magnitude %.3g, symbol search: %s)\n",
			ff.File, ff.Value, ff.Status)
		for _, sf := range ff.Symbols {
			fmt.Fprintf(w, "    -> %s (%.3g)\n", sf.Item, sf.Value)
		}
	}
	return nil
}
