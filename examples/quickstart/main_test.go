package main

import (
	"strings"
	"testing"
)

// TestQuickstartSmoke runs the whole quickstart workflow — matrix analysis,
// recommendation, bisect — and checks the narrative output is intact, so
// the example cannot silently rot.
func TestQuickstartSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fastest bitwise-reproducible:",
		"fastest overall:",
		"variability-inducing compilations:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The dot-product kernel is hot and contractible: some compilation
	// must perturb it, and bisect must blame the kernel file.
	if !strings.Contains(out, "bisecting") || !strings.Contains(out, "kernel.cpp") {
		t.Errorf("bisect did not run or did not blame kernel.cpp:\n%s", out)
	}
}
