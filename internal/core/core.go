// Package core implements the paper's multi-level analysis workflow
// (Figure 1): Level 1 determines which compilations induce variability,
// Level 2 analyzes the space of reproducibility versus performance and
// answers "is the fastest reproducible compilation sufficient?", and
// Level 3 root-causes variability to files and functions with the Bisect
// algorithms.
package core

import (
	"fmt"

	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
)

// Workflow binds a FLiT suite to a compilation matrix. The suite's Pool
// and Cache configure every level: the Level-1 matrix run directly, and
// the Level-3 searches launched through Bisect, which inherit them.
type Workflow struct {
	Suite  *flit.Suite
	Matrix []comp.Compilation
}

// Analysis is the outcome of workflow levels 1 and 2.
type Analysis struct {
	Results *flit.Results
}

// Analyze runs every test under every compilation (Level 1) and wraps the
// results for reproducibility/performance queries (Level 2).
func (w *Workflow) Analyze() (*Analysis, error) {
	res, err := w.Suite.RunMatrix(w.Matrix)
	if err != nil {
		return nil, fmt.Errorf("core: matrix run: %w", err)
	}
	return &Analysis{Results: res}, nil
}

// Recommendation answers the workflow's central question for one test:
// what is the fastest compilation that reproduces the baseline, how does it
// compare to the fastest overall, and is reproducibility free?
type Recommendation struct {
	Test string
	// FastestEqual is the fastest bitwise-reproducible compilation.
	FastestEqual flit.RunResult
	// FastestEqualSpeedup is its speedup over the reference (g++ -O2).
	FastestEqualSpeedup float64
	// FastestAny is the fastest compilation regardless of reproducibility.
	FastestAny        flit.RunResult
	FastestAnySpeedup float64
	// FastestIsReproducible reports whether no variability-inducing
	// compilation beats the fastest reproducible one — true for 14 of the
	// 19 MFEM examples in the paper.
	FastestIsReproducible bool
	// HasEqual is false when no tested compilation reproduced the baseline.
	HasEqual bool
}

// Recommendations evaluates the Level 2 decision for every test.
func (a *Analysis) Recommendations() []Recommendation {
	var out []Recommendation
	for _, test := range a.Results.TestNames() {
		r := Recommendation{Test: test}
		if eq, ok := a.Results.FastestEqual(test, ""); ok {
			r.FastestEqual = eq
			r.FastestEqualSpeedup = a.Results.Speedup(eq)
			r.HasEqual = true
		}
		va, vok := a.Results.FastestVariable(test, "")
		switch {
		case !vok:
			r.FastestAny = r.FastestEqual
			r.FastestAnySpeedup = r.FastestEqualSpeedup
			r.FastestIsReproducible = r.HasEqual
		case !r.HasEqual || va.Time < r.FastestEqual.Time:
			r.FastestAny = va
			r.FastestAnySpeedup = a.Results.Speedup(va)
			r.FastestIsReproducible = false
		default:
			r.FastestAny = r.FastestEqual
			r.FastestAnySpeedup = r.FastestEqualSpeedup
			r.FastestIsReproducible = true
		}
		out = append(out, r)
	}
	return out
}

// Bisect runs workflow Level 3: it root-causes the variability one test
// exhibits under one compilation down to files and functions. k > 0 uses
// BisectBiggest to find only the top-k contributors.
//
// The search is never sharded here, even when the suite is: callers that
// shard at a coarser level (e.g. Table 2's fan-out over whole searches)
// must not partition the inner search a second time, or some symbol
// searches would be owned by no shard at all. The standalone `flit bisect
// -shard` path, where the single search IS the job space, goes through
// BisectSharded instead.
func (w *Workflow) Bisect(test flit.TestCase, variable comp.Compilation, k int) (*bisect.Report, error) {
	return w.BisectSharded(test, variable, k, exec.Shard{})
}

// BisectSharded is Bisect with the per-file symbol searches of a full
// (k <= 0) run partitioned across shards — the distribution boundary for a
// standalone search, where the found files are the deterministic job index
// space. A sharded report exists only to fill the suite's cache for
// artifact export; `flit merge` replays the complete search.
func (w *Workflow) BisectSharded(test flit.TestCase, variable comp.Compilation, k int, shard exec.Shard) (*bisect.Report, error) {
	s := &bisect.Search{
		Prog:     w.Suite.Prog,
		Test:     test,
		Baseline: w.Suite.Baseline,
		Variable: variable,
		K:        k,
		Pool:     w.Suite.Pool,
		Cache:    w.Suite.Cache,
		Shard:    shard,
	}
	return s.Run()
}

// TestByName returns the suite's test case with the given name, or nil.
func (w *Workflow) TestByName(name string) flit.TestCase {
	for _, t := range w.Suite.Tests {
		if t.Name() == name {
			return t
		}
	}
	return nil
}
