// Package lulesh is a miniature Livermore Unstructured Lagrangian Explicit
// Shock Hydrodynamics proxy in the shape of the LULESH benchmark used for
// the paper's controlled injection study (§3.5): a staggered-grid explicit
// hydro step decomposed into the original code's function structure —
// nodal force/acceleration/velocity/position updates, element kinematics,
// hourglass control, monotonic Q, an EOS solve, and time constraints.
//
// The registry declares 1,094 static floating-point operations across the
// tree, the number of injection sites the paper enumerates; a site is one
// (function, static instruction) pair and every site is injected with each
// of the four OP' operations, giving the study's 4,376 runs. A few
// functions (the multi-region code paths) are not executed by this
// workload, so their injections are benign — one of the paper's
// "not measurable" categories.
package lulesh

import (
	"sync"

	"repro/internal/prog"
)

var (
	buildOnce sync.Once
	theProg   *prog.Program
)

// Program returns the static description of the mini-LULESH source tree.
func Program() *prog.Program {
	buildOnce.Do(func() { theProg = buildProgram() })
	return theProg
}

// TotalInjectionSites is the number of static FP instructions the paper's
// first LLVM pass finds in LULESH.
const TotalInjectionSites = 1094

func buildProgram() *prog.Program {
	p := prog.New("lulesh")
	p.AddFile("lulesh.cc",
		&prog.Symbol{Name: "main_lulesh", Exported: true, Work: 4, FPOps: 10, SLOC: 80,
			Features: prog.Features{ShortExpr: true},
			Callees:  []string{"TimeIncrement", "LagrangeLeapFrog"}},
		&prog.Symbol{Name: "TimeIncrement", Exported: true, Work: 2, FPOps: 8, SLOC: 24,
			Features: prog.Features{Division: true, Branch: true},
			Callees:  []string{"CalcTimeConstraintsForElems"}},
		&prog.Symbol{Name: "LagrangeLeapFrog", Exported: true, Work: 2, FPOps: 0, SLOC: 14,
			Callees: []string{"LagrangeNodal", "LagrangeElemental"}},
	)
	p.AddFile("lulesh-nodal.cc",
		&prog.Symbol{Name: "LagrangeNodal", Exported: true, Work: 3, FPOps: 6, SLOC: 22,
			Callees: []string{"CalcForceForNodes", "CalcAccelerationForNodes",
				"CalcVelocityForNodes", "CalcPositionForNodes"}},
		&prog.Symbol{Name: "CalcForceForNodes", Exported: true, Work: 5, FPOps: 12, SLOC: 26,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"IntegrateStressForElems", "CalcHourglassControlForElems"}},
		&prog.Symbol{Name: "CalcAccelerationForNodes", Exported: true, Work: 3, FPOps: 10, SLOC: 16,
			Features: prog.Features{Division: true}},
		&prog.Symbol{Name: "CalcVelocityForNodes", Exported: true, Work: 3, FPOps: 12, SLOC: 18,
			Features: prog.Features{MulAdd: true, Branch: true}},
		&prog.Symbol{Name: "CalcPositionForNodes", Exported: true, Work: 3, FPOps: 10, SLOC: 14,
			Features: prog.Features{MulAdd: true}},
	)
	p.AddFile("lulesh-elems.cc",
		&prog.Symbol{Name: "LagrangeElemental", Exported: true, Work: 3, FPOps: 6, SLOC: 20,
			Callees: []string{"CalcLagrangeElements", "CalcQForElems",
				"ApplyMaterialPropertiesForElems", "UpdateVolumesForElems"}},
		&prog.Symbol{Name: "CalcLagrangeElements", Exported: true, Work: 4, FPOps: 14, SLOC: 24,
			Features: prog.Features{MulAdd: true},
			Callees:  []string{"CalcKinematicsForElems"}},
		&prog.Symbol{Name: "CalcKinematicsForElems", Exported: false, Work: 6, FPOps: 47, SLOC: 52,
			Features: prog.Features{MulAdd: true, Division: true},
			Callees: []string{"CalcElemVolume", "CalcElemCharacteristicLength",
				"CalcElemShapeFunctionDerivatives"}},
		&prog.Symbol{Name: "CalcElemVolume", Exported: false, Work: 4, FPOps: 40, SLOC: 40,
			Features: prog.Features{MulAdd: true, Reduction: true}},
		&prog.Symbol{Name: "CalcElemCharacteristicLength", Exported: false, Work: 3, FPOps: 24, SLOC: 30,
			Features: prog.Features{SqrtLibm: true, Division: true}},
		&prog.Symbol{Name: "UpdateVolumesForElems", Exported: true, Work: 3, FPOps: 12, SLOC: 16,
			Features: prog.Features{Division: true}},
		&prog.Symbol{Name: "CalcElemShapeFunctionDerivatives", Exported: false, Work: 4, FPOps: 48, SLOC: 46,
			Features: prog.Features{MulAdd: true, Division: true}},
	)
	p.AddFile("lulesh-stress.cc",
		&prog.Symbol{Name: "IntegrateStressForElems", Exported: true, Work: 6, FPOps: 36, SLOC: 44,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"InitStressTermsForElems", "SumElemFaceNormal"}},
		&prog.Symbol{Name: "InitStressTermsForElems", Exported: false, Work: 2, FPOps: 16, SLOC: 18,
			Features: prog.Features{ShortExpr: true}},
		&prog.Symbol{Name: "SumElemFaceNormal", Exported: false, Work: 4, FPOps: 40, SLOC: 36,
			Features: prog.Features{MulAdd: true, Reduction: true}},
	)
	p.AddFile("lulesh-hourglass.cc",
		&prog.Symbol{Name: "CalcHourglassControlForElems", Exported: true, Work: 6, FPOps: 30, SLOC: 40,
			Features: prog.Features{MulAdd: true},
			Callees:  []string{"CalcFBHourglassForceForElems", "VoluDer"}},
		&prog.Symbol{Name: "CalcFBHourglassForceForElems", Exported: false, Work: 8, FPOps: 80, SLOC: 78,
			Features: prog.Features{Reduction: true, MulAdd: true, SqrtLibm: true}},
		&prog.Symbol{Name: "VoluDer", Exported: false, Work: 4, FPOps: 48, SLOC: 40,
			Features: prog.Features{MulAdd: true}},
	)
	p.AddFile("lulesh-q.cc",
		&prog.Symbol{Name: "CalcQForElems", Exported: true, Work: 4, FPOps: 10, SLOC: 26,
			Callees: []string{"CalcMonotonicQGradientsForElems", "CalcMonotonicQRegionForElems"}},
		&prog.Symbol{Name: "CalcMonotonicQGradientsForElems", Exported: false, Work: 6, FPOps: 60, SLOC: 58,
			Features: prog.Features{Division: true, MulAdd: true}},
		&prog.Symbol{Name: "CalcMonotonicQRegionForElems", Exported: false, Work: 6, FPOps: 70, SLOC: 66,
			Features: prog.Features{Branch: true, MulAdd: true, Division: true}},
	)
	p.AddFile("lulesh-eos.cc",
		&prog.Symbol{Name: "ApplyMaterialPropertiesForElems", Exported: true, Work: 4, FPOps: 12, SLOC: 24,
			Callees: []string{"EvalEOSForElems"}},
		&prog.Symbol{Name: "EvalEOSForElems", Exported: false, Work: 5, FPOps: 30, SLOC: 38,
			Features: prog.Features{ShortExpr: true},
			Callees:  []string{"CalcEnergyForElems", "CalcSoundSpeedForElems"}},
		&prog.Symbol{Name: "CalcEnergyForElems", Exported: false, Work: 7, FPOps: 90, SLOC: 84,
			Features: prog.Features{MulAdd: true, Branch: true, Division: true},
			Callees:  []string{"CalcPressureForElems"}},
		&prog.Symbol{Name: "CalcPressureForElems", Exported: false, Work: 5, FPOps: 50, SLOC: 40,
			Features: prog.Features{MulAdd: true, Branch: true}},
		&prog.Symbol{Name: "CalcSoundSpeedForElems", Exported: false, Work: 4, FPOps: 36, SLOC: 26,
			Features: prog.Features{SqrtLibm: true, Division: true}},
	)
	p.AddFile("lulesh-constraints.cc",
		&prog.Symbol{Name: "CalcTimeConstraintsForElems", Exported: true, Work: 2, FPOps: 8, SLOC: 18,
			Callees: []string{"CalcCourantConstraintForElems", "CalcHydroConstraintForElems"}},
		&prog.Symbol{Name: "CalcCourantConstraintForElems", Exported: false, Work: 3, FPOps: 24, SLOC: 26,
			Features: prog.Features{SqrtLibm: true, Division: true, Branch: true}},
		&prog.Symbol{Name: "CalcHydroConstraintForElems", Exported: false, Work: 3, FPOps: 20, SLOC: 22,
			Features: prog.Features{Division: true, Branch: true}},
	)
	// Multi-region and I/O paths not exercised by this workload: their
	// injection sites are benign ("not measurable" in Table 5).
	p.AddFile("lulesh-util.cc",
		&prog.Symbol{Name: "AreaFace", Exported: false, Work: 2, FPOps: 40, SLOC: 30,
			Features: prog.Features{MulAdd: true},
			Callees:  nil},
		&prog.Symbol{Name: "CombineDerivs", Exported: true, Work: 2, FPOps: 45, SLOC: 34,
			Features: prog.Features{Reduction: true},
			Callees:  []string{"AreaFace"}},
		&prog.Symbol{Name: "CalcElemNodeNormals", Exported: true, Work: 3, FPOps: 90, SLOC: 60,
			Features: prog.Features{MulAdd: true},
			Callees:  []string{"AreaFace"}},
	)
	if err := p.Validate(); err != nil {
		panic("lulesh: invalid program: " + err.Error())
	}
	st := p.Stats()
	if st.TotalFPOps != TotalInjectionSites {
		panic("lulesh: registry FP ops do not sum to the paper's 1,094 sites")
	}
	return p
}
