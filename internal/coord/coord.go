// Package coord is the campaign coordinator ("flitd"): the service that
// turns the shard/merge protocol from a hand-orchestrated workflow into a
// self-healing distributed one. A coordinator owns a *set* of campaigns
// over one shared artifact/store namespace — the natural deployment for
// FLiT-style studies, which are many small deterministic sweeps rather
// than one monolith. Each campaign is a recorded CLI command, an engine
// version, and an N-way sharding of the command's deterministic job
// space, keyed by a campaign ID derived from exactly those three
// coordinates; the coordinator hands out time-bounded *leases* on
// (campaign, shard) pairs to workers. Workers heartbeat to keep a lease
// alive, run their shard with the ordinary experiments drivers, and
// report the exported artifact back; the coordinator re-leases shards
// whose heartbeats stop (worker crash, stall, network partition), accepts
// duplicate completions idempotently (artifacts for the same shard are
// deterministic and self-validating, so last-writer-wins is safe), and
// journals every state change through the store's atomic-write helper so
// a coordinator restart recovers every campaign's leases and completions
// from disk. When a campaign's partition completes it runs `flit merge`'s
// complete-partition and engine-fence validation server-side, so a
// campaign is only reported done when the artifact set provably replays
// byte-identical.
//
// Multi-tenancy leans on the same robustness invariant as everything
// since PR 2/6/7: every shard artifact is a pure, self-describing
// function of (engine version, command, shard coordinates), and store
// keys are injective over the same coordinates. Two campaigns sharing
// one coordinator and one object store therefore cannot trade results —
// the shared-store safety story already made concurrent campaigns sound;
// this package gives them a scheduler. Scheduling state is mutated only
// by scheduling calls: Lease reclaims expired leases, Status and
// Campaigns are pure reads (an operator polling status during a
// heartbeat gap must never strand the worker that the heartbeat revival
// path was designed to save).
package coord

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/flit"
	"repro/internal/store"
)

// JournalVersion is the on-disk format version of the coordinator
// journal. Version 3 adds failure containment (per-shard attempt
// counts, failure reports, quarantine); version 2 (multi-tenant, PR 9)
// and version 1 (one campaign per coordinator, PR 8) migrate on
// recovery.
const JournalVersion = 3

// journalName is the journal file at the root of a coordinator directory.
const journalName = "coord.json"

// artifactsDir holds the completed shard artifacts, one subdirectory per
// campaign ID, one file per shard index.
const artifactsDir = "artifacts"

// ErrLeaseLost is the terminal answer to a heartbeat, release, or
// completion whose lease is no longer the shard's current one: the
// coordinator expired it and may already have promised the shard to
// another worker. A worker receiving it abandons the shard cleanly — the
// run results it computed are already in the shared store, so the new
// owner's run replays them as warm hits.
var ErrLeaseLost = errors.New("coord: lease lost (expired or superseded)")

// ErrNoCampaign answers any campaign-scoped call naming an ID the
// coordinator does not hold — never submitted, or retired by GC. The
// HTTP layer renders it 404; a worker skips the campaign and re-lists.
var ErrNoCampaign = errors.New("coord: no such campaign")

// badRequest marks an error caused by the caller's input (a malformed or
// mismatched artifact, out-of-range shard coordinates), so the HTTP layer
// can answer 400 instead of blaming the server.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// IsBadRequest reports whether err is the caller's fault.
func IsBadRequest(err error) bool {
	var b badRequest
	return errors.As(err, &b)
}

// Spec describes one campaign: the canonical recorded command (the same
// []string shard artifacts record for `flit merge`), the engine version
// every participant must share, and the shard count. MaxAttempts is the
// campaign's shard attempt budget (0 takes the coordinator's default) —
// it is operational tuning, not identity, so it is deliberately NOT part
// of CampaignID: re-submitting a held spec with a different budget names
// the existing campaign and keeps its original budget.
type Spec struct {
	Engine      string   `json:"engine"`
	Command     []string `json:"command"`
	Shards      int      `json:"shards"`
	MaxAttempts int      `json:"max_attempts,omitempty"`
}

// CampaignID derives a campaign's identity from its spec: a short hex
// digest of (engine, command, shard count) with NUL separators, so the
// ID is injective over exactly the coordinates that make two shard
// artifacts interchangeable. The derivation is deterministic across
// processes — submitting the same spec twice names the same campaign
// (submission is idempotent), and a v1 journal migrates to the ID its
// campaign would have been submitted under.
func CampaignID(spec Spec) string {
	h := sha256.New()
	io.WriteString(h, spec.Engine)
	h.Write([]byte{0})
	for _, arg := range spec.Command {
		io.WriteString(h, arg)
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "%d", spec.Shards)
	return fmt.Sprintf("c%x", h.Sum(nil)[:8])
}

// Options tunes a coordinator. The zero value selects production-shaped
// defaults; tests shrink the TTL and inject a clock.
type Options struct {
	// LeaseTTL is how long a lease lives without a heartbeat (default 10s).
	// Each heartbeat extends the lease by a full TTL.
	LeaseTTL time.Duration
	// Engine is the engine version every campaign in this coordinator is
	// fenced to (default this build's flit.EngineVersion). A journal from
	// a different engine refuses to open — its artifacts are not
	// interchangeable with anything this build would schedule.
	Engine string
	// Now is the clock (default time.Now); tests inject a fake to drive
	// expiry deterministically.
	Now func() time.Time
	// MaxShardAttempts is the default per-shard attempt budget (default
	// 5): how many times a shard may be leased out — and come back failed,
	// crashed, or expired — before it is quarantined instead of re-leased.
	// A campaign's Spec.MaxAttempts overrides it per campaign.
	MaxShardAttempts int
}

// DefaultMaxShardAttempts is the attempt budget a zero Options selects.
const DefaultMaxShardAttempts = 5

func (o *Options) withDefaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Engine == "" {
		o.Engine = flit.EngineVersion
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.MaxShardAttempts <= 0 {
		o.MaxShardAttempts = DefaultMaxShardAttempts
	}
}

// Grant is one leased shard: everything a worker needs to run it and to
// keep the lease alive while doing so.
type Grant struct {
	Shard   int           `json:"shard"`
	Count   int           `json:"count"`
	Command []string      `json:"command"`
	LeaseID string        `json:"lease_id"`
	TTL     time.Duration `json:"-"`
}

// LeaseState classifies a lease request's outcome.
type LeaseState int

const (
	// Granted: the response carries a Grant.
	Granted LeaseState = iota
	// Wait: every remaining shard of the campaign is currently leased;
	// poll again (or try another campaign).
	Wait
	// Done: the campaign is complete; the worker moves to the next one.
	Done
	// Failed: the campaign is terminally failed — every shard not done is
	// quarantined, so there is nothing left to lease, ever. The worker
	// moves on exactly as for Done; the campaign's failure reports say why.
	Failed
)

// Failure-report bounds: a report is diagnostic, not an archive. The
// error line and excerpt are truncated on receipt, and each shard keeps
// only its most recent maxFailuresKept reports (the attempt counter is
// the authoritative total).
const (
	maxFailError    = 512
	maxFailExcerpt  = 2048
	maxFailuresKept = 8
)

// FailureReport is one worker-reported shard failure: who ran it, which
// attempt it was, the error, and a truncated excerpt of the evidence
// (stderr, a panic message and stack). Reports persist in the journal so
// a quarantined shard stays diagnosable across coordinator restarts.
type FailureReport struct {
	Worker  string `json:"worker"`
	Attempt int    `json:"attempt"`
	Error   string `json:"error"`
	Excerpt string `json:"excerpt,omitempty"`
	UnixMS  int64  `json:"unix_ms,omitempty"`
}

// truncate clamps a report's strings to their storage bounds.
func (f FailureReport) truncate() FailureReport {
	if len(f.Error) > maxFailError {
		f.Error = f.Error[:maxFailError] + "…"
	}
	if len(f.Excerpt) > maxFailExcerpt {
		// Keep the tail: panic stacks and stderr put the interesting part last.
		f.Excerpt = "…" + f.Excerpt[len(f.Excerpt)-maxFailExcerpt:]
	}
	return f
}

// shardState is one shard's scheduling state. At most one of done, an
// active lease, and quarantined holds at a time; a shard with none is
// available. attempts counts lease grants that were consumed — by a
// completion, a failure report, or an expiry; a voluntary release (the
// drain path hands back an untouched shard) refunds its grant.
type shardState struct {
	done        bool
	artifact    string // file name under the campaign's artifact dir, set when done
	leaseID     string
	worker      string
	expiry      time.Time
	attempts    int
	quarantined bool
	failures    []FailureReport
}

// recordFailure appends a report, keeping the newest maxFailuresKept.
func (s *shardState) recordFailure(f FailureReport) {
	s.failures = append(s.failures, f.truncate())
	if len(s.failures) > maxFailuresKept {
		s.failures = s.failures[len(s.failures)-maxFailuresKept:]
	}
}

// campaign is one tenancy: a spec, its per-shard lease table, its own
// lease-ID sequence and straggler counter, and its validation verdict.
type campaign struct {
	id          string
	spec        Spec
	shards      []shardState
	seq         int64 // lease-id counter, persisted so recovered IDs never collide
	releases    int64 // expired leases handed back to the pool (straggler metric)
	failReports int64 // failure reports recorded (includes synthesized expiry reports)
	finished    bool  // server-side merge validation has run
	valid       bool
	valErr      string
}

func (cp *campaign) doneCount() int {
	n := 0
	for i := range cp.shards {
		if cp.shards[i].done {
			n++
		}
	}
	return n
}

func (cp *campaign) complete() bool { return cp.doneCount() == len(cp.shards) }

// budget resolves the campaign's effective shard attempt budget.
func (cp *campaign) budget(coordinatorDefault int) int {
	if cp.spec.MaxAttempts > 0 {
		return cp.spec.MaxAttempts
	}
	return coordinatorDefault
}

// failed reports the terminal failure state: every shard is settled
// (done or quarantined), at least one by quarantine. A campaign with a
// live lease is not failed yet — that lease may still complete.
func (cp *campaign) failed() bool {
	quarantined := false
	for i := range cp.shards {
		s := &cp.shards[i]
		switch {
		case s.done:
		case s.quarantined:
			quarantined = true
		default:
			return false // available or leased: still schedulable
		}
	}
	return quarantined
}

// terminal reports whether the campaign can never change again under
// scheduling: complete or failed.
func (cp *campaign) terminal() bool { return cp.complete() || cp.failed() }

// quarantinedShards lists the quarantined shard indices in order.
func (cp *campaign) quarantinedShards() []int {
	var q []int
	for i := range cp.shards {
		if cp.shards[i].quarantined {
			q = append(q, i)
		}
	}
	return q
}

// failProblem renders why a failed campaign failed: the quarantined
// shard indices and each one's last recorded error — the message merge
// validation and the status views surface.
func (cp *campaign) failProblem() string {
	q := cp.quarantinedShards()
	if len(q) == 0 {
		return ""
	}
	parts := make([]string, 0, len(q))
	for _, i := range q {
		s := &cp.shards[i]
		last := "no failure report recorded"
		if n := len(s.failures); n > 0 {
			last = s.failures[n-1].Error
		}
		parts = append(parts, fmt.Sprintf("shard %d (%d attempts): %s", i, s.attempts, last))
	}
	return fmt.Sprintf("shards %v quarantined after exhausting their attempt budget — %s",
		q, strings.Join(parts, "; "))
}

// Coordinator is the multi-campaign state machine. All methods are safe
// for concurrent use; every mutation is journaled (atomic temp+rename)
// before it is acknowledged, so an acknowledged submission, lease, or
// completion survives a coordinator crash.
type Coordinator struct {
	dir    string
	engine string
	opts   Options

	mu        sync.Mutex
	order     []string             // campaign IDs in submission order
	campaigns map[string]*campaign // keyed by CampaignID(spec)
	done      chan struct{}        // closed when every submitted campaign is complete
	doneFired bool
}

// New opens (creating or recovering) the coordinator rooted at dir. A
// fresh directory starts empty — campaigns arrive through Submit. A
// directory holding a journal resumes every campaign in it exactly:
// done shards stay done, acknowledged leases keep their IDs. A journal
// from a different engine version or a newer journal format refuses to
// open; a version-1 (single-campaign) journal migrates to the
// multi-tenant format in place.
func New(dir string, opts Options) (*Coordinator, error) {
	opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, artifactsDir), 0o755); err != nil {
		return nil, fmt.Errorf("coord: opening %s: %w", dir, err)
	}
	c := &Coordinator{dir: dir, engine: opts.Engine, opts: opts,
		campaigns: make(map[string]*campaign), done: make(chan struct{})}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	switch {
	case os.IsNotExist(err):
		if err := c.journalLocked(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("coord: reading journal: %w", err)
	default:
		if err := c.recover(raw); err != nil {
			return nil, err
		}
	}
	for _, id := range c.order {
		if cp := c.campaigns[id]; cp.complete() {
			c.finishLocked(cp)
		}
	}
	// Deliberately no checkTerminalLocked here: a caller resuming a fully
	// completed journal usually submits fresh campaigns right after New,
	// and the done channel must not latch closed before those arrive.
	// Done() runs the check when the channel is first handed out.
	return c, nil
}

// Dir returns the coordinator's root directory.
func (c *Coordinator) Dir() string { return c.dir }

// Engine returns the engine version every campaign here is fenced to.
func (c *Coordinator) Engine() string { return c.engine }

// ArtifactDir returns the directory a campaign's completed shard
// artifacts land in.
func (c *Coordinator) ArtifactDir(campaign string) string {
	return filepath.Join(c.dir, artifactsDir, campaign)
}

// Done returns a channel closed once at least one campaign has been
// submitted and every submitted campaign has reached a terminal state —
// completed (with its server-side merge validation run) or failed (every
// remaining shard quarantined). Failed campaigns count deliberately: a
// `-exit-when-done` coordinator must drain on a dead tenancy, not spin
// on shards nobody can ever finish. It never re-opens: a campaign
// submitted after the channel closes does not re-arm it, so submissions
// should land before the last running campaign settles. The terminal
// check also runs here, so resuming a fully settled journal and then
// waiting on Done still fires — but only after any boot-time submissions
// have landed.
func (c *Coordinator) Done() <-chan struct{} {
	c.mu.Lock()
	c.checkTerminalLocked()
	c.mu.Unlock()
	return c.done
}

// Submit adds a campaign (idempotently) and returns its ID. The spec's
// engine defaults to the coordinator's and must match it; the command
// and shard count are required. Submitting a spec the coordinator
// already holds — same engine, command, and shard count, which is
// exactly what the ID hashes — returns the existing campaign with
// created=false, so a worker fleet's supervisor can re-submit on every
// start without double-scheduling anything.
func (c *Coordinator) Submit(spec Spec) (id string, created bool, err error) {
	if spec.Engine == "" {
		spec.Engine = c.engine
	}
	if spec.Engine != c.engine {
		return "", false, badRequest{fmt.Errorf("coord: campaign engine %q, coordinator is fenced to %q", spec.Engine, c.engine)}
	}
	if len(spec.Command) == 0 || spec.Shards < 1 {
		return "", false, badRequest{errors.New("coord: a campaign needs a command and a shard count >= 1")}
	}
	id = CampaignID(spec)
	c.mu.Lock()
	defer c.mu.Unlock()
	if cp, ok := c.campaigns[id]; ok {
		// The ID is a digest of the spec, so a held ID should mean an equal
		// spec; check anyway — scheduling against a colliding spec would
		// hand out leases for work nobody records.
		if cp.spec.Engine != spec.Engine || !equalCommand(cp.spec.Command, spec.Command) || cp.spec.Shards != spec.Shards {
			return "", false, fmt.Errorf("coord: campaign ID collision: %s already names %q as %d shards", id, CommandString(cp.spec.Command), cp.spec.Shards)
		}
		return id, false, nil
	}
	cp := &campaign{id: id, spec: spec, shards: make([]shardState, spec.Shards)}
	if err := os.MkdirAll(c.ArtifactDir(id), 0o755); err != nil {
		return "", false, fmt.Errorf("coord: creating artifact dir for %s: %w", id, err)
	}
	c.campaigns[id] = cp
	c.order = append(c.order, id)
	if err := c.journalLocked(); err != nil {
		delete(c.campaigns, id)
		c.order = c.order[:len(c.order)-1]
		return "", false, err
	}
	c.checkTerminalLocked()
	return id, true, nil
}

// byID resolves a campaign ID under mu.
func (c *Coordinator) byID(campaign string) (*campaign, error) {
	cp, ok := c.campaigns[campaign]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoCampaign, campaign)
	}
	return cp, nil
}

// Lease hands out the lowest-indexed available shard of the campaign.
// Expired leases are swept first — and only here: Lease is the one call
// that reclaims, so a crashed or stalled worker's shard is re-leased the
// moment another worker asks for work, while read paths (Status,
// Campaigns) never disturb an expired-but-revivable lease. A grant
// consumes one unit of the shard's attempt budget; quarantined shards
// are never granted, and a campaign with nothing but quarantined shards
// left answers Failed — the worker's signal to move on for good.
func (c *Coordinator) Lease(campaign, worker string) (Grant, LeaseState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := c.byID(campaign)
	if err != nil {
		return Grant{}, Wait, err
	}
	changed := c.sweepLocked(cp)
	if changed {
		c.checkTerminalLocked()
	}
	if cp.terminal() {
		state := Done
		if cp.failed() {
			state = Failed
		}
		if changed {
			if err := c.journalLocked(); err != nil {
				return Grant{}, Wait, err
			}
		}
		return Grant{}, state, nil
	}
	for i := range cp.shards {
		s := &cp.shards[i]
		if s.done || s.quarantined || s.leaseID != "" {
			continue
		}
		cp.seq++
		s.attempts++
		s.leaseID = fmt.Sprintf("L%d", cp.seq)
		s.worker = worker
		s.expiry = c.opts.Now().Add(c.opts.LeaseTTL)
		if err := c.journalLocked(); err != nil {
			return Grant{}, Wait, err
		}
		return Grant{Shard: i, Count: cp.spec.Shards, Command: cp.spec.Command,
			LeaseID: s.leaseID, TTL: c.opts.LeaseTTL}, Granted, nil
	}
	if changed {
		if err := c.journalLocked(); err != nil {
			return Grant{}, Wait, err
		}
	}
	return Grant{}, Wait, nil
}

// Heartbeat extends a live lease by a full TTL. A heartbeat on a lease
// that is past its expiry but still the shard's recorded one *renews* it —
// the shard was not promised to anyone else, so renewal cannot double-
// schedule and saves the work already in flight (a coordinator that was
// briefly down, or an operator's status poll landing in a heartbeat gap,
// must not strand the worker). A lease that was superseded or completed
// answers ErrLeaseLost.
func (c *Coordinator) Heartbeat(campaign, worker, leaseID string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := c.byID(campaign)
	if err != nil {
		return err
	}
	s, err := shardByLease(cp, leaseID, shard)
	if err != nil {
		return err
	}
	s.worker = worker
	s.expiry = c.opts.Now().Add(c.opts.LeaseTTL)
	return c.journalLocked()
}

// Release voluntarily returns a leased shard to the pool (the worker is
// draining). Releasing a lease that is already gone is not an error —
// release is the cleanup path and must be idempotent. The grant's
// attempt is refunded: a drained worker hands its shard back untouched,
// and an untouched handback must never eat into the quarantine budget
// (failures and expiries are what count attempts consumed).
func (c *Coordinator) Release(campaign, worker, leaseID string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := c.byID(campaign)
	if err != nil {
		return err
	}
	s, err := shardByLease(cp, leaseID, shard)
	if err != nil {
		return nil // already expired, superseded, or completed: nothing to release
	}
	s.leaseID, s.worker, s.expiry = "", "", time.Time{}
	if s.attempts > 0 {
		s.attempts--
	}
	return c.journalLocked()
}

// Fail records a worker-reported shard failure: the runner errored or
// panicked, deterministically enough that the worker's own local retries
// did not help. The lease must still be the shard's current one (a stale
// report answers ErrLeaseLost and is ignored — the shard belongs to
// someone else now); the report is recorded, the lease is released, and
// the shard returns to the pool — unless this attempt exhausted its
// budget, in which case it is quarantined: never leased again, its
// failure history preserved. A shard whose quarantine settles the last
// schedulable work of its campaign tips the campaign into the terminal
// Failed state.
//
// quarantined reports whether this failure quarantined the shard,
// campaignFailed whether it tipped the campaign terminal, and
// allTerminal whether every campaign the coordinator holds is now
// settled — the worker's signal to drain instead of polling a
// coordinator that `-exit-when-done` may already be shutting down.
func (c *Coordinator) Fail(campaign, worker, leaseID string, shard int, errText, excerpt string) (quarantined, campaignFailed, allTerminal bool, err error) {
	if strings.TrimSpace(errText) == "" {
		return false, false, false, badRequest{errors.New("coord: a failure report needs an error")}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := c.byID(campaign)
	if err != nil {
		return false, false, false, err
	}
	s, err := shardByLease(cp, leaseID, shard)
	if err != nil {
		return false, false, false, err
	}
	s.recordFailure(FailureReport{Worker: worker, Attempt: s.attempts,
		Error: errText, Excerpt: excerpt, UnixMS: c.opts.Now().UnixMilli()})
	cp.failReports++
	s.leaseID, s.worker, s.expiry = "", "", time.Time{}
	if s.attempts >= cp.budget(c.opts.MaxShardAttempts) {
		s.quarantined = true
	}
	if err := c.journalLocked(); err != nil {
		return false, false, false, err
	}
	c.checkTerminalLocked()
	return s.quarantined, cp.failed(), c.allTerminalLocked(), nil
}

// shardByLease resolves (leaseID, shard) to the shard state iff the lease
// is still the shard's current one.
func shardByLease(cp *campaign, leaseID string, shard int) (*shardState, error) {
	if shard < 0 || shard >= len(cp.shards) {
		return nil, badRequest{fmt.Errorf("coord: shard %d of a %d-shard campaign", shard, len(cp.shards))}
	}
	s := &cp.shards[shard]
	if s.done || leaseID == "" || s.leaseID != leaseID {
		return nil, ErrLeaseLost
	}
	return s, nil
}

// Complete records a finished shard: artifact is the worker's exported
// shard artifact, verbatim. The artifact must validate — engine fence,
// internal consistency, and shard coordinates matching the completed index
// — but the *lease* is deliberately not required to still be live:
// artifacts for the same shard are deterministic and self-validating, so a
// straggler completing after its lease was re-leased (or after another
// worker already completed the shard) is harmless, and accepting it makes
// duplicate completion a non-event instead of an error path. The bytes are
// stored as received (atomic write), so duplicate completions converge on
// identical files.
//
// campaignDone reports whether this completion finished the campaign,
// allDone whether every campaign the coordinator holds completed
// successfully, and allTerminal whether every campaign is settled
// (complete or failed) — what a worker needs to know before polling a
// coordinator that `-exit-when-done` may already be shutting down. A
// completion is accepted even for a quarantined shard: a real validated
// artifact trumps failure history (the late straggler finally made it),
// so the shard is marked done and its quarantine lifted — though a
// campaign already latched terminal stays latched for Done().
func (c *Coordinator) Complete(campaign, worker, leaseID string, shard int, artifact []byte) (campaignDone, allDone, allTerminal bool, err error) {
	c.mu.Lock()
	cp, err := c.byID(campaign)
	if err != nil {
		c.mu.Unlock()
		return false, false, false, err
	}
	spec := cp.spec
	c.mu.Unlock()

	if shard < 0 || shard >= spec.Shards {
		return false, false, false, badRequest{fmt.Errorf("coord: completion for shard %d of a %d-shard campaign", shard, spec.Shards)}
	}
	a, err := flit.ReadArtifact(bytes.NewReader(artifact))
	if err != nil {
		return false, false, false, badRequest{fmt.Errorf("coord: completion artifact: %w", err)}
	}
	if err := a.Check(); err != nil {
		return false, false, false, badRequest{fmt.Errorf("coord: completion artifact: %w", err)}
	}
	if a.Engine != spec.Engine {
		return false, false, false, badRequest{fmt.Errorf("coord: completion artifact from engine %q, campaign is %q", a.Engine, spec.Engine)}
	}
	if !equalCommand(a.Command, spec.Command) {
		return false, false, false, badRequest{fmt.Errorf("coord: completion artifact records command %q, campaign is %q", a.Command, spec.Command)}
	}
	count := a.Shard.Count
	if count < 1 {
		count = 1
	}
	if a.Shard.Index != shard || count != spec.Shards {
		return false, false, false, badRequest{fmt.Errorf("coord: completion for shard %d carries artifact of shard %s", shard, a.Shard)}
	}
	name := fmt.Sprintf("shard-%d.json", shard)
	if err := store.WriteFileAtomic(filepath.Join(c.ArtifactDir(campaign), name), artifact); err != nil {
		return false, false, false, fmt.Errorf("coord: storing shard artifact: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-resolve: the campaign may have been retired while the artifact
	// validated and hit disk. The stray file is harmless (the journal is
	// the source of truth) but the completion is no longer recordable.
	cp, err = c.byID(campaign)
	if err != nil {
		return false, false, false, err
	}
	s := &cp.shards[shard]
	s.done = true
	s.artifact = name
	s.quarantined = false
	s.leaseID, s.worker, s.expiry = "", "", time.Time{}
	if err := c.journalLocked(); err != nil {
		return false, false, false, err
	}
	if cp.complete() {
		c.finishLocked(cp)
	}
	c.checkTerminalLocked()
	return cp.complete(), c.allDoneLocked(), c.allTerminalLocked(), nil
}

// sweepLocked expires the campaign's stale leases, returning shards to
// the pool. Reports whether anything changed (the caller journals).
// Called only from Lease — the read paths must never reclaim. An expiry
// consumes the grant's attempt (the worker crashed or stalled mid-run —
// that is exactly the kind of repeated loss the budget bounds), so a
// shard that keeps killing its workers quarantines just like one that
// keeps reporting failure; a synthesized report records each expiry the
// same way a worker-reported failure would be.
func (c *Coordinator) sweepLocked(cp *campaign) bool {
	now := c.opts.Now()
	changed := false
	for i := range cp.shards {
		s := &cp.shards[i]
		if s.done || s.leaseID == "" || now.Before(s.expiry) {
			continue
		}
		s.recordFailure(FailureReport{Worker: s.worker, Attempt: s.attempts,
			Error:  "lease expired without completion (worker crashed, stalled, or partitioned)",
			UnixMS: now.UnixMilli()})
		cp.failReports++
		s.leaseID, s.worker, s.expiry = "", "", time.Time{}
		if s.attempts >= cp.budget(c.opts.MaxShardAttempts) {
			s.quarantined = true
		}
		cp.releases++
		changed = true
	}
	return changed
}

// finishLocked runs the server-side merge validation over the campaign's
// completed artifact set. Validation failure does not un-complete the
// campaign — the shards are what they are — but it is recorded and
// surfaced by Status, so a caller never merges blind.
func (c *Coordinator) finishLocked(cp *campaign) {
	if cp.finished {
		return // already validated (recovery re-entry, duplicate completion)
	}
	cp.finished = true
	arts := make([]*flit.Artifact, 0, len(cp.shards))
	err := func() error {
		for i := range cp.shards {
			a, err := flit.ReadArtifactFile(filepath.Join(c.ArtifactDir(cp.id), cp.shards[i].artifact))
			if err != nil {
				return err
			}
			arts = append(arts, a)
		}
		return flit.ValidateShardSet(arts)
	}()
	if err != nil {
		cp.valid, cp.valErr = false, err.Error()
	} else {
		cp.valid, cp.valErr = true, ""
	}
}

// allDoneLocked reports whether every submitted campaign completed
// successfully.
func (c *Coordinator) allDoneLocked() bool {
	if len(c.order) == 0 {
		return false
	}
	for _, id := range c.order {
		if !c.campaigns[id].complete() {
			return false
		}
	}
	return true
}

// allTerminalLocked reports whether every submitted campaign is settled:
// complete or terminally failed. This — not allDoneLocked — is what
// drains workers and `-exit-when-done` coordinators: a failed campaign
// must never keep a fleet spinning.
func (c *Coordinator) allTerminalLocked() bool {
	if len(c.order) == 0 {
		return false
	}
	for _, id := range c.order {
		if !c.campaigns[id].terminal() {
			return false
		}
	}
	return true
}

// checkTerminalLocked closes the done channel the first time every
// campaign is terminal (complete or failed).
func (c *Coordinator) checkTerminalLocked() {
	if !c.doneFired && c.allTerminalLocked() {
		c.doneFired = true
		close(c.done)
	}
}

// LeaseInfo is one recorded lease, as Status reports it. ExpiresMS goes
// negative once the lease outlives its TTL without a heartbeat: the
// lease is expired but *not yet reclaimed* — the next Lease call will
// sweep it, and until then a late heartbeat revives it. Rendering the
// gap instead of acting on it is what keeps Status a pure read.
type LeaseInfo struct {
	Shard     int    `json:"shard"`
	Worker    string `json:"worker"`
	LeaseID   string `json:"lease_id"`
	ExpiresMS int64  `json:"expires_in_ms"`
}

// ShardFailure is one shard's failure report as the status views render
// it: the per-shard FailureReport plus the shard index.
type ShardFailure struct {
	Shard int `json:"shard"`
	FailureReport
}

// Status is a point-in-time snapshot of one campaign. State is
// "running", "complete", or "failed"; Attempts records every shard's
// consumed attempt count (index = shard), Quarantined the shards that
// exhausted their budget, and Failures the retained failure reports in
// shard order (each shard keeps its most recent few — Attempts is the
// authoritative total).
type Status struct {
	ID          string         `json:"id"`
	Engine      string         `json:"engine"`
	Command     []string       `json:"command"`
	Shards      int            `json:"shards"`
	Done        int            `json:"done"`
	Completed   []int          `json:"completed"`
	Leases      []LeaseInfo    `json:"leases,omitempty"`
	Releases    int64          `json:"releases"`
	State       string         `json:"state"`
	Complete    bool           `json:"complete"`
	Failed      bool           `json:"failed"`
	Validated   bool           `json:"validated"`
	Problem     string         `json:"problem,omitempty"`
	MaxAttempts int            `json:"max_attempts"`
	Attempts    []int          `json:"attempts"`
	Quarantined []int          `json:"quarantined,omitempty"`
	Failures    []ShardFailure `json:"failures,omitempty"`
}

// Status snapshots one campaign. It is a pure read: nothing is swept,
// nothing is journaled, and an expired-but-unreclaimed lease is reported
// with a negative ExpiresMS rather than released — so operators can poll
// as hard as they like during a heartbeat gap without stranding the
// worker whose next heartbeat would have revived the lease.
func (c *Coordinator) Status(campaign string) (Status, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, err := c.byID(campaign)
	if err != nil {
		return Status{}, err
	}
	return c.statusLocked(cp), nil
}

func (c *Coordinator) statusLocked(cp *campaign) Status {
	st := Status{
		ID:          cp.id,
		Engine:      cp.spec.Engine,
		Command:     append([]string(nil), cp.spec.Command...),
		Shards:      cp.spec.Shards,
		Releases:    cp.releases,
		Completed:   []int{},
		MaxAttempts: cp.budget(c.opts.MaxShardAttempts),
		Attempts:    make([]int, len(cp.shards)),
		State:       "running",
	}
	now := c.opts.Now()
	for i := range cp.shards {
		s := &cp.shards[i]
		st.Attempts[i] = s.attempts
		if s.quarantined {
			st.Quarantined = append(st.Quarantined, i)
		}
		for _, f := range s.failures {
			st.Failures = append(st.Failures, ShardFailure{Shard: i, FailureReport: f})
		}
		if s.done {
			st.Done++
			st.Completed = append(st.Completed, i)
			continue
		}
		if s.leaseID != "" {
			st.Leases = append(st.Leases, LeaseInfo{Shard: i, Worker: s.worker,
				LeaseID: s.leaseID, ExpiresMS: s.expiry.Sub(now).Milliseconds()})
		}
	}
	sort.Ints(st.Completed)
	switch {
	case st.Done == st.Shards:
		st.State = "complete"
		st.Complete = true
		st.Validated = cp.valid
		st.Problem = cp.valErr
	case cp.failed():
		st.State = "failed"
		st.Failed = true
		st.Problem = cp.failProblem()
	}
	return st
}

// CampaignInfo is one row of the fleet view: a campaign's identity and
// progress, without the per-lease detail (Status has that). Quarantined
// counts shards that exhausted their attempt budget; Failed marks the
// terminal all-remaining-shards-quarantined state, which a worker treats
// exactly like Complete — nothing left to lease here, ever.
type CampaignInfo struct {
	ID          string   `json:"id"`
	Command     []string `json:"command"`
	Shards      int      `json:"shards"`
	Done        int      `json:"done"`
	Leases      int      `json:"leases"`
	Releases    int64    `json:"releases"`
	Quarantined int      `json:"quarantined"`
	FailReports int64    `json:"fail_reports"`
	Complete    bool     `json:"complete"`
	Failed      bool     `json:"failed"`
	Validated   bool     `json:"validated"`
	Problem     string   `json:"problem,omitempty"`
}

// Campaigns lists every campaign in submission order. Like Status it is
// a pure read — no sweep, no journal write.
func (c *Coordinator) Campaigns() []CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	infos := make([]CampaignInfo, 0, len(c.order))
	for _, id := range c.order {
		cp := c.campaigns[id]
		ci := CampaignInfo{ID: id, Command: append([]string(nil), cp.spec.Command...),
			Shards: cp.spec.Shards, Releases: cp.releases, FailReports: cp.failReports}
		for i := range cp.shards {
			switch {
			case cp.shards[i].done:
				ci.Done++
			case cp.shards[i].leaseID != "":
				ci.Leases++
			}
			if cp.shards[i].quarantined {
				ci.Quarantined++
			}
		}
		switch {
		case ci.Done == ci.Shards:
			ci.Complete = true
			ci.Validated = cp.valid
			ci.Problem = cp.valErr
		case cp.failed():
			ci.Failed = true
			ci.Problem = cp.failProblem()
		}
		infos = append(infos, ci)
	}
	return infos
}

// Releases reports how many expired leases were returned to the pool
// across every campaign — the straggler-mitigation counter the
// coordinator smoke asserts on, and the counter the status-read
// regression test pins at zero.
func (c *Coordinator) Releases() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cp := range c.campaigns {
		n += cp.releases
	}
	return n
}

// FailReports reports how many failure reports were recorded across
// every campaign (worker-reported failures plus synthesized expiry
// reports) — the containment counter the benchmark pins at zero on the
// healthy path.
func (c *Coordinator) FailReports() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, cp := range c.campaigns {
		n += cp.failReports
	}
	return n
}

// QuarantinedShards reports how many shards are quarantined across every
// campaign.
func (c *Coordinator) QuarantinedShards() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cp := range c.campaigns {
		n += len(cp.quarantinedShards())
	}
	return n
}

// GCResult reports a retirement pass.
type GCResult struct {
	// Retired lists the campaign IDs removed, in submission order.
	Retired []string `json:"retired"`
	// Kept counts the campaigns still held after the pass.
	Kept int `json:"kept"`
}

// GC retires superseded artifact generations server-side — the
// coordinator-owned form of `flit gc`. Completed campaigns that share a
// command are generations of the same study (they necessarily differ in
// shard count, since equal specs are one campaign); for each command the
// newest keep completed generations survive, in submission order, and
// older ones are retired: removed from the journal first, then their
// artifact directories deleted. Running campaigns are never touched and
// never count toward keep. dryRun plans without changing anything.
//
// Retirement rides the coordinator's ownership boundary deliberately: an
// operator pruning the shared namespace by hand could delete an artifact
// the journal still references, which recovery refuses; the coordinator
// journals the removal before any file dies, so a crash mid-GC recovers
// to a consistent tenancy either way.
func (c *Coordinator) GC(keep int, dryRun bool) (GCResult, error) {
	if keep < 1 {
		keep = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]int) // completed generations per command, counted newest-first
	retire := make(map[string]bool)
	for i := len(c.order) - 1; i >= 0; i-- {
		cp := c.campaigns[c.order[i]]
		if !cp.complete() {
			continue
		}
		key := strings.Join(cp.spec.Command, "\x00")
		seen[key]++
		if seen[key] > keep {
			retire[cp.id] = true
		}
	}
	res := GCResult{Retired: []string{}}
	for _, id := range c.order {
		if retire[id] {
			res.Retired = append(res.Retired, id)
		}
	}
	res.Kept = len(c.order) - len(res.Retired)
	if dryRun || len(res.Retired) == 0 {
		return res, nil
	}
	kept := c.order[:0]
	for _, id := range c.order {
		if retire[id] {
			delete(c.campaigns, id)
		} else {
			kept = append(kept, id)
		}
	}
	c.order = kept
	if err := c.journalLocked(); err != nil {
		return GCResult{}, err
	}
	for _, id := range res.Retired {
		if err := os.RemoveAll(c.ArtifactDir(id)); err != nil {
			// The tenancy is already consistent (journal written); orphaned
			// files are a disk-space problem, not a correctness one.
			return res, fmt.Errorf("coord: retiring artifacts of %s: %w", id, err)
		}
	}
	return res, nil
}

func equalCommand(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CommandString renders a campaign command the way the CLI accepts it.
func CommandString(command []string) string { return strings.Join(command, " ") }
