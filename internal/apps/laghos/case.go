package laghos

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
)

// Case adapts the mini-Laghos simulation to the flit.TestCase protocol. The
// result vector is the energy over the mesh; the study compares it with the
// ℓ2 metric, optionally digit-limited (Table 4).
type Case struct {
	Opt Options
}

// NewCase returns the standard (bug-free apart from the q==0.0 comparison)
// Laghos test.
func NewCase() *Case { return &Case{} }

// Name implements flit.TestCase.
func (c *Case) Name() string {
	switch {
	case c.Opt.NaNBug:
		return "LaghosNaNBug"
	case c.Opt.EpsilonFix:
		return "LaghosEpsFix"
	default:
		return "Laghos"
	}
}

// CacheKey implements flit.CacheKeyer. Every Options field changes what a
// run produces, and Name alone cannot carry them all (NaNBug wins its
// switch even when EpsilonFix is also set), so the key encodes the full
// options explicitly.
func (c *Case) CacheKey() string {
	if c.Opt == (Options{}) {
		return c.Name()
	}
	return fmt.Sprintf("Laghos/nan=%t,eps=%t,cells=%d,steps=%d",
		c.Opt.NaNBug, c.Opt.EpsilonFix, c.Opt.Cells, c.Opt.Steps)
}

// Root implements flit.TestCase.
func (c *Case) Root() string { return "main_laghos" }

// GetInputsPerRun implements flit.TestCase.
func (c *Case) GetInputsPerRun() int { return 1 }

// GetDefaultInput implements flit.TestCase.
func (c *Case) GetDefaultInput() []float64 { return []float64{0.4} }

// Run implements flit.TestCase: it returns the cell energies followed by
// the energy norm the motivating example quotes.
func (c *Case) Run(input []float64, m *link.Machine) (flit.Result, error) {
	st := Simulate(m, c.Opt, input[0])
	norm := EnergyNorm(m, st.E)
	vol := Volume(m, st)
	out := append(append([]float64(nil), st.E...), norm, vol)
	return flit.VecResult(out), nil
}

// Compare implements flit.TestCase.
func (c *Case) Compare(baseline, other flit.Result) float64 {
	return flit.L2Diff(baseline, other)
}
