package flit

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/exec"
)

// art builds a valid single-shard artifact from run records.
func art(command []string, runs ...RunRecord) *Artifact {
	return &Artifact{
		Version: ArtifactVersion,
		Engine:  EngineVersion,
		Command: command,
		Runs:    runs,
		Costs:   []CostRecord{},
	}
}

func scalarRec(key string, v float64) RunRecord {
	return RunRecord{Key: key, Scalar: math.Float64bits(v)}
}

// TestDiffArtifactsClassification: the offline diff lands every key in
// exactly one bucket, bit-exactly — including a NaN result, which must
// compare equal to itself (bits, not float comparison).
func TestDiffArtifactsClassification(t *testing.T) {
	nan := math.NaN()
	base := art([]string{"run"},
		scalarRec("same", 1.5),
		scalarRec("gone", 2.0),
		scalarRec("moved", 3.0),
		scalarRec("nan", nan),
		RunRecord{Key: "err", Err: "input exhausted"},
	)
	cur := art([]string{"run"},
		scalarRec("same", 1.5),
		scalarRec("moved", 3.0000000001),
		scalarRec("nan", nan),
		scalarRec("fresh", 4.0),
		RunRecord{Key: "err", Err: "input exhausted", Segfault: true},
	)
	rep, err := DiffArtifacts([]*Artifact{base}, []*Artifact{cur})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.New) != 1 || rep.New[0].Key != "fresh" {
		t.Errorf("New = %+v, want [fresh]", rep.New)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0].Key != "gone" {
		t.Errorf("Dropped = %+v, want [gone]", rep.Dropped)
	}
	// "moved" changed value bits; "err" changed its segfault identity.
	if len(rep.Changed) != 2 || rep.Changed[0].Key != "err" || rep.Changed[1].Key != "moved" {
		t.Errorf("Changed = %+v, want [err moved]", rep.Changed)
	}
	if rep.Unchanged != 2 { // "same" and "nan"
		t.Errorf("Unchanged = %d, want 2 (same + nan)", rep.Unchanged)
	}
	if rep.Empty() {
		t.Error("non-empty delta reported Empty")
	}
	if got := rep.Changed[1]; got.Old.Scalar != math.Float64bits(3.0) ||
		got.New.Scalar != math.Float64bits(3.0000000001) {
		t.Errorf("changed entry lost the exact old/new bits: %+v", got)
	}
}

// TestDiffArtifactsIdenticalSetsEmpty is the acceptance property: two
// artifact sets recording byte-identical results diff to an empty report.
func TestDiffArtifactsIdenticalSetsEmpty(t *testing.T) {
	build := func() *Artifact {
		return art([]string{"run"}, scalarRec("a", 1), scalarRec("b", math.Inf(-1)))
	}
	rep, err := DiffArtifacts([]*Artifact{build()}, []*Artifact{build()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() || rep.Unchanged != 2 {
		t.Errorf("identical sets: %s", rep.Summary())
	}
}

// TestDiffArtifactsValidation: each side is validated like a merge input —
// incomplete partitions and conflicting duplicates are rejected, while the
// legitimate overlap (shards recomputing shared baseline cells with
// identical bits) is not.
func TestDiffArtifactsValidation(t *testing.T) {
	half := art([]string{"run"}, scalarRec("a", 1))
	half.Shard = exec.Shard{Index: 0, Count: 2}
	if _, err := DiffArtifacts([]*Artifact{half}, []*Artifact{art(nil)}); err == nil {
		t.Error("incomplete baseline partition accepted")
	}
	if _, err := DiffArtifacts([]*Artifact{art(nil)}, []*Artifact{half}); err == nil {
		t.Error("incomplete current partition accepted")
	}

	s0 := art([]string{"run"}, scalarRec("shared", 1), scalarRec("own0", 2))
	s0.Shard = exec.Shard{Index: 0, Count: 2}
	s1 := art([]string{"run"}, scalarRec("shared", 1), scalarRec("own1", 3))
	s1.Shard = exec.Shard{Index: 1, Count: 2}
	if _, err := DiffArtifacts([]*Artifact{s0, s1}, []*Artifact{art([]string{"run"})}); err != nil {
		t.Errorf("identical shared-baseline overlap rejected: %v", err)
	}
	bad := art([]string{"run"}, scalarRec("shared", 99), scalarRec("own1", 3))
	bad.Shard = exec.Shard{Index: 1, Count: 2}
	if _, err := DiffArtifacts([]*Artifact{s0, bad}, []*Artifact{art([]string{"run"})}); err == nil ||
		!strings.Contains(err.Error(), "disagrees") {
		t.Errorf("conflicting shard overlap accepted: %v", err)
	}

	// Commands may differ across the two sets (campaign drift) and both are
	// recorded.
	rep, err := DiffArtifacts([]*Artifact{art([]string{"run", "-a"})}, []*Artifact{art([]string{"run", "-b"})})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.BaselineCommand) != 2 || rep.BaselineCommand[1] != "-a" ||
		len(rep.Command) != 2 || rep.Command[1] != "-b" {
		t.Errorf("commands not recorded: base=%v cur=%v", rep.BaselineCommand, rep.Command)
	}
}

// TestArtifactCheckRejectsDuplicateKeys: a key recorded twice in one
// artifact marks a malformed file, even when the copies agree — Import
// must refuse rather than let one copy silently answer for the other.
func TestArtifactCheckRejectsDuplicateKeys(t *testing.T) {
	dupRun := art(nil, scalarRec("k", 1), scalarRec("k", 1))
	if err := dupRun.Check(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate run key passed Check: %v", err)
	}
	if err := NewCache().Import(dupRun); err == nil {
		t.Error("duplicate run key imported")
	}
	dupCost := art(nil)
	dupCost.Costs = []CostRecord{{Key: "c", Cost: 1}, {Key: "c", Cost: 2}}
	if err := dupCost.Check(); err == nil {
		t.Error("duplicate cost key passed Check")
	}
	// A run key and a cost key may coincide — different stores.
	mixed := art(nil, scalarRec("k", 1))
	mixed.Costs = []CostRecord{{Key: "k", Cost: 1}}
	if err := mixed.Check(); err != nil {
		t.Errorf("run/cost key collision wrongly rejected: %v", err)
	}
}

// TestDeltaTrackerSeedAndTrust: in normal mode the tracker seeds the
// cache (baseline-covered evaluations become hits) and classifies keys by
// provenance: requested baseline keys are hits, unrequested ones dropped,
// uncovered computations new.
func TestDeltaTrackerSeedAndTrust(t *testing.T) {
	cache := NewCache()
	tr := NewDeltaTracker(false)
	if err := tr.Seed(cache, art([]string{"run"}, scalarRec("hit", 1), scalarRec("stale", 2))); err != nil {
		t.Fatal(err)
	}
	if tr.Verify() || tr.BaselineSize() != 2 {
		t.Fatalf("tracker state: verify=%v size=%d", tr.Verify(), tr.BaselineSize())
	}
	// The "run": requests "hit" (a baseline answer) and computes "new".
	v, _ := cache.runs.Do("hit", func() (runVal, error) {
		t.Fatal("seeded key recomputed in trust mode")
		return runVal{}, nil
	})
	if v.res.Scalar != 1 {
		t.Fatalf("seeded value lost: %v", v.res.Scalar)
	}
	cache.runs.Do("new", func() (runVal, error) { return runVal{res: ScalarResult(9)}, nil })

	rep := tr.Report(cache, []string{"run", "-next"})
	if len(rep.New) != 1 || rep.New[0].Key != "new" {
		t.Errorf("New = %+v", rep.New)
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0].Key != "stale" {
		t.Errorf("Dropped = %+v", rep.Dropped)
	}
	if len(rep.Changed) != 0 || rep.BaselineHits != 1 || rep.Fresh != 1 || rep.Unchanged != 1 {
		t.Errorf("counters wrong: %s", rep.Summary())
	}
	if rep.BaselineCommand[0] != "run" || rep.Command[1] != "-next" {
		t.Errorf("commands: %v -> %v", rep.BaselineCommand, rep.Command)
	}
}

// TestDeltaTrackerVerifyDetectsDivergence: verify mode seeds nothing —
// covered keys are recomputed and compared bit-exactly, so a baseline
// whose recorded bits no longer match the engine's output is flagged as
// changed with both bit patterns.
func TestDeltaTrackerVerifyDetectsDivergence(t *testing.T) {
	cache := NewCache()
	tr := NewDeltaTracker(true)
	err := tr.Seed(cache, art([]string{"run"},
		scalarRec("stable", 1.5),
		scalarRec("drifted", 2.5),
		scalarRec("unrequested", 3.5)))
	if err != nil {
		t.Fatal(err)
	}
	if cache.runs.Len() != 0 {
		t.Fatalf("verify mode seeded %d entries", cache.runs.Len())
	}
	cache.runs.Do("stable", func() (runVal, error) { return runVal{res: ScalarResult(1.5)}, nil })
	cache.runs.Do("drifted", func() (runVal, error) { return runVal{res: ScalarResult(2.5000001)}, nil })

	rep := tr.Report(cache, []string{"run"})
	if len(rep.Changed) != 1 || rep.Changed[0].Key != "drifted" {
		t.Fatalf("Changed = %+v", rep.Changed)
	}
	if rep.Changed[0].Old.Scalar != math.Float64bits(2.5) ||
		rep.Changed[0].New.Scalar != math.Float64bits(2.5000001) {
		t.Errorf("divergence lost exact bits: %+v", rep.Changed[0])
	}
	if len(rep.Dropped) != 1 || rep.Dropped[0].Key != "unrequested" {
		t.Errorf("Dropped = %+v", rep.Dropped)
	}
	if rep.BaselineHits != 0 || rep.Fresh != 2 || rep.Unchanged != 1 {
		t.Errorf("counters wrong: %s", rep.Summary())
	}
}

// TestDeltaTrackerComparesSupersededSeeds: when another import seeds a
// key before the warm-start baseline does (Seed never overwrites — the
// merge path imports its shard set first), the cache serves the *other*
// value; a baseline hit must still be compared bit-exactly, not trusted.
func TestDeltaTrackerComparesSupersededSeeds(t *testing.T) {
	cache := NewCache()
	// The "shard set" of the current generation arrives first with a
	// drifted value for k.
	if err := cache.Import(art([]string{"run"}, scalarRec("k", 2.0))); err != nil {
		t.Fatal(err)
	}
	tr := NewDeltaTracker(false)
	if err := tr.Seed(cache, art([]string{"run"}, scalarRec("k", 1.0))); err != nil {
		t.Fatal(err)
	}
	// The replay requests k and is served the current generation's bits.
	v, _ := cache.runs.Do("k", func() (runVal, error) {
		t.Fatal("seeded key recomputed")
		return runVal{}, nil
	})
	if v.res.Scalar != 2.0 {
		t.Fatalf("first-in-wins violated: %v", v.res.Scalar)
	}
	rep := tr.Report(cache, []string{"run"})
	if len(rep.Changed) != 1 || rep.Changed[0].Key != "k" {
		t.Fatalf("superseded seed not compared: %s", rep.Summary())
	}
	if rep.Changed[0].Old.Scalar != math.Float64bits(1.0) ||
		rep.Changed[0].New.Scalar != math.Float64bits(2.0) {
		t.Errorf("changed bits wrong: %+v", rep.Changed[0])
	}
	if rep.BaselineHits != 1 || rep.Unchanged != 0 {
		t.Errorf("counters wrong: %s", rep.Summary())
	}
}

// TestDeltaTrackerRejectsConflictingBaselines: two baseline artifacts
// disagreeing on a key's bits cannot anchor a delta.
func TestDeltaTrackerRejectsConflictingBaselines(t *testing.T) {
	cache := NewCache()
	tr := NewDeltaTracker(false)
	if err := tr.Seed(cache, art(nil, scalarRec("k", 1))); err != nil {
		t.Fatal(err)
	}
	if err := tr.Seed(cache, art(nil, scalarRec("k", 2))); err == nil {
		t.Error("conflicting baseline artifacts accepted")
	}
	if err := tr.Seed(cache, art(nil, scalarRec("k", 1))); err != nil {
		t.Errorf("agreeing overlap rejected: %v", err)
	}
}

// TestDeltaReportRenderDeterministic: equal reports render to equal bytes,
// keys sorted, with the summary first.
func TestDeltaReportRenderDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		rep, err := DiffArtifacts(
			[]*Artifact{art([]string{"run"}, scalarRec("z", 1), scalarRec("a", 2))},
			[]*Artifact{art([]string{"run"}, scalarRec("m", 3), scalarRec("a", 4))})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Render(&buf)
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("renders differ across identical diffs")
	}
	out := a.String()
	if !strings.HasPrefix(out, "delta: new=1 dropped=1 changed=1 unchanged=0") {
		t.Errorf("summary line wrong:\n%s", out)
	}
	for _, want := range []string{`new      "m"`, `dropped  "z"`, `changed  "a"`} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	var buf bytes.Buffer
	rep, _ := DiffArtifacts([]*Artifact{art(nil)}, []*Artifact{art(nil)})
	if rep.WriteJSON(&buf) != nil || !strings.Contains(buf.String(), `"engine"`) {
		t.Errorf("WriteJSON: %s", buf.String())
	}
}
