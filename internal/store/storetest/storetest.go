// Package storetest is the fault-injection transport harness behind the
// remote store's hostile tests: an http.Handler wrapper that serves a
// scripted sequence of transport and server faults — 5xx errors, stalled
// writes (client timeouts), truncated bodies, corrupted payloads, and
// wrong-engine fences — in front of a real store handler, then passes
// everything after the script through untouched.
//
// It exists so the store package and the experiments package prove the
// same property against the same adversary: every fault mode a network
// can produce degrades a remote-store lookup to a recompute (and the
// write-through self-heals the entry), never to a wrong result and never
// to a failed run. Tests script the faults, run the campaign at several
// -j values under -race, and diff the outputs byte for byte.
package storetest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// Fault is one scripted behavior for one request.
type Fault int

const (
	// Pass serves the request through untouched.
	Pass Fault = iota
	// Err503 answers 503 Service Unavailable without consulting the inner
	// handler — the retryable server-side failure.
	Err503
	// Stall writes half of the real response, then holds the connection
	// until StallFor elapses — the shape of a wedged server, which the
	// client must convert into an attempt timeout.
	Stall
	// Truncate writes the real response cut off mid-body.
	Truncate
	// Corrupt serves the real response with payload bytes flipped, so the
	// envelope's checksum no longer matches.
	Corrupt
	// WrongEngine rewrites the request's engine fence header to a foreign
	// engine version before the inner handler sees it, forcing the
	// distinct fence status.
	WrongEngine
)

// String names a fault for test diagnostics.
func (f Fault) String() string {
	switch f {
	case Pass:
		return "pass"
	case Err503:
		return "err503"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case WrongEngine:
		return "wrong-engine"
	default:
		return "unknown"
	}
}

// Flaky wraps an inner store handler with a scripted fault queue. Each
// incoming request consumes the next fault (concurrent requests consume
// in arrival order — which request eats which fault is scheduling, and
// the properties under test must hold regardless); an empty queue serves
// Pass. Safe for concurrent use.
type Flaky struct {
	inner http.Handler
	// StallFor is how long a Stall fault holds the connection after its
	// partial write; keep it just past the client's attempt timeout so
	// tests stay fast. Defaults to 150ms.
	StallFor time.Duration
	// Match selects which requests the script applies to; requests it
	// rejects pass through without consuming a fault. Nil matches every
	// request. Coordinator tests use this to aim faults at the coord
	// endpoints (lease, heartbeat, complete) while the object traffic
	// sharing the same mux flows clean, and vice versa.
	Match func(*http.Request) bool

	mu     sync.Mutex
	script []Fault
	served map[Fault]int
}

// NewFlaky wraps inner with an initial fault script.
func NewFlaky(inner http.Handler, script ...Fault) *Flaky {
	return &Flaky{inner: inner, StallFor: 150 * time.Millisecond,
		script: append([]Fault(nil), script...), served: make(map[Fault]int)}
}

// Push appends faults to the script.
func (f *Flaky) Push(faults ...Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.script = append(f.script, faults...)
}

// Served reports how many requests were served with the given fault.
func (f *Flaky) Served(fault Fault) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.served[fault]
}

// Pending reports how many scripted faults have not been consumed yet.
func (f *Flaky) Pending() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.script)
}

// next consumes one fault from the script.
func (f *Flaky) next() Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	fault := Pass
	if len(f.script) > 0 {
		fault = f.script[0]
		f.script = f.script[1:]
	}
	f.served[fault]++
	return fault
}

// ServeHTTP applies the next scripted fault to this request.
func (f *Flaky) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if f.Match != nil && !f.Match(req) {
		f.inner.ServeHTTP(w, req)
		return
	}
	switch fault := f.next(); fault {
	case Err503:
		http.Error(w, "storetest: scripted 503", http.StatusServiceUnavailable)
	case WrongEngine:
		req.Header.Set("X-Flit-Engine", "flit-engine/storetest-foreign")
		f.inner.ServeHTTP(w, req)
	case Stall, Truncate, Corrupt:
		f.mangle(fault, w, req)
	default:
		f.inner.ServeHTTP(w, req)
	}
}

// mangle records the inner handler's real response, then serves a damaged
// version of it: the headers (status, engine fence, declared checksum)
// are always the honest ones, so the damage is exactly what a flaky
// network or a bit-rotting server would produce — a body that no longer
// matches its own declaration.
func (f *Flaky) mangle(fault Fault, w http.ResponseWriter, req *http.Request) {
	rec := httptest.NewRecorder()
	f.inner.ServeHTTP(rec, req)
	body := rec.Body.Bytes()
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	// The truthful Content-Length would let the client detect truncation
	// for free; drop it so the damaged body has to be caught by envelope
	// validation, the defense that also catches a lying length.
	w.Header().Del("Content-Length")
	w.WriteHeader(rec.Code)
	switch fault {
	case Stall:
		w.Write(body[:len(body)/2])
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		// Hold the rest hostage past the client's attempt timeout. The
		// request context ends as soon as the client gives up, so a passed
		// test never sits out the full duration.
		select {
		case <-req.Context().Done():
		case <-time.After(f.StallFor):
		}
	case Truncate:
		w.Write(body[:len(body)/2])
	case Corrupt:
		w.Write(corruptPayload(body))
	}
}

// corruptPayload damages a response body the way bit rot does: when the
// body parses as a store envelope, the payload is replaced under the
// original declared checksum — a structurally valid envelope that fails
// SHA-256 re-validation, the exact lie the client must catch. Anything
// else gets its tail bytes flipped.
func corruptPayload(body []byte) []byte {
	var e struct {
		Engine string          `json:"engine"`
		Key    string          `json:"key"`
		Sum    string          `json:"sum"`
		Data   json.RawMessage `json:"data"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Sum != "" {
		e.Data = json.RawMessage(`{"storetest":"bit-rot"}`)
		if damaged, err := json.Marshal(e); err == nil {
			return damaged
		}
	}
	damaged := append([]byte(nil), body...)
	for i := len(damaged) / 2; i < len(damaged); i++ {
		damaged[i] ^= 0x5a
	}
	return damaged
}
