package flit

import (
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/internal/exec"
)

// writeArt writes an artifact file with an explicit creation stamp.
func writeArt(t *testing.T, dir, name string, command []string, shard exec.Shard, created int64) string {
	t.Helper()
	a := art(command, scalarRec("k", 1))
	a.Shard = shard
	a.CreatedUnix = created
	path := filepath.Join(dir, name)
	if err := WriteArtifactFile(a, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestPlanGCSupersededGenerations: within one campaign slot (engine,
// command, shard) only the newest keep files survive; other slots are
// untouched, and a complete shard set can never lose a member to another
// slot's pruning.
func TestPlanGCSupersededGenerations(t *testing.T) {
	dir := t.TempDir()
	old := writeArt(t, dir, "old.json", []string{"run"}, exec.Shard{}, 100)
	mid := writeArt(t, dir, "mid.json", []string{"run"}, exec.Shard{}, 200)
	newest := writeArt(t, dir, "new.json", []string{"run"}, exec.Shard{}, 300)
	other := writeArt(t, dir, "other.json", []string{"experiments", "table4"}, exec.Shard{}, 50)

	plan, err := PlanGC(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(plan.Kept, []string{newest, other}) {
		t.Errorf("Kept = %v", plan.Kept)
	}
	if !slices.Equal(plan.Pruned, []string{mid, old}) {
		t.Errorf("Pruned = %v", plan.Pruned)
	}

	plan2, err := PlanGC(dir, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(plan2.Pruned, []string{old}) {
		t.Errorf("keep=2 Pruned = %v", plan2.Pruned)
	}

	if err := plan.Apply(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{old, mid} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("%s not pruned", p)
		}
	}
	for _, p := range []string{newest, other} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s should have survived: %v", p, err)
		}
	}
}

// TestPlanGCShardSlotsAreSeparateCampaigns: the two halves of a shard set
// live in distinct slots — pruning one slot's history cannot break the
// other's newest generation.
func TestPlanGCShardSlotsAreSeparateCampaigns(t *testing.T) {
	dir := t.TempDir()
	s0old := writeArt(t, dir, "s0-old.json", []string{"run"}, exec.Shard{Index: 0, Count: 2}, 100)
	s0new := writeArt(t, dir, "s0-new.json", []string{"run"}, exec.Shard{Index: 0, Count: 2}, 200)
	s1 := writeArt(t, dir, "s1.json", []string{"run"}, exec.Shard{Index: 1, Count: 2}, 100)

	plan, err := PlanGC(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(plan.Pruned, []string{s0old}) {
		t.Errorf("Pruned = %v", plan.Pruned)
	}
	if !slices.Equal(plan.Kept, []string{s0new, s1}) {
		t.Errorf("Kept = %v", plan.Kept)
	}
}

// TestPlanGCProtectsManifestAndSkipsUnparseable: files a live campaign
// still warm-starts from are never pruned however superseded, and files
// that do not parse as artifacts are never deleted.
func TestPlanGCProtectsManifestAndSkipsUnparseable(t *testing.T) {
	dir := t.TempDir()
	old := writeArt(t, dir, "old.json", []string{"run"}, exec.Shard{}, 100)
	writeArt(t, dir, "new.json", []string{"run"}, exec.Shard{}, 200)
	junk := filepath.Join(dir, "junk.json")
	if err := os.WriteFile(junk, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	notJSON := filepath.Join(dir, "README.txt")
	if err := os.WriteFile(notJSON, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanGC(dir, 1, map[string]bool{NormalizePath(old): true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Pruned) != 0 {
		t.Errorf("Pruned = %v, want none (old is protected)", plan.Pruned)
	}
	if !slices.Equal(plan.Protected, []string{old}) {
		t.Errorf("Protected = %v", plan.Protected)
	}
	if !slices.Equal(plan.Skipped, []string{junk}) {
		t.Errorf("Skipped = %v", plan.Skipped)
	}
	if err := plan.Apply(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{old, junk, notJSON} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s must not be touched: %v", p, err)
		}
	}
}

// TestPlanGCSkipsNonArtifactJSON: JSON that merely *decodes* into the
// Artifact shape — a DeltaReport shares the engine and command fields, a
// foreign engine's artifact decodes perfectly — must be skipped, never
// attributed to a campaign slot and pruned as a "superseded generation".
// (Regression: an unvalidated GC once grouped a delta report with the
// campaign whose command it recorded and deleted it.)
func TestPlanGCSkipsNonArtifactJSON(t *testing.T) {
	dir := t.TempDir()
	writeArt(t, dir, "old.json", []string{"run"}, exec.Shard{}, 100)
	writeArt(t, dir, "new.json", []string{"run"}, exec.Shard{}, 200)

	// A delta report for the same campaign: same engine, same command,
	// zero shard, no version field.
	rep := &DeltaReport{Engine: EngineVersion, Command: []string{"run"},
		New: []RunRecord{}, Dropped: []RunRecord{}, Changed: []DeltaChange{}}
	f, err := os.Create(filepath.Join(dir, "delta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	foreign := art([]string{"run"}, scalarRec("k", 1))
	foreign.Engine = "flit-engine/999"
	if err := WriteArtifactFile(foreign, filepath.Join(dir, "foreign.json")); err != nil {
		t.Fatal(err)
	}

	plan, err := PlanGC(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantSkipped := []string{filepath.Join(dir, "delta.json"), filepath.Join(dir, "foreign.json")}
	if !slices.Equal(plan.Skipped, wantSkipped) {
		t.Errorf("Skipped = %v, want %v", plan.Skipped, wantSkipped)
	}
	if !slices.Equal(plan.Pruned, []string{filepath.Join(dir, "old.json")}) {
		t.Errorf("Pruned = %v, want only the superseded generation", plan.Pruned)
	}
}

// TestPlanGCOrderingFallsBackToModTime: unstamped artifacts (CreatedUnix
// zero, e.g. library exports) are ordered by file modification time.
func TestPlanGCOrderingFallsBackToModTime(t *testing.T) {
	dir := t.TempDir()
	older := writeArt(t, dir, "a.json", []string{"run"}, exec.Shard{}, 0)
	newer := writeArt(t, dir, "b.json", []string{"run"}, exec.Shard{}, 0)
	// Make the ordering independent of write timing granularity.
	base := time.Now()
	if err := os.Chtimes(older, base.Add(-time.Hour), base.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(newer, base, base); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanGC(dir, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(plan.Pruned, []string{older}) || !slices.Equal(plan.Kept, []string{newer}) {
		t.Errorf("mtime fallback: kept=%v pruned=%v", plan.Kept, plan.Pruned)
	}
}

// TestPlanGCPathTiebreaker: two generations with identical creation stamps
// AND identical mtimes still prune deterministically — the path breaks the
// tie, so two planning passes over the same directory agree on which file
// survives.
func TestPlanGCPathTiebreaker(t *testing.T) {
	dir := t.TempDir()
	a := writeArt(t, dir, "a.json", []string{"run"}, exec.Shard{}, 100)
	b := writeArt(t, dir, "b.json", []string{"run"}, exec.Shard{}, 100)
	when := time.Now().Add(-time.Hour)
	for _, p := range []string{a, b} {
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		plan, err := PlanGC(dir, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Path descends after the time keys, so the lexically later file is
		// the "newest" of the tie and survives.
		if !slices.Equal(plan.Kept, []string{b}) || !slices.Equal(plan.Pruned, []string{a}) {
			t.Fatalf("pass %d: kept=%v pruned=%v, want kept=[%s] pruned=[%s]", i, plan.Kept, plan.Pruned, b, a)
		}
	}
}

// TestPlanGCRefusesKeepZero: keep < 1 would delete a campaign's entire
// history; the planner refuses.
func TestPlanGCRefusesKeepZero(t *testing.T) {
	for _, keep := range []int{0, -1} {
		if _, err := PlanGC(t.TempDir(), keep, nil); err == nil {
			t.Errorf("keep=%d accepted", keep)
		}
	}
	if _, err := PlanGC(filepath.Join(t.TempDir(), "missing"), 1, nil); err == nil {
		t.Error("missing directory accepted")
	}
}
