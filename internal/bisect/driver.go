package bisect

import (
	"errors"
	"fmt"

	"repro/internal/comp"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/prog"
)

// SymbolStatus describes how far below file granularity a search got for
// one found file.
type SymbolStatus int

const (
	// SymbolsFound: Symbol Bisect succeeded and isolated functions.
	SymbolsFound SymbolStatus = iota
	// SymbolsCrashed: the strong/weak mixed executable segfaulted
	// (the Table 2 failure mode).
	SymbolsCrashed
	// FPICRemoved: recompiling the file with -fPIC removed the
	// variability, so the search cannot go deeper than the file (§2.3).
	FPICRemoved
	// NoExportedSymbols: the file exports nothing overridable.
	NoExportedSymbols
	// SymbolsSkipped: the search exited early (BisectBiggest) before
	// descending into this file.
	SymbolsSkipped
	// SymbolsAssumption: a bisect assumption failed during the symbol
	// search; results may be incomplete.
	SymbolsAssumption
)

func (s SymbolStatus) String() string {
	switch s {
	case SymbolsFound:
		return "found"
	case SymbolsCrashed:
		return "crashed"
	case FPICRemoved:
		return "fpic-removed"
	case NoExportedSymbols:
		return "no-exported-symbols"
	case SymbolsSkipped:
		return "skipped"
	case SymbolsAssumption:
		return "assumption-violated"
	default:
		return "unknown"
	}
}

// FileFinding is one variability-contributing source file together with the
// outcome of the symbol-level search inside it.
type FileFinding struct {
	File    string
	Value   float64
	Status  SymbolStatus
	Symbols []Finding
}

// Report is the outcome of one full hierarchical bisect search.
type Report struct {
	Files []FileFinding
	// Execs is the total number of program executions, the paper's cost
	// measure (file search + fPIC probes + symbol searches).
	Execs int
	// NoVariability is set when Test over all files is already 0: the
	// deviation seen in the matrix is not attributable to compiled code
	// (e.g. it was introduced by the link step, Figure 5 caption).
	NoVariability bool
}

// AllSymbols flattens every symbol finding, ordered by decreasing value.
func (r *Report) AllSymbols() []Finding {
	var out []Finding
	for _, f := range r.Files {
		out = append(out, f.Symbols...)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Value < out[j].Value; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Search configures one hierarchical FLiT Bisect run: which program, which
// FLiT test observes the variability, the trusted and the suspect
// compilations, and how many top contributors to find (K <= 0 runs the full
// BisectAll with dynamic verification; K > 0 runs BisectBiggest).
type Search struct {
	Prog     *prog.Program
	Test     flit.TestCase
	Baseline comp.Compilation
	Variable comp.Compilation
	K        int
}

// Run performs File Bisect followed by Symbol Bisect inside each found file
// (paper §2.3). It returns the report together with the first fatal error:
// a crash during File Bisect aborts the search (the executable under test
// died), while crashes during a file's Symbol Bisect are recorded in that
// file's status and the search continues with the next file.
func (s *Search) Run() (*Report, error) {
	baseEx, err := link.FullBuild(s.Prog, s.Baseline)
	if err != nil {
		return nil, err
	}
	baseRes, err := flit.RunAll(s.Test, baseEx)
	if err != nil {
		return nil, fmt.Errorf("bisect: baseline execution failed: %w", err)
	}

	report := &Report{}
	fileSearch := NewSearcher(func(files []string) (float64, error) {
		ex, err := link.FileMixBuild(s.Prog, s.Baseline, s.Variable, files)
		if err != nil {
			return 0, err
		}
		got, err := flit.RunAll(s.Test, ex)
		if err != nil {
			return 0, err
		}
		return s.Test.Compare(baseRes, got), nil
	})

	var fileFindings []Finding
	if s.K > 0 {
		fileFindings, err = fileSearch.Biggest(s.Prog.FileNames(), s.K)
	} else {
		fileFindings, err = fileSearch.All(s.Prog.FileNames())
	}
	report.Execs += fileSearch.Execs()
	if err != nil {
		return report, err
	}
	if len(fileFindings) == 0 {
		report.NoVariability = true
		return report, nil
	}

	kthValue := func() float64 {
		syms := report.AllSymbols()
		if s.K <= 0 || len(syms) < s.K {
			return -1
		}
		return syms[s.K-1].Value
	}

	for _, ff := range fileFindings {
		finding := FileFinding{File: ff.Item, Value: ff.Value}
		// BisectBiggest early exit across levels: a file whose whole-file
		// magnitude is below the k-th found symbol cannot contain a
		// larger symbol.
		if s.K > 0 && ff.Value <= kthValue() {
			finding.Status = SymbolsSkipped
			report.Files = append(report.Files, finding)
			continue
		}
		s.searchSymbols(&finding, baseRes, report)
		report.Files = append(report.Files, finding)
	}
	return report, nil
}

// searchSymbols performs the Symbol Bisect phase for one found file.
func (s *Search) searchSymbols(finding *FileFinding, baseRes flit.Result, report *Report) {
	// The -fPIC probe: rebuild the whole file with -fPIC under the
	// variable compilation; if the variability disappears the optimization
	// needed translation-unit-wide freedom and the search must stop here.
	probeEx, err := link.FPICProbeBuild(s.Prog, s.Baseline, s.Variable, finding.File)
	if err != nil {
		finding.Status = SymbolsCrashed
		return
	}
	report.Execs++
	probeRes, err := flit.RunAll(s.Test, probeEx)
	if err != nil {
		finding.Status = SymbolsCrashed
		return
	}
	if s.Test.Compare(baseRes, probeRes) == 0 {
		finding.Status = FPICRemoved
		return
	}

	symbols := s.Prog.ExportedSymbols(finding.File)
	if len(symbols) == 0 {
		finding.Status = NoExportedSymbols
		return
	}
	names := make([]string, len(symbols))
	for i, sym := range symbols {
		names[i] = sym.Name
	}

	symSearch := NewSearcher(func(syms []string) (float64, error) {
		ex, err := link.SymbolMixBuild(s.Prog, s.Baseline, s.Variable, syms)
		if err != nil {
			return 0, err
		}
		got, err := flit.RunAll(s.Test, ex)
		if err != nil {
			return 0, err
		}
		return s.Test.Compare(baseRes, got), nil
	})
	var found []Finding
	if s.K > 0 {
		found, err = symSearch.Biggest(names, s.K)
	} else {
		found, err = symSearch.All(names)
	}
	report.Execs += symSearch.Execs()
	finding.Symbols = found
	switch {
	case err == nil:
		finding.Status = SymbolsFound
	case errors.Is(err, link.ErrSegfault):
		finding.Status = SymbolsCrashed
	default:
		finding.Status = SymbolsAssumption
	}
}
