package experiments

import (
	"testing"

	"repro/internal/flit"
	"repro/internal/store"
)

// TestStoreCrossProcessSweep: the end-to-end sweep against a shared
// on-disk store. A cold engine computes and writes through; fresh engines
// ("second processes" — nothing shared but the directory) reproduce the
// digest byte-identically at -j 1 and -j 8, answering from the store. The
// zero-build guarantee is pinned on the deterministic matrix in
// internal/flit (TestStoreCrossProcessMatrixBuildsNothing); the sweep's
// speculative bisect stages may evaluate timing-dependent extra cells, so
// here the assertions are byte-identity and store traffic, not a build
// count.
func TestStoreCrossProcessSweep(t *testing.T) {
	dir := t.TempDir()
	openDisk := func() *store.Disk {
		d, err := store.Open(dir, flit.EngineVersion)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	cold := NewEngine(8)
	cold.AttachStore(openDisk())
	want, err := cold.SweepDigest()
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.CacheMetrics(); !m.Store.Enabled || m.Store.Puts == 0 {
		t.Fatalf("cold sweep persisted nothing: %+v", m.Store)
	}

	for _, j := range []int{1, 8} {
		warm := NewEngine(j)
		warm.AttachStore(openDisk())
		got, err := warm.SweepDigest()
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if got != want {
			t.Errorf("j=%d: store-warmed sweep digest differs from the cold run", j)
		}
		m := warm.CacheMetrics()
		if m.Store.Hits == 0 {
			t.Errorf("j=%d: store-warmed sweep recorded no store hits: %+v", j, m.Store)
		}
	}
}
