#!/bin/sh
# ci.sh — the canonical tier-1+ gate (see ROADMAP.md).
#
#   go vet           static checks
#   go build         tier-1, part 1
#   go test -race    tier-1, part 2, with the race detector: the parallel
#                    execution engine (internal/exec and everything wired
#                    through it) must be data-race-free at every -j
#   bench smoke      one iteration of the cheap benchmarks, so the
#                    benchmark harness itself cannot rot
#   shard smoke      the distributed protocol end to end through real
#                    binaries: quickstart as 2 shards + merge must be
#                    byte-identical to the unsharded run
#   bisect smoke     the speculative bisect engine end to end through a
#                    real binary: the laghos-bisect example at -j 1 (the
#                    paper's sequential probe order) and -j 8 (speculative)
#                    must print byte-identical output
#   bench shard      one iteration each of BenchmarkParallelEngineSweep and
#                    BenchmarkSpeculativeBisect with BENCH_SHARD_JSON set,
#                    appending this run's engine timings (cache, fan-out,
#                    shard+merge, bisect j1/j8 + spec-execs) to
#                    BENCH_shard.json — the recorded perf trajectory
#
# Run from the repository root: ./scripts/ci.sh
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run NONE -bench 'BenchmarkTable3CodeStats|BenchmarkMotivation' -benchtime 1x .

# Shard-equivalence smoke: two shards + merge == unsharded, byte for byte.
SHARD_TMP=$(mktemp -d)
trap 'rm -rf "$SHARD_TMP"' EXIT
go build -o "$SHARD_TMP/quickstart" ./examples/quickstart
"$SHARD_TMP/quickstart" >"$SHARD_TMP/unsharded.txt"
"$SHARD_TMP/quickstart" -shard 0/2 -shard-out "$SHARD_TMP/s0.json"
"$SHARD_TMP/quickstart" -shard 1/2 -shard-out "$SHARD_TMP/s1.json"
"$SHARD_TMP/quickstart" -merge "$SHARD_TMP/s0.json,$SHARD_TMP/s1.json" >"$SHARD_TMP/merged.txt"
diff "$SHARD_TMP/unsharded.txt" "$SHARD_TMP/merged.txt"

# Speculative-bisect smoke: j1 vs j8 through a real binary, byte for byte.
go build -o "$SHARD_TMP/laghos-bisect" ./examples/laghos-bisect
"$SHARD_TMP/laghos-bisect" -j 1 >"$SHARD_TMP/laghos-j1.txt"
"$SHARD_TMP/laghos-bisect" -j 8 >"$SHARD_TMP/laghos-j8.txt"
diff "$SHARD_TMP/laghos-j1.txt" "$SHARD_TMP/laghos-j8.txt"

# Record the engine's perf trajectory (appends one JSON line per bench run).
BENCH_SHARD_JSON="$PWD/BENCH_shard.json" \
	go test -run NONE -bench 'BenchmarkParallelEngineSweep|BenchmarkSpeculativeBisect' -benchtime 1x .
