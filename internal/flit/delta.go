package flit

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Delta detection for incremental campaigns.
//
// A long-lived campaign re-runs the same study as the toolchain, the
// matrix, or the workload drifts, warm-starting each run from the previous
// generation's artifacts. The DeltaReport is the answer to the question
// those re-runs exist to ask: *which* outputs changed against the warmed
// baseline? Three producers build one:
//
//   - DeltaTracker observes a warm-started run and classifies every
//     build/run key by provenance — answered from the baseline
//     (hit-from-baseline), computed fresh, or recomputed in verify mode
//     and found to diverge from the baseline's recorded bits;
//   - DiffArtifacts diffs two artifact sets offline, with no re-running
//     (the `flit delta` subcommand);
//   - experiments.Engine surfaces the tracker on every CLI subcommand via
//     -delta-out and -stats.
//
// Values are compared as IEEE-754 bit patterns, never as decimal floats: a
// variability monitor that rounded away low bits would miss exactly the
// deviations the FLiT study exists to catch, and NaN results (the Laghos
// NaN bug) must compare equal to themselves.

// DeltaChange is one key recorded by both the baseline and the current run
// whose values differ bit-exactly.
type DeltaChange struct {
	Key string    `json:"key"`
	Old RunRecord `json:"old"`
	New RunRecord `json:"new"`
}

// DeltaReport is the structured diff of a run (or artifact set) against a
// baseline artifact set: new keys the baseline did not record, dropped
// baseline keys the run never requested, and value-changed keys with both
// bit patterns. BaselineHits and Fresh are the warm-start provenance
// counters (zero for offline diffs); Unchanged counts keys present on both
// sides with identical bits.
type DeltaReport struct {
	Engine          string        `json:"engine"`
	BaselineCommand []string      `json:"baseline_command,omitempty"`
	Command         []string      `json:"command,omitempty"`
	New             []RunRecord   `json:"new"`
	Dropped         []RunRecord   `json:"dropped"`
	Changed         []DeltaChange `json:"changed"`
	Unchanged       int           `json:"unchanged"`
	BaselineHits    int           `json:"baseline_hits"`
	Fresh           int           `json:"fresh"`
}

// Empty reports whether the run reproduced the baseline exactly: nothing
// new, nothing dropped, nothing value-changed.
func (r *DeltaReport) Empty() bool {
	return len(r.New) == 0 && len(r.Dropped) == 0 && len(r.Changed) == 0
}

// Summary renders the one-line human digest the CLI prints under -stats.
func (r *DeltaReport) Summary() string {
	return fmt.Sprintf("delta: new=%d dropped=%d changed=%d unchanged=%d (baseline-hits=%d fresh=%d)",
		len(r.New), len(r.Dropped), len(r.Changed), r.Unchanged, r.BaselineHits, r.Fresh)
}

// Render writes the report for humans: the summary line, then one line per
// new/dropped/changed key in sorted order. Deterministic — equal reports
// render to equal bytes.
func (r *DeltaReport) Render(w io.Writer) {
	fmt.Fprintln(w, r.Summary())
	for _, rec := range r.New {
		fmt.Fprintf(w, "new      %q = %s\n", rec.Key, recValue(rec))
	}
	for _, rec := range r.Dropped {
		fmt.Fprintf(w, "dropped  %q = %s\n", rec.Key, recValue(rec))
	}
	for _, ch := range r.Changed {
		fmt.Fprintf(w, "changed  %q: %s -> %s\n", ch.Key, recValue(ch.Old), recValue(ch.New))
	}
}

// WriteJSON serializes the report (indented, deterministic).
func (r *DeltaReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteDeltaReportFile writes the report to path (the -delta-out flag's
// implementation, shared by every CLI).
func WriteDeltaReportFile(r *DeltaReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flit: writing delta report: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("flit: writing delta report: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flit: writing delta report: %w", err)
	}
	return nil
}

// recValue renders a record's value with full bit patterns (plus readable
// decimals) so a changed line pinpoints the exact deviation.
func recValue(r RunRecord) string {
	if r.Err != "" || r.Segfault {
		return fmt.Sprintf("error(%q)", r.Err)
	}
	if !r.IsVec {
		return fmt.Sprintf("%#016x (%g)", r.Scalar, math.Float64frombits(r.Scalar))
	}
	parts := make([]string, 0, len(r.Vec))
	for i, bits := range r.Vec {
		if i == 4 && len(r.Vec) > 5 {
			parts = append(parts, fmt.Sprintf("... %d more", len(r.Vec)-i))
			break
		}
		parts = append(parts, fmt.Sprintf("%#016x", bits))
	}
	return "vec[" + strings.Join(parts, " ") + "]"
}

// equalRecord compares two records of the same key bit-exactly.
func equalRecord(a, b RunRecord) bool {
	if a.IsVec != b.IsVec || a.Scalar != b.Scalar ||
		a.Err != b.Err || a.Segfault != b.Segfault || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			return false
		}
	}
	return true
}

// sort puts every list in key order so reports are deterministic.
func (r *DeltaReport) sort() {
	sort.Slice(r.New, func(i, j int) bool { return r.New[i].Key < r.New[j].Key })
	sort.Slice(r.Dropped, func(i, j int) bool { return r.Dropped[i].Key < r.Dropped[j].Key })
	sort.Slice(r.Changed, func(i, j int) bool { return r.Changed[i].Key < r.Changed[j].Key })
}

// DeltaTracker accumulates a baseline from warm-start artifacts and, after
// the run, classifies the cache's contents against it. In normal mode the
// baseline is also seeded into the cache (the incremental fast path: every
// covered evaluation is a hit). In verify mode nothing is seeded — every
// evaluation the run requests is recomputed and compared bit-exactly
// against the baseline's recorded value, turning a warm-started run into a
// variability monitor for the toolchain itself.
type DeltaTracker struct {
	verify   bool
	baseline map[string]RunRecord
	baseCmd  []string
}

// NewDeltaTracker returns an empty tracker. verify selects
// recompute-and-compare over seed-and-trust.
func NewDeltaTracker(verify bool) *DeltaTracker {
	return &DeltaTracker{verify: verify, baseline: make(map[string]RunRecord)}
}

// Verify reports the tracker's mode.
func (t *DeltaTracker) Verify() bool { return t.verify }

// BaselineSize reports how many distinct run keys the baseline records.
func (t *DeltaTracker) BaselineSize() int { return len(t.baseline) }

// Seed folds one baseline artifact into the tracker and — in normal mode —
// seeds the cache with it. Artifacts are validated individually like
// warm-start (format and engine version; no complete shard set required),
// and two baseline artifacts disagreeing on a key's bits are rejected: a
// self-contradictory baseline cannot anchor a delta.
func (t *DeltaTracker) Seed(c *Cache, a *Artifact) error {
	if err := a.Check(); err != nil {
		return err
	}
	for _, r := range a.Runs {
		if prev, ok := t.baseline[r.Key]; ok {
			if !equalRecord(prev, r) {
				return fmt.Errorf("flit: baseline artifacts disagree on key %q", r.Key)
			}
			continue
		}
		t.baseline[r.Key] = r
	}
	if t.baseCmd == nil {
		t.baseCmd = a.Command
	}
	if t.verify {
		return nil
	}
	return c.Import(a)
}

// Report classifies every completed run entry of the cache against the
// baseline and returns the delta. command is recorded as the current run's
// identity (the baseline's recorded command rides along for context).
//
// Provenance, per key: a seeded baseline entry the run requested is a
// baseline hit — counted unchanged when the served bits equal the
// baseline's record, changed when another import superseded them (a
// merge's shard set seeds before the warm-start baseline and Seed never
// overwrites); a seeded baseline entry
// the run never requested is a dropped key; an unseeded entry covered by
// the baseline (verify mode recomputation) is fresh and compares
// bit-exactly — equal is unchanged, different is a divergence; an unseeded
// entry the baseline does not cover is a new key. Seeded entries outside
// the baseline (e.g. a merge's shard set imported alongside) belong to no
// delta and are skipped.
func (t *DeltaTracker) Report(c *Cache, command []string) *DeltaReport {
	rep := &DeltaReport{
		Engine:          EngineVersion,
		BaselineCommand: t.baseCmd,
		Command:         command,
		New:             []RunRecord{},
		Dropped:         []RunRecord{},
		Changed:         []DeltaChange{},
	}
	seen := make(map[string]bool, len(t.baseline))
	for _, e := range c.RunEntries() {
		base, inBase := t.baseline[e.Rec.Key]
		switch {
		case e.Seeded && !inBase:
			// Imported from outside the baseline; not this delta's concern.
		case e.Seeded:
			seen[e.Rec.Key] = true
			if e.Uses == 0 {
				rep.Dropped = append(rep.Dropped, base)
				break
			}
			rep.BaselineHits++
			// The cache entry usually *is* the baseline record (warm-start
			// seeded it), but when another import got there first — a
			// merge's shard set seeds before the warm-start baseline, and
			// Seed never overwrites — the served value is the current
			// generation's, and it must still be compared bit-exactly.
			if equalRecord(base, e.Rec) {
				rep.Unchanged++
			} else {
				rep.Changed = append(rep.Changed, DeltaChange{Key: e.Rec.Key, Old: base, New: e.Rec})
			}
		case inBase:
			seen[e.Rec.Key] = true
			rep.Fresh++
			if equalRecord(base, e.Rec) {
				rep.Unchanged++
			} else {
				rep.Changed = append(rep.Changed, DeltaChange{Key: e.Rec.Key, Old: base, New: e.Rec})
			}
		default:
			rep.Fresh++
			rep.New = append(rep.New, e.Rec)
		}
	}
	// Baseline keys that never reached the cache at all: possible only in
	// verify mode (nothing was seeded), and exactly the dropped set there.
	for key, base := range t.baseline {
		if !seen[key] {
			rep.Dropped = append(rep.Dropped, base)
		}
	}
	rep.sort()
	return rep
}

// DiffArtifacts diffs two artifact sets offline, without re-running
// anything. Each set is validated exactly like `flit merge` validates its
// input — every artifact from this engine version, one command per set, a
// complete shard partition (so "dropped" means dropped, not "lost to a
// missing shard") — and artifacts within a set disagreeing on a key's bits
// are rejected. The two sets' commands may differ (an incremental campaign
// re-runs as its configuration drifts); both are recorded in the report.
func DiffArtifacts(baseline, current []*Artifact) (*DeltaReport, error) {
	bmap, bcmd, err := unionRuns("baseline", baseline)
	if err != nil {
		return nil, err
	}
	cmap, ccmd, err := unionRuns("current", current)
	if err != nil {
		return nil, err
	}
	rep := &DeltaReport{
		Engine:          EngineVersion,
		BaselineCommand: bcmd,
		Command:         ccmd,
		New:             []RunRecord{},
		Dropped:         []RunRecord{},
		Changed:         []DeltaChange{},
	}
	for key, cur := range cmap {
		base, ok := bmap[key]
		switch {
		case !ok:
			rep.New = append(rep.New, cur)
		case equalRecord(base, cur):
			rep.Unchanged++
		default:
			rep.Changed = append(rep.Changed, DeltaChange{Key: key, Old: base, New: cur})
		}
	}
	for key, base := range bmap {
		if _, ok := cmap[key]; !ok {
			rep.Dropped = append(rep.Dropped, base)
		}
	}
	rep.sort()
	return rep, nil
}

// unionRuns validates one artifact set and flattens its run records into a
// map, rejecting cross-artifact disagreement on any key (shards
// legitimately overlap on shared baseline cells, with identical values).
func unionRuns(label string, arts []*Artifact) (map[string]RunRecord, []string, error) {
	if err := ValidateShardSet(arts); err != nil {
		return nil, nil, fmt.Errorf("flit: %s artifact set: %w", label, err)
	}
	m := make(map[string]RunRecord)
	for _, a := range arts {
		for _, r := range a.Runs {
			if prev, ok := m[r.Key]; ok {
				if !equalRecord(prev, r) {
					return nil, nil, fmt.Errorf("flit: %s artifact set disagrees on key %q", label, r.Key)
				}
				continue
			}
			m[r.Key] = r
		}
	}
	return m, arts[0].Command, nil
}
