# Tier-1+ gate for the reproduction (see ROADMAP.md). `make ci` is what the
# repository considers green; scripts/ci.sh is the same gate as a script.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench shard-smoke incremental-smoke remote-smoke coord-smoke bench-shard

ci: vet build race bench-smoke shard-smoke incremental-smoke remote-smoke coord-smoke bench-shard

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is concurrent; everything must be race-clean at every -j.
race:
	$(GO) test -race ./...

# One iteration of the cheap benchmarks: keeps the harness compiling and
# running without paying for the full study regeneration.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkTable3CodeStats|BenchmarkMotivation' -benchtime 1x .

# The distributed protocol end to end through real binaries: quickstart as
# 2 shards + merge must be byte-identical to the unsharded run.
shard-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/quickstart ./examples/quickstart && \
	$$tmp/quickstart >$$tmp/unsharded.txt && \
	$$tmp/quickstart -shard 0/2 -shard-out $$tmp/s0.json && \
	$$tmp/quickstart -shard 1/2 -shard-out $$tmp/s1.json && \
	$$tmp/quickstart -merge $$tmp/s0.json,$$tmp/s1.json >$$tmp/merged.txt && \
	diff $$tmp/unsharded.txt $$tmp/merged.txt && echo "shard smoke: byte-identical"

# The incremental-campaign engine end to end: a one-flag mutation of the
# quickstart warm-started from its own baseline must report exactly the
# mutated cells, the same-command re-export must diff empty offline, and
# gc must prune only the superseded generation. (scripts/ci.sh runs the
# same smoke plus manifest-protection checks and the coverage record.)
incremental-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/quickstart ./examples/quickstart && \
	$(GO) build -o $$tmp/flit ./cmd/flit && \
	$$tmp/quickstart -shard 0/1 -shard-out $$tmp/gen1.json && \
	$$tmp/quickstart -unroll -warm-start $$tmp/gen1.json | grep 'delta: new=1 dropped=1 changed=0' && \
	$$tmp/quickstart -shard 0/1 -shard-out $$tmp/gen2.json && \
	$$tmp/flit delta -baseline $$tmp/gen1.json $$tmp/gen2.json | grep 'delta: new=0 dropped=0 changed=0' && \
	$$tmp/flit gc -dir $$tmp -keep 1 | grep "pruned $$tmp/gen1.json" && \
	test ! -f $$tmp/gen1.json && test -f $$tmp/gen2.json && \
	echo "incremental smoke: delta exact, gc pruned the stale generation"

# The remote store tier end to end through real binaries: `flit store
# serve` on a loopback port, then two runs sharing nothing but the URL —
# the second must be byte-identical with zero materialized builds, every
# hit arriving over the wire. (scripts/ci.sh runs the same smoke.)
remote-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/flit ./cmd/flit || { rm -rf "$$tmp"; exit 1; }; \
	$$tmp/flit store serve -dir $$tmp/store -addr 127.0.0.1:0 >$$tmp/serve.txt 2>&1 & \
	pid=$$!; trap 'kill $$pid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	url=""; for _ in $$(seq 1 100); do \
		url=$$(sed -n 's|.*on \(http://.*\)|\1|p' $$tmp/serve.txt); \
		if [ -n "$$url" ]; then break; fi; sleep 0.1; \
	done; \
	test -n "$$url" && \
	$$tmp/flit experiments -j 2 -remote "$$url" -stats table4 >$$tmp/cold.txt 2>$$tmp/cold-stats.txt && \
	$$tmp/flit experiments -j 2 -remote "$$url" -stats table4 >$$tmp/warm.txt 2>$$tmp/warm-stats.txt && \
	diff $$tmp/cold.txt $$tmp/warm.txt && \
	grep -q 'builds: materialized=0' $$tmp/warm-stats.txt && \
	grep -q 'remote: hits=[1-9]' $$tmp/warm-stats.txt && \
	echo "remote smoke: byte-identical over the wire, zero builds"

# The multi-tenant campaign coordinator end to end through real binaries,
# worker crash and poisoned shard included: `flit coord serve` owns a
# 2-shard table4 campaign that worker A leases and stalls on (holding it
# open); `flit coord submit` adds a healthy table3 campaign plus a table2
# campaign whose shard 1 is poisoned (FLIT_WORK_FAIL) under an attempt
# budget of 2. Worker B exhausts the budget — the coordinator quarantines
# the shard and declares table2 terminally FAILED while table4 is still
# held, so `flit coord status` renders the quarantine live. Then worker A
# is SIGKILLed, its lease expires and is re-leased, worker B drains the
# healthy campaigns, and the coordinator exits NON-zero naming the
# quarantined shard. The healthy campaigns merge byte-identical to their
# unsharded runs; merging the failed campaign's partial artifact set must
# fail naming the missing shard. (scripts/ci.sh runs the same smoke.)
coord-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/flit ./cmd/flit || { rm -rf "$$tmp"; exit 1; }; \
	$$tmp/flit coord serve -dir $$tmp/campaign -addr 127.0.0.1:0 \
		-command "experiments table4" -shards 2 -lease-ttl 2s -exit-when-done \
		>$$tmp/coord.txt 2>&1 & \
	cpid=$$!; trap 'kill $$cpid 2>/dev/null; rm -rf "$$tmp"' EXIT; \
	url=""; for _ in $$(seq 1 100); do \
		url=$$(sed -n 's|.*on \(http://.*\)|\1|p' $$tmp/coord.txt); \
		if [ -n "$$url" ]; then break; fi; sleep 0.1; \
	done; \
	test -n "$$url" && \
	c4=$$(sed -n 's/^campaign \(c[0-9a-f]*\): submitted "experiments table4".*/\1/p' $$tmp/coord.txt) && \
	test -n "$$c4" && \
	{ FLIT_WORK_STALL=60s $$tmp/flit work -coord "$$url" -j 2 -v -name straggler \
		>$$tmp/workA.txt 2>&1 & } ; apid=$$!; \
	for _ in $$(seq 1 100); do \
		if grep -q 'leased shard' $$tmp/workA.txt; then break; fi; sleep 0.1; \
	done; \
	grep -q 'leased shard' $$tmp/workA.txt && \
	$$tmp/flit coord status -coord "$$url" -campaign "$$c4" >$$tmp/detail.txt && \
	grep -q 'leased to straggler' $$tmp/detail.txt && \
	c3=$$($$tmp/flit coord submit -coord "$$url" -command "experiments table3" -shards 2 \
		| sed -n 's/^campaign \(c[0-9a-f]*\):.*/\1/p') && \
	test -n "$$c3" && \
	c2=$$($$tmp/flit coord submit -coord "$$url" -command "experiments table2" -shards 2 \
		-max-shard-attempts 2 | sed -n 's/^campaign \(c[0-9a-f]*\):.*/\1/p') && \
	test -n "$$c2" && \
	{ FLIT_WORK_FAIL=table2:1 $$tmp/flit work -coord "$$url" -j 2 -name finisher \
		>$$tmp/workB.txt 2>&1 & } ; bpid=$$!; \
	q=""; for _ in $$(seq 1 300); do \
		$$tmp/flit coord status -coord "$$url" >$$tmp/fleet.txt; \
		if grep -q 'quarantined' $$tmp/fleet.txt; then q=yes; break; fi; sleep 0.1; \
	done; \
	test -n "$$q" && \
	grep -q "campaign $$c2: .*1 quarantined.*FAILED:" $$tmp/fleet.txt && \
	$$tmp/flit coord status -coord "$$url" -campaign "$$c2" >$$tmp/faildetail.txt && \
	grep -q 'shard 1: QUARANTINED after 2 attempts' $$tmp/faildetail.txt && \
	kill -9 $$apid && \
	wait $$bpid && \
	grep -q 'campaigns terminal (5 shards completed here, 0 lost to re-lease, 2 failed)' $$tmp/workB.txt && \
	cexit=0; wait $$cpid || cexit=$$?; test "$$cexit" -ne 0 && \
	grep -q "campaign $$c4: 2/2 shards complete, [1-9][0-9]* re-leases" $$tmp/coord.txt && \
	grep -q "campaign $$c3: 2/2 shards complete, 0 re-leases" $$tmp/coord.txt && \
	grep -q "campaign $$c2: FAILED" $$tmp/coord.txt && \
	$$tmp/flit experiments -j 2 table4 >$$tmp/unsharded.txt && \
	$$tmp/flit merge -j 2 $$tmp/campaign/artifacts/$$c4/shard-*.json >$$tmp/merged.txt && \
	diff $$tmp/unsharded.txt $$tmp/merged.txt && \
	$$tmp/flit experiments -j 2 table3 >$$tmp/unsharded3.txt && \
	$$tmp/flit merge -j 2 $$tmp/campaign/artifacts/$$c3/shard-*.json >$$tmp/merged3.txt && \
	diff $$tmp/unsharded3.txt $$tmp/merged3.txt && \
	fm=0; $$tmp/flit merge $$tmp/campaign/artifacts/$$c2/shard-*.json \
		>/dev/null 2>$$tmp/failmerge.txt || fm=$$?; test "$$fm" -ne 0 && \
	grep -q 'missing shard indices \[1\]' $$tmp/failmerge.txt && \
	echo "coord smoke: crash re-leased, poisoned shard quarantined, healthy campaigns byte-identical"

# One iteration of the engine benchmarks, appending their timings to
# BENCH_shard.json (the recorded perf trajectory of the engine). The warm
# benches also enforce the key-first contract: a fully covered re-run is
# byte-identical with zero executables built.
bench-shard:
	BENCH_SHARD_JSON=$(CURDIR)/BENCH_shard.json \
		$(GO) test -run NONE -bench 'BenchmarkParallelEngineSweep|BenchmarkSpeculativeBisect|BenchmarkWarmPath|BenchmarkPersistentStore|BenchmarkRemoteStore|BenchmarkCoordCampaign' -benchtime 1x .

# The full benchmark suite regenerates every table and figure of the paper
# and times the parallel engine (BenchmarkParallelEngineSweep).
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .
