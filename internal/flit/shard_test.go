package flit

import (
	"bytes"
	"testing"

	"repro/internal/comp"
	"repro/internal/exec"
)

// TestShardMergeMatrixEquivalence is the sharding property test: for every
// shard count N in {1, 2, 3, 4, 8}, running the full compilation matrix as
// N independent shards (each with its own pool and cache), exporting each
// shard's artifact through the JSON serialization, and replaying the
// unsharded run against the merged caches produces results byte-identical
// to the plain -j1 run — with every run evaluation answered from the
// artifacts (zero run-cache misses).
func TestShardMergeMatrixEquivalence(t *testing.T) {
	matrix := comp.Matrix()

	ref := newSuite()
	ref.Pool, ref.Cache = exec.Sequential(), NewCache()
	refRes, err := ref.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(refRes)

	for _, n := range []int{1, 2, 3, 4, 8} {
		arts := make([]*Artifact, n)
		for i := 0; i < n; i++ {
			shard := exec.Shard{Index: i, Count: n}
			s := newSuite()
			s.Pool, s.Cache, s.Shard = exec.New(4), NewCache(), shard
			if _, err := s.RunMatrix(matrix); err != nil {
				t.Fatalf("N=%d shard %d: %v", n, i, err)
			}
			// Round-trip every artifact through its JSON bytes: the merge
			// below must work from exactly what a remote shard would ship.
			var buf bytes.Buffer
			if err := s.Cache.Export(shard, []string{"matrix"}).WriteJSON(&buf); err != nil {
				t.Fatalf("N=%d shard %d: export: %v", n, i, err)
			}
			art, err := ReadArtifact(&buf)
			if err != nil {
				t.Fatalf("N=%d shard %d: re-read: %v", n, i, err)
			}
			arts[i] = art
		}
		if err := ValidateShardSet(arts); err != nil {
			t.Fatalf("N=%d: shard set invalid: %v", n, err)
		}
		merged := newSuite()
		merged.Pool, merged.Cache = exec.Sequential(), NewCache()
		for _, a := range arts {
			if err := merged.Cache.Import(a); err != nil {
				t.Fatalf("N=%d: import: %v", n, err)
			}
		}
		res, err := merged.RunMatrix(matrix)
		if err != nil {
			t.Fatalf("N=%d: merged replay: %v", n, err)
		}
		if got := matrixFingerprint(res); got != want {
			t.Errorf("N=%d: merged fingerprint differs from unsharded -j1 run", n)
		}
		if _, misses := merged.Cache.Stats(); misses != 0 {
			t.Errorf("N=%d: merged replay recomputed %d runs; shards did not cover the matrix", n, misses)
		}
	}
}

// TestShardedRunsPartitionCells: each shard computes only its slice — the
// union covers the matrix with each compilation's cells computed by
// exactly one shard (the baselines are shared prefix state, partitioned by
// test index).
func TestShardedRunsPartitionCells(t *testing.T) {
	matrix := comp.Matrix()
	const n = 3
	total := 0
	for i := 0; i < n; i++ {
		s := newSuite()
		s.Cache = NewCache()
		s.Shard = exec.Shard{Index: i, Count: n}
		res, err := s.RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		rows := len(res.ForTest("DotTest"))
		if want := len(exec.Shard{Index: i, Count: n}.Indices(len(matrix))); rows != want {
			t.Errorf("shard %d computed %d cells, owns %d", i, rows, want)
		}
		total += rows
	}
	if total != len(matrix) {
		t.Errorf("shards computed %d cells in total, matrix has %d", total, len(matrix))
	}
}

// TestValidateShardSetRejects covers the merge validator's failure modes:
// incomplete sets, duplicates, mixed commands, wrong counts, and foreign
// engine or format versions.
func TestValidateShardSetRejects(t *testing.T) {
	mk := func(i, n int, command ...string) *Artifact {
		c := NewCache()
		return c.Export(exec.Shard{Index: i, Count: n}, command)
	}
	if err := ValidateShardSet(nil); err == nil {
		t.Error("empty set accepted")
	}
	if err := ValidateShardSet([]*Artifact{mk(0, 2, "run")}); err == nil {
		t.Error("incomplete set (1 of 2) accepted")
	}
	if err := ValidateShardSet([]*Artifact{mk(0, 2, "run"), mk(0, 2, "run")}); err == nil {
		t.Error("duplicate shard accepted")
	}
	if err := ValidateShardSet([]*Artifact{mk(0, 2, "run"), mk(1, 2, "bisect")}); err == nil {
		t.Error("mixed commands accepted")
	}
	if err := ValidateShardSet([]*Artifact{mk(0, 3, "run"), mk(1, 3, "run")}); err == nil {
		t.Error("two shards of a 3-sharding accepted")
	}
	bad := mk(0, 1, "run")
	bad.Engine = "flit-engine/0-other"
	if err := ValidateShardSet([]*Artifact{bad}); err == nil {
		t.Error("mismatched engine version accepted")
	}
	badV := mk(0, 1, "run")
	badV.Version = ArtifactVersion + 1
	if err := ValidateShardSet([]*Artifact{badV}); err == nil {
		t.Error("mismatched format version accepted")
	}
	ok := []*Artifact{mk(1, 2, "run"), mk(0, 2, "run")} // order-independent
	if err := ValidateShardSet(ok); err != nil {
		t.Errorf("complete set rejected: %v", err)
	}
	if err := ValidateShardSet([]*Artifact{mk(0, 1, "run")}); err != nil {
		t.Errorf("single unsharded artifact rejected: %v", err)
	}
}
