package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

const testEngine = "flit-engine/test"

func TestMemRoundTripAndLRU(t *testing.T) {
	s := NewMem(2)
	if _, ok := s.Get("a"); ok {
		t.Fatal("empty store reported a hit")
	}
	buf := []byte("payload-a")
	if err := s.Put("a", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // the store must have copied
	if got, ok := s.Get("a"); !ok || string(got) != "payload-a" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	s.Put("b", []byte("payload-b"))
	s.Get("a") // refresh a: b is now least recently used
	s.Put("c", []byte("payload-c"))
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// Overwrite replaces in place without growing.
	s.Put("a", []byte("payload-a2"))
	if got, _ := s.Get("a"); string(got) != "payload-a2" {
		t.Fatalf("overwrite lost: %q", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after overwrite = %d, want 2", s.Len())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.json")
	if err := WriteFileAtomic(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "two" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// No temp debris may survive a successful write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %s left behind", e.Name())
		}
	}
	if err := WriteFileAtomic(filepath.Join(dir, "nosuchdir", "f"), []byte("x")); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestDiskRoundTripAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("empty store reported a hit")
	}
	payload := []byte(`{"key":"k","scalar":7}`)
	if err := d.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	// A fresh handle — the second process of the cross-process story —
	// must see the entry.
	d2, err := Open(dir, testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := d2.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("fresh handle Get = %q, %v", got, ok)
	}
	st, err := d2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Corrupt != 0 || st.Engine != testEngine {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestDiskEngineFencing(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, testEngine); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, "flit-engine/other"); err == nil {
		t.Fatal("foreign engine opened the store")
	}
	// A corrupt manifest must refuse, not clobber.
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, testEngine); err == nil {
		t.Fatal("unreadable manifest accepted")
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || string(raw) != "not json" {
		t.Fatalf("refusing Open rewrote the manifest: %q, %v", raw, err)
	}
}

// TestDiskCorruptEntryIsMissAndHeals: every way an entry file can be
// damaged must read as a miss, and the next Put of the key repairs it.
func TestDiskCorruptEntryIsMiss(t *testing.T) {
	payload := []byte(`{"v":1}`)
	corruptions := []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"trailing garbage", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString("{}")
			f.Close()
		}},
		{"payload bit flip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			flipped := bytes.Replace(raw, []byte(`"v":1`), []byte(`"v":2`), 1)
			if bytes.Equal(raw, flipped) {
				t.Fatal("mutation did not apply")
			}
			if err := os.WriteFile(path, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"emptied", func(t *testing.T, path string) {
			if err := os.WriteFile(path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Open(t.TempDir(), testEngine)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, d.path("k"))
			if got, ok := d.Get("k"); ok {
				t.Fatalf("corrupt entry served as a hit: %q", got)
			}
			if d.CorruptReads() == 0 {
				t.Error("corrupt read not counted")
			}
			// The recomputation's Put heals the entry.
			if err := d.Put("k", payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get("k"); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("healed entry Get = %q, %v", got, ok)
			}
		})
	}
}

// TestDiskWrongKeyFile: an entry file transplanted to another key's path
// (a hand-copied or hash-colliding file) must miss — the envelope key is
// checked against the requested key, not just the path.
func TestDiskWrongKeyFile(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("a", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	src := d.path("a")
	dst := d.path("b")
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("b"); ok {
		t.Fatal("entry for key a answered a Get for key b")
	}
}

// TestDiskForeignEngineEntryIsMiss: an entry file copied in from a store
// of a different engine version misses even when structurally valid.
func TestDiskForeignEngineEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	foreign, err := Open(filepath.Join(dir, "f"), "flit-engine/other")
	if err != nil {
		t.Fatal(err)
	}
	if err := foreign.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	d, err := Open(filepath.Join(dir, "d"), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(foreign.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(d.path("k")), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("foreign-engine entry served as a hit")
	}
}

func TestDiskGC(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	// Five entries with strictly increasing mtimes, plus one corrupt file.
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := d.Put(key, []byte(fmt.Sprintf(`%d`, i))); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(d.path(key), base, base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	corruptPath := d.path("k1")
	if err := os.WriteFile(corruptPath, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	plan, err := d.GC(2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt file always pruned; of the 4 valid entries the 2 oldest go.
	if plan.Kept != 2 || len(plan.Pruned) != 3 || plan.Corrupt != 1 {
		t.Fatalf("dry-run plan = %+v", plan)
	}
	if _, err := os.Stat(corruptPath); err != nil {
		t.Fatal("dry-run GC deleted a file")
	}

	res, err := d.GC(2, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 2 || len(res.Pruned) != 3 {
		t.Fatalf("apply result = %+v", res)
	}
	for _, path := range res.Pruned {
		if _, err := os.Stat(path); err == nil {
			t.Errorf("pruned file %s still exists", path)
		}
	}
	// The newest entries survive.
	for _, key := range []string{"k3", "k4"} {
		if _, ok := d.Get(key); !ok {
			t.Errorf("newest entry %s was pruned", key)
		}
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 2 || st.Corrupt != 0 {
		t.Fatalf("post-GC Stats = %+v", st)
	}
}

// TestDiskGCDeterministicOnTiedMtimes: entries with identical mtimes are
// ordered by path, so repeated planning passes agree on what to prune.
func TestDiskGCDeterministicOnTiedMtimes(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	tied := time.Now().Add(-time.Hour)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := d.Put(key, []byte(`1`)); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(d.path(key), tied, tied); err != nil {
			t.Fatal(err)
		}
	}
	first, err := d.GC(3, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := d.GC(3, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Pruned) != len(first.Pruned) {
			t.Fatalf("plan size changed: %d vs %d", len(again.Pruned), len(first.Pruned))
		}
		for j := range again.Pruned {
			if again.Pruned[j] != first.Pruned[j] {
				t.Fatalf("tied-mtime plan nondeterministic at %d: %s vs %s",
					j, again.Pruned[j], first.Pruned[j])
			}
		}
	}
}

// TestDiskByteLimitGC: the -max-bytes bound prunes oldest-first until the
// tree fits.
func TestDiskByteLimitGC(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	var sizes []int64
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		if err := d.Put(key, []byte(`12345678`)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(d.path(key))
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
		os.Chtimes(d.path(key), base, base.Add(time.Duration(i)*time.Minute))
	}
	// Allow roughly two entries' worth of bytes.
	res, err := d.GC(0, sizes[0]*2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 2 || len(res.Pruned) != 2 {
		t.Fatalf("byte-limit GC = %+v (entry size %d)", res, sizes[0])
	}
}

// TestDiskConcurrentPutGet: many goroutines hammering overlapping keys
// must stay consistent — every hit returns exactly what some Put stored.
func TestDiskConcurrentPutGet(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("k%d", i%5)
				want := []byte(fmt.Sprintf(`"v%d"`, i%5))
				if err := d.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := d.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("Get(%s) = %q, want %q", key, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
