// Command flit is the reproduction's command-line interface: it runs the
// FLiT compilation matrix over the MFEM examples, root-causes variability
// with Bisect, and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	flit run [-j N] [-test ExampleNN]        run the 244-compilation matrix
//	flit bisect [-j N] -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
//	flit experiments [-j N] <table1|figure4|figure5|figure6|table2|table3|
//	                  findings|motivation|table4|laghos-nan|table5|mpi|
//	                  sweep|all>
//	flit merge [-j N] shard0.json shard1.json ...
//	flit delta -baseline a.json[,b.json...] [-delta-out report.json] new0.json ...
//	flit gc -dir DIR [-keep N] [-dry-run] [-warm-start a.json,b.json]
//	flit store stats -store DIR
//	flit store gc -store DIR [-max-entries N] [-max-bytes N] [-dry-run]
//	flit store serve -dir DIR [-addr HOST:PORT]
//	flit coord serve -dir DIR [-command "experiments sweep" -shards N]
//	                 [-addr HOST:PORT] [-lease-ttl D] [-exit-when-done]
//	flit coord submit -coord URL -command "experiments sweep" -shards N
//	flit coord status -coord URL [-campaign ID]
//	flit coord gc -coord URL [-keep N] [-dry-run]
//	flit work -coord URL [-j N] [-name ID] [-store DIR]
//
// "sweep" renders the sampled end-to-end digest of every subsystem on a
// fresh engine — the determinism witness the equivalence tests compare
// across -j values. It is not part of "all" (which already regenerates
// each full artifact individually).
//
// Every subcommand accepts -j N: the number of (compilation, test)
// evaluations executed concurrently by the parallel engine (0, the
// default, means one per CPU; 1 reproduces the paper's sequential order).
// Results are bit-identical at every -j.
//
// Distributed runs: -shard i/N partitions the deterministic job index
// space of a subcommand across N cooperating invocations (machines). A
// shard executes only its slice of the expensive evaluations and writes a
// self-describing JSON artifact (-shard-out) instead of the normal output.
// `flit merge` validates that the artifacts form a complete shard set from
// the same engine version and command, seeds a fresh engine's cache with
// their union, and replays the recorded command — producing output
// byte-identical to an unsharded run.
//
// Observability: -stats prints build/run-cache hit/miss/eviction counters
// and the bisect engine's execution counters (paper count vs speculative
// extra) to stderr after the run; -cache-cap M bounds the memoized run
// results to M entries with LRU eviction (0 = unbounded) so long-lived
// runs do not grow memory without bound.
//
// Incremental runs: -warm-start a.json,b.json seeds the engine's cache
// from previously exported shard artifacts before the run. Unlike merge,
// no complete shard set is required — any artifacts from this engine
// version will do; covered evaluations become cache hits, everything else
// is recomputed, and the output is byte-identical to a cold run.
//
// Persistence: -store DIR attaches an on-disk content-addressed run store
// as the cache's second tier. Every in-memory miss consults the store by
// plan key before building anything, and every fresh computation is
// written through — so a second process pointed at the same DIR serves
// covered evaluations with zero materialized builds, no -warm-start
// manifest required. The store is fenced to this build's engine version
// (a foreign store is rejected at startup), writes are atomic, and
// corrupt or truncated entries are treated as misses and recomputed,
// never replayed. `flit store stats` reports entry count, bytes, and
// corruption; `flit store gc` prunes corrupt files and the oldest entries
// down to -max-entries/-max-bytes.
//
// Remote stores: `flit store serve -dir DIR -addr HOST:PORT` exposes a
// Disk store over HTTP, and -remote URL on any subcommand attaches it as
// a persistent tier — the cross-machine form of -store, with the same
// engine fencing (per request, via headers) and corruption-as-miss
// discipline (every envelope is SHA-256 re-validated client-side).
// Transport faults are retried with exponential backoff and degrade to
// cache misses when exhausted, so a dead server costs recomputation,
// never a wrong result and never a failed campaign. -store DIR composes
// with -remote URL as a local read-through/write-through cache in front
// of the shared server; -stats adds a "remote:" traffic line. The
// transport is tuned with -remote-retries N (attempts per request) and
// -remote-timeout D (per-operation deadline), which require -remote (or
// -coord) and are reported back as effective values by -stats.
//
// Distributed campaigns: `flit coord serve` owns a *set* of campaigns —
// each a recorded command, a shard count, and the engine version, keyed
// by a campaign ID derived from exactly those coordinates — and `flit
// work -coord URL` workers lease shard indices from it instead of being
// assigned them by hand, draining one campaign and picking up the next.
// Campaigns are submitted at boot (-command/-shards) or while the
// coordinator runs (`flit coord submit`); submission is idempotent by
// spec. Leases are time-bounded and renewed by heartbeat; a worker that
// crashes or stalls stops heartbeating and its shard is re-leased to the
// next worker that asks — and only a lease request reclaims, so `flit
// coord status` (the fleet view, or one campaign's per-lease detail with
// -campaign) is a pure read that never disturbs scheduling. Completions
// are last-writer-wins — shard artifacts are deterministic and
// unstamped, so duplicate or late uploads carry identical bytes and are
// accepted idempotently. The coordinator journals its state atomically
// before every acknowledgment; restarting it with the same -dir resumes
// every campaign exactly (an older single-campaign journal migrates in
// place). The same mux serves the object-store protocol, so workers
// write runs through to the coordinator's shared store and a re-leased
// shard replays its predecessor's finished cells as warm hits — across
// campaigns too, because store keys are injective over the same
// coordinates that name a campaign. On each campaign's final completion
// the coordinator validates its artifact set server-side;
// -exit-when-done exits 0 once every submitted campaign has. `flit
// coord gc` retires superseded completed generations (same command,
// older submission) server-side, inside the journal's ownership
// boundary. SIGINT/SIGTERM drain cleanly on both sides: the coordinator
// and store server stop accepting, finish in-flight requests, and exit
// 0; a worker cancels its scheduling polls immediately but finishes and
// reports the shard it is running, then exits 0.
//
// Incremental campaigns: with -warm-start in effect, -delta-out FILE
// writes a structured DeltaReport after the run — which build/run keys are
// new against the warmed baseline, which baseline keys were dropped, and
// (under -delta-verify, which recomputes covered evaluations instead of
// trusting them) which values diverged bit-exactly; -stats adds a one-line
// delta summary on stderr. `flit delta` computes the same report offline
// between two artifact sets, without re-running anything, and `flit gc`
// prunes superseded artifact generations from a campaign directory —
// grouped by (engine version, command, shard), keeping the newest -keep
// files per slot and never touching files named by its -warm-start list.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errParsed marks flag-parse failures the flag package has already
// reported on stderr, so run does not print them a second time.
var errParsed = errors.New("flag parse error")

// errHelp marks an explicit -h/-help request: usage was printed and the
// invocation succeeded.
var errHelp = errors.New("help requested")

// run dispatches a CLI invocation and returns its exit code: 0 on success,
// 1 on a runtime error, 2 on a usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], stdout, stderr)
	case "bisect":
		err = cmdBisect(args[1:], stdout, stderr)
	case "experiments":
		err = cmdExperiments(args[1:], stdout, stderr)
	case "merge":
		err = cmdMerge(args[1:], stdout, stderr)
	case "delta":
		err = cmdDelta(args[1:], stdout, stderr)
	case "gc":
		err = cmdGc(args[1:], stdout, stderr)
	case "store":
		err = cmdStore(args[1:], stdout, stderr)
	case "coord":
		err = cmdCoord(args[1:], stdout, stderr)
	case "work":
		err = cmdWork(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errHelp):
		return 0
	case errors.Is(err, errParsed):
		return 2
	default:
		fmt.Fprintln(stderr, "flit:", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  flit run [-j N] [-test ExampleNN]
  flit bisect [-j N] -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
  flit experiments [-j N] <name|all>
  flit merge [-j N] shard0.json shard1.json ...
  flit delta -baseline a.json[,b.json...] [-delta-out report.json] new0.json ...
  flit gc -dir DIR [-keep N] [-dry-run] [-warm-start a.json,b.json]
  flit store stats -store DIR
  flit store gc -store DIR [-max-entries N] [-max-bytes N] [-dry-run]
  flit store serve -dir DIR [-addr HOST:PORT]
  flit coord serve -dir DIR [-command "experiments sweep" -shards N]
                   [-addr HOST:PORT] [-lease-ttl D] [-exit-when-done]
  flit coord submit -coord URL -command "experiments sweep" -shards N
  flit coord status -coord URL [-campaign ID]
  flit coord gc -coord URL [-keep N] [-dry-run]
  flit work -coord URL [-j N] [-name ID] [-store DIR]

experiment names: table1 figure4 figure5 figure6 table2 table3 findings
  motivation table4 laghos-nan table5 mpi, or "sweep" for the sampled
  end-to-end digest of every subsystem

-j N runs up to N evaluations in parallel (0 = one per CPU, 1 = the
paper's sequential order); output is bit-identical at every -j.

-shard i/N executes one shard of the deterministic job index space and
writes a JSON result artifact to -shard-out FILE instead of the normal
output; "flit merge" reassembles a complete artifact set into output
byte-identical to the unsharded run. -warm-start a.json,b.json seeds the
cache from prior artifacts (no complete set required) before running;
with it, -delta-out FILE writes the run's DeltaReport (new/dropped/changed
keys vs the warmed baseline) and -delta-verify recomputes covered
evaluations to detect bit-exact divergence instead of trusting them.
-stats prints cache and bisect execution counters (plus the delta summary
when warm-started) to stderr; -cache-cap M bounds resident run results
with LRU eviction (0 = unbounded).

-store DIR attaches a persistent on-disk run store as the cache's second
tier: in-memory misses are answered from DIR before any build happens and
fresh results are written through, so a later process pointed at the same
DIR replays covered evaluations with zero builds and no -warm-start
manifest. The store is fenced to this build's engine version; corrupt
entries read as misses and are recomputed. "flit store stats" and "flit
store gc" inspect and prune a store directory.

-remote URL attaches a run store served by "flit store serve" (the
cross-machine form of -store): engine-fenced per request, every envelope
SHA-256 re-validated client-side, transport faults retried with backoff
and degraded to cache misses when exhausted — a dead server never fails a
campaign. Composes with -store DIR as a local read-through/write-through
cache in front of the server; -stats adds a "remote:" traffic line.
-remote-retries N and -remote-timeout D tune the transport (they require
-remote or -coord; -stats reports the effective values).

"flit coord serve" owns a set of campaigns (each keyed by an ID derived
from engine, command, and shard count) and leases their shard indices to
"flit work -coord URL" workers over time-bounded, heartbeat-renewed
leases: a crashed or stalled worker's shard is re-leased, duplicate or
late completions are accepted idempotently (artifacts are deterministic),
and the journaled coordinator resumes every campaign exactly after a
restart with the same -dir (older single-campaign journals migrate).
"flit coord submit" registers campaigns while it runs (idempotent by
spec); workers drain one campaign, then pick up the next. "flit coord
status" renders the fleet view (or one campaign's leases with -campaign)
as a pure read — it never reclaims a lease. "flit coord gc" retires
superseded completed generations server-side. The coordinator's mux also
serves the object-store protocol, so workers share one URL for
scheduling and run write-through. SIGTERM drains both sides cleanly
(exit 0); -exit-when-done exits once every campaign's completed artifact
set validates server-side.

"flit delta" diffs two artifact sets offline (no re-running): each set is
validated like merge; "flit gc" prunes superseded artifact generations
per (engine, command, shard) slot, keeping the newest -keep of each and
never touching files listed in its -warm-start manifest.`)
}

// cliOpts carries the engine-shaping flags shared by every subcommand.
type cliOpts struct {
	j           *int
	shardStr    *string
	shardOut    *string
	stats       *bool
	cacheCap    *int
	warmStart   *string
	deltaOut    *string
	deltaVerify *bool
	storeDir    *string
	remoteURL   *string
	// remoteRetries/remoteTimeout are the shared transport knobs: they
	// shape every client that speaks the store's retry discipline, whether
	// it points at a -remote object store or (in `flit work`) a -coord
	// coordinator. 0 selects the production default.
	remoteRetries *int
	remoteTimeout *time.Duration
	// remote is the attached Remote backend (set by attachStore when
	// -remote is given); printStats reads its transport counters.
	remote *store.Remote
}

// newFlagSet builds a subcommand flag set that reports parse errors back
// to the caller instead of exiting the process, with the shared engine
// knobs (-j, -shard, -shard-out, -stats, -cache-cap).
func newFlagSet(name string, stderr io.Writer) (*flag.FlagSet, *cliOpts) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	o := &cliOpts{
		j:        fs.Int("j", 0, "parallel evaluations (0 = one per CPU, 1 = sequential)"),
		shardStr: fs.String("shard", "", `execute one shard "i/N" of the job index space and write an artifact`),
		shardOut: fs.String("shard-out", "", "artifact file a -shard run writes (required with -shard)"),
		stats:    fs.Bool("stats", false, "print cache and bisect execution counters to stderr"),
		cacheCap: fs.Int("cache-cap", 0, "max resident memoized run results, LRU-evicted (0 = unbounded)"),
		warmStart: fs.String("warm-start", "",
			"comma-separated shard artifacts whose results seed the cache (no complete set required)"),
		deltaOut: fs.String("delta-out", "",
			"write the run's DeltaReport vs the -warm-start baseline to FILE (JSON)"),
		deltaVerify: fs.Bool("delta-verify", false,
			"recompute baseline-covered evaluations and report bit-exact divergence instead of trusting them"),
		storeDir: fs.String("store", "",
			"persistent run-store directory: misses consult it before building, results are written through"),
		remoteURL: fs.String("remote", "",
			"remote run-store URL (flit store serve): the cross-machine -store; composes with -store DIR as a local cache tier"),
	}
	o.remoteRetries, o.remoteTimeout = addTransportFlags(fs)
	return fs, o
}

// addTransportFlags registers the shared remote-transport knobs on fs —
// the same two flags tune -remote object-store clients and the `flit
// work` coordinator client, because both speak the same retry/backoff
// discipline.
func addTransportFlags(fs *flag.FlagSet) (*int, *time.Duration) {
	retries := fs.Int("remote-retries", 0,
		"total attempts per remote request, first try included (0 = the default 4)")
	timeout := fs.Duration("remote-timeout", 0,
		"deadline for one remote operation across all its retries (0 = the default 30s)")
	return retries, timeout
}

// transportOptions validates the shared knobs and builds the options both
// -remote and -coord clients run with.
func transportOptions(retries int, timeout time.Duration) (*store.RemoteOptions, error) {
	if retries < 0 {
		return nil, errors.New("-remote-retries must be >= 0 (0 selects the default)")
	}
	if timeout < 0 {
		return nil, errors.New("-remote-timeout must be >= 0 (0 selects the default)")
	}
	return &store.RemoteOptions{Attempts: retries, Deadline: timeout}, nil
}

// readArtifacts loads a list of artifact files, skipping empty entries
// (comma-split flag values may contain them).
func readArtifacts(paths []string) ([]*flit.Artifact, error) {
	arts := make([]*flit.Artifact, 0, len(paths))
	for _, p := range paths {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		a, err := flit.ReadArtifactFile(p)
		if err != nil {
			return nil, err
		}
		arts = append(arts, a)
	}
	return arts, nil
}

// loadWarmStart seeds an engine's cache from the -warm-start artifact
// list. Unlike merge it tolerates any subset of artifacts — warm-starting
// reuses results, it does not replay a command.
func (o *cliOpts) loadWarmStart(eng *experiments.Engine) error {
	if *o.warmStart == "" {
		return nil
	}
	arts, err := readArtifacts(strings.Split(*o.warmStart, ","))
	if err != nil {
		return fmt.Errorf("-warm-start: %w", err)
	}
	return eng.WarmStart(arts...)
}

// parseFlags parses and maps failures to errParsed (the FlagSet has
// already written the diagnostic to stderr) and -h to errHelp (usage was
// printed; the invocation succeeded).
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return errHelp
	default:
		return fmt.Errorf("%w: %v", errParsed, err)
	}
}

// shardMode reports whether the user asked for a shard run at all —
// including the degenerate but valid "0/1", which executes everything and
// exports a single-artifact set that `flit merge` accepts as the N=1
// partition.
func (o *cliOpts) shardMode() bool { return *o.shardStr != "" }

// engine builds the engine a subcommand runs on, honoring -j, -cache-cap,
// and -shard.
func (o *cliOpts) engine() (*experiments.Engine, error) {
	shard, err := exec.ParseShard(*o.shardStr)
	if err != nil {
		return nil, err
	}
	if o.shardMode() {
		if *o.shardOut == "" {
			return nil, errors.New("-shard requires -shard-out FILE")
		}
		if *o.cacheCap > 0 {
			// Eviction would silently drop results from the exported
			// artifact; a shard's whole product is its complete cache.
			return nil, errors.New("-cache-cap cannot be combined with -shard (evicted results would be missing from the artifact)")
		}
	}
	if err := o.checkDeltaFlags(); err != nil {
		return nil, err
	}
	eng := experiments.NewEngineCap(*o.j, *o.cacheCap)
	eng.SetShard(shard)
	if err := o.attachStore(eng); err != nil {
		return nil, err
	}
	if *o.warmStart != "" && *o.cacheCap <= 0 {
		// Warm starts track provenance: -stats can then summarize the
		// delta, and -delta-out can write the structured report. Not under
		// -cache-cap, though — eviction removes entries (and their
		// provenance) from the cache, so any delta would be fiction;
		// checkDeltaFlags already rejected the explicit delta flags, and a
		// capped warm start simply reports no delta at all.
		eng.EnableDelta(*o.deltaVerify)
	}
	if err := o.loadWarmStart(eng); err != nil {
		return nil, err
	}
	return eng, nil
}

// checkDeltaFlags rejects delta-flag combinations that could not produce a
// truthful report: no baseline to delta against, or an evicting cache that
// forgets the provenance the report is built from.
func (o *cliOpts) checkDeltaFlags() error {
	if (*o.deltaOut != "" || *o.deltaVerify) && *o.warmStart == "" {
		return errors.New("-delta-out/-delta-verify require -warm-start BASELINE_ARTIFACTS")
	}
	if (*o.deltaOut != "" || *o.deltaVerify) && *o.cacheCap > 0 {
		return errors.New("-delta-out/-delta-verify cannot be combined with -cache-cap (evicted entries would be misreported as dropped)")
	}
	if *o.deltaVerify && *o.storeDir != "" {
		// Verify mode exists to recompute covered evaluations; a store hit
		// would replay a persisted value and report it as a recomputation.
		return errors.New("-delta-verify cannot be combined with -store (store hits would replay results instead of recomputing them)")
	}
	if *o.deltaVerify && *o.remoteURL != "" {
		// Same reason one tier further out: a remote hit is a replay too.
		return errors.New("-delta-verify cannot be combined with -remote (remote hits would replay results instead of recomputing them)")
	}
	return nil
}

// attachStore builds the engine cache's persistent tier from -store and
// -remote: the local Disk store (opened, creating if absent, rejecting
// one fenced to a different engine version or layout) in front of the
// Remote client when both are given — a read-through/write-through local
// cache for a shared server — or either alone. A no-op without both.
func (o *cliOpts) attachStore(eng *experiments.Engine) error {
	var tiers []store.Store
	if *o.storeDir != "" {
		d, err := store.Open(*o.storeDir, flit.EngineVersion)
		if err != nil {
			return err
		}
		tiers = append(tiers, d)
	}
	opts, err := transportOptions(*o.remoteRetries, *o.remoteTimeout)
	if err != nil {
		return err
	}
	if *o.remoteURL == "" && (*o.remoteRetries != 0 || *o.remoteTimeout != 0) {
		return errors.New("-remote-retries/-remote-timeout require -remote URL")
	}
	if *o.remoteURL != "" {
		r, err := store.NewRemote(*o.remoteURL, flit.EngineVersion, opts)
		if err != nil {
			return err
		}
		o.remote = r
		tiers = append(tiers, r)
	}
	eng.AttachStoreTiers(tiers...)
	return nil
}

// emitDelta writes the warm-started run's DeltaReport (-delta-out) and its
// one-line summary (-stats, on stderr). A no-op without a warmed baseline.
func emitDelta(eng *experiments.Engine, o *cliOpts, command []string, stderr io.Writer) error {
	if !eng.DeltaEnabled() {
		return nil
	}
	rep, err := eng.DeltaReport(command)
	if err != nil {
		return err
	}
	if *o.stats {
		fmt.Fprintln(stderr, rep.Summary())
	}
	if *o.deltaOut != "" {
		return flit.WriteDeltaReportFile(rep, *o.deltaOut)
	}
	return nil
}

// execute runs a subcommand's renderer through the shard/stats plumbing.
// Unsharded, the renderer writes its normal output to stdout. Sharded, the
// rendering is discarded — a shard's product is the artifact holding every
// build/run result it computed, written to -shard-out, with a one-line
// receipt on stdout. command is the canonical replay command recorded in
// the artifact for `flit merge`.
func execute(eng *experiments.Engine, o *cliOpts, command []string,
	render func(w io.Writer) error, stdout, stderr io.Writer) error {
	out := stdout
	if o.shardMode() {
		out = io.Discard
	}
	err := render(out)
	if *o.stats {
		o.printStats(eng, stderr)
	}
	if err != nil {
		return err
	}
	if err := emitDelta(eng, o, command, stderr); err != nil {
		return err
	}
	if o.shardMode() {
		art := eng.ExportArtifact(command)
		art.Stamp()
		if err := flit.WriteArtifactFile(art, *o.shardOut); err != nil {
			return fmt.Errorf("writing shard artifact: %w", err)
		}
		fmt.Fprintf(stdout, "shard %s of %q: %d runs, %d costs -> %s\n",
			eng.Shard(), strings.Join(command, " "), len(art.Runs), len(art.Costs), *o.shardOut)
	}
	return nil
}

func (o *cliOpts) printStats(eng *experiments.Engine, w io.Writer) {
	m := eng.CacheMetrics()
	fmt.Fprintf(w, "cache runs:  hits=%d misses=%d evictions=%d entries=%d cap=%d\n",
		m.Runs.Hits, m.Runs.Misses, m.Runs.Evictions, m.Runs.Entries, m.Runs.Capacity)
	fmt.Fprintf(w, "cache costs: hits=%d misses=%d evictions=%d entries=%d cap=%d\n",
		m.Costs.Hits, m.Costs.Misses, m.Costs.Evictions, m.Costs.Entries, m.Costs.Capacity)
	// Key-first build accounting: builds is how many executables this run
	// actually linked, skipped-builds how many plans were answered entirely
	// from the cache without ever materializing — on a fully warm-started
	// run, builds=0 and every covered cell lands in skipped-builds.
	fmt.Fprintf(w, "builds: materialized=%d skipped-builds=%d\n", m.Builds, m.SkippedBuilds)
	if m.Store.Enabled {
		// The persistent tier's traffic: hits are evaluations answered from
		// disk without building; errors count undecodable entries and failed
		// write-throughs (a store that is rotting or has stopped persisting).
		fmt.Fprintf(w, "store: hits=%d misses=%d puts=%d errors=%d\n",
			m.Store.Hits, m.Store.Misses, m.Store.Puts, m.Store.Errors)
	}
	if o.remote != nil {
		// The remote tier's own transport counters: retries are the re-sent
		// requests the backoff loop spent, errors the degraded (non-honest)
		// misses and failed uploads — a flaky or dying server shows up here
		// while the run itself stays correct.
		rm := o.remote.Metrics()
		fmt.Fprintf(w, "remote: hits=%d misses=%d puts=%d retries=%d errors=%d\n",
			rm.Hits, rm.Misses, rm.Puts, rm.Retries, rm.Errors)
		// The effective transport shape (defaults filled in), so a tuned
		// -remote-retries/-remote-timeout is visible in the run record.
		ro := o.remote.Options()
		fmt.Fprintf(w, "remote config: attempts=%d attempt-timeout=%s timeout=%s\n",
			ro.Attempts, ro.AttemptTimeout, ro.Deadline)
	}
	// paper-execs is the Tables 2/4 cost measure and is identical at every
	// -j; spec-execs is the speculative extra (timing-dependent) those
	// searches spent to finish sooner.
	bs := eng.BisectStats()
	fmt.Fprintf(w, "bisect: searches=%d paper-execs=%d spec-execs=%d\n",
		bs.Searches, bs.Execs, bs.SpecExecs)
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs, o := newFlagSet("run", stderr)
	test := fs.String("test", "", "restrict output to one test (e.g. Example05)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	eng, err := o.engine()
	if err != nil {
		return err
	}
	command := []string{"run"}
	if *test != "" {
		command = append(command, "-test", *test)
	}
	return execute(eng, o, command, func(w io.Writer) error {
		return experiments.RenderRun(eng, *test, w)
	}, stdout, stderr)
}

func cmdBisect(args []string, stdout, stderr io.Writer) error {
	fs, o := newFlagSet("bisect", stderr)
	test := fs.String("test", "", "test name (e.g. Example13)")
	compStr := fs.String("comp", "", "variable compilation, e.g. 'g++ -O3 -mavx2 -mfma'")
	k := fs.Int("k", 0, "find only the top-k contributors (0 = all, with verification)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *test == "" || *compStr == "" {
		return fmt.Errorf("bisect requires -test and -comp")
	}
	variable, err := experiments.ParseCompilation(*compStr)
	if err != nil {
		return err
	}
	eng, err := o.engine()
	if err != nil {
		return err
	}
	// The canonical compilation string (variable.String round-trips through
	// parseCompilation) keeps the recorded command whitespace-independent.
	command := []string{"bisect", "-test", *test, "-comp", variable.String(), "-k", strconv.Itoa(*k)}
	return execute(eng, o, command, func(w io.Writer) error {
		return experiments.RenderBisect(eng, *test, variable, *k, eng.Shard(), w)
	}, stdout, stderr)
}

func cmdExperiments(args []string, stdout, stderr io.Writer) error {
	fs, o := newFlagSet("experiments", stderr)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	eng, err := o.engine()
	if err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 || names[0] == "all" {
		names = []string{"table1", "figure4", "figure5", "figure6", "table3",
			"findings", "motivation", "table4", "laghos-nan", "table2", "table5", "mpi"}
	}
	command := append([]string{"experiments"}, names...)
	return execute(eng, o, command, func(w io.Writer) error {
		return experiments.RenderExperiments(eng, names, w)
	}, stdout, stderr)
}

// cmdMerge reassembles a complete set of shard artifacts: it validates
// that they share this build's engine version and one command and cover
// every shard index, seeds a fresh engine's cache with their union, and
// replays the recorded command — every expensive evaluation is a cache
// hit, and the output is byte-identical to an unsharded run.
func cmdMerge(args []string, stdout, stderr io.Writer) error {
	fs, o := newFlagSet("merge", stderr)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *o.shardStr != "" || *o.shardOut != "" {
		return errors.New("merge does not accept -shard/-shard-out (it replays a complete shard set)")
	}
	if *o.cacheCap > 0 {
		// A capped cache would evict the imported results before the
		// replay reads them, recomputing what the shards already shipped.
		return errors.New("merge does not accept -cache-cap (imported shard results must stay resident for the replay)")
	}
	arts, err := readArtifacts(fs.Args())
	if err != nil {
		return err
	}
	if len(arts) == 0 {
		return errors.New("merge requires at least one shard artifact file")
	}
	if err := o.checkDeltaFlags(); err != nil {
		return err
	}
	eng := experiments.NewEngineCap(*o.j, *o.cacheCap)
	// -store composes with merge: any evaluation the shard set does not
	// cover is answered from (and written through to) the store. Imported
	// shard results themselves are never written through — they are seeds,
	// not computations of this process.
	if err := o.attachStore(eng); err != nil {
		return err
	}
	if err := eng.ImportArtifacts(arts...); err != nil {
		return err
	}
	// -warm-start composes with merge: extra artifacts (e.g. yesterday's
	// campaign) seed additional cache entries on top of the shard set, and
	// with -delta-out/-stats the replay is also diffed against them.
	if *o.warmStart != "" {
		eng.EnableDelta(*o.deltaVerify)
	}
	if err := o.loadWarmStart(eng); err != nil {
		return err
	}
	err = experiments.RunCommand(eng, arts[0].Command, stdout)
	if *o.stats {
		o.printStats(eng, stderr)
	}
	if err != nil {
		return err
	}
	return emitDelta(eng, o, arts[0].Command, stderr)
}

// cmdDelta diffs two artifact sets offline: the -baseline set against the
// positional current set, each validated like a merge input (this build's
// engine version, one command, complete shard partition). Nothing is
// re-run; the report is rendered to stdout and optionally written as JSON.
func cmdDelta(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("delta", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "comma-separated baseline artifact set (required)")
	deltaOut := fs.String("delta-out", "", "also write the DeltaReport to FILE (JSON)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *baseline == "" {
		return errors.New("delta requires -baseline a.json[,b.json...]")
	}
	base, err := readArtifacts(strings.Split(*baseline, ","))
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	cur, err := readArtifacts(fs.Args())
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return errors.New("delta requires at least one current artifact file")
	}
	rep, err := flit.DiffArtifacts(base, cur)
	if err != nil {
		return err
	}
	rep.Render(stdout)
	if *deltaOut == "" {
		return nil
	}
	return flit.WriteDeltaReportFile(rep, *deltaOut)
}

// cmdGc prunes superseded artifact generations from a campaign directory.
// Artifacts are grouped by (engine version, command, shard slot); the
// newest -keep files of each slot survive, files listed in -warm-start are
// never touched, and files that do not parse as artifacts are skipped.
func cmdGc(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "artifact directory to collect (required)")
	keep := fs.Int("keep", 1, "generations to keep per (engine, command, shard) slot")
	dryRun := fs.Bool("dry-run", false, "plan and report only; delete nothing")
	manifest := fs.String("warm-start", "", "comma-separated artifacts a live campaign still warm-starts from; never pruned")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("gc requires -dir DIR")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("gc takes no positional arguments (got %q)", fs.Args())
	}
	protect := make(map[string]bool)
	for _, p := range strings.Split(*manifest, ",") {
		if p = strings.TrimSpace(p); p != "" {
			protect[flit.NormalizePath(p)] = true
		}
	}
	plan, err := flit.PlanGC(*dir, *keep, protect)
	if err != nil {
		return err
	}
	verb := "pruned"
	if *dryRun {
		verb = "would prune"
	}
	for _, p := range plan.Pruned {
		fmt.Fprintf(stdout, "%s %s\n", verb, p)
	}
	for _, p := range plan.Protected {
		fmt.Fprintf(stdout, "protected %s\n", p)
	}
	for _, p := range plan.Skipped {
		fmt.Fprintf(stdout, "skipped %s (not a valid artifact of this engine)\n", p)
	}
	fmt.Fprintf(stdout, "gc: kept=%d %s=%d protected=%d skipped=%d\n",
		len(plan.Kept), strings.ReplaceAll(verb, " ", "-"), len(plan.Pruned), len(plan.Protected), len(plan.Skipped))
	if *dryRun {
		return nil
	}
	return plan.Apply()
}

// cmdStore inspects, maintains, and serves a persistent run-store
// directory: "stats" scans it and reports entry count, bytes, and
// corruption; "gc" prunes corrupt files first, then the oldest entries,
// down to -max-entries/-max-bytes; "serve" exposes it over HTTP for
// -remote clients. All open the store with this build's engine fence, so
// a foreign store is rejected rather than misreported.
func cmdStore(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return errors.New(`store requires a subcommand: "stats", "gc", or "serve"`)
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "serve":
		return cmdStoreServe(rest, stdout, stderr)
	case "stats":
		fs := flag.NewFlagSet("store stats", flag.ContinueOnError)
		fs.SetOutput(stderr)
		dir := fs.String("store", "", "run-store directory (required)")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		if *dir == "" {
			return errors.New("store stats requires -store DIR")
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("store stats takes no positional arguments (got %q)", fs.Args())
		}
		d, err := store.Open(*dir, flit.EngineVersion)
		if err != nil {
			return err
		}
		st, err := d.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "store %s: engine=%s entries=%d bytes=%d corrupt=%d\n",
			d.Dir(), st.Engine, st.Entries, st.Bytes, st.Corrupt)
		return nil
	case "gc":
		fs := flag.NewFlagSet("store gc", flag.ContinueOnError)
		fs.SetOutput(stderr)
		dir := fs.String("store", "", "run-store directory (required)")
		maxEntries := fs.Int("max-entries", 0, "keep at most N entries, oldest pruned first (0 = unlimited)")
		maxBytes := fs.Int64("max-bytes", 0, "keep at most N payload bytes (0 = unlimited)")
		dryRun := fs.Bool("dry-run", false, "plan and report only; delete nothing")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		if *dir == "" {
			return errors.New("store gc requires -store DIR")
		}
		if fs.NArg() > 0 {
			return fmt.Errorf("store gc takes no positional arguments (got %q)", fs.Args())
		}
		d, err := store.Open(*dir, flit.EngineVersion)
		if err != nil {
			return err
		}
		res, err := d.GC(*maxEntries, *maxBytes, !*dryRun)
		if err != nil {
			return err
		}
		verb := "pruned"
		if *dryRun {
			verb = "would prune"
		}
		for _, p := range res.Pruned {
			fmt.Fprintf(stdout, "%s %s\n", verb, p)
		}
		fmt.Fprintf(stdout, "store gc: kept=%d %s=%d (%d bytes, %d corrupt)\n",
			res.Kept, strings.ReplaceAll(verb, " ", "-"), len(res.Pruned), res.PrunedBytes, res.Corrupt)
		return nil
	default:
		return fmt.Errorf(`unknown store subcommand %q (want "stats", "gc", or "serve")`, sub)
	}
}

// cmdStoreServe exposes a Disk store over HTTP — the serving side of
// -remote. The store is opened with this build's engine fence (so a
// foreign directory is rejected before it can serve anything), the bound
// address is announced on stdout as a full URL (use -addr with port 0 to
// let the OS pick — scripts read the URL off the first line), and the
// process serves until killed. Writes reuse the Disk store's atomic
// discipline; a PUT of a key the store already holds is a no-op.
func cmdStoreServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("store serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "Disk store directory to serve (required; created if absent)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("store serve requires -dir DIR")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("store serve takes no positional arguments (got %q)", fs.Args())
	}
	d, err := store.Open(*dir, flit.EngineVersion)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("store serve: %w", err)
	}
	fmt.Fprintf(stdout, "serving %s (engine %s) on http://%s\n", d.Dir(), d.Engine(), ln.Addr())
	return serveGracefully(store.Handler(d), ln, nil, stdout)
}
