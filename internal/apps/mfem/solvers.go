package mfem

import "repro/internal/link"

// Iterative solvers (solvers.cpp), grid functions (gridfunc.cpp), and time
// integrators (ode.cpp).

// CGSolve runs unpreconditioned conjugate gradients on A·x = b until
// ||r|| <= tol·||b|| or maxIter iterations, updating x in place. It returns
// the iteration count. The residual-driven branch is the mechanism by which
// tiny rounding changes alter the whole trajectory (MFEM example 8's
// divergent convergence).
func CGSolve(m *link.Machine, a *CSR, b, x []float64, tol float64, maxIter int) int {
	env, done := m.Fn("CG::Solve")
	defer done()
	n := a.N
	r := make([]float64, n)
	SpMult(m, a, x, r)
	Subtract(m, r, b, r)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	bnorm := Norml2(m, b)
	if bnorm == 0 {
		bnorm = 1
	}
	rsold := Dot(m, r, r)
	it := 0
	for ; it < maxIter; it++ {
		if env.Sqrt(rsold) <= env.Mul(tol, bnorm) {
			break
		}
		SpMult(m, a, p, ap)
		alpha := env.Div(rsold, Dot(m, p, ap))
		Axpy(m, alpha, p, x)
		Axpy(m, env.Neg(alpha), ap, r)
		rsnew := Dot(m, r, r)
		beta := env.Div(rsnew, rsold)
		for i := range p {
			p[i] = env.MulAdd(beta, p[i], r[i])
		}
		rsold = rsnew
	}
	return it
}

// PCGSolve runs Jacobi-preconditioned conjugate gradients.
func PCGSolve(m *link.Machine, a *CSR, b, x []float64, tol float64, maxIter int) int {
	env, done := m.Fn("PCG::Solve")
	defer done()
	n := a.N
	diag := make([]float64, n)
	SpGetDiag(m, a, diag)
	prec := func(dst, src []float64) {
		for i := range dst {
			if diag[i] != 0 {
				dst[i] = env.Div(src[i], diag[i])
			} else {
				dst[i] = src[i]
			}
		}
	}
	r := make([]float64, n)
	SpMult(m, a, x, r)
	Subtract(m, r, b, r)
	z := make([]float64, n)
	prec(z, r)
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	bnorm := Norml2(m, b)
	if bnorm == 0 {
		bnorm = 1
	}
	rz := Dot(m, r, z)
	it := 0
	for ; it < maxIter; it++ {
		if Norml2(m, r) <= env.Mul(tol, bnorm) {
			break
		}
		SpMult(m, a, p, ap)
		alpha := env.Div(rz, Dot(m, p, ap))
		Axpy(m, alpha, p, x)
		Axpy(m, env.Neg(alpha), ap, r)
		prec(z, r)
		rznew := Dot(m, r, z)
		beta := env.Div(rznew, rz)
		for i := range p {
			p[i] = env.MulAdd(beta, p[i], z[i])
		}
		rz = rznew
	}
	return it
}

// JacobiIterate runs k damped-Jacobi sweeps.
func JacobiIterate(m *link.Machine, a *CSR, b, x []float64, w float64, k int) {
	_, done := m.Fn("Jacobi::Iterate")
	defer done()
	for i := 0; i < k; i++ {
		JacobiSmooth(m, a, b, x, w)
	}
}

// PowerIterationRun estimates the dominant eigenvalue of A with k steps of
// normalized power iteration, returning the Rayleigh-quotient estimate.
func PowerIterationRun(m *link.Machine, a *CSR, x []float64, k int) float64 {
	_, done := m.Fn("PowerIteration::Run")
	defer done()
	y := make([]float64, a.N)
	for i := 0; i < k; i++ {
		SpMult(m, a, x, y)
		copy(x, y)
		Normalize(m, x)
	}
	SpMult(m, a, x, y)
	return Dot(m, x, y)
}

// Project1D evaluates a coefficient at the mesh nodes.
func Project1D(m *link.Machine, mesh *Mesh1D, c Coeff1D) []float64 {
	_, done := m.Fn("GridFunction::Project1D")
	defer done()
	out := make([]float64, mesh.N+1)
	for i := range out {
		out[i] = c(m, mesh.X[i])
	}
	return out
}

// Project2D evaluates a coefficient at the 2-D mesh nodes.
func Project2D(m *link.Machine, mesh *Mesh2D, c Coeff2D) []float64 {
	_, done := m.Fn("GridFunction::Project2D")
	defer done()
	out := make([]float64, mesh.NumNodes())
	for i := range out {
		out[i] = c(m, mesh.X[i], mesh.Y[i])
	}
	return out
}

// L2Error returns ||u - v||₂ through the library kernels.
func L2Error(m *link.Machine, u, v []float64) float64 {
	_, done := m.Fn("GridFunction::L2Error")
	defer done()
	d := make([]float64, len(u))
	Subtract(m, d, u, v)
	return Norml2(m, d)
}

// RK2Step advances u by one midpoint-rule step of du/dt = f(u).
func RK2Step(m *link.Machine, u []float64, dt float64, f func(u, du []float64)) {
	env, done := m.Fn("RK2::Step")
	defer done()
	n := len(u)
	k1 := make([]float64, n)
	f(u, k1)
	mid := append([]float64(nil), u...)
	Axpy(m, env.Mul(0.5, dt), k1, mid)
	k2 := make([]float64, n)
	f(mid, k2)
	Axpy(m, dt, k2, u)
}

// Upwind returns the upwind flux v>0 ? v*ul : v*ur. The branch on a
// computed value makes downstream results jump when rounding flips it.
func Upwind(m *link.Machine, v, ul, ur float64) float64 {
	env, done := m.Fn("UpwindFlux")
	defer done()
	if v > 0 {
		return env.Mul(v, ul)
	}
	return env.Mul(v, ur)
}
