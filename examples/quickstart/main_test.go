package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/flit"
)

// TestQuickstartSmoke runs the whole quickstart workflow — matrix analysis,
// recommendation, bisect — and checks the narrative output is intact, so
// the example cannot silently rot.
func TestQuickstartSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fastest bitwise-reproducible:",
		"fastest overall:",
		"variability-inducing compilations:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The dot-product kernel is hot and contractible: some compilation
	// must perturb it, and bisect must blame the kernel file.
	if !strings.Contains(out, "bisecting") || !strings.Contains(out, "kernel.cpp") {
		t.Errorf("bisect did not run or did not blame kernel.cpp:\n%s", out)
	}
}

// TestQuickstartShardMergeEquivalence is the example-level acceptance
// proof: for shard counts N in {1, 2, 3, 4, 8}, running the quickstart as
// N shards through the real CLI path (artifact files on disk included)
// and merging them reproduces the plain run byte for byte.
func TestQuickstartShardMergeEquivalence(t *testing.T) {
	var want strings.Builder
	if err := run(&want); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, n := range []int{1, 2, 3, 4, 8} {
		var paths []string
		for i := 0; i < n; i++ {
			// "0/1" included: the degenerate single-shard run exports the
			// full artifact, and merging it alone must still replay exactly.
			shard := exec.Shard{Index: i, Count: n}
			p := filepath.Join(dir, strings.ReplaceAll(shard.String(), "/", "-")+".json")
			if err := cli(opts{shard: shard.String(), shardOut: p}, io.Discard); err != nil {
				t.Fatalf("N=%d shard %d: %v", n, i, err)
			}
			paths = append(paths, p)
		}
		var got strings.Builder
		if err := cli(opts{merge: strings.Join(paths, ",")}, &got); err != nil {
			t.Fatalf("N=%d merge: %v", n, err)
		}
		if got.String() != want.String() {
			t.Errorf("N=%d: merged output differs from plain run:\n--- merged ---\n%s\n--- plain ---\n%s",
				n, got.String(), want.String())
		}
	}
}

// TestQuickstartIncrementalDelta is the example-level incremental-campaign
// proof: warm-starting from an identical-command baseline reports an empty
// delta, and mutating exactly one compiler flag (-unroll moves the plain
// g++ -O3 row) reports exactly one new and one dropped cell — nothing
// else, because every other evaluation is answered from the baseline.
func TestQuickstartIncrementalDelta(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	if err := cli(opts{shard: "0/1", shardOut: base}, io.Discard); err != nil {
		t.Fatal(err)
	}

	var same strings.Builder
	if err := cli(opts{warmStart: base}, &same); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(same.String(), "delta: new=0 dropped=0 changed=0") {
		t.Errorf("identical warm-started run reported a non-empty delta:\n%s", same.String())
	}

	deltaPath := filepath.Join(dir, "delta.json")
	var mutated strings.Builder
	if err := cli(opts{warmStart: base, deltaOut: deltaPath, unroll: true}, &mutated); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mutated.String(), "delta: new=1 dropped=1 changed=0") {
		t.Errorf("flag mutation not scoped to one cell:\n%s", mutated.String())
	}
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep flit.DeltaReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("delta report is not valid JSON: %v", err)
	}
	if len(rep.New) != 1 || !strings.Contains(rep.New[0].Key, "-funroll-loops") {
		t.Errorf("new key does not name the mutated compilation: %+v", rep.New)
	}
	if len(rep.Dropped) != 1 || strings.Contains(rep.Dropped[0].Key, "-funroll-loops") {
		t.Errorf("dropped key should be the pre-mutation cell: %+v", rep.Dropped)
	}

	// The mutated run's artifact replays byte-identically through -merge:
	// the recorded command carries the mutation.
	next := filepath.Join(dir, "next.json")
	if err := cli(opts{shard: "0/1", shardOut: next, unroll: true}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var want, got strings.Builder
	if err := cli(opts{unroll: true}, &want); err != nil {
		t.Fatal(err)
	}
	if err := cli(opts{merge: next}, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("merge replay lost the recorded -unroll mutation:\n--- merged ---\n%s\n--- direct ---\n%s",
			got.String(), want.String())
	}
}
