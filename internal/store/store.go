// Package store is the persistent layer behind the build/run cache: a
// pluggable key → bytes store addressed by the engine's injective plan keys
// (flit-engine/3), so memoized results survive the process that computed
// them. The in-memory exec.Cache stays the first tier — single-flight
// memoization within a process — and a Store is the second: consulted on a
// memory miss before any build work happens, written through after every
// computation, so a second process (or a later campaign) pointed at the
// same store gets zero-build warm hits with no artifact manifest at all.
//
// Two backends ship: Mem, an LRU-capped in-memory map (tests, and the
// degenerate no-persistence configuration), and Disk, a content-addressed
// on-disk store (one file per key under a sharded hash directory, atomic
// temp-file+rename writes, engine-version fencing via a store manifest).
// A remote backend feeding the flitd coordinator slots in behind the same
// interface later.
//
// The contract every backend must honor: a Get may only return bytes that
// a Put stored under exactly that key — corrupt, truncated, foreign, or
// torn entries are reported as misses, never as results. The caller
// recomputes on a miss and a recomputation is bit-identical to the lost
// value, so losing an entry is always safe and lying about one never is.
package store

import (
	"container/list"
	"sync"
)

// Store is a persistent (or at least process-external) key → bytes map.
// Implementations must be safe for concurrent use. Get reports a miss —
// never an error value — for anything it cannot prove was stored under the
// key: the caller treats the store as a cache of recomputable results, so
// a miss costs time and a wrong hit costs correctness.
type Store interface {
	// Get returns the bytes stored under key. ok is false on any miss:
	// absent, corrupt, truncated, or written by a different engine.
	Get(key string) (data []byte, ok bool)
	// Put durably stores data under key, replacing any previous entry.
	// A failed Put leaves the previous entry (or absence) intact.
	Put(key string, data []byte) error
}

// Mem is the in-memory Store backend: a concurrency-safe map with optional
// LRU eviction by entry count — the same recency discipline the in-process
// run cache uses, behind the pluggable interface. It exists for tests and
// for composing store-layer logic without touching a filesystem; it
// persists nothing across processes by definition.
type Mem struct {
	mu  sync.Mutex
	cap int // max entries; 0 = unbounded
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type memEntry struct {
	key  string
	data []byte
}

// NewMem returns an empty in-memory store evicting least-recently-used
// entries once it holds more than capacity keys (<= 0 means unbounded).
func NewMem(capacity int) *Mem {
	if capacity < 0 {
		capacity = 0
	}
	return &Mem{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

// Get returns the stored bytes and marks the entry most recently used.
func (s *Mem) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry).data, true
}

// Put stores a copy of data under key (the caller may reuse its buffer).
func (s *Mem) Put(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		el.Value.(*memEntry).data = cp
		s.lru.MoveToFront(el)
		return nil
	}
	s.m[key] = s.lru.PushFront(&memEntry{key: key, data: cp})
	for s.cap > 0 && len(s.m) > s.cap {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.m, oldest.Value.(*memEntry).key)
	}
	return nil
}

// Len reports how many entries are resident.
func (s *Mem) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
