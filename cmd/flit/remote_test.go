package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe writer for output produced by an
// in-process `flit store serve` running on its own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe launches `flit store serve` over dir on a free loopback port
// and returns the announced base URL — the same discipline scripts use:
// read the URL off the first stdout line. The server goroutine runs until
// the test binary exits; each caller gets its own listener.
func startServe(t *testing.T, dir string) string {
	t.Helper()
	out := &syncBuffer{}
	go run([]string{"store", "serve", "-dir", dir, "-addr", "127.0.0.1:0"}, out, out)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("store serve never announced a URL: %q", out.String())
	return ""
}

// TestRemoteFlagCrossMachine: the CLI acceptance pin for the remote tier —
// one `flit store serve` process, and `flit experiments -remote URL` runs
// that share nothing but the URL: the second produces byte-identical
// stdout with zero materialized builds, all hits arriving over the wire.
func TestRemoteFlagCrossMachine(t *testing.T) {
	url := startServe(t, filepath.Join(t.TempDir(), "served"))

	var want, stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "-remote", url, "-stats", "table4"},
		&want, &stderr); code != 0 {
		t.Fatalf("cold run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "remote: hits=0") ||
		!strings.Contains(stderr.String(), "retries=") {
		t.Errorf("cold run -stats missing the remote line:\n%s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-remote", url, "-stats", "table4"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want.String() {
		t.Errorf("remote-warmed output differs from the cold run:\n--- warm ---\n%s\n--- cold ---\n%s",
			stdout.String(), want.String())
	}
	var buildsLine, remoteLine string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "builds:") {
			buildsLine = line
		}
		if strings.HasPrefix(line, "remote:") {
			remoteLine = line
		}
	}
	if !strings.Contains(buildsLine, "materialized=0") {
		t.Errorf("remote-covered run still built executables: %q", buildsLine)
	}
	if remoteLine == "" || strings.Contains(remoteLine, "hits=0") {
		t.Errorf("remote-covered run reported no remote hits: %q", remoteLine)
	}

	// Without -remote there is no remote line at all.
	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-stats", "table3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("remoteless run: exit %d", code)
	}
	if strings.Contains(stderr.String(), "remote:") {
		t.Errorf("remoteless -stats grew a remote line:\n%s", stderr.String())
	}
}

// TestRemoteFlagTieredWithStore: -store DIR -remote URL composes as a
// local read-through cache over the shared server — after one tiered run,
// the local directory alone covers the whole workload.
func TestRemoteFlagTieredWithStore(t *testing.T) {
	url := startServe(t, filepath.Join(t.TempDir(), "served"))
	local := filepath.Join(t.TempDir(), "local")

	var want, stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "-store", local, "-remote", url, "table4"},
		&want, &stderr); code != 0 {
		t.Fatalf("tiered run: exit %d, stderr: %s", code, stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-store", local, "-stats", "table4"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("local-only run: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want.String() {
		t.Error("local-only output differs from the tiered run")
	}
	if !strings.Contains(stderr.String(), "materialized=0") {
		t.Errorf("write-through did not fill the local tier:\n%s", stderr.String())
	}
}

// TestExperimentRenderersOverSharedStore walks the cheap paper renderers
// through one shared store directory: the first command computes the
// matrix, the rest replay it, so each renderer's output path is exercised
// without recomputing the workload five times.
func TestExperimentRenderersOverSharedStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	for _, name := range []string{"table1", "figure4", "figure5", "figure6", "motivation"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"experiments", "-j", "2", "-store", dir, name},
			&stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", name, code, stderr.String())
		}
		if stdout.Len() == 0 {
			t.Errorf("%s rendered no output", name)
		}
	}
}

// TestRemoteFlagRejections: malformed -remote values and the
// -delta-verify composition are usage errors, caught before any work.
func TestRemoteFlagRejections(t *testing.T) {
	var stdout, stderr bytes.Buffer
	for _, bad := range []string{"ftp://elsewhere", "127.0.0.1:8080", "http://"} {
		stderr.Reset()
		if code := run([]string{"experiments", "-remote", bad, "table3"}, &stdout, &stderr); code != 1 {
			t.Errorf("-remote %q: exit %d, want 1 (stderr: %s)", bad, code, stderr.String())
		}
	}

	// -delta-verify exists to recompute covered evaluations; a remote hit
	// is a replay one tier further out, so the combination is rejected.
	dir := t.TempDir()
	art := filepath.Join(dir, "warm.json")
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", art, "table3"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("artifact export: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	code := run([]string{"experiments", "-warm-start", art, "-delta-verify",
		"-remote", "http://127.0.0.1:1", "table3"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-delta-verify with -remote: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-delta-verify") || !strings.Contains(stderr.String(), "-remote") {
		t.Errorf("diagnostic does not name both flags: %s", stderr.String())
	}
}

// TestStoreServeFlagParsing: serve's own usage errors.
func TestStoreServeFlagParsing(t *testing.T) {
	var stdout, stderr bytes.Buffer

	if code := run([]string{"store", "serve"}, &stdout, &stderr); code != 1 {
		t.Errorf("serve without -dir: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-dir") {
		t.Errorf("diagnostic does not name -dir: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"store", "serve", "-dir", t.TempDir(), "extra"},
		&stdout, &stderr); code != 1 {
		t.Errorf("serve with positional args: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "positional") {
		t.Errorf("diagnostic does not mention positional args: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"store", "serve", "-dir", t.TempDir(), "-addr", "256.256.256.256:99999"},
		&stdout, &stderr); code != 1 {
		t.Errorf("serve with an unusable address: exit %d, want 1", code)
	}

	// A directory fenced to a foreign engine must be refused, same as the
	// -store flag refuses it.
	foreign := t.TempDir()
	if err := os.WriteFile(filepath.Join(foreign, "store.json"),
		[]byte(`{"store_version":1,"engine":"flit-engine/0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"store", "serve", "-dir", foreign}, &stdout, &stderr); code != 1 {
		t.Errorf("serve over a foreign store: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "flit-engine/0") {
		t.Errorf("diagnostic does not name the foreign engine: %s", stderr.String())
	}
}
