package flit

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
	"repro/internal/prog"
)

// fuzzTest is a minimal TestCase whose identity is its name — the handle
// the key fuzzer uses to vary the test component of a RunKey.
type fuzzTest struct{ name string }

func (t fuzzTest) Name() string                                 { return t.name }
func (t fuzzTest) Root() string                                 { return "S" }
func (t fuzzTest) GetInputsPerRun() int                         { return 1 }
func (t fuzzTest) GetDefaultInput() []float64                   { return []float64{1} }
func (t fuzzTest) Run([]float64, *link.Machine) (Result, error) { return Result{}, nil }
func (t fuzzTest) Compare(baseline, other Result) float64       { return 0 }

// fuzzRunKey builds the cache/artifact key for one (program, plan, test)
// tuple assembled from free-form strings.
func fuzzRunKey(t *testing.T, progName, compiler, opt, switches, test string) string {
	t.Helper()
	p := prog.New(progName)
	p.AddFile("f.cpp", &prog.Symbol{Name: "S", Exported: true, Work: 1})
	ex, err := link.FullBuild(p, comp.Compilation{Compiler: compiler, OptLevel: opt, Switches: switches})
	if err != nil {
		t.Fatalf("FullBuild(%q,%q,%q,%q): %v", progName, compiler, opt, switches, err)
	}
	return RunKey(ex, fuzzTest{name: test})
}

// FuzzRunKeyInjective is the shard/cache key safety net: no two distinct
// (program, build plan, test) tuples may serialize to the same key.
// Without the KeyEscape encoding, free-form names containing the key
// format's structural characters ('|', '=', NUL) could collide — merged
// shard artifacts would then silently answer one tuple's evaluation with
// another tuple's result.
func FuzzRunKeyInjective(f *testing.F) {
	f.Add("quickstart", "g++", "-O2", "", "Quickstart",
		"quickstart", "g++", "-O2", "-mavx2 -mfma", "Quickstart")
	f.Add("p", "g++", "-O2", "", "T",
		"p", "g++", "-O2", "", "T2")
	// Structural-character abuse: without escaping, these families collide.
	f.Add("p|base=g++|-O2|", "x", "-O0", "", "T",
		"p", "g++", "-O2", "", "T")
	f.Add("p", "g++ -O2", "-O0", "", "T",
		"p", "g++", "-O2 -O0", "", "T")
	f.Add("p", "g", "f:x", "y", "T",
		"p", "g", "f:x|y", "", "T")
	f.Add("p", "c", "-O1", "a", "T\x00U",
		"p", "c", "-O1", "a\x00T", "U")
	f.Add("p", "c%7C", "-O1", "", "T",
		"p", "c|", "-O1", "", "T")
	f.Fuzz(func(t *testing.T,
		prog1, comp1, opt1, sw1, test1,
		prog2, comp2, opt2, sw2, test2 string) {
		same := prog1 == prog2 && comp1 == comp2 && opt1 == opt2 && sw1 == sw2 && test1 == test2
		k1 := fuzzRunKey(t, prog1, comp1, opt1, sw1, test1)
		k2 := fuzzRunKey(t, prog2, comp2, opt2, sw2, test2)
		if same && k1 != k2 {
			t.Fatalf("identical tuples produced different keys:\n%q\n%q", k1, k2)
		}
		if !same && k1 == k2 {
			t.Fatalf("distinct tuples collided on key %q:\n(%q,%q,%q,%q,%q)\n(%q,%q,%q,%q,%q)",
				k1, prog1, comp1, opt1, sw1, test1, prog2, comp2, opt2, sw2, test2)
		}
	})
}

// FuzzArtifactDecode hardens the artifact ingestion path against
// malformed files: whatever bytes arrive, decoding plus validation must
// either reject with an error or yield an artifact that imports cleanly —
// never panic, and never silently merge a malformed file. In particular a
// duplicate key (the same run recorded twice, however the copies relate)
// must be rejected: first-in-wins seeding would otherwise let one copy
// silently answer for the other.
func FuzzArtifactDecode(f *testing.F) {
	valid := func() []byte {
		c := NewCache()
		c.runs.Seed("k1", runVal{res: ScalarResult(1.5)}, nil)
		c.runs.Seed("k2", runVal{res: VecResult([]float64{1, 2})}, nil)
		c.costs.Seed("k1", 2.5, nil)
		var buf bytes.Buffer
		if err := c.Export(exec.Shard{}, []string{"run"}).WriteJSON(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-object
	// Trailing data after the JSON object: a concatenated second artifact, a
	// stray brace pair, raw garbage. ReadArtifact must reject all of them —
	// json.Decoder reads a stream, and accepting "artifact + anything" would
	// let a torn rewrite (new file + tail of the old) import as valid.
	f.Add(append(append([]byte{}, valid...), valid...))
	f.Add(append(append([]byte{}, valid...), []byte("{}")...))
	f.Add(append(append([]byte{}, valid...), []byte("x")...))
	f.Add(append(append([]byte{}, valid...), []byte("\n \t\n")...)) // whitespace only: fine
	f.Add(bytes.Replace(valid, []byte(`"engine"`), []byte(`"en�ine"`), 1))
	dup := fmt.Sprintf(`{"version":%d,"engine":%q,"shard":{"index":0,"count":1},`+
		`"runs":[{"key":"k","scalar":1},{"key":"k","scalar":2}],"costs":[]}`,
		ArtifactVersion, EngineVersion)
	f.Add([]byte(dup))
	f.Add([]byte(strings.Replace(dup, `"scalar":2`, `"scalar":1`, 1))) // agreeing duplicate
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(fmt.Sprintf(`{"version":%d,"engine":%q,"shard":{"index":5,"count":2}}`,
		ArtifactVersion, EngineVersion))) // impossible shard coordinates
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := ReadArtifact(bytes.NewReader(data))
		if err != nil {
			return // rejected at decode: fine
		}
		dupKey := func() bool {
			seenRuns, seenCosts := map[string]bool{}, map[string]bool{}
			for _, r := range a.Runs {
				if seenRuns[r.Key] {
					return true
				}
				seenRuns[r.Key] = true
			}
			for _, co := range a.Costs {
				if seenCosts[co.Key] {
					return true
				}
				seenCosts[co.Key] = true
			}
			return false
		}()
		checkErr := a.Check()
		if dupKey && checkErr == nil {
			t.Fatalf("duplicate-key artifact passed Check: %s", data)
		}
		c := NewCache()
		impErr := c.Import(a)
		if (checkErr == nil) != (impErr == nil) {
			t.Fatalf("Check (%v) and Import (%v) disagree", checkErr, impErr)
		}
		if impErr != nil {
			return
		}
		// An accepted artifact must have seeded exactly its distinct keys.
		if got := c.runs.Len(); got != len(a.Runs) {
			t.Fatalf("accepted artifact with %d runs seeded %d entries", len(a.Runs), got)
		}
	})
}

// FuzzArtifactVersionCheck: an artifact is accepted exactly when both its
// format version and engine version match this build — merge must reject
// everything else, whatever the foreign version strings look like.
func FuzzArtifactVersionCheck(f *testing.F) {
	f.Add(EngineVersion, ArtifactVersion)
	f.Add("flit-engine/1", ArtifactVersion)
	f.Add("", ArtifactVersion)
	f.Add(EngineVersion, 0)
	f.Add(EngineVersion+" ", ArtifactVersion)
	f.Fuzz(func(t *testing.T, engine string, version int) {
		a := &Artifact{Version: version, Engine: engine}
		err := a.Check()
		wantOK := engine == EngineVersion && version == ArtifactVersion
		if wantOK && err != nil {
			t.Fatalf("matching versions rejected: %v", err)
		}
		if !wantOK && err == nil {
			t.Fatalf("artifact with engine=%q version=%d accepted by a %q/v%d build",
				engine, version, EngineVersion, ArtifactVersion)
		}
		if err != nil {
			if merr := NewCache().Import(a); merr == nil {
				t.Fatal("Import accepted an artifact Check rejects")
			}
		}
	})
}
