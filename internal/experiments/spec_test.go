package experiments

import (
	"reflect"
	"testing"

	"repro/internal/apps/laghos"
	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/flit"
)

// TestLaghosSpeculativeBisectEquivalence pins the speculative engine to
// the paper's Laghos case study: the NaN-bug rediscovery (full BisectAll
// through the pooled driver) and the digit-limited k=1 search behind
// Table 4's headline must return identical findings and identical paper
// execution counts at every -j. Run under -race by scripts/ci.sh.
func TestLaghosSpeculativeBisectEquivalence(t *testing.T) {
	type digest struct {
		files   []string
		symbols []string
		execs   int
	}
	nanDigest := func(e *Engine) digest {
		res, err := e.RunNaNBug()
		if err != nil {
			t.Fatal(err)
		}
		return digest{files: res.Files, symbols: res.Symbols, execs: res.Execs}
	}
	k1Digest := func(e *Engine) digest {
		s := &bisect.Search{
			Prog:     laghos.Program(),
			Test:     flit.WithCompare(laghos.NewCase(), flit.DigitL2Diff(3)),
			Baseline: comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"},
			Variable: comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"},
			K:        1,
			Pool:     e.Pool(),
			Cache:    e.Cache(),
		}
		report, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		d := digest{execs: report.Execs}
		for _, ff := range report.Files {
			d.files = append(d.files, ff.File)
			for _, sf := range ff.Symbols {
				d.symbols = append(d.symbols, sf.Item)
			}
		}
		if e.Pool().Workers() == 1 && report.SpecExecs != 0 {
			t.Errorf("j=1 search performed %d speculative execs", report.SpecExecs)
		}
		return d
	}

	var wantNaN, wantK1 digest
	for i, j := range []int{1, 2, 8} {
		eng := NewEngine(j)
		gotNaN := nanDigest(eng)
		gotK1 := k1Digest(eng)
		if i == 0 {
			wantNaN, wantK1 = gotNaN, gotK1
			continue
		}
		if !reflect.DeepEqual(gotNaN, wantNaN) {
			t.Errorf("-j %d NaN-bug search diverges: %+v != %+v", j, gotNaN, wantNaN)
		}
		if !reflect.DeepEqual(gotK1, wantK1) {
			t.Errorf("-j %d k=1 search diverges: %+v != %+v", j, gotK1, wantK1)
		}
	}
}

// TestBisectStatsPlumbing: every search noted on an engine lands in
// BisectStats, and the paper counter matches the reports exactly.
func TestBisectStatsPlumbing(t *testing.T) {
	eng := NewEngine(2)
	res, err := eng.RunNaNBug()
	if err != nil {
		t.Fatal(err)
	}
	bs := eng.BisectStats()
	if bs.Searches != 1 {
		t.Fatalf("Searches = %d after one search", bs.Searches)
	}
	if bs.Execs != int64(res.Execs) {
		t.Fatalf("stats execs %d != report execs %d", bs.Execs, res.Execs)
	}
	if bs.SpecExecs != int64(res.SpecExecs) {
		t.Fatalf("stats spec %d != report spec %d", bs.SpecExecs, res.SpecExecs)
	}
	if _, err := eng.Table4(); err != nil {
		t.Fatal(err)
	}
	bs2 := eng.BisectStats()
	if bs2.Searches != 1+12*3 {
		t.Fatalf("Searches = %d after Table4, want %d", bs2.Searches, 1+12*3)
	}
	if bs2.Execs <= bs.Execs {
		t.Fatal("Table4 searches not folded into the paper counter")
	}
}

// TestWarmStartSkipsRecomputation: an artifact exported from one engine
// warm-starts a fresh engine without a complete shard set — the warmed run
// answers every evaluation from the cache and produces identical output.
func TestWarmStartSkipsRecomputation(t *testing.T) {
	first := NewEngine(2)
	rows, err := first.Table4()
	if err != nil {
		t.Fatal(err)
	}
	art := first.ExportArtifact(nil)

	warmed := NewEngine(2)
	if err := warmed.WarmStart(art); err != nil {
		t.Fatal(err)
	}
	rows2, err := warmed.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Fatal("warm-started Table4 differs from the cold run")
	}
	if _, misses := warmed.Cache().Stats(); misses != 0 {
		t.Fatalf("warm-started run recomputed %d evaluations", misses)
	}

	// A foreign engine version must still be rejected.
	bad := *art
	bad.Engine = "flit-engine/0-foreign"
	if err := NewEngine(1).WarmStart(&bad); err == nil {
		t.Fatal("foreign artifact accepted by WarmStart")
	}
}
