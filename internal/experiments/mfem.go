// Package experiments regenerates every table and figure of the paper's
// evaluation (§3) on the simulated toolchain: the MFEM performance/
// reproducibility study (Table 1, Figures 4–6), the Bisect characterization
// (Table 2), the code census (Table 3), the two MFEM findings, the Laghos
// case study (the §1 motivating example, Table 4, and the NaN bug), the
// LULESH injection study (Table 5), and the MPI study (§3.6).
//
// Each experiment returns structured rows; String methods render them in
// the shape the paper reports. Absolute numbers differ from the paper (the
// substrate is a simulator, not the authors' testbed); the shape — who
// wins, by what rough factor, where the crossovers fall — is the
// reproduction target, and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps/mfem"
	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/flit"
)

// MFEMSuite builds the paper's MFEM FLiT suite on the default engine: 19
// examples, baseline g++ -O0, speedups against g++ -O2.
func MFEMSuite() *flit.Suite { return Default().Suite() }

// MFEMResults runs (once, cached) the full 244-compilation × 19-example
// matrix — 4,636 experimental results, as in §3.1.
func MFEMResults() (*flit.Results, error) { return Default().Results() }

// Table1Row is one compiler's summary (Table 1).
type Table1Row struct {
	Compiler     string
	Version      string
	Released     string
	VariableRuns int
	TotalRuns    int
	BestFlags    comp.Compilation
	Speedup      float64
}

// Table1 reproduces Table 1 on the default engine.
func Table1() ([]Table1Row, error) { return Default().Table1() }

// Table1 reproduces Table 1: per-compiler variability rates and the best
// average compilation.
func (e *Engine) Table1() ([]Table1Row, error) {
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	stats := res.CompilerRunStats()
	var rows []Table1Row
	for _, ci := range comp.Compilers() {
		best, speedup := res.BestAverageCompilation(ci.Name)
		s := stats[ci.Name]
		rows = append(rows, Table1Row{
			Compiler: ci.Name, Version: ci.Version, Released: ci.Released,
			VariableRuns: s[0], TotalRuns: s[1],
			BestFlags: best, Speedup: speedup,
		})
	}
	return rows, nil
}

// RenderTable1 prints Table 1 in the paper's layout.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-14s %-22s %-44s %s\n",
		"Compiler", "Released", "# Variable Runs", "Best Flags", "Speedup")
	for _, r := range rows {
		pct := 100 * float64(r.VariableRuns) / float64(r.TotalRuns)
		fmt.Fprintf(&b, "%-12s %-14s %5d of %5d (%4.1f%%)  %-44s %.3f\n",
			r.Version, r.Released, r.VariableRuns, r.TotalRuns, pct,
			r.BestFlags.OptLevel+" "+r.BestFlags.Switches, r.Speedup)
	}
	return b.String()
}

// Figure4Point is one compilation of one example's speedup scatter.
type Figure4Point struct {
	Comp     comp.Compilation
	Speedup  float64
	Variable bool
	Error    float64
}

// Figure4Series is the sorted scatter for one example plus the two
// callouts of the figure.
type Figure4Series struct {
	Example         string
	Points          []Figure4Point
	FastestEqual    Figure4Point
	FastestVariable Figure4Point
	HasEqual        bool
	HasVariable     bool
}

// Figure4 reproduces one panel of Figure 4 on the default engine.
func Figure4(example int) (*Figure4Series, error) { return Default().Figure4(example) }

// Figure4 reproduces one panel of Figure 4: compilations of one example
// ordered slowest to fastest, marked bitwise-equal or variable.
func (e *Engine) Figure4(example int) (*Figure4Series, error) {
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	name := mfem.NewCase(example).Name()
	s := &Figure4Series{Example: name}
	for _, rr := range res.SortedBySpeed(name) {
		s.Points = append(s.Points, Figure4Point{
			Comp: rr.Comp, Speedup: res.Speedup(rr),
			Variable: rr.Variable(), Error: rr.RelativeErr,
		})
	}
	if eq, ok := res.FastestEqual(name, ""); ok {
		s.FastestEqual = Figure4Point{Comp: eq.Comp, Speedup: res.Speedup(eq)}
		s.HasEqual = true
	}
	if va, ok := res.FastestVariable(name, ""); ok {
		s.FastestVariable = Figure4Point{Comp: va.Comp, Speedup: res.Speedup(va),
			Variable: true, Error: va.RelativeErr}
		s.HasVariable = true
	}
	return s, nil
}

// Figure5Row is one example's grouped bars in Figure 5.
type Figure5Row struct {
	Example int
	// EqualByCompiler is the fastest bitwise-equal speedup per compiler;
	// a missing entry reproduces the figure's missing bars (e.g. the icpc
	// link step made examples 4, 5, 9, 10, 15 variable at every icpc
	// compilation).
	EqualByCompiler map[string]float64
	// FastestVariable is the fastest variability-exhibiting speedup over
	// all compilers; absent for the invariant examples 12 and 18.
	FastestVariable float64
	HasVariable     bool
	// FastestIsReproducible is the headline: true when no variable
	// compilation beats the fastest reproducible one.
	FastestIsReproducible bool
}

// Figure5 reproduces the performance histogram of Figure 5 on the default
// engine.
func Figure5() ([]Figure5Row, error) { return Default().Figure5() }

// Figure5 reproduces the performance histogram of Figure 5.
func (e *Engine) Figure5() ([]Figure5Row, error) {
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	var rows []Figure5Row
	for i := 1; i <= 19; i++ {
		name := mfem.NewCase(i).Name()
		row := Figure5Row{Example: i, EqualByCompiler: map[string]float64{}}
		bestEq := 0.0
		for _, c := range []string{comp.GCC, comp.Clang, comp.ICPC} {
			if eq, ok := res.FastestEqual(name, c); ok {
				sp := res.Speedup(eq)
				row.EqualByCompiler[c] = sp
				if sp > bestEq {
					bestEq = sp
				}
			}
		}
		if va, ok := res.FastestVariable(name, ""); ok {
			row.FastestVariable = res.Speedup(va)
			row.HasVariable = true
		}
		row.FastestIsReproducible = !row.HasVariable || bestEq >= row.FastestVariable
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Row is one example's variability census in Figure 6.
type Figure6Row struct {
	Example       int
	VariableComps int // of the 244 compilations
	MinErr        float64
	MedianErr     float64
	MaxErr        float64
}

// Figure6 reproduces Figure 6 on the default engine.
func Figure6() ([]Figure6Row, error) { return Default().Figure6() }

// Figure6 reproduces Figure 6: per-example count of variability-inducing
// compilations and the spread of relative ℓ2 errors.
func (e *Engine) Figure6() ([]Figure6Row, error) {
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	var rows []Figure6Row
	for i := 1; i <= 19; i++ {
		name := mfem.NewCase(i).Name()
		count := 0
		for _, rr := range res.ForTest(name) {
			if rr.Variable() {
				count++
			}
		}
		row := Figure6Row{Example: i, VariableComps: count}
		if min, med, max, ok := res.ErrorSpread(name); ok {
			row.MinErr, row.MedianErr, row.MaxErr = min, med, max
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table3Row compares a program census against the paper's Table 3.
type Table3Row struct {
	Metric   string
	Measured float64
	Paper    float64
}

// Table3 reports the mini-MFEM code statistics next to the paper's values.
func Table3() []Table3Row {
	st := mfem.Program().Stats()
	return []Table3Row{
		{"source files", float64(st.SourceFiles), 97},
		{"average functions per file", st.AvgFuncsPerFile, 31},
		{"total functions", float64(st.TotalFunctions), 2998},
		{"source lines of code", float64(st.SLOC), 103205},
	}
}

// MFEMWorkflow wires the MFEM suite into the multi-level workflow on the
// default engine.
func MFEMWorkflow() *core.Workflow { return Default().Workflow() }

// Finding describes one of the two findings reported to the MFEM team.
type Finding struct {
	Example int
	// Compilations that induced the variability Bisect explained.
	Compilations []comp.Compilation
	// Functions blamed (union over the examined compilations).
	Functions []string
	// MaxRelErr is the largest relative error observed.
	MaxRelErr float64
}

// Findings reproduces Findings 1 and 2 on the default engine.
func Findings() ([]Finding, error) { return Default().Findings() }

// Findings reproduces Findings 1 and 2 (§3.2): the multi-function mat/vec
// blame of example 8 and the single-function AddMult_a_AAt blame of
// example 13. The searches stay sequential — the 5-compilation cap makes
// later searches depend on earlier outcomes — but repeated build/run pairs
// hit the engine's cache.
func (e *Engine) Findings() ([]Finding, error) {
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	wf := e.Workflow()
	var out []Finding
	for _, exN := range []int{8, 13} {
		name := mfem.NewCase(exN).Name()
		f := Finding{Example: exN}
		funcs := map[string]bool{}
		for _, rr := range res.ForTest(name) {
			if !rr.Variable() {
				continue
			}
			if rr.RelativeErr > f.MaxRelErr {
				f.MaxRelErr = rr.RelativeErr
			}
			// Same-vendor searches only: cross-vendor file mixes can
			// segfault (that is Table 2's subject, not this one).
			if rr.Comp.Compiler != comp.GCC {
				continue
			}
			if len(f.Compilations) >= 5 {
				continue
			}
			report, err := wf.Bisect(wf.TestByName(name), rr.Comp, 0)
			e.NoteBisect(report)
			if err != nil {
				continue
			}
			f.Compilations = append(f.Compilations, rr.Comp)
			for _, sf := range report.AllSymbols() {
				funcs[sf.Item] = true
			}
		}
		for fn := range funcs {
			f.Functions = append(f.Functions, fn)
		}
		sort.Strings(f.Functions)
		out = append(out, f)
	}
	return out, nil
}
