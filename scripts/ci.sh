#!/bin/sh
# ci.sh — the canonical tier-1+ gate (see ROADMAP.md).
#
#   go vet           static checks
#   go build         tier-1, part 1
#   go test -race    tier-1, part 2, with the race detector: the parallel
#                    execution engine (internal/exec and everything wired
#                    through it) must be data-race-free at every -j
#   bench smoke      one iteration of the cheap benchmarks, so the
#                    benchmark harness itself cannot rot
#
# Run from the repository root: ./scripts/ci.sh
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run NONE -bench 'BenchmarkTable3CodeStats|BenchmarkMotivation' -benchtime 1x .
