package bisect

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/prog"
)

// driverProgram: three files, five exported symbols plus one internal.
// Alpha and Beta carry FP patterns the variable compilation rewrites;
// Gamma/Delta are pattern-free and can never vary.
func driverProgram() *prog.Program {
	p := prog.New("drivertest")
	p.AddFile("alpha.cpp",
		&prog.Symbol{Name: "Alpha", Exported: true, Work: 3, FPOps: 6,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "AlphaHelper", Exported: true, Work: 1, FPOps: 2,
			Features: prog.Features{ShortExpr: true, Division: true}},
	)
	p.AddFile("beta.cpp",
		&prog.Symbol{Name: "Beta", Exported: true, Work: 2, FPOps: 4,
			Features: prog.Features{Reduction: true, ShortExpr: true}},
	)
	p.AddFile("gamma.cpp",
		&prog.Symbol{Name: "Gamma", Exported: true, Work: 1, FPOps: 2},
		&prog.Symbol{Name: "Delta", Exported: true, Work: 1, FPOps: 1},
	)
	return p
}

// driverTest runs all five functions and reports a value vector.
type driverTest struct{}

func (driverTest) Name() string               { return "DriverTest" }
func (driverTest) Root() string               { return "Alpha" }
func (driverTest) GetInputsPerRun() int       { return 1 }
func (driverTest) GetDefaultInput() []float64 { return []float64{0.3} }

func (driverTest) Run(input []float64, m *link.Machine) (flit.Result, error) {
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Sin(input[0] + float64(i)*0.37)
		ys[i] = math.Cos(input[0] - float64(i)*0.11)
	}
	var out []float64

	envA, doneA := m.Fn("Alpha")
	out = append(out, envA.Dot(xs, ys))
	doneA()

	envAH, doneAH := m.Fn("AlphaHelper")
	out = append(out, envAH.Div(envAH.Sum3(xs[1], xs[2], xs[3]), 7.0))
	doneAH()

	envB, doneB := m.Fn("Beta")
	out = append(out, envB.Sum(ys))
	doneB()

	envG, doneG := m.Fn("Gamma")
	out = append(out, envG.Add(xs[0], ys[0]))
	doneG()

	envD, doneD := m.Fn("Delta")
	out = append(out, envD.Mul(xs[1], ys[1]))
	doneD()

	return flit.VecResult(out), nil
}

func (driverTest) Compare(a, b flit.Result) float64 { return flit.L2Diff(a, b) }

// bruteForceSymbols returns the exported symbols whose singleton override
// reproduces variability — the ground truth Symbol Bisect must find.
func bruteForceSymbols(t *testing.T, p *prog.Program, base, variable comp.Compilation, file string) map[string]bool {
	t.Helper()
	baseEx, err := link.FullBuild(p, base)
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := flit.RunAll(driverTest{}, baseEx)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]bool{}
	for _, sym := range p.ExportedSymbols(file) {
		ex, err := link.SymbolMixBuild(p, base, variable, []string{sym.Name})
		if err != nil {
			t.Fatal(err)
		}
		got, err := flit.RunAll(driverTest{}, ex)
		if err != nil {
			continue
		}
		if flit.L2Diff(baseRes, got) > 0 {
			truth[sym.Name] = true
		}
	}
	return truth
}

// variableCompilations finds gcc matrix compilations that actually perturb
// this program (gcc/gcc mixes cannot segfault, keeping the test focused).
func variableCompilations(t *testing.T, p *prog.Program) []comp.Compilation {
	t.Helper()
	s := &flit.Suite{Prog: p, Tests: []flit.TestCase{driverTest{}}, Baseline: comp.Baseline()}
	var gcc []comp.Compilation
	for _, c := range comp.Matrix() {
		if c.Compiler == comp.GCC {
			gcc = append(gcc, c)
		}
	}
	res, err := s.RunMatrix(gcc)
	if err != nil {
		t.Fatal(err)
	}
	var out []comp.Compilation
	for _, rr := range res.VariableRuns() {
		out = append(out, rr.Comp)
	}
	if len(out) == 0 {
		t.Fatal("no gcc compilation perturbs the driver program")
	}
	return out
}

func TestDriverFindsTrueBlameSet(t *testing.T) {
	p := driverProgram()
	vars := variableCompilations(t, p)
	checked := 0
	for _, vc := range vars {
		search := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(), Variable: vc}
		report, err := search.Run()
		if err != nil {
			t.Fatalf("%s: %v", vc, err)
		}
		if report.NoVariability {
			t.Fatalf("%s: driver reported no variability for a variable compilation", vc)
		}
		if report.Execs <= 0 {
			t.Fatal("no executions counted")
		}
		for _, ff := range report.Files {
			if ff.Value <= 0 {
				t.Fatalf("%s: file %s finding with non-positive value", vc, ff.File)
			}
			if ff.File == "gamma.cpp" {
				t.Fatalf("%s: pattern-free file blamed", vc)
			}
			if ff.Status != SymbolsFound {
				continue // fpic-removed or crashed: nothing to verify below file level
			}
			truth := bruteForceSymbols(t, p, comp.Baseline(), vc, ff.File)
			got := map[string]bool{}
			for _, sf := range ff.Symbols {
				got[sf.Item] = true
				if !truth[sf.Item] {
					t.Fatalf("%s: false positive symbol %s in %s", vc, sf.Item, ff.File)
				}
			}
			for want := range truth {
				if !got[want] {
					t.Fatalf("%s: missed symbol %s in %s (got %v)", vc, want, ff.File, ff.Symbols)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no symbol-level search completed; gates may be mistuned")
	}
}

func TestDriverBiggestK1(t *testing.T) {
	p := driverProgram()
	vars := variableCompilations(t, p)
	vc := vars[len(vars)-1]
	full := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(), Variable: vc}
	fullReport, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	top := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(), Variable: vc, K: 1}
	topReport, err := top.Run()
	if err != nil {
		t.Fatal(err)
	}
	fullSyms := fullReport.AllSymbols()
	topSyms := topReport.AllSymbols()
	if len(fullSyms) > 0 {
		if len(topSyms) == 0 {
			t.Fatal("Biggest(1) found nothing though All found symbols")
		}
		if topSyms[0].Item != fullSyms[0].Item {
			t.Fatalf("Biggest(1) top = %s, All top = %s", topSyms[0].Item, fullSyms[0].Item)
		}
	}
}

func TestDriverOnBitwiseEqualCompilation(t *testing.T) {
	p := driverProgram()
	// Plain g++ -O2 is value-safe: no variability to find.
	search := &Search{Prog: p, Test: driverTest{},
		Baseline: comp.Baseline(),
		Variable: comp.Compilation{Compiler: comp.GCC, OptLevel: "-O2"}}
	report, err := search.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !report.NoVariability || len(report.Files) != 0 {
		t.Fatalf("expected clean report, got %+v", report)
	}
}

func TestDriverExecutionBudget(t *testing.T) {
	p := driverProgram()
	vars := variableCompilations(t, p)
	for _, vc := range vars {
		search := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(), Variable: vc}
		report, err := search.Run()
		if err != nil {
			t.Fatal(err)
		}
		// 3 files, <=2 symbols per file: tens of runs at most (paper: ~30
		// average on a 97-file program).
		if report.Execs > 40 {
			t.Fatalf("%s: %d executions for a 3-file program", vc, report.Execs)
		}
	}
}

func TestSymbolStatusString(t *testing.T) {
	statuses := []SymbolStatus{SymbolsFound, SymbolsCrashed, FPICRemoved,
		NoExportedSymbols, SymbolsSkipped, SymbolsAssumption, SymbolStatus(99)}
	seen := map[string]bool{}
	for _, st := range statuses {
		s := st.String()
		if s == "" || seen[s] {
			t.Fatalf("status %d has empty or duplicate string %q", st, s)
		}
		seen[s] = true
	}
}
