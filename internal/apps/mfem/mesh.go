package mfem

import "repro/internal/link"

// Mesh1D is a 1-D mesh of n elements over [0, L] (mesh.cpp).
type Mesh1D struct {
	N int       // elements
	X []float64 // n+1 node coordinates
}

// Mesh2D is a structured quadrilateral mesh of nx×ny elements over
// [0,Lx]×[0,Ly] with lexicographic node numbering.
type Mesh2D struct {
	Nx, Ny int
	X, Y   []float64 // (nx+1)*(ny+1) node coordinates
	// ElemOrder optionally overrides the row-major element traversal used
	// by assembly. A domain decomposition (the MPI study, paper §3.6)
	// visits elements subdomain by subdomain, which changes the
	// accumulation order of shared nodes. nil means row-major.
	ElemOrder []int
}

// elementSeq returns the element indices (ey*Nx+ex) in traversal order.
func (me *Mesh2D) elementSeq() []int {
	if me.ElemOrder != nil {
		return me.ElemOrder
	}
	out := make([]int, me.Nx*me.Ny)
	for i := range out {
		out[i] = i
	}
	return out
}

// MakeCartesian1D builds a uniform 1-D mesh.
func MakeCartesian1D(m *link.Machine, n int, length float64) *Mesh1D {
	env, done := m.Fn("Mesh::MakeCartesian1D")
	defer done()
	h := env.Div(length, float64(n))
	mesh := &Mesh1D{N: n, X: make([]float64, n+1)}
	for i := 0; i <= n; i++ {
		mesh.X[i] = env.Mul(float64(i), h)
	}
	mesh.X[n] = length
	return mesh
}

// MakeCartesian2D builds a uniform quadrilateral mesh.
func MakeCartesian2D(m *link.Machine, nx, ny int, lx, ly float64) *Mesh2D {
	env, done := m.Fn("Mesh::MakeCartesian2D")
	defer done()
	hx := env.Div(lx, float64(nx))
	hy := env.Div(ly, float64(ny))
	nn := (nx + 1) * (ny + 1)
	mesh := &Mesh2D{Nx: nx, Ny: ny, X: make([]float64, nn), Y: make([]float64, nn)}
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			k := j*(nx+1) + i
			mesh.X[k] = env.Mul(float64(i), hx)
			mesh.Y[k] = env.Mul(float64(j), hy)
		}
	}
	return mesh
}

// NumNodes2D returns the node count of a 2-D mesh.
func (me *Mesh2D) NumNodes() int { return (me.Nx + 1) * (me.Ny + 1) }

// ElemNodes returns the four node indices of element (ex,ey) in
// counterclockwise order.
func (me *Mesh2D) ElemNodes(ex, ey int) [4]int {
	s := me.Nx + 1
	n0 := ey*s + ex
	return [4]int{n0, n0 + 1, n0 + 1 + s, n0 + s}
}

// ElementSize1D returns the width of element e.
func ElementSize1D(m *link.Machine, mesh *Mesh1D, e int) float64 {
	env, done := m.Fn("Mesh::ElementSize")
	defer done()
	return env.Sub(mesh.X[e+1], mesh.X[e])
}

// PerturbNodes1D displaces interior nodes by amp·x·(1-x) — a smooth,
// boundary-preserving perturbation used by tests that need non-uniform
// meshes.
func PerturbNodes1D(m *link.Machine, mesh *Mesh1D, amp float64) {
	env, done := m.Fn("Mesh::PerturbNodes")
	defer done()
	for i := 1; i < mesh.N; i++ {
		x := mesh.X[i]
		bump := env.Mul(env.Mul(amp, x), env.Sub(1, x))
		mesh.X[i] = env.Add(x, bump)
	}
}
