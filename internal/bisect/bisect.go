// Package bisect implements the FLiT Bisect algorithms (paper §2.2–§2.5):
// Algorithm 1 (BisectAll/BisectOne) with its dynamic verification
// assertions, the BisectBiggest uniform-cost-search variant, and the
// hierarchical File-then-Symbol driver that searches real executables.
//
// The search operates on abstract items (file names or symbol names) through
// a user-supplied Test function mapping a set of items to a non-negative
// magnitude: 0 means no variability when exactly those items come from the
// variable compilation, positive means variability. Test executions are
// memoized — the paper's run counts assume the same linkage combination is
// never re-executed — and counted, since the number of program executions is
// the efficiency measure of the evaluation (Tables 2 and 4).
//
// The halving steps of Algorithm 1 are strictly sequential: every probe
// depends on the previous probe's outcome. A Searcher built with a
// speculative Submitter therefore races the probes either outcome would
// need next in the background and commits only the result the sequential
// algorithm would have chosen; losers stay behind as uncounted memo
// entries. Execs() keeps the paper's sequential-trace accounting — it is
// identical at every parallelism — while SpecExecs() reports the extra
// speculative executions wall-clock was traded for.
package bisect

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/exec"
)

// TestFn quantifies the variability observed when exactly the given items
// are taken from the variable compilation. It must be deterministic, and
// safe for concurrent use when the Searcher speculates.
type TestFn func(items []string) (float64, error)

// Finding is one variability-inducing item with the magnitude it causes by
// itself (its singleton Test value).
type Finding struct {
	Item  string
	Value float64
}

// AssumptionError reports a violated search assumption: either Assumption 1
// (Unique Error) or Assumption 2 (Singleton Blame Site) failed a dynamic
// verification assertion, so the result set may contain false negatives.
type AssumptionError struct {
	Msg   string
	Items []string
}

func (e *AssumptionError) Error() string {
	if len(e.Items) == 0 {
		return "bisect: assumption violated: " + e.Msg
	}
	return fmt.Sprintf("bisect: assumption violated: %s (items %v)", e.Msg, e.Items)
}

// Searcher wraps a TestFn with memoization, execution counting, and —
// when built with a Submitter — speculative background evaluation. One
// goroutine drives a Searcher (calls Test/All/Biggest); the speculative
// evaluations it spawns run concurrently with that driving goroutine.
type Searcher struct {
	fn  TestFn
	sub *exec.Submitter

	// ids assigns each item a stable integer on first sight; memo keys are
	// built from id sequences. Touched only by the driving goroutine.
	ids map[string]int

	mu        sync.Mutex
	memo      map[string]*memoEntry
	inflight  map[string]*exec.Future[struct{}]
	futures   []*exec.Future[struct{}]
	execs     int // the paper's counter: what the sequential trace ran
	realExecs int // actual TestFn invocations, committed + speculative
}

// memoEntry is one known Test value. counted marks entries the committed
// trace has reached: a speculative result is charged to the paper counter
// only at the moment the sequential algorithm would have executed it.
type memoEntry struct {
	val     float64
	counted bool
}

// NewSearcher creates a sequential Searcher for one bisect search —
// the paper's original one-probe-at-a-time order. Execution counts
// accumulate across All/Biggest calls on the same Searcher.
func NewSearcher(fn TestFn) *Searcher { return NewSpeculativeSearcher(fn, nil) }

// NewSpeculativeSearcher creates a Searcher that additionally races
// probable future probes through sub while the committed probe runs
// inline. A nil submitter (e.g. from a sequential pool) disables
// speculation, making it identical to NewSearcher. Findings and Execs()
// are bit-identical either way; only wall-clock and SpecExecs() differ.
func NewSpeculativeSearcher(fn TestFn, sub *exec.Submitter) *Searcher {
	if sub.Cap() < 1 {
		sub = nil
	}
	return &Searcher{
		fn:       fn,
		sub:      sub,
		ids:      make(map[string]int),
		memo:     make(map[string]*memoEntry),
		inflight: make(map[string]*exec.Future[struct{}]),
	}
}

// Execs returns how many distinct Test executions the committed sequential
// trace has performed (memoized repeats are free, as in the paper's run
// accounting). Speculative evaluations are excluded until — unless — the
// trace actually reaches them, so the count equals a sequential run's
// exactly, at every parallelism.
func (s *Searcher) Execs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.execs
}

// SpecExecs returns the extra speculative executions performed beyond
// Execs: background probes whose result the committed trace never claimed.
// It is 0 without speculation and timing-dependent with it — wall-clock is
// what those executions bought.
func (s *Searcher) SpecExecs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d := s.realExecs - s.execs; d > 0 {
		return d
	}
	return 0
}

// key returns the canonical memo key of an item set. The subsets the
// search manipulates (halves, subtractions) all preserve the relative
// order items had when first seen, so the cached per-item ids come out
// ascending and the key builds in O(n) — no per-probe re-sort. A
// caller-provided permutation falls back to sorting the ids, which keeps
// the key order-independent: {a,b} and {b,a} share one memo entry.
func (s *Searcher) key(items []string) string {
	ids := make([]int, len(items))
	ascending := true
	for i, it := range items {
		id, ok := s.ids[it]
		if !ok {
			id = len(s.ids)
			s.ids[it] = id
		}
		ids[i] = id
		if i > 0 && ids[i-1] >= id {
			ascending = false
		}
	}
	if !ascending {
		sort.Ints(ids)
	}
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return string(b)
}

// Test evaluates the metric on a set of items, memoized. This is the
// committed path: it claims in-flight speculative results, and its
// accounting replicates the sequential algorithm's exactly — the first
// committed visit of a set costs one execution (even if a background probe
// already computed it), repeats are free, and a crashed attempt still
// counts as a program execution without being memoized.
func (s *Searcher) Test(items []string) (float64, error) {
	key := s.key(items)
	s.mu.Lock()
	if e, ok := s.memo[key]; ok {
		v := s.claim(e)
		s.mu.Unlock()
		return v, nil
	}
	fut := s.inflight[key]
	s.mu.Unlock()

	if fut != nil {
		if fut.Cancel() {
			// Still queued: evaluating inline beats waiting behind the
			// speculation backlog.
			s.mu.Lock()
			delete(s.inflight, key)
			s.mu.Unlock()
		} else {
			fut.Wait()
			s.mu.Lock()
			if e, ok := s.memo[key]; ok {
				v := s.claim(e)
				s.mu.Unlock()
				return v, nil
			}
			s.mu.Unlock()
			// The speculative run failed (errors are not memoized, exactly
			// like the sequential path): fall through and re-run inline so
			// the committed trace observes the error with sequential
			// accounting.
		}
	}

	s.mu.Lock()
	s.execs++ // a crashed attempt still counts as a program execution
	s.realExecs++
	s.mu.Unlock()
	v, err := s.fn(items)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("bisect: Test returned negative value %g for %v", v, items)
	}
	s.mu.Lock()
	s.memo[key] = &memoEntry{val: v, counted: true}
	s.mu.Unlock()
	return v, nil
}

// claim charges an entry to the paper counter on the committed trace's
// first visit. Callers hold s.mu.
func (s *Searcher) claim(e *memoEntry) float64 {
	if !e.counted {
		e.counted = true
		s.execs++
	}
	return e.val
}

// speculate submits Test(items) for background evaluation when speculation
// is enabled and the set is neither memoized nor already in flight. The
// result lands in the memo uncounted; it joins the paper's accounting only
// if the committed trace reaches the set.
func (s *Searcher) speculate(items []string) {
	if s.sub == nil || len(items) == 0 {
		return
	}
	key := s.key(items)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.memo[key]; ok {
		return
	}
	if _, ok := s.inflight[key]; ok {
		return
	}
	cp := append([]string(nil), items...) // halves alias the caller's slice
	fut := exec.Submit(s.sub, func() (struct{}, error) {
		v, err := s.fn(cp)
		s.mu.Lock()
		s.realExecs++
		if err == nil && v >= 0 {
			if _, ok := s.memo[key]; !ok {
				s.memo[key] = &memoEntry{val: v}
			}
		}
		delete(s.inflight, key)
		s.mu.Unlock()
		return struct{}{}, nil
	})
	s.inflight[key] = fut
	s.futures = append(s.futures, fut)
}

// drain cancels queued speculation and waits out whatever already started,
// so no background evaluation outlives the search that spawned it and the
// counters are stable when All/Biggest return.
func (s *Searcher) drain() {
	if s.sub == nil {
		return
	}
	s.mu.Lock()
	for key, f := range s.inflight {
		if f.Cancel() {
			delete(s.inflight, key)
		}
	}
	futs := s.futures
	s.futures = nil
	s.mu.Unlock()
	for _, f := range futs {
		f.Wait()
	}
}

// singletonPrefetchWidth bounds the singleton prefetch: once BisectOne has
// narrowed to this many items, the singleton tests its base case — and the
// "sorted by most influential" pass after it — will need are enqueued
// speculatively. Small on purpose: each prefetch past the blamed item is a
// wasted execution.
const singletonPrefetchWidth = 4

// All is procedure BisectAll of Algorithm 1: it finds every
// variability-inducing item, verifying the search assumptions dynamically.
// Findings are returned sorted by decreasing individual magnitude, the
// paper's "sorted by the most influential" ordering. The singleton values
// are free: BisectOne's base case already executed them.
func (s *Searcher) All(items []string) ([]Finding, error) {
	defer s.drain()
	var found []Finding
	t := append([]string(nil), items...)
	for {
		if len(t) > 1 {
			// BisectOne's first committed probe will be the left half;
			// race it against Test(t) itself.
			s.speculate(t[:len(t)/2])
		}
		v, err := s.Test(t)
		if err != nil {
			return found, err
		}
		if v == 0 {
			break
		}
		if len(t) == 0 {
			return found, &AssumptionError{
				Msg: "Test(∅) > 0: variability is not attributable to any searched item " +
					"(e.g. introduced by the link step)",
			}
		}
		g, next, err := s.one(t)
		if err != nil {
			return found, err
		}
		val, err := s.Test([]string{next})
		if err != nil {
			return found, err
		}
		found = append(found, Finding{Item: next, Value: val})
		t = subtract(t, g)
	}
	// Verification assertion (Algorithm 1, BisectAll line 8):
	// Test(items) must equal Test(found). Under Assumption 1 this proves
	// found == AV(items): no false negatives.
	vAll, err := s.Test(items)
	if err != nil {
		return found, err
	}
	vFound, err := s.Test(itemsOf(found))
	if err != nil {
		return found, err
	}
	if vAll != vFound {
		return found, &AssumptionError{
			Msg:   fmt.Sprintf("Test(items)=%g != Test(found)=%g; possible false negatives", vAll, vFound),
			Items: itemsOf(found),
		}
	}
	sort.SliceStable(found, func(i, j int) bool { return found[i].Value > found[j].Value })
	return found, nil
}

// one is procedure BisectOne of Algorithm 1. It returns the set of items
// that can safely be excluded from future searches (G ∪ ∆1 accumulated
// through the recursion) and the single found element.
func (s *Searcher) one(items []string) (exclude []string, next string, err error) {
	if len(items) == 1 {
		// Base-case assertion (Algorithm 1, BisectOne line 3): the
		// singleton must itself cause variability, or Assumption 2
		// (Singleton Blame Site) is violated.
		v, err := s.Test(items)
		if err != nil {
			return nil, "", err
		}
		if v == 0 {
			return nil, "", &AssumptionError{
				Msg:   "singleton does not reproduce variability: elements act only jointly",
				Items: items,
			}
		}
		return []string{items[0]}, items[0], nil
	}
	d1, d2 := items[:len(items)/2], items[len(items)/2:]
	if s.sub != nil {
		// Speculative halving: while the committed probe Test(∆1) runs
		// inline, the probes either branch would need next are raced in
		// the background — the right half itself (it is the base case when
		// it narrows to a singleton) and the left halves of both branches,
		// BisectOne's next committed probe whichever way Test(∆1) decides.
		// Unused results stay behind as uncounted memo entries.
		s.speculate(d2)
		if len(d1) > 1 {
			s.speculate(d1[:len(d1)/2])
		}
		if len(d2) > 1 {
			s.speculate(d2[:len(d2)/2])
		}
		if len(items) <= singletonPrefetchWidth {
			// Singleton prefetch: the recursion is about to bottom out;
			// whichever of these the base case lands on is already warm,
			// and its value doubles as the finding's reported magnitude.
			for i := range items {
				s.speculate(items[i : i+1])
			}
		}
	}
	v, err := s.Test(d1)
	if err != nil {
		return nil, "", err
	}
	if v > 0 {
		return s.one(d1)
	}
	g, next, err := s.one(d2)
	if err != nil {
		return nil, "", err
	}
	// Test(∆1) = 0, so ∆1 is excluded from future searches together with
	// whatever the recursion excluded (Algorithm 1, BisectOne line 10).
	// The halves alias the caller's slice, so build a fresh exclusion set.
	exclude = make([]string, 0, len(g)+len(d1))
	exclude = append(append(exclude, g...), d1...)
	return exclude, next, nil
}

func subtract(items, remove []string) []string {
	rm := make(map[string]bool, len(remove))
	for _, r := range remove {
		rm[r] = true
	}
	out := items[:0:0]
	for _, it := range items {
		if !rm[it] {
			out = append(out, it)
		}
	}
	return out
}

func itemsOf(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Item
	}
	return out
}
