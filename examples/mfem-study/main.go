// mfem-study reproduces the paper's §3.1–§3.3 evaluation interactively: it
// runs the 19 mini-MFEM examples under all 244 compilations, prints the
// Table 1 compiler summary and the Figure 5 performance/reproducibility
// histogram, and then re-discovers Finding 2 (the AddMult_a_AAt kernel
// behind example 13's ~180% relative error) with FLiT Bisect.
package main

import (
	"fmt"
	"log"

	"repro/internal/comp"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("running 19 examples x 244 compilations (4,636 results)...")
	rows, err := experiments.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1 — compiler summary:")
	fmt.Print(experiments.RenderTable1(rows))

	fig5, err := experiments.Figure5()
	if err != nil {
		log.Fatal(err)
	}
	repro := 0
	for _, r := range fig5 {
		if r.FastestIsReproducible {
			repro++
		}
	}
	fmt.Printf("\nFigure 5 — %d of 19 examples are fastest under a bitwise-reproducible compilation (paper: 14)\n", repro)

	fig6, err := experiments.Figure6()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 6 — example 13 relative error up to %.2f (paper: 1.83–1.97)\n",
		fig6[12].MaxErr)

	// Finding 2: root-cause example 13 under an FMA-enabling compilation.
	wf := experiments.MFEMWorkflow()
	target := comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	fmt.Printf("\nbisecting Example13 under %s ...\n", target)
	report, err := wf.Bisect(wf.TestByName("Example13"), target, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d program executions\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Printf("  %s:\n", ff.File)
		for _, sf := range ff.Symbols {
			fmt.Printf("    -> %s (magnitude %.3g)\n", sf.Item, sf.Value)
		}
	}
}
