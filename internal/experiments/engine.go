package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/apps/mfem"
	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/store"
)

// Engine bundles the execution substrate every experiment runs on: a worker
// pool that fans out independent (compilation, test) evaluations and a
// shared build/run cache memoizing repeated pairs across the matrix run,
// the bisect searches, and the injection campaign. The MFEM matrix results
// are computed once per engine and reused by every table and figure, as
// before.
//
// All outputs are bit-identical regardless of the engine's parallelism:
// every evaluation is a pure function of (compilation, test), and results
// are always collected in submission order.
type Engine struct {
	pool  *exec.Pool
	cache *flit.Cache
	shard exec.Shard
	// delta, when non-nil, records warm-start baselines for the incremental
	// campaign delta detector (see engine_delta.go).
	delta *flit.DeltaTracker

	mfemOnce sync.Once
	mfemRes  *flit.Results
	mfemErr  error

	bisectSearches atomic.Int64
	bisectExecs    atomic.Int64
	bisectSpec     atomic.Int64
}

// BisectStats aggregates the bisect engine's two execution counters over
// every search noted on this engine. Execs is the paper's sequential-trace
// accounting (the Tables 2/4 cost measure, identical at every -j);
// SpecExecs is the extra speculative work wall-clock was traded for
// (timing-dependent, diagnostics only — the CLI prints it under -stats).
type BisectStats struct {
	Searches  int64
	Execs     int64
	SpecExecs int64
}

// NoteBisect folds one search report into the engine's bisect counters.
// Safe for concurrent use: the Table 2/4 fan-outs note from pool workers.
func (e *Engine) NoteBisect(r *bisect.Report) {
	if r == nil {
		return
	}
	e.bisectSearches.Add(1)
	e.bisectExecs.Add(int64(r.Execs))
	e.bisectSpec.Add(int64(r.SpecExecs))
}

// BisectStats snapshots the engine's bisect counters.
func (e *Engine) BisectStats() BisectStats {
	return BisectStats{
		Searches:  e.bisectSearches.Load(),
		Execs:     e.bisectExecs.Load(),
		SpecExecs: e.bisectSpec.Load(),
	}
}

// NewEngine returns an engine running up to parallelism evaluations at
// once (<= 0 means one per CPU) with a fresh build/run cache.
func NewEngine(parallelism int) *Engine {
	return NewEngineCap(parallelism, 0)
}

// NewEngineCap is NewEngine with a size-capped build/run cache: at most
// cacheCap memoized run results are resident, evicted least-recently-used
// (<= 0 means unbounded). Eviction trades recomputation for memory and
// never changes any output — every memoized value is a pure function of
// its key.
func NewEngineCap(parallelism, cacheCap int) *Engine {
	return &Engine{pool: exec.New(parallelism), cache: flit.NewCacheCap(cacheCap)}
}

// NewEngineNoCache returns an engine without build/run memoization — the
// seed's re-execute-everything behavior. It exists so the benchmarks can
// quantify what the cache is worth; every real consumer wants NewEngine.
func NewEngineNoCache(parallelism int) *Engine {
	return &Engine{pool: exec.New(parallelism)}
}

// Pool returns the engine's worker pool.
func (e *Engine) Pool() *exec.Pool { return e.pool }

// Cache returns the engine's build/run cache.
func (e *Engine) Cache() *flit.Cache { return e.cache }

// AttachStore attaches a persistent store as the build/run cache's second
// tier: every in-memory miss consults it before building, every fresh
// computation writes through. Attach before the first experiment runs.
// A NewEngineNoCache engine has no cache to attach to; the call is a no-op.
func (e *Engine) AttachStore(s store.Store) { e.cache.SetStore(s) }

// AttachStoreTiers composes persistent stores into one read-through/
// write-through hierarchy (first tier consulted first — the local Disk
// cache in front of a shared Remote is the intended shape) and attaches
// it like AttachStore. Deeper-tier hits are filled forward into the tiers
// above, and every fresh computation writes through to all of them; the
// tiered lookup happens inside the cache's single-flight miss closure, so
// one in-memory miss costs at most one remote round trip however many
// goroutines wanted the key. Nil tiers are dropped; attaching none is a
// no-op.
func (e *Engine) AttachStoreTiers(tiers ...store.Store) {
	if s := store.Tier(tiers...); s != nil {
		e.cache.SetStore(s)
	}
}

// CacheMetrics snapshots the engine's cache counters — the numbers the
// CLI's -stats flag prints.
func (e *Engine) CacheMetrics() flit.CacheMetrics { return e.cache.Metrics() }

// SetShard restricts every driver of this engine to one shard of the
// deterministic job index space (matrix cells and baselines for the MFEM
// suite, whole searches for Table 2, site × OP' injections for Table 5).
// Call it before the first experiment runs — the memoized matrix results
// are computed once per engine. A sharded engine's outputs are partial by
// design; its purpose is to fill the cache for ExportArtifact.
func (e *Engine) SetShard(s exec.Shard) { e.shard = s }

// Shard reports the engine's shard assignment (zero = unsharded).
func (e *Engine) Shard() exec.Shard { return e.shard }

// Suite builds the paper's MFEM FLiT suite on this engine: 19 examples,
// baseline g++ -O0, speedups against g++ -O2.
func (e *Engine) Suite() *flit.Suite {
	return &flit.Suite{
		Prog:      mfem.Program(),
		Tests:     mfem.AllCases(),
		Baseline:  comp.Baseline(),
		Reference: comp.PerfReference(),
		Pool:      e.pool,
		Cache:     e.cache,
		Shard:     e.shard,
	}
}

// Workflow wires the MFEM suite into the multi-level workflow; Level-3
// bisect searches inherit the suite's pool and cache.
func (e *Engine) Workflow() *core.Workflow {
	return &core.Workflow{Suite: e.Suite(), Matrix: comp.Matrix()}
}

// Results runs (once per engine, memoized) the full 244-compilation ×
// 19-example matrix — 4,636 experimental results, as in §3.1.
func (e *Engine) Results() (*flit.Results, error) {
	e.mfemOnce.Do(func() {
		e.mfemRes, e.mfemErr = e.Suite().RunMatrix(comp.Matrix())
	})
	return e.mfemRes, e.mfemErr
}

// The package-level experiment functions (Table1, Figure4, ... — the API
// the CLI, benchmarks, and examples consume) delegate to a process-wide
// default engine, configured with SetParallelism.
var (
	defaultMu  sync.Mutex
	defaultEng *Engine
	defaultJ   int // 0 = one worker per CPU
)

// SetParallelism configures how many evaluations the default engine runs
// concurrently: n <= 0 means one per CPU, 1 is fully sequential. It takes
// effect by installing a fresh default engine, so memoized matrix results
// and the build/run cache of the previous one are discarded — call it
// before running experiments (the CLI maps -j straight to it).
func SetParallelism(n int) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultJ = n
	defaultEng = nil
}

// Parallelism reports the default engine's concurrency bound.
func Parallelism() int {
	return Default().Pool().Workers()
}

// Default returns the process-wide engine, creating it on first use.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEng == nil {
		defaultEng = NewEngine(defaultJ)
	}
	return defaultEng
}
