package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// Client speaks the coordinator protocol under the same transport
// discipline as store.Remote — bounded retries with backoff and jitter on
// 5xx/timeouts/connection errors, a per-operation deadline — because a
// worker mid-campaign sees exactly the network a remote store client
// does. Unlike the store client it does NOT fail open: scheduling calls
// are cheap and their answers change what the worker does next, so an
// exhausted retry budget surfaces as an error the worker loop backs off
// on, not as a silent miss. Every method takes a context: the retry
// loop's deadline is clipped to it, so a draining worker's cancellation
// interrupts an in-flight backoff instead of riding it out.
type Client struct {
	base    string
	engine  string
	opts    store.RemoteOptions
	retries atomic.Int64
}

// NewClient returns a coordinator client for the service at baseURL,
// fenced to the given engine version. opts may be nil; zero fields take
// the store transport defaults.
func NewClient(baseURL, engine string, opts *store.RemoteOptions) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("coord: coordinator URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("coord: coordinator URL %q: want http(s)://host[:port]", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), engine: engine}
	if opts != nil {
		c.opts = *opts
	}
	c.opts = c.opts.WithDefaults()
	return c, nil
}

// URL returns the coordinator's base URL.
func (cl *Client) URL() string { return cl.base }

// Options returns the effective (defaults-filled) transport options.
func (cl *Client) Options() store.RemoteOptions { return cl.opts }

// Retries reports how many requests the client re-sent.
func (cl *Client) Retries() int64 { return cl.retries.Load() }

// do runs one coordinator operation under the retry loop and classifies
// the terminal answer. When out is non-nil a 200 body must decode into it
// — a 200 whose body does not parse is a damaged response (truncation,
// bit rot), which is a transport failure of that attempt and retried,
// exactly as the store client treats a damaged envelope. The damaged
// attempt keeps its status and body so an exhausted budget reports what
// the server actually said, not "status 0".
func (cl *Client) do(ctx context.Context, method, op string, body []byte, out any) error {
	res, exhausted := cl.opts.Retry(ctx, func(ctx context.Context) store.Attempt {
		a := cl.send(ctx, method, op, body)
		if a.Err == nil && a.Status == http.StatusOK && out != nil {
			if err := json.Unmarshal(a.Body, out); err != nil {
				a.Err = fmt.Errorf("malformed response: %w", err)
			}
		}
		return a
	}, func() { cl.retries.Add(1) })
	if exhausted {
		if res.Err != nil {
			if res.Status != 0 {
				return fmt.Errorf("coord: %s: retries exhausted (last status %d): %w", op, res.Status, res.Err)
			}
			return fmt.Errorf("coord: %s: retries exhausted: %w", op, res.Err)
		}
		return fmt.Errorf("coord: %s: retries exhausted (last status %d)", op, res.Status)
	}
	return classify(op, res)
}

// call POSTs one campaign-scoped coordinator operation.
func (cl *Client) call(ctx context.Context, campaign, op string, req leaseRequest, out any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("coord: encoding %s request: %w", op, err)
	}
	return cl.do(ctx, http.MethodPost, campaign+"/"+op, body, out)
}

// send issues one request and reads a size-capped body.
func (cl *Client) send(ctx context.Context, method, op string, body []byte) store.Attempt {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.base+coordPathPrefix+op, reader)
	if err != nil {
		return store.Attempt{Err: err}
	}
	req.Header.Set(engineHeader, cl.engine)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.opts.Client.Do(req)
	if err != nil {
		return store.Attempt{Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody+1))
	if err != nil {
		return store.Attempt{Err: err}
	}
	return store.Attempt{Status: resp.StatusCode, Body: data}
}

// classify turns a terminal non-2xx attempt into the caller-facing error.
func classify(op string, res store.Attempt) error {
	switch res.Status {
	case http.StatusOK:
		return nil
	case StatusLeaseLost:
		return ErrLeaseLost
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s)", ErrNoCampaign, op)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("coord: %s: coordinator runs a different engine: %s", op, strings.TrimSpace(string(res.Body)))
	default:
		return fmt.Errorf("coord: %s: status %d: %s", op, res.Status, strings.TrimSpace(string(res.Body)))
	}
}

// Campaigns lists the coordinator's tenancy in submission order.
func (cl *Client) Campaigns(ctx context.Context) ([]CampaignInfo, error) {
	var infos []CampaignInfo
	if err := cl.do(ctx, http.MethodGet, "campaigns", nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Submit registers a campaign (idempotently: re-submitting a spec the
// coordinator already holds names the existing campaign, created=false).
// maxAttempts is the per-shard attempt budget; 0 takes the coordinator's
// default, and it is not part of the campaign's identity — resubmitting
// with a different budget names the existing campaign under its original
// one.
func (cl *Client) Submit(ctx context.Context, command []string, shards, maxAttempts int) (id string, created bool, err error) {
	body, err := json.Marshal(submitRequest{Command: command, Shards: shards, MaxAttempts: maxAttempts})
	if err != nil {
		return "", false, fmt.Errorf("coord: encoding submit request: %w", err)
	}
	var sr submitResponse
	if err := cl.do(ctx, http.MethodPost, "campaigns", body, &sr); err != nil {
		return "", false, err
	}
	return sr.ID, sr.Created, nil
}

// GC asks the coordinator to retire superseded completed campaign
// generations, keeping the newest keep per command.
func (cl *Client) GC(ctx context.Context, keep int, dryRun bool) (GCResult, error) {
	body, err := json.Marshal(gcRequest{Keep: keep, DryRun: dryRun})
	if err != nil {
		return GCResult{}, fmt.Errorf("coord: encoding gc request: %w", err)
	}
	var res GCResult
	if err := cl.do(ctx, http.MethodPost, "gc", body, &res); err != nil {
		return GCResult{}, err
	}
	return res, nil
}

// Lease asks for a shard of the campaign. The returned state is Granted
// (the Grant is valid), Wait (poll again after a beat, or try another
// campaign), Done (campaign complete), or Failed (campaign terminally
// failed — move on exactly as for Done).
func (cl *Client) Lease(ctx context.Context, campaign, worker string) (Grant, LeaseState, error) {
	var lr leaseResponse
	if err := cl.call(ctx, campaign, "lease", leaseRequest{Worker: worker}, &lr); err != nil {
		return Grant{}, Wait, err
	}
	switch lr.State {
	case "granted":
		return Grant{Shard: lr.Shard, Count: lr.Count, Command: lr.Command,
			LeaseID: lr.LeaseID, TTL: time.Duration(lr.TTLMS) * time.Millisecond}, Granted, nil
	case "done":
		return Grant{}, Done, nil
	case "failed":
		return Grant{}, Failed, nil
	case "wait":
		return Grant{}, Wait, nil
	default:
		return Grant{}, Wait, fmt.Errorf("coord: lease: unknown state %q", lr.State)
	}
}

// Heartbeat extends a lease; ErrLeaseLost means the shard is no longer
// this worker's and the run should be abandoned.
func (cl *Client) Heartbeat(ctx context.Context, campaign, worker, leaseID string, shard int) error {
	return cl.call(ctx, campaign, "heartbeat", leaseRequest{Worker: worker, LeaseID: leaseID, Shard: shard}, nil)
}

// Release hands a leased shard back (the drain path). Idempotent.
func (cl *Client) Release(ctx context.Context, campaign, worker, leaseID string, shard int) error {
	return cl.call(ctx, campaign, "release", leaseRequest{Worker: worker, LeaseID: leaseID, Shard: shard}, nil)
}

// Complete uploads a finished shard artifact. The lease need not still be
// live — deterministic artifacts make late and duplicate completions
// safe. campaignDone reports whether this completion finished the
// campaign, allDone whether it finished every campaign the coordinator
// holds, allTerminal whether every campaign is complete or terminally
// failed — which matters under -exit-when-done: the coordinator may be
// gone before the worker's next poll could say so.
func (cl *Client) Complete(ctx context.Context, campaign, worker, leaseID string, shard int, artifact []byte) (campaignDone, allDone, allTerminal bool, err error) {
	var lr leaseResponse
	err = cl.call(ctx, campaign, "complete", leaseRequest{Worker: worker, LeaseID: leaseID,
		Shard: shard, Artifact: json.RawMessage(artifact)}, &lr)
	if err != nil {
		return false, false, false, err
	}
	return lr.State == "done", lr.AllDone, lr.AllTerminal, nil
}

// Fail reports a structured shard failure: the lease is released, the
// attempt is consumed, and the report (error text plus a truncated
// stderr/panic excerpt) is recorded against the shard. quarantined
// reports whether this failure exhausted the shard's attempt budget,
// campaignFailed whether the campaign is now terminally failed, and
// allTerminal whether every campaign the coordinator holds is complete
// or failed — the fleet-wide drain signal. ErrLeaseLost means the shard
// was already re-leased; the report is dropped and the worker just moves
// on.
func (cl *Client) Fail(ctx context.Context, campaign, worker, leaseID string, shard int, errText, excerpt string) (quarantined, campaignFailed, allTerminal bool, err error) {
	var lr leaseResponse
	err = cl.call(ctx, campaign, "fail", leaseRequest{Worker: worker, LeaseID: leaseID,
		Shard: shard, Error: errText, Excerpt: excerpt}, &lr)
	if err != nil {
		return false, false, false, err
	}
	return lr.Quarantined, lr.CampaignFailed, lr.AllTerminal, nil
}

// Status fetches one campaign's snapshot.
func (cl *Client) Status(ctx context.Context, campaign string) (Status, error) {
	var st Status
	err := cl.do(ctx, http.MethodGet, campaign+"/status", nil, &st)
	return st, err
}
