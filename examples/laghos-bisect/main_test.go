package main

import (
	"strings"
	"testing"
)

// TestLaghosBisectSmoke replays the Laghos case study: the motivating
// incident, the NaN-bug re-discovery, Table 4, and the epsilon fix.
func TestLaghosBisectSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Motivating incident (paper §1):",
		"NaN bug re-discovery:",
		"Table 4 — Bisect statistics",
		"with the epsilon-comparison fix:",
		// The XOR-swap macro's visible neighbors.
		"TimeIntegrator",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
