package flit

import (
	"strings"
	"testing"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
)

// TestPlanRunKeyMatchesEagerKeys: the key-first address space is the eager
// one — a plan-derived run or cost key is byte-identical to the key the
// built executable produces, so key-first lookups hit entries recorded by
// the eager path and by imported artifacts.
func TestPlanRunKeyMatchesEagerKeys(t *testing.T) {
	s := newSuite()
	plan := link.FullBuildPlan(s.Prog, s.Baseline)
	b := link.NewBuilder(plan)
	ex, err := link.Link(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := PlanRunKey(b, s.Tests[0]), RunKey(ex, s.Tests[0]); got != want {
		t.Fatalf("PlanRunKey %q != RunKey %q", got, want)
	}
	if got, want := planCostKey(b, "Kernel"), costKey(ex, "Kernel"); got != want {
		t.Fatalf("planCostKey %q != costKey %q", got, want)
	}
	if b.Built() {
		t.Fatal("key construction materialized the plan")
	}
}

// TestRunAllPlannedLazyOnHit: the build thunk is invoked on a miss and
// never on a hit; results are bit-identical either way; the cache's build
// accounting sees one materialization and one skipped build.
func TestRunAllPlannedLazyOnHit(t *testing.T) {
	s := newSuite()
	cache := NewCache()
	plan := link.FullBuildPlan(s.Prog, s.Baseline)

	cold := link.NewBuilder(plan)
	first, err := cache.RunAllPlanned(s.Tests[0], cold)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Built() {
		t.Fatal("miss did not materialize the plan")
	}

	warm := link.NewBuilder(plan)
	again, err := cache.RunAllPlanned(s.Tests[0], warm)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Built() {
		t.Fatal("hit materialized the plan — the key-first fast path built anyway")
	}
	if L2Diff(first, again) != 0 {
		t.Fatal("key-first hit returned different bits")
	}
	costA, err := cache.CostPlanned(link.NewBuilder(plan), "Kernel")
	if err != nil {
		t.Fatal(err)
	}
	costWarm := link.NewBuilder(plan)
	costB, err := cache.CostPlanned(costWarm, "Kernel")
	if err != nil {
		t.Fatal(err)
	}
	if costWarm.Built() {
		t.Fatal("cost hit materialized the plan")
	}
	if costA != costB {
		t.Fatalf("cost hit %g != miss %g", costB, costA)
	}

	m := cache.Metrics()
	if m.Builds != 2 { // the run miss and the cost miss each materialized once
		t.Errorf("Builds = %d, want 2", m.Builds)
	}
	if m.SkippedBuilds != 2 { // the warm run builder and the warm cost builder
		t.Errorf("SkippedBuilds = %d, want 2", m.SkippedBuilds)
	}
	if b, sk := cache.BuildStats(); b != m.Builds || sk != m.SkippedBuilds {
		t.Errorf("BuildStats (%d,%d) disagrees with Metrics (%d,%d)", b, sk, m.Builds, m.SkippedBuilds)
	}

	// The eager and the key-first forms share entries both ways.
	ex, err := link.Link(plan)
	if err != nil {
		t.Fatal(err)
	}
	hits0, _ := cache.Stats()
	eager, err := cache.RunAll(s.Tests[0], ex)
	if err != nil {
		t.Fatal(err)
	}
	if hits1, _ := cache.Stats(); hits1 != hits0+1 {
		t.Error("eager RunAll missed the entry the key-first path recorded")
	}
	if L2Diff(first, eager) != 0 {
		t.Fatal("eager hit returned different bits")
	}

	// A nil cache still works — it just builds and runs.
	var nc *Cache
	nb := link.NewBuilder(plan)
	r, err := nc.RunAllPlanned(s.Tests[0], nb)
	if err != nil || L2Diff(first, r) != 0 {
		t.Fatalf("nil-cache RunAllPlanned: %v (diff %g)", err, L2Diff(first, r))
	}
	if !nb.Built() {
		t.Fatal("nil cache cannot answer without building")
	}
	if c, err := nc.CostPlanned(link.NewBuilder(plan), "Kernel"); err != nil || c != costA {
		t.Fatalf("nil-cache CostPlanned = %g, %v; want %g", c, err, costA)
	}
}

// TestRunAllPlannedMemoizesBuildError: an unbuildable plan's error is
// memoized under its key like any run error, and CostPlanned surfaces it
// too — but never as an exportable cost record.
func TestRunAllPlannedMemoizesBuildError(t *testing.T) {
	s := newSuite()
	cache := NewCache()
	bad := link.Plan{Prog: s.Prog, Baseline: s.Baseline,
		FileComp: map[string]comp.Compilation{"nosuch.cpp": comp.PerfReference()}}
	if _, err := cache.RunAllPlanned(s.Tests[0], link.NewBuilder(bad)); err == nil {
		t.Fatal("unbuildable plan ran")
	}
	second := link.NewBuilder(bad)
	if _, err := cache.RunAllPlanned(s.Tests[0], second); err == nil {
		t.Fatal("memoized build error lost")
	}
	if second.Built() {
		t.Fatal("memoized build error still re-linked the plan")
	}
	if _, err := cache.CostPlanned(link.NewBuilder(bad), "Kernel"); err == nil {
		t.Fatal("CostPlanned succeeded on an unbuildable plan")
	}
	art := cache.Export(exec.Shard{}, nil)
	if len(art.Costs) != 0 {
		t.Fatalf("errored cost entry exported: %+v", art.Costs)
	}
}

// TestWarmStartedMatrixBuildsNothing: the acceptance pin for key-first
// execution — a matrix run whose every evaluation is covered by imported
// artifacts constructs zero executables, at -j 1 and fanned out, and its
// Results are byte-identical to the cold run's.
func TestWarmStartedMatrixBuildsNothing(t *testing.T) {
	matrix := comp.Matrix()

	cold := newSuite()
	cold.Cache = NewCache()
	coldRes, err := cold.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(coldRes)
	art := cold.Cache.Export(exec.Shard{}, []string{"matrix"})
	if cm := cold.Cache.Metrics(); cm.Builds == 0 {
		t.Fatal("cold run reported zero builds — the accounting is broken")
	}

	for _, j := range []int{1, 8} {
		warm := newSuite()
		warm.Cache = NewCache()
		if j > 1 {
			warm.Pool = exec.New(j)
		}
		if err := warm.Cache.Import(art); err != nil {
			t.Fatal(err)
		}
		warmRes, err := warm.RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got := matrixFingerprint(warmRes); got != want {
			t.Errorf("j=%d: warm-started matrix differs from cold run", j)
		}
		m := warm.Cache.Metrics()
		if m.Builds != 0 {
			t.Errorf("j=%d: fully covered matrix materialized %d executables, want 0", j, m.Builds)
		}
		if m.SkippedBuilds == 0 {
			t.Errorf("j=%d: no skipped builds recorded on a fully warm run", j)
		}
		if m.Runs.Misses != 0 {
			t.Errorf("j=%d: %d run misses on a fully covered matrix", j, m.Runs.Misses)
		}
	}
}

// TestPartiallyWarmMatrixBuildsOnlyInvalidated: delta-aware cell skipping —
// seed a baseline that covers everything except one compilation's cells;
// the re-run must materialize exactly that cell's build and nothing else.
func TestPartiallyWarmMatrixBuildsOnlyInvalidated(t *testing.T) {
	matrix := comp.Matrix()
	victim := matrix[len(matrix)/2]

	cold := newSuite()
	cold.Cache = NewCache()
	coldRes, err := cold.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(coldRes)

	// Strip the victim compilation's records from the baseline, simulating
	// a matrix edit that invalidated exactly one cell column.
	full := cold.Cache.Export(exec.Shard{}, nil)
	victimKey := link.FullBuildPlan(cold.Prog, victim).Key()
	pruned := &Artifact{Version: full.Version, Engine: full.Engine, Shard: full.Shard}
	for _, r := range full.Runs {
		if !strings.HasPrefix(r.Key, victimKey+"\x00") {
			pruned.Runs = append(pruned.Runs, r)
		}
	}
	for _, c := range full.Costs {
		if !strings.HasPrefix(c.Key, victimKey+"\x00") {
			pruned.Costs = append(pruned.Costs, c)
		}
	}
	if len(pruned.Runs) == len(full.Runs) {
		t.Fatal("victim key matched no runs — the pruning is vacuous")
	}

	warm := newSuite()
	warm.Cache = NewCache()
	if err := warm.Cache.Import(pruned); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if got := matrixFingerprint(warmRes); got != want {
		t.Error("partially warm matrix differs from cold run")
	}
	m := warm.Cache.Metrics()
	if m.Builds != 1 {
		t.Errorf("one invalidated cell materialized %d executables, want exactly 1", m.Builds)
	}
	if m.Runs.Misses != int64(len(warm.Tests)) {
		t.Errorf("run misses = %d, want %d (the invalidated cell's tests)",
			m.Runs.Misses, len(warm.Tests))
	}
}
