package mfem

import "repro/internal/link"

// Dense is a row-major dense matrix (densemat.cpp).
type Dense struct {
	R, C int
	A    []float64
}

// NewDense allocates an R×C zero matrix.
func NewDense(r, c int) *Dense {
	return &Dense{R: r, C: c, A: make([]float64, r*c)}
}

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.A[i*d.C+j] }

// Set stores element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.A[i*d.C+j] = v }

// Row returns row i as a slice view.
func (d *Dense) Row(i int) []float64 { return d.A[i*d.C : (i+1)*d.C] }

// DenseMult computes y = D·x.
func DenseMult(m *link.Machine, d *Dense, x, y []float64) {
	env, done := m.Fn("DenseMatrix::Mult")
	defer done()
	for i := 0; i < d.R; i++ {
		y[i] = env.Dot(d.Row(i), x)
	}
}

// DenseMultTranspose computes y = Dᵀ·x.
func DenseMultTranspose(m *link.Machine, d *Dense, x, y []float64) {
	env, done := m.Fn("DenseMatrix::MultTranspose")
	defer done()
	col := make([]float64, d.R)
	for j := 0; j < d.C; j++ {
		for i := 0; i < d.R; i++ {
			col[i] = d.At(i, j)
		}
		y[j] = env.Dot(col, x)
	}
}

// AddMultAAt computes M += a·A·Aᵀ — the straightforward nested-loop kernel
// of the paper's Finding 2, the single function blamed for MFEM example
// 13's 183–197% relative error under FMA/AVX2 compilations.
func AddMultAAt(m *link.Machine, a float64, A, M *Dense) {
	env, done := m.Fn("DenseMatrix::AddMult_a_AAt")
	defer done()
	for i := 0; i < A.R; i++ {
		for j := 0; j < A.R; j++ {
			dot := env.Dot(A.Row(i), A.Row(j))
			M.Set(i, j, env.MulAdd(a, dot, M.At(i, j)))
		}
	}
}

// Det2 returns the determinant of the top-left 2×2 block.
func Det2(m *link.Machine, d *Dense) float64 {
	env, done := m.Fn("DenseMatrix::Det2")
	defer done()
	return env.MulSub(d.At(0, 0), d.At(1, 1), env.Mul(d.At(0, 1), d.At(1, 0)))
}

// Trace returns the sum of the diagonal.
func Trace(m *link.Machine, d *Dense) float64 {
	env, done := m.Fn("DenseMatrix::Trace")
	defer done()
	n := d.R
	if d.C < n {
		n = d.C
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = d.At(i, i)
	}
	return env.Sum(diag)
}

// FNorm returns the Frobenius norm.
func FNorm(m *link.Machine, d *Dense) float64 {
	env, done := m.Fn("DenseMatrix::FNorm")
	defer done()
	return env.Sqrt(env.Dot(d.A, d.A))
}

// Invert2x2 inverts the top-left 2×2 block in place and returns the
// determinant it divided by.
func Invert2x2(m *link.Machine, d *Dense) float64 {
	env, done := m.Fn("DenseMatrix::Invert2x2")
	defer done()
	det := Det2(m, d)
	inv := env.Div(1, det)
	a, b, c, dd := d.At(0, 0), d.At(0, 1), d.At(1, 0), d.At(1, 1)
	d.Set(0, 0, env.Mul(dd, inv))
	d.Set(0, 1, env.Mul(-b, inv))
	d.Set(1, 0, env.Mul(-c, inv))
	d.Set(1, 1, env.Mul(a, inv))
	return det
}

// LSolve solves L·x = b in place for a lower-triangular L with nonzero
// diagonal (forward substitution).
func LSolve(m *link.Machine, L *Dense, b []float64) {
	env, done := m.Fn("DenseMatrix::LSolve")
	defer done()
	for i := 0; i < L.R; i++ {
		s := env.Dot(L.Row(i)[:i], b[:i])
		b[i] = env.Div(env.Sub(b[i], s), L.At(i, i))
	}
}
