package experiments

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
)

// Table2Row characterizes Bisect for one compiler (Table 2): how many
// program executions the searches used, how many File Bisect runs survived
// the mixed-binary segfaults, and how many of those also completed Symbol
// Bisect.
type Table2Row struct {
	Compiler string
	// AvgExecs is the mean number of program executions per search.
	AvgExecs float64
	// FileSuccess / FileTotal: File Bisect completed without a crash.
	FileSuccess, FileTotal int
	// SymbolSuccess / SymbolTotal: of the file successes, the searches
	// whose every found file descended to the symbol level.
	SymbolSuccess, SymbolTotal int
	// FPICRemoved counts file findings whose variability vanished under
	// -fPIC (the §2.3 "cannot go deeper" case).
	FPICRemoved int
}

// Table2 runs the Bisect characterization on the default engine.
func Table2(limit int) ([]Table2Row, int, error) { return Default().Table2(limit) }

// Table2 runs FLiT Bisect on the variability-inducing (test, compilation)
// pairs found by the MFEM matrix and aggregates per compiler, as §3.2 does
// for all 1,086 variable compilations. limit > 0 caps the number of
// searches per compiler (for quick runs); 0 examines everything.
//
// The searches are mutually independent, so they fan out through the
// engine's pool: the pairs to examine are selected first (sequentially, so
// the limit cap picks exactly the pairs a sequential run would), the
// hierarchical searches run concurrently, and the reports are folded into
// the per-compiler aggregates in selection order.
func (e *Engine) Table2(limit int) ([]Table2Row, int, error) {
	res, err := e.Results()
	if err != nil {
		return nil, 0, err
	}
	wf := e.Workflow()
	type agg struct {
		execs             int
		searches          int
		fileOK, fileTotal int
		symOK, symTotal   int
		fpicRemoved       int
	}
	byCompiler := map[string]*agg{}
	for _, c := range []string{comp.GCC, comp.Clang, comp.ICPC} {
		byCompiler[c] = &agg{}
	}
	totalVariable := 0
	var selected []flit.RunResult
	for _, rr := range res.VariableRuns() {
		a := byCompiler[rr.Comp.Compiler]
		if a == nil {
			continue
		}
		totalVariable++
		if limit > 0 && a.fileTotal >= limit {
			continue
		}
		a.fileTotal++
		selected = append(selected, rr)
	}
	type searchOut struct {
		report *bisect.Report
		err    error
	}
	// On a sharded engine the matrix Results already cover only the owned
	// compilations, so `selected` is this shard's slice of the variable
	// pairs — sharding it again here would leave searches owned by no
	// shard. Every selected search runs; aggregates over a shard are
	// partial by design and `flit merge` replays the full
	// characterization. (The per-compiler limit caps each shard's local
	// selection, a superset of the unsharded run's capped selection, so
	// merged replays stay fully covered.)
	outs, _ := exec.Map(e.pool, len(selected), func(k int) (searchOut, error) {
		rr := selected[k]
		// Each search runs sequentially inside: this Map is already the
		// pooled fan-out level, so -j stays the true concurrency bound.
		s := &bisect.Search{
			Prog:     wf.Suite.Prog,
			Test:     wf.TestByName(rr.Test),
			Baseline: wf.Suite.Baseline,
			Variable: rr.Comp,
			Cache:    e.cache,
		}
		report, err := s.Run()
		return searchOut{report: report, err: err}, nil
	})
	for k, out := range outs {
		a := byCompiler[selected[k].Comp.Compiler]
		report, err := out.report, out.err
		e.NoteBisect(report)
		if report != nil {
			a.execs += report.Execs
			a.searches++
		}
		if err != nil {
			var ae *bisect.AssumptionError
			if errors.As(err, &ae) {
				// Assumption violations are reported, not crashes; the
				// paper's failure category is the segfaulting executable.
				a.fileOK++
			}
			continue
		}
		a.fileOK++
		a.symTotal++
		ok := true
		for _, ff := range report.Files {
			switch ff.Status {
			case bisect.SymbolsFound:
			case bisect.FPICRemoved:
				a.fpicRemoved++
				ok = false
			default:
				ok = false
			}
		}
		if ok {
			a.symOK++
		}
	}
	var rows []Table2Row
	for _, c := range []string{comp.GCC, comp.Clang, comp.ICPC} {
		a := byCompiler[c]
		row := Table2Row{Compiler: c,
			FileSuccess: a.fileOK, FileTotal: a.fileTotal,
			SymbolSuccess: a.symOK, SymbolTotal: a.symTotal,
			FPICRemoved: a.fpicRemoved,
		}
		if a.searches > 0 {
			row.AvgExecs = float64(a.execs) / float64(a.searches)
		}
		rows = append(rows, row)
	}
	return rows, totalVariable, nil
}

// RenderTable2 prints the characterization in the paper's layout.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14s", r.Compiler)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "average test executions")
	for _, r := range rows {
		fmt.Fprintf(&b, "%14.0f", r.AvgExecs)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "File Bisect successes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d/%-4d", r.FileSuccess, r.FileTotal)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-28s", "Symbol Bisect successes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9d/%-4d", r.SymbolSuccess, r.SymbolTotal)
	}
	b.WriteString("\n")
	return b.String()
}

// bisectOne is a small helper for tests: the full hierarchical search for
// one (test, compilation) pair of the MFEM suite.
func bisectOne(test flit.TestCase, variable comp.Compilation) (*bisect.Report, error) {
	wf := MFEMWorkflow()
	return wf.Bisect(test, variable, 0)
}
