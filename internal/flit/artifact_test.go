package flit

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/link"
)

// exportImport pushes a cache's contents through JSON bytes into a fresh
// cache, the full remote round trip.
func exportImport(t *testing.T, c *Cache) *Cache {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Export(exec.Shard{}, []string{"test"}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	art, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewCache()
	if err := fresh.Import(art); err != nil {
		t.Fatal(err)
	}
	return fresh
}

// TestArtifactRoundTripValues: scalars, vectors (including empty), NaN and
// ±Inf all survive the JSON round trip bit-exactly — decimal JSON floats
// would reject NaN outright and the Laghos NaN study depends on them.
func TestArtifactRoundTripValues(t *testing.T) {
	c := NewCache()
	vals := map[string]Result{
		"scalar":   ScalarResult(0.1 + 0.2),
		"zero":     ScalarResult(0),
		"nan":      ScalarResult(math.NaN()),
		"inf":      ScalarResult(math.Inf(1)),
		"vec":      VecResult([]float64{1.5, math.NaN(), math.Inf(-1), -0.0}),
		"emptyvec": VecResult([]float64{}),
	}
	for k, v := range vals {
		v := v
		c.runs.Seed(k, runVal{res: v}, nil)
	}
	fresh := exportImport(t, c)
	for k, want := range vals {
		got, err := fresh.runs.Do(k, func() (runVal, error) {
			t.Fatalf("key %q not imported", k)
			return runVal{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.res.IsVec() != want.IsVec() {
			t.Errorf("%s: IsVec %v != %v", k, got.res.IsVec(), want.IsVec())
			continue
		}
		if !want.IsVec() {
			if math.Float64bits(got.res.Scalar) != math.Float64bits(want.Scalar) {
				t.Errorf("%s: scalar bits differ: %x != %x", k,
					math.Float64bits(got.res.Scalar), math.Float64bits(want.Scalar))
			}
			continue
		}
		if len(got.res.Vec) != len(want.Vec) {
			t.Errorf("%s: len %d != %d", k, len(got.res.Vec), len(want.Vec))
			continue
		}
		for i := range want.Vec {
			if math.Float64bits(got.res.Vec[i]) != math.Float64bits(want.Vec[i]) {
				t.Errorf("%s[%d]: bits differ", k, i)
			}
		}
	}
}

// TestArtifactRoundTripErrors: memoized run errors keep their text and —
// for the one identity the drivers branch on — their errors.Is behavior
// after replay. A bisect replay that lost the segfault identity would
// misclassify every crashed symbol search.
func TestArtifactRoundTripErrors(t *testing.T) {
	c := NewCache()
	c.runs.Seed("segv", runVal{err: link.ErrSegfault}, nil)
	wrapped := errors.Join(errors.New("flit: test X:"), link.ErrSegfault)
	c.runs.Seed("wrapped-segv", runVal{err: wrapped}, nil)
	c.runs.Seed("other", runVal{err: errors.New("input exhausted")}, nil)
	c.runs.Seed("ok", runVal{res: ScalarResult(1)}, nil)

	fresh := exportImport(t, c)
	get := func(k string) error {
		v, _ := fresh.runs.Do(k, func() (runVal, error) {
			t.Fatalf("key %q not imported", k)
			return runVal{}, nil
		})
		return v.err
	}
	if err := get("segv"); !errors.Is(err, link.ErrSegfault) || err.Error() != link.ErrSegfault.Error() {
		t.Errorf("segv replayed as %v", err)
	}
	if err := get("wrapped-segv"); !errors.Is(err, link.ErrSegfault) || err.Error() != wrapped.Error() {
		t.Errorf("wrapped segv replayed as %v", err)
	}
	if err := get("other"); errors.Is(err, link.ErrSegfault) || err == nil || err.Error() != "input exhausted" {
		t.Errorf("plain error replayed as %v", err)
	}
	if err := get("ok"); err != nil {
		t.Errorf("clean result replayed with error %v", err)
	}
}

// TestImportNeverOverwrites: overlapping keys across shards (every shard
// computes the shared baselines redundantly) keep the first-imported
// value — safe because a deterministic engine makes all copies identical.
func TestImportNeverOverwrites(t *testing.T) {
	src := NewCache()
	src.runs.Seed("k", runVal{res: ScalarResult(42)}, nil)
	art := src.Export(exec.Shard{}, nil)

	dst := NewCache()
	dst.runs.Seed("k", runVal{res: ScalarResult(42)}, nil)
	if err := dst.Import(art); err != nil {
		t.Fatal(err)
	}
	v, _ := dst.runs.Do("k", func() (runVal, error) { return runVal{}, nil })
	if v.res.Scalar != 42 {
		t.Errorf("existing entry overwritten: %v", v.res.Scalar)
	}
	if dst.runs.Len() != 1 {
		t.Errorf("Len = %d after overlapping import", dst.runs.Len())
	}
}

// TestArtifactExportDeterministic: the same cache contents always
// serialize to the same bytes (sorted records), so shard artifacts can be
// compared and content-addressed.
func TestArtifactExportDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		c := NewCache()
		for _, k := range []string{"z", "a", "m"} {
			c.runs.Seed(k, runVal{res: ScalarResult(float64(len(k)))}, nil)
			c.costs.Seed(k, 1.5, nil)
		}
		var buf bytes.Buffer
		if err := c.Export(exec.Shard{Index: 0, Count: 2}, []string{"run"}).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(build().Bytes(), build().Bytes()) {
		t.Error("identical cache contents serialized to different bytes")
	}
}
