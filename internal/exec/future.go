package exec

import "sync/atomic"

// Submitter admits speculative background evaluations onto a pool. It is a
// second, separately bounded concurrency level: a pool of j workers hands
// out a submitter of capacity j-1, so a driver whose committed work already
// saturates the pool can speculate ahead without ever exceeding 2j-1
// concurrent evaluations. A nil Submitter is valid and admits nothing —
// Submit returns a nil Future — which is how a sequential pool (j = 1)
// disables speculation entirely and reproduces the paper's one-at-a-time
// execution order.
type Submitter struct {
	sem chan struct{}
}

// Submitter returns the pool's speculative admission gate, capacity
// Workers()-1. A sequential (or nil) pool returns nil: with one worker the
// committed trace is the only execution stream.
func (p *Pool) Submitter() *Submitter {
	w := p.Workers() - 1
	if w < 1 {
		return nil
	}
	return &Submitter{sem: make(chan struct{}, w)}
}

// Cap reports how many submitted evaluations may run concurrently.
func (s *Submitter) Cap() int {
	if s == nil {
		return 0
	}
	return cap(s.sem)
}

// Future state machine: Submit queues at pending; the worker goroutine
// moves pending→running→done; Cancel moves pending→cancelled. done and
// cancelled are terminal, and f.done is closed exactly once on reaching
// either.
const (
	futPending int32 = iota
	futRunning
	futDone
	futCancelled
)

// Future is the handle of one submitted evaluation. The zero value is not
// useful; a nil *Future (from Submit on a nil Submitter) is valid and
// behaves as already-cancelled.
type Future[T any] struct {
	state atomic.Int32
	done  chan struct{}
	val   T
	err   error
}

// Submit schedules fn to run as soon as the submitter has a free slot and
// returns immediately. fn must be safe to run concurrently with the
// caller. On a nil submitter nothing is scheduled and the result is nil.
func Submit[T any](s *Submitter, fn func() (T, error)) *Future[T] {
	if s == nil {
		return nil
	}
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		select {
		case s.sem <- struct{}{}:
		case <-f.done:
			return // cancelled while queued: never acquire a slot
		}
		defer func() { <-s.sem }()
		if !f.state.CompareAndSwap(futPending, futRunning) {
			return // cancelled between the acquire and the swap
		}
		f.val, f.err = fn()
		f.state.Store(futDone)
		close(f.done)
	}()
	return f
}

// Cancel prevents a still-queued future from ever running. It reports true
// when the future will not (and did not) execute; false means execution
// already started — the result will still arrive and Wait will observe it.
func (f *Future[T]) Cancel() bool {
	if f == nil {
		return true
	}
	if f.state.CompareAndSwap(futPending, futCancelled) {
		close(f.done)
		return true
	}
	return f.state.Load() == futCancelled
}

// Wait blocks until the future completes or is cancelled. ok reports
// whether fn actually ran; on false the value and error are zero.
func (f *Future[T]) Wait() (val T, err error, ok bool) {
	if f == nil {
		var zero T
		return zero, nil, false
	}
	<-f.done
	if f.state.Load() != futDone {
		var zero T
		return zero, nil, false
	}
	return f.val, f.err, true
}

// Ready reports whether Wait would return without blocking.
func (f *Future[T]) Ready() bool {
	if f == nil {
		return true
	}
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
