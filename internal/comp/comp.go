// Package comp models compilations: the (Compiler, Optimization Level,
// Switches) triples of the FLiT paper, the compiler "personalities" that
// decide which value-changing transformations each triple applies to each
// function, a deterministic cost model for the performance axis, and the
// binary-compatibility hazards observed when object files from different
// compilers are linked together.
//
// Real compilers are unavailable in this reproduction (see DESIGN.md), so a
// compilation is interpreted: it maps every symbol of a program to an
// fp.Semantics describing the floating-point transformations in force in
// that function's generated code. Everything is a pure function of the
// compilation triple and the symbol, made heterogeneous across functions
// with a deterministic FNV hash — re-running a compilation always produces
// the same "generated code".
package comp

import (
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/fp"
)

// Compiler names used throughout the reproduction.
const (
	GCC   = "g++"
	Clang = "clang++"
	ICPC  = "icpc"
	XLC   = "xlc++"
)

// OptLevels is the base optimization ladder used by the MFEM study.
var OptLevels = []string{"-O0", "-O1", "-O2", "-O3"}

// InjectPlan plants a floating-point perturbation in one function of the
// compilation, modeling the paper's custom LLVM injection pass (§3.5).
type InjectPlan struct {
	Symbol string
	Inj    fp.Injection
}

// Compilation is the full configuration of how to compile source files: the
// paper's triple plus the -fPIC position-independent flag that Symbol Bisect
// adds, and an optional injection plan.
type Compilation struct {
	Compiler string
	OptLevel string
	Switches string // a single switch combination, e.g. "-mavx2 -mfma"
	FPIC     bool
	Inject   *InjectPlan
}

// String renders the compilation the way the paper writes it,
// e.g. "g++ -O2 -funsafe-math-optimizations".
func (c Compilation) String() string {
	s := c.Compiler + " " + c.OptLevel
	if c.Switches != "" {
		s += " " + c.Switches
	}
	if c.FPIC {
		s += " -fPIC"
	}
	return s
}

// KeyEscape makes a string safe to embed as one field of a composite cache
// key: the structural characters the key formats of this repository join
// fields with ('|', '=', the NUL separator between executable and test key)
// and the escape character itself are percent-encoded. Escaped fields can
// be concatenated with those separators without two distinct field tuples
// ever serializing to the same key — the injectivity the build/run cache
// and the shard-artifact format depend on (and the key fuzz test enforces).
func KeyEscape(s string) string {
	if !strings.ContainsAny(s, "%|=\x00") {
		return s
	}
	return keyEscaper.Replace(s)
}

var keyEscaper = strings.NewReplacer("%", "%25", "|", "%7C", "=", "%3D", "\x00", "%00")

// Key is a canonical identity string usable as a map key; it includes the
// injection plan so injected and clean compilations never collide. Every
// field is KeyEscape'd, so distinct compilations always have distinct keys.
//
// Keys are interned: the escape/concat serialization runs once per distinct
// compilation value for the life of the process, and every further Key call
// is a lookup returning the shared string. Build-plan keys concatenate one
// compilation key per file or symbol override, and the result analyzers
// (BestAverageCompilation, artifact export) key maps by compilation inside
// O(tests × compilations) loops — interning turns all of that repeated
// serialization into map hits. The intern table is keyed by value (an
// injection plan is compared by contents, not by pointer), so the working
// set is bounded by the number of distinct compilations a process ever
// evaluates — a few thousand for the full matrix plus the injection
// campaign.
func (c Compilation) Key() string {
	ik := internKey{c: c}
	ik.c.Inject = nil
	if c.Inject != nil {
		ik.hasInj = true
		ik.injSym = c.Inject.Symbol
		ik.injIdx = c.Inject.Inj.OpIndex
		ik.injOp = c.Inject.Inj.Op
		ik.injEps = math.Float64bits(c.Inject.Inj.Eps)
	}
	if v, ok := keyInterns.Load(ik); ok {
		return v.(string)
	}
	v, _ := keyInterns.LoadOrStore(ik, c.buildKey())
	return v.(string)
}

// internKey is the comparable identity the key intern table is addressed
// by: the compilation with its injection plan flattened from a pointer to
// fields, so logically equal plans share one entry regardless of which
// WithInjection call allocated them. The epsilon is identified by its
// IEEE-754 bit pattern, exactly as the serialized key renders it — float
// equality would conflate +0/-0 (equal under ==, distinct keys) and lose
// NaN entries (never equal to themselves).
type internKey struct {
	c      Compilation
	injSym string
	injIdx int
	injOp  fp.InjectOp
	injEps uint64
	hasInj bool
}

var keyInterns sync.Map // internKey -> string

// buildKey serializes the compilation; Key memoizes it per distinct value.
// The injection epsilon is rendered as its IEEE-754 bit pattern: exact (two
// injections differing anywhere in the float have distinct keys, which a
// rounded decimal rendering could not promise) and cheaper than reflective
// formatting.
func (c Compilation) buildKey() string {
	k := KeyEscape(c.Compiler) + "|" + KeyEscape(c.OptLevel) + "|" + KeyEscape(c.Switches)
	if c.FPIC {
		k += "|fpic"
	}
	if c.Inject != nil {
		k += "|inject=" + KeyEscape(c.Inject.Symbol) +
			"|" + strconv.Itoa(c.Inject.Inj.OpIndex) +
			"|" + KeyEscape(string(byte(c.Inject.Inj.Op))) +
			"|" + strconv.FormatUint(math.Float64bits(c.Inject.Inj.Eps), 16)
	}
	return k
}

// WithFPIC returns a copy of c compiled with -fPIC (used by Symbol Bisect).
func (c Compilation) WithFPIC() Compilation {
	c.FPIC = true
	return c
}

// WithInjection returns a copy of c carrying an injection plan.
func (c Compilation) WithInjection(symbol string, inj fp.Injection) Compilation {
	c.Inject = &InjectPlan{Symbol: symbol, Inj: inj}
	return c
}

// optNum converts "-O3" to 3. Unknown levels behave like -O2.
func optNum(level string) int {
	switch level {
	case "-O0":
		return 0
	case "-O1":
		return 1
	case "-O2":
		return 2
	case "-O3":
		return 3
	default:
		return 2
	}
}

// has reports whether the switch string contains the given flag token.
func (c Compilation) has(flag string) bool {
	if c.Switches == "" {
		return false
	}
	for _, f := range strings.Split(c.Switches, " ") {
		if f == flag {
			return true
		}
	}
	// Multi-token flags such as "-fp-model fast=2".
	return strings.Contains(" "+c.Switches+" ", " "+flag+" ") ||
		strings.HasSuffix(c.Switches, flag) && strings.Contains(flag, " ")
}

// hasSub reports whether the switch string contains flag as a substring
// (for multi-word flags like "-fp-model fast=2").
func (c Compilation) hasSub(flag string) bool {
	return strings.Contains(c.Switches, flag)
}

// hash64 produces the deterministic per-decision hash that stands in for
// the incidental heterogeneity of real code generation (which loops
// vectorize, which calls inline, ...).
func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// gate returns true for pct percent of (parts...) keys, deterministically.
func gate(pct int, parts ...string) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	return hash64(parts...)%100 < uint64(pct)
}
