package main

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCoordServe launches `flit coord serve` on a free loopback port and
// returns its announced URL — read off stdout exactly as scripts do.
func startCoordServe(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	out := &syncBuffer{}
	args := append([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
		"-command", "experiments table4", "-shards", "2"}, extra...)
	go run(args, out, out)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			return strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	t.Fatalf("coord serve never announced a URL: %q", out.String())
	return ""
}

// TestWorkCampaignEndToEnd drives the whole distributed protocol through
// the CLI entry points in-process: one coordinator, two concurrent
// workers, then `flit merge` over the completed artifact set — stdout
// byte-identical to the unsharded invocation.
func TestWorkCampaignEndToEnd(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir)

	var want, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("unsharded run: exit %d, stderr: %s", code, stderr.String())
	}

	var wg sync.WaitGroup
	codes := make([]int, 2)
	outs := make([]syncBuffer, 2)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codes[w] = run([]string{"work", "-coord", url, "-j", "2", "-stats",
				"-name", fmt.Sprintf("w%d", w)}, &outs[w], &outs[w])
		}(w)
	}
	wg.Wait()
	completed := 0
	for w := 0; w < 2; w++ {
		if codes[w] != 0 {
			t.Fatalf("worker %d: exit %d: %s", w, codes[w], outs[w].String())
		}
		if !strings.Contains(outs[w].String(), "campaigns terminal") {
			t.Errorf("worker %d did not report campaigns terminal: %s", w, outs[w].String())
		}
		if !strings.Contains(outs[w].String(), "remote config: attempts=4") {
			t.Errorf("worker %d -stats missing effective transport config: %s", w, outs[w].String())
		}
		var n int
		if _, err := fmt.Sscanf(afterToken(outs[w].String(), "campaigns terminal ("), "%d", &n); err == nil {
			completed += n
		}
	}
	if completed != 2 {
		t.Errorf("workers completed %d shards between them, want 2", completed)
	}

	arts, err := filepath.Glob(filepath.Join(dir, "artifacts", "*", "shard-*.json"))
	if err != nil || len(arts) != 2 {
		t.Fatalf("campaign artifacts = %v (err %v), want 2 files", arts, err)
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run(append([]string{"merge", "-j", "2"}, arts...), &got, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("merged campaign output differs from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s",
			got.String(), want.String())
	}
}

// afterToken returns the text following the first occurrence of token.
func afterToken(s, token string) string {
	if i := strings.Index(s, token); i >= 0 {
		return s[i+len(token):]
	}
	return ""
}

// TestCoordServeExitWhenDone: with -exit-when-done the coordinator exits
// 0 on its own once the campaign completes and validates — the clean
// scripting surface ci.sh waits on.
func TestCoordServeExitWhenDone(t *testing.T) {
	dir := t.TempDir()
	out := &syncBuffer{}
	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-command", "experiments table4", "-shards", "2", "-exit-when-done"}, out, out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	url := ""
	for url == "" && time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			url = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	if url == "" {
		t.Fatalf("no URL announced: %q", out.String())
	}
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s\ncoord output: %s", code, wout.String(), out.String())
	}
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("coord serve exited %d: %s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("coord serve did not exit after campaign completion: %s", out.String())
	}
	if !strings.Contains(out.String(), "2/2 shards complete") {
		t.Errorf("final status line missing: %s", out.String())
	}
	if !strings.Contains(out.String(), "validated") {
		t.Errorf("validation receipt missing: %s", out.String())
	}
}

// TestCoordServeResumesJournal: a second `coord serve` over the same
// directory resumes the journaled tenancy (no -command needed), and a
// *different* -command over the same directory is no longer a refusal —
// it joins the tenancy as a second campaign and the fleet drains it too.
func TestCoordServeResumesJournal(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir)
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s", code, wout.String())
	}

	// Resume with no -command: adopts the journal, campaign already done.
	out := &syncBuffer{}
	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-exit-when-done"}, out, out)
	}()
	select {
	case code := <-codec:
		if code != 0 {
			t.Fatalf("resumed coord serve exited %d: %s", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("resumed coord serve did not exit over a completed journal: %s", out.String())
	}
	if !strings.Contains(out.String(), `"experiments table4"`) {
		t.Errorf("resume did not announce the journaled command: %s", out.String())
	}

	// A different campaign over the same directory joins the tenancy.
	out2 := &syncBuffer{}
	codec2 := make(chan int, 1)
	go func() {
		codec2 <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-command", "experiments table3", "-shards", "2", "-exit-when-done"}, out2, out2)
	}()
	deadline := time.Now().Add(5 * time.Second)
	url2 := ""
	for url2 == "" && time.Now().Before(deadline) {
		if s := out2.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			url2 = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	if url2 == "" {
		t.Fatalf("second-campaign serve never announced a URL: %q", out2.String())
	}
	wout.Reset()
	if code := run([]string{"work", "-coord", url2, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker on second campaign: exit %d: %s", code, wout.String())
	}
	select {
	case code := <-codec2:
		if code != 0 {
			t.Fatalf("two-campaign serve exited %d: %s", code, out2.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("two-campaign serve did not exit: %s", out2.String())
	}
	if got := strings.Count(out2.String(), "artifact set validated"); got != 2 {
		t.Errorf("validated %d campaigns, want 2: %s", got, out2.String())
	}
}

// TestCoordSubmitStatusGC drives the new operator subcommands against a
// live coordinator: submit is idempotent, status renders the fleet view
// and the per-campaign detail, and gc (dry-run) reports its plan.
func TestCoordSubmitStatusGC(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"coord", "submit", "-coord", url,
		"-command", "experiments table3", "-shards", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("submit: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "submitted \"experiments table3\" as 2 shards") {
		t.Errorf("submit receipt missing: %s", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"coord", "submit", "-coord", url,
		"-command", "experiments table3", "-shards", "2"}, &stdout, &stderr); code != 0 {
		t.Fatalf("re-submit: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "already registered") {
		t.Errorf("re-submit was not idempotent: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"coord", "status", "-coord", url}, &stdout, &stderr); code != 0 {
		t.Fatalf("status: exit %d: %s", code, stderr.String())
	}
	fleet := stdout.String()
	if !strings.Contains(fleet, `"experiments table4"`) || !strings.Contains(fleet, `"experiments table3"`) {
		t.Errorf("fleet view missing a campaign: %s", fleet)
	}
	if strings.Count(fleet, "campaign c") != 2 {
		t.Errorf("fleet view rows = %d, want 2: %s", strings.Count(fleet, "campaign c"), fleet)
	}
	// Per-campaign detail: pull an ID off the fleet view.
	id := strings.TrimPrefix(strings.Fields(fleet)[1], "")
	id = strings.TrimSuffix(id, ":")
	stdout.Reset()
	if code := run([]string{"coord", "status", "-coord", url, "-campaign", id}, &stdout, &stderr); code != 0 {
		t.Fatalf("status -campaign: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "done 0/") {
		t.Errorf("campaign detail missing progress: %s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"coord", "gc", "-coord", url, "-dry-run"}, &stdout, &stderr); code != 0 {
		t.Fatalf("gc -dry-run: exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "would retire 0 campaign(s), kept 2") {
		t.Errorf("gc plan unexpected: %s", stdout.String())
	}
}

// TestWorkFlagValidation: usage errors are caught before any network IO.
func TestWorkFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"work"}, &stdout, &stderr); code != 1 {
		t.Errorf("work without -coord: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-coord") {
		t.Errorf("diagnostic does not name -coord: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"work", "-coord", "http://127.0.0.1:1", "-remote-retries", "-3"},
		&stdout, &stderr); code != 1 {
		t.Errorf("negative -remote-retries: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-remote-retries") {
		t.Errorf("diagnostic does not name -remote-retries: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"work", "-coord", "ftp://elsewhere"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad -coord scheme: exit %d, want 1", code)
	}
	// -command and -shards travel together: one without the other is a
	// usage error (an empty pair is fine — campaigns arrive via submit).
	stderr.Reset()
	if code := run([]string{"coord", "serve", "-dir", t.TempDir(), "-command", "experiments table4"},
		&stdout, &stderr); code != 1 {
		t.Errorf("coord serve with -command but no -shards: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-command and -shards together") {
		t.Errorf("diagnostic does not explain the pairing: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"coord", "submit", "-coord", "http://127.0.0.1:1"}, &stdout, &stderr); code != 1 {
		t.Errorf("coord submit without -command: exit %d, want 1", code)
	}
	stderr.Reset()
	if code := run([]string{"coord", "status"}, &stdout, &stderr); code != 1 {
		t.Errorf("coord status without -coord: exit %d, want 1", code)
	}
}

// TestTransportFlagValidation: the shared knobs are validated and, when
// given without a consumer, rejected rather than silently ignored.
func TestTransportFlagValidation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-remote-retries", "2", "table3"}, &stdout, &stderr); code != 1 {
		t.Errorf("-remote-retries without -remote: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "require -remote") {
		t.Errorf("diagnostic does not explain the dependency: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"experiments", "-remote", "http://127.0.0.1:1", "-remote-timeout", "-5s", "table3"},
		&stdout, &stderr); code != 1 {
		t.Errorf("negative -remote-timeout: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-remote-timeout") {
		t.Errorf("diagnostic does not name -remote-timeout: %s", stderr.String())
	}
}

// TestMergeListsMissingAndDuplicatedShards: the incomplete-partition
// diagnostics the coordinator (and a human) acts on — exact indices.
func TestMergeListsMissingAndDuplicatedShards(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 4)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("s%d.json", i))
		var stdout, stderr bytes.Buffer
		if code := run([]string{"experiments", "-shard", fmt.Sprintf("%d/4", i),
			"-shard-out", paths[i], "table4"}, &stdout, &stderr); code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", i, code, stderr.String())
		}
	}
	var stdout, stderr bytes.Buffer
	// Missing shards 1 and 3, shard 2 given twice.
	code := run([]string{"merge", paths[0], paths[2], paths[2]}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("broken partition merged: exit %d, want 1", code)
	}
	msg := stderr.String()
	for _, want := range []string{"missing shard indices [1 3]", "duplicated shard indices [2]"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, msg)
		}
	}
}

// TestWorkPoisonedShardQuarantine drives the failure-containment story
// through the CLI entry points: a FLIT_WORK_FAIL-poisoned shard is
// quarantined after exactly the coordinator's attempt budget, the
// poisoned campaign reaches terminal failed (the -exit-when-done
// coordinator exits non-zero naming the quarantined shard), the healthy
// campaign sharing the tenancy merges byte-identical, and merging the
// failed campaign's partial artifact set errors with the exact missing
// shard index.
func TestWorkPoisonedShardQuarantine(t *testing.T) {
	dir := t.TempDir()
	out := &syncBuffer{}
	codec := make(chan int, 1)
	go func() {
		codec <- run([]string{"coord", "serve", "-dir", dir, "-addr", "127.0.0.1:0",
			"-command", "experiments table2", "-shards", "2",
			"-max-shard-attempts", "2", "-exit-when-done"}, out, out)
	}()
	deadline := time.Now().Add(5 * time.Second)
	url := ""
	for url == "" && time.Now().Before(deadline) {
		if s := out.String(); strings.Contains(s, "on http://") {
			line := s[strings.Index(s, "on http://")+len("on "):]
			url = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
		}
	}
	if url == "" {
		t.Fatalf("no URL announced: %q", out.String())
	}
	poisonedID := strings.SplitN(afterToken(out.String(), "campaign "), ":", 2)[0]

	var sout, serr bytes.Buffer
	if code := run([]string{"coord", "submit", "-coord", url,
		"-command", "experiments table4", "-shards", "2"}, &sout, &serr); code != 0 {
		t.Fatalf("submit healthy campaign: exit %d: %s", code, serr.String())
	}
	healthyID := strings.SplitN(afterToken(sout.String(), "campaign "), ":", 2)[0]

	// Poison shard 1 of the table2 campaign only; table4 runs clean even
	// though the env var stays set for both drains.
	t.Setenv("FLIT_WORK_FAIL", "table2:1")
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2", "-stats", "-v"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s\ncoord output: %s", code, wout.String(), out.String())
	}
	if !strings.Contains(wout.String(), "failed=2") {
		t.Errorf("worker stats should count 2 reported failures (budget 2): %s", wout.String())
	}
	if !strings.Contains(wout.String(), "quarantined (attempt budget exhausted)") {
		t.Errorf("worker log missing the quarantine event: %s", wout.String())
	}

	select {
	case code := <-codec:
		if code == 0 {
			t.Fatalf("coord serve exited 0 over a terminally failed campaign: %s", out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("coord serve did not exit after all campaigns settled: %s", out.String())
	}
	for _, want := range []string{"FAILED", "shards [1] quarantined", "FLIT_WORK_FAIL"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("coord serve output missing %q: %s", want, out.String())
		}
	}

	// The healthy campaign is untouched: byte-identical to unsharded.
	var want, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("unsharded run: exit %d, stderr: %s", code, stderr.String())
	}
	arts, err := filepath.Glob(filepath.Join(dir, "artifacts", healthyID, "shard-*.json"))
	if err != nil || len(arts) != 2 {
		t.Fatalf("healthy artifacts = %v (err %v), want 2 files", arts, err)
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run(append([]string{"merge", "-j", "2"}, arts...), &got, &stderr); code != 0 {
		t.Fatalf("healthy merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Error("healthy campaign merge is not byte-identical to the unsharded run")
	}

	// The failed campaign's partial artifact set refuses to merge, naming
	// the quarantined shard exactly.
	pArts, err := filepath.Glob(filepath.Join(dir, "artifacts", poisonedID, "shard-*.json"))
	if err != nil || len(pArts) != 1 {
		t.Fatalf("poisoned artifacts = %v (err %v), want only shard 0", pArts, err)
	}
	stderr.Reset()
	var pOut bytes.Buffer
	if code := run(append([]string{"merge"}, pArts...), &pOut, &stderr); code != 1 {
		t.Fatalf("failed campaign merged: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing shard indices [1]") {
		t.Errorf("failed-campaign merge does not name the missing shard: %s", stderr.String())
	}
}

// TestCoordStatusRendersQuarantine: the status views surface attempts,
// quarantined shards, and failure excerpts while the coordinator is live.
func TestCoordStatusRendersQuarantine(t *testing.T) {
	dir := t.TempDir()
	url := startCoordServe(t, dir, "-max-shard-attempts", "2")
	t.Setenv("FLIT_WORK_FAIL", "table4:1")
	var wout bytes.Buffer
	if code := run([]string{"work", "-coord", url, "-j", "2"}, &wout, &wout); code != 0 {
		t.Fatalf("worker: exit %d: %s", code, wout.String())
	}
	var fleet, stderr bytes.Buffer
	if code := run([]string{"coord", "status", "-coord", url}, &fleet, &stderr); code != 0 {
		t.Fatalf("status: exit %d: %s", code, stderr.String())
	}
	for _, want := range []string{"1 quarantined", "FAILED:", "shards [1] quarantined"} {
		if !strings.Contains(fleet.String(), want) {
			t.Errorf("fleet status missing %q: %s", want, fleet.String())
		}
	}
	id := strings.SplitN(afterToken(fleet.String(), "campaign "), ":", 2)[0]
	var detail bytes.Buffer
	stderr.Reset()
	if code := run([]string{"coord", "status", "-coord", url, "-campaign", id}, &detail, &stderr); code != 0 {
		t.Fatalf("detail status: exit %d: %s", code, stderr.String())
	}
	for _, want := range []string{"attempt budget 2", "shard 1: QUARANTINED after 2 attempts",
		"shard 1 attempt 1 failed", "shard 1 attempt 2 failed", "FLIT_WORK_FAIL"} {
		if !strings.Contains(detail.String(), want) {
			t.Errorf("detail status missing %q: %s", want, detail.String())
		}
	}
}
