package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/store"
)

// The journal is the coordinator's crash-safety story: one JSON file,
// rewritten through store.WriteFileAtomic after every acknowledged state
// change, so the file on disk is always one complete, internally
// consistent snapshot — never a torn one. Recovery is therefore trivial
// (read the newest snapshot) and conservative: an acknowledged lease
// stays leased across a restart (its worker keeps heartbeating the same
// lease ID), an acknowledged completion stays completed, and nothing is
// ever double-scheduled, because the journal is written *before* the
// acknowledgment leaves the coordinator.

// journalShard is one shard's persisted state.
type journalShard struct {
	Done         bool   `json:"done,omitempty"`
	Artifact     string `json:"artifact,omitempty"`
	LeaseID      string `json:"lease_id,omitempty"`
	Worker       string `json:"worker,omitempty"`
	ExpiryUnixMS int64  `json:"expiry_unix_ms,omitempty"`
}

// journalFile is the persisted coordinator snapshot.
type journalFile struct {
	Version  int            `json:"version"`
	Spec     Spec           `json:"spec"`
	Seq      int64          `json:"seq"`
	Releases int64          `json:"releases"`
	Shards   []journalShard `json:"shards"`
}

// journalLocked atomically persists the current state. Callers hold mu.
func (c *Coordinator) journalLocked() error {
	jf := journalFile{Version: JournalVersion, Spec: c.spec, Seq: c.seq,
		Releases: c.releases, Shards: make([]journalShard, len(c.shards))}
	for i := range c.shards {
		s := &c.shards[i]
		js := journalShard{Done: s.done, Artifact: s.artifact,
			LeaseID: s.leaseID, Worker: s.worker}
		if !s.expiry.IsZero() {
			js.ExpiryUnixMS = s.expiry.UnixMilli()
		}
		jf.Shards[i] = js
	}
	buf, err := json.Marshal(jf)
	if err != nil {
		return fmt.Errorf("coord: encoding journal: %w", err)
	}
	if err := store.WriteFileAtomic(filepath.Join(c.dir, journalName), buf); err != nil {
		return fmt.Errorf("coord: writing journal: %w", err)
	}
	return nil
}

// recover rebuilds coordinator state from a journal snapshot. spec is what
// the caller asked for: empty adopts the journaled campaign, non-empty
// must match it field for field.
func (c *Coordinator) recover(raw []byte, spec Spec) error {
	var jf journalFile
	if err := json.Unmarshal(raw, &jf); err != nil {
		return fmt.Errorf("coord: %s holds an unreadable journal (%v) — refusing to treat it as a coordinator directory",
			c.dir, err)
	}
	if jf.Version != JournalVersion {
		return fmt.Errorf("coord: journal format v%d, this build reads v%d", jf.Version, JournalVersion)
	}
	if jf.Spec.Shards < 1 || len(jf.Shards) != jf.Spec.Shards {
		return fmt.Errorf("coord: journal declares %d shards but records %d", jf.Spec.Shards, len(jf.Shards))
	}
	if jf.Spec.Engine != spec.Engine {
		return fmt.Errorf("coord: journaled campaign is engine %q, this build is %q: results are not interchangeable",
			jf.Spec.Engine, spec.Engine)
	}
	// A caller that passes a command/shard count is re-asserting the
	// campaign; it must be the journaled one. A caller that passes neither
	// is resuming whatever is there.
	if len(spec.Command) != 0 || spec.Shards != 0 {
		if !equalCommand(spec.Command, jf.Spec.Command) || spec.Shards != jf.Spec.Shards {
			return fmt.Errorf("coord: %s coordinates %q as %d shards; asked to serve %q as %d — refusing to mix campaigns",
				c.dir, CommandString(jf.Spec.Command), jf.Spec.Shards, CommandString(spec.Command), spec.Shards)
		}
	}
	c.spec = jf.Spec
	c.seq = jf.Seq
	c.releases = jf.Releases
	c.shards = make([]shardState, len(jf.Shards))
	for i, js := range jf.Shards {
		s := shardState{done: js.Done, artifact: js.Artifact,
			leaseID: js.LeaseID, worker: js.Worker}
		if js.ExpiryUnixMS != 0 {
			s.expiry = time.UnixMilli(js.ExpiryUnixMS)
		}
		if s.done {
			// A completed shard must still have its artifact; a journal that
			// says done while the file is gone would validate-fail at the end
			// with a confusing error, so catch it at recovery.
			if _, err := os.Stat(filepath.Join(c.dir, artifactsDir, s.artifact)); err != nil {
				return fmt.Errorf("coord: journal marks shard %d complete but its artifact is unreadable: %v", i, err)
			}
		}
		c.shards[i] = s
	}
	return nil
}
