package coord_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/flit"
)

// fuzzSpec mirrors the journals the seeds are built around: a two-shard
// campaign under this build's engine, so a seed with a valid ID can be
// adopted and its scheduling invariants probed.
func fuzzJournalSeed(mutant string) string {
	spec := coord.Spec{Engine: flit.EngineVersion, Command: []string{"experiments", "table4"}, Shards: 2}
	id := coord.CampaignID(spec)
	base := `{"version":3,"engine":%q,"campaigns":[{"id":%q,"spec":{"engine":%q,"command":["experiments","table4"],"shards":2},"seq":4,"releases":1,%s"shards":[%s]}]}`
	switch mutant {
	case "quarantined":
		return fmt.Sprintf(base, flit.EngineVersion, id, flit.EngineVersion,
			`"fail_reports":2,`,
			`{"attempts":5,"quarantined":true,"failures":[{"worker":"w1","attempt":5,"error":"boom","excerpt":"stack"}]},{}`)
	case "absurd-attempts":
		return fmt.Sprintf(base, flit.EngineVersion, id, flit.EngineVersion,
			`"fail_reports":9007199254740993,`,
			`{"attempts":1152921504606846976},{"attempts":-9007199254740993}`)
	case "unknown-terminal":
		return fmt.Sprintf(base, flit.EngineVersion, id, flit.EngineVersion,
			`"state":"zombie","fail_reports":1,`,
			`{"quarantined":true,"state":"undead","failures":[{"worker":"w1","attempt":1,"error":"?"}]},{}`)
	case "truncated-failure":
		return fmt.Sprintf(base, flit.EngineVersion, id, flit.EngineVersion,
			`"fail_reports":1,`,
			`{"attempts":2,"failures":[{"worker":"w1","attempt":`)
	default:
		return fmt.Sprintf(base, flit.EngineVersion, id, flit.EngineVersion, "", `{},{}`)
	}
}

// FuzzJournalDecode throws arbitrary bytes at journal recovery: whatever
// the coord.json holds, opening the directory must never panic, and a
// journal that IS adopted must honor the containment invariants — above
// all, a quarantined shard must never come back leasable.
func FuzzJournalDecode(f *testing.F) {
	for _, m := range []string{"valid", "quarantined", "absurd-attempts", "unknown-terminal", "truncated-failure"} {
		f.Add([]byte(fuzzJournalSeed(m)))
	}
	f.Add([]byte(`{"version":2,"engine":"` + flit.EngineVersion + `","campaigns":[]}`))
	f.Add([]byte(`{"version":1,"spec":{"engine":"` + flit.EngineVersion + `","command":["x"],"shards":1},"shards":[{}]}`))
	f.Add([]byte(`{"version":99,"engine":"flit-go/future"}`))
	f.Add([]byte(`{"version":3`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "coord.json"), raw, 0o644); err != nil {
			t.Skip()
		}
		c, err := coord.New(dir, coord.Options{LeaseTTL: time.Minute})
		if err != nil {
			return // refusal is always a legal answer to hostile bytes
		}
		for _, ci := range c.Campaigns() {
			st, err := c.Status(ci.ID)
			if err != nil {
				t.Fatalf("adopted campaign %s does not answer status: %v", ci.ID, err)
			}
			quarantined := make(map[int]bool, len(st.Quarantined))
			for _, i := range st.Quarantined {
				quarantined[i] = true
				if i < 0 || i >= st.Shards {
					t.Fatalf("campaign %s quarantines out-of-range shard %d", ci.ID, i)
				}
				if st.Attempts[i] < 0 {
					t.Fatalf("campaign %s adopted negative attempts on shard %d", ci.ID, st.Attempts[i])
				}
			}
			// Drain every grant the campaign will give: none may be a
			// quarantined shard, and grants must stop (no infinite lease loop).
			for n := 0; n <= st.Shards; n++ {
				g, state, err := c.Lease(ci.ID, "fuzz-worker")
				if err != nil || state != coord.Granted {
					break
				}
				if quarantined[g.Shard] {
					t.Fatalf("campaign %s resurrected quarantined shard %d as leasable", ci.ID, g.Shard)
				}
				if n == st.Shards {
					t.Fatalf("campaign %s granted more leases than it has shards", ci.ID)
				}
			}
		}
	})
}
