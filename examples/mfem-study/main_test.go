package main

import (
	"strings"
	"testing"
)

// TestMFEMStudySmoke replays the §3.1–§3.3 study end to end: Table 1,
// Figures 5 and 6, and the Finding 2 bisect must all render.
func TestMFEMStudySmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1 — compiler summary:",
		"Figure 5 —",
		"Figure 6 —",
		"bisecting Example13",
		// Finding 2: the single-function blame.
		"AddMult_a_AAt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
