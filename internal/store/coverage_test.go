package store

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// --- atomic.go ---

func TestWriteFileAtomicRenameFailure(t *testing.T) {
	// The destination is a directory: the rename must fail and the temp
	// file must not be left behind.
	dir := t.TempDir()
	dst := filepath.Join(dir, "dest")
	if err := os.Mkdir(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(dst, []byte("x")); err == nil {
		t.Fatal("rename onto a directory succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("stray temp file %s left after failed rename", e.Name())
		}
	}
}

// --- disk.go ---

func TestOpenRejectsUnusableDirectories(t *testing.T) {
	t.Run("path is a file", func(t *testing.T) {
		f := filepath.Join(t.TempDir(), "plain")
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(f, testEngine); err == nil {
			t.Fatal("Open over a regular file succeeded")
		}
	})
	t.Run("manifest is a directory", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, manifestName), 0o755); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, testEngine); err == nil {
			t.Fatal("Open with an unreadable manifest path succeeded")
		}
	})
	t.Run("foreign layout version", func(t *testing.T) {
		dir := t.TempDir()
		m := `{"store_version":99,"engine":"` + testEngine + `"}`
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(m), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, testEngine)
		if err == nil || !strings.Contains(err.Error(), "layout v99") {
			t.Fatalf("foreign layout version not rejected: %v", err)
		}
	})
}

func TestDiskDirAndEngine(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", d.Dir(), dir)
	}
	if d.Engine() != testEngine {
		t.Errorf("Engine() = %q, want %q", d.Engine(), testEngine)
	}
}

func TestDiskPutErrors(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	// Payloads are embedded as json.RawMessage; bytes that are not JSON
	// cannot be enveloped and must be refused, not stored mangled.
	if err := d.Put("k", []byte("{not json")); err == nil {
		t.Fatal("Put accepted a non-JSON payload")
	}
	// A shard directory blocked by a regular file makes MkdirAll fail.
	blocked := "blocked-key"
	shard := filepath.Dir(d.path(blocked))
	if err := os.WriteFile(shard, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(blocked, []byte(`{"v":1}`)); err == nil {
		t.Fatal("Put through a blocked shard directory succeeded")
	}
}

func TestDiskStatsCountsCorrupt(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("good", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	rot := filepath.Join(d.Dir(), objectsDir, "zz")
	if err := os.MkdirAll(rot, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(rot, "deadbeef"), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 entry and 1 corrupt file", st)
	}
}

func TestDiskScanErrorsPropagate(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	// Rip out the object tree underneath the handle: both walkers must
	// surface the error instead of reporting an empty healthy store.
	if err := os.RemoveAll(filepath.Join(d.Dir(), objectsDir)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stats(); err == nil {
		t.Error("Stats over a missing object tree succeeded")
	}
	if _, err := d.GC(1, 0, false); err == nil {
		t.Error("GC over a missing object tree succeeded")
	}
}

// --- store.go ---

func TestNewMemDefaultCap(t *testing.T) {
	m := NewMem(-1) // negative capacity clamps to unbounded
	if err := m.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("k"); !ok {
		t.Fatal("default-capacity Mem lost its only entry")
	}
}

// --- remote.go ---

func TestDecodeEnvelopeWrongKey(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("key-a", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(d.path("key-a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, derr := decodeEnvelope(raw, testEngine, "key-a"); derr != nil {
		t.Fatalf("envelope does not decode under its own key: %v", derr)
	}
	_, derr := decodeEnvelope(raw, testEngine, "key-b")
	if derr == nil || !strings.Contains(derr.Error(), "different key") {
		t.Fatalf("a replayed envelope for another key was accepted: %v", derr)
	}
}

func TestBackoffBounds(t *testing.T) {
	capped, err := NewRemote("http://127.0.0.1:1", testEngine, &RemoteOptions{
		BaseDelay: 3 * time.Millisecond, MaxDelay: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 8; attempt++ {
		if d := capped.opts.backoff(attempt); d > 4*time.Millisecond {
			t.Fatalf("backoff(%d) = %v exceeds MaxDelay", attempt, d)
		}
	}
	// Sub-nanosecond halves skip the jitter and return the raw delay.
	tiny, err := NewRemote("http://127.0.0.1:1", testEngine, &RemoteOptions{
		BaseDelay: 1, MaxDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tiny.opts.backoff(0); d != 1 {
		t.Fatalf("backoff with a 1ns delay = %v, want 1ns", d)
	}
}

func TestRemoteDeadlineExpiresDuringBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	// Generous attempts, a backoff longer than the whole deadline: the
	// operation must give up inside the sleep, not finish the schedule.
	r, err := NewRemote(srv.URL, testEngine, &RemoteOptions{
		Attempts: 20, BaseDelay: 200 * time.Millisecond, MaxDelay: 200 * time.Millisecond,
		AttemptTimeout: 50 * time.Millisecond, Deadline: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok := r.Get("k"); ok {
		t.Fatal("a 503-only server produced a hit")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the backoff schedule: %v", elapsed)
	}
	m := r.Metrics()
	if m.Misses == 0 || m.Errors == 0 {
		t.Fatalf("expired operation left no miss/error trace: %+v", m)
	}
}

func TestRetryCtxCancelAbortsOperation(t *testing.T) {
	// A server that never answers, under production-scale deadlines: only
	// the caller's context can end the operation in milliseconds. This is
	// the drain path — a SIGTERM'd worker must not ride out the 30s
	// operation deadline against a service nobody is waiting on.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	r, err := NewRemote(srv.URL, testEngine, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		ok      bool
		elapsed time.Duration
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		_, ok := r.GetCtx(ctx, "k")
		done <- result{ok, time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res.ok {
			t.Fatal("a cancelled Get produced a hit")
		}
		if res.elapsed > 3*time.Second {
			t.Fatalf("cancellation took %v; the retry loop rode out its deadline", res.elapsed)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled GetCtx did not return; ctx is not threaded through Retry")
	}
	// PutCtx on an already-cancelled context gives up immediately too.
	start = time.Now()
	if err := r.PutCtx(ctx, "k", []byte(`{"v":1}`)); err == nil {
		t.Fatal("a cancelled Put reported success")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled Put took %v", elapsed)
	}
	if m := r.Metrics(); m.Misses == 0 || m.Errors == 0 {
		t.Fatalf("cancelled operations left no degradation trace: %+v", m)
	}
}

func TestRemotePutExhaustedOnStatus(t *testing.T) {
	// Every attempt answers 503 (no transport error), so exhaustion takes
	// the last-status branch of Put's error report.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	r, err := NewRemote(srv.URL, testEngine, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	perr := r.Put("k", []byte(`{"v":1}`))
	if perr == nil || !strings.Contains(perr.Error(), "last status 503") {
		t.Fatalf("Put against a 503-only server: %v", perr)
	}
}

func TestRemotePutUnexpectedStatus(t *testing.T) {
	// A non-retryable status outside the protocol (teapot) is a terminal
	// Put error, reported without burning the retry schedule.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	defer srv.Close()
	r, err := NewRemote(srv.URL, testEngine, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	perr := r.Put("k", []byte(`{"v":1}`))
	if perr == nil || !strings.Contains(perr.Error(), "unexpected status 418") {
		t.Fatalf("Put against a teapot: %v", perr)
	}
	if m := r.Metrics(); m.Retries != 0 {
		t.Fatalf("terminal status consumed retries: %+v", m)
	}
}

// --- serve.go ---

type brokenReader struct{}

func (brokenReader) Read([]byte) (int, error) { return 0, errors.New("torn upload") }

func TestServePutBodyAndStoreFailures(t *testing.T) {
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	h := Handler(d)

	// A body that cannot be read to completion.
	req := httptest.NewRequest(http.MethodPut, remoteKeyPath("k"), brokenReader{})
	req.Header.Set(engineHeader, testEngine)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("torn upload answered %d, want %d", rec.Code, http.StatusRequestEntityTooLarge)
	}

	// A payload whose checksum matches but which the Disk backend cannot
	// envelope (not JSON): the server must answer 500, not store garbage.
	bad := []byte("{not json")
	req = httptest.NewRequest(http.MethodPut, remoteKeyPath("k"), strings.NewReader(string(bad)))
	req.Header.Set(engineHeader, testEngine)
	req.Header.Set(sumHeader, sumHex(bad))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unstorable payload answered %d, want 500", rec.Code)
	}
	if _, ok := d.Get("k"); ok {
		t.Error("unstorable payload was stored anyway")
	}
}
