package experiments

import (
	"errors"

	"repro/internal/flit"
)

// Incremental campaigns: delta detection against a warmed baseline.
//
// With delta tracking enabled, WarmStart records every baseline run record
// in addition to (in normal mode) seeding the cache with it, and after the
// run DeltaReport classifies every build/run key the engine touched:
// answered from the baseline, freshly executed, dropped, or — in verify
// mode, which recomputes instead of trusting the baseline — bit-exactly
// diverged. The CLI surfaces this on every subcommand as -delta-out (the
// structured report) and under -stats (the one-line summary).

// EnableDelta turns on delta tracking for this engine's warm starts.
// Call it before WarmStart; verify selects recompute-and-compare (nothing
// is seeded; every baseline-covered evaluation is recomputed and compared
// bit-exactly) over seed-and-trust (the incremental fast path).
func (e *Engine) EnableDelta(verify bool) {
	e.delta = flit.NewDeltaTracker(verify)
}

// DeltaEnabled reports whether this engine tracks warm-start provenance.
func (e *Engine) DeltaEnabled() bool { return e.delta != nil }

// DeltaReport classifies the engine's cache against the warmed baseline
// and returns the structured delta. command is recorded as the current
// run's identity. Call it after the run completes — the report reflects
// whatever the drivers have executed so far.
func (e *Engine) DeltaReport(command []string) (*flit.DeltaReport, error) {
	if e.delta == nil {
		return nil, errors.New("experiments: delta tracking not enabled (EnableDelta before WarmStart)")
	}
	return e.delta.Report(e.cache, command), nil
}
