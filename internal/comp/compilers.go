package comp

// CompilerInfo carries the descriptive fields of Table 1 plus the switch
// combinations paired with each base optimization level, following the flag
// lists of the original FLiT workload characterization (Sawaya et al.,
// IISWC 2017) that the paper reuses.
type CompilerInfo struct {
	Name     string
	Version  string
	Released string
	Switches []string
}

// gccSwitches: 17 combinations; 4 opt levels => 68 gcc compilations.
var gccSwitches = []string{
	"",
	"-mavx",
	"-mavx2 -mfma",
	"-funsafe-math-optimizations",
	"-funsafe-math-optimizations -mavx2 -mfma",
	"-ffast-math",
	"-fassociative-math -fno-signed-zeros -fno-trapping-math",
	"-freciprocal-math",
	"-ffinite-math-only",
	"-fno-trapping-math",
	"-frounding-math",
	"-fsignaling-nans",
	"-fno-builtin",
	"-fstrict-aliasing",
	"-ffloat-store",
	"-fexcess-precision=standard",
	"-fmerge-all-constants",
}

// clangSwitches: 18 combinations; 4 opt levels => 72 clang compilations.
var clangSwitches = []string{
	"",
	"-mavx",
	"-mavx2 -mfma",
	"-funsafe-math-optimizations",
	"-funsafe-math-optimizations -mavx2 -mfma",
	"-ffast-math",
	"-fassociative-math",
	"-freciprocal-math",
	"-ffinite-math-only",
	"-fno-trapping-math",
	"-ffp-contract=on",
	"-ffp-contract=off",
	"-fdenormal-fp-math=positive-zero",
	"-fmath-errno",
	"-fno-math-errno",
	"-funroll-loops",
	"-fvectorize",
	"-fno-vectorize",
}

// icpcSwitches: 26 combinations; 4 opt levels => 104 icpc compilations.
var icpcSwitches = []string{
	"",
	"-fp-model fast=1",
	"-fp-model fast=2",
	"-fp-model precise",
	"-fp-model strict",
	"-fp-model source",
	"-fp-model double",
	"-fp-model extended",
	"-no-fma",
	"-fma",
	"-ftz",
	"-no-ftz",
	"-prec-div",
	"-no-prec-div",
	"-prec-sqrt",
	"-no-prec-sqrt",
	"-fimf-precision=high",
	"-fimf-precision=low",
	"-fast-transcendentals",
	"-no-fast-transcendentals",
	"-mavx2",
	"-xCORE-AVX2",
	"-xCORE-AVX512",
	"-fp-speculation=fast",
	"-fp-speculation=safe",
	"-mp1",
}

// xlcSwitches: the IBM compiler is used only in the Laghos study.
var xlcSwitches = []string{
	"",
	"-qstrict=vectorprecision",
}

// Compilers returns the compiler descriptions of the MFEM study (Table 1).
func Compilers() []CompilerInfo {
	return []CompilerInfo{
		{Name: GCC, Version: "gcc-8.2.0", Released: "26 July 2018", Switches: gccSwitches},
		{Name: Clang, Version: "clang-6.0.1", Released: "05 July 2018", Switches: clangSwitches},
		{Name: ICPC, Version: "icpc-18.0.3", Released: "16 May 2018", Switches: icpcSwitches},
	}
}

// XLCInfo describes the IBM compiler used in the Laghos case study.
func XLCInfo() CompilerInfo {
	return CompilerInfo{Name: XLC, Version: "xlc-16.1.0", Released: "2018", Switches: xlcSwitches}
}

// Matrix returns the full MFEM compilation matrix: every compiler paired
// with every base optimization level and every switch combination —
// 68 + 72 + 104 = 244 compilations, as in the paper.
func Matrix() []Compilation {
	var out []Compilation
	for _, ci := range Compilers() {
		for _, lvl := range OptLevels {
			for _, sw := range ci.Switches {
				out = append(out, Compilation{Compiler: ci.Name, OptLevel: lvl, Switches: sw})
			}
		}
	}
	return out
}

// Baseline is the trusted baseline compilation of the MFEM study.
func Baseline() Compilation {
	return Compilation{Compiler: GCC, OptLevel: "-O0"}
}

// PerfReference is the compilation speedups are reported against (g++ -O2).
func PerfReference() Compilation {
	return Compilation{Compiler: GCC, OptLevel: "-O2"}
}
