package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
)

// TestQuickstartSmoke runs the whole quickstart workflow — matrix analysis,
// recommendation, bisect — and checks the narrative output is intact, so
// the example cannot silently rot.
func TestQuickstartSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fastest bitwise-reproducible:",
		"fastest overall:",
		"variability-inducing compilations:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The dot-product kernel is hot and contractible: some compilation
	// must perturb it, and bisect must blame the kernel file.
	if !strings.Contains(out, "bisecting") || !strings.Contains(out, "kernel.cpp") {
		t.Errorf("bisect did not run or did not blame kernel.cpp:\n%s", out)
	}
}

// TestQuickstartShardMergeEquivalence is the example-level acceptance
// proof: for shard counts N in {1, 2, 3, 4, 8}, running the quickstart as
// N shards through the real CLI path (artifact files on disk included)
// and merging them reproduces the plain run byte for byte.
func TestQuickstartShardMergeEquivalence(t *testing.T) {
	var want strings.Builder
	if err := run(&want); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, n := range []int{1, 2, 3, 4, 8} {
		var paths []string
		for i := 0; i < n; i++ {
			// "0/1" included: the degenerate single-shard run exports the
			// full artifact, and merging it alone must still replay exactly.
			shard := exec.Shard{Index: i, Count: n}
			p := filepath.Join(dir, strings.ReplaceAll(shard.String(), "/", "-")+".json")
			if err := cli(shard.String(), p, "", io.Discard); err != nil {
				t.Fatalf("N=%d shard %d: %v", n, i, err)
			}
			paths = append(paths, p)
		}
		var got strings.Builder
		if err := cli("", "", strings.Join(paths, ","), &got); err != nil {
			t.Fatalf("N=%d merge: %v", n, err)
		}
		if got.String() != want.String() {
			t.Errorf("N=%d: merged output differs from plain run:\n--- merged ---\n%s\n--- plain ---\n%s",
				n, got.String(), want.String())
		}
	}
}
