package lulesh

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/flit"
	"repro/internal/fp"
	"repro/internal/link"
)

var clangO2 = comp.Compilation{Compiler: comp.Clang, OptLevel: "-O2"}

func machineFor(t *testing.T, c comp.Compilation) *link.Machine {
	t.Helper()
	ex, err := link.FullBuild(Program(), c)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProgramValid(t *testing.T) {
	p := Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().TotalFPOps; got != TotalInjectionSites {
		t.Fatalf("registry declares %d FP ops, want %d", got, TotalInjectionSites)
	}
	for _, s := range p.Symbols() {
		for _, c := range s.Callees {
			if p.Symbol(c) == nil {
				t.Errorf("symbol %s lists unknown callee %s", s.Name, c)
			}
		}
	}
}

func TestSimulationSanity(t *testing.T) {
	m := machineFor(t, clangO2)
	out := Run(m, 12, 0.25)
	if len(out) != 16+17+3 {
		t.Fatalf("output length %d", len(out))
	}
	for i, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("output[%d] = %g", i, v)
		}
	}
	// The shock must propagate: element 1 gains energy over its initial
	// 1e-6 while total energy stays positive and bounded.
	if out[1] <= 1e-6 {
		t.Fatalf("no energy propagation: e[1] = %g", out[1])
	}
	if out[0] <= 0 || out[0] > 10 {
		t.Fatalf("origin energy %g out of range", out[0])
	}
	// Nodes ordered.
	x := out[16 : 16+17]
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			t.Fatalf("mesh tangled at node %d", i)
		}
	}
}

func TestDeterministicAndSeedSensitive(t *testing.T) {
	a := Run(machineFor(t, clangO2), 12, 0.25)
	b := Run(machineFor(t, clangO2), 12, 0.25)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	c := Run(machineFor(t, clangO2), 12, 0.35)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed has no effect")
	}
}

func TestCleanInjectionEnvelopeIsHarmless(t *testing.T) {
	// An injection with eps=0 and OP' == '+' leaves every value unchanged:
	// the injection plumbing itself must not perturb results.
	base := Run(machineFor(t, clangO2), 12, 0.25)
	ci := clangO2.WithInjection("CalcEnergyForElems",
		fp.Injection{OpIndex: 3, Op: fp.InjAdd, Eps: 0})
	got := Run(machineFor(t, ci), 12, 0.25)
	for i := range base {
		if base[i] != got[i] {
			t.Fatalf("eps=0 injection changed output at %d", i)
		}
	}
}

// executedSymbols are the functions this workload runs (everything except
// the lulesh-util.cc multi-region paths).
func executedSymbols() []string {
	var out []string
	p := Program()
	unreached := map[string]bool{"AreaFace": true, "CombineDerivs": true,
		"CalcElemNodeNormals": true}
	for _, s := range p.Symbols() {
		if s.FPOps > 0 && !unreached[s.Name] {
			out = append(out, s.Name)
		}
	}
	return out
}

func TestInjectionCoverageFirstAndLastSite(t *testing.T) {
	// For every executed function, an injection at site 0 and at the last
	// declared site must be measurable: the paper's pass enumerates real
	// instructions, so our loop model must reach the whole static range.
	p := Program()
	base := Run(machineFor(t, clangO2), 12, 0.25)
	tc := NewCase()
	baseRes := flit.VecResult(base)
	miss := 0
	var missed []string
	for _, name := range executedSymbols() {
		sym := p.MustSymbol(name)
		for _, site := range []int{0, sym.FPOps - 1} {
			ci := clangO2.WithInjection(name,
				fp.Injection{OpIndex: site, Op: fp.InjMul, Eps: 0.5})
			got := Run(machineFor(t, ci), 12, 0.25)
			if tc.Compare(baseRes, flit.VecResult(got)) == 0 {
				miss++
				missed = append(missed, name)
			}
		}
	}
	// A few benign sites are expected (values multiplied by zero, cutoff
	// branches), but the bulk must be measurable.
	if miss > 12 {
		t.Fatalf("%d of %d first/last sites benign (%v)", miss,
			2*len(executedSymbols()), missed)
	}
}

func TestUnreachedFunctionsAreBenign(t *testing.T) {
	base := Run(machineFor(t, clangO2), 12, 0.25)
	tc := NewCase()
	baseRes := flit.VecResult(base)
	for _, name := range []string{"AreaFace", "CombineDerivs", "CalcElemNodeNormals"} {
		ci := clangO2.WithInjection(name, fp.Injection{OpIndex: 0, Op: fp.InjMul, Eps: 0.9})
		got := Run(machineFor(t, ci), 12, 0.25)
		if tc.Compare(baseRes, flit.VecResult(got)) != 0 {
			t.Fatalf("unreached function %s affected the output", name)
		}
	}
}

func TestUnreachedHelpersStillWork(t *testing.T) {
	// The multi-region helpers are real code; they are just not part of
	// this workload. Verify them directly.
	m := machineFor(t, clangO2)
	if got := AreaFace(m, 2, 3); got != 12 {
		t.Fatalf("AreaFace = %g", got)
	}
	if got := CombineDerivs(m, []float64{1, 2, 3.5}); got != 6.5 {
		t.Fatalf("CombineDerivs = %g", got)
	}
	norms := CalcElemNodeNormals(m, []float64{2, 4})
	if len(norms) != 2 || norms[0] != 4 || norms[1] != 16 {
		t.Fatalf("CalcElemNodeNormals = %v", norms)
	}
}

func TestCaseProtocol(t *testing.T) {
	c := NewCase()
	if c.Name() != "LULESH" || c.Root() != "main_lulesh" {
		t.Fatal("identity wrong")
	}
	ex, err := link.FullBuild(Program(), clangO2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flit.RunAll(c, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vec) != 36 {
		t.Fatalf("result length %d", len(r.Vec))
	}
	if c.Compare(r, r) != 0 {
		t.Fatal("self-compare nonzero")
	}
}
