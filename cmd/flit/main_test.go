package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/comp"
	"repro/internal/experiments"
)

func TestParseCompilation(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    comp.Compilation
		wantErr bool
	}{
		{
			name: "compiler and level",
			in:   "g++ -O2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O2"},
		},
		{
			name: "single switch",
			in:   "g++ -O3 -mavx2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O3", Switches: "-mavx2"},
		},
		{
			name: "multiple switches joined",
			in:   "icpc -O2 -fp-model fast=2",
			want: comp.Compilation{Compiler: "icpc", OptLevel: "-O2", Switches: "-fp-model fast=2"},
		},
		{
			name: "extra whitespace",
			in:   "  clang++   -O1  ",
			want: comp.Compilation{Compiler: "clang++", OptLevel: "-O1"},
		},
		{name: "empty", in: "", wantErr: true},
		{name: "only compiler", in: "g++", wantErr: true},
		{name: "only whitespace", in: "   ", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := experiments.ParseCompilation(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("experiments.ParseCompilation(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("experiments.ParseCompilation(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("experiments.ParseCompilation(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestRunUsageExit(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring expected on stderr
	}{
		{name: "no arguments", args: nil, wantCode: 2, wantErr: "usage:"},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantCode: 2, wantErr: "usage:"},
		{name: "bisect without flags", args: []string{"bisect"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect missing comp", args: []string{"bisect", "-test", "Example13"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect malformed compilation", args: []string{"bisect", "-test", "Example13", "-comp", "g++"},
			wantCode: 1, wantErr: "want 'compiler -Olevel"},
		{name: "run with unknown flag", args: []string{"run", "-bogus"}, wantCode: 2,
			wantErr: "flag provided but not defined"},
		{name: "bisect with bad j value", args: []string{"bisect", "-j", "x"}, wantCode: 2,
			wantErr: "invalid value"},
		{name: "experiments unknown name", args: []string{"experiments", "no-such-table"}, wantCode: 1,
			wantErr: `unknown experiment "no-such-table"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tt.args, code, tt.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.wantErr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tt.wantErr)
			}
			// Flag-parse diagnostics come from the FlagSet itself and must
			// not be echoed a second time by the dispatcher.
			if n := strings.Count(stderr.String(), tt.wantErr); n > 1 {
				t.Errorf("diagnostic %q printed %d times", tt.wantErr, n)
			}
		})
	}
}

// TestHelpExitsZero: an explicit -h prints usage and succeeds, matching
// the conventional contract scripts rely on.
func TestHelpExitsZero(t *testing.T) {
	for _, sub := range []string{"run", "bisect", "experiments"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{sub, "-h"}, &stdout, &stderr); code != 0 {
			t.Errorf("%s -h: exit %d, want 0", sub, code)
		}
		if !strings.Contains(stderr.String(), "-j int") {
			t.Errorf("%s -h: usage not printed: %q", sub, stderr.String())
		}
	}
}

// TestExperimentsSubcommand drives a cheap experiment end to end through
// the real dispatcher, including the -j flag.
func TestExperimentsSubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"experiments", "-j", "2", "table3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"=== table3 ===", "source files", "total functions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBisectSubcommandUnknownTest validates the test-name check behind
// fully-formed flags.
func TestBisectSubcommandUnknownTest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-test", "Example99", "-comp", "g++ -O3"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `unknown test "Example99"`) {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestBisectSubcommandEndToEnd root-causes Example13 under an FMA-enabling
// compilation — Finding 2's blame must appear on stdout.
func TestBisectSubcommandEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-j", "4", "-test", "Example13", "-comp", "g++ -O3 -mavx2 -mfma"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "executions:") {
		t.Errorf("missing execution count:\n%s", out)
	}
	if !strings.Contains(out, "AddMult_a_AAt") {
		t.Errorf("Finding 2 blame (AddMult_a_AAt) not reported:\n%s", out)
	}
}

// TestMergeShardedExperimentsEquivalence drives the full distributed
// protocol through the real CLI: two `experiments -shard i/2` invocations
// writing artifacts, then `merge` replaying them — stdout must be
// byte-identical to the unsharded invocation. table4 exercises the Laghos
// bisect fan-out (cheap but non-trivial: 12 row configurations, shared
// cached executions across comparison regimes).
func TestMergeShardedExperimentsEquivalence(t *testing.T) {
	dir := t.TempDir()
	var want, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("unsharded run: exit %d, stderr: %s", code, stderr.String())
	}
	paths := []string{filepath.Join(dir, "s0.json"), filepath.Join(dir, "s1.json")}
	for i, p := range paths {
		var stdout bytes.Buffer
		stderr.Reset()
		code := run([]string{"experiments", "-j", "2",
			"-shard", fmt.Sprintf("%d/2", i), "-shard-out", p, "table4"}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("shard %d: exit %d, stderr: %s", i, code, stderr.String())
		}
		if !strings.Contains(stdout.String(), "shard "+fmt.Sprintf("%d/2", i)) {
			t.Errorf("shard %d printed no receipt: %q", i, stdout.String())
		}
		if strings.Contains(stdout.String(), "baseline") {
			t.Errorf("shard %d leaked table output to stdout: %q", i, stdout.String())
		}
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run(append([]string{"merge", "-stats"}, paths...), &got, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("merged output differs from unsharded run:\n--- merged ---\n%s\n--- unsharded ---\n%s",
			got.String(), want.String())
	}
	// -stats reports the replay's cache behavior on stderr; a correct merge
	// answers every run from the artifacts. Assert on the "cache runs:"
	// line specifically — the costs line reads misses=0 even when run-key
	// replay is broken.
	runsLine := ""
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "cache runs:") {
			runsLine = line
		}
	}
	if runsLine == "" || !strings.Contains(runsLine, "misses=0") {
		t.Errorf("merge -stats run cache reports recomputation:\n%s", stderr.String())
	}
}

// TestMergeRejectsBadShardSets: the CLI must refuse incomplete sets and
// foreign engine versions with a non-zero exit.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	p0 := filepath.Join(dir, "s0.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"experiments", "-shard", "0/2", "-shard-out", p0, "table4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("shard run failed: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"merge", p0}, &stdout, &stderr); code != 1 {
		t.Errorf("merging 1 of 2 shards: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}

	// Corrupt the engine version and present a "complete" single-shard set.
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	foreign := strings.Replace(string(raw), `"engine": "flit-engine/`, `"engine": "flit-engine/0-foreign`, 1)
	if foreign == string(raw) {
		t.Fatal("test could not rewrite the engine version")
	}
	foreign = strings.Replace(foreign, `"count": 2`, `"count": 1`, 1)
	if !strings.Contains(foreign, `"count": 1`) {
		t.Fatal("test could not rewrite the shard count")
	}
	pf := filepath.Join(dir, "foreign.json")
	if err := os.WriteFile(pf, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"merge", pf}, &stdout, &stderr); code != 1 {
		t.Errorf("merging foreign engine version: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "engine") {
		t.Errorf("rejection does not name the engine version: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"merge"}, &stdout, &stderr); code != 1 {
		t.Errorf("merge with no artifacts: exit %d, want 1", code)
	}
}

// TestShardRequiresShardOut: a -shard run without -shard-out would compute
// and then discard a shard's work; the CLI refuses up front.
func TestShardRequiresShardOut(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-shard", "0/2"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-shard-out") {
		t.Errorf("stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"run", "-shard", "2/2", "-shard-out", "x.json"}, &stdout, &stderr); code != 1 {
		t.Fatalf("bad shard index: exit %d, want 1", code)
	}
	// A capped cache would export an incomplete artifact; the combination
	// is rejected up front.
	stderr.Reset()
	code := run([]string{"run", "-shard", "0/2", "-shard-out", "x.json", "-cache-cap", "10"}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "-cache-cap") {
		t.Errorf("shard with cache-cap: exit %d, stderr %q", code, stderr.String())
	}
}

// TestShardZeroOfOneExportsArtifact: "0/1" is the valid degenerate shard
// set — it must write an artifact (not silently fall back to a plain run)
// and merge back byte-identically.
func TestShardZeroOfOneExportsArtifact(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "s.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", p, "table3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("0/1 run wrote no artifact: %v", err)
	}
	if strings.Contains(stdout.String(), "=== table3 ===") {
		t.Error("0/1 shard leaked normal output to stdout")
	}
	var want, got bytes.Buffer
	if code := run([]string{"experiments", "table3"}, &want, &stderr); code != 0 {
		t.Fatal(stderr.String())
	}
	if code := run([]string{"merge", p}, &got, &stderr); code != 0 {
		t.Fatalf("merge of single artifact: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Error("merged 0/1 output differs from plain run")
	}
}

// TestWarmStartSeedsEngineCache drives the -warm-start flag end to end: a
// 0/1 shard artifact (the complete result set) warm-starts a fresh
// invocation, which must answer every evaluation from the cache (stderr
// misses=0) and print output byte-identical to a cold run.
func TestWarmStartSeedsEngineCache(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "warm.json")
	var want, stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "table4"}, &want, &stderr); code != 0 {
		t.Fatalf("cold run: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", art, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("artifact export: exit %d, stderr: %s", code, stderr.String())
	}
	var got bytes.Buffer
	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-warm-start", art, "-stats", "table4"}, &got, &stderr); code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr.String())
	}
	if got.String() != want.String() {
		t.Errorf("warm-started output differs from cold run:\n--- warm ---\n%s\n--- cold ---\n%s",
			got.String(), want.String())
	}
	runsLine := ""
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "cache runs:") {
			runsLine = line
		}
	}
	if runsLine == "" || !strings.Contains(runsLine, "misses=0") {
		t.Errorf("warm-started run recomputed evaluations:\n%s", stderr.String())
	}

	// A missing artifact fails up front with a diagnostic naming the flag.
	stderr.Reset()
	if code := run([]string{"experiments", "-warm-start", filepath.Join(dir, "nope.json"), "table3"},
		&stdout, &stderr); code != 1 {
		t.Fatalf("missing warm-start artifact: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "warm-start") {
		t.Errorf("stderr does not name -warm-start: %s", stderr.String())
	}
}

// TestDeltaOutOnWarmStartedRun: -delta-out on a warm-started subcommand
// writes the structured report, -stats prints its summary, and an
// identical-command re-run is an empty delta.
func TestDeltaOutOnWarmStartedRun(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", base, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline export: %s", stderr.String())
	}
	repPath := filepath.Join(dir, "delta.json")
	stderr.Reset()
	code := run([]string{"experiments", "-warm-start", base, "-delta-out", repPath, "-stats", "table4"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "delta: new=0 dropped=0 changed=0") {
		t.Errorf("-stats missing empty delta summary: %s", stderr.String())
	}
	raw, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("-delta-out wrote nothing: %v", err)
	}
	for _, want := range []string{`"engine"`, `"unchanged"`, `"baseline_hits"`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("delta report missing %s:\n%s", want, raw)
		}
	}

	// -delta-verify recomputes and must also find nothing on a
	// deterministic engine.
	stderr.Reset()
	code = run([]string{"experiments", "-warm-start", base, "-delta-verify", "-stats", "table4"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("verify run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "delta: new=0 dropped=0 changed=0") ||
		!strings.Contains(stderr.String(), "baseline-hits=0") {
		t.Errorf("verify-mode summary wrong: %s", stderr.String())
	}

	// Delta flags without a baseline are a usage bug, caught up front.
	stderr.Reset()
	if code := run([]string{"experiments", "-delta-out", repPath, "table3"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-delta-out without -warm-start: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-warm-start") {
		t.Errorf("stderr: %s", stderr.String())
	}

	// So is combining them with an evicting cache: entries (and their
	// provenance) would vanish mid-run and be misreported as dropped.
	stderr.Reset()
	code = run([]string{"experiments", "-warm-start", base, "-delta-out", repPath,
		"-cache-cap", "10", "table4"}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "-cache-cap") {
		t.Errorf("-delta-out with -cache-cap: exit %d, stderr %q", code, stderr.String())
	}
	// A capped warm start without delta flags stays legal (PR 3 behavior);
	// it just reports no delta summary rather than a wrong one.
	stderr.Reset()
	code = run([]string{"experiments", "-warm-start", base, "-cache-cap", "10", "-stats", "table4"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("capped warm start: exit %d, stderr: %s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "delta:") {
		t.Errorf("capped warm start printed a delta summary it cannot stand behind: %s", stderr.String())
	}
}

// TestMergeWarmStartDeltaComparesBits: on the merge path the shard set
// seeds the cache before the -warm-start baseline, so a baseline hit is
// served the *current* generation's bits — a drifted value must surface
// as changed, not be trusted as a baseline hit. (Regression: the seeded
// branch once counted uses>0 as unchanged without comparing.)
func TestMergeWarmStartDeltaComparesBits(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "cur.json")
	old := filepath.Join(dir, "old.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", cur, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("export: %s", stderr.String())
	}
	// Yesterday's baseline: same artifact with one value bit drifted.
	raw, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`"vec": \[\s*(\d+)`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatal("no vec record to perturb")
	}
	flipped := append([]byte(nil), m[1]...)
	if flipped[len(flipped)-1] == '0' {
		flipped[len(flipped)-1] = '1'
	} else {
		flipped[len(flipped)-1] = '0'
	}
	if err := os.WriteFile(old, bytes.Replace(raw, m[1], flipped, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run([]string{"merge", "-warm-start", old, "-stats", cur}, &stdout, &stderr); code != 0 {
		t.Fatalf("merge: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "changed=1") {
		t.Errorf("drifted baseline value not reported on the merge path:\n%s", stderr.String())
	}
}

// TestDeltaSubcommandOffline drives `flit delta` end to end: identical
// artifact sets diff empty; a bit-perturbed record is reported as exactly
// one changed key; bad usage errors.
func TestDeltaSubcommandOffline(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	var stdout, stderr bytes.Buffer
	for _, p := range []string{a, b} {
		if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", p, "table4"}, &stdout, &stderr); code != 0 {
			t.Fatalf("export %s: %s", p, stderr.String())
		}
	}
	stdout.Reset()
	if code := run([]string{"delta", "-baseline", a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("delta: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "delta: new=0 dropped=0 changed=0") {
		t.Errorf("same-command artifact sets not empty:\n%s", stdout.String())
	}

	// Perturb one recorded bit in b and diff again.
	raw, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`"vec": \[\s*(\d+)`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatal("no vec record to perturb")
	}
	// Flip the last digit in place so the value stays a valid uint64.
	flipped := append([]byte(nil), m[1]...)
	if flipped[len(flipped)-1] == '0' {
		flipped[len(flipped)-1] = '1'
	} else {
		flipped[len(flipped)-1] = '0'
	}
	bumped := bytes.Replace(raw, m[1], flipped, 1)
	if err := os.WriteFile(b, bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := run([]string{"delta", "-baseline", a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("delta after perturbation: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "changed=1") || !strings.Contains(stdout.String(), "changed  ") {
		t.Errorf("perturbed bit not reported:\n%s", stdout.String())
	}

	stderr.Reset()
	if code := run([]string{"delta", a}, &stdout, &stderr); code != 1 ||
		!strings.Contains(stderr.String(), "-baseline") {
		t.Errorf("delta without -baseline: exit %d, stderr %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"delta", "-baseline", a}, &stdout, &stderr); code != 1 {
		t.Errorf("delta without current set: exit %d", code)
	}
}

// TestGcSubcommand: superseded generations of one campaign slot are
// pruned oldest-first, -dry-run deletes nothing, and the -warm-start
// manifest protects its files.
func TestGcSubcommand(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "gen1.json")
	newer := filepath.Join(dir, "gen2.json")
	var stdout, stderr bytes.Buffer
	for _, p := range []string{old, newer} {
		if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", p, "table4"}, &stdout, &stderr); code != 0 {
			t.Fatalf("export %s: %s", p, stderr.String())
		}
	}
	// Same stamp second is possible; make the ordering unambiguous.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(old, past, past); err != nil {
		t.Fatal(err)
	}
	rewriteStamp(t, old, 1000)
	rewriteStamp(t, newer, 2000)

	stdout.Reset()
	if code := run([]string{"gc", "-dir", dir, "-keep", "1", "-dry-run"}, &stdout, &stderr); code != 0 {
		t.Fatalf("gc -dry-run: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "would prune "+old) {
		t.Errorf("dry run plan wrong:\n%s", stdout.String())
	}
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("-dry-run deleted a file: %v", err)
	}

	stdout.Reset()
	if code := run([]string{"gc", "-dir", dir, "-keep", "1", "-warm-start", old}, &stdout, &stderr); code != 0 {
		t.Fatalf("gc with manifest: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "protected "+old) {
		t.Errorf("manifest file not protected:\n%s", stdout.String())
	}
	if _, err := os.Stat(old); err != nil {
		t.Fatalf("protected file pruned: %v", err)
	}

	stdout.Reset()
	if code := run([]string{"gc", "-dir", dir, "-keep", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("gc: %s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "pruned "+old) || !strings.Contains(stdout.String(), "kept=1") {
		t.Errorf("gc output wrong:\n%s", stdout.String())
	}
	if _, err := os.Stat(old); !os.IsNotExist(err) {
		t.Error("superseded generation survived gc")
	}
	if _, err := os.Stat(newer); err != nil {
		t.Errorf("newest generation pruned: %v", err)
	}

	stderr.Reset()
	if code := run([]string{"gc", "-keep", "1"}, &stdout, &stderr); code != 1 ||
		!strings.Contains(stderr.String(), "-dir") {
		t.Errorf("gc without -dir: exit %d, stderr %s", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"gc", "-dir", dir, "-keep", "0"}, &stdout, &stderr); code != 1 {
		t.Errorf("gc -keep 0: exit %d, want 1", code)
	}
}

// rewriteStamp rewrites an artifact file's created_unix so tests control
// generation ordering exactly.
func rewriteStamp(t *testing.T, path string, unix int64) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`"created_unix": \d+`)
	if !re.Match(raw) {
		t.Fatalf("%s carries no created_unix stamp", path)
	}
	out := re.ReplaceAll(raw, []byte(fmt.Sprintf(`"created_unix": %d`, unix)))
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBisectStatsOnStderr: -stats surfaces the two bisect counters — the
// paper's deterministic execution count and the speculative extra — after
// a bisect subcommand.
func TestBisectStatsOnStderr(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-j", "4", "-stats", "-test", "Example13",
		"-comp", "g++ -O3 -mavx2 -mfma"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "bisect: searches=1 paper-execs=") {
		t.Errorf("-stats missing bisect counters: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "spec-execs=") {
		t.Errorf("-stats missing speculative counter: %s", stderr.String())
	}
}
