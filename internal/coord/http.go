package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Wire protocol of the coordinator (served by Handler, spoken by Client),
// mounted beside the object-store protocol on the same mux so one URL
// serves both scheduling and results:
//
//	POST /v1/coord/lease      {worker}                  → 200 leaseResponse
//	POST /v1/coord/heartbeat  {worker,lease_id,shard}   → 200, 409 lease lost
//	POST /v1/coord/release    {worker,lease_id,shard}   → 200 (idempotent)
//	POST /v1/coord/complete   {worker,lease_id,shard,
//	                           artifact: <shard JSON>}  → 200 {state: ok|done},
//	                                                      400 bad artifact
//	GET  /v1/coord/status                               → 200 Status
//
// Every request carries the client's engine version in X-Flit-Engine and
// is fenced against the campaign's — the same per-request fence the
// object protocol applies, because a worker built from a different engine
// would compute artifacts that are not interchangeable. 409 is the one
// coordination-specific status: the lease named in the request is no
// longer the shard's current one, and the worker must abandon the shard.
const (
	coordPathPrefix = "/v1/coord/"
	engineHeader    = "X-Flit-Engine"
)

// StatusLeaseLost is the HTTP rendering of ErrLeaseLost.
const StatusLeaseLost = http.StatusConflict

// leaseRequest is the body of every mutating coordinator call; complete
// additionally carries the shard artifact verbatim.
type leaseRequest struct {
	Worker   string          `json:"worker"`
	LeaseID  string          `json:"lease_id,omitempty"`
	Shard    int             `json:"shard"`
	Artifact json.RawMessage `json:"artifact,omitempty"`
}

// leaseResponse answers a lease request: State is "granted" (Grant fields
// are set), "wait", or "done".
type leaseResponse struct {
	State   string   `json:"state"`
	Shard   int      `json:"shard,omitempty"`
	Count   int      `json:"count,omitempty"`
	Command []string `json:"command,omitempty"`
	LeaseID string   `json:"lease_id,omitempty"`
	TTLMS   int64    `json:"ttl_ms,omitempty"`
}

// maxRequestBody bounds a coordinator request body. Shard artifacts are
// the largest payload and share the object store's envelope bound.
const maxRequestBody = 64 << 20

// Handler serves the coordinator protocol for c. Mount it at the root of
// the same mux as store.Handler — the paths do not overlap.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(coordPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		serveCoord(c, w, r)
	})
	return mux
}

func serveCoord(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	op := strings.TrimPrefix(r.URL.Path, coordPathPrefix)
	if got := r.Header.Get(engineHeader); got != c.spec.Engine {
		http.Error(w, fmt.Sprintf("coord: campaign is engine %q, request is %q", c.spec.Engine, got),
			http.StatusPreconditionFailed)
		return
	}
	if op == "status" {
		if r.Method != http.MethodGet {
			http.Error(w, "status wants GET", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, c.Status())
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "coordinator calls want POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil || int64(len(body)) > maxRequestBody {
		http.Error(w, "coord: unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	var req leaseRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "coord: malformed request body", http.StatusBadRequest)
		return
	}
	switch op {
	case "lease":
		g, state, err := c.Lease(req.Worker)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := leaseResponse{State: "wait"}
		switch state {
		case Granted:
			resp = leaseResponse{State: "granted", Shard: g.Shard, Count: g.Count,
				Command: g.Command, LeaseID: g.LeaseID, TTLMS: g.TTL.Milliseconds()}
		case Done:
			resp.State = "done"
		}
		writeJSON(w, resp)
	case "heartbeat":
		answer(w, c.Heartbeat(req.Worker, req.LeaseID, req.Shard))
	case "release":
		answer(w, c.Release(req.Worker, req.LeaseID, req.Shard))
	case "complete":
		if len(req.Artifact) == 0 {
			http.Error(w, "coord: completion carries no artifact", http.StatusBadRequest)
			return
		}
		if err := c.Complete(req.Worker, req.LeaseID, req.Shard, req.Artifact); err != nil {
			answer(w, err)
			return
		}
		// Tell the completing worker whether the campaign just finished: a
		// coordinator running -exit-when-done stops accepting connections the
		// moment the last shard lands, so the worker cannot count on one more
		// lease poll to learn the campaign is over.
		resp := leaseResponse{State: "ok"}
		select {
		case <-c.Done():
			resp.State = "done"
		default:
		}
		writeJSON(w, resp)
	default:
		http.NotFound(w, r)
	}
}

// answer maps a coordinator-method error to its HTTP status: lease loss is
// the worker's 409 signal to abandon the shard; a validation failure is
// the client's fault (400); anything else is the server's (500).
func answer(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusOK)
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), StatusLeaseLost)
	case IsBadRequest(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
}
