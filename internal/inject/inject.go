// Package inject implements the paper's controlled variability-injection
// framework (§3.5): the LLVM-pass methodology reproduced on the simulated
// toolchain. The first pass enumerates every potential injection location —
// a (function, static floating-point instruction) pair; the second plants
// x OP' ε at one location, with OP' drawn from {+,-,*,/} and ε from a
// uniform (0,1) distribution (deterministically, per site). FLiT Bisect is
// then asked to find the injected function, and the report is scored as an
// exact find, an indirect find (the closest exported caller of an inlined
// or internal function), a wrong find, a missed find, or not measurable.
package inject

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/fp"
	"repro/internal/link"
	"repro/internal/prog"
)

// Site is one potential injection location.
type Site struct {
	Symbol  string
	OpIndex int
}

// EnumerateSites is the first pass: every static FP instruction of every
// function, in deterministic order.
func EnumerateSites(p *prog.Program) []Site {
	var out []Site
	for _, s := range p.Symbols() {
		for i := 0; i < s.FPOps; i++ {
			out = append(out, Site{Symbol: s.Name, OpIndex: i})
		}
	}
	return out
}

// EpsFor returns the deterministic uniform-(0,1) perturbation magnitude for
// a site and operation.
func EpsFor(site Site, op fp.InjectOp) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%c", site.Symbol, site.OpIndex, byte(op))
	return epsFromSum(h.Sum64())
}

// epsFromSum maps 53 mantissa bits of a hash into (0,1); never exactly 0.
func epsFromSum(u uint64) float64 {
	v := float64(u>>11) / float64(1<<53)
	if v == 0 {
		v = 0.5
	}
	return v
}

// Outcome classifies one injection run (the categories of Table 5).
type Outcome int

const (
	// Exact: Bisect reported the injected function itself.
	Exact Outcome = iota
	// Indirect: the injected function is not an overridable symbol, and
	// Bisect reported the closest exported function that calls it.
	Indirect
	// Wrong: a reported function does not explain the injection
	// (a false positive).
	Wrong
	// Missed: the injection changed the output but Bisect reported nothing
	// responsible (a false negative).
	Missed
	// NotMeasurable: the injection did not change the program output
	// (unreached code or a perturbation absorbed by rounding/branches).
	NotMeasurable
)

func (o Outcome) String() string {
	switch o {
	case Exact:
		return "exact"
	case Indirect:
		return "indirect"
	case Wrong:
		return "wrong"
	case Missed:
		return "missed"
	case NotMeasurable:
		return "not measurable"
	default:
		return "unknown"
	}
}

// RunReport is the scored result of one injection.
type RunReport struct {
	Site    Site
	Op      fp.InjectOp
	Eps     float64
	Outcome Outcome
	// Execs counts program executions: 1 for detection plus the Bisect
	// search for measurable injections.
	Execs int
	// Found lists the symbols Bisect blamed.
	Found []string
	Err   error
}

// Study drives injections against one program and test.
type Study struct {
	Prog     *prog.Program
	Test     flit.TestCase
	Baseline comp.Compilation
	// Pool fans out the independent (site, OP') injection runs; nil runs
	// the campaign sequentially. Outcomes are aggregated in site × OP'
	// order, so the Summary is identical either way.
	Pool *exec.Pool
	// Cache memoizes build/run pairs — above all the clean-baseline
	// detection run, which every injection of the campaign repeats.
	Cache *flit.Cache
	// Shard restricts the campaign to this shard's slice of the site × OP'
	// index space. A sharded Summary aggregates only the owned injections —
	// it exists to fill the Cache for artifact export, and `flit merge`
	// replays the full campaign. The zero value runs every injection.
	Shard exec.Shard
}

// RunOne injects at a single site with a single OP' and scores the result.
func (s *Study) RunOne(site Site, op fp.InjectOp) RunReport {
	rep := RunReport{Site: site, Op: op, Eps: EpsFor(site, op)}
	injected := s.Baseline.WithInjection(site.Symbol,
		fp.Injection{OpIndex: site.OpIndex, Op: op, Eps: rep.Eps})

	// Key-first: the clean-baseline detection run — repeated by every
	// injection of the campaign — and the injected build both materialize
	// only on a cache miss, so a warm-started campaign re-links neither.
	baseRes, err := s.Cache.RunAllPlanned(s.Test, link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline)))
	if err != nil {
		rep.Err = err
		return rep
	}
	injRes, err := s.Cache.RunAllPlanned(s.Test, link.NewBuilder(link.FullBuildPlan(s.Prog, injected)))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Execs = 1 // the detection run
	if s.Test.Compare(baseRes, injRes) == 0 {
		rep.Outcome = NotMeasurable
		return rep
	}

	// The bisect search runs sequentially: the campaign already fans out
	// across injections through the pool, and nesting a second pooled
	// level would multiply concurrency past the configured bound.
	search := &bisect.Search{Prog: s.Prog, Test: s.Test,
		Baseline: s.Baseline, Variable: injected,
		Cache: s.Cache}
	report, err := search.Run()
	if report != nil {
		rep.Execs += report.Execs
	}
	if err != nil {
		rep.Err = err
		rep.Outcome = Missed
		return rep
	}
	for _, f := range report.AllSymbols() {
		rep.Found = append(rep.Found, f.Item)
	}
	rep.Outcome = s.score(site.Symbol, rep.Found, report)
	return rep
}

// score classifies the blame set against the known injection target.
func (s *Study) score(target string, found []string, report *bisect.Report) Outcome {
	ancestor := s.Prog.ExportedAncestor(target)
	explains := func(name string) bool {
		return name == target || (ancestor != "" && name == ancestor)
	}
	if len(found) == 0 {
		// No symbol-level blame. A file-level finding naming the target's
		// file still counts as an indirect localization only if symbol
		// search could not go deeper; otherwise the injection was missed.
		targetFile := s.Prog.MustSymbol(target).File
		for _, ff := range report.Files {
			if ff.File == targetFile && ff.Status != bisect.SymbolsFound {
				return Indirect
			}
		}
		return Missed
	}
	sawExact, sawIndirect := false, false
	for _, f := range found {
		if !explains(f) {
			return Wrong
		}
		if f == target {
			sawExact = true
		} else {
			sawIndirect = true
		}
	}
	if sawExact {
		return Exact
	}
	if sawIndirect {
		return Indirect
	}
	return Missed
}

// Summary aggregates a batch of injection runs (Table 5).
type Summary struct {
	Counts    map[Outcome]int
	Total     int
	TotalRuns int // total program executions over measurable injections
	Bisected  int // injections that went through a Bisect search
}

// AvgExecs is the average number of program executions per Bisect search.
func (s Summary) AvgExecs() float64 {
	if s.Bisected == 0 {
		return 0
	}
	return float64(s.TotalRuns) / float64(s.Bisected)
}

// Precision is TP/(TP+FP) with exact+indirect as true positives and wrong
// finds as false positives.
func (s Summary) Precision() float64 {
	tp := s.Counts[Exact] + s.Counts[Indirect]
	fp := s.Counts[Wrong]
	if tp+fp == 0 {
		return math.NaN()
	}
	return float64(tp) / float64(tp+fp)
}

// Recall is TP/(TP+FN) with missed finds as false negatives.
func (s Summary) Recall() float64 {
	tp := s.Counts[Exact] + s.Counts[Indirect]
	fn := s.Counts[Missed]
	if tp+fn == 0 {
		return math.NaN()
	}
	return float64(tp) / float64(tp+fn)
}

// Run executes the full study: every site × every OP'. The sites slice may
// be a subset for sampled runs; nil means all sites of the program. Every
// injection is an independent detect-and-bisect evaluation, so the campaign
// fans out through the study's pool; reports are folded into the Summary in
// site × OP' order, making the aggregate identical to a sequential run.
func (s *Study) Run(sites []Site) Summary {
	if sites == nil {
		sites = EnumerateSites(s.Prog)
	}
	ops := fp.AllInjectOps
	owned := s.Shard.Indices(len(sites) * len(ops))
	reps, _ := exec.Map(s.Pool, len(owned), func(k int) (RunReport, error) {
		i := owned[k]
		return s.RunOne(sites[i/len(ops)], ops[i%len(ops)]), nil
	})
	sum := Summary{Counts: make(map[Outcome]int)}
	for _, rep := range reps {
		sum.Counts[rep.Outcome]++
		sum.Total++
		if rep.Outcome != NotMeasurable {
			sum.TotalRuns += rep.Execs
			sum.Bisected++
		}
	}
	return sum
}
