package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/exec"
)

// Runner executes one leased shard of a campaign command and returns
// the exported shard artifact, verbatim JSON. The CLI supplies the
// experiments-engine implementation; tests supply fakes and saboteurs.
// The artifact must be a deterministic function of (command, shard) —
// in particular, unstamped — so that two workers completing the same
// shard converge on identical bytes.
type Runner func(command []string, shard exec.Shard) ([]byte, error)

// WorkerOptions tunes the worker loop. The zero value is production-shaped.
type WorkerOptions struct {
	// Name identifies this worker in coordinator state (default "worker").
	Name string
	// PollEvery is the pause between lease attempts while every shard is
	// taken (default 500ms).
	PollEvery time.Duration
	// Log receives one line per lifecycle event (nil discards).
	Log io.Writer
}

func (o *WorkerOptions) withDefaults() {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 500 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// WorkerStats summarizes one worker's participation across campaigns.
type WorkerStats struct {
	// Completed counts shards this worker ran and successfully reported.
	Completed int
	// Lost counts shards this worker ran to completion but whose lease was
	// lost along the way — the artifact upload was skipped because another
	// worker owns the shard now. The work is not wasted: run results were
	// written through to the shared store as they were computed.
	Lost int
}

// Work runs the worker loop against a coordinator: list the campaigns,
// lease a shard of the first incomplete one (falling through to later
// campaigns when every shard of an earlier one is taken), run it under a
// heartbeat, upload the artifact, repeat until every campaign is done —
// so a fleet drains one campaign and then picks up the next, and a
// campaign submitted while the fleet is busy gets scheduled without
// restarting anything.
//
// Cancelling ctx drains: scheduling calls (the campaign listing and
// lease polls) are cancelled immediately — mid-backoff, mid-request —
// but a shard already running is finished and reported (the drivers are
// not interruptible and the work is worth keeping; its heartbeats and
// final Complete deliberately run outside ctx), a lease merely held is
// released, and the loop returns ctx.Err(). A lost lease (expiry or
// supersession while running) abandons only the upload and continues. A
// campaign retired by GC mid-loop is skipped. Transient coordinator
// errors have already consumed the client's retry budget when they
// surface here, so they terminate the loop rather than spin on a dead
// service.
func Work(ctx context.Context, cl *Client, run Runner, opts WorkerOptions) (WorkerStats, error) {
	opts.withDefaults()
	var stats WorkerStats
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		infos, err := cl.Campaigns(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			return stats, err
		}
		incomplete := infos[:0:0]
		for _, ci := range infos {
			if !ci.Complete {
				incomplete = append(incomplete, ci)
			}
		}
		if len(incomplete) == 0 {
			fmt.Fprintf(opts.Log, "%s: all campaigns complete (%d shards run here, %d lost)\n",
				opts.Name, stats.Completed, stats.Lost)
			return stats, nil
		}
		granted := false
		for _, ci := range incomplete {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			g, state, err := cl.Lease(ctx, ci.ID, opts.Name)
			if err != nil {
				if errors.Is(err, ErrNoCampaign) {
					continue // retired between the listing and the lease
				}
				if ctx.Err() != nil {
					return stats, ctx.Err()
				}
				return stats, err
			}
			if state != Granted {
				continue // Done or Wait: try the next campaign
			}
			granted = true
			if err := ctx.Err(); err != nil {
				// Drained between lease and run: hand the untouched shard back.
				// The release runs outside ctx — it is the cleanup the drain
				// exists to perform.
				_ = cl.Release(context.Background(), ci.ID, opts.Name, g.LeaseID, g.Shard)
				return stats, err
			}
			fmt.Fprintf(opts.Log, "%s: leased shard %d/%d of %s (%s)\n",
				opts.Name, g.Shard, g.Count, ci.ID, g.LeaseID)
			lost, campaignDone, allDone, err := runShard(cl, ci.ID, run, g, opts, &stats)
			if err != nil {
				return stats, err
			}
			if lost {
				fmt.Fprintf(opts.Log, "%s: lease %s lost; shard %d abandoned to its new owner\n",
					opts.Name, g.LeaseID, g.Shard)
			} else {
				fmt.Fprintf(opts.Log, "%s: shard %d of %s complete\n", opts.Name, g.Shard, ci.ID)
			}
			if campaignDone {
				fmt.Fprintf(opts.Log, "%s: campaign %s complete\n", opts.Name, ci.ID)
			}
			if allDone {
				// This completion finished the coordinator's last open campaign.
				// Don't go back for one more listing: under -exit-when-done the
				// coordinator may already be draining, and that poll would race
				// its shutdown.
				fmt.Fprintf(opts.Log, "%s: all campaigns complete (%d shards run here, %d lost)\n",
					opts.Name, stats.Completed, stats.Lost)
				return stats, nil
			}
			break // re-list: the tenancy may have changed while we ran
		}
		if !granted {
			fmt.Fprintf(opts.Log, "%s: all shards leased; polling\n", opts.Name)
			select {
			case <-ctx.Done():
			case <-time.After(opts.PollEvery):
			}
		}
	}
}

// runShard executes one granted shard under a heartbeat goroutine and
// reports the result. Returns lost=true when the lease was lost and the
// completion was skipped; campaignDone/allDone as the completion reported
// them. The heartbeats and the final Complete run under their own
// context — a draining worker keeps its lease alive while it finishes
// the shard, and the report of finished work is never the call a drain
// cancels.
func runShard(cl *Client, campaign string, run Runner, g Grant,
	opts WorkerOptions, stats *WorkerStats) (lost, campaignDone, allDone bool, err error) {
	// Heartbeat at a third of the TTL: two beats may be dropped before the
	// lease is at risk.
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbLost bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		interval := g.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			// The request itself runs outside hbCtx: stopHB fires when the run
			// finishes, and cancelling an in-flight beat then would read as a
			// lost lease when nothing was lost.
			if err := cl.Heartbeat(context.Background(), campaign, opts.Name, g.LeaseID, g.Shard); err != nil {
				// Lease loss is terminal for the heartbeat; so is an exhausted
				// retry budget (the lease will expire anyway — treat the shard
				// as lost rather than report over a dead coordinator).
				if !errors.Is(err, ErrLeaseLost) {
					fmt.Fprintf(opts.Log, "%s: heartbeat failed: %v\n", opts.Name, err)
				}
				hbLost = true
				return
			}
		}
	}()
	artifact, runErr := run(g.Command, exec.Shard{Index: g.Shard, Count: g.Count})
	stopHB()
	wg.Wait()
	if runErr != nil {
		// A run failure is deterministic (the drivers are): releasing and
		// retrying would loop forever, so surface it.
		_ = cl.Release(context.Background(), campaign, opts.Name, g.LeaseID, g.Shard)
		return false, false, false, fmt.Errorf("coord: running shard %d: %w", g.Shard, runErr)
	}
	if hbLost {
		stats.Lost++
		return true, false, false, nil
	}
	campaignDone, allDone, err = cl.Complete(context.Background(), campaign, opts.Name, g.LeaseID, g.Shard, artifact)
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			stats.Lost++
			return true, false, false, nil
		}
		return false, false, false, err
	}
	stats.Completed++
	return false, campaignDone, allDone, nil
}
