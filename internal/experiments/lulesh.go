package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/lulesh"
	"repro/internal/comp"
	"repro/internal/inject"
)

// LULESHStudy returns the injection study driver on the default engine.
func LULESHStudy() *inject.Study { return Default().LULESHStudy() }

// LULESHStudy returns the injection study driver (§3.5): the LULESH proxy
// compiled with clang (the paper's pass is an LLVM pass) at -O2. The study
// fans its independent detect-and-bisect injections out through the
// engine's pool, and its clean-baseline detection run — repeated by every
// injection — is memoized by the engine's cache.
func (e *Engine) LULESHStudy() *inject.Study {
	return &inject.Study{
		Prog:     lulesh.Program(),
		Test:     lulesh.NewCase(),
		Baseline: comp.Compilation{Compiler: comp.Clang, OptLevel: "-O2"},
		Pool:     e.pool,
		Cache:    e.cache,
		Shard:    e.shard,
	}
}

// Table5 runs the injection campaign on the default engine.
func Table5(stride int) (inject.Summary, error) { return Default().Table5(stride) }

// Table5 runs the injection campaign and aggregates the outcome counts.
// stride > 1 samples every stride-th site (for quick runs); 1 runs the full
// 1,094 sites × 4 OP' = 4,376 injections of the paper.
func (e *Engine) Table5(stride int) (inject.Summary, error) {
	if stride < 1 {
		stride = 1
	}
	s := e.LULESHStudy()
	all := inject.EnumerateSites(s.Prog)
	var sites []inject.Site
	for i := 0; i < len(all); i += stride {
		sites = append(sites, all[i])
	}
	return s.Run(sites), nil
}

// RenderTable5 prints Table 5 in the paper's layout.
func RenderTable5(sum inject.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %s\n", "Category", "Count")
	rows := []struct {
		name string
		o    inject.Outcome
	}{
		{"exact finds", inject.Exact},
		{"indirect finds", inject.Indirect},
		{"wrong finds", inject.Wrong},
		{"missed finds", inject.Missed},
		{"not measurable", inject.NotMeasurable},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %6d\n", r.name, sum.Counts[r.o])
	}
	fmt.Fprintf(&b, "%-18s %6d\n", "total", sum.Total)
	fmt.Fprintf(&b, "precision %.3f  recall %.3f  avg executions %.1f\n",
		sum.Precision(), sum.Recall(), sum.AvgExecs())
	return b.String()
}
