package fp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStrictIsStrict(t *testing.T) {
	if !Strict.IsStrict() {
		t.Fatal("Strict.IsStrict() = false")
	}
	if (Semantics{}).Normalize() != Strict {
		t.Fatal("zero Semantics does not normalize to Strict")
	}
	if (Semantics{FuseFMA: true}).IsStrict() {
		t.Fatal("FMA semantics reported strict")
	}
}

func TestSemanticsString(t *testing.T) {
	cases := []struct {
		sem  Semantics
		want string
	}{
		{Strict, "strict"},
		{Semantics{FuseFMA: true, ReassocWidth: 1}, "fma"},
		{Semantics{ReassocWidth: 4}, "w4"},
		{Semantics{FuseFMA: true, ReassocWidth: 4, UnsafeMath: true}, "fma,w4,unsafe"},
		{Semantics{ReassocWidth: 1, ExtendedPrecision: true}, "extprec"},
		{Semantics{ReassocWidth: 1, FlushSubnormals: true, ApproxMath: true}, "ftz,approx"},
	}
	for _, c := range cases {
		if got := c.sem.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.sem, got, c.want)
		}
	}
}

func TestStrictArithmeticMatchesIEEE(t *testing.T) {
	e := NewEnv(Strict)
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		return e.Add(a, b) == a+b &&
			e.Sub(a, b) == a-b &&
			e.Mul(a, b) == a*b &&
			(b == 0 || e.Div(a, b) == a/b) &&
			e.MulAdd(a, b, c) == a*b+c &&
			e.MulSub(a, b, c) == a*b-c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFMAContractionChangesResults(t *testing.T) {
	strict := NewEnv(Strict)
	fma := NewEnv(Semantics{FuseFMA: true, ReassocWidth: 1})
	// A case where fused and unfused differ: product rounding error matters.
	a, b := 1.0+0x1p-30, 1.0-0x1p-30
	c := -1.0
	s := strict.MulAdd(a, b, c)
	f := fma.MulAdd(a, b, c)
	if s == f {
		t.Fatalf("expected FMA to differ: strict=%g fma=%g", s, f)
	}
	if f != math.FMA(a, b, c) {
		t.Fatalf("fused result %g != math.FMA %g", f, math.FMA(a, b, c))
	}
}

func TestReassociationChangesLongSums(t *testing.T) {
	xs := make([]float64, 1000)
	v := 0.1
	for i := range xs {
		xs[i] = v
		v = math.Mod(v*1.3+0.7, 1.0) // deterministic ill-conditioned-ish data
	}
	seq := NewEnv(Strict).Sum(xs)
	w4 := NewEnv(Semantics{ReassocWidth: 4}).Sum(xs)
	w8 := NewEnv(Semantics{ReassocWidth: 8}).Sum(xs)
	if seq == w4 && seq == w8 {
		t.Fatal("expected reassociated sums to differ from sequential")
	}
	// All must be within a tight relative error of each other.
	if rel := math.Abs(seq-w4) / math.Abs(seq); rel > 1e-12 {
		t.Fatalf("w4 deviation too large: %g", rel)
	}
}

func TestReassociationSameWidthIsDeterministic(t *testing.T) {
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	for _, w := range []uint8{1, 2, 4, 8} {
		a := NewEnv(Semantics{ReassocWidth: w}).Sum(xs)
		b := NewEnv(Semantics{ReassocWidth: w}).Sum(xs)
		if a != b {
			t.Fatalf("width %d not deterministic: %g vs %g", w, a, b)
		}
	}
}

func TestExtendedPrecisionSumIsMoreAccurate(t *testing.T) {
	// Sum of many small values onto a large one: extended precision must be
	// at least as accurate as plain double accumulation.
	xs := make([]float64, 10001)
	xs[0] = 1e16
	for i := 1; i < len(xs); i++ {
		xs[i] = 1.0
	}
	exact := 1e16 + 10000.0
	plain := NewEnv(Strict).Sum(xs)
	ext := NewEnv(Semantics{ReassocWidth: 1, ExtendedPrecision: true}).Sum(xs)
	if math.Abs(ext-exact) > math.Abs(plain-exact) {
		t.Fatalf("extended precision less accurate: ext=%g plain=%g exact=%g", ext, plain, exact)
	}
	if ext == plain {
		t.Fatal("expected extended precision to change this sum")
	}
}

func TestUnsafeDivReciprocal(t *testing.T) {
	strict := NewEnv(Strict)
	unsafe := NewEnv(Semantics{ReassocWidth: 1, UnsafeMath: true})
	// 1/49 then *7 differs from 7/49 in the last ulp.
	diffs := 0
	for i := 1; i < 2000; i++ {
		a, b := float64(i), float64(3*i+1)
		if strict.Div(a, b) != unsafe.Div(a, b) {
			diffs++
		}
	}
	if diffs == 0 {
		t.Fatal("reciprocal division never differed from true division")
	}
}

func TestUnsafeSumReassociation(t *testing.T) {
	strict := NewEnv(Strict)
	unsafe := NewEnv(Semantics{ReassocWidth: 1, UnsafeMath: true})
	a, b, c, d := 1e16, -1e16, 1.0, -0.5
	if strict.Sum4(a, b, c, d) == unsafe.Sum4(a, c, b, d) && strict.Sum3(a, c, b) == unsafe.Sum3(a, c, b) {
		t.Log("catastrophic case did not differ; checking a broader sweep")
	}
	diff := false
	x := 0.1
	for i := 0; i < 1000 && !diff; i++ {
		p, q, r := x, x*1.7, x*0.3
		if strict.Sum3(p, q, r) != unsafe.Sum3(p, q, r) {
			diff = true
		}
		x = math.Mod(x*9.7+0.123, 10)
	}
	if !diff {
		t.Fatal("unsafe Sum3 reassociation never changed a result")
	}
}

func TestFlushSubnormals(t *testing.T) {
	ftz := NewEnv(Semantics{ReassocWidth: 1, FlushSubnormals: true})
	sub := 0x1p-1040
	if got := ftz.Mul(sub, 1); got != 0 {
		t.Fatalf("FTZ Mul(subnormal,1) = %g, want 0", got)
	}
	if got := ftz.Add(sub, sub); got != 0 {
		t.Fatalf("FTZ Add = %g, want 0", got)
	}
	if got := ftz.Mul(1.5, 2); got != 3 {
		t.Fatalf("FTZ changed a normal result: %g", got)
	}
	strict := NewEnv(Strict)
	if got := strict.Mul(sub, 1); got != sub {
		t.Fatalf("strict flushed a subnormal: %g", got)
	}
}

func TestApproxSqrtCloseButNotAlwaysEqual(t *testing.T) {
	diffs, n := 0, 0
	x := 1.000001
	for i := 0; i < 5000; i++ {
		exact := math.Sqrt(x)
		apx := approxSqrt(x)
		rel := math.Abs(apx-exact) / exact
		if rel > 1e-14 {
			t.Fatalf("approxSqrt(%g) rel error %g too large", x, rel)
		}
		if apx != exact {
			diffs++
		}
		n++
		x *= 1.0137
	}
	if diffs == 0 {
		t.Fatal("approxSqrt never differed from math.Sqrt")
	}
	if diffs == n {
		t.Log("approxSqrt differed on every input (acceptable but surprising)")
	}
}

func TestApproxSqrtSpecialCases(t *testing.T) {
	if approxSqrt(0) != 0 {
		t.Error("approxSqrt(0) != 0")
	}
	if !math.IsInf(approxSqrt(math.Inf(1)), 1) {
		t.Error("approxSqrt(+inf) not +inf")
	}
	if !math.IsNaN(approxSqrt(-1)) {
		t.Error("approxSqrt(-1) not NaN")
	}
	if !math.IsNaN(approxSqrt(math.NaN())) {
		t.Error("approxSqrt(NaN) not NaN")
	}
}

func TestApproxExpLogFaithful(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 700 {
			return true
		}
		r := approxExp(x)
		exact := math.Exp(x)
		// Faithful: within one ulp of the correctly rounded result.
		return r == exact ||
			r == math.Nextafter(exact, math.Inf(1)) ||
			r == math.Nextafter(exact, math.Inf(-1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x float64) bool {
		if math.IsNaN(x) || x <= 0 {
			return true
		}
		r := approxLog(x)
		exact := math.Log(x)
		return r == exact ||
			r == math.Nextafter(exact, math.Inf(1)) ||
			r == math.Nextafter(exact, math.Inf(-1))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestDotMatchesManualLoop(t *testing.T) {
	xs := []float64{1.5, -2.25, 3.125, 0.875, -1.0625}
	ys := []float64{0.5, 1.75, -2.5, 4.0, 8.25}
	e := NewEnv(Strict)
	var want float64
	for i := range xs {
		want += xs[i] * ys[i]
	}
	if got := e.Dot(xs, ys); got != want {
		t.Fatalf("strict Dot = %g, want %g", got, want)
	}
	// Mismatched lengths use the shorter.
	if got := e.Dot(xs[:3], ys); got != xs[0]*ys[0]+xs[1]*ys[1]+xs[2]*ys[2] {
		t.Fatalf("short Dot wrong: %g", got)
	}
}

func TestDotFusedDiffersOnCancellation(t *testing.T) {
	xs := []float64{1 + 0x1p-29, 1 - 0x1p-29}
	ys := []float64{1 - 0x1p-29, -(1 + 0x1p-29)}
	strict := NewEnv(Strict).Dot(xs, ys)
	fused := NewEnv(Semantics{FuseFMA: true, ReassocWidth: 1}).Dot(xs, ys)
	if strict == fused {
		t.Fatalf("expected fused dot to differ: %g", strict)
	}
}

func TestNorm2(t *testing.T) {
	e := NewEnv(Strict)
	if got := e.Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2(3,4) = %g", got)
	}
	if got := e.Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %g", got)
	}
}

func TestDDExactness(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		s := twoSum(a, b)
		if s.hi != a+b {
			return false
		}
		p := twoProd(a, b)
		return p.hi == a*b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// twoSum error term is exact for representable cases.
	s := twoSum(1e16, 1.0)
	if s.hi+s.lo != 1e16+1.0 || s.lo == 0 {
		// 1e16+1 rounds; the lo term must carry the lost 1.0 (or part of it).
		if s.lo != 1.0 && s.lo != -1.0 {
			t.Fatalf("twoSum(1e16,1) = {%g,%g}", s.hi, s.lo)
		}
	}
}

func TestAxpyScaleLerp(t *testing.T) {
	e := NewEnv(Strict)
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	e.Axpy(2, x, y)
	want := []float64{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	e.Scale(0.5, y)
	if y[0] != 6 || y[2] != 18 {
		t.Fatalf("Scale wrong: %v", y)
	}
	if got := e.Lerp(2, 4, 0.5); got != 3 {
		t.Fatalf("Lerp(2,4,0.5) = %g", got)
	}
}

func TestInjectionFiresAtStaticSite(t *testing.T) {
	// Function with 3 static ops; inject at op 1 with +eps.
	inj := Injection{OpIndex: 1, Op: InjAdd, Eps: 0.5}
	e := NewInjectedEnv(Strict, 3, inj)
	// op0: Add(1,1) = 2 (no injection)
	if got := e.Add(1, 1); got != 2 {
		t.Fatalf("op0 = %g, want 2", got)
	}
	// op1: Add(1,1) -> (1+0.5)+1 = 2.5
	if got := e.Add(1, 1); got != 2.5 {
		t.Fatalf("op1 = %g, want 2.5 (injected)", got)
	}
	// op2: clean again
	if got := e.Add(1, 1); got != 2 {
		t.Fatalf("op2 = %g, want 2", got)
	}
	// op3 wraps to static index 0: clean.
	if got := e.Add(1, 1); got != 2 {
		t.Fatalf("op3 = %g, want 2", got)
	}
	// op4 wraps to static index 1: injected again (loop model).
	if got := e.Add(1, 1); got != 2.5 {
		t.Fatalf("op4 = %g, want 2.5 (looped injection)", got)
	}
	if e.OpsExecuted() != 5 {
		t.Fatalf("OpsExecuted = %d, want 5", e.OpsExecuted())
	}
}

func TestInjectOpApply(t *testing.T) {
	if InjAdd.Apply(2, 0.5) != 2.5 {
		t.Error("InjAdd wrong")
	}
	if InjSub.Apply(2, 0.5) != 1.5 {
		t.Error("InjSub wrong")
	}
	if InjMul.Apply(2, 0.5) != 3 {
		t.Error("InjMul wrong")
	}
	if InjDiv.Apply(3, 0.5) != 2 {
		t.Error("InjDiv wrong")
	}
	if InjectOp('?').Apply(7, 1) != 7 {
		t.Error("unknown op should be identity")
	}
}

func TestUninjectedEnvDoesNotCount(t *testing.T) {
	e := NewEnv(Strict)
	for i := 0; i < 100; i++ {
		e.Add(1, 1)
	}
	if e.OpsExecuted() != 0 {
		t.Fatalf("un-injected env counted ops: %d", e.OpsExecuted())
	}
	if e.Injected() {
		t.Fatal("Injected() true without injection")
	}
}

func TestNewInjectedEnvClampsStaticOps(t *testing.T) {
	e := NewInjectedEnv(Strict, 0, Injection{OpIndex: 0, Op: InjMul, Eps: 1})
	// staticOps clamped to 1 -> every op injected: Mul(2,3) -> (2*(1+1))*3 = 12.
	if got := e.Mul(2, 3); got != 12 {
		t.Fatalf("clamped injection Mul = %g, want 12", got)
	}
	if !e.Injected() {
		t.Fatal("Injected() false")
	}
}

func TestDeterminismAcrossEnvInstances(t *testing.T) {
	sems := []Semantics{
		Strict,
		{FuseFMA: true, ReassocWidth: 4, UnsafeMath: true},
		{ReassocWidth: 8, ExtendedPrecision: true},
		{ReassocWidth: 1, ApproxMath: true},
	}
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = math.Sin(float64(i) * 0.7)
	}
	for _, sem := range sems {
		r1 := NewEnv(sem).Dot(xs, xs)
		r2 := NewEnv(sem).Dot(xs, xs)
		if r1 != r2 {
			t.Fatalf("semantics %v not deterministic", sem)
		}
	}
}

func TestPowApproxZeroBase(t *testing.T) {
	e := NewEnv(Semantics{ReassocWidth: 1, ApproxMath: true})
	if got := e.Pow(0, 2); got != 0 {
		t.Fatalf("approx Pow(0,2) = %g", got)
	}
	s := NewEnv(Strict)
	if got := s.Pow(2, 10); got != 1024 {
		t.Fatalf("Pow(2,10) = %g", got)
	}
}
