package coord

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/store"
)

// The journal is the coordinator's crash-safety story: one JSON file,
// rewritten through store.WriteFileAtomic after every acknowledged state
// change, so the file on disk is always one complete, internally
// consistent snapshot — never a torn one. Recovery is therefore trivial
// (read the newest snapshot) and conservative: an acknowledged lease
// stays leased across a restart (its worker keeps heartbeating the same
// lease ID), an acknowledged completion stays completed, and nothing is
// ever double-scheduled, because the journal is written *before* the
// acknowledgment leaves the coordinator.
//
// Version 3 adds failure containment on top of the v2 multi-tenant
// snapshot: per-shard attempt counts, quarantine flags, retained failure
// reports, and the per-campaign report counter. A v2 journal is a valid
// v3 journal with every new field zero, so the v2→v3 migration is a pure
// in-place re-stamp: decode, rewrite atomically under version 3, done —
// crash-tolerant because no file ever moves. Version 1 (one campaign per
// coordinator, PR 8) still migrates on recovery: the campaign is wrapped
// in the multi-tenant envelope under the ID its spec would be submitted
// under today, and its artifacts move from the flat artifacts/ root into
// the per-campaign directory that ID names.

// journalShard is one shard's persisted state.
type journalShard struct {
	Done         bool            `json:"done,omitempty"`
	Artifact     string          `json:"artifact,omitempty"`
	LeaseID      string          `json:"lease_id,omitempty"`
	Worker       string          `json:"worker,omitempty"`
	ExpiryUnixMS int64           `json:"expiry_unix_ms,omitempty"`
	Attempts     int             `json:"attempts,omitempty"`
	Quarantined  bool            `json:"quarantined,omitempty"`
	Failures     []FailureReport `json:"failures,omitempty"`
}

// journalCampaign is one campaign's persisted state.
type journalCampaign struct {
	ID          string         `json:"id"`
	Spec        Spec           `json:"spec"`
	Seq         int64          `json:"seq"`
	Releases    int64          `json:"releases"`
	FailReports int64          `json:"fail_reports,omitempty"`
	Shards      []journalShard `json:"shards"`
}

// journalFile is the persisted v2 coordinator snapshot.
type journalFile struct {
	Version   int               `json:"version"`
	Engine    string            `json:"engine"`
	Campaigns []journalCampaign `json:"campaigns"`
}

// journalFileV1 is the PR 8 single-campaign snapshot, read only to migrate.
type journalFileV1 struct {
	Version  int            `json:"version"`
	Spec     Spec           `json:"spec"`
	Seq      int64          `json:"seq"`
	Releases int64          `json:"releases"`
	Shards   []journalShard `json:"shards"`
}

// journalLocked atomically persists the current state. Callers hold mu.
func (c *Coordinator) journalLocked() error {
	jf := journalFile{Version: JournalVersion, Engine: c.engine,
		Campaigns: make([]journalCampaign, 0, len(c.order))}
	for _, id := range c.order {
		cp := c.campaigns[id]
		jc := journalCampaign{ID: cp.id, Spec: cp.spec, Seq: cp.seq,
			Releases: cp.releases, FailReports: cp.failReports,
			Shards: make([]journalShard, len(cp.shards))}
		for i := range cp.shards {
			s := &cp.shards[i]
			js := journalShard{Done: s.done, Artifact: s.artifact,
				LeaseID: s.leaseID, Worker: s.worker,
				Attempts: s.attempts, Quarantined: s.quarantined,
				Failures: s.failures}
			if !s.expiry.IsZero() {
				js.ExpiryUnixMS = s.expiry.UnixMilli()
			}
			jc.Shards[i] = js
		}
		jf.Campaigns = append(jf.Campaigns, jc)
	}
	buf, err := json.Marshal(jf)
	if err != nil {
		return fmt.Errorf("coord: encoding journal: %w", err)
	}
	if err := store.WriteFileAtomic(filepath.Join(c.dir, journalName), buf); err != nil {
		return fmt.Errorf("coord: writing journal: %w", err)
	}
	return nil
}

// recover rebuilds the tenancy from a journal's bytes. A v1 journal is
// migrated in place; a newer version refuses (it may record state this
// build cannot schedule faithfully), as does a journal fenced to a
// different engine — its artifacts are not interchangeable with anything
// this build would run.
func (c *Coordinator) recover(raw []byte) error {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("coord: %s holds an unreadable journal (%v) — refusing to treat it as a coordinator directory",
			c.dir, err)
	}
	var jf journalFile
	restamp := false
	switch probe.Version {
	case JournalVersion, 2:
		// A v2 snapshot is shape-compatible with v3 (the containment
		// fields simply decode to their zero values), so migration is a
		// re-stamp: decode here, rewrite under the current version once
		// the tenancy is rebuilt. A crash between decode and rewrite
		// leaves the v2 file untouched, so migration just reruns.
		if err := json.Unmarshal(raw, &jf); err != nil {
			return fmt.Errorf("coord: parsing journal: %w", err)
		}
		if jf.Engine != c.engine {
			return fmt.Errorf("coord: journaled tenancy is engine %q, this build is %q: results are not interchangeable",
				jf.Engine, c.engine)
		}
		restamp = probe.Version != JournalVersion
	case 1:
		migrated, err := c.migrateV1(raw)
		if err != nil {
			return err
		}
		jf = migrated
	default:
		return fmt.Errorf("coord: journal format v%d, this build reads v1-v%d", probe.Version, JournalVersion)
	}
	for _, jc := range jf.Campaigns {
		if jc.Spec.Shards < 1 || len(jc.Shards) != jc.Spec.Shards {
			return fmt.Errorf("coord: journal campaign %s declares %d shards but records %d", jc.ID, jc.Spec.Shards, len(jc.Shards))
		}
		if jc.Spec.Engine != c.engine {
			return fmt.Errorf("coord: journaled campaign %s is engine %q, this build is %q: results are not interchangeable",
				jc.ID, jc.Spec.Engine, c.engine)
		}
		if want := CampaignID(jc.Spec); jc.ID != want {
			return fmt.Errorf("coord: journal campaign %s does not match its spec (its coordinates name %s) — refusing a corrupt journal",
				jc.ID, want)
		}
		if _, dup := c.campaigns[jc.ID]; dup {
			return fmt.Errorf("coord: journal lists campaign %s twice", jc.ID)
		}
		if jc.FailReports < 0 {
			return fmt.Errorf("coord: journal campaign %s records a negative failure count — refusing a corrupt journal", jc.ID)
		}
		cp := &campaign{id: jc.ID, spec: jc.Spec, seq: jc.Seq,
			releases: jc.Releases, failReports: jc.FailReports,
			shards: make([]shardState, len(jc.Shards))}
		for i, js := range jc.Shards {
			s := shardState{done: js.Done, artifact: js.Artifact,
				leaseID: js.LeaseID, worker: js.Worker,
				attempts: js.Attempts, quarantined: js.Quarantined,
				failures: js.Failures}
			if js.Attempts < 0 {
				return fmt.Errorf("coord: journal campaign %s records a negative attempt count on shard %d — refusing a corrupt journal", jc.ID, i)
			}
			if js.Done && js.Quarantined {
				// A shard cannot be both finished and poisoned; a journal that
				// claims so was not written by this code, and trusting either
				// half could resurrect a quarantined shard as leasable.
				return fmt.Errorf("coord: journal campaign %s marks shard %d both complete and quarantined — refusing a corrupt journal", jc.ID, i)
			}
			if js.ExpiryUnixMS != 0 {
				s.expiry = time.UnixMilli(js.ExpiryUnixMS)
			}
			if s.done {
				// A completed shard must still have its artifact; a journal that
				// says done while the file is gone would validate-fail at the end
				// with a confusing error, so catch it at recovery.
				if s.artifact == "" {
					return fmt.Errorf("coord: journal campaign %s marks shard %d complete without an artifact", jc.ID, i)
				}
				if _, err := os.Stat(filepath.Join(c.ArtifactDir(jc.ID), s.artifact)); err != nil {
					return fmt.Errorf("coord: journal campaign %s marks shard %d complete but its artifact is unreadable: %v", jc.ID, i, err)
				}
			}
			cp.shards[i] = s
		}
		if err := os.MkdirAll(c.ArtifactDir(jc.ID), 0o755); err != nil {
			return fmt.Errorf("coord: recovering campaign %s: %w", jc.ID, err)
		}
		c.campaigns[jc.ID] = cp
		c.order = append(c.order, jc.ID)
	}
	if restamp {
		// Rewrite the freshly validated tenancy under the current journal
		// version so migration runs at most once. The v1 path rewrites
		// inside migrateV1 (it also moves artifacts); the v2 path lands
		// here.
		if err := c.journalLocked(); err != nil {
			return fmt.Errorf("coord: re-stamping migrated journal: %w", err)
		}
	}
	return nil
}

// migrateV1 lifts a PR 8 single-campaign journal into the v2 tenancy.
// The campaign keeps everything — done shards stay done, live lease IDs
// keep working, the straggler counter carries over — and gains the ID
// its spec would be submitted under today. Its artifacts move from the
// flat artifacts/ root into artifacts/<id>/, and the v2 journal is
// written before this returns, so migration runs at most once.
func (c *Coordinator) migrateV1(raw []byte) (journalFile, error) {
	var v1 journalFileV1
	if err := json.Unmarshal(raw, &v1); err != nil {
		return journalFile{}, fmt.Errorf("coord: parsing v1 journal: %w", err)
	}
	if v1.Spec.Engine != c.engine {
		return journalFile{}, fmt.Errorf("coord: journaled campaign is engine %q, this build is %q: results are not interchangeable",
			v1.Spec.Engine, c.engine)
	}
	if v1.Spec.Shards < 1 || len(v1.Shards) != v1.Spec.Shards {
		return journalFile{}, fmt.Errorf("coord: journal declares %d shards but records %d", v1.Spec.Shards, len(v1.Shards))
	}
	id := CampaignID(v1.Spec)
	if err := os.MkdirAll(c.ArtifactDir(id), 0o755); err != nil {
		return journalFile{}, fmt.Errorf("coord: migrating journal: %w", err)
	}
	for i := range v1.Shards {
		js := &v1.Shards[i]
		if !js.Done || js.Artifact == "" {
			continue
		}
		src := filepath.Join(c.dir, artifactsDir, js.Artifact)
		dst := filepath.Join(c.ArtifactDir(id), js.Artifact)
		if err := os.Rename(src, dst); err != nil {
			// A previous migration attempt may have moved this file and then
			// crashed before the v2 journal landed; the file already being in
			// place is success, not failure.
			if _, statErr := os.Stat(dst); statErr == nil && os.IsNotExist(err) {
				continue
			}
			return journalFile{}, fmt.Errorf("coord: migrating shard %d artifact: %w", i, err)
		}
	}
	jf := journalFile{Version: JournalVersion, Engine: c.engine,
		Campaigns: []journalCampaign{{ID: id, Spec: v1.Spec, Seq: v1.Seq,
			Releases: v1.Releases, Shards: v1.Shards}}}
	buf, err := json.Marshal(jf)
	if err != nil {
		return journalFile{}, fmt.Errorf("coord: encoding migrated journal: %w", err)
	}
	if err := store.WriteFileAtomic(filepath.Join(c.dir, journalName), buf); err != nil {
		return journalFile{}, fmt.Errorf("coord: writing migrated journal: %w", err)
	}
	return jf, nil
}
