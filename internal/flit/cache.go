package flit

import (
	"repro/internal/exec"
	"repro/internal/link"
)

// CacheKeyer is implemented by test cases whose run identity is not fully
// captured by Name() — e.g. the MPI variants of the MFEM examples, which
// share a name with their sequential counterpart but traverse the mesh in
// rank-partitioned order. The build/run cache keys on CacheKey() when
// present and Name() otherwise.
type CacheKeyer interface {
	CacheKey() string
}

// TestKey resolves the cache identity of a test case, unwrapping metric
// overrides: WithCompare changes only how results are judged, not what a
// run produces, so digit-restricted views of the same test share cached
// executions.
func TestKey(t TestCase) string {
	for {
		if k, ok := t.(CacheKeyer); ok {
			return k.CacheKey()
		}
		if u, ok := t.(interface{ Unwrap() TestCase }); ok {
			t = u.Unwrap()
			continue
		}
		return t.Name()
	}
}

type runVal struct {
	res Result
	err error
}

// Cache memoizes test runs keyed by (program, build plan, test): the
// concurrency-safe equivalent of FLiT's memoized bisect evaluations, where
// the same linkage combination is never re-executed. (The simulated link
// step is cheap map construction and is not memoized.) Cached Results are
// shared — callers must treat them as read-only, which every comparison in
// the reproduction does. A nil *Cache is valid and simply runs everything.
type Cache struct {
	runs  *exec.Cache[runVal]
	costs *exec.Cache[float64]
}

// NewCache returns an empty build/run cache.
func NewCache() *Cache {
	return &Cache{runs: exec.NewCache[runVal](), costs: exec.NewCache[float64]()}
}

// RunAll is the memoizing form of the package-level RunAll: the first
// evaluation of a (executable, test) pair executes, every repeat — across
// bisect steps, searches, and experiment drivers — is a cache hit with a
// bit-identical Result. Run errors are memoized too: the toolchain is
// deterministic, so a crashed combination crashes every time.
func (c *Cache) RunAll(t TestCase, ex *link.Executable) (Result, error) {
	if c == nil {
		return RunAll(t, ex)
	}
	v, _ := c.runs.Do(ex.Key()+"\x00"+TestKey(t), func() (runVal, error) {
		r, err := RunAll(t, ex)
		return runVal{res: r, err: err}, nil
	})
	return v.res, v.err
}

// Cost memoizes the deterministic cost model per (executable, root): the
// matrix runner charges every cell's runtime through this.
func (c *Cache) Cost(ex *link.Executable, root string) float64 {
	if c == nil {
		return ex.Cost(root)
	}
	v, _ := c.costs.Do(ex.Key()+"\x00"+root, func() (float64, error) {
		return ex.Cost(root), nil
	})
	return v
}

// Stats reports (hits, misses) of the run cache.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.runs.Stats()
}
