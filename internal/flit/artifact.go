package flit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/exec"
	"repro/internal/link"
	"repro/internal/store"
)

// ArtifactVersion is the serialization format version of shard artifacts.
const ArtifactVersion = 1

// EngineVersion identifies the evaluation semantics of this build: two
// engines may exchange shard artifacts only if they would compute
// bit-identical results for every key. Bump it whenever the simulated
// toolchain, the cost model, or the cache key format changes meaning —
// merge rejects artifacts from any other engine version, because replaying
// foreign results as if they were local computations would silently violate
// the byte-identity guarantee.
// (v3: injected-compilation cache keys render the epsilon as its IEEE-754
// bit pattern instead of a rounded decimal, so artifacts from earlier
// engines address injected cells by strings this build never produces.)
const EngineVersion = "flit-engine/3"

// Artifact is the self-describing result of one shard of a distributed
// run: every build/run result and cost-model value the shard computed,
// keyed by link.Executable.Key + TestKey (the build/run cache's own
// address space), plus enough metadata — format version, engine version,
// the canonical command, the shard coordinates — for `flit merge` to
// validate that a set of artifacts belongs together and to replay the
// original command with every expensive evaluation answered from the
// merged cache.
//
// Floating-point values are serialized as IEEE-754 bit patterns, not
// decimal JSON numbers: results may legitimately be NaN or ±Inf (the
// Laghos NaN-bug study exists because of them), and byte-identity of the
// merged output requires bit-identity of every replayed value.
type Artifact struct {
	Version int      `json:"version"`
	Engine  string   `json:"engine"`
	Command []string `json:"command,omitempty"`
	// CreatedUnix is an optional wall-clock stamp (Unix seconds) recording
	// when the artifact was written. Export leaves it zero — exports stay
	// deterministic byte-for-byte — and the CLI stamps artifacts on write
	// (Stamp) so `flit gc` can order the generations of a campaign. It is
	// metadata only: merge, warm-start, and delta ignore it.
	CreatedUnix int64        `json:"created_unix,omitempty"`
	Shard       exec.Shard   `json:"shard"`
	Runs        []RunRecord  `json:"runs"`
	Costs       []CostRecord `json:"costs"`
}

// Stamp records the current wall-clock time as the artifact's creation
// time, for generation ordering under `flit gc`.
func (a *Artifact) Stamp() { a.CreatedUnix = time.Now().Unix() }

// RunRecord is one memoized test execution.
type RunRecord struct {
	Key string `json:"key"`
	// Vec holds the result vector as IEEE-754 bit patterns; IsVec
	// distinguishes an empty vector from a scalar result.
	Vec    []uint64 `json:"vec,omitempty"`
	IsVec  bool     `json:"is_vec,omitempty"`
	Scalar uint64   `json:"scalar,omitempty"`
	// Err is the memoized run error's text; Segfault marks the ABI-crash
	// identity (link.ErrSegfault) so errors.Is keeps working after replay.
	Err      string `json:"err,omitempty"`
	Segfault bool   `json:"segfault,omitempty"`
}

// CostRecord is one memoized cost-model value.
type CostRecord struct {
	Key  string `json:"key"`
	Cost uint64 `json:"cost"` // IEEE-754 bit pattern
}

// replayedError stands in for a memoized run error restored from an
// artifact: same text, and the same errors.Is identity for the one error
// the drivers branch on (the mixed-binary segfault).
type replayedError struct {
	msg      string
	segfault bool
}

func (e *replayedError) Error() string { return e.msg }

func (e *replayedError) Is(target error) bool {
	return e.segfault && target == link.ErrSegfault
}

// recordOf serializes one memoized run entry: floats become IEEE-754 bit
// patterns, errors keep their text and segfault identity.
func recordOf(key string, v runVal) RunRecord {
	r := RunRecord{Key: key}
	if v.res.IsVec() {
		r.IsVec = true
		r.Vec = make([]uint64, len(v.res.Vec))
		for i, x := range v.res.Vec {
			r.Vec[i] = math.Float64bits(x)
		}
	} else {
		r.Scalar = math.Float64bits(v.res.Scalar)
	}
	if v.err != nil {
		r.Err = v.err.Error()
		r.Segfault = errors.Is(v.err, link.ErrSegfault)
	}
	return r
}

// Export snapshots every completed entry of the cache into an artifact.
// The records are sorted by key, so the same cache contents always
// serialize to the same bytes.
func (c *Cache) Export(shard exec.Shard, command []string) *Artifact {
	a := &Artifact{
		Version: ArtifactVersion,
		Engine:  EngineVersion,
		Command: command,
		Shard:   shard,
		Runs:    []RunRecord{},
		Costs:   []CostRecord{},
	}
	if c == nil {
		return a
	}
	c.runs.Each(func(key string, v runVal, _ error) {
		a.Runs = append(a.Runs, recordOf(key, v))
	})
	c.costs.Each(func(key string, v float64, err error) {
		if err != nil {
			// A cost entry can memoize a build error (key-first CostPlanned
			// on an unbuildable plan); exporting it would seed a future run
			// with a spurious zero-cost success.
			return
		}
		a.Costs = append(a.Costs, CostRecord{Key: key, Cost: math.Float64bits(v)})
	})
	sort.Slice(a.Runs, func(i, j int) bool { return a.Runs[i].Key < a.Runs[j].Key })
	sort.Slice(a.Costs, func(i, j int) bool { return a.Costs[i].Key < a.Costs[j].Key })
	return a
}

// Import seeds the cache with an artifact's records. Existing entries are
// never overwritten — on a deterministic engine an artifact entry and a
// local computation agree, so first-in wins is safe. It rejects artifacts
// from a different format or engine version: foreign results replayed as
// local ones would break the byte-identity guarantee silently.
func (c *Cache) Import(a *Artifact) error {
	if err := a.Check(); err != nil {
		return err
	}
	if c == nil {
		return errors.New("flit: importing into a nil cache")
	}
	for _, r := range a.Runs {
		c.runs.Seed(r.Key, runValOf(r), nil)
	}
	for _, co := range a.Costs {
		c.costs.Seed(co.Key, math.Float64frombits(co.Cost), nil)
	}
	return nil
}

// runValOf deserializes one run record back into the cache's value form:
// IEEE-754 bit patterns become floats, errors regain their text and — for
// the one error identity the drivers branch on — their errors.Is
// behavior. It is the exact inverse of recordOf, shared by artifact
// import and the persistent run store's decode path.
func runValOf(r RunRecord) runVal {
	v := runVal{}
	if r.IsVec {
		v.res.Vec = make([]float64, len(r.Vec))
		for i, bits := range r.Vec {
			v.res.Vec[i] = math.Float64frombits(bits)
		}
	} else {
		v.res.Scalar = math.Float64frombits(r.Scalar)
	}
	if r.Err != "" || r.Segfault {
		if r.Segfault && r.Err == link.ErrSegfault.Error() {
			v.err = link.ErrSegfault
		} else {
			v.err = &replayedError{msg: r.Err, segfault: r.Segfault}
		}
	}
	return v
}

// validate rejects run records whose fields contradict each other — shapes
// recordOf can never produce, so they mark a hand-edited, torn, or foreign
// file. Importing one silently would drop data: a scalar-flagged record's
// vector is never read back, so v.Vec would vanish into a zero scalar.
func (r RunRecord) validate() error {
	if !r.IsVec && len(r.Vec) > 0 {
		return fmt.Errorf("flit: run record %q is flagged scalar but carries a %d-element vector", r.Key, len(r.Vec))
	}
	if r.IsVec && r.Scalar != 0 {
		return fmt.Errorf("flit: run record %q is flagged vector but carries a scalar value", r.Key)
	}
	return nil
}

// Check validates an artifact's format and engine versions and its
// structural integrity. A key appearing twice in one artifact marks a
// malformed (hand-edited, truncated-and-rejoined, or adversarial) file: a
// healthy export snapshots a map and can never produce duplicates, and
// importing one silently would let whichever copy seeds first answer every
// evaluation of that key — so duplicates are rejected outright, even when
// the copies agree. Internally inconsistent run records (a scalar-flagged
// record carrying a vector, or the reverse) are rejected the same way.
func (a *Artifact) Check() error {
	if a.Version != ArtifactVersion {
		return fmt.Errorf("flit: artifact format v%d, this build reads v%d", a.Version, ArtifactVersion)
	}
	if a.Engine != EngineVersion {
		return fmt.Errorf("flit: artifact from engine %q, this build is %q: results are not interchangeable",
			a.Engine, EngineVersion)
	}
	if err := a.Shard.Validate(); err != nil {
		return err
	}
	seen := make(map[string]bool, len(a.Runs))
	for _, r := range a.Runs {
		if err := r.validate(); err != nil {
			return err
		}
		if seen[r.Key] {
			return fmt.Errorf("flit: artifact records run key %q twice", r.Key)
		}
		seen[r.Key] = true
	}
	clear(seen)
	for _, co := range a.Costs {
		if seen[co.Key] {
			return fmt.Errorf("flit: artifact records cost key %q twice", co.Key)
		}
		seen[co.Key] = true
	}
	return nil
}

// ValidateShardSet checks that a set of artifacts is mergeable: every
// artifact passes Check, all record the same command, and the shard
// coordinates form a complete partition — N artifacts covering indices
// 0..N-1 of a count-N sharding (a single unsharded artifact is the N=1
// case). Merging an incomplete or mixed set would replay a run that no
// unsharded execution could have produced.
func ValidateShardSet(arts []*Artifact) error {
	if len(arts) == 0 {
		return errors.New("flit: no shard artifacts to merge")
	}
	for i, a := range arts {
		if err := a.Check(); err != nil {
			return fmt.Errorf("artifact %d: %w", i, err)
		}
		if !equalCommand(a.Command, arts[0].Command) {
			return fmt.Errorf("artifact %d records command %q, artifact 0 records %q",
				i, a.Command, arts[0].Command)
		}
	}
	// All artifacts must agree on the partition width before per-index
	// accounting means anything.
	count := arts[0].Shard.Count
	if count < 1 {
		count = 1
	}
	for i, a := range arts {
		c := a.Shard.Count
		if c < 1 {
			c = 1
		}
		if c != count {
			return fmt.Errorf("artifact %d is shard %s of a %d-way sharding, artifact 0 is %d-way — refusing to merge mixed partitions",
				i, a.Shard, c, count)
		}
	}
	// Tally coverage of 0..count-1 and report every gap and every repeat
	// in one message: the coordinator (and a human re-running workers)
	// needs to know exactly which indices to produce or discard, not just
	// that the set is wrong.
	tally := make([]int, count)
	for _, a := range arts {
		tally[a.Shard.Index]++
	}
	var missing, duplicated []int
	for i, n := range tally {
		switch {
		case n == 0:
			missing = append(missing, i)
		case n > 1:
			duplicated = append(duplicated, i)
		}
	}
	if len(missing) > 0 || len(duplicated) > 0 {
		return fmt.Errorf("flit: incomplete %d-way shard partition: %d artifacts given, missing shard indices %s, duplicated shard indices %s",
			count, len(arts), formatIndices(missing), formatIndices(duplicated))
	}
	return nil
}

// formatIndices renders a shard-index list for partition diagnostics;
// an empty list reads as "none" so the message stays scannable.
func formatIndices(idx []int) string {
	if len(idx) == 0 {
		return "none"
	}
	parts := make([]string, len(idx))
	for i, v := range idx {
		parts[i] = strconv.Itoa(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func equalCommand(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON serializes the artifact (indented, key-sorted, deterministic).
func (a *Artifact) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// ReadArtifact parses one artifact from JSON. The stream must hold
// exactly one JSON object: trailing data after it — two artifacts
// concatenated, a file truncated and rejoined, appended garbage — is
// rejected rather than silently parsing the first object and discarding
// the rest, which would replay a partial result set as if it were whole.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("flit: reading artifact: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("flit: reading artifact: trailing data after the JSON object")
	}
	return &a, nil
}

// WriteArtifactFile durably writes the artifact to path: the JSON is
// staged in a temp file, fsynced, and renamed into place, so a crash
// mid-write leaves the previous file (or nothing) — never a truncated
// artifact that poisons the warm starts and merges reading it later.
func WriteArtifactFile(a *Artifact, path string) error {
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		return err
	}
	return store.WriteFileAtomic(path, buf.Bytes())
}

// ReadArtifactFile reads one artifact from path.
func ReadArtifactFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := ReadArtifact(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
