package laghos

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/flit"
	"repro/internal/link"
)

func machineFor(t *testing.T, c comp.Compilation) *link.Machine {
	t.Helper()
	ex, err := link.FullBuild(Program(), c)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

var (
	gccO2 = comp.Compilation{Compiler: comp.GCC, OptLevel: "-O2"}
	xlcO2 = comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"}
	xlcO3 = comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"}
)

func TestProgramValid(t *testing.T) {
	p := Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Symbols() {
		for _, c := range s.Callees {
			if p.Symbol(c) == nil {
				t.Errorf("symbol %s lists unknown callee %s", s.Name, c)
			}
		}
	}
	culprit := p.Symbol("LagrangianHydroOperator::UpdateQuadratureData")
	if culprit == nil || !culprit.Exported {
		t.Fatal("culprit symbol missing or not exported")
	}
}

func TestSimulationPhysicalSanity(t *testing.T) {
	m := machineFor(t, gccO2)
	st := Simulate(m, Options{}, 0.4)
	if len(st.E) != 32 || len(st.X) != 33 {
		t.Fatalf("unexpected sizes: %d cells, %d nodes", len(st.E), len(st.X))
	}
	for i, e := range st.E {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			t.Fatalf("energy[%d] = %g", i, e)
		}
	}
	// The shock must have moved energy around: not all cells equal.
	if st.E[0] == st.E[31] {
		t.Fatal("no dynamics happened")
	}
	// Nodes stay ordered (no mesh tangling at these step counts).
	for i := 1; i < len(st.X); i++ {
		if st.X[i] <= st.X[i-1] {
			t.Fatalf("mesh tangled at node %d", i)
		}
	}
	vol := Volume(m, st)
	if vol <= 0.9 {
		t.Fatalf("domain volume %g collapsed", vol)
	}
	if MinWidth(m, st) <= 0 {
		t.Fatal("non-positive cell width")
	}
}

func TestDeterminism(t *testing.T) {
	m1 := machineFor(t, gccO2)
	m2 := machineFor(t, gccO2)
	a := Simulate(m1, Options{}, 0.4)
	b := Simulate(m2, Options{}, 0.4)
	for i := range a.E {
		if a.E[i] != b.E[i] {
			t.Fatalf("non-deterministic energy at %d", i)
		}
	}
}

func TestTrustedCompilationsAgree(t *testing.T) {
	// The developers trusted g++ -O2 and xlc++ -O2: both must produce the
	// baseline answer bitwise.
	base := machineFor(t, comp.Baseline())
	want := Simulate(base, Options{}, 0.4)
	for _, c := range []comp.Compilation{gccO2, xlcO2} {
		m := machineFor(t, c)
		got := Simulate(m, Options{}, 0.4)
		for i := range want.E {
			if got.E[i] != want.E[i] {
				t.Fatalf("%s deviates at cell %d: %g vs %g", c, i, got.E[i], want.E[i])
			}
		}
	}
	// xlc++ -O3 -qstrict=vectorprecision keeps FMA contraction, so it may
	// differ in ulps — but never at the percent level: it is a trusted
	// baseline in Table 4.
	strictQ := comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3",
		Switches: "-qstrict=vectorprecision"}
	got := Simulate(machineFor(t, strictQ), Options{}, 0.4)
	var dn, bn float64
	for i := range want.E {
		d := got.E[i] - want.E[i]
		dn += d * d
		bn += want.E[i] * want.E[i]
	}
	if rel := math.Sqrt(dn) / math.Sqrt(bn); rel > 1e-9 {
		t.Fatalf("xlc -O3 -qstrict deviates by %.3g (want ulp-level only)", rel)
	}
}

func TestXlcO3DivergesSignificantly(t *testing.T) {
	base := machineFor(t, xlcO2)
	opt := Options{}
	want := Simulate(base, opt, 0.4)
	m := machineFor(t, xlcO3)
	got := Simulate(m, opt, 0.4)
	bn := EnergyNorm(base, want.E)
	gn := EnergyNorm(m, got.E)
	rel := math.Abs(gn-bn) / bn
	// The motivating example: an 11.2% relative difference in the energy
	// norm from -O2 to -O3 alone. Accept the same order of magnitude.
	if rel < 0.01 {
		t.Fatalf("xlc -O3 energy norm moved only %.3g%% (want percents)", rel*100)
	}
	if rel > 0.60 {
		t.Fatalf("xlc -O3 energy norm moved %.3g%%: unphysically far", rel*100)
	}
}

func TestEpsilonFixRestoresAgreement(t *testing.T) {
	opt := Options{EpsilonFix: true}
	base := Simulate(machineFor(t, xlcO2), opt, 0.4)
	fixed := Simulate(machineFor(t, xlcO3), opt, 0.4)
	bn, fn := 0.0, 0.0
	for i := range base.E {
		d := base.E[i] - fixed.E[i]
		bn += base.E[i] * base.E[i]
		fn += d * d
	}
	rel := math.Sqrt(fn) / math.Sqrt(bn)
	// "Changing this to an epsilon based comparison gave results close to
	// the trusted results, even under xlc++ -O3."
	if rel > 1e-4 {
		t.Fatalf("epsilon fix still %.3g%% off", rel*100)
	}
	// And the fix must actually matter: without it the gap is percents.
	broken := Simulate(machineFor(t, xlcO3), Options{}, 0.4)
	var dn float64
	for i := range base.E {
		d := base.E[i] - broken.E[i]
		dn += d * d
	}
	if math.Sqrt(dn)/math.Sqrt(bn) < rel {
		t.Fatal("epsilon fix did not improve agreement")
	}
}

func TestNaNBugPoisonsOnlyXlc(t *testing.T) {
	opt := Options{NaNBug: true}
	gcc := Simulate(machineFor(t, gccO2), opt, 0.4)
	for _, e := range gcc.E {
		if math.IsNaN(e) {
			t.Fatal("NaN bug fired under g++")
		}
	}
	xlc := Simulate(machineFor(t, xlcO2), opt, 0.4)
	sawNaN := false
	for _, e := range xlc.E {
		if math.IsNaN(e) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Fatal("NaN bug did not fire under xlc++")
	}
}

func TestCaseProtocol(t *testing.T) {
	c := NewCase()
	if c.Name() != "Laghos" || c.Root() != "main_laghos" {
		t.Fatalf("case identity wrong: %s/%s", c.Name(), c.Root())
	}
	if (&Case{Opt: Options{NaNBug: true}}).Name() != "LaghosNaNBug" {
		t.Fatal("NaN case name wrong")
	}
	if (&Case{Opt: Options{EpsilonFix: true}}).Name() != "LaghosEpsFix" {
		t.Fatal("eps case name wrong")
	}
	ex, err := link.FullBuild(Program(), gccO2)
	if err != nil {
		t.Fatal(err)
	}
	r, err := flit.RunAll(c, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vec) != 34 { // 32 cells + norm + volume
		t.Fatalf("result has %d values", len(r.Vec))
	}
	if c.Compare(r, r) != 0 {
		t.Fatal("self-compare nonzero")
	}
}

func TestDigitLimitedCompareHidesSmallNoise(t *testing.T) {
	// Digit-limited comparison (Table 4) must see the big q-branch
	// divergence but ignore sub-digit reduction noise.
	c := NewCase()
	baseEx, _ := link.FullBuild(Program(), xlcO2)
	base, err := flit.RunAll(c, baseEx)
	if err != nil {
		t.Fatal(err)
	}
	varEx, _ := link.FullBuild(Program(), xlcO3)
	got, err := flit.RunAll(c, varEx)
	if err != nil {
		t.Fatal(err)
	}
	full := flit.L2Diff(base, got)
	d2 := flit.DigitL2Diff(2)(base, got)
	if full == 0 {
		t.Fatal("xlc O3 did not deviate")
	}
	if d2 == 0 {
		t.Fatal("2-digit compare missed a percent-level divergence")
	}
}
