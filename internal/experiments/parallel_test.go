package experiments

import (
	"strings"
	"testing"

	"repro/internal/comp"
)

// TestSweepParallelEquivalence is the PR's headline acceptance proof: the
// full experiments sweep — matrix, Table 2 bisect characterization, Laghos
// case study, sampled injection campaign — produces byte-identical output
// at -j 8 and -j 1.
func TestSweepParallelEquivalence(t *testing.T) {
	seq, err := Sweep(1)
	if err != nil {
		t.Fatalf("sequential sweep: %v", err)
	}
	par, err := Sweep(8)
	if err != nil {
		t.Fatalf("parallel sweep: %v", err)
	}
	if seq != par {
		line := 0
		seqLines, parLines := strings.Split(seq, "\n"), strings.Split(par, "\n")
		for i := 0; i < len(seqLines) && i < len(parLines); i++ {
			if seqLines[i] != parLines[i] {
				line = i
				break
			}
		}
		t.Fatalf("sweep digests differ at line %d:\n  -j 1: %q\n  -j 8: %q",
			line, seqLines[line], parLines[line])
	}
	if !strings.Contains(seq, "== Table 5") {
		t.Fatal("sweep digest missing sections")
	}
}

// TestBisectFoundSetEquivalence asserts a parallel bisect search returns
// the identical found set — files, symbols, values, statuses, and the
// paper's execution count — as a sequential one.
func TestBisectFoundSetEquivalence(t *testing.T) {
	variable := comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}

	seqEng := NewEngine(1)
	parEng := NewEngine(8)
	for _, test := range []string{"Example08", "Example13"} {
		seqWf := seqEng.Workflow()
		seqReport, err := seqWf.Bisect(seqWf.TestByName(test), variable, 0)
		if err != nil {
			t.Fatalf("%s sequential: %v", test, err)
		}
		parWf := parEng.Workflow()
		parReport, err := parWf.Bisect(parWf.TestByName(test), variable, 0)
		if err != nil {
			t.Fatalf("%s parallel: %v", test, err)
		}
		if seqReport.Execs != parReport.Execs {
			t.Errorf("%s: execs %d (seq) != %d (par)", test, seqReport.Execs, parReport.Execs)
		}
		if len(seqReport.Files) != len(parReport.Files) {
			t.Fatalf("%s: %d files (seq) != %d (par)", test, len(seqReport.Files), len(parReport.Files))
		}
		for i := range seqReport.Files {
			sf, pf := seqReport.Files[i], parReport.Files[i]
			if sf.File != pf.File || sf.Value != pf.Value || sf.Status != pf.Status {
				t.Errorf("%s file %d: (%s %g %v) != (%s %g %v)",
					test, i, sf.File, sf.Value, sf.Status, pf.File, pf.Value, pf.Status)
			}
			if len(sf.Symbols) != len(pf.Symbols) {
				t.Fatalf("%s %s: %d symbols != %d", test, sf.File, len(sf.Symbols), len(pf.Symbols))
			}
			for j := range sf.Symbols {
				if sf.Symbols[j] != pf.Symbols[j] {
					t.Errorf("%s %s symbol %d: %v != %v",
						test, sf.File, j, sf.Symbols[j], pf.Symbols[j])
				}
			}
		}
	}
}

// TestCacheEngages proves the build/run cache actually memoizes across the
// sweep's consumers: a fresh engine that runs Table 4 (twelve comparison
// regimes over the same divergence) must see far more cache hits than
// misses.
func TestCacheEngages(t *testing.T) {
	e := NewEngine(2)
	if _, err := e.Table4(); err != nil {
		t.Fatal(err)
	}
	hits, misses := e.Cache().Stats()
	if misses == 0 {
		t.Fatal("cache recorded no misses — nothing went through it")
	}
	if hits < misses {
		t.Errorf("cache hits %d < misses %d; memoization is not engaging", hits, misses)
	}
}

// TestSetParallelismRebuildsDefault exercises the package-level knob the
// CLI's -j flag maps to.
func TestSetParallelismRebuildsDefault(t *testing.T) {
	defer SetParallelism(0) // restore the CPU-bound default for other tests

	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("Parallelism() = %d after SetParallelism(3)", got)
	}
	first := Default()
	SetParallelism(1)
	if got := Parallelism(); got != 1 {
		t.Errorf("Parallelism() = %d after SetParallelism(1)", got)
	}
	if Default() == first {
		t.Error("SetParallelism did not install a fresh default engine")
	}
}
