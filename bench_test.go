// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§3). Each bench prints the regenerated artifact once and
// reports the headline shape numbers as custom metrics, so
// `go test -bench=. -benchmem` reproduces the study end to end.
//
// Absolute values differ from the paper (the substrate is a simulated
// toolchain; see DESIGN.md); EXPERIMENTS.md records paper-vs-measured for
// every artifact.
package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/comp"
	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/inject"
	"repro/internal/store"
)

var printOnce sync.Map

// once logs s a single time per key across benchmark iterations.
func once(b *testing.B, key, s string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		b.Log("\n" + s)
	}
}

// BenchmarkTable1CompilerSummary regenerates Table 1: per-compiler variable
// run counts and best average flags over the 19-example × 244-compilation
// matrix.
func BenchmarkTable1CompilerSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		once(b, "table1", experiments.RenderTable1(rows))
		for _, r := range rows {
			if r.Compiler == comp.ICPC {
				b.ReportMetric(100*float64(r.VariableRuns)/float64(r.TotalRuns),
					"icpc-variable-%")
			}
		}
	}
}

// BenchmarkFigure4SpeedupScatter regenerates the two panels of Figure 4:
// per-compilation speedups for examples 5 and 9, split bitwise-equal vs
// variable.
func BenchmarkFigure4SpeedupScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ex := range []int{5, 9} {
			s, err := experiments.Figure4(ex)
			if err != nil {
				b.Fatal(err)
			}
			if ex == 5 && s.HasEqual {
				b.ReportMetric(s.FastestEqual.Speedup, "ex5-fastest-equal-speedup")
			}
		}
	}
}

// BenchmarkFigure5FastestHistogram regenerates Figure 5: the fastest
// bitwise-equal compilation per compiler versus the fastest variable one,
// for each of the 19 examples.
func BenchmarkFigure5FastestHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		repro := 0
		for _, r := range rows {
			if r.FastestIsReproducible {
				repro++
			}
		}
		b.ReportMetric(float64(repro), "fastest-reproducible-of-19")
	}
}

// BenchmarkFigure6Variability regenerates Figure 6: per-example counts of
// variability-inducing compilations and relative-error spreads.
func BenchmarkFigure6Variability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[12].MaxErr, "ex13-max-relative-error")
	}
}

// BenchmarkTable2BisectCharacterization regenerates Table 2: FLiT Bisect on
// every variability-inducing (test, compilation) pair of the matrix, with
// per-compiler execution counts and File/Symbol Bisect success rates.
func BenchmarkTable2BisectCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, total, err := experiments.Table2(0)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "table2", experiments.RenderTable2(rows))
		b.ReportMetric(float64(total), "variable-pairs")
		var execs, n float64
		for _, r := range rows {
			if r.FileTotal > 0 {
				execs += r.AvgExecs
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(execs/n, "avg-test-executions")
		}
	}
}

// BenchmarkTable3CodeStats regenerates Table 3: the mini-MFEM code census.
func BenchmarkTable3CodeStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		b.ReportMetric(rows[2].Measured, "total-functions")
	}
}

// BenchmarkFindings regenerates Findings 1 and 2: the mat/vec blame of
// example 8 and the single-function AddMult_a_AAt blame of example 13.
func BenchmarkFindings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := experiments.Findings()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(fs[0].Functions)), "ex8-blamed-functions")
		b.ReportMetric(fs[1].MaxRelErr, "ex13-max-relative-error")
	}
}

// BenchmarkMotivation regenerates the §1 motivating example: the Laghos
// xlc++ -O2 → -O3 energy-norm jump and speedup.
func BenchmarkMotivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mo, err := experiments.RunMotivation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*mo.RelDiff, "energy-norm-shift-%")
		b.ReportMetric(mo.SpeedupFactor, "O2-over-O3-speedup")
	}
}

// BenchmarkTable4Laghos regenerates Table 4: digit-limited Bisect of
// xlc++ -O3 against the three trusted baselines with k ∈ {1, 2, all}.
func BenchmarkTable4Laghos(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		once(b, "table4", experiments.RenderTable4(rows))
		b.ReportMetric(float64(rows[0].Runs[0]), "k1-runs")
	}
}

// BenchmarkLaghosNaNBug regenerates the automated re-discovery of the
// XOR-swap undefined-behavior bug (the paper's 45-execution search).
func BenchmarkLaghosNaNBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunNaNBug()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Execs), "executions")
	}
}

// BenchmarkTable5Injection regenerates Table 5: the full 1,094-site × 4-OP'
// injection campaign (4,376 runs) with precision/recall scoring.
func BenchmarkTable5Injection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Table5(1)
		if err != nil {
			b.Fatal(err)
		}
		once(b, "table5", experiments.RenderTable5(sum))
		b.ReportMetric(float64(sum.Total), "injection-runs")
		b.ReportMetric(100*sum.Precision(), "precision-%")
		b.ReportMetric(100*sum.Recall(), "recall-%")
		b.ReportMetric(sum.AvgExecs(), "avg-executions")
		if sum.Counts[inject.Wrong] != 0 || sum.Counts[inject.Missed] != 0 {
			b.Fatalf("precision/recall violated: %v", sum.Counts)
		}
	}
}

// BenchmarkParallelEngineSweep times the experiments sweep (matrix +
// Table 2 characterization + Laghos case study + sampled injection
// campaign) under four engine configurations and reports the speedups the
// execution engine buys:
//
//   - j1-uncached: the seed's behavior — sequential, every build/run pair
//     re-executed;
//   - j1-cached: sequential with the memoizing build/run cache;
//   - warm: sequential, warm-started from the j1-cached run's exported
//     artifact — the steady state of an incremental campaign, where the
//     key-first engine answers every covered evaluation by plan key and
//     never links, never builds a machine, and never runs a test;
//   - j4-cached: four-way fan-out plus the cache;
//   - shard2: the distributed protocol — two shard engines each computing
//     half the job space, artifact export/import, and the merge replay
//     (shard2-max-sec is the slower shard, the wall-clock of a two-machine
//     campaign; shard2-merge-sec is the replay cost on the collector).
//
// "cache-speedup-x" is j1-uncached vs warm: what the memoized cache is
// worth once it is populated, which is the state every re-run of a
// campaign is in. (Before key-first execution this metric compared
// j1-uncached against a fresh j1-cached run and saturated around 1.1–1.4x,
// because a fresh run's time is dominated by the unique evaluations both
// configurations must execute once; that first-run ratio is still recorded
// as "cache-firstrun-speedup-x".) The warm sweep is asserted byte-identical
// to the cold ones and must materialize zero executables through the
// key-first engine — the build counter is part of the benchmark's
// contract, not just a metric. (The Motivation narrative's two direct,
// cache-free simulations are outside the engine by design.)
// "j4-vs-j1-speedup-x" measures the worker-pool fan-out and scales with
// available CPUs — on a single-CPU host it is ~1.0 by physics; the pool
// still bounds concurrency correctly and the outputs stay bit-identical
// (the sweep digests are compared every iteration, including the merged
// replay's).
//
// With BENCH_SHARD_JSON=path set, the run appends its metrics as one JSON
// line to path — scripts/ci.sh points it at BENCH_shard.json so the
// perf trajectory of the engine is recorded run over run.
func BenchmarkParallelEngineSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		uncached, err := experiments.NewEngineNoCache(1).SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		uncachedSec := time.Since(t0).Seconds()

		seqEng := experiments.NewEngine(1)
		t0 = time.Now()
		seq, err := seqEng.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		seqSec := time.Since(t0).Seconds()

		warmEng := experiments.NewEngine(1)
		if err := warmEng.WarmStart(seqEng.ExportArtifact(nil)); err != nil {
			b.Fatal(err)
		}
		t0 = time.Now()
		warm, err := warmEng.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		warmSec := time.Since(t0).Seconds()
		wm := warmEng.CacheMetrics()
		if wm.Builds != 0 {
			b.Fatalf("warm-started sweep materialized %d executables, want 0", wm.Builds)
		}
		if wm.Runs.Misses != 0 {
			b.Fatalf("warm-started sweep missed the cache %d times, want 0", wm.Runs.Misses)
		}

		t0 = time.Now()
		par, err := experiments.Sweep(4)
		if err != nil {
			b.Fatal(err)
		}
		parSec := time.Since(t0).Seconds()

		// The distributed protocol, in-process: each shard engine computes
		// its half of every fan-out, the collector merges the artifacts and
		// replays the sweep from the union cache.
		shardSec := [2]float64{}
		arts := make([]*flit.Artifact, 2)
		for s := 0; s < 2; s++ {
			t0 = time.Now()
			eng := experiments.NewEngine(1)
			eng.SetShard(exec.Shard{Index: s, Count: 2})
			if _, err := eng.SweepDigest(); err != nil {
				b.Fatal(err)
			}
			arts[s] = eng.ExportArtifact(nil)
			shardSec[s] = time.Since(t0).Seconds()
		}
		t0 = time.Now()
		mergedEng := experiments.NewEngine(1)
		if err := mergedEng.ImportArtifacts(arts...); err != nil {
			b.Fatal(err)
		}
		merged, err := mergedEng.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		mergeSec := time.Since(t0).Seconds()
		shardMax := math.Max(shardSec[0], shardSec[1])

		if seq != par || seq != uncached || seq != merged || seq != warm {
			b.Fatal("sweep digests differ across engine configurations")
		}
		b.ReportMetric(uncachedSec, "j1-uncached-sec")
		b.ReportMetric(seqSec, "j1-cached-sec")
		b.ReportMetric(warmSec, "warm-sweep-sec")
		b.ReportMetric(float64(wm.SkippedBuilds), "warm-skipped-builds")
		b.ReportMetric(parSec, "j4-cached-sec")
		b.ReportMetric(shardMax, "shard2-max-sec")
		b.ReportMetric(mergeSec, "shard2-merge-sec")
		b.ReportMetric(uncachedSec/warmSec, "cache-speedup-x")
		b.ReportMetric(uncachedSec/seqSec, "cache-firstrun-speedup-x")
		b.ReportMetric(seqSec/parSec, "j4-vs-j1-speedup-x")
		b.ReportMetric(uncachedSec/parSec, "engine-vs-seed-speedup-x")
		b.ReportMetric(seqSec/(shardMax+mergeSec), "shard2-vs-j1-speedup-x")

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":                    "BenchmarkParallelEngineSweep",
				"engine":                   flit.EngineVersion,
				"unix":                     time.Now().Unix(),
				"j1_uncached_sec":          uncachedSec,
				"j1_cached_sec":            seqSec,
				"warm_sweep_sec":           warmSec,
				"warm_skipped_builds":      wm.SkippedBuilds,
				"j4_cached_sec":            parSec,
				"shard2_max_sec":           shardMax,
				"shard2_merge_sec":         mergeSec,
				"cache_speedup_x":          uncachedSec / warmSec,
				"cache_firstrun_speedup_x": uncachedSec / seqSec,
				"j4_vs_j1_speedup_x":       seqSec / parSec,
				"shard2_vs_j1_speedup_x":   seqSec / (shardMax + mergeSec),
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// BenchmarkWarmPath is the key-first engine's dedicated contract check: a
// cold j1 sweep, its artifact export, and a warm-started re-run of the
// identical sweep must produce byte-identical digests while the warm run
// materializes zero executables and misses the run cache zero times —
// every covered cell replays from the seeded entry with no link step, no
// ABI-hazard scan, no machine, and no test execution. The benchmark
// reports what that buys (warm-sweep-sec vs cold-sweep-sec) and how much
// build work was skipped, and appends warm_sweep_sec / warm_skipped_builds
// / warm_vs_cold_speedup_x to BENCH_shard.json when BENCH_SHARD_JSON is
// set (cold-cached vs warm: the wall-clock of generation N+1 of an
// unchanged campaign relative to generation 1; the uncached-vs-warm ratio
// is the sweep benchmark's cache_speedup_x). "Zero build work" is scoped
// to the execution engine: the Motivation narrative inside the sweep runs
// two direct, cache-free simulations by design (it is a prose demo, not a
// matrix evaluation), which the key-first counters rightly do not see.
func BenchmarkWarmPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cold := experiments.NewEngine(1)
		t0 := time.Now()
		coldDigest, err := cold.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		coldSec := time.Since(t0).Seconds()
		art := cold.ExportArtifact(nil)

		warm := experiments.NewEngine(1)
		if err := warm.WarmStart(art); err != nil {
			b.Fatal(err)
		}
		t0 = time.Now()
		warmDigest, err := warm.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		warmSec := time.Since(t0).Seconds()

		if coldDigest != warmDigest {
			b.Fatal("warm-started sweep digest differs from the cold run's")
		}
		m := warm.CacheMetrics()
		if m.Builds != 0 {
			b.Fatalf("warm-started sweep materialized %d executables, want 0", m.Builds)
		}
		if m.Runs.Misses != 0 {
			b.Fatalf("warm-started sweep missed the run cache %d times, want 0", m.Runs.Misses)
		}
		b.ReportMetric(coldSec, "cold-sweep-sec")
		b.ReportMetric(warmSec, "warm-sweep-sec")
		b.ReportMetric(coldSec/warmSec, "warm-vs-cold-speedup-x")
		b.ReportMetric(float64(m.SkippedBuilds), "warm-skipped-builds")

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":                  "BenchmarkWarmPath",
				"engine":                 flit.EngineVersion,
				"unix":                   time.Now().Unix(),
				"cold_sweep_sec":         coldSec,
				"warm_sweep_sec":         warmSec,
				"warm_skipped_builds":    m.SkippedBuilds,
				"warm_vs_cold_speedup_x": coldSec / warmSec,
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// BenchmarkSpeculativeBisect times the speculative bisect engine on the
// paper's two single-search workloads — the Laghos NaN-bug rediscovery
// (full BisectAll) and the Example13 hierarchical search behind Finding 2 —
// at -j 1 (the paper's sequential probe order) and -j 8 (speculative
// halving, singleton prefetch, parallel frontier expansion). The findings
// and the paper execution counts are asserted identical; the metrics
// record what speculation costs (spec-execs, the discarded background
// probes) and buys (wall-clock — the j8-vs-j1 ratio needs multi-core
// hardware to show a win; on one CPU it is ~1.0 by physics).
//
// With BENCH_SHARD_JSON=path set, the run appends bisect_j1_sec,
// bisect_j8_sec, and bisect_spec_execs as one JSON line — scripts/ci.sh
// points it at BENCH_shard.json next to the engine sweep's timings.
func BenchmarkSpeculativeBisect(b *testing.B) {
	variable := comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	for i := 0; i < b.N; i++ {
		type out struct {
			digest string
			sec    float64
			spec   int
		}
		runAt := func(j int) out {
			eng := experiments.NewEngine(j)
			t0 := time.Now()
			nan, err := eng.RunNaNBug()
			if err != nil {
				b.Fatal(err)
			}
			wf := eng.Workflow()
			report, err := wf.Bisect(wf.TestByName("Example13"), variable, 0)
			if err != nil {
				b.Fatal(err)
			}
			sec := time.Since(t0).Seconds()
			digest := fmt.Sprintf("nan execs=%d files=%v symbols=%v | ex13 execs=%d files=%v",
				nan.Execs, nan.Files, nan.Symbols, report.Execs, report.Files)
			return out{digest: digest, sec: sec, spec: nan.SpecExecs + report.SpecExecs}
		}
		j1 := runAt(1)
		j8 := runAt(8)
		if j1.digest != j8.digest {
			b.Fatalf("speculative bisect diverged from sequential:\n-j 1: %s\n-j 8: %s",
				j1.digest, j8.digest)
		}
		if j1.spec != 0 {
			b.Fatalf("sequential run reported %d speculative executions", j1.spec)
		}
		b.ReportMetric(j1.sec, "bisect-j1-sec")
		b.ReportMetric(j8.sec, "bisect-j8-sec")
		b.ReportMetric(j1.sec/j8.sec, "bisect-j8-vs-j1-speedup-x")
		b.ReportMetric(float64(j8.spec), "bisect-spec-execs")

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":             "BenchmarkSpeculativeBisect",
				"engine":            flit.EngineVersion,
				"unix":              time.Now().Unix(),
				"bisect_j1_sec":     j1.sec,
				"bisect_j8_sec":     j8.sec,
				"bisect_spec_execs": j8.spec,
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// BenchmarkPersistentStore times the on-disk run store's cross-process
// warm path: a cold sweep writing through to a fresh store directory, then
// a second engine — sharing nothing with the first but the directory, the
// "new process tomorrow" scenario — re-rendering the sweep from disk. The
// digests must match byte for byte and the warm engine must materialize
// zero builds; unlike BenchmarkWarmPath there is no artifact export or
// -warm-start manifest anywhere, the store alone carries the results.
//
// With BENCH_SHARD_JSON=path set, appends store_cold_sec / store_warm_sec /
// store_hits alongside the other perf-trajectory records.
func BenchmarkPersistentStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		openDisk := func() *store.Disk {
			d, err := store.Open(dir, flit.EngineVersion)
			if err != nil {
				b.Fatal(err)
			}
			return d
		}

		cold := experiments.NewEngine(1)
		cold.AttachStore(openDisk())
		t0 := time.Now()
		coldDigest, err := cold.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		coldSec := time.Since(t0).Seconds()
		if m := cold.CacheMetrics(); m.Store.Puts == 0 {
			b.Fatal("cold sweep persisted nothing")
		}

		warm := experiments.NewEngine(1)
		warm.AttachStore(openDisk())
		t0 = time.Now()
		warmDigest, err := warm.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		warmSec := time.Since(t0).Seconds()

		if coldDigest != warmDigest {
			b.Fatal("store-warmed sweep digest differs from the cold run's")
		}
		m := warm.CacheMetrics()
		if m.Builds != 0 {
			b.Fatalf("store-warmed sweep materialized %d executables, want 0", m.Builds)
		}
		if m.Store.Hits == 0 {
			b.Fatal("store-warmed sweep recorded no store hits")
		}
		b.ReportMetric(coldSec, "store-cold-sec")
		b.ReportMetric(warmSec, "store-warm-sec")
		b.ReportMetric(coldSec/warmSec, "store-warm-vs-cold-speedup-x")
		b.ReportMetric(float64(m.Store.Hits), "store-hits")

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":          "BenchmarkPersistentStore",
				"engine":         flit.EngineVersion,
				"unix":           time.Now().Unix(),
				"store_cold_sec": coldSec,
				"store_warm_sec": warmSec,
				"store_hits":     m.Store.Hits,
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// BenchmarkRemoteStore times the remote tier's cross-machine warm path:
// a Disk store served over loopback HTTP, a cold sweep writing through
// the Remote client, then a second engine — sharing nothing with the
// first but the URL, the "second machine" scenario — re-rendering the
// sweep entirely from the wire. The digests must match byte for byte,
// the warm engine must materialize zero builds, and a healthy loopback
// transport must need zero retries.
//
// With BENCH_SHARD_JSON=path set, appends remote_cold_sec /
// remote_warm_sec / remote_hits / remote_retries alongside the other
// perf-trajectory records.
func BenchmarkRemoteStore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		disk, err := store.Open(b.TempDir(), flit.EngineVersion)
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(store.Handler(disk))
		newClient := func() *store.Remote {
			r, err := store.NewRemote(srv.URL, flit.EngineVersion, nil)
			if err != nil {
				b.Fatal(err)
			}
			return r
		}

		cold := experiments.NewEngine(1)
		cold.AttachStoreTiers(newClient())
		t0 := time.Now()
		coldDigest, err := cold.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		coldSec := time.Since(t0).Seconds()
		if m := cold.CacheMetrics(); m.Store.Puts == 0 {
			b.Fatal("cold sweep persisted nothing over the wire")
		}

		warm := experiments.NewEngine(1)
		remote := newClient()
		warm.AttachStoreTiers(remote)
		t0 = time.Now()
		warmDigest, err := warm.SweepDigest()
		if err != nil {
			b.Fatal(err)
		}
		warmSec := time.Since(t0).Seconds()
		srv.Close()

		if coldDigest != warmDigest {
			b.Fatal("remote-warmed sweep digest differs from the cold run's")
		}
		m := warm.CacheMetrics()
		if m.Builds != 0 {
			b.Fatalf("remote-warmed sweep materialized %d executables, want 0", m.Builds)
		}
		rm := remote.Metrics()
		if rm.Hits == 0 {
			b.Fatal("remote-warmed sweep recorded no remote hits")
		}
		if rm.Retries != 0 || rm.Errors != 0 {
			b.Fatalf("loopback transport was not clean: %+v", rm)
		}
		b.ReportMetric(coldSec, "remote-cold-sec")
		b.ReportMetric(warmSec, "remote-warm-sec")
		b.ReportMetric(coldSec/warmSec, "remote-warm-vs-cold-speedup-x")
		b.ReportMetric(float64(rm.Hits), "remote-hits")
		b.ReportMetric(float64(rm.Retries), "remote-retries")

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":           "BenchmarkRemoteStore",
				"engine":          flit.EngineVersion,
				"unix":            time.Now().Unix(),
				"remote_cold_sec": coldSec,
				"remote_warm_sec": warmSec,
				"remote_hits":     rm.Hits,
				"remote_retries":  rm.Retries,
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// BenchmarkCoordCampaign times the full distributed-campaign protocol in
// process: one coordinator (journal + artifact dir + shared object store
// behind a loopback HTTP mux) and two workers leasing shards of the
// Table 4 campaign, heartbeating, writing runs through to the shared
// store, and uploading shard artifacts — then the collector-side merge
// replay over the completed artifact set, asserted byte-identical to an
// unsharded run. A second campaign (Table 3) is then submitted over HTTP
// to the still-running coordinator and drained by a fresh worker pair,
// timing the multi-tenant steady state where the tenancy and shared
// store are already warm. coord-releases counts straggler re-leases
// across both campaigns; a healthy loopback fleet needs exactly zero.
//
// With BENCH_SHARD_JSON=path set, appends coord_campaign_sec /
// coord_campaign2_sec / coord_campaigns / coord_merge_sec /
// coord_releases / coord_fail_reports / coord_quarantined alongside the
// other perf-trajectory records; a healthy loopback fleet must record
// zero failure reports and zero quarantined shards (the containment
// paths cost nothing when nothing fails).
func BenchmarkCoordCampaign(b *testing.B) {
	command := []string{"experiments", "table4"}
	second := []string{"experiments", "table3"}
	const shards = 4
	for i := 0; i < b.N; i++ {
		dir := b.TempDir()
		c, err := coord.New(dir, coord.Options{})
		if err != nil {
			b.Fatal(err)
		}
		id, _, err := c.Submit(coord.Spec{Command: command, Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		d, err := store.Open(dir+"/store", flit.EngineVersion)
		if err != nil {
			b.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/", store.Handler(d))
		mux.Handle("/v1/coord/", coord.Handler(c))
		srv := httptest.NewServer(mux)

		drain := func() error {
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					cl, err := coord.NewClient(srv.URL, flit.EngineVersion, nil)
					if err != nil {
						errs[w] = err
						return
					}
					tier, err := store.NewRemote(srv.URL, flit.EngineVersion, nil)
					if err != nil {
						errs[w] = err
						return
					}
					run := func(cmd []string, shard exec.Shard) ([]byte, error) {
						return experiments.RunShard(cmd, shard, 1, tier)
					}
					_, errs[w] = coord.Work(context.Background(), cl, run,
						coord.WorkerOptions{Name: fmt.Sprintf("bench-w%d", w), PollEvery: 10 * time.Millisecond})
				}(w)
			}
			wg.Wait()
			return errors.Join(errs...)
		}

		t0 := time.Now()
		if err := drain(); err != nil {
			b.Fatal(err)
		}
		campaignSec := time.Since(t0).Seconds()

		// Second generation: submit over HTTP to the live coordinator and
		// drain again — the marginal cost of a campaign on a warm tenancy.
		cl, err := coord.NewClient(srv.URL, flit.EngineVersion, nil)
		if err != nil {
			b.Fatal(err)
		}
		id2, created, err := cl.Submit(context.Background(), second, 2, 0)
		if err != nil || !created {
			b.Fatalf("second campaign submit: created=%v err=%v", created, err)
		}
		t0 = time.Now()
		if err := drain(); err != nil {
			b.Fatal(err)
		}
		campaign2Sec := time.Since(t0).Seconds()
		srv.Close()

		for _, cid := range []string{id, id2} {
			st, err := c.Status(cid)
			if err != nil {
				b.Fatal(err)
			}
			if !st.Complete || !st.Validated {
				b.Fatalf("campaign %s did not complete and validate: %+v", cid, st)
			}
		}

		arts := make([]*flit.Artifact, shards)
		for s := 0; s < shards; s++ {
			raw, err := os.ReadFile(fmt.Sprintf("%s/artifacts/%s/shard-%d.json", dir, id, s))
			if err != nil {
				b.Fatal(err)
			}
			if arts[s], err = flit.ReadArtifact(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
		t0 = time.Now()
		merged := experiments.NewEngine(1)
		if err := merged.ImportArtifacts(arts...); err != nil {
			b.Fatal(err)
		}
		var got bytes.Buffer
		if err := experiments.RunCommand(merged, command, &got); err != nil {
			b.Fatal(err)
		}
		mergeSec := time.Since(t0).Seconds()
		if m := merged.CacheMetrics(); m.Runs.Misses != 0 {
			b.Fatalf("merged replay missed the cache %d times, want 0", m.Runs.Misses)
		}

		var want bytes.Buffer
		if err := experiments.RunCommand(experiments.NewEngine(1), command, &want); err != nil {
			b.Fatal(err)
		}
		if got.String() != want.String() {
			b.Fatal("merged campaign output differs from the unsharded run")
		}

		b.ReportMetric(campaignSec, "coord-campaign-sec")
		b.ReportMetric(campaign2Sec, "coord-campaign2-sec")
		b.ReportMetric(mergeSec, "coord-merge-sec")
		b.ReportMetric(float64(c.Releases()), "coord-releases")
		b.ReportMetric(float64(c.FailReports()), "coord-fail-reports")
		b.ReportMetric(float64(c.QuarantinedShards()), "coord-quarantined")
		if c.Releases() != 0 {
			b.Fatalf("loopback fleet re-leased %d shards, want 0", c.Releases())
		}
		if c.FailReports() != 0 || c.QuarantinedShards() != 0 {
			b.Fatalf("healthy loopback fleet recorded %d failure reports, %d quarantined shards, want 0/0",
				c.FailReports(), c.QuarantinedShards())
		}

		if path := os.Getenv("BENCH_SHARD_JSON"); path != "" {
			rec := map[string]any{
				"bench":               "BenchmarkCoordCampaign",
				"engine":              flit.EngineVersion,
				"unix":                time.Now().Unix(),
				"coord_campaigns":     2,
				"coord_campaign_sec":  campaignSec,
				"coord_campaign2_sec": campaign2Sec,
				"coord_merge_sec":     mergeSec,
				"coord_releases":      c.Releases(),
				"coord_fail_reports":  c.FailReports(),
				"coord_quarantined":   c.QuarantinedShards(),
			}
			if err := appendJSONLine(path, rec); err != nil {
				b.Fatalf("BENCH_SHARD_JSON: %v", err)
			}
		}
	}
}

// appendJSONLine appends one JSON object per line (a perf-trajectory log:
// append-only, diff-friendly, trivially parseable).
func appendJSONLine(path string, rec map[string]any) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BenchmarkMPIStudy regenerates the §3.6 study: determinism under simulated
// ranks, parallel-vs-sequential deviation, and blame equivalence.
func BenchmarkMPIStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MPIStudy(4, 3)
		if err != nil {
			b.Fatal(err)
		}
		same := 0
		for _, r := range rows {
			if !r.Checked || r.SameBlame {
				same++
			}
		}
		b.ReportMetric(float64(same), "same-blame-examples")
	}
}
