package store

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzRemoteDecode hammers the remote envelope decoder — the trust
// boundary between a hostile network and the build/run cache. Whatever
// bytes arrive (truncated, trailing garbage, mismatched checksums,
// foreign engines, wrong keys, oversized blobs), the decoder must never
// panic, and it may only return a payload when the envelope proves it was
// stored under exactly the requested key by exactly this engine with a
// matching SHA-256 — the property that turns every transport fault into a
// recompute instead of a wrong result.
func FuzzRemoteDecode(f *testing.F) {
	const engine = "flit-engine/fuzz"
	const key = "run\x00some/plan\x00key"

	valid := func(payload string) []byte {
		buf, err := json.Marshal(entry{Engine: engine, Key: key,
			Sum: sumHex([]byte(payload)), Data: json.RawMessage(payload)})
		if err != nil {
			f.Fatal(err)
		}
		return buf
	}

	f.Add([]byte{})
	f.Add(valid(`{"key":"k","scalar":4609434218613702656}`))
	f.Add(valid(`{"v":1}`)[:20])                          // truncated mid-envelope
	f.Add(append(valid(`{"v":1}`), "{}garbage"...))       // trailing garbage
	jkey, _ := json.Marshal(key)
	f.Add([]byte(`{"engine":"` + engine + `","key":` + string(jkey) + `,"sum":"0000","data":{"v":1}}`)) // bad sum
	f.Add([]byte(`{"engine":"flit-engine/other","key":"x","sum":"","data":null}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(strings.Repeat(`{"a":`, 64) + "1" + strings.Repeat("}", 64))) // deep nesting
	f.Add(valid(strings.Repeat("7", 1<<16)))                                   // oversized-but-valid payload

	f.Fuzz(func(t *testing.T, raw []byte) {
		data, err := decodeEnvelope(raw, engine, key)
		if err != nil {
			return // a rejected envelope is always safe
		}
		// A decode the client would trust: the envelope's own declarations
		// must actually hold for the returned payload — re-verify from
		// scratch, independently of the decoder's internals.
		var e entry
		if jerr := json.Unmarshal(raw, &e); jerr != nil {
			t.Fatalf("decoder accepted bytes that do not even parse: %v", jerr)
		}
		if e.Engine != engine || e.Key != key {
			t.Fatalf("decoder accepted a foreign envelope: engine=%q key=%q", e.Engine, e.Key)
		}
		if e.Sum != sumHex(data) {
			t.Fatalf("decoder returned a payload whose SHA-256 disagrees with the declared sum")
		}
		if string(data) != string(e.Data) {
			t.Fatalf("decoder returned different bytes than the envelope carries")
		}
	})
}
