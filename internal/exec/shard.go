package exec

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard selects a slice of a deterministic job index space: of the n jobs a
// driver would fan out through Map/ForEach, a shard owns exactly those whose
// index i satisfies i mod Count == Index. The deterministic job indexing is
// what makes the shard a unit of distribution — every participant derives
// the identical index space from the same inputs, so N shards partition the
// work with no coordination, and the modulo assignment interleaves expensive
// and cheap jobs across shards instead of handing one shard a contiguous
// block of the same compiler's compilations.
//
// The zero value owns everything (an unsharded run), so drivers can carry a
// Shard field without nil checks or special cases.
type Shard struct {
	Index int `json:"index"` // this shard's position, in [0, Count)
	Count int `json:"count"` // total shards; <= 1 means unsharded
}

// ParseShard parses the CLI notation "i/N" (e.g. "0/4"). The empty string
// is the unsharded zero value.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idx, count, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("exec: shard %q: want \"i/N\" (e.g. \"0/4\")", s)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return Shard{}, fmt.Errorf("exec: shard %q: bad index: %v", s, err)
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return Shard{}, fmt.Errorf("exec: shard %q: bad count: %v", s, err)
	}
	if n < 1 || i < 0 || i >= n {
		return Shard{}, fmt.Errorf("exec: shard %q: index must be in [0, count) with count >= 1", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// Validate checks the invariant 0 <= Index < Count (or the zero value).
func (s Shard) Validate() error {
	if s == (Shard{}) {
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("exec: shard %d/%d: index must be in [0, count)", s.Index, s.Count)
	}
	return nil
}

// String renders the CLI notation. The zero value renders as "0/1".
func (s Shard) String() string {
	if s.Count < 1 {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// IsSharded reports whether this shard owns only part of the index space.
func (s Shard) IsSharded() bool { return s.Count > 1 }

// Owns reports whether job index i belongs to this shard.
func (s Shard) Owns(i int) bool {
	if s.Count <= 1 {
		return true
	}
	return i%s.Count == s.Index
}

// Indices returns this shard's slice of the index space [0, n), in
// increasing order.
func (s Shard) Indices(n int) []int {
	if s.Count <= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, n/s.Count+1)
	for i := s.Index; i < n; i += s.Count {
		out = append(out, i)
	}
	return out
}
