// Package fp models the floating-point semantics that a compilation assigns
// to a single function.
//
// In the FLiT paper (Bentley et al., HPDC 2019) result variability is induced
// by real compilers applying value-changing optimizations: fused
// multiply-add contraction, reassociation of reductions for vectorization,
// unsafe-math rewrites (reciprocal division, expression reordering),
// higher-precision intermediates, and substituted math libraries. This
// package reproduces those effects directly: a Semantics value says which
// transformations are in force, and an Env executes IEEE-754 double
// arithmetic under those transformations. All operations are deterministic;
// two runs under equal Semantics produce bitwise-identical results.
package fp

import "fmt"

// Semantics describes the value-changing transformations a compilation
// applied to one function. The zero value is NOT strict; use Strict.
type Semantics struct {
	// FuseFMA contracts a*b+c patterns into a single fused multiply-add
	// with one rounding (e.g. gcc -mfma, icpc default at -O2).
	FuseFMA bool

	// ReassocWidth is the number of independent accumulators used for
	// reductions (sums, dot products). 1 reproduces strict left-to-right
	// evaluation; 4 models AVX2 vectorization, 8 models AVX-512. Values
	// other than 1 change the rounding of long reductions.
	ReassocWidth uint8

	// UnsafeMath enables algebraic rewrites that are not value-safe:
	// division by reciprocal multiplication and reordering of short
	// expression chains (gcc -funsafe-math-optimizations,
	// icpc -fp-model fast=2, xlc++ -O3 without -qstrict).
	UnsafeMath bool

	// ExtendedPrecision keeps intermediates of compound operations at
	// higher than double precision and rounds once at the end (x87 80-bit
	// temporaries, or FMA-based double-double accumulation).
	ExtendedPrecision bool

	// FlushSubnormals flushes subnormal results to zero (FTZ/DAZ, enabled
	// by icpc by default and by -ffast-math).
	FlushSubnormals bool

	// ApproxMath substitutes correctly-rounded libm calls (sqrt, exp, ...)
	// with faster, slightly-off vector-math implementations (Intel SVML,
	// introduced by the icpc link step regardless of compile flags).
	ApproxMath bool
}

// Strict is the baseline semantics: no contraction, sequential reductions,
// value-safe transformations only, correctly rounded libm. It corresponds to
// the paper's trusted baseline compilation g++ -O0.
var Strict = Semantics{ReassocWidth: 1}

// Normalize returns s with out-of-range fields clamped to valid values.
// A ReassocWidth of 0 is treated as 1 (sequential).
func (s Semantics) Normalize() Semantics {
	if s.ReassocWidth == 0 {
		s.ReassocWidth = 1
	}
	return s
}

// IsStrict reports whether s is value-equivalent to the Strict baseline.
func (s Semantics) IsStrict() bool {
	return s.Normalize() == Strict
}

// String returns a compact flag-style rendering such as
// "fma,w4,unsafe" or "strict".
func (s Semantics) String() string {
	s = s.Normalize()
	if s.IsStrict() {
		return "strict"
	}
	out := ""
	add := func(t string) {
		if out != "" {
			out += ","
		}
		out += t
	}
	if s.FuseFMA {
		add("fma")
	}
	if s.ReassocWidth > 1 {
		add(fmt.Sprintf("w%d", s.ReassocWidth))
	}
	if s.UnsafeMath {
		add("unsafe")
	}
	if s.ExtendedPrecision {
		add("extprec")
	}
	if s.FlushSubnormals {
		add("ftz")
	}
	if s.ApproxMath {
		add("approx")
	}
	return out
}
