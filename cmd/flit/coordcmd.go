package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/store"
)

// drainTimeout bounds how long a shutting-down server waits for in-flight
// requests before closing their connections.
const drainTimeout = 5 * time.Second

// serveGracefully serves h on ln until SIGINT/SIGTERM (or the optional
// done channel fires), then stops accepting, drains in-flight requests
// within drainTimeout, and returns nil — so a supervised `flit store
// serve` or `flit coord serve` exits 0 on an orderly stop instead of
// dying mid-response.
func serveGracefully(h http.Handler, ln net.Listener, done <-chan struct{}, stdout io.Writer) error {
	srv := &http.Server{Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		fmt.Fprintln(stdout, "shutting down: draining in-flight requests")
	case <-done:
		fmt.Fprintln(stdout, "campaign complete: draining in-flight requests")
	}
	stop()
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// The drain deadline passed with requests still open; close them.
		srv.Close()
	}
	return nil
}

// cmdCoord dispatches the coordinator subcommands (today: "serve").
func cmdCoord(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		return errors.New(`coord requires a subcommand: "serve"`)
	}
	switch args[0] {
	case "serve":
		return cmdCoordServe(args[1:], stdout, stderr)
	default:
		return fmt.Errorf(`unknown coord subcommand %q (want "serve")`, args[0])
	}
}

// cmdCoordServe runs the campaign coordinator: the flitd service. One
// process owns one campaign directory holding the journal, the completed
// shard artifacts, and an object store; its HTTP mux serves both the
// coordination protocol (/v1/coord/) and the object-store protocol
// (/v1/objects/), so workers point a single -coord URL at it for
// scheduling *and* result write-through. A fresh directory starts the
// campaign described by -command/-shards; a directory with a journal
// resumes it — crash recovery is just restarting with the same -dir.
func cmdCoordServe(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("coord serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "campaign directory: journal, shard artifacts, object store (required)")
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	commandStr := fs.String("command", "", `campaign command, e.g. "experiments table4" (required for a new campaign)`)
	shards := fs.Int("shards", 0, "shard count for a new campaign")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "lease lifetime without a heartbeat")
	exitWhenDone := fs.Bool("exit-when-done", false, "exit once the campaign completes and validates")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("coord serve requires -dir DIR")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("coord serve takes no positional arguments (got %q)", fs.Args())
	}
	spec := coord.Spec{Command: strings.Fields(*commandStr), Shards: *shards}
	c, err := coord.New(*dir, spec, coord.Options{LeaseTTL: *leaseTTL})
	if err != nil {
		return err
	}
	// The campaign's shared object store lives inside the campaign
	// directory: worker write-through lands here, so a re-leased shard's
	// replacement replays its predecessor's results as warm hits.
	d, err := store.Open(filepath.Join(*dir, "store"), c.Spec().Engine)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", store.Handler(d))
	mux.Handle("/v1/coord/", coord.Handler(c))
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("coord serve: %w", err)
	}
	fmt.Fprintf(stdout, "coordinating %q as %d shards (engine %s) on http://%s\n",
		coord.CommandString(c.Spec().Command), c.Spec().Shards, c.Spec().Engine, ln.Addr())
	var done <-chan struct{}
	if *exitWhenDone {
		done = c.Done()
	}
	if err := serveGracefully(mux, ln, done, stdout); err != nil {
		return err
	}
	st := c.Status()
	fmt.Fprintf(stdout, "campaign: %d/%d shards complete, %d re-leases\n", st.Done, st.Shards, st.Releases)
	if st.Complete {
		if !st.Validated {
			return fmt.Errorf("campaign artifacts fail merge validation: %s", st.Problem)
		}
		fmt.Fprintf(stdout, "artifact set validated; merge with: flit merge %s\n",
			filepath.Join(c.ArtifactDir(), "shard-*.json"))
	}
	return nil
}

// cmdWork runs the worker loop against a campaign coordinator: lease a
// shard, run the recorded command with the ordinary experiments drivers,
// upload the artifact, repeat until the campaign is done. The
// coordinator's own object store is attached as the engine cache's
// persistent tier (optionally fronted by a local -store DIR), and the
// shared -remote-retries/-remote-timeout knobs shape both the scheduling
// client and the store client. SIGINT/SIGTERM drains: the shard already
// running is finished and reported, then the loop exits 0.
func cmdWork(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordURL := fs.String("coord", "", "campaign coordinator URL (flit coord serve; required)")
	name := fs.String("name", "", "worker name reported to the coordinator (default host:pid)")
	j := fs.Int("j", 0, "parallel evaluations within a shard (0 = one per CPU)")
	storeDir := fs.String("store", "", "local run-store directory layered in front of the coordinator's store")
	stats := fs.Bool("stats", false, "print transport counters to stderr when the loop ends")
	verbose := fs.Bool("v", false, "log each lease/heartbeat-loss/completion event to stderr")
	retries, timeout := addTransportFlags(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *coordURL == "" {
		return errors.New("work requires -coord URL")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("work takes no positional arguments (got %q)", fs.Args())
	}
	opts, err := transportOptions(*retries, *timeout)
	if err != nil {
		return err
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	cl, err := coord.NewClient(*coordURL, flit.EngineVersion, opts)
	if err != nil {
		return err
	}
	var tiers []store.Store
	if *storeDir != "" {
		d, err := store.Open(*storeDir, flit.EngineVersion)
		if err != nil {
			return err
		}
		tiers = append(tiers, d)
	}
	remote, err := store.NewRemote(*coordURL, flit.EngineVersion, opts)
	if err != nil {
		return err
	}
	tiers = append(tiers, remote)
	// FLIT_WORK_STALL makes this worker hold each leased shard idle (while
	// heartbeating) before running it — the deterministic straggler the
	// SIGKILL smoke needs: kill the stalled worker and its lease expires on
	// schedule, with no timing race against real work.
	var stallFor time.Duration
	if v := os.Getenv("FLIT_WORK_STALL"); v != "" {
		if stallFor, err = time.ParseDuration(v); err != nil {
			return fmt.Errorf("FLIT_WORK_STALL: %w", err)
		}
	}
	runner := func(command []string, shard exec.Shard) ([]byte, error) {
		if stallFor > 0 {
			time.Sleep(stallFor)
		}
		return experiments.RunShard(command, shard, *j, tiers...)
	}
	logW := io.Discard
	if *verbose {
		logW = stderr
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	wstats, werr := coord.Work(ctx, cl, runner, coord.WorkerOptions{Name: *name, Log: logW})
	if *stats {
		rm := remote.Metrics()
		fmt.Fprintf(stderr, "remote: hits=%d misses=%d puts=%d retries=%d errors=%d\n",
			rm.Hits, rm.Misses, rm.Puts, rm.Retries, rm.Errors)
		ro := cl.Options()
		fmt.Fprintf(stderr, "remote config: attempts=%d attempt-timeout=%s timeout=%s\n",
			ro.Attempts, ro.AttemptTimeout, ro.Deadline)
		fmt.Fprintf(stderr, "coord: completed=%d lost=%d retries=%d\n",
			wstats.Completed, wstats.Lost, cl.Retries())
	}
	switch {
	case werr == nil:
		fmt.Fprintf(stdout, "worker %s: campaign done (%d shards completed here, %d lost to re-lease)\n",
			*name, wstats.Completed, wstats.Lost)
		return nil
	case errors.Is(werr, context.Canceled):
		// The drain path: the in-flight shard (if any) was finished and
		// reported before the loop returned.
		fmt.Fprintf(stdout, "worker %s: drained (%d shards completed here, %d lost to re-lease)\n",
			*name, wstats.Completed, wstats.Lost)
		return nil
	default:
		return werr
	}
}
