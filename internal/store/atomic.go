package store

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic durably writes data to path: the bytes land in a unique
// temp file in the destination directory, are fsynced, and are renamed
// into place, so a reader — in this process or any other — only ever
// observes either the previous complete file or the new complete file. A
// crash mid-write leaves at most a stray temp file, never a truncated
// destination; this is the write discipline every store entry, every store
// manifest, and every shard artifact goes through, because a half-written
// result file read back later is a data-corruption bug, not a cache miss.
//
// The containing directory is fsynced after the rename on a best-effort
// basis (some platforms and filesystems reject directory syncs); the
// rename itself is what readers' correctness rests on.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best-effort: the rename is already atomic for readers
		d.Close()
	}
	return nil
}
