package fp

import "math"

// Double-double ("dd") arithmetic: error-free transformations that represent
// a value as an unevaluated sum hi+lo of two float64 with |lo| <= ulp(hi)/2.
// Used to model extended-precision intermediates (x87 80-bit temporaries and
// wider): compound operations accumulate in dd and round once at the end.

// dd is an unevaluated sum hi + lo.
type dd struct {
	hi, lo float64
}

// twoSum returns the exact sum of a and b as a dd (Knuth's TwoSum, 6 flops,
// valid for all inputs).
func twoSum(a, b float64) dd {
	s := a + b
	bb := s - a
	err := (a - (s - bb)) + (b - bb)
	return dd{s, err}
}

// twoProd returns the exact product of a and b as a dd, using FMA to recover
// the rounding error of the multiply.
func twoProd(a, b float64) dd {
	p := a * b
	e := math.FMA(a, b, -p)
	return dd{p, e}
}

// addDD adds a double to a dd value.
func addDD(x dd, b float64) dd {
	s := twoSum(x.hi, b)
	s.lo += x.lo
	return fastRenorm(s)
}

// addDDDD adds two dd values.
func addDDDD(x, y dd) dd {
	s := twoSum(x.hi, y.hi)
	s.lo += x.lo + y.lo
	return fastRenorm(s)
}

// fastRenorm re-establishes the |lo| <= ulp(hi)/2 invariant.
func fastRenorm(x dd) dd {
	s := x.hi + x.lo
	return dd{s, x.lo - (s - x.hi)}
}

// round collapses a dd to the nearest float64.
func (x dd) round() float64 { return x.hi + x.lo }
