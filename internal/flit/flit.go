// Package flit is the core testing framework of the reproduction: the
// user-facing test API of the FLiT tool (paper §2), the runner that executes
// every test under every compilation of a matrix, and the result store the
// multi-level analysis workflow (Figure 1) is built on.
//
// A test follows the paper's four-method protocol: how many inputs a run
// consumes (GetInputsPerRun), the default input vector (GetDefaultInput,
// longer vectors are split into multiple data-driven runs), the computation
// itself (Run), and the user-defined metric that decides whether two results
// are "equal" (Compare, returning 0 for acceptable agreement and a positive
// magnitude otherwise).
package flit

import (
	"fmt"
	"math"

	"repro/internal/link"
)

// Result is what one test execution produces: either a vector of values
// over a mesh/volume (the paper's std::string return used for "arbitrary
// meshes") or a single value (the long double return).
type Result struct {
	Vec    []float64
	Scalar float64
}

// ScalarResult wraps a single value.
func ScalarResult(x float64) Result { return Result{Scalar: x} }

// VecResult wraps a mesh-value vector.
func VecResult(v []float64) Result { return Result{Vec: v} }

// IsVec reports whether the result carries a vector.
func (r Result) IsVec() bool { return r.Vec != nil }

// Norm returns the ℓ2 magnitude of the result (used to relativize errors).
func (r Result) Norm() float64 {
	if r.IsVec() {
		return l2(r.Vec)
	}
	return math.Abs(r.Scalar)
}

// TestCase is the user-provided FLiT test class.
type TestCase interface {
	// Name identifies the test (e.g. "Example05").
	Name() string
	// Root is the program symbol the test enters; the deterministic cost
	// model charges the call-graph closure of this symbol.
	Root() string
	// GetInputsPerRun returns how many floating-point inputs one
	// execution consumes.
	GetInputsPerRun() int
	// GetDefaultInput returns the default input vector. If it is longer
	// than GetInputsPerRun, the input is split and the test is executed
	// once per chunk (data-driven testing).
	GetDefaultInput() []float64
	// Run executes the test on one input chunk against a linked
	// executable via its machine.
	Run(input []float64, m *link.Machine) (Result, error)
	// Compare returns 0 if other is acceptably equal to baseline and a
	// positive magnitude otherwise. It is the metric Bisect searches on.
	Compare(baseline, other Result) float64
}

// L2Diff is the comparison used by the MFEM study: the ℓ2 norm of the
// element-wise difference ||baseline - actual||₂. Vectors of different
// lengths are maximally different (returns +Inf): the domain decomposition
// changed.
func L2Diff(baseline, other Result) float64 {
	if baseline.IsVec() != other.IsVec() {
		return math.Inf(1)
	}
	if !baseline.IsVec() {
		d := baseline.Scalar - other.Scalar
		if d != d { // NaN anywhere is maximal disagreement
			return math.Inf(1)
		}
		return math.Abs(d)
	}
	if len(baseline.Vec) != len(other.Vec) {
		return math.Inf(1)
	}
	var sum float64
	for i := range baseline.Vec {
		d := baseline.Vec[i] - other.Vec[i]
		if d != d {
			return math.Inf(1)
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// RoundSig rounds x to n significant decimal digits. It backs the
// digit-limited comparisons of the Laghos study (Table 4).
func RoundSig(x float64, n int) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) || n <= 0 {
		return x
	}
	mag := math.Ceil(math.Log10(math.Abs(x)))
	scale := math.Pow(10, float64(n)-mag)
	return math.Round(x*scale) / scale
}

// DigitL2Diff returns a Compare function that first rounds every value to
// the given number of significant digits, so only disagreement visible at
// that precision counts. digits <= 0 compares at full precision.
func DigitL2Diff(digits int) func(baseline, other Result) float64 {
	if digits <= 0 {
		return L2Diff
	}
	return func(baseline, other Result) float64 {
		return L2Diff(roundResult(baseline, digits), roundResult(other, digits))
	}
}

func roundResult(r Result, digits int) Result {
	if !r.IsVec() {
		return ScalarResult(RoundSig(r.Scalar, digits))
	}
	out := make([]float64, len(r.Vec))
	for i, v := range r.Vec {
		out[i] = RoundSig(v, digits)
	}
	return VecResult(out)
}

func l2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// WithCompare returns a view of a test case with its Compare metric
// replaced — how the Laghos study restricts comparison to a number of
// significant digits (Table 4) without touching the test itself.
func WithCompare(t TestCase, cmp func(baseline, other Result) float64) TestCase {
	return compareOverride{TestCase: t, cmp: cmp}
}

type compareOverride struct {
	TestCase
	cmp func(baseline, other Result) float64
}

func (c compareOverride) Compare(baseline, other Result) float64 {
	return c.cmp(baseline, other)
}

// Unwrap exposes the underlying test case, so the build/run cache can see
// through metric overrides (they do not change what a run produces).
func (c compareOverride) Unwrap() TestCase { return c.TestCase }

// RunAll executes a test (all of its data-driven chunks) against an
// executable and concatenates the chunk results.
func RunAll(t TestCase, ex *link.Executable) (Result, error) {
	m, err := ex.NewMachine()
	if err != nil {
		return Result{}, err
	}
	input := t.GetDefaultInput()
	per := t.GetInputsPerRun()
	if per <= 0 || per >= len(input) {
		return t.Run(input, m)
	}
	var out Result
	for off := 0; off+per <= len(input); off += per {
		r, err := t.Run(input[off:off+per], m)
		if err != nil {
			return Result{}, fmt.Errorf("flit: test %s chunk at %d: %w", t.Name(), off, err)
		}
		if r.IsVec() {
			out.Vec = append(out.Vec, r.Vec...)
		} else {
			out.Vec = append(out.Vec, r.Scalar)
		}
	}
	return out, nil
}
