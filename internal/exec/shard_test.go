package exec

import (
	"testing"
)

func TestParseShard(t *testing.T) {
	tests := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{in: "", want: Shard{}},
		{in: "0/1", want: Shard{Index: 0, Count: 1}},
		{in: "0/4", want: Shard{Index: 0, Count: 4}},
		{in: "3/4", want: Shard{Index: 3, Count: 4}},
		{in: "4/4", wantErr: true},
		{in: "-1/4", wantErr: true},
		{in: "0/0", wantErr: true},
		{in: "0", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "1/2/3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseShard(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseShard(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestShardPartition: for every job index space, the shards of a count N
// partition it — every index owned by exactly one shard, and Indices agrees
// with Owns.
func TestShardPartition(t *testing.T) {
	const n = 97 // deliberately not a multiple of any tested count
	for _, count := range []int{1, 2, 3, 4, 8} {
		owners := make([]int, n)
		for i := range owners {
			owners[i] = -1
		}
		for idx := 0; idx < count; idx++ {
			s := Shard{Index: idx, Count: count}
			for _, i := range s.Indices(n) {
				if !s.Owns(i) {
					t.Fatalf("shard %s: Indices yields %d but Owns(%d) is false", s, i, i)
				}
				if owners[i] != -1 {
					t.Fatalf("index %d owned by shards %d and %d of %d", i, owners[i], idx, count)
				}
				owners[i] = idx
			}
		}
		for i, o := range owners {
			if o == -1 {
				t.Errorf("index %d of %d owned by no shard of %d", i, n, count)
			}
		}
	}
}

// TestShardZeroValueOwnsAll: the zero Shard is a valid unsharded run.
func TestShardZeroValueOwnsAll(t *testing.T) {
	var s Shard
	if s.IsSharded() {
		t.Error("zero shard reports sharded")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("zero shard invalid: %v", err)
	}
	for i := 0; i < 10; i++ {
		if !s.Owns(i) {
			t.Errorf("zero shard does not own %d", i)
		}
	}
	if got := len(s.Indices(5)); got != 5 {
		t.Errorf("zero shard Indices(5) has %d entries", got)
	}
	if s.String() != "0/1" {
		t.Errorf("zero shard String = %q", s.String())
	}
}

// TestParseShardEdgeCases covers the parser's rejection surface beyond the
// happy paths: whitespace, signs, overflow, and empty components must all
// fail with an error rather than mis-assign the index space.
func TestParseShardEdgeCases(t *testing.T) {
	tests := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{in: "0/1000000", want: Shard{Index: 0, Count: 1000000}},
		{in: "999999/1000000", want: Shard{Index: 999999, Count: 1000000}},
		// strconv.Atoi accepts a leading '+': harmless, still in range.
		{in: "+1/4", want: Shard{Index: 1, Count: 4}},
		{in: " 0/2", wantErr: true},
		{in: "0/2 ", wantErr: true},
		{in: "0/ 2", wantErr: true},
		{in: "/2", wantErr: true},
		{in: "0/", wantErr: true},
		{in: "/", wantErr: true},
		{in: "0x1/2", wantErr: true},
		{in: "1/-2", wantErr: true},
		{in: "-0/2", want: Shard{Index: 0, Count: 2}}, // -0 parses to 0: in range
		{in: "1.0/2", wantErr: true},
		{in: "99999999999999999999/2", wantErr: true}, // index overflows int64
		{in: "0/99999999999999999999", wantErr: true}, // count overflows int64
	}
	for _, tt := range tests {
		got, err := ParseShard(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseShard(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// TestShardValidateEdgeCases: Validate accepts exactly the zero value and
// well-formed coordinates; every inconsistent struct (reachable through
// JSON-decoded artifacts, not the parser) is rejected.
func TestShardValidateEdgeCases(t *testing.T) {
	valid := []Shard{{}, {0, 1}, {0, 2}, {1, 2}, {7, 8}}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", s, err)
		}
	}
	invalid := []Shard{
		{Index: 1, Count: 0},  // count zero but not the zero value
		{Index: -1, Count: 0}, // negative index
		{Index: 0, Count: -1}, // negative count
		{Index: 2, Count: 2},  // index == count
		{Index: 5, Count: 2},  // index > count
		{Index: -1, Count: 4}, // negative index, valid count
	}
	for _, s := range invalid {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", s)
		}
	}
}

// TestShardPartitionEdgeSpaces: tiny and empty job index spaces still
// partition exactly — a single job lands on exactly one shard of any
// count, and the empty space yields no indices for anyone.
func TestShardPartitionEdgeSpaces(t *testing.T) {
	for _, count := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1} {
			owners := 0
			for idx := 0; idx < count; idx++ {
				s := Shard{Index: idx, Count: count}
				ids := s.Indices(n)
				for _, i := range ids {
					if i < 0 || i >= n {
						t.Fatalf("shard %s: index %d outside [0,%d)", s, i, n)
					}
				}
				owners += len(ids)
				// Indices and Owns must agree even on the empty space.
				if n == 1 && (len(ids) == 1) != s.Owns(0) {
					t.Fatalf("shard %s: Indices(1)=%v disagrees with Owns(0)=%v", s, ids, s.Owns(0))
				}
			}
			if owners != n {
				t.Errorf("count=%d n=%d: %d indices owned in total", count, n, owners)
			}
		}
		// Only shard 0 of any count owns the single job.
		s0 := Shard{Index: 0, Count: count}
		if !s0.Owns(0) {
			t.Errorf("shard %s does not own job 0", s0)
		}
	}
}

func TestShardStringRoundTrip(t *testing.T) {
	for _, s := range []Shard{{0, 2}, {1, 2}, {7, 8}} {
		got, err := ParseShard(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v -> %q -> %v (%v)", s, s.String(), got, err)
		}
	}
}
