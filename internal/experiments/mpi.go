package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apps/mfem"
	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/link"
)

// MPIRow is the outcome of the §3.6 study for one example.
type MPIRow struct {
	Example int
	// Deterministic: repeated parallel executions are bitwise equal
	// (verified with `Repeats` runs; the paper used 100).
	Deterministic bool
	// ParallelDiffers: the domain-decomposed run differs from the
	// sequential run (the grid-density/accumulation-order effect).
	ParallelDiffers bool
	// SameBlame: Bisect under the parallel configuration isolated the same
	// files and functions as the sequential search.
	SameBlame bool
	// Checked is false when no variable gcc compilation existed to bisect.
	Checked bool
}

// MPIStudy reproduces §3.6 on the default engine.
func MPIStudy(np, repeats int) ([]MPIRow, error) { return Default().MPIStudy(np, repeats) }

// MPIStudy reproduces §3.6 on the 2-D MFEM examples (the ones whose
// assembly a domain decomposition reorders), under np simulated ranks. The
// per-example rows are independent and fan out through the engine's pool.
// The repeated-determinism probe deliberately bypasses the build/run cache
// — a memoized repeat would be trivially bitwise-equal and prove nothing.
func (e *Engine) MPIStudy(np, repeats int) ([]MPIRow, error) {
	if repeats < 2 {
		repeats = 2
	}
	res, err := e.Results()
	if err != nil {
		return nil, err
	}
	p := mfem.Program()
	// One shared lazy baseline build: the cached probes below never link it,
	// and the uncached determinism repeats materialize it exactly once.
	baseB := link.NewBuilder(link.FullBuildPlan(p, comp.Baseline()))
	examples := []int{2, 4, 5, 7, 8, 14, 17}
	return exec.Map(e.pool, len(examples), func(i int) (MPIRow, error) {
		exN := examples[i]
		seqCase := mfem.NewCase(exN)
		parCase := seqCase.WithProcs(np)
		row := MPIRow{Example: exN}

		seq, err := e.cache.RunAllPlanned(seqCase, baseB)
		if err != nil {
			return row, err
		}
		first, err := e.cache.RunAllPlanned(parCase, baseB)
		if err != nil {
			return row, err
		}
		// The repeated-determinism probe deliberately bypasses the cache,
		// so it needs the real executable.
		baseEx, err := baseB.Build()
		if err != nil {
			return row, err
		}
		row.Deterministic = true
		for i := 1; i < repeats; i++ {
			again, err := flit.RunAll(parCase, baseEx)
			if err != nil {
				return row, err
			}
			if flit.L2Diff(first, again) != 0 {
				row.Deterministic = false
			}
		}
		row.ParallelDiffers = flit.L2Diff(seq, first) != 0

		// Bisect equivalence: one variable gcc compilation per example.
		var variable comp.Compilation
		found := false
		for _, rr := range res.ForTest(seqCase.Name()) {
			if rr.Variable() && rr.Comp.Compiler == comp.GCC {
				variable, found = rr.Comp, true
				break
			}
		}
		if found {
			row.Checked = true
			// Sequential inside: the Map over examples is the pooled
			// fan-out level.
			seqReport, err1 := (&bisect.Search{Prog: p, Test: seqCase,
				Baseline: comp.Baseline(), Variable: variable,
				Cache: e.cache}).Run()
			parReport, err2 := (&bisect.Search{Prog: p, Test: parCase,
				Baseline: comp.Baseline(), Variable: variable,
				Cache: e.cache}).Run()
			if err1 == nil && err2 == nil {
				row.SameBlame = sameBlame(seqReport, parReport)
			}
		}
		return row, nil
	})
}

func sameBlame(a, b *bisect.Report) bool {
	key := func(r *bisect.Report) string {
		var parts []string
		for _, ff := range r.Files {
			var syms []string
			for _, sf := range ff.Symbols {
				syms = append(syms, sf.Item)
			}
			sort.Strings(syms)
			parts = append(parts, ff.File+"{"+strings.Join(syms, ",")+"}")
		}
		sort.Strings(parts)
		return strings.Join(parts, ";")
	}
	return key(a) == key(b)
}

// RenderMPI prints the study.
func RenderMPI(rows []MPIRow) string {
	out := fmt.Sprintf("%-10s %-14s %-18s %-10s\n",
		"example", "deterministic", "parallel differs", "same blame")
	for _, r := range rows {
		blame := "n/a"
		if r.Checked {
			blame = fmt.Sprintf("%v", r.SameBlame)
		}
		out += fmt.Sprintf("%-10d %-14v %-18v %-10s\n",
			r.Example, r.Deterministic, r.ParallelDiffers, blame)
	}
	return out
}
