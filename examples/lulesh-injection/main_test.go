package main

import (
	"strings"
	"testing"
)

// TestLULESHInjectionSmoke replays the §3.5 injection study on the sampled
// site set: the three illustrative probes and the campaign summary.
func TestLULESHInjectionSmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"enumerated",
		"inject * at CalcAccelerationForNodes",
		"sampled campaign (every 7th site):",
		"precision",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
