package exec

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrComputePanicked is the sentinel error waiters of a cache entry
// observe when the computation they were blocked on panicked instead of
// returning. The panicking caller sees the panic itself (Do does not
// recover); everyone else sharing the entry gets this error rather than a
// silently-memoized zero value, and the key recomputes on next use.
var ErrComputePanicked = errors.New("exec: cache computation panicked")

// Cache is a concurrency-safe memoizing map with single-flight semantics:
// for each key the compute function runs exactly once, concurrent callers
// of the same key block until the first computation finishes, and every
// caller observes the same value. Values must be treated as immutable by
// all callers — they are shared, not copied.
//
// A cache may be size-capped (NewCacheCap), in which case completed entries
// are evicted least-recently-used when the entry count exceeds the cap.
// Eviction never breaks waiters — an evicted entry's value still reaches
// every caller already blocked on it — and an evicted key simply recomputes
// on next use, with fresh single-flight semantics. Because everything the
// reproduction memoizes is a pure function of its key, eviction trades
// recomputation for memory and cannot change any result.
//
// The reproduction uses it to memoize test runs keyed by build plan: the
// simulated toolchain is deterministic, so a cache hit is bit-identical to
// a re-run, and repeated evaluations during bisect hit the cache instead
// of re-executing the program (the link step itself is cheap and redone).
// Errors are memoized too (a deterministic toolchain fails the same way
// every time).
type Cache[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[V]
	// cap is the maximum entry count; 0 means unbounded. In-flight entries
	// are never evicted, so the count may transiently exceed cap while more
	// than cap computations overlap; it is re-enforced as each completes.
	cap        int
	head, tail *cacheEntry[V] // recency list, head = most recently used
	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
}

type cacheEntry[V any] struct {
	key       string
	done      chan struct{}
	val       V
	err       error
	completed bool // guarded by Cache.mu
	// seeded marks an entry installed by Seed (imported from an artifact)
	// rather than computed here; uses counts how many Do calls this entry
	// answered. Both guarded by Cache.mu — the provenance the incremental
	// campaign engine's delta detector reads back through EachInfo.
	seeded     bool
	uses       int64
	prev, next *cacheEntry[V]
}

// NewCache returns an empty, unbounded cache.
func NewCache[V any]() *Cache[V] { return NewCacheCap[V](0) }

// NewCacheCap returns an empty cache evicting least-recently-used completed
// entries once it holds more than capacity keys. capacity <= 0 is unbounded.
func NewCacheCap[V any](capacity int) *Cache[V] {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache[V]{m: make(map[string]*cacheEntry[V]), cap: capacity}
}

// Do returns the memoized value for key, computing it with fn on first use.
// A nil cache computes without memoizing, so callers can plumb an optional
// cache through without nil checks.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		e.uses++
		c.moveToFront(e)
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{key: key, done: make(chan struct{}), uses: 1}
	c.m[key] = e
	c.pushFront(e)
	c.mu.Unlock()
	c.misses.Add(1)
	// The done channel must close even if fn panics (a waiter blocked on
	// <-e.done would otherwise deadlock forever). On panic the entry is
	// dropped from the map so the key can be recomputed, and waiters get
	// ErrComputePanicked — never a fabricated zero value with a nil error,
	// which downstream code would memoize into results.
	completed := false
	defer func() {
		c.mu.Lock()
		if completed {
			e.completed = true
			c.evictLocked()
		} else {
			e.err = ErrComputePanicked
			if c.m[e.key] == e {
				c.unlink(e)
				delete(c.m, e.key)
			}
		}
		c.mu.Unlock()
		close(e.done)
	}()
	val, err := fn()
	e.val, e.err = val, err
	completed = true
	return val, err
}

// Seed installs a completed entry without running a computation — the
// import path for shard artifacts. It reports whether the entry was
// installed; an existing entry (computed, seeded, or in flight) is never
// overwritten, so a seed can only agree with what a computation would have
// produced. Seeding counts as neither a hit nor a miss.
func (c *Cache[V]) Seed(key string, val V, err error) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; ok {
		return false
	}
	e := &cacheEntry[V]{key: key, done: make(chan struct{}), val: val, err: err, completed: true, seeded: true}
	close(e.done)
	c.m[key] = e
	c.pushFront(e)
	c.evictLocked()
	return true
}

// Each snapshots every completed entry and calls fn for each, in unspecified
// order (callers sort). In-flight computations are skipped — an artifact
// export captures what has finished, which is everything once the owning
// driver returns.
func (c *Cache[V]) Each(fn func(key string, val V, err error)) {
	c.EachInfo(func(key string, val V, err error, _ EntryInfo) { fn(key, val, err) })
}

// EntryInfo is the provenance of one completed cache entry: whether its
// value was seeded from an artifact rather than computed here, and how many
// Do calls this entry answered (seeding itself counts as none; the caller
// that computed a fresh entry counts as one). The delta detector of the
// incremental campaign engine classifies keys with it: a seeded entry with
// uses is a baseline hit, a seeded entry without uses is a dropped baseline
// key, an unseeded entry is fresh work.
type EntryInfo struct {
	Seeded bool
	Uses   int64
}

// EachInfo is Each with each entry's provenance attached.
func (c *Cache[V]) EachInfo(fn func(key string, val V, err error, info EntryInfo)) {
	if c == nil {
		return
	}
	type snap struct {
		key  string
		val  V
		err  error
		info EntryInfo
	}
	c.mu.Lock()
	entries := make([]snap, 0, len(c.m))
	for _, e := range c.m {
		if e.completed {
			entries = append(entries, snap{key: e.key, val: e.val, err: e.err,
				info: EntryInfo{Seeded: e.seeded, Uses: e.uses}})
		}
	}
	c.mu.Unlock()
	for _, s := range entries {
		fn(s.key, s.val, s.err, s.info)
	}
}

// pushFront links a new entry at the head of the recency list (mu held).
func (c *Cache[V]) pushFront(e *cacheEntry[V]) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// moveToFront marks an entry most recently used (mu held).
func (c *Cache[V]) moveToFront(e *cacheEntry[V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// unlink removes an entry from the recency list (mu held).
func (c *Cache[V]) unlink(e *cacheEntry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictLocked removes least-recently-used completed entries until the cache
// fits its cap (mu held). In-flight entries are skipped: waiters hold their
// entry pointer and single-flight must not be torn down mid-computation.
func (c *Cache[V]) evictLocked() {
	if c.cap <= 0 {
		return
	}
	for e := c.tail; e != nil && len(c.m) > c.cap; {
		prev := e.prev
		if e.completed {
			c.unlink(e)
			delete(c.m, e.key)
			c.evictions.Add(1)
		}
		e = prev
	}
}

// Len reports how many distinct keys are resident (computed, seeded, or in
// flight).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Capacity reports the eviction cap; 0 means unbounded.
func (c *Cache[V]) Capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

// Stats reports cache hits and misses, the observability hook the
// equivalence tests use to prove memoization actually engages.
func (c *Cache[V]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Metrics is a point-in-time snapshot of a cache's counters.
type Metrics struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int // 0 = unbounded
}

// Metrics snapshots the cache's counters and occupancy.
func (c *Cache[V]) Metrics() Metrics {
	if c == nil {
		return Metrics{}
	}
	return Metrics{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
		Capacity:  c.cap,
	}
}
