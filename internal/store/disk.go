package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// FormatVersion is the on-disk layout version of a Disk store. Bump it
// whenever the manifest, the object envelope, or the directory layout
// changes shape; a store written by any other format version is rejected
// at Open, like a foreign engine's.
const FormatVersion = 1

// manifestName is the store manifest at the root of a Disk store's
// directory: the fence that keeps two engines whose results are not
// interchangeable from silently sharing one result namespace.
const manifestName = "store.json"

// objectsDir holds the content-addressed entries, sharded by the first
// two hex digits of each key's SHA-256 so no single directory grows to
// millions of files.
const objectsDir = "objects"

// manifest is the store's self-description. Engine carries the same
// version string shard artifacts are fenced by (flit.EngineVersion): two
// processes may share a store only if they would compute bit-identical
// results for every key.
type manifest struct {
	Version int    `json:"store_version"`
	Engine  string `json:"engine"`
}

// entry is the JSON envelope of one stored object. The envelope repeats
// the key (the file is addressed by the key's hash, and a hash tells a
// reader nothing about what was hashed), the engine (cheap insurance when
// entry files are copied between store directories by hand), and a
// SHA-256 of the payload (a torn or bit-rotted payload must read as a
// miss, not as a result). Payload bytes are the caller's own JSON record.
type entry struct {
	Engine string          `json:"engine"`
	Key    string          `json:"key"`
	Sum    string          `json:"sum"`
	Data   json.RawMessage `json:"data"`
}

// Disk is the on-disk content-addressed Store backend:
//
//	DIR/store.json            manifest: layout version + engine fence
//	DIR/objects/ab/<sha256>   one JSON envelope per key, ab = sum[:2]
//
// Writes are atomic (temp file + fsync + rename), so concurrent Puts —
// from many goroutines or many processes sharing DIR — race only on which
// identical bytes land last. Reads treat anything unprovable as a miss:
// a truncated envelope, a payload whose checksum disagrees, a key or
// engine mismatch. The next Put of that key overwrites the damage, so a
// corrupt entry heals on the first recomputation that touches it.
type Disk struct {
	dir    string
	engine string
	// corrupt counts Get calls that found a file but could not trust it —
	// the observability hook distinguishing "cold" from "rotting".
	corrupt atomic.Int64
}

// Open opens (creating if absent) the store rooted at dir for an engine
// version. A directory already claimed by a different engine or layout
// version is rejected — replaying a foreign engine's results as local
// computations would silently break the byte-identity guarantee, exactly
// like merging a foreign artifact. A directory whose manifest exists but
// does not parse is also rejected: it may be someone else's data, and a
// store that cannot prove ownership must not write into it.
func Open(dir, engine string) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, objectsDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	switch {
	case os.IsNotExist(err):
		m := manifest{Version: FormatVersion, Engine: engine}
		buf, err := json.Marshal(m)
		if err != nil {
			return nil, err
		}
		if err := WriteFileAtomic(mpath, buf); err != nil {
			return nil, fmt.Errorf("store: writing manifest: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("store: reading manifest: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("store: %s has an unreadable manifest (%v) — refusing to treat it as a run store", dir, err)
		}
		if m.Version != FormatVersion {
			return nil, fmt.Errorf("store: %s uses layout v%d, this build reads v%d", dir, m.Version, FormatVersion)
		}
		if m.Engine != engine {
			return nil, fmt.Errorf("store: %s was written by engine %q, this build is %q: results are not interchangeable",
				dir, m.Engine, engine)
		}
	}
	return &Disk{dir: dir, engine: engine}, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// Engine returns the engine version the store is fenced to.
func (d *Disk) Engine() string { return d.engine }

// path maps a key to its content-addressed file.
func (d *Disk) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(d.dir, objectsDir, h[:2], h)
}

// Get reads the entry stored under key. Every failure mode — no file, a
// file that does not parse as one complete JSON envelope, an engine or
// key mismatch, a payload checksum mismatch — is a miss; the ones that
// found a file are additionally counted as corrupt.
func (d *Disk) Get(key string) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(raw, &e); err != nil {
		d.corrupt.Add(1)
		return nil, false
	}
	if e.Engine != d.engine || e.Key != key || e.Sum != sumHex(e.Data) {
		d.corrupt.Add(1)
		return nil, false
	}
	return e.Data, true
}

// Put atomically stores data under key. The entry file appears complete
// or not at all; a crash mid-Put leaves the previous state readable.
func (d *Disk) Put(key string, data []byte) error {
	e := entry{Engine: d.engine, Key: key, Sum: sumHex(data), Data: json.RawMessage(data)}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	path := d.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf)
}

// CorruptReads reports how many Get calls found an entry file they could
// not trust since this handle was opened.
func (d *Disk) CorruptReads() int64 { return d.corrupt.Load() }

func sumHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Stats is a walk of the store's object tree: what `flit store stats`
// prints. Corrupt counts files that do not parse and verify as this
// store's entries (they serve every Get as a miss and are reclaimed by
// GC or overwritten by the next Put of their key).
type Stats struct {
	Engine  string
	Entries int
	Bytes   int64
	Corrupt int
}

// Stats scans the store and reports entry count, payload-file bytes, and
// how many files are corrupt.
func (d *Disk) Stats() (Stats, error) {
	st := Stats{Engine: d.engine}
	files, err := d.scan()
	if err != nil {
		return st, err
	}
	for _, f := range files {
		st.Bytes += f.size
		if f.ok {
			st.Entries++
		} else {
			st.Corrupt++
		}
	}
	return st, nil
}

// GCResult reports one garbage-collection pass.
type GCResult struct {
	// Kept is how many valid entries survive.
	Kept int
	// Pruned are the removed files, oldest first (full paths); bytes is
	// their total size. With dry-run GC the files still exist.
	Pruned      []string
	PrunedBytes int64
	// Corrupt is how many of the pruned files were corrupt rather than
	// merely superseded by the age policy.
	Corrupt int
}

// GC prunes the store down to the given bounds: corrupt files first (they
// can never serve a hit), then the oldest valid entries — ordered by file
// modification time with the path as a deterministic tiebreaker, the same
// discipline artifact GC uses — until at most maxEntries entries and
// maxBytes bytes remain (either bound <= 0 is unlimited). With apply
// false the pass only plans; nothing is deleted.
func (d *Disk) GC(maxEntries int, maxBytes int64, apply bool) (*GCResult, error) {
	files, err := d.scan()
	if err != nil {
		return nil, err
	}
	res := &GCResult{}
	var live []objFile
	var bytes int64
	for _, f := range files {
		if !f.ok {
			res.Pruned = append(res.Pruned, f.path)
			res.PrunedBytes += f.size
			res.Corrupt++
			continue
		}
		live = append(live, f)
		bytes += f.size
	}
	// Oldest first; mtime ties break on path so two planning passes over
	// the same tree always prune the same files.
	sort.Slice(live, func(i, j int) bool {
		if !live[i].mod.Equal(live[j].mod) {
			return live[i].mod.Before(live[j].mod)
		}
		return live[i].path < live[j].path
	})
	drop := 0
	for drop < len(live) &&
		((maxEntries > 0 && len(live)-drop > maxEntries) || (maxBytes > 0 && bytes > maxBytes)) {
		res.Pruned = append(res.Pruned, live[drop].path)
		res.PrunedBytes += live[drop].size
		bytes -= live[drop].size
		drop++
	}
	res.Kept = len(live) - drop
	if !apply {
		return res, nil
	}
	for _, path := range res.Pruned {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return res, fmt.Errorf("store: gc pruning %s: %w", path, err)
		}
	}
	return res, nil
}

// objFile is one file of the object tree with the metadata GC and Stats
// order and account by.
type objFile struct {
	path string
	size int64
	mod  time.Time
	ok   bool // parses and verifies as this store's entry
}

// scan walks the object tree and classifies every regular file. Stray
// temp files from interrupted atomic writes count as corrupt — they are
// garbage by construction.
func (d *Disk) scan() ([]objFile, error) {
	var out []objFile
	root := filepath.Join(d.dir, objectsDir)
	err := filepath.WalkDir(root, func(path string, ent fs.DirEntry, err error) error {
		if err != nil || ent.IsDir() {
			return err
		}
		info, err := ent.Info()
		if err != nil {
			return err
		}
		f := objFile{path: path, size: info.Size(), mod: info.ModTime()}
		var e entry
		if raw, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(raw, &e); err == nil &&
				e.Engine == d.engine && e.Sum == sumHex(e.Data) && d.path(e.Key) == path {
				f.ok = true
			}
		}
		out = append(out, f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}
