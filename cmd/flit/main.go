// Command flit is the reproduction's command-line interface: it runs the
// FLiT compilation matrix over the MFEM examples, root-causes variability
// with Bisect, and regenerates every table and figure of the paper's
// evaluation.
//
// Usage:
//
//	flit run [-j N] [-test ExampleNN]        run the 244-compilation matrix
//	flit bisect [-j N] -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
//	flit experiments [-j N] <table1|figure4|figure5|figure6|table2|table3|
//	                  findings|motivation|table4|laghos-nan|table5|mpi|
//	                  sweep|all>
//
// "sweep" renders the sampled end-to-end digest of every subsystem on a
// fresh engine — the determinism witness the equivalence tests compare
// across -j values. It is not part of "all" (which already regenerates
// each full artifact individually).
//
// Every subcommand accepts -j N: the number of (compilation, test)
// evaluations executed concurrently by the parallel engine (0, the
// default, means one per CPU; 1 reproduces the paper's sequential order).
// Results are bit-identical at every -j.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/comp"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// errParsed marks flag-parse failures the flag package has already
// reported on stderr, so run does not print them a second time.
var errParsed = errors.New("flag parse error")

// errHelp marks an explicit -h/-help request: usage was printed and the
// invocation succeeded.
var errHelp = errors.New("help requested")

// run dispatches a CLI invocation and returns its exit code: 0 on success,
// 1 on a runtime error, 2 on a usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], stdout, stderr)
	case "bisect":
		err = cmdBisect(args[1:], stdout, stderr)
	case "experiments":
		err = cmdExperiments(args[1:], stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errHelp):
		return 0
	case errors.Is(err, errParsed):
		return 2
	default:
		fmt.Fprintln(stderr, "flit:", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  flit run [-j N] [-test ExampleNN]
  flit bisect [-j N] -test ExampleNN -comp "g++ -O3 -mavx2 -mfma" [-k N]
  flit experiments [-j N] <name|all>

experiment names: table1 figure4 figure5 figure6 table2 table3 findings
  motivation table4 laghos-nan table5 mpi, or "sweep" for the sampled
  end-to-end digest of every subsystem

-j N runs up to N evaluations in parallel (0 = one per CPU, 1 = the
paper's sequential order); output is bit-identical at every -j.`)
}

// newFlagSet builds a subcommand flag set that reports parse errors back
// to the caller instead of exiting the process, with the shared -j knob.
func newFlagSet(name string, stderr io.Writer) (*flag.FlagSet, *int) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	j := fs.Int("j", 0, "parallel evaluations (0 = one per CPU, 1 = sequential)")
	return fs, j
}

// parseFlags parses and maps failures to errParsed (the FlagSet has
// already written the diagnostic to stderr) and -h to errHelp (usage was
// printed; the invocation succeeded).
func parseFlags(fs *flag.FlagSet, args []string) error {
	switch err := fs.Parse(args); {
	case err == nil:
		return nil
	case errors.Is(err, flag.ErrHelp):
		return errHelp
	default:
		return fmt.Errorf("%w: %v", errParsed, err)
	}
}

func cmdRun(args []string, stdout, stderr io.Writer) error {
	fs, j := newFlagSet("run", stderr)
	test := fs.String("test", "", "restrict output to one test (e.g. Example05)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	experiments.SetParallelism(*j)
	res, err := experiments.MFEMResults()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-12s %-46s %-10s %-12s %s\n", "test", "compilation", "speedup", "compare", "class")
	for _, name := range res.TestNames() {
		if *test != "" && name != *test {
			continue
		}
		for _, rr := range res.SortedBySpeed(name) {
			class := "bitwise-equal"
			if rr.Variable() {
				class = "VARIABLE"
			}
			fmt.Fprintf(stdout, "%-12s %-46s %-10.3f %-12.3g %s\n",
				name, rr.Comp, res.Speedup(rr), rr.CompareVal, class)
		}
	}
	return nil
}

func parseCompilation(s string) (comp.Compilation, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return comp.Compilation{}, fmt.Errorf("compilation %q: want 'compiler -Olevel [switches]'", s)
	}
	return comp.Compilation{
		Compiler: fields[0],
		OptLevel: fields[1],
		Switches: strings.Join(fields[2:], " "),
	}, nil
}

func cmdBisect(args []string, stdout, stderr io.Writer) error {
	fs, j := newFlagSet("bisect", stderr)
	test := fs.String("test", "", "test name (e.g. Example13)")
	compStr := fs.String("comp", "", "variable compilation, e.g. 'g++ -O3 -mavx2 -mfma'")
	k := fs.Int("k", 0, "find only the top-k contributors (0 = all, with verification)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *test == "" || *compStr == "" {
		return fmt.Errorf("bisect requires -test and -comp")
	}
	variable, err := parseCompilation(*compStr)
	if err != nil {
		return err
	}
	experiments.SetParallelism(*j)
	wf := experiments.MFEMWorkflow()
	tc := wf.TestByName(*test)
	if tc == nil {
		return fmt.Errorf("unknown test %q (Example01..Example19)", *test)
	}
	report, err := wf.Bisect(tc, variable, *k)
	if err != nil {
		return err
	}
	if report.NoVariability {
		fmt.Fprintln(stdout, "no variability attributable to compiled files",
			"(it may come from the link step)")
		return nil
	}
	fmt.Fprintf(stdout, "executions: %d\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Fprintf(stdout, "file %-22s magnitude %-12.4g symbols: %s\n", ff.File, ff.Value, ff.Status)
		for _, sf := range ff.Symbols {
			fmt.Fprintf(stdout, "    %-40s %.4g\n", sf.Item, sf.Value)
		}
	}
	return nil
}

func cmdExperiments(args []string, stdout, stderr io.Writer) error {
	fs, j := newFlagSet("experiments", stderr)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	experiments.SetParallelism(*j)
	names := fs.Args()
	if len(names) == 0 || names[0] == "all" {
		names = []string{"table1", "figure4", "figure5", "figure6", "table3",
			"findings", "motivation", "table4", "laghos-nan", "table2", "table5", "mpi"}
	}
	for _, name := range names {
		fmt.Fprintf(stdout, "=== %s ===\n", name)
		if err := runExperiment(name, stdout); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

func runExperiment(name string, w io.Writer) error {
	switch name {
	case "table1":
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderTable1(rows))
	case "figure4":
		for _, ex := range []int{5, 9} {
			s, err := experiments.Figure4(ex)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s: %d compilations\n", s.Example, len(s.Points))
			if s.HasEqual {
				fmt.Fprintf(w, "  fastest bitwise equal: %-40s speedup %.3f\n",
					s.FastestEqual.Comp, s.FastestEqual.Speedup)
			}
			if s.HasVariable {
				fmt.Fprintf(w, "  fastest variable:      %-40s speedup %.3f  variability %.3g\n",
					s.FastestVariable.Comp, s.FastestVariable.Speedup, s.FastestVariable.Error)
			}
		}
	case "figure5":
		rows, err := experiments.Figure5()
		if err != nil {
			return err
		}
		repro := 0
		fmt.Fprintf(w, "%-8s %-10s %-10s %-10s %-12s %s\n",
			"example", "g++", "clang++", "icpc", "variable", "fastest-reproducible")
		for _, r := range rows {
			bar := func(c string) string {
				if v, ok := r.EqualByCompiler[c]; ok {
					return fmt.Sprintf("%.3f", v)
				}
				return "-"
			}
			va := "-"
			if r.HasVariable {
				va = fmt.Sprintf("%.3f", r.FastestVariable)
			}
			if r.FastestIsReproducible {
				repro++
			}
			fmt.Fprintf(w, "%-8d %-10s %-10s %-10s %-12s %v\n", r.Example,
				bar(comp.GCC), bar(comp.Clang), bar(comp.ICPC), va, r.FastestIsReproducible)
		}
		fmt.Fprintf(w, "%d of 19 examples fastest with a bitwise-reproducible compilation (paper: 14)\n", repro)
	case "figure6":
		rows, err := experiments.Figure6()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %-14s %-12s %-12s %s\n", "example", "# variable/244", "min err", "median err", "max err")
		for _, r := range rows {
			if r.VariableComps == 0 {
				fmt.Fprintf(w, "%-8d %-14d (invariant)\n", r.Example, 0)
				continue
			}
			fmt.Fprintf(w, "%-8d %-14d %-12.3g %-12.3g %.3g\n",
				r.Example, r.VariableComps, r.MinErr, r.MedianErr, r.MaxErr)
		}
	case "table2":
		rows, total, err := experiments.Table2(0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "variable (test, compilation) pairs bisected: %d\n", total)
		fmt.Fprint(w, experiments.RenderTable2(rows))
	case "table3":
		fmt.Fprintf(w, "%-30s %-12s %s\n", "metric", "measured", "paper")
		for _, r := range experiments.Table3() {
			fmt.Fprintf(w, "%-30s %-12.5g %.6g\n", r.Metric, r.Measured, r.Paper)
		}
	case "findings":
		fs, err := experiments.Findings()
		if err != nil {
			return err
		}
		for _, f := range fs {
			fmt.Fprintf(w, "Example %d: max relative error %.3g, %d compilations examined\n",
				f.Example, f.MaxRelErr, len(f.Compilations))
			for _, fn := range f.Functions {
				fmt.Fprintf(w, "    %s\n", fn)
			}
		}
	case "motivation":
		mo, err := experiments.RunMotivation()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "xlc++ -O2: energy norm %.1f, %.1f s\n", mo.NormO2, mo.SecondsO2)
		fmt.Fprintf(w, "xlc++ -O3: energy norm %.1f, %.1f s\n", mo.NormO3, mo.SecondsO3)
		fmt.Fprintf(w, "relative difference %.1f%% (paper: 11.2%%), speedup %.2fx (paper: 2.42x)\n",
			100*mo.RelDiff, mo.SpeedupFactor)
	case "table4":
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderTable4(rows))
	case "laghos-nan":
		res, err := experiments.RunNaNBug()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "executions: %d (paper: 45)\nsymbols:\n", res.Execs)
		for _, s := range res.Symbols {
			fmt.Fprintf(w, "    %s\n", s)
		}
	case "table5":
		sum, err := experiments.Table5(1)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderTable5(sum))
	case "table5-sample":
		sum, err := experiments.Table5(13)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderTable5(sum))
	case "mpi":
		rows, err := experiments.MPIStudy(4, 3)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.RenderMPI(rows))
	case "sweep":
		digest, err := experiments.Sweep(experiments.Parallelism())
		if err != nil {
			return err
		}
		fmt.Fprint(w, digest)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
