package link

import (
	"errors"
	"testing"

	"repro/internal/comp"
	"repro/internal/fp"
	"repro/internal/prog"
)

// testProgram builds a small two-file program:
//
//	math.cpp:   Dot (exported, reduction), Scale (exported),
//	            helper (internal, mul-add, called by Dot)
//	driver.cpp: Main (exported, calls Dot, Scale)
func testProgram() *prog.Program {
	p := prog.New("linktest")
	p.AddFile("math.cpp",
		&prog.Symbol{Name: "Dot", Exported: true, Work: 4, FPOps: 6,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"helper"}},
		&prog.Symbol{Name: "Scale", Exported: true, Work: 1, FPOps: 2,
			Features: prog.Features{ShortExpr: true}},
		&prog.Symbol{Name: "helper", Exported: false, Work: 1, FPOps: 3,
			Features: prog.Features{MulAdd: true}},
	)
	p.AddFile("driver.cpp",
		&prog.Symbol{Name: "Main", Exported: true, Work: 2, FPOps: 4,
			Features: prog.Features{SqrtLibm: true},
			Callees:  []string{"Dot", "Scale"}},
	)
	return p
}

var (
	baseC = comp.Baseline()
	varC  = comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3",
		Switches: "-funsafe-math-optimizations -mavx2 -mfma"}
)

func TestFullBuildResolvesEverySymbol(t *testing.T) {
	p := testProgram()
	ex, err := FullBuild(p, varC)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	env, done := m.Fn("Dot")
	if m.Comp() != varC {
		t.Fatalf("Dot bound to %s, want %s", m.Comp(), varC)
	}
	_ = env
	done()
	if m.Depth() != 0 {
		t.Fatalf("stack depth %d after done", m.Depth())
	}
}

func TestLinkValidation(t *testing.T) {
	p := testProgram()
	if _, err := Link(Plan{}); err == nil {
		t.Fatal("nil program accepted")
	}
	if _, err := Link(Plan{Prog: p, Baseline: baseC,
		FileComp: map[string]comp.Compilation{"nosuch.cpp": varC}}); err == nil {
		t.Fatal("unknown file accepted")
	}
	if _, err := Link(Plan{Prog: p, Baseline: baseC,
		SymbolComp: map[string]comp.Compilation{"nosuch": varC}}); err == nil {
		t.Fatal("unknown symbol accepted")
	}
	_, err := Link(Plan{Prog: p, Baseline: baseC,
		SymbolComp: map[string]comp.Compilation{"helper": varC}})
	if !errors.Is(err, ErrDuplicateStrong) {
		t.Fatalf("overriding internal symbol: err = %v, want ErrDuplicateStrong", err)
	}
}

func TestDefaultDriverIsBaselineCompiler(t *testing.T) {
	p := testProgram()
	ex, err := Link(Plan{Prog: p, Baseline: baseC})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Driver() != comp.GCC {
		t.Fatalf("driver = %s", ex.Driver())
	}
}

func TestFileMixBinding(t *testing.T) {
	p := testProgram()
	ex, err := FileMixBuild(p, baseC, varC, []string{"math.cpp"})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ex.NewMachine()
	_, done := m.Fn("Dot")
	if m.Comp() != varC {
		t.Fatalf("math.cpp symbol bound to %s", m.Comp())
	}
	done()
	_, done = m.Fn("Main")
	if m.Comp() != baseC {
		t.Fatalf("driver.cpp symbol bound to %s", m.Comp())
	}
	done()
}

func TestInternalSymbolFollowsCallerCopy(t *testing.T) {
	p := testProgram()
	// Symbol mix: Dot overridden with the variable compilation.
	ex, err := SymbolMixBuild(p, baseC, varC, []string{"Dot"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Crashes() {
		t.Skip("this (compilation,file) pair is ABI-hazardous by the deterministic rule")
	}
	m, _ := ex.NewMachine()

	// Called under Dot (variable copy), helper binds to the variable
	// compilation with fPIC.
	_, doneDot := m.Fn("Dot")
	wantVar := varC.WithFPIC()
	if got := m.Comp(); got != wantVar {
		t.Fatalf("Dot bound to %s, want %s", got, wantVar)
	}
	_, doneHelper := m.Fn("helper")
	if got := m.Comp(); got != wantVar {
		t.Fatalf("helper under Dot bound to %s, want %s", got, wantVar)
	}
	doneHelper()
	doneDot()

	// Called under Scale (baseline copy of the same file), helper binds to
	// the baseline (fPIC) compilation.
	_, doneScale := m.Fn("Scale")
	wantBase := baseC.WithFPIC()
	if got := m.Comp(); got != wantBase {
		t.Fatalf("Scale bound to %s, want %s", got, wantBase)
	}
	_, doneHelper = m.Fn("helper")
	if got := m.Comp(); got != wantBase {
		t.Fatalf("helper under Scale bound to %s, want %s", got, wantBase)
	}
	doneHelper()
	doneScale()

	// Called with no same-file caller, helper binds to the file-level
	// compilation (baseline: no file override in a symbol mix).
	_, doneHelper = m.Fn("helper")
	if got := m.Comp(); got != baseC {
		t.Fatalf("bare helper bound to %s, want %s", got, baseC)
	}
	doneHelper()
}

func TestCrossFileCalleeUnaffectedByCallerCopy(t *testing.T) {
	p := testProgram()
	ex, err := SymbolMixBuild(p, baseC, varC, []string{"Main"})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Crashes() {
		t.Skip("ABI-hazardous pair")
	}
	m, _ := ex.NewMachine()
	_, doneMain := m.Fn("Main")
	// Dot is exported and lives in another file: it keeps its own binding.
	_, doneDot := m.Fn("Dot")
	if got := m.Comp(); got != baseC {
		t.Fatalf("exported cross-file callee bound to %s, want baseline", got)
	}
	doneDot()
	doneMain()
}

func TestCrashingExecutable(t *testing.T) {
	p := testProgram()
	// Find an icpc compilation/file pair that triggers the deterministic
	// file-mix hazard.
	var crashed *Executable
	for _, c := range comp.Matrix() {
		if c.Compiler != comp.ICPC {
			continue
		}
		ex, err := FileMixBuild(p, baseC, c, []string{"math.cpp"})
		if err != nil {
			t.Fatal(err)
		}
		if ex.Crashes() {
			crashed = ex
			break
		}
	}
	if crashed == nil {
		t.Skip("no hazardous pair among the matrix for this tiny program")
	}
	if _, err := crashed.NewMachine(); !errors.Is(err, ErrSegfault) {
		t.Fatalf("NewMachine on crashing executable: %v", err)
	}
}

func TestGccGccMixNeverCrashes(t *testing.T) {
	p := testProgram()
	for _, c := range comp.Matrix() {
		if c.Compiler != comp.GCC {
			continue
		}
		ex, err := FileMixBuild(p, baseC, c, p.FileNames())
		if err != nil {
			t.Fatal(err)
		}
		if ex.Crashes() {
			t.Fatalf("gcc/gcc file mix crashed for %s", c)
		}
	}
}

func TestIcpcDriverSubstitutesSVML(t *testing.T) {
	p := testProgram()
	icpcO0 := comp.Compilation{Compiler: comp.ICPC, OptLevel: "-O0"}
	ex, err := FullBuild(p, icpcO0)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ex.NewMachine()
	env, done := m.Fn("Main") // Main has SqrtLibm
	defer done()
	if !env.Sem().ApproxMath {
		t.Fatal("icpc-driven link did not substitute approximate libm at -O0")
	}
	// The same compilation's objects linked by g++ lose the substitution.
	ex2, err := FileMixBuild(p, baseC, icpcO0, p.FileNames())
	if err != nil {
		t.Fatal(err)
	}
	if ex2.Crashes() {
		t.Skip("hazardous pair")
	}
	m2, _ := ex2.NewMachine()
	env2, done2 := m2.Fn("Main")
	defer done2()
	if env2.Sem().ApproxMath {
		t.Fatal("g++-driven link still substituted SVML")
	}
}

func TestInjectionPlanReachesEnv(t *testing.T) {
	p := testProgram()
	inj := fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: 0.125}
	ci := baseC.WithInjection("Dot", inj)
	ex, err := FullBuild(p, ci)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ex.NewMachine()
	env, done := m.Fn("Dot")
	if !env.Injected() {
		t.Fatal("injected compilation produced clean env for target symbol")
	}
	done()
	env2, done2 := m.Fn("Scale")
	if env2.Injected() {
		t.Fatal("injection leaked to non-target symbol")
	}
	done2()
}

func TestCostReflectsMixedResolution(t *testing.T) {
	p := testProgram()
	full, _ := FullBuild(p, comp.PerfReference())
	o0, _ := FullBuild(p, baseC)
	cFull := full.Cost("Main")
	cO0 := o0.Cost("Main")
	if cO0 <= cFull {
		t.Fatalf("-O0 cost %g not slower than -O2 cost %g", cO0, cFull)
	}
	// Mixed: only math.cpp at -O0 should cost between the two extremes.
	mix, _ := FileMixBuild(p, comp.PerfReference(), baseC, []string{"math.cpp"})
	cMix := mix.Cost("Main")
	if !(cFull < cMix && cMix < cO0) {
		t.Fatalf("mixed cost %g not between %g and %g", cMix, cFull, cO0)
	}
}

func TestCostDeterministic(t *testing.T) {
	p := testProgram()
	ex, _ := FullBuild(p, varC)
	if ex.Cost("Main") != ex.Cost("Main") {
		t.Fatal("cost not deterministic")
	}
}

func TestMachineCompOutsideFrame(t *testing.T) {
	p := testProgram()
	ex, _ := Link(Plan{Prog: p, Baseline: baseC})
	m, _ := ex.NewMachine()
	if m.Comp() != baseC {
		t.Fatal("Comp outside frame should be baseline")
	}
	if m.Executable() != ex {
		t.Fatal("Executable() accessor wrong")
	}
}

func TestFPICProbeBuild(t *testing.T) {
	p := testProgram()
	ex, err := FPICProbeBuild(p, baseC, varC, "math.cpp")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ex.NewMachine()
	_, done := m.Fn("Dot")
	got := m.Comp()
	done()
	if !got.FPIC {
		t.Fatalf("probe did not compile with -fPIC: %s", got)
	}
	if got.Compiler != varC.Compiler || got.OptLevel != varC.OptLevel {
		t.Fatalf("probe compilation wrong: %s", got)
	}
}
