package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestStoreFlagCrossProcess: the CLI acceptance pin for the persistent
// store — the same command run twice against one -store DIR (separate
// run() invocations, i.e. separate "processes" sharing nothing but the
// directory) produces byte-identical stdout, and the second run
// materializes zero builds with nonzero store hits, no -warm-start
// manifest anywhere.
func TestStoreFlagCrossProcess(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	var want, stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-j", "2", "-store", dir, "-stats", "table4"},
		&want, &stderr); code != 0 {
		t.Fatalf("cold run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "store: hits=0") ||
		!strings.Contains(stderr.String(), "puts=") {
		t.Errorf("cold run -stats missing the store line:\n%s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-store", dir, "-stats", "table4"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("warm run: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want.String() {
		t.Errorf("store-warmed output differs from the cold run:\n--- warm ---\n%s\n--- cold ---\n%s",
			stdout.String(), want.String())
	}
	var buildsLine, storeLine string
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, "builds:") {
			buildsLine = line
		}
		if strings.HasPrefix(line, "store:") {
			storeLine = line
		}
	}
	if !strings.Contains(buildsLine, "materialized=0") {
		t.Errorf("store-covered run still built executables: %q", buildsLine)
	}
	if storeLine == "" || strings.Contains(storeLine, "hits=0") {
		t.Errorf("store-covered run reported no store hits: %q", storeLine)
	}

	// Without -stats there is no store line at all, and without -store the
	// stats output stays exactly as it was before the store tier existed.
	stderr.Reset()
	if code := run([]string{"experiments", "-j", "2", "-stats", "table3"}, &stdout, &stderr); code != 0 {
		t.Fatalf("storeless run: exit %d", code)
	}
	if strings.Contains(stderr.String(), "store:") {
		t.Errorf("storeless -stats printed a store line:\n%s", stderr.String())
	}
}

// TestStoreFlagRejectsForeignEngine: a directory fenced to another engine
// version must fail up front — before any evaluation — naming the fence.
func TestStoreFlagRejectsForeignEngine(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "store.json")
	if err := os.WriteFile(manifest,
		[]byte(`{"store_version":1,"engine":"flit-engine/0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-store", dir, "table3"}, &stdout, &stderr); code != 1 {
		t.Fatalf("foreign store: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "flit-engine/0") {
		t.Errorf("diagnostic does not name the foreign engine: %s", stderr.String())
	}
	// The refusal must not have clobbered the foreign manifest.
	raw, err := os.ReadFile(manifest)
	if err != nil || !strings.Contains(string(raw), "flit-engine/0") {
		t.Errorf("foreign manifest was rewritten: %s (%v)", raw, err)
	}
}

// TestStoreFlagRejectsDeltaVerify: -delta-verify exists to recompute
// covered evaluations; a store hit would replay a persisted value and
// report it as a recomputation, so the combination is a usage error.
func TestStoreFlagRejectsDeltaVerify(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "warm.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-shard", "0/1", "-shard-out", art, "table3"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("artifact export: exit %d, stderr: %s", code, stderr.String())
	}
	stderr.Reset()
	code := run([]string{"experiments", "-warm-start", art, "-delta-verify",
		"-store", filepath.Join(dir, "store"), "table3"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("-delta-verify with -store: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-delta-verify") || !strings.Contains(stderr.String(), "-store") {
		t.Errorf("diagnostic does not name both flags: %s", stderr.String())
	}
	// -delta-out (trust mode) still composes with -store.
	stderr.Reset()
	if code := run([]string{"experiments", "-warm-start", art, "-delta-out",
		filepath.Join(dir, "delta.json"), "-store", filepath.Join(dir, "store"), "table3"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("-delta-out with -store: exit %d, stderr: %s", code, stderr.String())
	}
}

// TestStoreSubcommand: `flit store stats` and `flit store gc` inspect and
// prune a populated store directory; malformed invocations are usage
// errors.
func TestStoreSubcommand(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"experiments", "-store", dir, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("populating run: exit %d, stderr: %s", code, stderr.String())
	}

	stdout.Reset()
	if code := run([]string{"store", "stats", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("store stats: exit %d, stderr: %s", code, stderr.String())
	}
	statsOut := stdout.String()
	if !strings.Contains(statsOut, "engine=flit-engine/") ||
		!strings.Contains(statsOut, "corrupt=0") || strings.Contains(statsOut, "entries=0 ") {
		t.Errorf("store stats output unexpected: %q", statsOut)
	}

	// Dry-run plans but deletes nothing; the follow-up stats must agree.
	stdout.Reset()
	if code := run([]string{"store", "gc", "-store", dir, "-max-entries", "1", "-dry-run"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("store gc -dry-run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "would prune") {
		t.Errorf("dry-run gc output unexpected: %q", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"store", "stats", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatal("stats after dry-run failed")
	}
	if stdout.String() != statsOut {
		t.Errorf("dry-run gc changed the store:\nbefore: %q\nafter:  %q", statsOut, stdout.String())
	}

	// Applying prunes down to the bound, and a fresh run recomputes and
	// repopulates without complaint.
	stdout.Reset()
	if code := run([]string{"store", "gc", "-store", dir, "-max-entries", "1"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("store gc: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "kept=1") {
		t.Errorf("gc output unexpected: %q", stdout.String())
	}
	stdout.Reset()
	if code := run([]string{"store", "stats", "-store", dir}, &stdout, &stderr); code != 0 {
		t.Fatal("stats after gc failed")
	}
	if !strings.Contains(stdout.String(), "entries=1 ") {
		t.Errorf("gc did not prune to the bound: %q", stdout.String())
	}
	if code := run([]string{"experiments", "-store", dir, "table4"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run against pruned store: exit %d, stderr: %s", code, stderr.String())
	}

	// Usage errors: missing subcommand, unknown subcommand, missing -store,
	// stray positional arguments.
	for _, args := range [][]string{
		{"store"},
		{"store", "prune"},
		{"store", "stats"},
		{"store", "gc"},
		{"store", "stats", "-store", dir, "stray"},
	} {
		if code := run(args, &stdout, &stderr); code != 1 {
			t.Errorf("%v: exit %d, want 1", args, code)
		}
	}
}
