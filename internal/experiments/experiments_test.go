package experiments

import (
	"strings"
	"testing"

	"repro/internal/comp"
	"repro/internal/inject"
)

func TestTable1Shape(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Compiler] = r
		if r.TotalRuns == 0 {
			t.Fatalf("%s: no runs", r.Compiler)
		}
		if r.Speedup <= 1.0 {
			t.Errorf("%s: best average speedup %.3f <= 1", r.Compiler, r.Speedup)
		}
		if r.BestFlags.OptLevel == "-O0" {
			t.Errorf("%s: best flags at -O0", r.Compiler)
		}
	}
	// The paper's ordering: icpc by far the most variable (49.8%), gcc
	// modest (6.0%), clang the most invariant (1.8%).
	icpcPct := float64(byName[comp.ICPC].VariableRuns) / float64(byName[comp.ICPC].TotalRuns)
	gccPct := float64(byName[comp.GCC].VariableRuns) / float64(byName[comp.GCC].TotalRuns)
	clangPct := float64(byName[comp.Clang].VariableRuns) / float64(byName[comp.Clang].TotalRuns)
	if !(icpcPct > 2*gccPct) {
		t.Errorf("icpc variability %.3f not dominant over gcc %.3f", icpcPct, gccPct)
	}
	if !(gccPct > clangPct) {
		t.Errorf("gcc variability %.3f not above clang %.3f", gccPct, clangPct)
	}
	if icpcPct < 0.15 || icpcPct > 0.85 {
		t.Errorf("icpc variability %.3f out of the paper's ballpark (~0.50)", icpcPct)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "icpc") {
		t.Error("render missing icpc row")
	}
}

func TestFigure4BothPanels(t *testing.T) {
	for _, ex := range []int{5, 9} {
		s, err := Figure4(ex)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Points) < 200 {
			t.Fatalf("example %d: only %d points", ex, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i-1].Speedup > s.Points[i].Speedup+1e-12 {
				t.Fatalf("example %d: points not sorted by speedup", ex)
			}
		}
		if !s.HasEqual || !s.HasVariable {
			t.Fatalf("example %d: missing callouts", ex)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 19 {
		t.Fatalf("%d rows", len(rows))
	}
	repro := 0
	for _, r := range rows {
		if r.FastestIsReproducible {
			repro++
		}
	}
	// Paper: 14 of 19 examples have their fastest compilation bitwise
	// reproducible. Require a solid majority.
	if repro < 10 {
		t.Errorf("only %d/19 examples have reproducible fastest compilations (paper: 14)", repro)
	}
	// Examples 12 and 18 are invariant.
	for _, i := range []int{12, 18} {
		if rows[i-1].HasVariable {
			t.Errorf("invariant example %d shows variability", i)
		}
	}
	// The libm-bearing examples lose their icpc bitwise-equal bar to the
	// Intel link step.
	for _, i := range []int{4, 5, 9, 10, 15} {
		if _, ok := rows[i-1].EqualByCompiler[comp.ICPC]; ok {
			t.Errorf("example %d still has an icpc bitwise-equal bar", i)
		}
	}
	// Non-libm examples keep it.
	for _, i := range []int{1, 2, 12, 18} {
		if _, ok := rows[i-1].EqualByCompiler[comp.ICPC]; !ok {
			t.Errorf("example %d lost its icpc bitwise-equal bar", i)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if rows[11].VariableComps != 0 || rows[17].VariableComps != 0 {
		t.Error("examples 12/18 should have zero variable compilations")
	}
	// Example 13's relative error reaches the ~180-200% territory.
	if rows[12].MaxErr < 0.5 {
		t.Errorf("example 13 max relative error %.3g; paper reports 1.83-1.97", rows[12].MaxErr)
	}
	for _, r := range rows {
		if r.VariableComps > 0 && !(r.MinErr <= r.MedianErr && r.MedianErr <= r.MaxErr) {
			t.Errorf("example %d spread out of order", r.Example)
		}
	}
}

func TestTable2Sampled(t *testing.T) {
	rows, totalVariable, err := Table2(6)
	if err != nil {
		t.Fatal(err)
	}
	if totalVariable < 100 {
		t.Fatalf("only %d variable runs found in the matrix", totalVariable)
	}
	for _, r := range rows {
		if r.FileTotal == 0 {
			t.Fatalf("%s: no searches", r.Compiler)
		}
		if r.FileSuccess > r.FileTotal || r.SymbolSuccess > r.SymbolTotal {
			t.Fatalf("%s: inconsistent success counts %+v", r.Compiler, r)
		}
		if r.AvgExecs <= 2 || r.AvgExecs > 150 {
			t.Errorf("%s: avg executions %.1f implausible (paper: ~30)", r.Compiler, r.AvgExecs)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "File Bisect successes") {
		t.Error("render incomplete")
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 || r.Paper <= 0 {
			t.Fatalf("row %s not populated", r.Metric)
		}
	}
}

func TestFindings(t *testing.T) {
	fs, err := Findings()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("%d findings", len(fs))
	}
	f8, f13 := fs[0], fs[1]
	if f8.Example != 8 || f13.Example != 13 {
		t.Fatal("finding order wrong")
	}
	// Finding 1: several mat/vec functions blamed for example 8.
	if len(f8.Compilations) > 0 && len(f8.Functions) == 0 {
		t.Error("example 8 bisects found no functions")
	}
	// Finding 2: example 13's blame is the AddMult_a_AAt kernel alone.
	for _, fn := range f13.Functions {
		if fn != "DenseMatrix::AddMult_a_AAt" {
			t.Errorf("example 13 blamed %s; paper found only AddMult_a_AAt", fn)
		}
	}
	if f13.MaxRelErr < 0.5 {
		t.Errorf("example 13 max relative error %.3g too small", f13.MaxRelErr)
	}
}

func TestMotivation(t *testing.T) {
	mo, err := RunMotivation()
	if err != nil {
		t.Fatal(err)
	}
	if mo.RelDiff < 0.01 || mo.RelDiff > 0.6 {
		t.Errorf("energy norm moved %.3f; paper: 0.112", mo.RelDiff)
	}
	if mo.SpeedupFactor < 1.8 || mo.SpeedupFactor > 3.2 {
		t.Errorf("O2/O3 speedup factor %.2f; paper: 2.42", mo.SpeedupFactor)
	}
	if mo.SecondsO2 != 51.5 {
		t.Error("O2 runtime not scaled to the paper's 51.5s")
	}
	if mo.SecondsO3 >= mo.SecondsO2 {
		t.Error("-O3 not faster than -O2")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 3 baselines x 4 digit settings
		t.Fatalf("%d rows", len(rows))
	}
	culprit := "LagrangianHydroOperator::UpdateQuadratureData"
	for _, r := range rows {
		if r.Digits > 0 {
			// Digit-limited comparisons see only the big divergence:
			// k=1 must isolate exactly one file and one function.
			if r.Files[0] != 1 || r.Funcs[0] != 1 {
				t.Errorf("%s digits=%d k=1: %d files %d funcs (want 1/1)",
					r.Baseline, r.Digits, r.Files[0], r.Funcs[0])
			}
		}
		for ki := range r.Runs {
			if r.Runs[ki] <= 0 || r.Runs[ki] > 200 {
				t.Errorf("%s digits=%d: runs[%d]=%d out of range",
					r.Baseline, r.Digits, ki, r.Runs[ki])
			}
		}
		// Full precision sees at least as much as digit-limited.
		if r.Digits == 0 && (r.Files[2] < 1 || r.Funcs[2] < 1) {
			t.Errorf("full-precision all-k found nothing: %+v", r)
		}
	}
	// Verify the isolated function really is the culprit for one row.
	s, err := table4TopFunction()
	if err != nil {
		t.Fatal(err)
	}
	if s != culprit {
		t.Errorf("top function = %s, want %s", s, culprit)
	}
	if out := RenderTable4(rows); !strings.Contains(out, "digits") {
		t.Error("render incomplete")
	}
}

func TestNaNBugRediscovery(t *testing.T) {
	res, err := RunNaNBug()
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, s := range res.Symbols {
		found[s] = true
	}
	if !found["TimeIntegrator::SwapLevels"] || !found["TimeIntegrator::RotateBuffers"] {
		t.Fatalf("NaN bug symbols not both found: %v", res.Symbols)
	}
	if res.Execs <= 0 || res.Execs > 150 {
		t.Errorf("NaN re-discovery used %d executions (paper: 45)", res.Execs)
	}
}

func TestTable5Sampled(t *testing.T) {
	sum, err := Table5(29)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Counts[inject.Wrong] != 0 || sum.Counts[inject.Missed] != 0 {
		t.Fatalf("precision/recall violated: %v", sum.Counts)
	}
	if sum.Counts[inject.Exact] == 0 || sum.Counts[inject.Indirect] == 0 {
		t.Fatalf("sample missing exact or indirect finds: %v", sum.Counts)
	}
	if out := RenderTable5(sum); !strings.Contains(out, "exact finds") {
		t.Error("render incomplete")
	}
}

func TestMPIStudy(t *testing.T) {
	rows, err := MPIStudy(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	checked := 0
	for _, r := range rows {
		if !r.Deterministic {
			t.Errorf("example %d: parallel run not deterministic", r.Example)
		}
		if !r.ParallelDiffers {
			t.Errorf("example %d: domain decomposition changed nothing", r.Example)
		}
		if r.Checked {
			checked++
			if !r.SameBlame {
				t.Errorf("example %d: parallel bisect found different blame", r.Example)
			}
		}
	}
	if checked == 0 {
		t.Error("no example had a variable compilation to bisect")
	}
	if out := RenderMPI(rows); !strings.Contains(out, "deterministic") {
		t.Error("render incomplete")
	}
}
