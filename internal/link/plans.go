package link

import (
	"repro/internal/comp"
	"repro/internal/prog"
)

// FullBuild links every file of the program under a single compilation —
// what the FLiT matrix runner does for each cell of the compilation matrix.
// The compilation's own compiler drives the link.
func FullBuild(p *prog.Program, c comp.Compilation) (*Executable, error) {
	fileComp := make(map[string]comp.Compilation, len(p.Files()))
	for _, f := range p.Files() {
		fileComp[f.Name] = c
	}
	return Link(Plan{Prog: p, Baseline: c, FileComp: fileComp, Driver: c.Compiler})
}

// FileMixBuild links the named files compiled under the variable
// compilation and everything else under the baseline — the Test executable
// of File Bisect (Figure 3, left). The baseline compiler drives the link,
// matching FLiT's use of a common GCC-compatible runtime.
func FileMixBuild(p *prog.Program, baseline, variable comp.Compilation, files []string) (*Executable, error) {
	fileComp := make(map[string]comp.Compilation, len(files))
	for _, f := range files {
		fileComp[f] = variable
	}
	return Link(Plan{Prog: p, Baseline: baseline, FileComp: fileComp})
}

// SymbolMixBuild links two -fPIC copies of one file — the named exported
// symbols strong from the variable compilation, the rest strong from the
// baseline — plus baseline objects for all other files: the Test executable
// of Symbol Bisect (Figure 3, right).
func SymbolMixBuild(p *prog.Program, baseline, variable comp.Compilation, symbols []string) (*Executable, error) {
	symComp := make(map[string]comp.Compilation, len(symbols))
	for _, s := range symbols {
		symComp[s] = variable.WithFPIC()
	}
	return Link(Plan{Prog: p, Baseline: baseline, SymbolComp: symComp})
}

// FPICProbeBuild rebuilds one whole file under the variable compilation
// with -fPIC added and the rest under the baseline. Symbol Bisect runs this
// probe first: if the variability disappears, -fPIC defeated the
// optimization that caused it and the search cannot go below file
// granularity (paper §2.3).
func FPICProbeBuild(p *prog.Program, baseline, variable comp.Compilation, file string) (*Executable, error) {
	return FileMixBuild(p, baseline, variable.WithFPIC(), []string{file})
}
