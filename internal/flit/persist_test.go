package flit

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
	"repro/internal/store"
)

// TestStoreWarmCacheBuildsNothing: a fresh Cache sharing only the
// persistent store with an earlier one answers every covered evaluation
// without materializing a single plan — the no-manifest warm start the
// store tier exists for — and the results are bit-identical.
func TestStoreWarmCacheBuildsNothing(t *testing.T) {
	s := newSuite()
	st := store.NewMem(0)
	plan := link.FullBuildPlan(s.Prog, s.Baseline)

	cold := NewCache()
	cold.SetStore(st)
	want, err := cold.RunAllPlanned(s.Tests[0], link.NewBuilder(plan))
	if err != nil {
		t.Fatal(err)
	}
	wantCost, err := cold.CostPlanned(link.NewBuilder(plan), "Kernel")
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.StoreMetrics(); !m.Enabled || m.Puts != 2 || m.Hits != 0 {
		t.Fatalf("cold store metrics = %+v, want 2 puts", m)
	}

	// "Fresh process": a new Cache with no memory of the first.
	warm := NewCache()
	warm.SetStore(st)
	wb := link.NewBuilder(plan)
	got, err := warm.RunAllPlanned(s.Tests[0], wb)
	if err != nil {
		t.Fatal(err)
	}
	if wb.Built() {
		t.Fatal("store-covered run materialized the plan")
	}
	if L2Diff(want, got) != 0 {
		t.Fatal("store hit returned different bits")
	}
	cb := link.NewBuilder(plan)
	gotCost, err := warm.CostPlanned(cb, "Kernel")
	if err != nil {
		t.Fatal(err)
	}
	if cb.Built() {
		t.Fatal("store-covered cost materialized the plan")
	}
	if gotCost != wantCost {
		t.Fatalf("store cost %g != computed %g", gotCost, wantCost)
	}
	m := warm.Metrics()
	if m.Builds != 0 {
		t.Fatalf("store-warm cache materialized %d plans, want 0", m.Builds)
	}
	if m.SkippedBuilds == 0 {
		t.Fatal("no skipped builds recorded on a store-warm cache")
	}
	if m.Store.Hits != 2 || m.Store.Misses != 0 {
		t.Fatalf("warm store metrics = %+v, want 2 hits", m.Store)
	}

	// The eager paths share the same store entries.
	ex, err := link.Link(plan)
	if err != nil {
		t.Fatal(err)
	}
	eagerCache := NewCache()
	eagerCache.SetStore(st)
	eager, err := eagerCache.RunAll(s.Tests[0], ex)
	if err != nil {
		t.Fatal(err)
	}
	if L2Diff(want, eager) != 0 {
		t.Fatal("eager store hit returned different bits")
	}
	if eagerCache.Cost(ex, "Kernel") != wantCost {
		t.Fatal("eager cost missed the persisted entry")
	}
	if m := eagerCache.StoreMetrics(); m.Hits != 2 {
		t.Fatalf("eager store metrics = %+v, want 2 hits", m)
	}
}

// TestStorePersistsRunErrors: a memoized build/run error round-trips
// through the store like artifact export records it — the fresh cache
// surfaces the same failure without re-linking.
func TestStorePersistsRunErrors(t *testing.T) {
	s := newSuite()
	st := store.NewMem(0)
	bad := link.Plan{Prog: s.Prog, Baseline: s.Baseline,
		FileComp: map[string]comp.Compilation{"nosuch.cpp": comp.PerfReference()}}

	first := NewCache()
	first.SetStore(st)
	_, wantErr := first.RunAllPlanned(s.Tests[0], link.NewBuilder(bad))
	if wantErr == nil {
		t.Fatal("unbuildable plan ran")
	}

	second := NewCache()
	second.SetStore(st)
	b := link.NewBuilder(bad)
	_, gotErr := second.RunAllPlanned(s.Tests[0], b)
	if gotErr == nil {
		t.Fatal("persisted build error lost")
	}
	if b.Built() {
		t.Fatal("persisted build error still re-linked the plan")
	}
	if gotErr.Error() != wantErr.Error() {
		t.Fatalf("replayed error %q != original %q", gotErr, wantErr)
	}
	// Cost errors are NOT persisted (mirroring artifact export): the
	// second cache's CostPlanned must recompute and fail afresh.
	if _, err := second.CostPlanned(link.NewBuilder(bad), "Kernel"); err == nil {
		t.Fatal("CostPlanned succeeded on an unbuildable plan")
	}
}

// TestStoreCorruptEntriesAreMisses: payloads that do not decode, validate,
// or match their key must be recomputed, never replayed.
func TestStoreCorruptEntriesAreMisses(t *testing.T) {
	s := newSuite()
	plan := link.FullBuildPlan(s.Prog, s.Baseline)
	runKey := PlanRunKey(link.NewBuilder(plan), s.Tests[0])

	seed := func(payload []byte) *Cache {
		st := store.NewMem(0)
		if err := st.Put(storeRunPrefix+runKey, payload); err != nil {
			t.Fatal(err)
		}
		c := NewCache()
		c.SetStore(st)
		return c
	}
	wrongKey, err := json.Marshal(RunRecord{Key: "some-other-key", Scalar: 42})
	if err != nil {
		t.Fatal(err)
	}
	inconsistent, err := json.Marshal(RunRecord{Key: runKey, IsVec: false, Vec: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for name, payload := range map[string][]byte{
		"garbage":          []byte("not json"),
		"truncated":        []byte(`{"key":"` + runKey[:len(runKey)/2]),
		"wrong key":        wrongKey,
		"inconsistent vec": inconsistent,
	} {
		t.Run(name, func(t *testing.T) {
			c := seed(payload)
			b := link.NewBuilder(plan)
			got, err := c.RunAllPlanned(s.Tests[0], b)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Built() {
				t.Fatal("corrupt store entry was replayed instead of recomputed")
			}
			ref, err := NewCache().RunAllPlanned(s.Tests[0], link.NewBuilder(plan))
			if err != nil {
				t.Fatal(err)
			}
			if L2Diff(got, ref) != 0 {
				t.Fatal("recomputed result differs from a storeless run")
			}
			m := c.StoreMetrics()
			if m.Hits != 0 || m.Errors == 0 {
				t.Fatalf("corrupt entry metrics = %+v, want 0 hits and >0 errors", m)
			}
		})
	}
}

// TestStoreKeyNamespaces: a run key and a cost key spelled identically
// must address different store entries.
func TestStoreKeyNamespaces(t *testing.T) {
	if strings.TrimPrefix(storeRunPrefix, "run") == strings.TrimPrefix(storeCostPrefix, "cost") &&
		storeRunPrefix == storeCostPrefix {
		t.Fatal("run and cost store prefixes collide")
	}
	st := store.NewMem(0)
	st.Put(storeRunPrefix+"k", []byte("r"))
	st.Put(storeCostPrefix+"k", []byte("c"))
	if got, _ := st.Get(storeRunPrefix + "k"); string(got) != "r" {
		t.Fatalf("run namespace returned %q", got)
	}
	if got, _ := st.Get(storeCostPrefix + "k"); string(got) != "c" {
		t.Fatalf("cost namespace returned %q", got)
	}
}

// TestStoreWriteFailureDoesNotFailRun: a store whose Puts fail still
// serves correct results — persistence is best-effort, observability is
// not: the failure count must surface in the metrics.
func TestStoreWriteFailureDoesNotFailRun(t *testing.T) {
	s := newSuite()
	c := NewCache()
	c.SetStore(failingStore{})
	got, err := c.RunAllPlanned(s.Tests[0], link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline)))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCache().RunAllPlanned(s.Tests[0], link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline)))
	if err != nil {
		t.Fatal(err)
	}
	if L2Diff(got, ref) != 0 {
		t.Fatal("failing store changed the result")
	}
	if m := c.StoreMetrics(); m.Errors == 0 || m.Puts != 0 {
		t.Fatalf("failing store metrics = %+v, want errors > 0 and 0 puts", m)
	}
}

// TestStoreCrossProcessMatrixBuildsNothing is the tentpole acceptance pin:
// a full matrix run against a fresh on-disk store, then "new processes"
// (fresh caches with fresh Disk handles on the same directory, at -j 1 and
// fanned out) that reproduce it byte-identically with zero materialized
// builds and no warm-start manifest. A store claimed by a different engine
// version must be rejected at Open, and a truncated entry must be
// recomputed — and thereby healed — never replayed.
func TestStoreCrossProcessMatrixBuildsNothing(t *testing.T) {
	dir := t.TempDir()
	matrix := comp.Matrix()

	openDisk := func() *store.Disk {
		d, err := store.Open(dir, EngineVersion)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	cold := newSuite()
	cold.Cache = NewCache()
	cold.Cache.SetStore(openDisk())
	coldRes, err := cold.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(coldRes)
	if m := cold.Cache.Metrics(); m.Builds == 0 || m.Store.Puts == 0 {
		t.Fatalf("cold run metrics %+v — nothing computed or persisted", m)
	}

	warmRun := func(j int) (CacheMetrics, *store.Disk) {
		warm := newSuite()
		warm.Cache = NewCache()
		d := openDisk()
		warm.Cache.SetStore(d)
		if j > 1 {
			warm.Pool = exec.New(j)
		}
		warmRes, err := warm.RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got := matrixFingerprint(warmRes); got != want {
			t.Errorf("j=%d: store-warmed matrix differs from cold run", j)
		}
		return warm.Cache.Metrics(), d
	}
	for _, j := range []int{1, 8} {
		m, _ := warmRun(j)
		if m.Builds != 0 {
			t.Errorf("j=%d: store-covered matrix materialized %d executables, want 0", j, m.Builds)
		}
		if m.SkippedBuilds == 0 {
			t.Errorf("j=%d: no skipped builds recorded on a store-warm run", j)
		}
		if m.Store.Hits == 0 || m.Store.Misses != 0 {
			t.Errorf("j=%d: store metrics %+v on a fully covered matrix", j, m.Store)
		}
	}

	// Foreign engine versions are fenced out at Open.
	if _, err := store.Open(dir, "flit-engine/0"); err == nil {
		t.Fatal("store written by this engine opened under a foreign version")
	}

	// Truncate one entry mid-file: the damaged key recomputes (exactly one
	// build), the output is unchanged, and the write-through heals the entry
	// so the next process is back to zero builds.
	victim := ""
	filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, ent fs.DirEntry, err error) error {
		if err == nil && !ent.IsDir() && victim == "" {
			victim = path
		}
		return nil
	})
	if victim == "" {
		t.Fatal("no object files on disk after a cold run")
	}
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	m, d := warmRun(8)
	if d.CorruptReads() == 0 {
		t.Error("truncated entry not counted as a corrupt read")
	}
	if m.Builds == 0 {
		t.Error("truncated entry served a hit instead of recomputing")
	}
	if m, _ := warmRun(8); m.Builds != 0 {
		t.Errorf("truncated entry did not heal: %d builds on the follow-up run", m.Builds)
	}
}

type failingStore struct{}

func (failingStore) Get(string) ([]byte, bool) { return nil, false }
func (failingStore) Put(string, []byte) error  { return errFailingStore }
func (failingStore) String() string            { return "failingStore" }

var errFailingStore = jsonError("store unavailable")

type jsonError string

func (e jsonError) Error() string { return string(e) }
