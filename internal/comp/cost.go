package comp

import "repro/internal/prog"

// The deterministic cost model. Runtimes in the paper come from wall-clock
// measurements of the compiled executables; here a run's cost is the sum
// over the executed symbols of Work × SpeedFactor, where SpeedFactor
// captures optimization level, applied FP transformations, and a small
// deterministic per-(compilation,file) scatter standing in for code-layout
// and instruction-scheduling effects. Only the *shape* matters: relative
// ordering of compilations and rough speedup factors.

// optBase returns the baseline time factor for an optimization level,
// per compiler personality (g++ -O2 == 1.0 by construction).
func optBase(compiler, level string) float64 {
	o := optNum(level)
	switch compiler {
	case GCC:
		return [4]float64{2.35, 1.22, 1.00, 0.945}[o]
	case Clang:
		return [4]float64{2.50, 1.25, 1.02, 0.975}[o]
	case ICPC:
		return [4]float64{2.20, 1.18, 0.975, 0.950}[o]
	case XLC:
		// The Laghos motivation example: xlc++ -O3 ran 2.42x faster than
		// -O2 (51.5s -> 21.3s); -O3 aggressive optimization is enormous on
		// that code base.
		// Combined with the vectorization/FMA gains applied at -O3, hot
		// numerical code lands near the 2.42x factor.
		return [4]float64{2.60, 1.40, 1.10, 0.62}[o]
	default:
		return 1.0
	}
}

// SpeedFactor returns the time multiplier for one symbol compiled under c,
// relative to the same symbol under g++ -O2. Smaller is faster.
func SpeedFactor(c Compilation, sym *prog.Symbol) float64 {
	s := Semantics(c, sym)
	f := optBase(c.Compiler, c.OptLevel)

	// Value-changing transformations that were actually applied to this
	// function speed it up a little. The gains are deliberately modest:
	// the paper's central performance observation is that reproducibility
	// rarely costs speed (14 of 19 examples were fastest under a
	// bitwise-reproducible compilation).
	if s.FuseFMA && sym.Features.MulAdd {
		f *= 0.97
	}
	switch {
	case s.ReassocWidth >= 8:
		f *= 0.85
	case s.ReassocWidth >= 4:
		f *= 0.88
	case s.ReassocWidth >= 2:
		f *= 0.95
	}
	if s.UnsafeMath && sym.Features.Division {
		f *= 0.97
	}
	if s.ApproxMath && sym.Features.SqrtLibm {
		f *= 0.95
	}
	if s.ExtendedPrecision {
		f *= 1.45 // x87 / widened temporaries are slow
	}
	if c.FPIC {
		f *= 1.06 // PIC defeats inlining and costs a register
	}
	// Even value-safe switch combinations move performance a little:
	// deterministic scatter in [0.97, 1.03).
	jitter := float64(hash64(c.Compiler, c.OptLevel, c.Switches, sym.File, "jitter")%600)/10000.0 - 0.03
	return f * (1 + jitter)
}

// RunCost sums the cost of executing the given symbols, each under the
// compilation that produced its linked code.
func RunCost(symComp map[*prog.Symbol]Compilation) float64 {
	var total float64
	for sym, c := range symComp {
		total += sym.Work * SpeedFactor(c, sym)
	}
	return total
}
