// Package link simulates the build-and-link step that FLiT Bisect drives:
// compiling each translation unit under some compilation, mixing object
// files from the baseline and the variable compilation (File Bisect), and
// overriding individual exported symbols via the strong/weak-symbol trick
// (Symbol Bisect, paper §2.3 and Figure 3).
//
// Linking yields an Executable. Running application code against an
// Executable resolves, per function invocation, which compilation's
// "generated code" executes, and hands the application an fp.Env with that
// compilation's floating-point semantics. Internal (non-exported) symbols
// cannot be overridden individually: like real translation units, they
// travel with whichever copy of their file the caller came from — which is
// exactly what makes the paper's "indirect finds" and -fPIC limitations
// appear.
package link

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/comp"
	"repro/internal/prog"
)

// ErrSegfault is reported when a mixed executable crashes at run time due
// to binary incompatibility between the compilers involved (paper §3.3).
var ErrSegfault = errors.New("link: mixed executable crashed (segmentation fault)")

// ErrDuplicateStrong is reported when two strong definitions of the same
// symbol reach the linker.
var ErrDuplicateStrong = errors.New("link: duplicate strong symbol")

// Plan describes one executable to build.
type Plan struct {
	// Prog is the application being built.
	Prog *prog.Program
	// Baseline is the compilation used for every file not listed in
	// FileComp (the trusted compilation in a bisect search).
	Baseline comp.Compilation
	// FileComp assigns whole files to a different compilation
	// (File Bisect granularity). Keys are file names.
	FileComp map[string]comp.Compilation
	// SymbolComp overrides individual exported symbols (Symbol Bisect
	// granularity). Keys are symbol names. Both copies of the symbol's
	// file are linked; the named symbols take the given compilation and
	// the file's remaining exported symbols keep the baseline, all
	// recompiled with -fPIC as the paper requires.
	SymbolComp map[string]comp.Compilation
	// Driver is the compiler that performs the final link. Empty means
	// the Baseline's compiler. The Intel driver substitutes SVML for libm
	// regardless of compile-time flags.
	Driver string
}

// Key returns the canonical identity string of the executable this plan
// would build — the exact string Executable.Key produces after Link — without
// linking anything: no plan validation, no ABI-hazard scan, no Executable
// allocation. It is what lets a build/run cache be consulted by plan
// identity first and the build happen only on a miss. Plans with unknown
// file or symbol names still serialize (Link would reject them; the key of
// an unbuildable plan simply never matches a built one's). Prog must be
// non-nil.
func (p Plan) Key() string {
	driver := p.Driver
	if driver == "" {
		driver = p.Baseline.Compiler
	}
	return planKey(p.Prog.Name, p.Baseline, driver, p.FileComp, p.SymbolComp)
}

// planKey serializes a build plan with every free-form component (program,
// driver, file and symbol names) comp.KeyEscape'd and compilations rendered
// through the equally escaped comp.Key, so no two distinct plans share a
// key — the property the build/run cache and the shard-artifact merge rest
// on, enforced by FuzzPlanKeyMatchesExecutableKey and the flit key fuzz
// test. It is the single serializer behind both Plan.Key and
// Executable.Key; driver must already be resolved (non-empty).
func planKey(progName string, baseline comp.Compilation, driver string,
	fileComp, symComp map[string]comp.Compilation) string {
	var b strings.Builder
	b.WriteString(comp.KeyEscape(progName))
	b.WriteString("|base=")
	b.WriteString(baseline.Key())
	b.WriteString("|driver=")
	b.WriteString(comp.KeyEscape(driver))
	if len(fileComp) > 0 {
		files := make([]string, 0, len(fileComp))
		for f := range fileComp {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, f := range files {
			b.WriteString("|f:")
			b.WriteString(comp.KeyEscape(f))
			b.WriteString("=")
			b.WriteString(fileComp[f].Key())
		}
	}
	if len(symComp) > 0 {
		syms := make([]string, 0, len(symComp))
		for s := range symComp {
			syms = append(syms, s)
		}
		sort.Strings(syms)
		for _, s := range syms {
			b.WriteString("|s:")
			b.WriteString(comp.KeyEscape(s))
			b.WriteString("=")
			b.WriteString(symComp[s].Key())
		}
	}
	return b.String()
}

// Executable is a linked program image.
type Executable struct {
	prog     *prog.Program
	baseline comp.Compilation
	fileComp map[string]comp.Compilation
	symComp  map[string]comp.Compilation
	driver   string
	crash    bool

	keyOnce sync.Once
	key     string
}

// Link builds an executable from a plan. An error is returned for malformed
// plans (unknown files or symbols, overriding a non-exported symbol);
// ABI-incompatibility does not fail the link — like a real toolchain the
// problem only appears when the binary runs.
func Link(p Plan) (*Executable, error) {
	if p.Prog == nil {
		return nil, errors.New("link: plan has no program")
	}
	for f := range p.FileComp {
		if p.Prog.File(f) == nil {
			return nil, fmt.Errorf("link: plan names unknown file %q", f)
		}
	}
	for s := range p.SymbolComp {
		sym := p.Prog.Symbol(s)
		if sym == nil {
			return nil, fmt.Errorf("link: plan names unknown symbol %q", s)
		}
		if !sym.Exported {
			// A non-exported symbol has no global entry; both strong
			// copies would collide or the override would silently bind to
			// the wrong copy. FLiT never attempts it.
			return nil, fmt.Errorf("link: symbol %q is not exported; %w", s, ErrDuplicateStrong)
		}
	}
	driver := p.Driver
	if driver == "" {
		driver = p.Baseline.Compiler
	}
	ex := &Executable{
		prog:     p.Prog,
		baseline: p.Baseline,
		fileComp: p.FileComp,
		symComp:  p.SymbolComp,
		driver:   driver,
	}
	ex.crash = ex.abiHazard()
	return ex, nil
}

// abiHazard evaluates the deterministic binary-compatibility rules.
func (e *Executable) abiHazard() bool {
	for f, c := range e.fileComp {
		if c.Compiler != e.baseline.Compiler && comp.FileMixHazard(c, e.baseline, f) {
			return true
		}
	}
	seenFile := map[string]bool{}
	for s, c := range e.symComp {
		f := e.prog.Symbol(s).File
		if seenFile[f] {
			continue
		}
		seenFile[f] = true
		if comp.SymbolMixHazard(c, f) {
			return true
		}
	}
	return false
}

// Crashes reports whether running this executable segfaults.
func (e *Executable) Crashes() bool { return e.crash }

// Key returns a canonical identity string for the build plan behind this
// executable: program, baseline compilation, link driver, and every file-
// and symbol-level override in sorted order. Two executables with equal
// keys run identically (the toolchain is deterministic), which is what
// makes the key usable as a build/run-cache address. Program identity is
// the program name; the cache scope assumes distinct programs have
// distinct names, which holds for the singleton app registries.
//
// An Executable is immutable after Link, so the key is computed once and
// memoized — cache lookups repeat it thousands of times per matrix run.
func (e *Executable) Key() string {
	e.keyOnce.Do(func() { e.key = e.buildKey() })
	return e.key
}

// buildKey delegates to the plan serializer: an Executable's key IS its
// plan's key (Plan.Key for the resolved-driver plan), which is what lets
// key-first callers look a plan up in a cache seeded by built executables.
func (e *Executable) buildKey() string {
	return planKey(e.prog.Name, e.baseline, e.driver, e.fileComp, e.symComp)
}

// Driver returns the linking compiler.
func (e *Executable) Driver() string { return e.driver }

// Program returns the application this executable was built from.
func (e *Executable) Program() *prog.Program { return e.prog }

// fileCompilation returns the compilation assigned to a whole file.
func (e *Executable) fileCompilation(file string) comp.Compilation {
	if c, ok := e.fileComp[file]; ok {
		return c
	}
	return e.baseline
}

// exportedCompilation resolves the compilation providing an exported
// symbol's strong definition.
func (e *Executable) exportedCompilation(sym *prog.Symbol) comp.Compilation {
	if c, ok := e.symComp[sym.Name]; ok {
		return c
	}
	if e.fileHasSymbolOverrides(sym.File) {
		// The file is linked as two -fPIC copies; non-overridden exported
		// symbols bind to the baseline copy.
		return e.baseline.WithFPIC()
	}
	return e.fileCompilation(sym.File)
}

func (e *Executable) fileHasSymbolOverrides(file string) bool {
	for s := range e.symComp {
		if e.prog.Symbol(s).File == file {
			return true
		}
	}
	return false
}

// Cost returns the deterministic runtime cost of executing the program from
// the given roots under this executable's symbol resolution. Internal
// symbols are charged at their file's compilation.
func (e *Executable) Cost(roots ...string) float64 {
	var total float64
	for _, sym := range sortedSymbols(e.prog.Reachable(roots...)) {
		var c comp.Compilation
		if sym.Exported {
			c = e.exportedCompilation(sym)
		} else {
			c = e.fileCompilation(sym.File)
		}
		total += sym.Work * comp.SpeedFactor(c, sym)
	}
	return total
}

// sortedSymbols gives deterministic iteration over a reachability set.
func sortedSymbols(set map[string]*prog.Symbol) []*prog.Symbol {
	out := make([]*prog.Symbol, 0, len(set))
	for _, s := range set {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Name > out[j].Name; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
