package exec

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSubmitRunsAndWait(t *testing.T) {
	sub := New(4).Submitter()
	if sub.Cap() != 3 {
		t.Fatalf("Cap = %d, want workers-1 = 3", sub.Cap())
	}
	f := Submit(sub, func() (int, error) { return 42, nil })
	v, err, ok := f.Wait()
	if !ok || err != nil || v != 42 {
		t.Fatalf("Wait = (%v, %v, %v), want (42, nil, true)", v, err, ok)
	}
	if !f.Ready() {
		t.Error("completed future not Ready")
	}
	// Errors pass through.
	boom := errors.New("boom")
	f2 := Submit(sub, func() (int, error) { return 0, boom })
	if _, err, ok := f2.Wait(); !ok || !errors.Is(err, boom) {
		t.Fatalf("error not delivered: err=%v ok=%v", err, ok)
	}
}

func TestSequentialPoolDisablesSubmission(t *testing.T) {
	for _, p := range []*Pool{nil, Sequential(), New(1)} {
		if sub := p.Submitter(); sub != nil {
			t.Errorf("pool %+v: Submitter = %v, want nil", p, sub)
		}
	}
	var nilSub *Submitter
	if nilSub.Cap() != 0 {
		t.Error("nil submitter has capacity")
	}
	f := Submit(nilSub, func() (int, error) { t.Error("fn ran on nil submitter"); return 0, nil })
	if f != nil {
		t.Fatal("Submit on nil submitter returned a future")
	}
	// A nil future behaves as already-cancelled.
	if _, _, ok := f.Wait(); ok {
		t.Error("nil future Wait reported ok")
	}
	if !f.Cancel() {
		t.Error("nil future Cancel = false")
	}
	if !f.Ready() {
		t.Error("nil future not Ready")
	}
}

func TestCancelQueuedFutureNeverRuns(t *testing.T) {
	sub := New(2).Submitter() // capacity 1
	block := make(chan struct{})
	started := make(chan struct{})
	slow := Submit(sub, func() (int, error) { close(started); <-block; return 1, nil })
	<-started // the single slot is now held
	ran := false
	queued := Submit(sub, func() (int, error) { ran = true; return 2, nil })
	if !queued.Cancel() {
		t.Fatal("Cancel on a queued future = false")
	}
	if !queued.Cancel() {
		t.Error("Cancel not idempotent")
	}
	if _, _, ok := queued.Wait(); ok {
		t.Error("cancelled future Wait reported ok")
	}
	close(block)
	if _, _, ok := slow.Wait(); !ok {
		t.Error("running future lost its result")
	}
	if ran {
		t.Error("cancelled future executed anyway")
	}
}

func TestCancelAfterStartKeepsResult(t *testing.T) {
	sub := New(2).Submitter()
	started := make(chan struct{})
	release := make(chan struct{})
	f := Submit(sub, func() (int, error) { close(started); <-release; return 7, nil })
	<-started
	if f.Cancel() {
		t.Fatal("Cancel claimed to prevent a running future")
	}
	close(release)
	if v, _, ok := f.Wait(); !ok || v != 7 {
		t.Fatalf("Wait = (%v, ok=%v) after failed Cancel", v, ok)
	}
}

func TestSubmitterBoundsConcurrency(t *testing.T) {
	const capacity = 2
	sub := New(capacity + 1).Submitter()
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	futs := make([]*Future[struct{}], 0, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		futs = append(futs, Submit(sub, func() (struct{}, error) {
			defer wg.Done()
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			cur.Add(-1)
			return struct{}{}, nil
		}))
	}
	wg.Wait()
	for _, f := range futs {
		f.Wait()
	}
	if got := max.Load(); got > capacity {
		t.Fatalf("%d submissions ran concurrently, capacity %d", got, capacity)
	}
}
