// laghos-bisect reproduces the paper's Laghos case study (§1 and §3.4): the
// 11.2%/2.42x motivating incident, the automated re-discovery of the
// NaN-producing XOR-swap macro, and the digit-limited Bisect that isolates
// the exact q == 0.0 comparison — including the developers' epsilon fix.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/apps/laghos"
	"repro/internal/comp"
	"repro/internal/experiments"
	"repro/internal/link"
)

func main() {
	j := flag.Int("j", 0, "parallel evaluations (0 = one per CPU, 1 = sequential; "+
		"output is byte-identical at every -j — the speculative bisect engine "+
		"commits only what the sequential algorithm would have chosen)")
	flag.Parse()
	experiments.SetParallelism(*j)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// The motivating example: xlc++ -O2 -> -O3.
	mo, err := experiments.RunMotivation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Motivating incident (paper §1):")
	fmt.Fprintf(w, "  xlc++ -O2: energy norm %10.1f   runtime %5.1f s\n", mo.NormO2, mo.SecondsO2)
	fmt.Fprintf(w, "  xlc++ -O3: energy norm %10.1f   runtime %5.1f s\n", mo.NormO3, mo.SecondsO3)
	fmt.Fprintf(w, "  relative difference %.1f%% (paper: 11.2%%), speedup %.2fx (paper: 2.42x)\n\n",
		100*mo.RelDiff, mo.SpeedupFactor)

	// The public-branch NaN bug.
	nan, err := experiments.RunNaNBug()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "NaN bug re-discovery: %d executions (paper: 45); symbols:\n", nan.Execs)
	for _, s := range nan.Symbols {
		fmt.Fprintf(w, "  -> %s\n", s)
	}

	// Table 4: digit-limited bisect against three baselines.
	fmt.Fprintln(w, "\nTable 4 — Bisect statistics (files/funcs/runs for k = 1, 2, all):")
	rows, err := experiments.Table4()
	if err != nil {
		return err
	}
	fmt.Fprint(w, experiments.RenderTable4(rows))

	// The developers' fix restores agreement.
	fixed := laghos.Options{EpsilonFix: true}
	base, err := link.FullBuild(laghos.Program(), comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"})
	if err != nil {
		return err
	}
	o3, err := link.FullBuild(laghos.Program(), comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"})
	if err != nil {
		return err
	}
	mb, err := base.NewMachine()
	if err != nil {
		return err
	}
	m3, err := o3.NewMachine()
	if err != nil {
		return err
	}
	sb := laghos.Simulate(mb, fixed, 0.4)
	s3 := laghos.Simulate(m3, fixed, 0.4)
	nb := laghos.EnergyNorm(mb, sb.E)
	n3 := laghos.EnergyNorm(m3, s3.E)
	fmt.Fprintf(w, "\nwith the epsilon-comparison fix: norms %.6g vs %.6g (%.2g%% apart)\n",
		nb, n3, 100*abs(n3-nb)/nb)
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
