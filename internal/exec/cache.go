package exec

import (
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe memoizing map with single-flight semantics:
// for each key the compute function runs exactly once, concurrent callers
// of the same key block until the first computation finishes, and every
// caller observes the same value. Values must be treated as immutable by
// all callers — they are shared, not copied.
//
// The reproduction uses it to memoize test runs keyed by build plan: the
// simulated toolchain is deterministic, so a cache hit is bit-identical to
// a re-run, and repeated evaluations during bisect hit the cache instead
// of re-executing the program (the link step itself is cheap and redone).
// Errors are memoized too (a deterministic toolchain fails the same way
// every time).
type Cache[V any] struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry[V]
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	return &Cache[V]{m: make(map[string]*cacheEntry[V])}
}

// Do returns the memoized value for key, computing it with fn on first use.
// A nil cache computes without memoizing, so callers can plumb an optional
// cache through without nil checks.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	if c == nil {
		return fn()
	}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	c.misses.Add(1)
	defer close(e.done)
	e.val, e.err = fn()
	return e.val, e.err
}

// Len reports how many distinct keys have been computed or are in flight.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats reports cache hits and misses, the observability hook the
// equivalence tests use to prove memoization actually engages.
func (c *Cache[V]) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}
