package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps/laghos"
	"repro/internal/bisect"
	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/link"
)

// Motivation reproduces the §1 motivating example: moving Laghos from
// xlc++ -O2 to -O3 changed the ℓ2 energy norm by 11.2% and ran 2.42×
// faster.
type Motivation struct {
	NormO2, NormO3 float64
	RelDiff        float64
	// Simulated runtimes from the deterministic cost model, scaled so the
	// -O2 build matches the paper's 51.5 seconds.
	SecondsO2, SecondsO3 float64
	SpeedupFactor        float64
}

// RunMotivation executes the motivating example.
func RunMotivation() (*Motivation, error) {
	p := laghos.Program()
	o2 := comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"}
	o3 := comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"}
	norm := func(c comp.Compilation) (float64, float64, error) {
		ex, err := link.FullBuild(p, c)
		if err != nil {
			return 0, 0, err
		}
		m, err := ex.NewMachine()
		if err != nil {
			return 0, 0, err
		}
		st := laghos.Simulate(m, laghos.Options{}, 0.4)
		return laghos.EnergyNorm(m, st.E), ex.Cost("main_laghos"), nil
	}
	n2, c2, err := norm(o2)
	if err != nil {
		return nil, err
	}
	n3, c3, err := norm(o3)
	if err != nil {
		return nil, err
	}
	scale := 51.5 / c2
	mo := &Motivation{
		NormO2: n2, NormO3: n3,
		RelDiff:   abs(n3-n2) / n2,
		SecondsO2: 51.5, SecondsO3: c3 * scale,
		SpeedupFactor: c2 / c3,
	}
	return mo, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Table4Row is one cell group of Table 4: one baseline compilation, one
// digit restriction, and the three k values.
type Table4Row struct {
	Baseline comp.Compilation
	Digits   int // 0 means full precision ("all")
	// Per k in {1, 2, 0(=all)}: files found, functions found, runs used.
	Files, Funcs, Runs [3]int
}

// Table4 reproduces the Laghos Bisect statistics on the default engine.
func Table4() ([]Table4Row, error) { return Default().Table4() }

// Table4 reproduces the Laghos Bisect statistics: the compilation under
// test is xlc++ -O3 against three trusted baselines, with digit-restricted
// comparisons and BisectBiggest k values.
//
// The 12 (baseline, digits) row configurations are independent searches,
// fanned out through the engine's pool and collected in row order. The
// digit restriction only changes how results are compared, never what a
// run produces, so all rows share cached executions via the build/run
// cache — the paper's memoization is what makes re-running the same
// divergence under twelve comparison regimes cheap.
func (e *Engine) Table4() ([]Table4Row, error) {
	variable := comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"}
	baselines := []comp.Compilation{
		{Compiler: comp.GCC, OptLevel: "-O2"},
		{Compiler: comp.XLC, OptLevel: "-O2"},
		{Compiler: comp.XLC, OptLevel: "-O3", Switches: "-qstrict=vectorprecision"},
	}
	allDigits := []int{2, 3, 5, 0}
	// A sharded engine evaluates only its slice of the 12 row
	// configurations (partial rows, cache fills for artifact export).
	owned := e.shard.Indices(len(baselines) * len(allDigits))
	return exec.Map(e.pool, len(owned), func(k int) (Table4Row, error) {
		i := owned[k]
		base := baselines[i/len(allDigits)]
		digits := allDigits[i%len(allDigits)]
		row := Table4Row{Baseline: base, Digits: digits}
		test := flit.WithCompare(laghos.NewCase(), flit.DigitL2Diff(digits))
		for ki, k := range []int{1, 2, 0} {
			// Sequential inside: the Map over row configurations is the
			// pooled fan-out level.
			s := &bisect.Search{
				Prog:     laghos.Program(),
				Test:     test,
				Baseline: base,
				Variable: variable,
				K:        k,
				Cache:    e.cache,
			}
			report, err := s.Run()
			e.NoteBisect(report)
			if err != nil {
				return row, fmt.Errorf("laghos bisect (base %s, digits %d, k %d): %w",
					base, digits, k, err)
			}
			row.Files[ki] = len(report.Files)
			row.Funcs[ki] = len(report.AllSymbols())
			row.Runs[ki] = report.Execs
		}
		return row, nil
	})
}

// RenderTable4 prints Table 4 in the paper's layout.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %-6s  %-14s %-14s %-14s\n",
		"baseline", "digits", "# files(1/2/a)", "# funcs(1/2/a)", "# runs(1/2/a)")
	for _, r := range rows {
		d := "all"
		if r.Digits > 0 {
			d = fmt.Sprintf("%d", r.Digits)
		}
		fmt.Fprintf(&b, "%-34s %-6s  %4d %d %d %8d %d %d %8d %d %d\n",
			r.Baseline, d,
			r.Files[0], r.Files[1], r.Files[2],
			r.Funcs[0], r.Funcs[1], r.Funcs[2],
			r.Runs[0], r.Runs[1], r.Runs[2])
	}
	return b.String()
}

// table4TopFunction returns the single most-contributing function of the
// xlc++ -O3 divergence under a 3-digit comparison — the paper's root cause.
func table4TopFunction() (string, error) {
	e := Default()
	s := &bisect.Search{
		Prog:     laghos.Program(),
		Test:     flit.WithCompare(laghos.NewCase(), flit.DigitL2Diff(3)),
		Baseline: comp.Compilation{Compiler: comp.XLC, OptLevel: "-O2"},
		Variable: comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"},
		K:        1,
		Pool:     e.Pool(),
		Cache:    e.Cache(),
	}
	report, err := s.Run()
	e.NoteBisect(report)
	if err != nil {
		return "", err
	}
	syms := report.AllSymbols()
	if len(syms) == 0 {
		return "", fmt.Errorf("no function isolated")
	}
	return syms[0].Item, nil
}

// NaNBugResult is the outcome of re-discovering the public-branch XOR-swap
// bug: the symbols found and the executions used (the paper: the two
// visible symbols closest to the issue, in 45 executions).
type NaNBugResult struct {
	Symbols []string
	Files   []string
	Execs   int
	// SpecExecs is the speculative extra beyond the paper's count —
	// timing-dependent diagnostics, excluded from the rendered output.
	SpecExecs int
}

// RunNaNBug reproduces the NaN-bug re-discovery on the default engine.
func RunNaNBug() (*NaNBugResult, error) { return Default().RunNaNBug() }

// RunNaNBug reproduces the automated re-discovery of the xsw
// undefined-behavior bug.
func (e *Engine) RunNaNBug() (*NaNBugResult, error) {
	s := &bisect.Search{
		Prog:     laghos.Program(),
		Test:     &laghos.Case{Opt: laghos.Options{NaNBug: true}},
		Baseline: comp.Compilation{Compiler: comp.GCC, OptLevel: "-O2"},
		Variable: comp.Compilation{Compiler: comp.XLC, OptLevel: "-O3"},
		Pool:     e.pool,
		Cache:    e.cache,
	}
	report, err := s.Run()
	e.NoteBisect(report)
	if err != nil {
		return nil, err
	}
	out := &NaNBugResult{Execs: report.Execs, SpecExecs: report.SpecExecs}
	for _, ff := range report.Files {
		out.Files = append(out.Files, ff.File)
		for _, sf := range ff.Symbols {
			out.Symbols = append(out.Symbols, sf.Item)
		}
	}
	return out, nil
}
