package inject

import (
	"math"
	"testing"

	"repro/internal/apps/lulesh"
	"repro/internal/comp"
	"repro/internal/fp"
)

func study() *Study {
	return &Study{
		Prog:     lulesh.Program(),
		Test:     lulesh.NewCase(),
		Baseline: comp.Compilation{Compiler: comp.Clang, OptLevel: "-O2"},
	}
}

func TestEnumerateSitesMatchesPaper(t *testing.T) {
	sites := EnumerateSites(lulesh.Program())
	if len(sites) != lulesh.TotalInjectionSites {
		t.Fatalf("enumerated %d sites, want %d", len(sites), lulesh.TotalInjectionSites)
	}
	// 4 OP' per site gives the paper's 4,376 runs.
	if len(sites)*len(fp.AllInjectOps) != 4376 {
		t.Fatalf("total runs = %d, want 4376", len(sites)*4)
	}
	seen := map[Site]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("duplicate site %+v", s)
		}
		seen[s] = true
	}
}

func TestEpsForDeterministicUniform(t *testing.T) {
	s := Site{Symbol: "CalcEnergyForElems", OpIndex: 7}
	a := EpsFor(s, fp.InjAdd)
	if a != EpsFor(s, fp.InjAdd) {
		t.Fatal("EpsFor not deterministic")
	}
	if a <= 0 || a >= 1 {
		t.Fatalf("eps %g outside (0,1)", a)
	}
	if EpsFor(s, fp.InjMul) == a {
		t.Fatal("eps should differ per op")
	}
	// Roughly uniform: mean of many sites near 0.5.
	var sum float64
	sites := EnumerateSites(lulesh.Program())
	for _, site := range sites {
		sum += EpsFor(site, fp.InjAdd)
	}
	mean := sum / float64(len(sites))
	if math.Abs(mean-0.5) > 0.05 {
		t.Fatalf("eps mean %g far from 0.5", mean)
	}
}

func TestExactFindOnExportedFunction(t *testing.T) {
	s := study()
	rep := s.RunOne(Site{Symbol: "CalcAccelerationForNodes", OpIndex: 2}, fp.InjMul)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Outcome != Exact {
		t.Fatalf("outcome = %s (found %v)", rep.Outcome, rep.Found)
	}
	if rep.Execs < 2 {
		t.Fatalf("execs = %d", rep.Execs)
	}
}

func TestIndirectFindOnInternalFunction(t *testing.T) {
	s := study()
	// CalcEnergyForElems is internal; its exported ancestor is
	// ApplyMaterialPropertiesForElems.
	rep := s.RunOne(Site{Symbol: "CalcEnergyForElems", OpIndex: 1}, fp.InjAdd)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Outcome != Indirect && rep.Outcome != NotMeasurable {
		t.Fatalf("outcome = %s (found %v)", rep.Outcome, rep.Found)
	}
	if rep.Outcome == Indirect {
		want := lulesh.Program().ExportedAncestor("CalcEnergyForElems")
		ok := false
		for _, f := range rep.Found {
			if f == want {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("indirect find %v does not include ancestor %s", rep.Found, want)
		}
	}
}

func TestUnreachedSiteNotMeasurable(t *testing.T) {
	s := study()
	rep := s.RunOne(Site{Symbol: "CalcElemNodeNormals", OpIndex: 0}, fp.InjDiv)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep.Outcome != NotMeasurable {
		t.Fatalf("unreached injection scored %s", rep.Outcome)
	}
	if rep.Execs != 1 {
		t.Fatalf("not-measurable should cost 1 detection run, got %d", rep.Execs)
	}
}

func TestSampledStudyPerfectPrecisionRecall(t *testing.T) {
	// A deterministic sample across functions; the full 4,376-run sweep is
	// the Table 5 benchmark.
	s := study()
	all := EnumerateSites(s.Prog)
	var sample []Site
	for i := 0; i < len(all); i += 23 {
		sample = append(sample, all[i])
	}
	sum := s.Run(sample)
	if sum.Total != len(sample)*4 {
		t.Fatalf("total = %d", sum.Total)
	}
	if sum.Counts[Wrong] != 0 {
		t.Fatalf("%d wrong finds (want 0, the paper's precision=100%%)", sum.Counts[Wrong])
	}
	if sum.Counts[Missed] != 0 {
		t.Fatalf("%d missed finds (want 0, the paper's recall=100%%)", sum.Counts[Missed])
	}
	if p := sum.Precision(); p != 1 {
		t.Fatalf("precision = %g", p)
	}
	if r := sum.Recall(); r != 1 {
		t.Fatalf("recall = %g", r)
	}
	if sum.Counts[Exact] == 0 {
		t.Fatal("no exact finds in sample")
	}
	if sum.Counts[Indirect] == 0 {
		t.Fatal("no indirect finds in sample")
	}
	if avg := sum.AvgExecs(); avg <= 3 || avg > 60 {
		t.Fatalf("average executions %g implausible (paper: ~15)", avg)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []Outcome{Exact, Indirect, Wrong, Missed, NotMeasurable, Outcome(9)} {
		if o.String() == "" {
			t.Fatal("empty outcome string")
		}
	}
}
