package lulesh

import (
	"fmt"

	"repro/internal/flit"
	"repro/internal/link"
)

// Case adapts the mini-LULESH run to the flit.TestCase protocol for the
// injection study.
type Case struct {
	// Steps sizes the run; 0 means the study default (12).
	Steps int
}

// NewCase returns the standard LULESH test case.
func NewCase() *Case { return &Case{} }

// Name implements flit.TestCase.
func (c *Case) Name() string { return "LULESH" }

// CacheKey implements flit.CacheKeyer: runs of different lengths share a
// name but not results.
func (c *Case) CacheKey() string {
	if c.Steps != 0 {
		return fmt.Sprintf("%s/steps=%d", c.Name(), c.Steps)
	}
	return c.Name()
}

// Root implements flit.TestCase.
func (c *Case) Root() string { return "main_lulesh" }

// GetInputsPerRun implements flit.TestCase.
func (c *Case) GetInputsPerRun() int { return 1 }

// GetDefaultInput implements flit.TestCase.
func (c *Case) GetDefaultInput() []float64 { return []float64{0.25} }

// Run implements flit.TestCase.
func (c *Case) Run(input []float64, m *link.Machine) (flit.Result, error) {
	steps := c.Steps
	if steps == 0 {
		steps = 12
	}
	return flit.VecResult(Run(m, steps, input[0])), nil
}

// Compare implements flit.TestCase.
func (c *Case) Compare(baseline, other flit.Result) float64 {
	return flit.L2Diff(baseline, other)
}
