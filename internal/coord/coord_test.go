package coord_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// campaignCommand is the canonical campaign every test schedules: the
// Laghos bisect fan-out — cheap but non-trivial, and the same standard
// the CLI's shard/merge equivalence tests replay.
var campaignCommand = []string{"experiments", "table4"}

// fastOpts is the test transport: production shape, millisecond scale.
func fastOpts() *store.RemoteOptions {
	return &store.RemoteOptions{
		Attempts:       4,
		BaseDelay:      time.Millisecond,
		MaxDelay:       4 * time.Millisecond,
		AttemptTimeout: 250 * time.Millisecond,
		Deadline:       10 * time.Second,
	}
}

// serveCampaign starts a coordinator over dir with its object store and
// returns the Flaky fault injector wrapping the whole mux.
func serveCampaign(t *testing.T, c *coord.Coordinator) (*httptest.Server, *storetest.Flaky) {
	t.Helper()
	d, err := store.Open(filepath.Join(c.Dir(), "store"), c.Spec().Engine)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle("/", store.Handler(d))
	mux.Handle("/v1/coord/", coord.Handler(c))
	flaky := storetest.NewFlaky(mux)
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)
	return srv, flaky
}

// runner builds the production worker unit: run the shard with the
// experiments drivers, write results through the server's object store.
func runner(t *testing.T, url string, j int) coord.Runner {
	t.Helper()
	remote, err := store.NewRemote(url, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	return func(command []string, shard exec.Shard) ([]byte, error) {
		return experiments.RunShard(command, shard, j, remote)
	}
}

// unshardedOutput renders the campaign command on a fresh engine — the
// byte-identity reference every converged campaign must reproduce.
func unshardedOutput(t *testing.T, j int) string {
	t.Helper()
	eng := experiments.NewEngineCap(j, 0)
	var buf bytes.Buffer
	if err := experiments.RunCommand(eng, campaignCommand, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// mergedOutput replays the coordinator's completed artifact set exactly
// as `flit merge` would and asserts the replay recomputed nothing.
func mergedOutput(t *testing.T, c *coord.Coordinator, j int) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(c.ArtifactDir(), "shard-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	arts := make([]*flit.Artifact, 0, len(files))
	for _, f := range files {
		a, err := flit.ReadArtifactFile(f)
		if err != nil {
			t.Fatalf("reading %s: %v", f, err)
		}
		arts = append(arts, a)
	}
	if err := flit.ValidateShardSet(arts); err != nil {
		t.Fatalf("completed campaign fails merge validation: %v", err)
	}
	eng := experiments.NewEngineCap(j, 0)
	if err := eng.ImportArtifacts(arts...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := experiments.RunCommand(eng, campaignCommand, &buf); err != nil {
		t.Fatal(err)
	}
	if m := eng.CacheMetrics(); m.Runs.Misses != 0 {
		t.Errorf("merged replay recomputed %d runs; the shard set should cover everything", m.Runs.Misses)
	}
	return buf.String()
}

// TestCampaignConvergesUnderFaults is the headline: a 4-shard campaign
// run by two concurrent workers over HTTP, through a transport fault
// script (503s, stalls, truncations, corruption, foreign fences) aimed
// at coordination and object traffic alike, at j∈{1,8} — the merged
// artifact set must replay byte-identical to an unsharded run.
func TestCampaignConvergesUnderFaults(t *testing.T) {
	for _, j := range []int{1, 8} {
		t.Run(fmt.Sprintf("j%d", j), func(t *testing.T) {
			want := unshardedOutput(t, j)
			c, err := coord.New(t.TempDir(), coord.Spec{Command: campaignCommand, Shards: 4},
				coord.Options{LeaseTTL: 2 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			srv, flaky := serveCampaign(t, c)
			flaky.Push(storetest.Err503, storetest.Pass, storetest.Stall, storetest.Pass,
				storetest.Truncate, storetest.Corrupt, storetest.Pass, storetest.Err503,
				storetest.WrongEngine, storetest.Pass, storetest.Err503)

			var wg sync.WaitGroup
			errs := make([]error, 2)
			for w := 0; w < 2; w++ {
				cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(w int, cl *coord.Client) {
					defer wg.Done()
					_, errs[w] = coord.Work(context.Background(), cl, runner(t, srv.URL, j),
						coord.WorkerOptions{Name: fmt.Sprintf("w%d", w), PollEvery: 10 * time.Millisecond})
				}(w, cl)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			select {
			case <-c.Done():
			default:
				t.Fatal("workers returned but the campaign is not done")
			}
			st := c.Status()
			if !st.Complete || !st.Validated {
				t.Fatalf("campaign not validated: %+v", st)
			}
			if got := mergedOutput(t, c, j); got != want {
				t.Errorf("j=%d: merged output differs from unsharded run", j)
			}
		})
	}
}

// TestLeaseExpiryReLease drives the straggler path against the state
// machine directly with an injected clock: a worker that stops
// heartbeating loses its shard on the next sweep, the shard is re-leased
// to a second worker, and the first worker's lease is dead.
func TestLeaseExpiryReLease(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := coord.New(t.TempDir(), coord.Spec{Command: campaignCommand, Shards: 1},
		coord.Options{LeaseTTL: 10 * time.Second, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	g1, state, err := c.Lease("w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("first lease: state=%v err=%v", state, err)
	}
	// Heartbeats keep it alive across the TTL boundary.
	now = now.Add(8 * time.Second)
	if err := c.Heartbeat("w1", g1.LeaseID, g1.Shard); err != nil {
		t.Fatalf("heartbeat on a live lease: %v", err)
	}
	if _, state, _ := c.Lease("w2"); state != coord.Wait {
		t.Fatalf("second worker got state %v while the shard is leased, want Wait", state)
	}
	// Silence past the TTL: the sweep must hand the shard to w2.
	now = now.Add(11 * time.Second)
	g2, state, err := c.Lease("w2")
	if err != nil || state != coord.Granted {
		t.Fatalf("re-lease after expiry: state=%v err=%v", state, err)
	}
	if g2.Shard != g1.Shard || g2.LeaseID == g1.LeaseID {
		t.Fatalf("re-lease = %+v, want same shard under a fresh lease (was %+v)", g2, g1)
	}
	if n := c.Releases(); n != 1 {
		t.Fatalf("releases = %d, want 1", n)
	}
	if err := c.Heartbeat("w1", g1.LeaseID, g1.Shard); !errors.Is(err, coord.ErrLeaseLost) {
		t.Fatalf("stale heartbeat = %v, want ErrLeaseLost", err)
	}
	// An expired-but-unsuperseded lease, by contrast, renews: drop w2's
	// lease past its TTL without anyone else asking, then heartbeat.
	now = now.Add(11 * time.Second)
	if err := c.Heartbeat("w2", g2.LeaseID, g2.Shard); err != nil {
		t.Fatalf("renewing an expired, unsuperseded lease: %v", err)
	}
}

// TestHeartbeatLossReLeaseAndDuplicateCompletion proves the full
// crash-recovery story over HTTP: worker w1 leases the only shard and
// goes silent (the crash), the lease expires, worker w2 re-leases and
// completes the campaign — and then w1 comes back from the dead and
// reports the same shard twice more under its stale lease. Every
// completion must be accepted, the artifact file must stay byte-stable,
// and the campaign must validate.
func TestHeartbeatLossReLeaseAndDuplicateCompletion(t *testing.T) {
	c, err := coord.New(t.TempDir(), coord.Spec{Command: campaignCommand, Shards: 1},
		coord.Options{LeaseTTL: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv, flaky := serveCampaign(t, c)
	// The dying worker's requests hit transport faults too — they must
	// cost retries, not correctness. Aim the script at coordination calls
	// only so the object-store warmup stays clean.
	flaky.Match = func(r *http.Request) bool {
		return strings.HasPrefix(r.URL.Path, "/v1/coord/")
	}
	flaky.Push(storetest.Err503, storetest.Pass, storetest.Err503)

	cl1, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	g1, state, err := cl1.Lease("w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("w1 lease: state=%v err=%v", state, err)
	}
	// w1 computes its artifact, then "crashes": no heartbeat ever arrives.
	art1, err := runner(t, srv.URL, 2)(g1.Command, exec.Shard{Index: g1.Shard, Count: g1.Count})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		st, err := c.Status(), error(nil)
		_ = err
		if st.Releases >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	// w2 picks up the expired shard and completes the campaign.
	cl2, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := coord.Work(context.Background(), cl2, runner(t, srv.URL, 2),
		coord.WorkerOptions{Name: "w2", PollEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatalf("w2: %v", err)
	}
	if stats.Completed != 1 {
		t.Fatalf("w2 completed %d shards, want 1", stats.Completed)
	}
	artPath := filepath.Join(c.ArtifactDir(), "shard-0.json")
	canonical, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	// The ghost returns: duplicate completions under a long-dead lease.
	for i := 0; i < 2; i++ {
		done, err := cl1.Complete("w1", g1.LeaseID, g1.Shard, art1)
		if err != nil {
			t.Fatalf("duplicate completion %d rejected: %v", i, err)
		}
		if !done {
			t.Errorf("duplicate completion %d over a finished campaign did not report done", i)
		}
	}
	after, err := os.ReadFile(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical, after) {
		t.Error("duplicate completion changed the stored artifact bytes")
	}
	if st := c.Status(); !st.Complete || !st.Validated || st.Done != 1 {
		t.Fatalf("campaign state after duplicates: %+v", st)
	}
	if got, want := mergedOutput(t, c, 2), unshardedOutput(t, 2); got != want {
		t.Error("merged output differs from unsharded run after re-lease + duplicates")
	}
}

// TestCoordinatorRestartRecovery kills the coordinator mid-campaign and
// reopens its directory: completions stay completed, the in-flight lease
// stays leased under its original ID (the worker keeps heartbeating it),
// and the campaign finishes with no duplicate or lost shards.
func TestCoordinatorRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := coord.Spec{Command: campaignCommand, Shards: 3}
	c1, err := coord.New(dir, spec, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	run := func(shard, count int) []byte {
		art, err := experiments.RunShard(campaignCommand, exec.Shard{Index: shard, Count: count}, 2)
		if err != nil {
			t.Fatal(err)
		}
		return art
	}
	g0, state, err := c1.Lease("w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 0: %v %v", state, err)
	}
	if err := c1.Complete("w1", g0.LeaseID, g0.Shard, run(g0.Shard, g0.Count)); err != nil {
		t.Fatal(err)
	}
	g1, state, err := c1.Lease("w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 1: %v %v", state, err)
	}
	// Crash: c1 is abandoned with shard 0 done and shard 1 mid-flight.
	c2, err := coord.New(dir, coord.Spec{}, coord.Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if got := c2.Spec(); coord.CommandString(got.Command) != coord.CommandString(spec.Command) || got.Shards != 3 {
		t.Fatalf("recovered spec = %+v, want %+v", got, spec)
	}
	st := c2.Status()
	if st.Done != 1 || len(st.Completed) != 1 || st.Completed[0] != g0.Shard {
		t.Fatalf("recovered completions: %+v", st)
	}
	if len(st.Leases) != 1 || st.Leases[0].LeaseID != g1.LeaseID || st.Leases[0].Shard != g1.Shard {
		t.Fatalf("recovered leases: %+v, want %s on shard %d", st.Leases, g1.LeaseID, g1.Shard)
	}
	// The worker's heartbeat (same lease ID) lands on the recovered state.
	if err := c2.Heartbeat("w1", g1.LeaseID, g1.Shard); err != nil {
		t.Fatalf("heartbeat across restart: %v", err)
	}
	// Finish: the in-flight shard completes, a fresh worker takes the last
	// one. Leasing must hand out exactly the one remaining shard — a
	// duplicate grant would double-run, a lost one would stall.
	if err := c2.Complete("w1", g1.LeaseID, g1.Shard, run(g1.Shard, g1.Count)); err != nil {
		t.Fatal(err)
	}
	g2, state, err := c2.Lease("w2")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease 2: %v %v", state, err)
	}
	if g2.Shard == g0.Shard || g2.Shard == g1.Shard {
		t.Fatalf("recovered coordinator re-granted shard %d", g2.Shard)
	}
	if err := c2.Complete("w2", g2.LeaseID, g2.Shard, run(g2.Shard, g2.Count)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("campaign did not finish after recovery")
	}
	if st := c2.Status(); !st.Complete || !st.Validated {
		t.Fatalf("recovered campaign not validated: %+v", st)
	}
	if got, want := mergedOutput(t, c2, 2), unshardedOutput(t, 2); got != want {
		t.Error("merged output differs from unsharded run after coordinator restart")
	}
}

// TestRecoveryRefusesMixedCampaigns: reopening a campaign directory with
// a different command or shard count must fail loudly.
func TestRecoveryRefusesMixedCampaigns(t *testing.T) {
	dir := t.TempDir()
	if _, err := coord.New(dir, coord.Spec{Command: campaignCommand, Shards: 2}, coord.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.New(dir, coord.Spec{Command: []string{"experiments", "table3"}, Shards: 2},
		coord.Options{}); err == nil || !strings.Contains(err.Error(), "refusing to mix campaigns") {
		t.Fatalf("foreign command accepted: %v", err)
	}
	if _, err := coord.New(dir, coord.Spec{Command: campaignCommand, Shards: 5},
		coord.Options{}); err == nil || !strings.Contains(err.Error(), "refusing to mix campaigns") {
		t.Fatalf("foreign shard count accepted: %v", err)
	}
}

// TestCompleteRejectsForeignArtifacts: completions carrying the wrong
// engine, command, or shard coordinates must be refused — they would
// poison the merge.
func TestCompleteRejectsForeignArtifacts(t *testing.T) {
	c, err := coord.New(t.TempDir(), coord.Spec{Command: campaignCommand, Shards: 2}, coord.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, state, err := c.Lease("w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: %v %v", state, err)
	}
	// Wrong shard coordinates: an artifact of shard 1 reported as shard 0.
	other, err := experiments.RunShard(campaignCommand, exec.Shard{Index: 1, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w1", g.LeaseID, g.Shard, other); err == nil {
		t.Error("artifact with foreign shard coordinates accepted")
	}
	// Wrong command.
	foreign, err := experiments.RunShard([]string{"experiments", "table3"}, exec.Shard{Index: 0, Count: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("w1", g.LeaseID, g.Shard, foreign); err == nil {
		t.Error("artifact recording a foreign command accepted")
	}
	// Garbage bytes.
	if err := c.Complete("w1", g.LeaseID, g.Shard, []byte("{")); err == nil {
		t.Error("undecodable artifact accepted")
	}
	if st := c.Status(); st.Done != 0 {
		t.Fatalf("rejected completions still marked shards done: %+v", st)
	}
}
