package link

import (
	"repro/internal/comp"
	"repro/internal/fp"
	"repro/internal/prog"
)

// Machine executes application code against one linked executable. It
// tracks the simulated call stack so that internal (non-exported) symbols
// resolve to the copy of their translation unit their caller came from —
// the behavior of real static functions when Symbol Bisect links two copies
// of an object file.
//
// Application functions bracket their bodies with:
//
//	env, done := m.Fn("SymbolName")
//	defer done()
//
// and perform all floating-point arithmetic through env. A Machine is not
// safe for concurrent use; create one Machine per goroutine.
type Machine struct {
	ex    *Executable
	stack []frame
	// envs caches one fp.Env per (symbol, providing compilation) for the
	// lifetime of the run, so a function's dynamic instruction counter
	// accumulates across invocations — an injection at static instruction
	// k of a function called many times fires on every pass through its
	// body, exactly like a real static-instruction perturbation.
	//
	// The key is a comparable struct, not a serialized string: Fn runs once
	// per simulated function invocation, and building a key string there
	// (the pre-sharding code used sym + "\x00" + c.Key()) dominated whole-
	// study profiles. Within one machine every compilation resolves from
	// the executable's own plan values, so struct equality — including the
	// Inject plan's pointer identity — is exactly the sharing the dynamic
	// instruction counters need.
	envs map[envKey]*fp.Env
}

type envKey struct {
	sym string
	c   comp.Compilation
}

type frame struct {
	sym *prog.Symbol
	c   comp.Compilation
}

// NewMachine returns a machine for one run of the executable. It returns
// ErrSegfault if the mixed binary is ABI-incompatible and cannot run.
func (e *Executable) NewMachine() (*Machine, error) {
	if e.crash {
		return nil, ErrSegfault
	}
	return &Machine{ex: e, envs: make(map[envKey]*fp.Env)}, nil
}

// Fn enters the named function: it resolves which compilation provides this
// invocation, builds the fp.Env for that compilation's semantics (including
// link-driver effects and any injection plan), and returns it together with
// a function that must be deferred to leave the frame.
func (m *Machine) Fn(symbol string) (*fp.Env, func()) {
	sym := m.ex.prog.MustSymbol(symbol)
	c := m.resolve(sym)
	m.stack = append(m.stack, frame{sym: sym, c: c})
	env := m.buildEnv(sym, c)
	return env, m.pop
}

func (m *Machine) pop() {
	m.stack = m.stack[:len(m.stack)-1]
}

// resolve decides which compilation's code runs for this invocation.
func (m *Machine) resolve(sym *prog.Symbol) comp.Compilation {
	if sym.Exported {
		return m.ex.exportedCompilation(sym)
	}
	// Internal symbol: bound to the copy of its file that the nearest
	// same-file caller on the stack came from. With no same-file caller
	// (e.g. a test harness calling an internal function directly) it
	// binds to the file-level compilation.
	for i := len(m.stack) - 1; i >= 0; i-- {
		if m.stack[i].sym.File == sym.File {
			return m.stack[i].c
		}
	}
	return m.ex.fileCompilation(sym.File)
}

// buildEnv returns the run-scoped fp.Env for one symbol under one
// compilation, creating it on first entry.
func (m *Machine) buildEnv(sym *prog.Symbol, c comp.Compilation) *fp.Env {
	key := envKey{sym: sym.Name, c: c}
	if env, ok := m.envs[key]; ok {
		return env
	}
	sem := comp.ApplyLinkStep(m.ex.driver, sym, comp.Semantics(c, sym))
	var env *fp.Env
	if c.Inject != nil && c.Inject.Symbol == sym.Name {
		env = fp.NewInjectedEnv(sem, sym.FPOps, c.Inject.Inj)
	} else {
		env = fp.NewEnv(sem)
	}
	m.envs[key] = env
	return env
}

// Comp returns the compilation providing the current (innermost) frame.
// Application code uses it to model compilation-dependent behavior that is
// not floating-point semantics, such as undefined-behavior miscompilation
// (the Laghos xsw macro). Calling Comp outside any frame returns the
// baseline compilation.
func (m *Machine) Comp() comp.Compilation {
	if len(m.stack) == 0 {
		return m.ex.baseline
	}
	return m.stack[len(m.stack)-1].c
}

// Depth returns the current simulated call-stack depth (for tests).
func (m *Machine) Depth() int { return len(m.stack) }

// Executable returns the executable this machine runs.
func (m *Machine) Executable() *Executable { return m.ex }
