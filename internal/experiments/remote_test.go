package experiments

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/flit"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// TestRemoteSweepAcrossMachines: the end-to-end sweep warmed across a
// "machine" boundary, one cold computation paying for every scenario. A
// cold tiered engine (-store DIR -remote URL shape) writes the sweep
// through a local Disk cache AND over the wire into a served shared
// store. Then: fresh remote-only engines sharing nothing but the URL
// reproduce the digest at -j 1 and -j 8 through a fault script (503s,
// stalls, truncated and corrupted envelopes, foreign fences) — faults
// must cost retries and recomputation, never the digest and never the
// run — and a local-tier-only engine proves the write-through filled
// the local cache too.
func TestRemoteSweepAcrossMachines(t *testing.T) {
	shared, err := store.Open(t.TempDir(), flit.EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	flaky := storetest.NewFlaky(store.Handler(shared))
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	opts := &store.RemoteOptions{
		Attempts:       4,
		BaseDelay:      time.Millisecond,
		MaxDelay:       4 * time.Millisecond,
		AttemptTimeout: 60 * time.Millisecond,
		Deadline:       5 * time.Second,
	}
	newClient := func() *store.Remote {
		r, err := store.NewRemote(srv.URL, flit.EngineVersion, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	localDir := t.TempDir()
	openLocal := func() *store.Disk {
		d, err := store.Open(localDir, flit.EngineVersion)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	cold := NewEngine(8)
	cold.AttachStoreTiers(openLocal(), newClient())
	want, err := cold.SweepDigest()
	if err != nil {
		t.Fatal(err)
	}
	if m := cold.CacheMetrics(); !m.Store.Enabled || m.Store.Puts == 0 {
		t.Fatalf("cold sweep persisted nothing: %+v", m.Store)
	}

	for _, j := range []int{1, 8} {
		flaky.Push(storetest.Err503, storetest.Stall, storetest.Truncate,
			storetest.Corrupt, storetest.WrongEngine, storetest.Err503)
		warm := NewEngine(j)
		remote := newClient()
		warm.AttachStoreTiers(remote) // URL only: no local dir, no manifest
		got, err := warm.SweepDigest()
		if err != nil {
			t.Fatalf("j=%d: faulted sweep failed instead of recomputing: %v", j, err)
		}
		if got != want {
			t.Errorf("j=%d: remote-warmed sweep digest differs from the cold run", j)
		}
		rm := remote.Metrics()
		if rm.Hits == 0 {
			t.Errorf("j=%d: remote-warmed sweep recorded no remote hits: %+v", j, rm)
		}
		if rm.Errors == 0 || rm.Retries == 0 {
			t.Errorf("j=%d: fault script left no transport trace: %+v", j, rm)
		}
	}

	// The cold write-through put every result in the local tier as well:
	// drop the remote and the local directory alone must carry the sweep.
	localOnly := NewEngine(4)
	localOnly.AttachStoreTiers(openLocal())
	got, err := localOnly.SweepDigest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("local-tier-only sweep differs after the tiered cold run")
	}
	if m := localOnly.CacheMetrics(); m.Store.Hits == 0 {
		t.Errorf("local tier served no hits: %+v", m.Store)
	}
}
