package flit

import (
	"sync/atomic"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
	"repro/internal/store"
)

// CacheKeyer is implemented by test cases whose run identity is not fully
// captured by Name() — e.g. the MPI variants of the MFEM examples, which
// share a name with their sequential counterpart but traverse the mesh in
// rank-partitioned order. The build/run cache keys on CacheKey() when
// present and Name() otherwise.
type CacheKeyer interface {
	CacheKey() string
}

// TestKey resolves the cache identity of a test case, unwrapping metric
// overrides: WithCompare changes only how results are judged, not what a
// run produces, so digit-restricted views of the same test share cached
// executions.
func TestKey(t TestCase) string {
	for {
		if k, ok := t.(CacheKeyer); ok {
			return k.CacheKey()
		}
		if u, ok := t.(interface{ Unwrap() TestCase }); ok {
			t = u.Unwrap()
			continue
		}
		return t.Name()
	}
}

// RunKey is the canonical identity of one test execution: the executable's
// build-plan key and the test's cache key, NUL-separated. The executable
// key is escape-encoded and NUL-free and the test key is escaped here, so
// no two distinct (program, build plan, test) tuples share a RunKey — the
// injectivity the build/run cache and the shard-artifact merge depend on,
// enforced by FuzzRunKeyInjective.
func RunKey(ex *link.Executable, t TestCase) string {
	return ex.Key() + "\x00" + comp.KeyEscape(TestKey(t))
}

// PlanRunKey is RunKey computed from an unbuilt plan: link.Plan.Key
// produces the exact string Executable.Key would after linking (pinned by
// FuzzPlanKeyMatchesExecutableKey), so the key-first lookups address the
// same cache entries — and the same artifact records — as the eager path.
func PlanRunKey(b *link.Builder, t TestCase) string {
	return b.Key() + "\x00" + comp.KeyEscape(TestKey(t))
}

// costKey addresses the memoized cost model per (executable, root symbol).
func costKey(ex *link.Executable, root string) string {
	return ex.Key() + "\x00" + comp.KeyEscape(root)
}

// planCostKey is costKey computed from an unbuilt plan.
func planCostKey(b *link.Builder, root string) string {
	return b.Key() + "\x00" + comp.KeyEscape(root)
}

type runVal struct {
	res Result
	err error
}

// Cache memoizes test runs keyed by (program, build plan, test): the
// concurrency-safe equivalent of FLiT's memoized bisect evaluations, where
// the same linkage combination is never re-executed. (The simulated link
// step is cheap map construction and is not memoized.) Cached Results are
// shared — callers must treat them as read-only, which every comparison in
// the reproduction does. A nil *Cache is valid and simply runs everything.
//
// A capped cache (NewCacheCap) evicts least-recently-used run entries; the
// toolchain is deterministic, so eviction trades recomputation for memory
// and can never change a result.
type Cache struct {
	runs  *exec.Cache[runVal]
	costs *exec.Cache[float64]

	// store, when non-nil, is the persistent second tier (SetStore):
	// consulted key-first on every in-memory miss before any build work,
	// written through after every computation, fenced to this engine
	// version. storeC counts its traffic; see persist.go.
	store  store.Store
	storeC storeCounters

	// Key-first build accounting: builds counts plans the key-first API
	// actually materialized (at most once per Builder, however many lookups
	// shared it); skippedBuilds counts builders that served at least one
	// cache hit while still unmaterialized — the executables a warm or
	// warm-started run never constructed. Fully covered runs show
	// builds == 0; the CLI surfaces both under -stats.
	builds        atomic.Int64
	skippedBuilds atomic.Int64
}

// NewCache returns an empty, unbounded build/run cache.
func NewCache() *Cache { return NewCacheCap(0) }

// NewCacheCap returns a build/run cache whose run store is capped at
// capacity entries with LRU eviction (<= 0 means unbounded). Run results
// carry whole mesh vectors and dominate the cache's memory; the cost store
// holds one float64 per key and stays unbounded.
func NewCacheCap(capacity int) *Cache {
	return &Cache{runs: exec.NewCacheCap[runVal](capacity), costs: exec.NewCache[float64]()}
}

// RunAll is the memoizing form of the package-level RunAll: the first
// evaluation of a (executable, test) pair executes, every repeat — across
// bisect steps, searches, and experiment drivers — is a cache hit with a
// bit-identical Result. Run errors are memoized too: the toolchain is
// deterministic, so a crashed combination crashes every time. With a
// persistent store attached, an in-memory miss consults it before
// executing and writes any fresh computation through.
func (c *Cache) RunAll(t TestCase, ex *link.Executable) (Result, error) {
	if c == nil {
		return RunAll(t, ex)
	}
	key := RunKey(ex, t)
	v, _ := c.runs.Do(key, func() (runVal, error) {
		if v, ok := c.storeGetRun(key); ok {
			return v, nil
		}
		r, err := RunAll(t, ex)
		v := runVal{res: r, err: err}
		c.storePutRun(key, v)
		return v, nil
	})
	return v.res, v.err
}

// Cost memoizes the deterministic cost model per (executable, root): the
// matrix runner charges every cell's runtime through this.
func (c *Cache) Cost(ex *link.Executable, root string) float64 {
	if c == nil {
		return ex.Cost(root)
	}
	key := costKey(ex, root)
	v, _ := c.costs.Do(key, func() (float64, error) {
		if f, ok := c.storeGetCost(key); ok {
			return f, nil
		}
		f := ex.Cost(root)
		c.storePutCost(key, f)
		return f, nil
	})
	return v
}

// RunAllPlanned is the key-first form of RunAll: the cache is consulted by
// plan identity (PlanRunKey — the string a built Executable's RunKey would
// be), and the plan is materialized through the builder only on a miss. A
// warm hit therefore runs no link step, no ABI-hazard scan, and no test —
// the fast path every covered cell of a warm-started campaign takes. A
// persistent-store hit is the same fast path one tier out: the store is
// consulted by the same plan key before the builder materializes, so a
// second process sharing the store builds nothing for covered cells.
// Errors, whether from the build or the run, are memoized like the eager
// path's: a deterministic toolchain fails the same way every time.
func (c *Cache) RunAllPlanned(t TestCase, b *link.Builder) (Result, error) {
	if c == nil {
		ex, err := b.Build()
		if err != nil {
			return Result{}, err
		}
		return RunAll(t, ex)
	}
	key := PlanRunKey(b, t)
	computed := false
	v, _ := c.runs.Do(key, func() (runVal, error) {
		if v, ok := c.storeGetRun(key); ok {
			return v, nil
		}
		computed = true
		ex, err := b.Build()
		if err != nil {
			v := runVal{err: err}
			c.storePutRun(key, v)
			return v, nil
		}
		r, err := RunAll(t, ex)
		v := runVal{res: r, err: err}
		c.storePutRun(key, v)
		return v, nil
	})
	c.noteBuilder(b, !computed)
	return v.res, v.err
}

// CostPlanned is the key-first form of Cost: looked up by plan identity,
// materializing (and surfacing a build error) only on a miss.
func (c *Cache) CostPlanned(b *link.Builder, root string) (float64, error) {
	if c == nil {
		ex, err := b.Build()
		if err != nil {
			return 0, err
		}
		return ex.Cost(root), nil
	}
	key := planCostKey(b, root)
	computed := false
	v, err := c.costs.Do(key, func() (float64, error) {
		if f, ok := c.storeGetCost(key); ok {
			return f, nil
		}
		computed = true
		ex, err := b.Build()
		if err != nil {
			return 0, err
		}
		f := ex.Cost(root)
		c.storePutCost(key, f)
		return f, nil
	})
	c.noteBuilder(b, !computed)
	return v, err
}

// noteBuilder folds one key-first lookup into the build counters, charging
// each builder at most once per side.
func (c *Cache) noteBuilder(b *link.Builder, hit bool) {
	if b.Built() {
		if b.MarkBuildCounted() {
			c.builds.Add(1)
		}
		return
	}
	if hit && b.MarkSkipCounted() {
		c.skippedBuilds.Add(1)
	}
}

// BuildStats reports how many plans the key-first API materialized and how
// many builders were answered from the cache without ever linking.
func (c *Cache) BuildStats() (builds, skipped int64) {
	if c == nil {
		return 0, 0
	}
	return c.builds.Load(), c.skippedBuilds.Load()
}

// RunEntry is one memoized run with its provenance: the serialized record,
// whether the value was seeded from an artifact (vs computed by this
// process), and how many times the cache answered a request with it. The
// incremental campaign engine's delta detector classifies keys with it.
type RunEntry struct {
	Rec    RunRecord
	Seeded bool
	Uses   int64
}

// RunEntries snapshots every completed run entry with provenance, in
// unspecified order (callers sort).
func (c *Cache) RunEntries() []RunEntry {
	if c == nil {
		return nil
	}
	var out []RunEntry
	c.runs.EachInfo(func(key string, v runVal, _ error, info exec.EntryInfo) {
		out = append(out, RunEntry{Rec: recordOf(key, v), Seeded: info.Seeded, Uses: info.Uses})
	})
	return out
}

// Stats reports (hits, misses) of the run cache.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.runs.Stats()
}

// CacheMetrics snapshots both stores of a build/run cache, plus the
// key-first build accounting: Builds counts plans actually materialized
// through RunAllPlanned/CostPlanned, SkippedBuilds the builders whose every
// consulted entry was already cached — executables a warm run never
// constructed.
type CacheMetrics struct {
	Runs          exec.Metrics
	Costs         exec.Metrics
	Builds        int64
	SkippedBuilds int64
	// Store is the persistent tier's traffic; zero (Enabled false) when no
	// store is attached.
	Store StoreMetrics
}

// Metrics snapshots hit/miss/eviction counters and occupancy of both
// stores — the observability surface behind the CLI's -stats flag.
func (c *Cache) Metrics() CacheMetrics {
	if c == nil {
		return CacheMetrics{}
	}
	return CacheMetrics{
		Runs:          c.runs.Metrics(),
		Costs:         c.costs.Metrics(),
		Builds:        c.builds.Load(),
		SkippedBuilds: c.skippedBuilds.Load(),
		Store:         c.StoreMetrics(),
	}
}
