package exec

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCacheLRUCountersExact walks a deterministic access sequence through a
// capacity-2 cache and checks every counter at every step — the
// single-threaded exactness contract of the eviction metrics.
func TestCacheLRUCountersExact(t *testing.T) {
	c := NewCacheCap[int](2)
	var computes atomic.Int64
	do := func(key string) {
		t.Helper()
		v, err := c.Do(key, func() (int, error) {
			computes.Add(1)
			return len(key), nil
		})
		if err != nil || v != len(key) {
			t.Fatalf("Do(%q) = %d, %v", key, v, err)
		}
	}
	check := func(step string, hits, misses, evictions int64, entries int) {
		t.Helper()
		m := c.Metrics()
		if m.Hits != hits || m.Misses != misses || m.Evictions != evictions || m.Entries != entries {
			t.Fatalf("%s: metrics = %+v, want hits=%d misses=%d evictions=%d entries=%d",
				step, m, hits, misses, evictions, entries)
		}
	}

	do("a")
	check("after a", 0, 1, 0, 1)
	do("bb")
	check("after bb", 0, 2, 0, 2)
	do("a") // hit; a becomes MRU, recency now [a, bb]
	check("after a hit", 1, 2, 0, 2)
	do("ccc") // evicts bb (LRU), recency [ccc, a]
	check("after ccc", 1, 3, 1, 2)
	do("bb") // recomputed: it was evicted; evicts a
	check("after bb again", 1, 4, 2, 2)
	do("ccc") // still resident
	check("after ccc hit", 2, 4, 2, 2)
	if got := computes.Load(); got != 4 {
		t.Errorf("compute count = %d, want 4", got)
	}
	if c.Capacity() != 2 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
}

// TestCacheLRUCapacityUnderConcurrency hammers a capped cache from many
// goroutines; once all computations complete the entry count must respect
// the cap (in-flight entries may transiently exceed it, but completion
// re-enforces the bound).
func TestCacheLRUCapacityUnderConcurrency(t *testing.T) {
	const cap, workers, keys, rounds = 8, 16, 64, 50
	c := NewCacheCap[int](cap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("k%d", (w*31+r*7)%keys)
				if _, err := c.Do(k, func() (int, error) { return 1, nil }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > cap {
		t.Errorf("Len = %d after quiescence, cap %d", got, cap)
	}
	m := c.Metrics()
	if m.Hits+m.Misses != workers*rounds {
		t.Errorf("hits+misses = %d, want %d", m.Hits+m.Misses, workers*rounds)
	}
	if m.Evictions == 0 {
		t.Error("no evictions despite working set exceeding cap")
	}
}

// TestCacheSingleFlightAfterEviction: once a key is evicted, a re-request
// recomputes it exactly once even under concurrent callers — eviction must
// not degrade the single-flight guarantee.
func TestCacheSingleFlightAfterEviction(t *testing.T) {
	c := NewCacheCap[string](1)
	var computes atomic.Int64
	compute := func(key string) func() (string, error) {
		return func() (string, error) {
			computes.Add(1)
			time.Sleep(10 * time.Millisecond) // widen the coalescing window
			return key, nil
		}
	}
	if _, err := c.Do("a", compute("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("b", compute("b")); err != nil { // evicts a
		t.Fatal(err)
	}
	if got := c.Metrics().Evictions; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	const callers = 10
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("a", compute("a"))
			if err != nil || v != "a" {
				t.Errorf("Do(a) = %q, %v", v, err)
			}
		}()
	}
	wg.Wait()
	// 1 for a, 1 for b, exactly 1 recomputation of a across all callers.
	if got := computes.Load(); got != 3 {
		t.Errorf("compute count = %d, want 3 (single flight broken after eviction)", got)
	}
}

// TestCacheSeedAndEach: seeded entries behave like computed ones (served
// without recomputation, visible to Each, subject to the cap), and Seed
// refuses to overwrite.
func TestCacheSeedAndEach(t *testing.T) {
	c := NewCacheCap[int](2)
	if !c.Seed("a", 10, nil) {
		t.Fatal("Seed(a) rejected on empty cache")
	}
	if c.Seed("a", 99, nil) {
		t.Fatal("Seed(a) overwrote an existing entry")
	}
	v, err := c.Do("a", func() (int, error) {
		t.Fatal("seeded key recomputed")
		return 0, nil
	})
	if err != nil || v != 10 {
		t.Fatalf("Do(seeded a) = %d, %v", v, err)
	}
	c.Seed("b", 20, nil)
	c.Seed("c", 30, nil) // evicts the LRU entry
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d after seeding past cap", got)
	}
	seen := map[string]int{}
	c.Each(func(key string, val int, err error) { seen[key] = val })
	if len(seen) != 2 {
		t.Errorf("Each saw %d entries, want 2: %v", len(seen), seen)
	}
	// An unbounded cache seeds without eviction and Each sees everything.
	u := NewCache[int]()
	for i := 0; i < 5; i++ {
		u.Seed(fmt.Sprintf("k%d", i), i, nil)
	}
	n := 0
	u.Each(func(string, int, error) { n++ })
	if n != 5 {
		t.Errorf("unbounded Each saw %d, want 5", n)
	}
	// Nil-cache safety for the new surface.
	var nc *Cache[int]
	if nc.Seed("x", 1, nil) {
		t.Error("nil cache accepted a seed")
	}
	nc.Each(func(string, int, error) { t.Error("nil cache has entries") })
	if m := nc.Metrics(); m != (Metrics{}) {
		t.Errorf("nil cache metrics = %+v", m)
	}
}

// TestCacheDoPanicUnblocksWaiters: a panicking compute function must not
// wedge the cache — concurrent waiters unblock, the entry is dropped, and
// the key recomputes cleanly afterwards.
func TestCacheDoPanicUnblocksWaiters(t *testing.T) {
	c := NewCacheCap[int](4)
	started := make(chan struct{})
	release := make(chan struct{})
	waited := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do("k", func() (int, error) {
			close(started)
			<-release
			panic("compute failed")
		})
	}()
	<-started
	go func() {
		// This waiter blocks on the in-flight entry; it must return once
		// the computation panics.
		c.Do("k", func() (int, error) { return 0, nil })
		close(waited)
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter reach <-done
	close(release)
	select {
	case <-waited:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter deadlocked after compute panic")
	}
	if got := c.Len(); got != 0 {
		t.Errorf("Len = %d after panic, want 0 (entry dropped)", got)
	}
	v, err := c.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Errorf("recompute after panic = %d, %v", v, err)
	}
}
