package flit

import (
	"encoding/json"
	"math"
	"sync/atomic"

	"repro/internal/store"
)

// Persistent tier of the build/run cache.
//
// A Cache with a store attached (SetStore) consults it on every in-memory
// miss before any build work happens, and writes every freshly computed
// value through. The payloads are the artifact layer's own records —
// RunRecord and CostRecord, floats as IEEE-754 bit patterns — so a store
// hit is bit-identical to the computation it replaces, exactly like an
// artifact seed, and the store is fenced to one EngineVersion the same
// way artifacts are (the Disk backend refuses foreign directories at
// Open; every decoded record is additionally validated here).
//
// Trust boundary: the store is a cache of recomputable results, never an
// authority. Anything that does not decode, validate, and match its key
// exactly is treated as a miss and recomputed — a lost entry costs time,
// a believed-corrupt one would cost correctness. Store write failures do
// not fail the run (the computed value is already in memory and correct);
// they are counted and surfaced through Metrics so -stats can report a
// store that has stopped persisting.

// Run and cost entries share one store namespace, so the key spaces are
// prefixed: a test name and a cost-model root symbol may collide as
// strings, but "run\x00k" and "cost\x00k" cannot.
const (
	storeRunPrefix  = "run\x00"
	storeCostPrefix = "cost\x00"
)

// StoreMetrics is the persistent tier's counter snapshot. Hits and Misses
// count store lookups (every one of which was first an in-memory miss);
// Puts counts successful write-throughs; Errors counts undecodable or
// mismatched entries and failed Puts.
type StoreMetrics struct {
	Enabled bool
	Hits    int64
	Misses  int64
	Puts    int64
	Errors  int64
}

// storeCounters aggregates the persistent tier's counters.
type storeCounters struct {
	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
	errors atomic.Int64
}

// SetStore attaches a persistent store as the cache's second tier. Call
// it before the cache serves lookups — the field is not synchronized
// against in-flight computations. A nil store detaches the tier.
func (c *Cache) SetStore(s store.Store) {
	if c == nil {
		return
	}
	c.store = s
}

// storeGetRun consults the persistent tier for one run key. A decodable,
// validated record is a store hit — served without building or running
// anything; everything else (absent, corrupt, foreign, mismatched) is a
// miss that falls through to computation.
func (c *Cache) storeGetRun(key string) (runVal, bool) {
	if c.store == nil {
		return runVal{}, false
	}
	data, ok := c.store.Get(storeRunPrefix + key)
	if !ok {
		c.storeC.misses.Add(1)
		return runVal{}, false
	}
	var r RunRecord
	if err := json.Unmarshal(data, &r); err != nil || r.Key != key || r.validate() != nil {
		c.storeC.misses.Add(1)
		c.storeC.errors.Add(1)
		return runVal{}, false
	}
	c.storeC.hits.Add(1)
	return runValOf(r), true
}

// storePutRun writes one freshly computed run value through to the
// persistent tier. Errors are memoized like values — the toolchain is
// deterministic, so a crashed combination crashes every time — mirroring
// what artifact export records.
func (c *Cache) storePutRun(key string, v runVal) {
	if c.store == nil {
		return
	}
	data, err := json.Marshal(recordOf(key, v))
	if err == nil {
		err = c.store.Put(storeRunPrefix+key, data)
	}
	if err != nil {
		c.storeC.errors.Add(1)
		return
	}
	c.storeC.puts.Add(1)
}

// storeGetCost consults the persistent tier for one cost-model key.
func (c *Cache) storeGetCost(key string) (float64, bool) {
	if c.store == nil {
		return 0, false
	}
	data, ok := c.store.Get(storeCostPrefix + key)
	if !ok {
		c.storeC.misses.Add(1)
		return 0, false
	}
	var r CostRecord
	if err := json.Unmarshal(data, &r); err != nil || r.Key != key {
		c.storeC.misses.Add(1)
		c.storeC.errors.Add(1)
		return 0, false
	}
	c.storeC.hits.Add(1)
	return math.Float64frombits(r.Cost), true
}

// storePutCost writes one computed cost through. Cost errors (a build
// error surfaced through CostPlanned) are never persisted, mirroring
// artifact export: a restored zero-cost success would be a fabrication.
func (c *Cache) storePutCost(key string, cost float64) {
	if c.store == nil {
		return
	}
	data, err := json.Marshal(CostRecord{Key: key, Cost: math.Float64bits(cost)})
	if err == nil {
		err = c.store.Put(storeCostPrefix+key, data)
	}
	if err != nil {
		c.storeC.errors.Add(1)
		return
	}
	c.storeC.puts.Add(1)
}

// StoreMetrics snapshots the persistent tier's counters.
func (c *Cache) StoreMetrics() StoreMetrics {
	if c == nil || c.store == nil {
		return StoreMetrics{}
	}
	return StoreMetrics{
		Enabled: true,
		Hits:    c.storeC.hits.Load(),
		Misses:  c.storeC.misses.Load(),
		Puts:    c.storeC.puts.Load(),
		Errors:  c.storeC.errors.Load(),
	}
}
