package mfem

import "repro/internal/link"

// Vector kernels (vector.cpp). Every kernel enters its registered symbol so
// linked-in compilations decide its floating-point semantics.

// Dot returns x·y.
func Dot(m *link.Machine, x, y []float64) float64 {
	env, done := m.Fn("Vector::Dot")
	defer done()
	return env.Dot(x, y)
}

// Norml2 returns ||x||₂ via the Dot kernel.
func Norml2(m *link.Machine, x []float64) float64 {
	env, done := m.Fn("Vector::Norml2")
	defer done()
	return env.Sqrt(Dot(m, x, x))
}

// Sum returns the sum of the entries of x.
func Sum(m *link.Machine, x []float64) float64 {
	env, done := m.Fn("Vector::Sum")
	defer done()
	return env.Sum(x)
}

// Add stores a+b into dst.
func Add(m *link.Machine, dst, a, b []float64) {
	env, done := m.Fn("Vector::Add")
	defer done()
	for i := range dst {
		dst[i] = env.Add(a[i], b[i])
	}
}

// Subtract stores a-b into dst.
func Subtract(m *link.Machine, dst, a, b []float64) {
	env, done := m.Fn("Vector::Subtract")
	defer done()
	for i := range dst {
		dst[i] = env.Sub(a[i], b[i])
	}
}

// Scale multiplies x by alpha in place.
func Scale(m *link.Machine, alpha float64, x []float64) {
	env, done := m.Fn("Vector::Scale")
	defer done()
	env.Scale(alpha, x)
}

// Axpy computes y += alpha*x.
func Axpy(m *link.Machine, alpha float64, x, y []float64) {
	env, done := m.Fn("Vector::Axpy")
	defer done()
	env.Axpy(alpha, x, y)
}

// Normalize scales x to unit 2-norm and returns the original norm.
// A zero vector is left unchanged.
func Normalize(m *link.Machine, x []float64) float64 {
	env, done := m.Fn("Vector::Normalize")
	defer done()
	n := Norml2(m, x)
	if n == 0 {
		return 0
	}
	Scale(m, env.Div(1, n), x)
	return n
}

// DistanceTo returns ||a-b||₂ computed with a fused difference-square
// accumulation.
func DistanceTo(m *link.Machine, a, b []float64) float64 {
	env, done := m.Fn("Vector::DistanceTo")
	defer done()
	d := make([]float64, len(a))
	for i := range a {
		d[i] = env.Sub(a[i], b[i])
	}
	return env.Sqrt(env.Dot(d, d))
}

// Max returns the largest entry of x (0 for an empty vector). Comparison
// only: never variable.
func Max(m *link.Machine, x []float64) float64 {
	_, done := m.Fn("Vector::Max")
	defer done()
	if len(x) == 0 {
		return 0
	}
	best := x[0]
	for _, v := range x[1:] {
		if v > best {
			best = v
		}
	}
	return best
}
