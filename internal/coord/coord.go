// Package coord is the campaign coordinator ("flitd"): the service that
// turns the shard/merge protocol from a hand-orchestrated workflow into a
// self-healing distributed one. A coordinator owns one campaign — a
// recorded CLI command, an engine version, and an N-way sharding of the
// command's deterministic job space — and hands out time-bounded *leases*
// on shard indices to workers. Workers heartbeat to keep a lease alive,
// run their shard with the ordinary experiments drivers, and report the
// exported artifact back; the coordinator re-leases shards whose
// heartbeats stop (worker crash, stall, network partition), accepts
// duplicate completions idempotently (artifacts for the same shard are
// deterministic and self-validating, so last-writer-wins is safe), and
// journals every state change through the store's atomic-write helper so
// a coordinator restart recovers all leases and completions from disk.
// When the partition completes it runs `flit merge`'s complete-partition
// and engine-fence validation server-side, so a campaign is only reported
// done when the artifact set provably replays byte-identical.
//
// The robustness invariant the whole design leans on is inherited from
// PR 2/6/7: every shard artifact is a pure, self-describing function of
// (engine version, command, shard coordinates). Losing a worker never
// loses correctness — only the wall-clock already spent, and usually not
// even that, because run results were written through to the shared store
// and the re-leased shard replays them as warm hits.
package coord

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/flit"
	"repro/internal/store"
)

// JournalVersion is the on-disk format version of the coordinator journal.
const JournalVersion = 1

// journalName is the journal file at the root of a coordinator directory.
const journalName = "coord.json"

// artifactsDir holds the completed shard artifacts, one file per index.
const artifactsDir = "artifacts"

// ErrLeaseLost is the terminal answer to a heartbeat, release, or
// completion whose lease is no longer the shard's current one: the
// coordinator expired it and may already have promised the shard to
// another worker. A worker receiving it abandons the shard cleanly — the
// run results it computed are already in the shared store, so the new
// owner's run replays them as warm hits.
var ErrLeaseLost = errors.New("coord: lease lost (expired or superseded)")

// badRequest marks an error caused by the caller's input (a malformed or
// mismatched artifact, out-of-range shard coordinates), so the HTTP layer
// can answer 400 instead of blaming the server.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

// IsBadRequest reports whether err is the caller's fault.
func IsBadRequest(err error) bool {
	var b badRequest
	return errors.As(err, &b)
}

// Spec describes one campaign: the canonical recorded command (the same
// []string shard artifacts record for `flit merge`), the engine version
// every participant must share, and the shard count.
type Spec struct {
	Engine  string   `json:"engine"`
	Command []string `json:"command"`
	Shards  int      `json:"shards"`
}

// Options tunes a coordinator. The zero value selects production-shaped
// defaults; tests shrink the TTL and inject a clock.
type Options struct {
	// LeaseTTL is how long a lease lives without a heartbeat (default 10s).
	// Each heartbeat extends the lease by a full TTL.
	LeaseTTL time.Duration
	// Now is the clock (default time.Now); tests inject a fake to drive
	// expiry deterministically.
	Now func() time.Time
}

func (o *Options) withDefaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Grant is one leased shard: everything a worker needs to run it and to
// keep the lease alive while doing so.
type Grant struct {
	Shard   int           `json:"shard"`
	Count   int           `json:"count"`
	Command []string      `json:"command"`
	LeaseID string        `json:"lease_id"`
	TTL     time.Duration `json:"-"`
}

// LeaseState classifies a lease request's outcome.
type LeaseState int

const (
	// Granted: the response carries a Grant.
	Granted LeaseState = iota
	// Wait: every remaining shard is currently leased; poll again.
	Wait
	// Done: the campaign is complete; the worker can exit.
	Done
)

// shardState is one shard's scheduling state. At most one of Done and an
// active lease holds at a time; a shard with neither is available.
type shardState struct {
	done     bool
	artifact string // file name under artifactsDir, set when done
	leaseID  string
	worker   string
	expiry   time.Time
}

// Coordinator is the campaign state machine. All methods are safe for
// concurrent use; every mutation is journaled (atomic temp+rename) before
// it is acknowledged, so an acknowledged lease or completion survives a
// coordinator crash.
type Coordinator struct {
	dir  string
	spec Spec
	opts Options

	mu       sync.Mutex
	shards   []shardState
	seq      int64 // lease-id counter, persisted so recovered IDs never collide
	releases int64 // expired leases handed back to the pool (straggler metric)
	valid    bool  // server-side merge validation passed
	valErr   string
	done     chan struct{} // closed when every shard is complete
}

// New opens (creating or recovering) the coordinator rooted at dir. A
// fresh directory requires a fully specified spec (command + shard count;
// an empty Engine defaults to this build's flit.EngineVersion). A
// directory holding a journal resumes that campaign: an empty spec adopts
// the journaled one, a non-empty spec must match it — silently continuing
// a *different* campaign over recovered state would hand out leases for
// work nobody recorded.
func New(dir string, spec Spec, opts Options) (*Coordinator, error) {
	opts.withDefaults()
	if spec.Engine == "" {
		spec.Engine = flit.EngineVersion
	}
	if err := os.MkdirAll(filepath.Join(dir, artifactsDir), 0o755); err != nil {
		return nil, fmt.Errorf("coord: opening %s: %w", dir, err)
	}
	c := &Coordinator{dir: dir, spec: spec, opts: opts, done: make(chan struct{})}
	raw, err := os.ReadFile(filepath.Join(dir, journalName))
	switch {
	case os.IsNotExist(err):
		if len(spec.Command) == 0 || spec.Shards < 1 {
			return nil, errors.New("coord: a new campaign needs a command and a shard count >= 1")
		}
		c.shards = make([]shardState, spec.Shards)
		if err := c.journalLocked(); err != nil {
			return nil, err
		}
	case err != nil:
		return nil, fmt.Errorf("coord: reading journal: %w", err)
	default:
		if err := c.recover(raw, spec); err != nil {
			return nil, err
		}
	}
	if c.doneCountLocked() == len(c.shards) {
		c.finishLocked()
	}
	return c, nil
}

// Dir returns the coordinator's root directory.
func (c *Coordinator) Dir() string { return c.dir }

// Spec returns the campaign spec.
func (c *Coordinator) Spec() Spec { return c.spec }

// ArtifactDir returns the directory completed shard artifacts land in.
func (c *Coordinator) ArtifactDir() string { return filepath.Join(c.dir, artifactsDir) }

// Done returns a channel closed once every shard has completed and the
// server-side merge validation has run.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Lease hands out the lowest-indexed available shard. Expired leases are
// swept first, so a crashed or stalled worker's shard is re-leased here —
// the straggler-mitigation path.
func (c *Coordinator) Lease(worker string) (Grant, LeaseState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := c.sweepLocked()
	if c.doneCountLocked() == len(c.shards) {
		if changed {
			if err := c.journalLocked(); err != nil {
				return Grant{}, Wait, err
			}
		}
		return Grant{}, Done, nil
	}
	for i := range c.shards {
		s := &c.shards[i]
		if s.done || s.leaseID != "" {
			continue
		}
		c.seq++
		s.leaseID = fmt.Sprintf("L%d", c.seq)
		s.worker = worker
		s.expiry = c.opts.Now().Add(c.opts.LeaseTTL)
		if err := c.journalLocked(); err != nil {
			return Grant{}, Wait, err
		}
		return Grant{Shard: i, Count: c.spec.Shards, Command: c.spec.Command,
			LeaseID: s.leaseID, TTL: c.opts.LeaseTTL}, Granted, nil
	}
	if changed {
		if err := c.journalLocked(); err != nil {
			return Grant{}, Wait, err
		}
	}
	return Grant{}, Wait, nil
}

// Heartbeat extends a live lease by a full TTL. A heartbeat on a lease
// that is past its expiry but still the shard's recorded one *renews* it —
// the shard was not promised to anyone else, so renewal cannot double-
// schedule and saves the work already in flight (a coordinator that was
// briefly down must not strand every worker). A lease that was superseded
// or completed answers ErrLeaseLost.
func (c *Coordinator) Heartbeat(worker, leaseID string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.shardByLease(leaseID, shard)
	if err != nil {
		return err
	}
	s.worker = worker
	s.expiry = c.opts.Now().Add(c.opts.LeaseTTL)
	return c.journalLocked()
}

// Release voluntarily returns a leased shard to the pool (the worker is
// draining). Releasing a lease that is already gone is not an error —
// release is the cleanup path and must be idempotent.
func (c *Coordinator) Release(worker, leaseID string, shard int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, err := c.shardByLease(leaseID, shard)
	if err != nil {
		return nil // already expired, superseded, or completed: nothing to release
	}
	s.leaseID, s.worker, s.expiry = "", "", time.Time{}
	return c.journalLocked()
}

// shardByLease resolves (leaseID, shard) to the shard state iff the lease
// is still the shard's current one.
func (c *Coordinator) shardByLease(leaseID string, shard int) (*shardState, error) {
	if shard < 0 || shard >= len(c.shards) {
		return nil, badRequest{fmt.Errorf("coord: shard %d of a %d-shard campaign", shard, len(c.shards))}
	}
	s := &c.shards[shard]
	if s.done || leaseID == "" || s.leaseID != leaseID {
		return nil, ErrLeaseLost
	}
	return s, nil
}

// Complete records a finished shard: artifact is the worker's exported
// shard artifact, verbatim. The artifact must validate — engine fence,
// internal consistency, and shard coordinates matching the completed index
// — but the *lease* is deliberately not required to still be live:
// artifacts for the same shard are deterministic and self-validating, so a
// straggler completing after its lease was re-leased (or after another
// worker already completed the shard) is harmless, and accepting it makes
// duplicate completion a non-event instead of an error path. The bytes are
// stored as received (atomic write), so duplicate completions converge on
// identical files.
func (c *Coordinator) Complete(worker, leaseID string, shard int, artifact []byte) error {
	if shard < 0 || shard >= c.spec.Shards {
		return badRequest{fmt.Errorf("coord: completion for shard %d of a %d-shard campaign", shard, c.spec.Shards)}
	}
	a, err := flit.ReadArtifact(bytes.NewReader(artifact))
	if err != nil {
		return badRequest{fmt.Errorf("coord: completion artifact: %w", err)}
	}
	if err := a.Check(); err != nil {
		return badRequest{fmt.Errorf("coord: completion artifact: %w", err)}
	}
	if a.Engine != c.spec.Engine {
		return badRequest{fmt.Errorf("coord: completion artifact from engine %q, campaign is %q", a.Engine, c.spec.Engine)}
	}
	if !equalCommand(a.Command, c.spec.Command) {
		return badRequest{fmt.Errorf("coord: completion artifact records command %q, campaign is %q", a.Command, c.spec.Command)}
	}
	count := a.Shard.Count
	if count < 1 {
		count = 1
	}
	if a.Shard.Index != shard || count != c.spec.Shards {
		return badRequest{fmt.Errorf("coord: completion for shard %d carries artifact of shard %s", shard, a.Shard)}
	}
	name := fmt.Sprintf("shard-%d.json", shard)
	if err := store.WriteFileAtomic(filepath.Join(c.dir, artifactsDir, name), artifact); err != nil {
		return fmt.Errorf("coord: storing shard artifact: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &c.shards[shard]
	s.done = true
	s.artifact = name
	s.leaseID, s.worker, s.expiry = "", "", time.Time{}
	if err := c.journalLocked(); err != nil {
		return err
	}
	if c.doneCountLocked() == len(c.shards) {
		c.finishLocked()
	}
	return nil
}

// sweepLocked expires stale leases, returning shards to the pool.
// Reports whether anything changed (the caller journals).
func (c *Coordinator) sweepLocked() bool {
	now := c.opts.Now()
	changed := false
	for i := range c.shards {
		s := &c.shards[i]
		if s.done || s.leaseID == "" || now.Before(s.expiry) {
			continue
		}
		s.leaseID, s.worker, s.expiry = "", "", time.Time{}
		c.releases++
		changed = true
	}
	return changed
}

func (c *Coordinator) doneCountLocked() int {
	n := 0
	for i := range c.shards {
		if c.shards[i].done {
			n++
		}
	}
	return n
}

// finishLocked runs the server-side merge validation over the completed
// artifact set and closes the done channel. Validation failure does not
// un-complete the campaign — the shards are what they are — but it is
// recorded and surfaced by Status, so a caller never merges blind.
func (c *Coordinator) finishLocked() {
	select {
	case <-c.done:
		return // already finished (recovery re-entry)
	default:
	}
	arts := make([]*flit.Artifact, 0, len(c.shards))
	err := func() error {
		for i := range c.shards {
			a, err := flit.ReadArtifactFile(filepath.Join(c.dir, artifactsDir, c.shards[i].artifact))
			if err != nil {
				return err
			}
			arts = append(arts, a)
		}
		return flit.ValidateShardSet(arts)
	}()
	if err != nil {
		c.valid, c.valErr = false, err.Error()
	} else {
		c.valid, c.valErr = true, ""
	}
	close(c.done)
}

// LeaseInfo is one live lease, as Status reports it.
type LeaseInfo struct {
	Shard     int    `json:"shard"`
	Worker    string `json:"worker"`
	LeaseID   string `json:"lease_id"`
	ExpiresMS int64  `json:"expires_in_ms"`
}

// Status is a point-in-time snapshot of the campaign.
type Status struct {
	Engine    string      `json:"engine"`
	Command   []string    `json:"command"`
	Shards    int         `json:"shards"`
	Done      int         `json:"done"`
	Completed []int       `json:"completed"`
	Leases    []LeaseInfo `json:"leases,omitempty"`
	Releases  int64       `json:"releases"`
	Complete  bool        `json:"complete"`
	Validated bool        `json:"validated"`
	Problem   string      `json:"problem,omitempty"`
}

// Status snapshots the campaign. Stale leases are swept first, so the
// reported leases are the live ones.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sweepLocked() {
		// Best-effort: a failed journal write here only delays persistence
		// of the sweep; the next mutating call retries it.
		_ = c.journalLocked()
	}
	st := Status{
		Engine:    c.spec.Engine,
		Command:   append([]string(nil), c.spec.Command...),
		Shards:    c.spec.Shards,
		Releases:  c.releases,
		Completed: []int{},
	}
	now := c.opts.Now()
	for i := range c.shards {
		s := &c.shards[i]
		if s.done {
			st.Done++
			st.Completed = append(st.Completed, i)
			continue
		}
		if s.leaseID != "" {
			st.Leases = append(st.Leases, LeaseInfo{Shard: i, Worker: s.worker,
				LeaseID: s.leaseID, ExpiresMS: s.expiry.Sub(now).Milliseconds()})
		}
	}
	sort.Ints(st.Completed)
	if st.Done == st.Shards {
		st.Complete = true
		st.Validated = c.valid
		st.Problem = c.valErr
	}
	return st
}

// Releases reports how many expired leases were returned to the pool —
// the straggler-mitigation counter the coordinator smoke asserts on.
func (c *Coordinator) Releases() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.releases
}

func equalCommand(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CommandString renders a campaign command the way the CLI accepts it.
func CommandString(command []string) string { return strings.Join(command, " ") }
