package experiments

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/flit"
)

// table4Baseline runs Table 4 as n shard engines and returns their
// exported artifacts — the baseline generation of an incremental campaign.
func table4Baseline(t *testing.T, n int) []*flit.Artifact {
	t.Helper()
	arts := make([]*flit.Artifact, n)
	for i := 0; i < n; i++ {
		eng := NewEngine(2)
		eng.SetShard(exec.Shard{Index: i, Count: n})
		if _, err := eng.Table4(); err != nil {
			t.Fatalf("baseline shard %d/%d: %v", i, n, err)
		}
		arts[i] = eng.ExportArtifact([]string{"experiments", "table4"})
	}
	return arts
}

// TestWarmStartDeltaEmptyProperty is the delta detector's core property:
// re-running the identical command warm-started from its own baseline
// yields an empty DeltaReport — nothing new, nothing dropped, nothing
// changed, zero fresh executions — at every parallelism j ∈ {1,2,8} and
// for baselines sharded N ∈ {1,2,4} ways (warm-start needs no complete
// set, but a complete one must cover everything). Runs under -race in CI,
// so the tracker's bookkeeping is also proven race-clean against the
// pool's fan-out.
func TestWarmStartDeltaEmptyProperty(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		arts := table4Baseline(t, n)
		for _, j := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("N=%d/j=%d", n, j), func(t *testing.T) {
				eng := NewEngine(j)
				eng.EnableDelta(false)
				if err := eng.WarmStart(arts...); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Table4(); err != nil {
					t.Fatal(err)
				}
				rep, err := eng.DeltaReport([]string{"experiments", "table4"})
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Empty() {
					t.Fatalf("identical re-run produced a delta: %s", rep.Summary())
				}
				if rep.Fresh != 0 {
					t.Errorf("complete baseline still left %d fresh executions", rep.Fresh)
				}
				if rep.BaselineHits == 0 || rep.BaselineHits != rep.Unchanged {
					t.Errorf("provenance counters inconsistent: %s", rep.Summary())
				}
			})
		}
	}
}

// TestWarmStartDeltaVerifyProperty: verify mode recomputes every covered
// evaluation instead of trusting it; on a deterministic engine the report
// is still empty (everything fresh, everything bit-identical), which is
// exactly the variability-monitor invariant the mode exists to watch.
func TestWarmStartDeltaVerifyProperty(t *testing.T) {
	arts := table4Baseline(t, 2)
	eng := NewEngine(4)
	eng.EnableDelta(true)
	if err := eng.WarmStart(arts...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Table4(); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.DeltaReport([]string{"experiments", "table4"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("deterministic engine diverged from its own baseline: %s", rep.Summary())
	}
	if rep.BaselineHits != 0 || rep.Fresh == 0 || rep.Unchanged != rep.Fresh {
		t.Errorf("verify-mode provenance wrong: %s", rep.Summary())
	}
}

// TestWarmStartDeltaVerifyFlagsPerturbedBaseline: a baseline whose
// recorded bits were tampered with (one result off by one ULP) is caught
// by verify mode as exactly one changed key.
func TestWarmStartDeltaVerifyFlagsPerturbedBaseline(t *testing.T) {
	arts := table4Baseline(t, 1)
	perturbed := ""
	for i := range arts[0].Runs {
		r := &arts[0].Runs[i]
		if r.Err != "" {
			continue
		}
		if r.IsVec && len(r.Vec) > 0 {
			r.Vec[0]++
		} else if !r.IsVec && math.Float64frombits(r.Scalar) != 0 {
			r.Scalar++
		} else {
			continue
		}
		perturbed = r.Key
		break
	}
	if perturbed == "" {
		t.Fatal("baseline holds no finite record to perturb")
	}
	eng := NewEngine(2)
	eng.EnableDelta(true)
	if err := eng.WarmStart(arts...); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Table4(); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.DeltaReport(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Changed) != 1 || rep.Changed[0].Key != perturbed {
		t.Fatalf("perturbation not pinpointed: changed=%+v want key %q", rep.Changed, perturbed)
	}
	if len(rep.New) != 0 || len(rep.Dropped) != 0 {
		t.Errorf("perturbation leaked into new/dropped: %s", rep.Summary())
	}
}

// TestDeltaReportRequiresEnable: asking for a report without enabling
// tracking is a caller bug and errors instead of returning an empty delta.
func TestDeltaReportRequiresEnable(t *testing.T) {
	if _, err := NewEngine(1).DeltaReport(nil); err == nil {
		t.Fatal("DeltaReport without EnableDelta succeeded")
	}
}
