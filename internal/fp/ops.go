package fp

import "math"

// flush applies flush-to-zero when the semantics request it.
func (e *Env) flush(x float64) float64 {
	if e.sem.FlushSubnormals && x != 0 && math.Abs(x) < 0x1p-1022 {
		return 0
	}
	return x
}

// Add returns a+b under the environment's semantics.
func (e *Env) Add(a, b float64) float64 {
	a = e.step(a)
	return e.flush(a + b)
}

// Sub returns a-b under the environment's semantics.
func (e *Env) Sub(a, b float64) float64 {
	a = e.step(a)
	return e.flush(a - b)
}

// Mul returns a*b under the environment's semantics.
func (e *Env) Mul(a, b float64) float64 {
	a = e.step(a)
	return e.flush(a * b)
}

// Div returns a/b. Under UnsafeMath it is rewritten to a multiplication by
// the reciprocal, which rounds twice and may differ in the last ulp.
func (e *Env) Div(a, b float64) float64 {
	a = e.step(a)
	if e.sem.UnsafeMath {
		return e.flush(a * (1 / b))
	}
	return e.flush(a / b)
}

// Neg returns -a. Negation is exact and never counted as an FP instruction.
func (e *Env) Neg(a float64) float64 { return -a }

// Abs returns |a|. Exact; not counted.
func (e *Env) Abs(a float64) float64 { return math.Abs(a) }

// MulAdd returns a*b+c. With FMA contraction or extended-precision
// intermediates it rounds once (fused); otherwise it rounds the product and
// the sum separately, exactly like unfused scalar code.
func (e *Env) MulAdd(a, b, c float64) float64 {
	a = e.step(a)
	if e.sem.FuseFMA || e.sem.ExtendedPrecision {
		return e.flush(math.FMA(a, b, c))
	}
	return e.flush(a*b + c)
}

// MulSub returns a*b-c with the same contraction rules as MulAdd.
func (e *Env) MulSub(a, b, c float64) float64 {
	a = e.step(a)
	if e.sem.FuseFMA || e.sem.ExtendedPrecision {
		return e.flush(math.FMA(a, b, -c))
	}
	return e.flush(a*b - c)
}

// Sqrt returns the square root. ApproxMath substitutes an SVML-style
// Newton-refined reciprocal-sqrt implementation that is within a couple of
// ulps of the correctly rounded result but not always equal to it.
func (e *Env) Sqrt(a float64) float64 {
	a = e.step(a)
	if e.sem.ApproxMath {
		return e.flush(approxSqrt(a))
	}
	return e.flush(math.Sqrt(a))
}

// Exp returns e**a; ApproxMath yields a faithfully-rounded (not
// correctly-rounded) result.
func (e *Env) Exp(a float64) float64 {
	a = e.step(a)
	if e.sem.ApproxMath {
		return e.flush(approxExp(a))
	}
	return e.flush(math.Exp(a))
}

// Log returns the natural logarithm with the same rules as Exp.
func (e *Env) Log(a float64) float64 {
	a = e.step(a)
	if e.sem.ApproxMath {
		return e.flush(approxLog(a))
	}
	return e.flush(math.Log(a))
}

// Pow returns a**b. Under ApproxMath it is computed as exp(b*log(a)) with
// the approximate kernels (the classic vector-math shortcut).
func (e *Env) Pow(a, b float64) float64 {
	a = e.step(a)
	if e.sem.ApproxMath {
		if a == 0 {
			return 0
		}
		return e.flush(approxExp(b * approxLog(a)))
	}
	return e.flush(math.Pow(a, b))
}

// Sum reduces xs. Width-1 semantics accumulate strictly left to right.
// Wider semantics model vectorized reductions: w independent lane
// accumulators combined at the end, which reassociates the sum. Extended
// precision accumulates each lane in double-double and rounds once.
func (e *Env) Sum(xs []float64) float64 {
	return e.reduce(len(xs), func(i int) float64 { return e.step(xs[i]) })
}

// Dot returns the inner product of xs and ys under the environment's
// reduction and contraction semantics. Each element contributes a multiply
// and an add (two dynamic operations) like the scalar loop it models.
func (e *Env) Dot(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if e.sem.FuseFMA || e.sem.ExtendedPrecision {
		// Fused path: each lane accumulates with a single rounding per
		// element (or none, for extended precision).
		return e.reduceFMA(n, xs, ys)
	}
	return e.reduce(n, func(i int) float64 {
		return e.Mul(xs[i], ys[i])
	})
}

// Norm2 returns the Euclidean norm sqrt(x·x).
func (e *Env) Norm2(xs []float64) float64 {
	return e.Sqrt(e.Dot(xs, xs))
}

// reduce accumulates n terms produced by f under the reduction semantics.
func (e *Env) reduce(n int, f func(i int) float64) float64 {
	w := int(e.sem.ReassocWidth)
	if w <= 1 {
		if e.sem.ExtendedPrecision {
			acc := dd{}
			for i := 0; i < n; i++ {
				acc = addDD(acc, f(i))
			}
			return e.flush(acc.round())
		}
		var acc float64
		for i := 0; i < n; i++ {
			acc += f(i)
		}
		return e.flush(acc)
	}
	if e.sem.ExtendedPrecision {
		lanes := make([]dd, w)
		for i := 0; i < n; i++ {
			lanes[i%w] = addDD(lanes[i%w], f(i))
		}
		acc := lanes[0]
		for _, l := range lanes[1:] {
			acc = addDDDD(acc, l)
		}
		return e.flush(acc.round())
	}
	lanes := make([]float64, w)
	for i := 0; i < n; i++ {
		lanes[i%w] += f(i)
	}
	var acc float64
	for _, l := range lanes {
		acc += l
	}
	return e.flush(acc)
}

// reduceFMA is the fused dot-product kernel: every element is folded into
// its lane with fma(x, y, lane), one rounding per element; extended
// precision removes even that rounding via double-double lanes.
func (e *Env) reduceFMA(n int, xs, ys []float64) float64 {
	w := int(e.sem.ReassocWidth)
	if w < 1 {
		w = 1
	}
	if e.sem.ExtendedPrecision {
		lanes := make([]dd, w)
		for i := 0; i < n; i++ {
			x := e.step(xs[i])
			e.stepOnly()
			lanes[i%w] = addDDDD(lanes[i%w], twoProd(x, ys[i]))
		}
		acc := lanes[0]
		for _, l := range lanes[1:] {
			acc = addDDDD(acc, l)
		}
		return e.flush(acc.round())
	}
	lanes := make([]float64, w)
	for i := 0; i < n; i++ {
		x := e.step(xs[i])
		e.stepOnly()
		lanes[i%w] = math.FMA(x, ys[i], lanes[i%w])
	}
	var acc float64
	for _, l := range lanes {
		acc += l
	}
	return e.flush(acc)
}

// stepOnly advances the dynamic instruction counter without an operand (used
// when a fused instruction covers what scalar code would do in two).
func (e *Env) stepOnly() {
	if e.inj != nil {
		e.n++
	}
}

// Sum3 adds three values. UnsafeMath reassociates (a+c)+b — the kind of
// reordering -funsafe-math-optimizations performs on short chains.
func (e *Env) Sum3(a, b, c float64) float64 {
	a = e.step(a)
	if e.sem.UnsafeMath {
		return e.flush((a + c) + b)
	}
	return e.flush((a + b) + c)
}

// Sum4 adds four values. UnsafeMath uses a balanced tree (a+b)+(c+d) in
// place of the strict sequential ((a+b)+c)+d.
func (e *Env) Sum4(a, b, c, d float64) float64 {
	a = e.step(a)
	if e.sem.UnsafeMath {
		return e.flush((a + b) + (c + d))
	}
	return e.flush(((a + b) + c) + d)
}

// Lerp returns a + t*(b-a); contraction applies to the multiply-add.
func (e *Env) Lerp(a, b, t float64) float64 {
	return e.MulAdd(t, e.Sub(b, a), a)
}

// Axpy computes y[i] += alpha*x[i] in place under contraction semantics.
func (e *Env) Axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] = e.MulAdd(alpha, x[i], y[i])
	}
}

// Scale multiplies every element of x by alpha in place.
func (e *Env) Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] = e.Mul(alpha, x[i])
	}
}
