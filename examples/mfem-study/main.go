// mfem-study reproduces the paper's §3.1–§3.3 evaluation interactively: it
// runs the 19 mini-MFEM examples under all 244 compilations, prints the
// Table 1 compiler summary and the Figure 5 performance/reproducibility
// histogram, and then re-discovers Finding 2 (the AddMult_a_AAt kernel
// behind example 13's ~180% relative error) with FLiT Bisect.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/comp"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Stdout, experiments.Default()); err != nil {
		log.Fatal(err)
	}
}

// run regenerates the study on one engine. Passing the engine explicitly
// is what makes the study shardable: a sharded engine computes its slice
// of the matrix, exports an artifact, and an artifact-seeded engine
// replays the identical output (see TestMFEMStudyShardMergeEquivalence).
func run(w io.Writer, eng *experiments.Engine) error {
	fmt.Fprintf(w, "running 19 examples x 244 compilations (4,636 results) with %d parallel evaluations...\n",
		eng.Pool().Workers())
	rows, err := eng.Table1()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nTable 1 — compiler summary:")
	fmt.Fprint(w, experiments.RenderTable1(rows))

	fig5, err := eng.Figure5()
	if err != nil {
		return err
	}
	repro := 0
	for _, r := range fig5 {
		if r.FastestIsReproducible {
			repro++
		}
	}
	fmt.Fprintf(w, "\nFigure 5 — %d of 19 examples are fastest under a bitwise-reproducible compilation (paper: 14)\n", repro)

	fig6, err := eng.Figure6()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 6 — example 13 relative error up to %.2f (paper: 1.83–1.97)\n",
		fig6[12].MaxErr)

	// Finding 2: root-cause example 13 under an FMA-enabling compilation.
	wf := eng.Workflow()
	target := comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	fmt.Fprintf(w, "\nbisecting Example13 under %s ...\n", target)
	report, err := wf.Bisect(wf.TestByName("Example13"), target, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d program executions\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Fprintf(w, "  %s:\n", ff.File)
		for _, sf := range ff.Symbols {
			fmt.Fprintf(w, "    -> %s (magnitude %.3g)\n", sf.Item, sf.Value)
		}
	}
	return nil
}
