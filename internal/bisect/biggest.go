package bisect

import (
	"container/heap"
	"sort"
)

// frontierWidth bounds how many near-frontier heap entries Biggest
// pre-expands speculatively per pop. h[0] is always the next pop; a few
// more slots catch most of the near-frontier without sorting the heap.
const frontierWidth = 3

// Biggest is the BisectBiggest algorithm (paper §2.5): a Uniform Cost
// Search over the bisection tree that finds the k largest individual
// contributors and can exit early. Sets are expanded in decreasing order of
// their Test value; when the largest remaining set tests below the k-th
// found singleton's value, nothing better can remain and the search stops.
//
// Unlike All it performs no dynamic assumption verification — that is the
// trade the paper describes: "It is not able to dynamically verify
// assumptions, but can significantly improve performance if only the top
// few most contributing functions are desired."
//
// With speculation enabled the frontier expands in parallel: while the
// popped node's halves are committed in order, the halves of the heap
// entries the UCS is likely to pop next are evaluated in the background.
// Pops stay strictly value-ordered and the committed probe sequence — and
// with it Execs() and the early exit — is exactly the sequential
// algorithm's; pre-expansions past the early exit are speculative losers.
//
// k <= 0 means "all": equivalent coverage to All but via UCS and still
// without the verification assertions.
func (s *Searcher) Biggest(items []string, k int) ([]Finding, error) {
	if len(items) == 0 {
		return nil, nil
	}
	defer s.drain()
	v, err := s.Test(items)
	if err != nil {
		return nil, err
	}
	if v == 0 {
		return nil, nil
	}
	pq := &nodeHeap{{items: append([]string(nil), items...), val: v}}
	var found []Finding
	for pq.Len() > 0 {
		n := heap.Pop(pq).(node)
		// Early exit: every individual contributor inside n is bounded by
		// the set's own Test value under the Unique Error regime, so once
		// we hold k singletons at least this large we are done.
		if k > 0 && len(found) >= k && n.val <= found[k-1].Value {
			break
		}
		if len(n.items) == 1 {
			found = append(found, Finding{Item: n.items[0], Value: n.val})
			sort.SliceStable(found, func(i, j int) bool { return found[i].Value > found[j].Value })
			continue
		}
		d1, d2 := n.items[:len(n.items)/2], n.items[len(n.items)/2:]
		if s.sub != nil {
			s.speculate(d2) // races the committed Test(d1) below
			s.speculateFrontier(*pq)
		}
		for _, d := range [][]string{d1, d2} {
			dv, err := s.Test(d)
			if err != nil {
				return found, err
			}
			if dv > 0 {
				heap.Push(pq, node{items: d, val: dv})
			}
		}
	}
	if k > 0 && len(found) > k {
		found = found[:k]
	}
	return found, nil
}

// speculateFrontier pre-evaluates the halves of the most promising heap
// entries — the sets the UCS will pop next unless the early exit fires
// first. Singleton entries need no further probe: their value came from
// the committed Test that pushed them.
func (s *Searcher) speculateFrontier(h nodeHeap) {
	limit := frontierWidth
	if limit > len(h) {
		limit = len(h)
	}
	for i := 0; i < limit; i++ {
		m := h[i]
		if len(m.items) > 1 {
			s.speculate(m.items[:len(m.items)/2])
			s.speculate(m.items[len(m.items)/2:])
		}
	}
}

type node struct {
	items []string
	val   float64
}

// nodeHeap is a max-heap on Test value.
type nodeHeap []node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].val > h[j].val }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := old[len(old)-1]
	*h = old[:len(old)-1]
	return n
}
