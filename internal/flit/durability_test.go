package flit

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadArtifactRejectsTrailingData: an artifact file is exactly one
// JSON object. Concatenated artifacts or garbage after the closing brace —
// the classic torn-rewrite shape, new content followed by the tail of the
// old — must be rejected, not silently half-read. Trailing whitespace
// (a final newline) stays legal.
func TestReadArtifactRejectsTrailingData(t *testing.T) {
	var buf bytes.Buffer
	if err := art([]string{"run"}, scalarRec("k", 1)).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	for name, tail := range map[string]string{
		"second object": string(valid),
		"brace pair":    "{}",
		"garbage":       "tail of the previous file generation",
		"null":          "null",
	} {
		t.Run(name, func(t *testing.T) {
			data := append(append([]byte{}, valid...), tail...)
			if _, err := ReadArtifact(bytes.NewReader(data)); err == nil {
				t.Fatal("artifact with trailing data accepted")
			} else if !strings.Contains(err.Error(), "trailing data") {
				t.Fatalf("unexpected error shape: %v", err)
			}
		})
	}
	for name, tail := range map[string]string{
		"nothing":    "",
		"newline":    "\n",
		"whitespace": " \t\n ",
	} {
		t.Run("ok "+name, func(t *testing.T) {
			data := append(append([]byte{}, valid...), tail...)
			if _, err := ReadArtifact(bytes.NewReader(data)); err != nil {
				t.Fatalf("artifact with %s rejected: %v", name, err)
			}
		})
	}
}

// TestWriteArtifactFileAtomic: WriteArtifactFile goes through the atomic
// temp-file + rename path — a failed or interrupted write must never leave
// a half-written artifact at the destination, an existing artifact is
// replaced wholesale, and no temp debris survives a successful write.
func TestWriteArtifactFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "art.json")

	first := art([]string{"run"}, scalarRec("k", 1))
	if err := WriteArtifactFile(first, path); err != nil {
		t.Fatal(err)
	}
	second := art([]string{"run"}, scalarRec("k", 2), scalarRec("k2", 3))
	if err := WriteArtifactFile(second, path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifactFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 {
		t.Fatalf("overwrite read back %d runs, want 2", len(got.Runs))
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name() != "art.json" {
			t.Fatalf("write left debris %q in the directory", e.Name())
		}
	}

	// A write into a nonexistent directory fails cleanly and creates
	// nothing at the destination path.
	missing := filepath.Join(dir, "no", "such", "dir", "a.json")
	if err := WriteArtifactFile(first, missing); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Fatalf("failed write left a file: %v", err)
	}
}

// TestCheckRejectsInconsistentRunRecords: a run record claiming to be a
// scalar while carrying a vector payload (or vice versa) describes two
// different results at once; Check must reject the artifact rather than
// let Import pick one interpretation.
func TestCheckRejectsInconsistentRunRecords(t *testing.T) {
	cases := map[string]RunRecord{
		"scalar with vec": {Key: "k", IsVec: false, Vec: []uint64{1, 2}},
		"vec with scalar": {Key: "k", IsVec: true, Scalar: 42},
	}
	for name, rec := range cases {
		t.Run(name, func(t *testing.T) {
			a := art([]string{"run"}, rec)
			if err := a.Check(); err == nil {
				t.Fatal("inconsistent run record passed Check")
			}
			if err := NewCache().Import(a); err == nil {
				t.Fatal("inconsistent run record imported")
			}
		})
	}
	// The legal shapes still pass: a scalar record, a vec record, and a vec
	// record whose payload is empty (a zero-length result vector).
	for name, rec := range map[string]RunRecord{
		"scalar":    scalarRec("k", 1),
		"vec":       {Key: "k", IsVec: true, Vec: []uint64{4614256656552045848}},
		"empty vec": {Key: "k", IsVec: true},
	} {
		t.Run("ok "+name, func(t *testing.T) {
			if err := art([]string{"run"}, rec).Check(); err != nil {
				t.Fatalf("legal %s record rejected: %v", name, err)
			}
		})
	}
}
