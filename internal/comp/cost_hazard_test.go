package comp

import (
	"testing"

	"repro/internal/prog"
)

// Unit tests for the cost-model, hazard, and semantics helpers — the
// personality knobs every table and figure of the reproduction stands on.

// TestOptBasePersonalities: each compiler's optimization ladder descends
// monotonically (higher -O is never slower in the base factor), the
// unknown-compiler fallback is the neutral 1.0, and the xlc -O2 → -O3 step
// reproduces the motivating example's dramatic ratio.
func TestOptBasePersonalities(t *testing.T) {
	for _, compiler := range []string{GCC, Clang, ICPC, XLC} {
		prev := optBase(compiler, "-O0")
		for _, lvl := range []string{"-O1", "-O2", "-O3"} {
			cur := optBase(compiler, lvl)
			if cur >= prev {
				t.Errorf("%s %s base factor %g not below previous level's %g", compiler, lvl, cur, prev)
			}
			prev = cur
		}
	}
	for _, lvl := range OptLevels {
		if got := optBase("tcc", lvl); got != 1.0 {
			t.Errorf("unknown compiler at %s: base %g, want 1.0", lvl, got)
		}
	}
	if ratio := optBase(XLC, "-O2") / optBase(XLC, "-O3"); ratio < 1.5 {
		t.Errorf("xlc O2/O3 base ratio %g too small for the motivating example", ratio)
	}
}

// TestSpeedFactorTransformDiscounts: each value-changing transformation
// that actually applies to a function buys a measurable discount over the
// same function without it, and widened intermediates cost time.
func TestSpeedFactorTransformDiscounts(t *testing.T) {
	hot := sym("HotRed", prog.Features{Reduction: true, MulAdd: true, Hot: true})
	// icpc fast=2 + AVX-512 licenses width-8 reassociation on hot
	// reductions; precise applies nothing.
	wide := Compilation{Compiler: ICPC, OptLevel: "-O2", Switches: "-fp-model fast=2 -xCORE-AVX512"}
	precise := Compilation{Compiler: ICPC, OptLevel: "-O2", Switches: "-fp-model precise"}
	if Semantics(wide, hot).ReassocWidth != 8 {
		t.Fatalf("fast=2 + AVX-512 did not widen to 8: %+v", Semantics(wide, hot))
	}
	fWide, fPrec := SpeedFactor(wide, hot), SpeedFactor(precise, hot)
	if fWide >= fPrec {
		t.Errorf("width-8 reduction (%g) not faster than precise (%g)", fWide, fPrec)
	}
	// x87 extended precision is a slowdown, not a speedup.
	x87 := Compilation{Compiler: GCC, OptLevel: "-O2", Switches: "-mfpmath=387"}
	plain := Compilation{Compiler: GCC, OptLevel: "-O2"}
	s := sym("Widened", prog.Features{MulAdd: true})
	if !Semantics(x87, s).ExtendedPrecision {
		t.Fatal("-mfpmath=387 did not widen")
	}
	if SpeedFactor(x87, s) <= SpeedFactor(plain, s) {
		t.Errorf("x87 (%g) not slower than plain (%g)", SpeedFactor(x87, s), SpeedFactor(plain, s))
	}
}

// TestRunCostEmptyAndAdditive: no executed symbols cost nothing, and cost
// accumulates over the executed set.
func TestRunCostEmptyAndAdditive(t *testing.T) {
	if got := RunCost(nil); got != 0 {
		t.Errorf("RunCost(nil) = %g", got)
	}
	a := sym("A", prog.Features{})
	one := RunCost(map[*prog.Symbol]Compilation{a: PerfReference()})
	b := sym("B", prog.Features{})
	two := RunCost(map[*prog.Symbol]Compilation{a: PerfReference(), b: PerfReference()})
	if two <= one {
		t.Errorf("adding a symbol did not add cost: %g -> %g", one, two)
	}
}

// TestFileMixHazardDirections: the Intel/GNU segfault hazard is about the
// vendor pair, not which side is "variable" — icpc objects under a g++
// baseline and g++ objects under an icpc baseline can both crash, while
// gnu-compatible pairs (g++/clang++) and the IBM/GNU pair of the Laghos
// study never do.
func TestFileMixHazardDirections(t *testing.T) {
	files := func() []string {
		var fs []string
		for i := 0; i < 40; i++ {
			fs = append(fs, "f"+string(rune('a'+i%26))+string(rune('0'+i/26))+".cpp")
		}
		return fs
	}()
	count := func(variable, baseline Compilation) int {
		hits := 0
		for _, f := range files {
			if FileMixHazard(variable, baseline, f) {
				hits++
			}
		}
		return hits
	}
	icpc := Compilation{Compiler: ICPC, OptLevel: "-O2"}
	gccO3 := Compilation{Compiler: GCC, OptLevel: "-O3"}
	clang := Compilation{Compiler: Clang, OptLevel: "-O3"}
	xlc := Compilation{Compiler: XLC, OptLevel: "-O3"}
	hits := 0
	for _, c := range Matrix() {
		if c.Compiler == ICPC {
			hits += count(c, Baseline())
		}
	}
	if hits == 0 {
		t.Error("icpc-variable/gcc-baseline mixes never hazardous")
	}
	reverse := 0
	for _, c := range Matrix() {
		if c.Compiler == GCC || c.Compiler == Clang {
			reverse += count(c, icpc)
		}
	}
	if reverse == 0 {
		t.Error("gnu-variable/icpc-baseline mixes never hazardous")
	}
	if got := count(clang, gccO3); got != 0 {
		t.Errorf("clang/gcc mixes flagged %d times; gnu-compatible vendors cannot clash", got)
	}
	if got := count(xlc, Baseline()) + count(gccO3, xlc); got != 0 {
		t.Errorf("xlc/gcc mixes flagged %d times; the Laghos searches all linked", got)
	}
	// Same compilation on both sides is no mix at all.
	if count(gccO3, gccO3) != 0 {
		t.Error("self-mix flagged as hazard")
	}
}

// TestCrossVendorMapping pins the vendor equivalence classes, including
// the unknown-compiler fallback (distinct unknowns are distinct vendors).
func TestCrossVendorMapping(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{GCC, GCC, false},
		{GCC, Clang, false}, // both gnu-compatible runtimes
		{Clang, GCC, false},
		{GCC, ICPC, true},
		{ICPC, Clang, true},
		{GCC, XLC, true},
		{ICPC, XLC, true},
		{"tcc", "tcc", false},
		{"tcc", "pcc", true},
		{"tcc", GCC, true},
	}
	for _, c := range cases {
		if got := crossVendor(c.a, c.b); got != c.want {
			t.Errorf("crossVendor(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestSymbolMixHazardUnknownCompiler: the default personality gets the
// moderate fallback rate rather than 0 or certainty.
func TestSymbolMixHazardUnknownCompiler(t *testing.T) {
	hits := 0
	const n = 200
	for i := 0; i < n; i++ {
		c := Compilation{Compiler: "tcc", OptLevel: "-O2", Switches: string(rune('a' + i%26))}
		if SymbolMixHazard(c, "file"+string(rune('0'+i/26))+".cpp") {
			hits++
		}
	}
	if pct := hits * 100 / n; pct < 3 || pct > 20 {
		t.Errorf("unknown-compiler symbol hazard rate %d%%, want ~10%%", pct)
	}
}

// TestClangEffectsFamilies: the clang personality's switch families —
// contraction only via -ffp-contract=on (or -mfma under unsafe math),
// flush-to-zero only via -ffast-math, reassociation width gated on -O2 and
// the AVX2 flag.
func TestClangEffectsFamilies(t *testing.T) {
	hot := sym("Hot", prog.Features{MulAdd: true, Reduction: true, Hot: true})
	contract := Compilation{Compiler: Clang, OptLevel: "-O2", Switches: "-ffp-contract=on"}
	if !Semantics(contract, hot).FuseFMA {
		t.Error("-ffp-contract=on did not contract a hot mul-add kernel")
	}
	if Semantics(Compilation{Compiler: Clang, OptLevel: "-O0", Switches: "-ffp-contract=on"}, hot).FuseFMA {
		t.Error("-ffp-contract=on contracted at -O0")
	}
	unsafeFMA := Compilation{Compiler: Clang, OptLevel: "-O3",
		Switches: "-funsafe-math-optimizations -mavx2 -mfma"}
	g := Semantics(unsafeFMA, hot)
	if !g.FuseFMA || g.ReassocWidth != 4 {
		t.Errorf("unsafe+avx2+fma: %+v, want fused width-4", g)
	}
	narrow := Compilation{Compiler: Clang, OptLevel: "-O3", Switches: "-funsafe-math-optimizations"}
	if w := Semantics(narrow, hot).ReassocWidth; w != 2 {
		t.Errorf("unsafe without avx2: width %d, want 2", w)
	}
	seq := Compilation{Compiler: Clang, OptLevel: "-O1", Switches: "-funsafe-math-optimizations"}
	if w := Semantics(seq, hot).ReassocWidth; w != 1 {
		t.Errorf("unsafe at -O1 vectorized: width %d", w)
	}
	fast := Compilation{Compiler: Clang, OptLevel: "-O2", Switches: "-ffast-math"}
	if !Semantics(fast, hot).FlushSubnormals {
		t.Error("-ffast-math did not flush subnormals")
	}
	if Semantics(narrow, hot).FlushSubnormals {
		t.Error("unsafe math alone flushed subnormals")
	}
}

// TestIcpcSwitchOverrides: the icpc personality's late overrides — FTZ
// on/off switches, transcendental precision switches, AVX-512 widening —
// act on top of the fp-model.
func TestIcpcSwitchOverrides(t *testing.T) {
	hot := sym("Hot", prog.Features{Reduction: true, SqrtLibm: true, Hot: true})
	base := Compilation{Compiler: ICPC, OptLevel: "-O2"}
	if Semantics(base, hot).FlushSubnormals {
		t.Error("fast=1 flushed subnormals by default")
	}
	if !Semantics(base.withSwitches("-ftz"), hot).FlushSubnormals {
		t.Error("-ftz ignored")
	}
	fast2 := base.withSwitches("-fp-model fast=2")
	if Semantics(fast2.withSwitches("-fp-model fast=2 -no-ftz"), hot).FlushSubnormals {
		t.Error("-no-ftz did not override fast=2")
	}
	if !Semantics(base.withSwitches("-fimf-precision=low"), hot).ApproxMath {
		t.Error("-fimf-precision=low did not approximate")
	}
	if Semantics(fast2.withSwitches("-fp-model fast=2 -fimf-precision=high"), hot).ApproxMath {
		t.Error("-fimf-precision=high did not restore precise transcendentals")
	}
	// The vec gate is per-function; over several hot kernels AVX-512 must
	// widen some reduction to 8 and never to anything between 4 and 8.
	wide := 0
	for _, n := range []string{"A", "B", "C", "D", "E", "F"} {
		k := sym(n, prog.Features{Reduction: true, Hot: true})
		switch w := Semantics(base.withSwitches("-xCORE-AVX512"), k).ReassocWidth; w {
		case 8:
			wide++
		case 1:
		default:
			t.Errorf("kernel %s: AVX-512 width %d, want 1 or 8", n, w)
		}
	}
	if wide == 0 {
		t.Error("-xCORE-AVX512 never widened a hot reduction to 8")
	}
	if got := Semantics(base.withSwitches("-fp-model extended"), hot); !got.ExtendedPrecision {
		t.Errorf("-fp-model extended did not widen: %+v", got)
	}
}

// withSwitches returns a copy with the switch string replaced (test aid).
func (c Compilation) withSwitches(s string) Compilation {
	c.Switches = s
	return c
}

// TestGatesForUnknownCompiler: the fallback personality transforms at a
// low-but-nonzero base rate, so unknown compilers stay plausible rather
// than degenerate.
func TestGatesForUnknownCompiler(t *testing.T) {
	g := gatesFor("tcc")
	if g.basePct <= 0 || g.basePct > 50 || g.fpicKill <= 0 {
		t.Errorf("fallback gates degenerate: %+v", g)
	}
}

// TestCompilationKeyFPICAndEscape: -fPIC flips the key, and structural
// characters in any field stay injective through KeyEscape.
func TestCompilationKeyFPICAndEscape(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O2"}
	if c.Key() == c.WithFPIC().Key() {
		t.Error("fPIC not part of the key")
	}
	tricky := Compilation{Compiler: "g|cc", OptLevel: "-O2", Switches: "a=b"}
	plain := Compilation{Compiler: "g", OptLevel: "cc|-O2", Switches: "a=b"}
	if tricky.Key() == plain.Key() {
		t.Errorf("structural characters collided: %q", tricky.Key())
	}
	if KeyEscape("a|b") == KeyEscape("a%7Cb") {
		t.Error("escape characters themselves not escaped")
	}
	if KeyEscape("clean") != "clean" {
		t.Error("clean strings should pass through untouched")
	}
}
