package flit

import (
	"fmt"
	"sort"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
	"repro/internal/prog"
)

// Suite binds a program, its tests, and the trusted baseline compilation.
type Suite struct {
	Prog *prog.Program
	// Tests are the user's FLiT test cases.
	Tests []TestCase
	// Baseline is the trusted compilation every result is compared to
	// (g++ -O0 in the MFEM study).
	Baseline comp.Compilation
	// Reference is the compilation speedups are reported against
	// (g++ -O2 in the paper). Zero value means Baseline.
	Reference comp.Compilation
	// Pool fans out the independent cells of the compilation × test matrix.
	// nil runs sequentially; any worker count produces bit-identical
	// Results, collected in matrix order regardless of completion order.
	Pool *exec.Pool
	// Cache memoizes build/run pairs across cells and across consumers
	// (bisect searches, experiment drivers). nil disables memoization.
	Cache *Cache
	// Shard restricts the run to this shard's slice of the deterministic
	// job index space: the matrix cells are partitioned by compilation
	// index, while the baseline runs execute on every shard (cheap shared
	// prefix state every owned cell compares against). A sharded run's
	// Results cover just the owned cells — correctly classified, but
	// partial; its purpose is to fill the Cache for artifact export, and
	// `flit merge` replays the full run against the union of the shards'
	// caches. The zero value runs everything.
	Shard exec.Shard
}

// RunResult is one cell of the compilation matrix: one test under one
// compilation.
type RunResult struct {
	Test        string
	Comp        comp.Compilation
	CompareVal  float64 // user metric vs the baseline result; 0 == equal
	Time        float64 // deterministic cost-model runtime
	Err         error   // non-nil if the executable failed to run
	RelativeErr float64 // CompareVal / ||baseline||
}

// Variable reports whether this run deviated from the baseline.
func (r RunResult) Variable() bool { return r.Err == nil && r.CompareVal > 0 }

// Results is the store produced by a matrix run.
type Results struct {
	Suite    *Suite
	Matrix   []comp.Compilation
	byTest   map[string][]RunResult
	baseline map[string]Result
	baseNorm map[string]float64
	refTime  map[string]float64
}

// refComp resolves the speedup-reference compilation.
func (s *Suite) refComp() comp.Compilation {
	if s.Reference == (comp.Compilation{}) {
		return s.Baseline
	}
	return s.Reference
}

// BaselineResult computes (once) the trusted result for one test. The
// lookup is key-first: a cached or seeded baseline run never rebuilds the
// baseline executable.
func (s *Suite) BaselineResult(t TestCase) (Result, error) {
	return s.Cache.RunAllPlanned(t, link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline)))
}

// RunMatrix executes every test under every compilation, comparing each
// result against the baseline compilation's result. Full builds are never
// object-file mixes, so they cannot segfault; an error in a cell is
// recorded, not fatal.
//
// Execution is key-first: every cell (and the shared baseline and
// reference builds) is a lazily-materialized plan, looked up in the Cache
// by plan key before anything links. A cached or warm-started cell replays
// its memoized result with zero build work — no plan validation, no
// ABI-hazard scan, no Executable, no cost-model traversal — which is what
// makes re-running a warmed campaign proportional to the cells an edit
// actually invalidated.
//
// With a Pool on the suite the compilations evaluate concurrently — each
// cell is an independent build/run pair, the paper's massively parallel
// sweep — and the collected Results are bit-identical to a sequential run:
// cells are stored in matrix × suite order, and every evaluation is a pure
// function of (compilation, test).
func (s *Suite) RunMatrix(matrix []comp.Compilation) (*Results, error) {
	res := &Results{
		Suite:    s,
		Matrix:   matrix,
		byTest:   make(map[string][]RunResult, len(s.Tests)),
		baseline: make(map[string]Result, len(s.Tests)),
		baseNorm: make(map[string]float64, len(s.Tests)),
		refTime:  make(map[string]float64, len(s.Tests)),
	}
	refB := link.NewBuilder(link.FullBuildPlan(s.Prog, s.refComp()))
	baseB := link.NewBuilder(link.FullBuildPlan(s.Prog, s.Baseline))
	type baseVal struct {
		res     Result
		norm    float64
		refTime float64
	}
	// The baselines are shared prefix state and run on every shard: all of
	// a shard's cells compare against them, so skipping non-owned baselines
	// would corrupt the Variable classification of sharded Results (and
	// with it every consumer that selects work from them, e.g. Table 2's
	// variable-pair selection). They are O(tests) against the O(tests ×
	// compilations) cells the shard actually partitions — and behind the
	// shared builders they are one build each, at most, across all tests.
	bases, err := exec.Map(s.Pool, len(s.Tests), func(i int) (baseVal, error) {
		t := s.Tests[i]
		base, err := s.Cache.RunAllPlanned(t, baseB)
		if err != nil {
			return baseVal{}, fmt.Errorf("flit: baseline run of %s: %w", t.Name(), err)
		}
		refTime, err := s.Cache.CostPlanned(refB, t.Root())
		if err != nil {
			return baseVal{}, fmt.Errorf("flit: building reference: %w", err)
		}
		return baseVal{res: base, norm: base.Norm(), refTime: refTime}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, t := range s.Tests {
		res.baseline[t.Name()] = bases[i].res
		res.baseNorm[t.Name()] = bases[i].norm
		res.refTime[t.Name()] = bases[i].refTime
	}
	ownCells := s.Shard.Indices(len(matrix))
	cells, err := exec.Map(s.Pool, len(ownCells), func(k int) ([]RunResult, error) {
		ci := ownCells[k]
		c := matrix[ci]
		cellB := link.NewBuilder(link.FullBuildPlan(s.Prog, c))
		row := make([]RunResult, len(s.Tests))
		for ti, t := range s.Tests {
			rr := RunResult{Test: t.Name(), Comp: c}
			cost, err := s.Cache.CostPlanned(cellB, t.Root())
			if err != nil {
				return nil, fmt.Errorf("flit: building %s: %w", c, err)
			}
			rr.Time = cost
			got, err := s.Cache.RunAllPlanned(t, cellB)
			if err != nil {
				rr.Err = err
			} else {
				rr.CompareVal = t.Compare(res.baseline[t.Name()], got)
				if n := res.baseNorm[t.Name()]; n > 0 {
					rr.RelativeErr = rr.CompareVal / n
				} else {
					rr.RelativeErr = rr.CompareVal
				}
			}
			row[ti] = rr
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	// Row and column counts are known up front, so the per-test views are
	// allocated exactly once and filled by index — no per-cell append/grow
	// over the O(tests × compilations) result space.
	for _, t := range s.Tests {
		res.byTest[t.Name()] = make([]RunResult, len(cells))
	}
	for k, row := range cells {
		for ti, rr := range row {
			res.byTest[s.Tests[ti].Name()][k] = rr
		}
	}
	return res, nil
}

// ForTest returns the runs of one test in matrix order.
func (r *Results) ForTest(test string) []RunResult { return r.byTest[test] }

// TestNames returns the tests in suite order.
func (r *Results) TestNames() []string {
	out := make([]string, 0, len(r.Suite.Tests))
	for _, t := range r.Suite.Tests {
		out = append(out, t.Name())
	}
	return out
}

// BaselineNorm returns ||baseline result|| for one test.
func (r *Results) BaselineNorm(test string) float64 { return r.baseNorm[test] }

// Baseline returns the trusted result for one test.
func (r *Results) Baseline(test string) Result { return r.baseline[test] }

// Speedup returns Time(reference)/Time(run): >1 means faster than g++ -O2.
func (r *Results) Speedup(run RunResult) float64 {
	ref := r.refTime[run.Test]
	if run.Time <= 0 {
		return 0
	}
	return ref / run.Time
}

// VariableRuns returns every (test, compilation) run that deviated.
func (r *Results) VariableRuns() []RunResult {
	var out []RunResult
	for _, t := range r.TestNames() {
		for _, rr := range r.byTest[t] {
			if rr.Variable() {
				out = append(out, rr)
			}
		}
	}
	return out
}

// CompilerRunStats counts variable runs and total runs per compiler
// (Table 1's "# Variable Runs x of y" column).
func (r *Results) CompilerRunStats() map[string][2]int {
	out := map[string][2]int{}
	for _, t := range r.TestNames() {
		for _, rr := range r.byTest[t] {
			v := out[rr.Comp.Compiler]
			v[1]++
			if rr.Variable() {
				v[0]++
			}
			out[rr.Comp.Compiler] = v
		}
	}
	return out
}

// BestAverageCompilation returns, for one compiler, the compilation with the
// best average speedup across all tests, and that average (Table 1's "Best
// Flags" and "Speedup" columns).
func (r *Results) BestAverageCompilation(compiler string) (comp.Compilation, float64) {
	type agg struct {
		sum float64
		n   int
	}
	sums := map[string]*agg{}
	comps := map[string]comp.Compilation{}
	for _, t := range r.TestNames() {
		for _, rr := range r.byTest[t] {
			if rr.Comp.Compiler != compiler || rr.Err != nil {
				continue
			}
			k := rr.Comp.Key()
			if sums[k] == nil {
				sums[k] = &agg{}
				comps[k] = rr.Comp
			}
			sums[k].sum += r.Speedup(rr)
			sums[k].n++
		}
	}
	bestKey, bestAvg := "", -1.0
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if avg := sums[k].sum / float64(sums[k].n); avg > bestAvg {
			bestAvg, bestKey = avg, k
		}
	}
	return comps[bestKey], bestAvg
}

// FastestEqual returns the fastest bitwise-equal run of one test restricted
// to one compiler ("" means any), and whether such a run exists.
func (r *Results) FastestEqual(test, compiler string) (RunResult, bool) {
	return r.fastest(test, compiler, false)
}

// FastestVariable returns the fastest variability-exhibiting run of one
// test restricted to one compiler ("" means any).
func (r *Results) FastestVariable(test, compiler string) (RunResult, bool) {
	return r.fastest(test, compiler, true)
}

func (r *Results) fastest(test, compiler string, variable bool) (RunResult, bool) {
	best := RunResult{}
	found := false
	for _, rr := range r.byTest[test] {
		if rr.Err != nil || rr.Variable() != variable {
			continue
		}
		if compiler != "" && rr.Comp.Compiler != compiler {
			continue
		}
		if !found || rr.Time < best.Time {
			best, found = rr, true
		}
	}
	return best, found
}

// SortedBySpeed returns one test's successful runs ordered slowest to
// fastest (the x-axis of Figure 4).
func (r *Results) SortedBySpeed(test string) []RunResult {
	var out []RunResult
	for _, rr := range r.byTest[test] {
		if rr.Err == nil {
			out = append(out, rr)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	return out
}

// ErrorSpread returns the min, median, and max relative error over the
// variable runs of one test (Figure 6's boxplot rows). ok is false when the
// test had no variable runs.
func (r *Results) ErrorSpread(test string) (min, median, max float64, ok bool) {
	var errs []float64
	for _, rr := range r.byTest[test] {
		if rr.Variable() {
			errs = append(errs, rr.RelativeErr)
		}
	}
	if len(errs) == 0 {
		return 0, 0, 0, false
	}
	sort.Float64s(errs)
	return errs[0], errs[len(errs)/2], errs[len(errs)-1], true
}
