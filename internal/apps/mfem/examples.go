package mfem

import (
	"fmt"
	"math"

	"repro/internal/flit"
	"repro/internal/link"
)

// The 19 end-to-end examples of the MFEM study (ex1.cpp … ex19.cpp). Each
// produces "calculated values over a full mesh or volume" (paper §3.1);
// the study's comparison is the ℓ2 norm of the difference from the g++ -O0
// baseline. Examples 12 and 18 compute in exactly representable arithmetic
// and are therefore invariant under every tested compilation, matching the
// two invariant tests of Figure 5.

// Case adapts one example to the flit.TestCase protocol.
type Case struct {
	N     int
	procs int // simulated MPI ranks; 0 or 1 = sequential
}

// NewCase returns the FLiT test case for example n (1-based).
func NewCase(n int) *Case {
	if n < 1 || n > 19 {
		panic(fmt.Sprintf("mfem: no example %d", n))
	}
	return &Case{N: n}
}

// AllCases returns the 19 example test cases in order.
func AllCases() []flit.TestCase {
	out := make([]flit.TestCase, 19)
	for i := range out {
		out[i] = NewCase(i + 1)
	}
	return out
}

// WithProcs returns a copy of the case running under np simulated MPI
// ranks: the 2-D assembly traverses elements in the rank-partitioned order,
// which changes accumulation order exactly as a domain decomposition does.
func (c *Case) WithProcs(np int) *Case {
	return &Case{N: c.N, procs: np}
}

// Name implements flit.TestCase.
func (c *Case) Name() string { return fmt.Sprintf("Example%02d", c.N) }

// CacheKey implements flit.CacheKeyer: an MPI variant shares its name with
// the sequential case but traverses the mesh in rank-partitioned order, so
// the build/run cache must not conflate them.
func (c *Case) CacheKey() string {
	if c.procs > 1 {
		return fmt.Sprintf("%s/np=%d", c.Name(), c.procs)
	}
	return c.Name()
}

// Root implements flit.TestCase.
func (c *Case) Root() string { return exampleSymbol(c.N) }

// GetInputsPerRun implements flit.TestCase: every example consumes two
// seed values.
func (c *Case) GetInputsPerRun() int { return 2 }

// GetDefaultInput implements flit.TestCase.
func (c *Case) GetDefaultInput() []float64 {
	return []float64{0.37 + 0.01*float64(c.N), 0.61 - 0.005*float64(c.N)}
}

// Compare implements flit.TestCase with the study's metric
// ||baseline - actual||₂.
func (c *Case) Compare(baseline, other flit.Result) float64 {
	return flit.L2Diff(baseline, other)
}

// Run implements flit.TestCase.
func (c *Case) Run(input []float64, m *link.Machine) (flit.Result, error) {
	fn := exampleFuncs[c.N-1]
	return flit.VecResult(fn(m, input, c.procs)), nil
}

type exampleFunc func(m *link.Machine, input []float64, procs int) []float64

var exampleFuncs = [19]exampleFunc{
	example1, example2, example3, example4, example5, example6, example7,
	example8, example9, example10, example11, example12, example13,
	example14, example15, example16, example17, example18, example19,
}

// enter brackets an example's main symbol.
func enter(m *link.Machine, n int) func() {
	_, done := m.Fn(exampleSymbol(n))
	return done
}

// decompose returns the global column count after an np-rank domain
// decomposition: each rank meshes its strip with equal local resolution
// ceil(nx/np), so a decomposition that does not divide evenly increases the
// grid density — the effect the paper observed when comparing parallel runs
// against sequential ones (§3.6).
func decompose(nx, np int) int {
	if np <= 1 {
		return nx
	}
	return np * ((nx + np - 1) / np)
}

// stripOrder returns the element traversal order for np vertical-strip
// subdomains of a 2-D mesh — the domain decomposition of the MPI study.
func stripOrder(mesh *Mesh2D, np int) []int {
	if np <= 1 {
		return nil
	}
	var order []int
	per := (mesh.Nx + np - 1) / np
	for p := 0; p < np; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > mesh.Nx {
			hi = mesh.Nx
		}
		// Each rank numbers its rows locally; odd ranks sweep top-down,
		// so shared-node contributions accumulate in a different order
		// than the sequential row-major sweep.
		for r := 0; r < mesh.Ny; r++ {
			ey := r
			if p%2 == 1 {
				ey = mesh.Ny - 1 - r
			}
			for ex := lo; ex < hi; ex++ {
				order = append(order, ey*mesh.Nx+ex)
			}
		}
	}
	return order
}

// example1: 1-D Poisson -u” = 1 with Dirichlet BC, CG solve.
func example1(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 1)()
	mesh := MakeCartesian1D(m, 24, 1)
	k := AssembleDiffusion1D(m, mesh, One1D)
	b := AssembleRHS1D(m, mesh, func(m *link.Machine, x float64) float64 { return 1 + in[0]*0 })
	u := make([]float64, mesh.N+1)
	CGSolve(m, k, b, u, 1e-10, 120)
	return u
}

// example2: 2-D Poisson on a 6×6 quad mesh.
func example2(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 2)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 { return in[0] + 1 })
	u := make([]float64, mesh.NumNodes())
	CGSolve(m, k, b, u, 1e-10, 200)
	return u
}

// example3: L2 projection on a perturbed 1-D mesh: solve M u = b(Runge·poly).
func example3(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 3)()
	mesh := MakeCartesian1D(m, 24, 1)
	PerturbNodes1D(m, mesh, 0.1*in[0])
	mass := AssembleMass1D(m, mesh, One1D)
	rhs := AssembleRHS1D(m, mesh, func(m *link.Machine, x float64) float64 {
		return CoeffRunge(m, x) * CoeffPoly(m, x)
	})
	u := make([]float64, mesh.N+1)
	CGSolve(m, mass, rhs, u, 1e-11, 150)
	g := Project1D(m, mesh, CoeffPoly)
	return append(u, g...)
}

// example4: 2-D diffusion with the sqrt-radius coefficient (libm-bearing:
// Intel's link step makes this example variable at every icpc compilation).
func example4(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 4)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, CoeffSqrtRadius)
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 { return 1 + in[0] })
	u := make([]float64, mesh.NumNodes())
	CGSolve(m, k, b, u, 1e-10, 200)
	return u
}

// example5: 2-D Poisson with Jacobi-preconditioned CG (Figure 4a's test).
func example5(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 5)()
	mesh := MakeCartesian2D(m, decompose(7, procs), 7, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return CoeffSqrtRadius(m, x, y) + in[0]
	})
	u := make([]float64, mesh.NumNodes())
	PCGSolve(m, k, b, u, 1e-10, 200)
	return u
}

// example6: 1-D advection with upwind fluxes and RK2 time stepping.
func example6(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 6)()
	mesh := MakeCartesian1D(m, 32, 1)
	n := mesh.N
	u := make([]float64, n)
	for i := 0; i < n; i++ {
		x := MapToInterval(m, float64(i)/float64(n), 0, 1)
		u[i] = CoeffPoly(m, x*in[0]) * 0.1
	}
	h := ElementSize1D(m, mesh, 0)
	v := 0.8 + in[1]*0.1
	dt := 0.4 * h / v
	flux := func(u, du []float64) {
		for i := range du {
			left, right := u[(i+n-1)%n], u[i]
			fl := Upwind(m, v, left, right)
			fr := Upwind(m, v, right, u[(i+1)%n])
			du[i] = (fl - fr) / h
		}
	}
	for step := 0; step < 30; step++ {
		RK2Step(m, u, dt, flux)
	}
	mass := Sum(m, u)
	return append(u, mass)
}

// example7: mass-weighted projection: w = M · Π(poly).
func example7(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 7)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	mass := AssembleMass2D(m, mesh, One2D)
	g := Project2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return CoeffPoly(m, x) * CoeffPoly(m, y*in[0])
	})
	w := make([]float64, mesh.NumNodes())
	SpMult(m, mass, g, w)
	return w
}

// example8: deep iterative solve with a 1e-12 stopping criterion — the
// paper's Finding 1, where compilations converge to visibly different
// answers and Bisect blames the whole mat-vec chain.
func example8(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 8)()
	mesh := MakeCartesian2D(m, decompose(7, procs), 7, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		// Strongly varying coefficient: worsens conditioning.
		return 1 + 50*x*x + in[0]*y
	})
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return CoeffPoly(m, x) - CoeffPoly(m, y)
	})
	u := make([]float64, mesh.NumNodes())
	PCGSolve(m, k, b, u, 1e-12, 400)
	mass := AssembleMass2D(m, mesh, One2D)
	mu := make([]float64, len(u))
	SpMult(m, mass, u, mu)
	err := L2Error(m, u, mu)
	return append(u, err)
}

// example9: block computation with dense kernels (Figure 4b's test: heavy
// enough that aggressive vector compilations win big).
func example9(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 9)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return CoeffExpDecay(m, x) + in[0]
	})
	mass := AssembleMass2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, One2D)
	u := make([]float64, mesh.NumNodes())
	CGSolve(m, k, b, u, 1e-10, 200)

	// Dense postprocessing block.
	d := NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			v := u[(i*8+j)%len(u)]
			if i == j {
				v += 0.5 // diagonal dominance keeps the block well-behaved
			}
			d.Set(i, j, v)
		}
	}
	x := u[:8]
	y := make([]float64, 8)
	DenseMult(m, d, x, y)
	yt := make([]float64, 8)
	DenseMultTranspose(m, d, y, yt)
	Normalize(m, yt)
	tr := Trace(m, d)
	fn := FNorm(m, d)
	inv2 := NewDense(2, 2)
	inv2.Set(0, 0, 2+u[0])
	inv2.Set(0, 1, 0.5)
	inv2.Set(1, 0, 0.25)
	inv2.Set(1, 1, 1+u[1])
	det := Invert2x2(m, inv2)
	low := NewDense(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			low.Set(i, j, 1+u[(i*4+j)%len(u)]*0.1)
		}
	}
	rhs4 := append([]float64(nil), y[:4]...)
	LSolve(m, low, rhs4)
	mz := make([]float64, len(u))
	SpMult(m, mass, u, mz)
	out := append(append([]float64(nil), u...), y...)
	out = append(out, yt...)
	out = append(out, tr, fn, det)
	out = append(out, rhs4...)
	return append(out, mz[:8]...)
}

// example10: nonlinear reaction-diffusion by fixed-point iteration with an
// exp source (libm-bearing).
func example10(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 10)()
	mesh := MakeCartesian1D(m, 24, 1)
	k := AssembleDiffusion1D(m, mesh, One1D)
	u := make([]float64, mesh.N+1)
	for iter := 0; iter < 8; iter++ {
		rhs := AssembleRHS1D(m, mesh, func(m *link.Machine, x float64) float64 {
			return CoeffExpDecay(m, x) + in[0]*u[mesh.N/2]
		})
		next := make([]float64, len(u))
		CGSolve(m, k, rhs, next, 1e-10, 120)
		if Norml2(m, next) == Norml2(m, u) {
			break // exact fixed point (a Branch on computed values)
		}
		u = next
	}
	return u
}

// example11: dominant eigenvalue of the 1-D stiffness matrix by power
// iteration.
func example11(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 11)()
	mesh := MakeCartesian1D(m, 24, 1)
	k := AssembleDiffusion1D(m, mesh, One1D)
	x := make([]float64, mesh.N+1)
	for i := range x {
		x[i] = 1 + in[0]*float64(i%3)
	}
	prev := append([]float64(nil), x...)
	lambda := PowerIterationRun(m, k, x, 30)
	drift := DistanceTo(m, x, prev)
	return append(append([]float64(nil), x...), lambda, drift)
}

// example12: exactly representable arithmetic — invariant under every
// compilation (one of the two invariant tests of Figure 5). All values are
// small integers scaled by powers of two, so contraction, reassociation,
// widened intermediates, and FTZ cannot change any rounding.
func example12(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 12)()
	mesh := MakeCartesian1D(m, 16, 1) // h = 1/16: exact
	a := &CSR{N: 8,
		RowPtr: []int{0, 1, 2, 3, 4, 5, 6, 7, 8},
		Col:    []int{0, 1, 2, 3, 4, 5, 6, 7},
		Val:    []float64{2, 4, 8, 16, 32, 64, 128, 256},
	}
	d := make([]float64, a.N)
	SpGetDiag(m, a, d)
	mx := Max(m, d)
	out := append(append([]float64(nil), mesh.X...), d...)
	return append(out, mx)
}

// example13: the AddMult_a_AAt stress test — Finding 2. The dense kernel's
// rounding differences feed a chaotic recurrence in the (pattern-free,
// hence never-transformed) main, so variability-inducing compilations land
// around 180–200% relative error while the baseline stays deterministic.
func example13(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 13)()
	a := NewDense(3, 3)
	mm := NewDense(3, 3)
	x := 0.3 + 0.4*in[1]
	for k := 0; k < 120; k++ {
		// A depends on the state, so the kernel computes fresh dot
		// products every step and its rounding noise re-enters the loop.
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a.Set(i, j, x+float64(i*3+j)/7.0)
			}
		}
		for i := range mm.A {
			mm.A[i] = 0
		}
		AddMultAAt(m, in[0]+0.5, a, mm) // M = c·A·Aᵀ
		v := mm.At(0, 0)
		f := v - math.Floor(v)
		x = 3.9 * f * (1 - f) // chaotic: kernel rounding noise amplifies
	}
	return append(append([]float64(nil), mm.A...), x)
}

// example14: 2-D Poisson on a stretched 2×1 domain.
func example14(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 14)()
	mesh := MakeCartesian2D(m, decompose(8, procs), 4, 2, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return 1 + in[0]*x
	})
	u := make([]float64, mesh.NumNodes())
	CGSolve(m, k, b, u, 1e-10, 200)
	total := Sum(m, u)
	return append(u, total)
}

// example15: Helmholtz-flavored combination with both libm coefficients.
func example15(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 15)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	mass := AssembleMass2D(m, mesh, CoeffSqrtRadius)
	k := AssembleDiffusion2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return CoeffExpDecay(m, x) + in[0]*y
	})
	g := Project2D(m, mesh, CoeffSqrtRadius)
	w := make([]float64, mesh.NumNodes())
	SpMult(m, k, g, w)
	z := make([]float64, mesh.NumNodes())
	CGSolve(m, mass, w, z, 1e-10, 200)
	return z
}

// example16: 1-D heat equation, mass-solve time stepping.
func example16(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 16)()
	mesh := MakeCartesian1D(m, 24, 1)
	mass := AssembleMass1D(m, mesh, One1D)
	k := AssembleDiffusion1D(m, mesh, One1D)
	u := make([]float64, mesh.N+1)
	for i := range u {
		u[i] = CoeffPoly(m, mesh.X[i]*in[0]) * 0.01
	}
	dt := 2e-4
	rhs := make([]float64, len(u))
	for step := 0; step < 10; step++ {
		SpMult(m, mass, u, rhs)
		SpAddMult(m, -dt, k, u, rhs)
		next := make([]float64, len(u))
		CGSolve(m, mass, rhs, next, 1e-11, 120)
		u = next
	}
	return u
}

// example17: Gauss-Seidel relaxation and the energy inner product.
func example17(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 17)()
	mesh := MakeCartesian2D(m, decompose(6, procs), 6, 1, 1)
	mesh.ElemOrder = stripOrder(mesh, procs)
	k := AssembleDiffusion2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, func(m *link.Machine, x, y float64) float64 {
		return in[0] + x*y
	})
	x := make([]float64, mesh.NumNodes())
	for sweep := 0; sweep < 25; sweep++ {
		GaussSeidel(m, k, b, x)
	}
	energy := SpInnerProduct(m, k, x, x)
	return append(x, energy)
}

// example18: the second invariant test — powers of two only.
func example18(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 18)()
	mesh := MakeCartesian1D(m, 8, 1) // h = 1/8: exact
	a := make([]float64, 16)
	b := make([]float64, 16)
	for i := range a {
		a[i] = float64(int(1) << uint(i%10))
		b[i] = 0.5 * float64(i)
	}
	sum := make([]float64, 16)
	Add(m, sum, a, b)
	Scale(m, 0.25, sum)
	id := &CSR{N: 4, RowPtr: []int{0, 1, 2, 3, 4}, Col: []int{0, 1, 2, 3},
		Val: []float64{1, 2, 4, 8}}
	d := make([]float64, 4)
	SpGetDiag(m, id, d)
	out := append(append([]float64(nil), mesh.X...), sum...)
	return append(out, d...)
}

// example19: 1-D transport-reaction with convection element matrices,
// upwind stabilization, RK2 stepping, and a final Jacobi relaxation.
func example19(m *link.Machine, in []float64, procs int) []float64 {
	defer enter(m, 19)()
	mesh := MakeCartesian1D(m, 24, 1)
	n := mesh.N + 1
	// Global convection operator assembled directly from element matrices.
	bld := newCSRBuilder(n)
	for i := 0; i < n; i++ {
		bld.add(i, i, 1) // A = I + 0.15·C
	}
	for e := 0; e < mesh.N; e++ {
		ke := ConvectionElement1D(m, mesh, e, 1+in[0])
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				bld.add(e+i, e+j, 0.15*ke.At(i, j))
			}
		}
	}
	a := bld.build()
	u := make([]float64, n)
	for i := range u {
		u[i] = 0.1 + 0.01*float64(i%5)
	}
	dt := 0.01
	deriv := func(u, du []float64) {
		for i := range du {
			l, r := u[(i+n-1)%n], u[(i+1)%n]
			du[i] = Upwind(m, 1+in[1], l, u[i]) - Upwind(m, 1+in[1], u[i], r)
		}
	}
	for step := 0; step < 12; step++ {
		RK2Step(m, u, dt, deriv)
	}
	x := make([]float64, n)
	JacobiIterate(m, a, u, x, 0.8, 3)
	total := Sum(m, x)
	return append(x, total)
}
