package mfem

import "repro/internal/link"

// CSR is a compressed-sparse-row matrix (sparsemat.cpp).
type CSR struct {
	N      int
	RowPtr []int
	Col    []int
	Val    []float64
}

// csrBuilder accumulates entries densely per row (meshes here are small)
// and compresses with deterministic column ordering.
type csrBuilder struct {
	n    int
	rows []map[int]float64
}

func newCSRBuilder(n int) *csrBuilder {
	b := &csrBuilder{n: n, rows: make([]map[int]float64, n)}
	for i := range b.rows {
		b.rows[i] = make(map[int]float64, 9)
	}
	return b
}

// add accumulates v into entry (i,j) with plain addition. Assembly order is
// fixed by the element loop, so accumulation itself is deterministic; the
// value-changing arithmetic happens inside the integrator kernels.
func (b *csrBuilder) add(i, j int, v float64) { b.rows[i][j] += v }

func (b *csrBuilder) build() *CSR {
	c := &CSR{N: b.n, RowPtr: make([]int, b.n+1)}
	for i, row := range b.rows {
		c.RowPtr[i] = len(c.Col)
		// Columns in increasing order for determinism.
		for j := 0; j < b.n; j++ {
			if v, ok := row[j]; ok {
				c.Col = append(c.Col, j)
				c.Val = append(c.Val, v)
			}
		}
	}
	c.RowPtr[b.n] = len(c.Col)
	return c
}

// rowSlices returns the column indices and values of row i.
func (c *CSR) rowSlices(i int) ([]int, []float64) {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	return c.Col[lo:hi], c.Val[lo:hi]
}

// SpMult computes y = A·x.
func SpMult(m *link.Machine, a *CSR, x, y []float64) {
	env, done := m.Fn("SparseMatrix::Mult")
	defer done()
	xs := make([]float64, 0, 16)
	for i := 0; i < a.N; i++ {
		cols, vals := a.rowSlices(i)
		xs = xs[:0]
		for _, j := range cols {
			xs = append(xs, x[j])
		}
		y[i] = env.Dot(vals, xs)
	}
}

// SpAddMult computes y += alpha·A·x.
func SpAddMult(m *link.Machine, alpha float64, a *CSR, x, y []float64) {
	env, done := m.Fn("SparseMatrix::AddMult")
	defer done()
	xs := make([]float64, 0, 16)
	for i := 0; i < a.N; i++ {
		cols, vals := a.rowSlices(i)
		xs = xs[:0]
		for _, j := range cols {
			xs = append(xs, x[j])
		}
		y[i] = env.MulAdd(alpha, env.Dot(vals, xs), y[i])
	}
}

// SpInnerProduct returns xᵀ·A·y.
func SpInnerProduct(m *link.Machine, a *CSR, x, y []float64) float64 {
	_, done := m.Fn("SparseMatrix::InnerProduct")
	defer done()
	tmp := make([]float64, a.N)
	SpMult(m, a, y, tmp)
	return Dot(m, x, tmp)
}

// SpGetDiag extracts the diagonal of A into d.
func SpGetDiag(m *link.Machine, a *CSR, d []float64) {
	_, done := m.Fn("SparseMatrix::GetDiag")
	defer done()
	for i := 0; i < a.N; i++ {
		cols, vals := a.rowSlices(i)
		d[i] = 0
		for k, j := range cols {
			if j == i {
				d[i] = vals[k]
				break
			}
		}
	}
}

// JacobiSmooth performs one damped-Jacobi sweep:
// x' = x + w·D⁻¹·(b - A·x).
func JacobiSmooth(m *link.Machine, a *CSR, b, x []float64, w float64) {
	env, done := m.Fn("SparseMatrix::JacobiSmooth")
	defer done()
	r := make([]float64, a.N)
	SpMult(m, a, x, r)
	d := make([]float64, a.N)
	SpGetDiag(m, a, d)
	for i := 0; i < a.N; i++ {
		res := env.Sub(b[i], r[i])
		x[i] = env.MulAdd(w, env.Div(res, d[i]), x[i])
	}
}

// GaussSeidel performs one forward Gauss-Seidel sweep in place.
func GaussSeidel(m *link.Machine, a *CSR, b, x []float64) {
	env, done := m.Fn("SparseMatrix::GaussSeidel")
	defer done()
	for i := 0; i < a.N; i++ {
		cols, vals := a.rowSlices(i)
		var diag float64 = 1
		s := b[i]
		for k, j := range cols {
			if j == i {
				diag = vals[k]
				continue
			}
			s = env.Sub(s, env.Mul(vals[k], x[j]))
		}
		x[i] = env.Div(s, diag)
	}
}
