package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/exec"
)

// Runner executes one leased shard of a campaign command and returns
// the exported shard artifact, verbatim JSON. The CLI supplies the
// experiments-engine implementation; tests supply fakes and saboteurs.
// The artifact must be a deterministic function of (command, shard) —
// in particular, unstamped — so that two workers completing the same
// shard converge on identical bytes.
type Runner func(command []string, shard exec.Shard) ([]byte, error)

// WorkerOptions tunes the worker loop. The zero value is production-shaped.
type WorkerOptions struct {
	// Name identifies this worker in coordinator state (default "worker").
	Name string
	// PollEvery is the pause between lease attempts while every shard is
	// taken (default 500ms).
	PollEvery time.Duration
	// RunAttempts is how many times a shard is run locally — under the
	// same lease, heartbeats still flowing — before its failure is
	// reported to the coordinator (default 2). Local retries absorb
	// transient run failures without costing the shard a coordinator
	// attempt.
	RunAttempts int
	// RetryBackoff is the pause before each local re-run, doubling per
	// retry (default 250ms).
	RetryBackoff time.Duration
	// Log receives one line per lifecycle event (nil discards).
	Log io.Writer
}

func (o *WorkerOptions) withDefaults() {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 500 * time.Millisecond
	}
	if o.RunAttempts <= 0 {
		o.RunAttempts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 250 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// WorkerStats summarizes one worker's participation across campaigns.
type WorkerStats struct {
	// Completed counts shards this worker ran and successfully reported.
	Completed int
	// Lost counts shards this worker ran to completion but whose lease was
	// lost along the way — the artifact upload was skipped because another
	// worker owns the shard now. The work is not wasted: run results were
	// written through to the shared store as they were computed.
	Lost int
	// Failed counts shards whose run failed (error or panic) after the
	// local retry budget and were reported to the coordinator as failures.
	// The worker itself survives each one and moves to the next lease.
	Failed int
}

// Work runs the worker loop against a coordinator: list the campaigns,
// lease a shard of the first incomplete one (falling through to later
// campaigns when every shard of an earlier one is taken), run it under a
// heartbeat, upload the artifact, repeat until every campaign is done —
// so a fleet drains one campaign and then picks up the next, and a
// campaign submitted while the fleet is busy gets scheduled without
// restarting anything.
//
// Cancelling ctx drains: scheduling calls (the campaign listing and
// lease polls) are cancelled immediately — mid-backoff, mid-request —
// but a shard already running is finished and reported (the drivers are
// not interruptible and the work is worth keeping; its heartbeats and
// final Complete deliberately run outside ctx), a lease merely held is
// released, and the loop returns ctx.Err(). A lost lease (expiry or
// supersession while running) abandons only the upload and continues. A
// campaign retired by GC mid-loop is skipped, as is one that has
// terminally failed — a poisoned campaign costs the fleet nothing once
// quarantine closes it. A shard whose run fails or panics is reported
// via Fail and the loop continues to the next lease: a poisoned shard
// costs one coordinator attempt, never a worker. Transient coordinator
// errors have already consumed the client's retry budget when they
// surface here, so they terminate the loop rather than spin on a dead
// service.
func Work(ctx context.Context, cl *Client, run Runner, opts WorkerOptions) (WorkerStats, error) {
	opts.withDefaults()
	var stats WorkerStats
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		infos, err := cl.Campaigns(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			return stats, err
		}
		incomplete := infos[:0:0]
		for _, ci := range infos {
			if !ci.Complete && !ci.Failed {
				incomplete = append(incomplete, ci)
			}
		}
		if len(incomplete) == 0 {
			fmt.Fprintf(opts.Log, "%s: all campaigns terminal (%d shards run here, %d lost, %d failed)\n",
				opts.Name, stats.Completed, stats.Lost, stats.Failed)
			return stats, nil
		}
		granted := false
		for _, ci := range incomplete {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			g, state, err := cl.Lease(ctx, ci.ID, opts.Name)
			if err != nil {
				if errors.Is(err, ErrNoCampaign) {
					continue // retired between the listing and the lease
				}
				if ctx.Err() != nil {
					return stats, ctx.Err()
				}
				return stats, err
			}
			if state != Granted {
				continue // Done or Wait: try the next campaign
			}
			granted = true
			if err := ctx.Err(); err != nil {
				// Drained between lease and run: hand the untouched shard back.
				// The release runs outside ctx — it is the cleanup the drain
				// exists to perform.
				_ = cl.Release(context.Background(), ci.ID, opts.Name, g.LeaseID, g.Shard)
				return stats, err
			}
			fmt.Fprintf(opts.Log, "%s: leased shard %d/%d of %s (%s)\n",
				opts.Name, g.Shard, g.Count, ci.ID, g.LeaseID)
			out, err := runShard(cl, ci.ID, run, g, opts, &stats)
			if err != nil {
				return stats, err
			}
			switch {
			case out.lost:
				fmt.Fprintf(opts.Log, "%s: lease %s lost; shard %d abandoned to its new owner\n",
					opts.Name, g.LeaseID, g.Shard)
			case out.failed:
				fmt.Fprintf(opts.Log, "%s: shard %d of %s failed; reported and moving on\n",
					opts.Name, g.Shard, ci.ID)
				if out.quarantined {
					fmt.Fprintf(opts.Log, "%s: shard %d of %s quarantined (attempt budget exhausted)\n",
						opts.Name, g.Shard, ci.ID)
				}
			default:
				fmt.Fprintf(opts.Log, "%s: shard %d of %s complete\n", opts.Name, g.Shard, ci.ID)
			}
			if out.campaignDone {
				fmt.Fprintf(opts.Log, "%s: campaign %s complete\n", opts.Name, ci.ID)
			}
			if out.campaignFailed {
				fmt.Fprintf(opts.Log, "%s: campaign %s failed terminally; skipping it from now on\n",
					opts.Name, ci.ID)
			}
			if out.allTerminal {
				// This report settled the coordinator's last open campaign.
				// Don't go back for one more listing: under -exit-when-done the
				// coordinator may already be draining, and that poll would race
				// its shutdown.
				fmt.Fprintf(opts.Log, "%s: all campaigns terminal (%d shards run here, %d lost, %d failed)\n",
					opts.Name, stats.Completed, stats.Lost, stats.Failed)
				return stats, nil
			}
			break // re-list: the tenancy may have changed while we ran
		}
		if !granted {
			fmt.Fprintf(opts.Log, "%s: all shards leased; polling\n", opts.Name)
			select {
			case <-ctx.Done():
			case <-time.After(opts.PollEvery):
			}
		}
	}
}

// shardOutcome is what one granted shard came to: exactly one of lost,
// failed, or a completion (possibly the one that finished the campaign
// or the whole tenancy).
type shardOutcome struct {
	lost           bool
	failed         bool
	quarantined    bool
	campaignDone   bool
	campaignFailed bool
	allDone        bool
	allTerminal    bool
}

// runAttempt executes the Runner once, converting a panic into an error
// plus a stack excerpt — a Runner that panics on one poisoned shard
// must cost an attempt, not the worker. Errors carry no excerpt; the
// error text is the report.
func runAttempt(run Runner, command []string, shard exec.Shard) (artifact []byte, excerpt string, err error) {
	defer func() {
		if r := recover(); r != nil {
			artifact = nil
			excerpt = string(debug.Stack())
			err = fmt.Errorf("runner panicked: %v", r)
		}
	}()
	artifact, err = run(command, shard)
	return artifact, "", err
}

// runShard executes one granted shard under a heartbeat goroutine and
// reports the result. A failing or panicking run is retried locally
// (opts.RunAttempts, backoff doubling from opts.RetryBackoff, lease kept
// alive by the heartbeats throughout) and then reported to the
// coordinator via Fail — runShard returns an error only when the
// coordinator itself is unreachable, never because the shard's command
// failed. The heartbeats and the final Complete/Fail run under their own
// context — a draining worker keeps its lease alive while it finishes
// the shard, and the report of finished work is never the call a drain
// cancels.
func runShard(cl *Client, campaign string, run Runner, g Grant,
	opts WorkerOptions, stats *WorkerStats) (shardOutcome, error) {
	// Heartbeat at a third of the TTL: two beats may be dropped before the
	// lease is at risk.
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbLost bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		interval := g.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			// The request itself runs outside hbCtx: stopHB fires when the run
			// finishes, and cancelling an in-flight beat then would read as a
			// lost lease when nothing was lost.
			if err := cl.Heartbeat(context.Background(), campaign, opts.Name, g.LeaseID, g.Shard); err != nil {
				// Lease loss is terminal for the heartbeat; so is an exhausted
				// retry budget (the lease will expire anyway — treat the shard
				// as lost rather than report over a dead coordinator).
				if !errors.Is(err, ErrLeaseLost) {
					fmt.Fprintf(opts.Log, "%s: heartbeat failed: %v\n", opts.Name, err)
				}
				hbLost = true
				return
			}
		}
	}()
	var artifact []byte
	var excerpt string
	var runErr error
	for attempt := 1; attempt <= opts.RunAttempts; attempt++ {
		if attempt > 1 {
			fmt.Fprintf(opts.Log, "%s: shard %d attempt %d/%d after failure: %v\n",
				opts.Name, g.Shard, attempt, opts.RunAttempts, runErr)
			time.Sleep(opts.RetryBackoff << (attempt - 2))
		}
		artifact, excerpt, runErr = runAttempt(run, g.Command, exec.Shard{Index: g.Shard, Count: g.Count})
		if runErr == nil {
			break
		}
	}
	stopHB()
	wg.Wait()
	if runErr != nil {
		// The shard failed every local attempt: report a structured failure
		// so the coordinator can count it against the shard's budget. The
		// worker survives — a deterministically poisoned shard is the
		// coordinator's quarantine problem, not a worker-killing one.
		stats.Failed++
		quarantined, campaignFailed, allTerminal, err := cl.Fail(context.Background(),
			campaign, opts.Name, g.LeaseID, g.Shard, runErr.Error(), excerpt)
		if err != nil {
			if errors.Is(err, ErrLeaseLost) {
				// Re-leased while we were failing: the report is moot, the new
				// owner will produce its own.
				return shardOutcome{failed: true}, nil
			}
			return shardOutcome{}, err
		}
		return shardOutcome{failed: true, quarantined: quarantined,
			campaignFailed: campaignFailed, allTerminal: allTerminal}, nil
	}
	if hbLost {
		stats.Lost++
		return shardOutcome{lost: true}, nil
	}
	campaignDone, allDone, allTerminal, err := cl.Complete(context.Background(), campaign, opts.Name, g.LeaseID, g.Shard, artifact)
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			stats.Lost++
			return shardOutcome{lost: true}, nil
		}
		return shardOutcome{}, err
	}
	stats.Completed++
	return shardOutcome{campaignDone: campaignDone, allDone: allDone, allTerminal: allTerminal}, nil
}
