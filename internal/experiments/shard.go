package experiments

import (
	"fmt"

	"repro/internal/flit"
)

// Sharded execution of the experiments suite.
//
// A shard run partitions the deterministic job index space of every driver
// — matrix baselines and cells, Table 2 searches, Table 4 row
// configurations, injection site × OP' pairs — executes only the owned
// jobs, and exports everything its build/run cache computed as a
// self-describing JSON artifact (flit.Artifact, keyed by
// link.Executable.Key + flit.TestKey). Merging seeds a fresh engine's
// cache with the union of the shards' artifacts and replays the recorded
// command: every evaluation is then answered from the cache, so the merge
// is cheap, and because a cache hit is bit-identical to a recomputation,
// the merged output is byte-identical to an unsharded run by construction.
// Small sequential phases (the motivation example, the Findings narrative,
// the adaptive File Bisect prefix of each search) run redundantly on every
// shard — the shard boundary is the expensive fan-outs, exactly as the
// paper's cluster sweeps partitioned compilations, not bookkeeping.

// ExportArtifact snapshots everything this engine's cache has computed as
// one shard artifact. command is the canonical CLI command the artifact
// replays under `flit merge` (nil for library use).
func (e *Engine) ExportArtifact(command []string) *flit.Artifact {
	return e.cache.Export(e.shard, command)
}

// ImportArtifacts validates a shard set and seeds this engine's cache with
// the union of the artifacts' results. Call it on a fresh engine before
// running any experiment; replaying the artifacts' recorded command then
// reproduces the unsharded output byte for byte.
func (e *Engine) ImportArtifacts(arts ...*flit.Artifact) error {
	if err := flit.ValidateShardSet(arts); err != nil {
		return fmt.Errorf("experiments: merging shard artifacts: %w", err)
	}
	for i, a := range arts {
		if err := e.cache.Import(a); err != nil {
			return fmt.Errorf("experiments: shard artifact %d: %w", i, err)
		}
	}
	return nil
}

// WarmStart seeds this engine's cache from previously exported artifacts
// without requiring a complete shard set: each artifact is validated
// individually (format and engine version — foreign results are still
// rejected), but shard coordinates and recorded commands may differ and
// gaps are fine. A warm start reuses yesterday's executions, it does not
// replay a command: whatever the artifacts do not cover is recomputed, and
// because a cache hit is bit-identical to a recomputation the output is
// unchanged — only the wall-clock shrinks. This is the incremental half of
// the shard protocol: any shard artifact doubles as a warm-start cache.
// With delta tracking enabled (EnableDelta), each artifact also becomes
// part of the run's baseline: the delta detector classifies every key
// against it, and in verify mode the artifacts seed nothing — covered
// evaluations are recomputed and compared bit-exactly instead.
func (e *Engine) WarmStart(arts ...*flit.Artifact) error {
	for i, a := range arts {
		var err error
		if e.delta != nil {
			err = e.delta.Seed(e.cache, a)
		} else {
			err = e.cache.Import(a)
		}
		if err != nil {
			return fmt.Errorf("experiments: warm-start artifact %d: %w", i, err)
		}
	}
	return nil
}
