// Quickstart: define a FLiT test case for your own numerical kernel, run it
// under the full compilation matrix, and root-cause any variability with
// Bisect — the paper's Figure 1 workflow end to end on a 30-line program.
//
// The quickstart also demonstrates the distributed workflow:
//
//	quickstart -shard 0/2 -shard-out s0.json   # machine 1
//	quickstart -shard 1/2 -shard-out s1.json   # machine 2
//	quickstart -merge s0.json,s1.json          # byte-identical to plain run
//
// ... and the incremental one: -warm-start seeds the cache from a prior
// artifact, -delta-out reports exactly which build/run results changed
// against that baseline, and -unroll simulates the config drift a
// long-lived campaign exists to monitor (the plain g++ -O3 matrix row
// becomes g++ -O3 -funroll-loops — value-safe, so exactly one cell's
// identity moves):
//
//	quickstart -shard 0/1 -shard-out base.json
//	quickstart -unroll -warm-start base.json -delta-out delta.json
//
// ... and the persistent one: -store DIR attaches an on-disk run store, so
// a second quickstart process pointed at the same DIR answers every
// covered evaluation from disk — no artifact plumbing at all:
//
//	quickstart -store ./cache    # computes, writes through
//	quickstart -store ./cache    # identical output, zero builds
//
// ... and the remote one: -remote URL points at a store served by
// `flit store serve`, so a second machine sharing only the URL gets the
// same zero-build warm run; -store DIR composes as a local cache tier in
// front of the server:
//
//	flit store serve -dir ./cache -addr 127.0.0.1:8400 &
//	quickstart -remote http://127.0.0.1:8400            # cross-machine warm
//
// The -shard/-merge flow above picks shard indices by hand. For the flit
// campaigns themselves, `flit coord serve` automates the hand: it leases
// shard indices to any number of `flit work -coord URL` workers under
// heartbeat-renewed leases (a crashed worker's shard is re-leased) and
// validates the merged artifact set server-side — see the "Campaign
// coordinator" section of the README.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strings"

	"repro/internal/comp"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/link"
	"repro/internal/prog"
	"repro/internal/store"
)

// Step 1: describe your "source tree". One file, two functions: a dot
// product kernel (hot: optimizers love it) and a driver.
func program() *prog.Program {
	p := prog.New("quickstart")
	p.AddFile("kernel.cpp",
		&prog.Symbol{Name: "DotKernel", Exported: true, Work: 4, FPOps: 4,
			Features: prog.Features{Reduction: true, MulAdd: true, Hot: true}},
		&prog.Symbol{Name: "Scale", Exported: true, Work: 1, FPOps: 1,
			Features: prog.Features{ShortExpr: true}},
	)
	p.AddFile("main.cpp",
		&prog.Symbol{Name: "main_quickstart", Exported: true, Work: 1, FPOps: 2,
			Callees: []string{"DotKernel", "Scale"}},
	)
	return p
}

// Step 2: write the FLiT test case — the paper's four-method protocol.
type myTest struct{ p *prog.Program }

func (t *myTest) Name() string               { return "Quickstart" }
func (t *myTest) Root() string               { return "main_quickstart" }
func (t *myTest) GetInputsPerRun() int       { return 1 }
func (t *myTest) GetDefaultInput() []float64 { return []float64{0.7} }

func (t *myTest) Run(input []float64, m *link.Machine) (flit.Result, error) {
	_, done := m.Fn("main_quickstart")
	defer done()
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Sin(input[0] + float64(i)*0.01)
	}
	envK, doneK := m.Fn("DotKernel")
	v := envK.Dot(xs, xs)
	doneK()
	envS, doneS := m.Fn("Scale")
	v = envS.Mul(v, 0.25)
	doneS()
	return flit.ScalarResult(v), nil
}

func (t *myTest) Compare(baseline, other flit.Result) float64 {
	return flit.L2Diff(baseline, other)
}

// opts carries the quickstart's CLI configuration.
type opts struct {
	shard     string // "i/N" shard of the matrix, artifact mode
	shardOut  string // artifact file a -shard run writes
	merge     string // comma-separated shard artifacts to merge and replay
	warmStart string // comma-separated artifacts that seed the cache
	deltaOut  string // DeltaReport file a warm-started run writes
	unroll    bool   // mutate the matrix (incremental-campaign demo)
	store     string // persistent run-store directory
	remote    string // remote run-store URL (flit store serve)
}

func main() {
	var o opts
	flag.StringVar(&o.shard, "shard", "", `run one shard "i/N" of the matrix and write an artifact`)
	flag.StringVar(&o.shardOut, "shard-out", "", "artifact file the -shard run writes")
	flag.StringVar(&o.merge, "merge", "", "comma-separated shard artifacts to merge and replay")
	flag.StringVar(&o.warmStart, "warm-start", "", "comma-separated artifacts whose results seed the cache")
	flag.StringVar(&o.deltaOut, "delta-out", "", "write the run's DeltaReport vs the -warm-start baseline to FILE")
	flag.BoolVar(&o.unroll, "unroll", false,
		"mutate the matrix: the plain g++ -O3 row becomes g++ -O3 -funroll-loops (incremental-campaign demo)")
	flag.StringVar(&o.store, "store", "",
		"persistent run-store directory: misses consult it before building, results are written through")
	flag.StringVar(&o.remote, "remote", "",
		"remote run-store URL (flit store serve); composes with -store as a local cache tier")
	flag.Parse()
	if err := cli(o, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// command is the canonical replay command recorded in artifacts, so a
// merge reproduces the run — mutation flag included — byte for byte.
func (o opts) command() []string {
	c := []string{"quickstart"}
	if o.unroll {
		c = append(c, "-unroll")
	}
	return c
}

// cli dispatches between a plain run, one shard of a distributed run, and
// the merge replay — the same record/replay protocol `flit merge` uses —
// with optional warm-start/delta tracking on the run paths.
func cli(o opts, w io.Writer) error {
	if o.merge != "" {
		if o.shard != "" || o.shardOut != "" || o.warmStart != "" || o.deltaOut != "" || o.unroll {
			return fmt.Errorf("-merge replays recorded artifacts and combines with no other flag")
		}
		cache := flit.NewCache()
		if err := attachStore(cache, o.store, o.remote); err != nil {
			return err
		}
		var arts []*flit.Artifact
		for _, path := range strings.Split(o.merge, ",") {
			a, err := flit.ReadArtifactFile(path)
			if err != nil {
				return err
			}
			arts = append(arts, a)
		}
		if err := flit.ValidateShardSet(arts); err != nil {
			return err
		}
		for _, a := range arts {
			if err := cache.Import(a); err != nil {
				return err
			}
		}
		// Replay the recorded command — including a recorded -unroll
		// mutation — with every matrix evaluation answered from the merged
		// cache: byte-identical to the unsharded run.
		unroll := false
		for _, arg := range arts[0].Command {
			if arg == "-unroll" {
				unroll = true
			}
		}
		return runWith(w, exec.Shard{}, cache, 0, unroll)
	}
	shard, err := exec.ParseShard(o.shard)
	if err != nil {
		return err
	}
	cache := flit.NewCache()
	if err := attachStore(cache, o.store, o.remote); err != nil {
		return err
	}
	var tracker *flit.DeltaTracker
	if o.warmStart != "" {
		tracker = flit.NewDeltaTracker(false)
		for _, path := range strings.Split(o.warmStart, ",") {
			a, err := flit.ReadArtifactFile(path)
			if err != nil {
				return err
			}
			if err := tracker.Seed(cache, a); err != nil {
				return err
			}
		}
	} else if o.deltaOut != "" {
		return fmt.Errorf("-delta-out requires -warm-start BASELINE")
	}
	// Any -shard request runs in artifact mode — including "0/1", the
	// degenerate single-shard set `flit merge` accepts as the N=1
	// partition.
	if o.shard != "" {
		if o.shardOut == "" {
			return fmt.Errorf("-shard requires -shard-out FILE")
		}
		if err := runWith(io.Discard, shard, cache, 0, o.unroll); err != nil {
			return err
		}
		art := cache.Export(shard, o.command())
		art.Stamp()
		if err := flit.WriteArtifactFile(art, o.shardOut); err != nil {
			return err
		}
		fmt.Fprintf(w, "shard %s: %d runs, %d costs -> %s\n",
			shard, len(art.Runs), len(art.Costs), o.shardOut)
		return emitDelta(tracker, cache, o, w)
	}
	if err := runWith(w, exec.Shard{}, cache, 0, o.unroll); err != nil {
		return err
	}
	return emitDelta(tracker, cache, o, w)
}

// attachStore builds the cache's persistent tier from -store and -remote:
// the local Disk store (created if absent, rejected if fenced to a
// different engine version) in front of the Remote client when both are
// given, or either alone. A no-op with neither.
func attachStore(cache *flit.Cache, dir, remote string) error {
	var tiers []store.Store
	if dir != "" {
		d, err := store.Open(dir, flit.EngineVersion)
		if err != nil {
			return err
		}
		tiers = append(tiers, d)
	}
	if remote != "" {
		r, err := store.NewRemote(remote, flit.EngineVersion, nil)
		if err != nil {
			return err
		}
		tiers = append(tiers, r)
	}
	if s := store.Tier(tiers...); s != nil {
		cache.SetStore(s)
	}
	return nil
}

// emitDelta prints the warm-started run's delta summary and writes the
// structured report when asked; without a baseline it is a no-op.
func emitDelta(tracker *flit.DeltaTracker, cache *flit.Cache, o opts, w io.Writer) error {
	if tracker == nil {
		return nil
	}
	rep := tracker.Report(cache, o.command())
	fmt.Fprintln(w, rep.Summary())
	if o.deltaOut == "" {
		return nil
	}
	return flit.WriteDeltaReportFile(rep, o.deltaOut)
}

func run(w io.Writer) error {
	return runWith(w, exec.Shard{}, flit.NewCache(), 0, false)
}

func runWith(w io.Writer, shard exec.Shard, cache *flit.Cache, workers int, unroll bool) error {
	p := program()
	matrix := comp.Matrix()
	if unroll {
		// The campaign's config drift: a value-safe switch lands on the
		// plain g++ -O3 row, so exactly one cell changes identity while
		// every result stays bitwise what it was.
		for i, c := range matrix {
			if c.Compiler == comp.GCC && c.OptLevel == "-O3" && c.Switches == "" {
				matrix[i].Switches = "-funroll-loops"
			}
		}
	}
	// Step 3: pick the execution substrate — a worker pool fanning out the
	// matrix cells, a cache memoizing repeated build/run pairs, and
	// (optionally) this process's shard of a distributed run. Results are
	// bit-identical at any worker count, and bisect searches launched
	// through the workflow inherit pool and cache.
	wf := &core.Workflow{
		Suite: &flit.Suite{
			Prog:      p,
			Tests:     []flit.TestCase{&myTest{p: p}},
			Baseline:  comp.Baseline(),      // trusted: g++ -O0
			Reference: comp.PerfReference(), // speedups vs g++ -O2
			Pool:      exec.New(workers),
			Cache:     cache,
			Shard:     shard,
		},
		Matrix: matrix, // all 244 compilations of the study
	}

	// Level 1 + 2: which compilations deviate, and what does speed cost?
	analysis, err := wf.Analyze()
	if err != nil {
		return err
	}
	rec := analysis.Recommendations()[0]
	fmt.Fprintf(w, "fastest bitwise-reproducible: %-40s speedup %.3f\n",
		rec.FastestEqual.Comp, rec.FastestEqualSpeedup)
	fmt.Fprintf(w, "fastest overall:              %-40s speedup %.3f (reproducible: %v)\n",
		rec.FastestAny.Comp, rec.FastestAnySpeedup, rec.FastestIsReproducible)

	variable := analysis.Results.VariableRuns()
	fmt.Fprintf(w, "variability-inducing compilations: %d of %d\n",
		len(variable), len(wf.Matrix))
	if len(variable) == 0 {
		return nil
	}

	// Level 3: root-cause one of them down to the function.
	target := variable[len(variable)-1].Comp
	fmt.Fprintf(w, "\nbisecting %s ...\n", target)
	report, err := wf.Bisect(wf.Suite.Tests[0], target, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d program executions\n", report.Execs)
	for _, ff := range report.Files {
		fmt.Fprintf(w, "  file %-14s (magnitude %.3g, symbol search: %s)\n",
			ff.File, ff.Value, ff.Status)
		for _, sf := range ff.Symbols {
			fmt.Fprintf(w, "    -> %s (%.3g)\n", sf.Item, sf.Value)
		}
	}
	return nil
}
