package link

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comp"
	"repro/internal/fp"
	"repro/internal/prog"
)

// TestPlanKeyMatchesExecutableKey: for every plan shape the drivers build —
// full builds, file mixes, symbol mixes, the -fPIC probe, explicit and
// defaulted drivers, injections — Plan.Key must be the exact string the
// linked Executable's Key is. This equality is what lets the key-first
// cache answer a plan lookup from entries (and artifacts) recorded under
// executable keys.
func TestPlanKeyMatchesExecutableKey(t *testing.T) {
	p := testProgram()
	icpc := comp.Compilation{Compiler: comp.ICPC, OptLevel: "-O2", Switches: "-fp-model fast=2"}
	injected := baseC.WithInjection("Dot", fp.Injection{OpIndex: 2, Op: fp.InjMul, Eps: 0.375})
	plans := []Plan{
		FullBuildPlan(p, varC),
		FullBuildPlan(p, icpc),
		FullBuildPlan(p, injected),
		FileMixPlan(p, baseC, varC, []string{"math.cpp"}),
		FileMixPlan(p, baseC, icpc, p.FileNames()),
		SymbolMixPlan(p, baseC, varC, []string{"Dot", "Main"}),
		FPICProbePlan(p, baseC, varC, "driver.cpp"),
		{Prog: p, Baseline: baseC},                        // defaulted driver
		{Prog: p, Baseline: baseC, Driver: comp.ICPC},     // explicit driver
		{Prog: p, Baseline: varC, Driver: varC.Compiler},  // explicit == default
		{Prog: p, Baseline: injected, Driver: comp.Clang}, // injected baseline
	}
	seen := map[string]int{}
	for i, plan := range plans {
		ex, err := Link(plan)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if plan.Key() != ex.Key() {
			t.Errorf("plan %d: Plan.Key %q != Executable.Key %q", i, plan.Key(), ex.Key())
		}
		if j, dup := seen[plan.Key()]; dup && !samePlanShape(plans[j], plan) {
			t.Errorf("distinct plans %d and %d share key %q", j, i, plan.Key())
		}
		seen[plan.Key()] = i
	}
	// The defaulted and the explicitly spelled-out driver are the same plan.
	def := Plan{Prog: p, Baseline: varC}
	exp := Plan{Prog: p, Baseline: varC, Driver: varC.Compiler}
	if def.Key() != exp.Key() {
		t.Errorf("defaulted driver key %q != explicit driver key %q", def.Key(), exp.Key())
	}
}

// samePlanShape reports whether two plans describe the same build (used
// only to allow intentional duplicates in the table above).
func samePlanShape(a, b Plan) bool { return a.Key() == b.Key() }

// TestPlanKeyDistinguishesOverrides: moving an override between the file
// and the symbol level, or renaming its target, always changes the key.
func TestPlanKeyDistinguishesOverrides(t *testing.T) {
	p := testProgram()
	keys := map[string]string{}
	for name, plan := range map[string]Plan{
		"full-var":    FullBuildPlan(p, varC),
		"full-base":   FullBuildPlan(p, baseC),
		"file-math":   FileMixPlan(p, baseC, varC, []string{"math.cpp"}),
		"file-driver": FileMixPlan(p, baseC, varC, []string{"driver.cpp"}),
		"sym-dot":     SymbolMixPlan(p, baseC, varC, []string{"Dot"}),
		"sym-scale":   SymbolMixPlan(p, baseC, varC, []string{"Scale"}),
		"fpic-math":   FPICProbePlan(p, baseC, varC, "math.cpp"),
	} {
		k := plan.Key()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s share key %q", prev, name, k)
			}
		}
		keys[name] = k
	}
}

// TestBuilderLazy: a builder's Key never links; Build links exactly once,
// even under concurrent callers; the accounting tokens are claimed once.
func TestBuilderLazy(t *testing.T) {
	b := NewBuilder(FullBuildPlan(testProgram(), varC))
	if b.Key() == "" || b.Built() {
		t.Fatalf("Key() built the plan (built=%v)", b.Built())
	}
	if !b.MarkSkipCounted() {
		t.Error("first skip token not granted on an unbuilt builder")
	}
	if b.MarkSkipCounted() {
		t.Error("skip token granted twice")
	}
	var wg sync.WaitGroup
	exs := make([]*Executable, 8)
	for i := range exs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			exs[i], _ = b.Build()
		}(i)
	}
	wg.Wait()
	if !b.Built() {
		t.Fatal("Build did not mark the builder built")
	}
	for i := 1; i < len(exs); i++ {
		if exs[i] != exs[0] {
			t.Fatal("concurrent Build materialized more than one Executable")
		}
	}
	if exs[0].Key() != b.Key() {
		t.Errorf("built key %q != plan key %q", exs[0].Key(), b.Key())
	}
	if !b.MarkBuildCounted() || b.MarkBuildCounted() {
		t.Error("build token must be granted exactly once")
	}
	if b.MarkSkipCounted() {
		t.Error("skip token granted after the plan was built")
	}
	if b.Plan().Prog == nil {
		t.Error("Plan accessor lost the program")
	}
}

// TestBuilderMemoizesLinkError: an unbuildable plan fails identically on
// every Build call — the deterministic-toolchain contract the memoizing
// cache relies on.
func TestBuilderMemoizesLinkError(t *testing.T) {
	p := testProgram()
	b := NewBuilder(Plan{Prog: p, Baseline: baseC,
		FileComp: map[string]comp.Compilation{"nosuch.cpp": varC}})
	_, err1 := b.Build()
	_, err2 := b.Build()
	if err1 == nil || err1 != err2 {
		t.Fatalf("link error not memoized: %v vs %v", err1, err2)
	}
	if !b.Built() {
		t.Error("a failed build still counts as materialized")
	}
}

// TestAbiHazardFileMix: the deterministic file-mix hazard fires only for
// Intel/GNU cross-vendor mixes, and linking the hazardous pair crashes at
// run time, not at link time (paper §3.3).
func TestAbiHazardFileMix(t *testing.T) {
	p := testProgram()
	var hazardous, clean *Executable
	for _, c := range comp.Matrix() {
		if c.Compiler != comp.ICPC {
			continue
		}
		ex, err := FileMixBuild(p, baseC, c, []string{"math.cpp"})
		if err != nil {
			t.Fatal(err)
		}
		if ex.Crashes() && hazardous == nil {
			hazardous = ex
		}
		if !ex.Crashes() && clean == nil {
			clean = ex
		}
	}
	if hazardous == nil || clean == nil {
		t.Skip("matrix produced no hazardous/clean icpc pair for this program")
	}
	if !hazardous.Crashes() {
		t.Error("hazardous mix reported clean")
	}
	// Same-vendor mixes never trip the file hazard, whatever the flags.
	for _, c := range comp.Matrix() {
		if c.Compiler != comp.GCC && c.Compiler != comp.Clang {
			continue
		}
		ex, err := FileMixBuild(p, baseC, c, p.FileNames())
		if err != nil {
			t.Fatal(err)
		}
		if ex.Crashes() {
			t.Fatalf("GNU-compatible mix crashed for %s", c)
		}
	}
}

// TestAbiHazardSymbolMixDedupsFiles: the symbol-mix hazard is a property
// of the (compilation, file) pair, so overriding one symbol of a file and
// overriding several must agree on whether the executable crashes.
func TestAbiHazardSymbolMixDedupsFiles(t *testing.T) {
	p := testProgram()
	for _, c := range comp.Matrix() {
		if c.Compiler != comp.GCC {
			continue
		}
		one, err := SymbolMixBuild(p, baseC, c, []string{"Dot"})
		if err != nil {
			t.Fatal(err)
		}
		two, err := SymbolMixBuild(p, baseC, c, []string{"Dot", "Scale"})
		if err != nil {
			t.Fatal(err)
		}
		if one.Crashes() != two.Crashes() {
			t.Fatalf("%s: one-symbol crash=%v, two-symbol crash=%v (same file)",
				c, one.Crashes(), two.Crashes())
		}
	}
}

// TestFileHasSymbolOverrides: only the file that actually holds an
// overridden symbol is linked as two -fPIC copies; exported symbols in
// other files keep their plain file-level compilation.
func TestFileHasSymbolOverrides(t *testing.T) {
	p := testProgram()
	ex, err := SymbolMixBuild(p, baseC, varC, []string{"Dot"})
	if err != nil {
		t.Fatal(err)
	}
	if !ex.fileHasSymbolOverrides("math.cpp") {
		t.Error("math.cpp holds the Dot override but reports none")
	}
	if ex.fileHasSymbolOverrides("driver.cpp") {
		t.Error("driver.cpp reports overrides it does not hold")
	}
	// Exported, non-overridden symbol of the overridden file: the -fPIC
	// baseline copy. Exported symbol of the untouched file: plain baseline.
	if got := ex.exportedCompilation(p.MustSymbol("Scale")); got != baseC.WithFPIC() {
		t.Errorf("Scale bound to %s, want baseline -fPIC", got)
	}
	if got := ex.exportedCompilation(p.MustSymbol("Main")); got != baseC {
		t.Errorf("Main bound to %s, want plain baseline", got)
	}
}

// TestCostMultiRoot: Cost over several roots charges the union of their
// call-graph closures — disjoint closures sum exactly, overlapping ones
// never double-charge, and no roots cost nothing.
func TestCostMultiRoot(t *testing.T) {
	p := testProgram()
	ex, err := FullBuild(p, varC)
	if err != nil {
		t.Fatal(err)
	}
	dot, scale := ex.Cost("Dot"), ex.Cost("Scale")
	both := ex.Cost("Dot", "Scale")
	if both != dot+scale {
		t.Errorf("disjoint closures: Cost(Dot,Scale)=%g, want %g+%g", both, dot, scale)
	}
	// Main's closure already contains Dot and Scale: adding them as extra
	// roots must not double-charge a single symbol.
	main := ex.Cost("Main")
	if got := ex.Cost("Main", "Dot", "Scale"); got != main {
		t.Errorf("overlapping closures double-charged: %g != %g", got, main)
	}
	if main <= both {
		t.Errorf("Main closure (%g) should cost more than its sub-closures (%g)", main, both)
	}
	if got := ex.Cost(); got != 0 {
		t.Errorf("Cost() with no roots = %g, want 0", got)
	}
	if got := ex.Cost("nosuch"); got != 0 {
		t.Errorf("Cost of unknown root = %g, want 0", got)
	}
}

// TestPlanKeyHostileNames: names containing the key format's structural
// characters stay injective through the escaping.
func TestPlanKeyHostileNames(t *testing.T) {
	mk := func(progName, file, sym string) Plan {
		p := prog.New(progName)
		p.AddFile(file, &prog.Symbol{Name: sym, Exported: true, Work: 1})
		return FullBuildPlan(p, baseC)
	}
	a := mk("p|base=x", "f.cpp", "S")
	b := mk("p", "base=x|f.cpp", "S")
	if a.Key() == b.Key() {
		t.Fatalf("hostile program/file names collided on %q", a.Key())
	}
	c := mk("p", "f=1.cpp", "S")
	d := mk("p", "f%3D1.cpp", "S")
	if c.Key() == d.Key() {
		t.Fatalf("escape-of-escape collided on %q", c.Key())
	}
	if fmt.Sprintf("%q", a.Key()) == "" {
		t.Fatal("unreachable")
	}
}
