package flit

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/store"
	"repro/internal/store/storetest"
)

// remoteOpts keeps the hostile-transport tests fast: millisecond
// backoffs, an attempt timeout shorter than the harness's stall, and a
// bounded deadline.
func remoteOpts() *store.RemoteOptions {
	return &store.RemoteOptions{
		Attempts:       4,
		BaseDelay:      time.Millisecond,
		MaxDelay:       4 * time.Millisecond,
		AttemptTimeout: 60 * time.Millisecond,
		Deadline:       5 * time.Second,
	}
}

// TestRemoteCrossMachineMatrixBuildsNothing is the remote tentpole's
// acceptance pin, the cross-machine form of
// TestStoreCrossProcessMatrixBuildsNothing: a "machine" holding the Disk
// store serves it over HTTP, a second process configured with ONLY the
// URL — no -warm-start manifest, no local -store directory — reproduces
// the full matrix byte-identically with zero materialized builds, at
// j∈{1,8} under -race.
func TestRemoteCrossMachineMatrixBuildsNothing(t *testing.T) {
	matrix := comp.Matrix()

	// "Machine 1": a Disk store behind `flit store serve`'s handler.
	disk, err := store.Open(t.TempDir(), EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler(disk))
	defer srv.Close()

	newClient := func() *store.Remote {
		r, err := store.NewRemote(srv.URL, EngineVersion, remoteOpts())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Cold run, remote tier only: computes everything, writes through the
	// wire into the served store.
	cold := newSuite()
	cold.Cache = NewCache()
	cold.Cache.SetStore(newClient())
	coldRes, err := cold.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(coldRes)
	if m := cold.Cache.Metrics(); m.Builds == 0 || m.Store.Puts == 0 {
		t.Fatalf("cold run metrics %+v — nothing computed or persisted remotely", m)
	}

	for _, j := range []int{1, 8} {
		warm := newSuite()
		warm.Cache = NewCache()
		remote := newClient()
		warm.Cache.SetStore(remote)
		if j > 1 {
			warm.Pool = exec.New(j)
		}
		warmRes, err := warm.RunMatrix(matrix)
		if err != nil {
			t.Fatal(err)
		}
		if got := matrixFingerprint(warmRes); got != want {
			t.Errorf("j=%d: remote-warmed matrix differs from the cold run", j)
		}
		m := warm.Cache.Metrics()
		if m.Builds != 0 {
			t.Errorf("j=%d: remote-covered matrix materialized %d executables, want 0", j, m.Builds)
		}
		if m.Store.Hits == 0 || m.Store.Misses != 0 {
			t.Errorf("j=%d: store metrics %+v on a fully covered matrix", j, m.Store)
		}
		if rm := remote.Metrics(); rm.Hits == 0 || rm.Errors != 0 {
			t.Errorf("j=%d: remote transport metrics %+v", j, rm)
		}
	}
}

// TestRemoteTieredLocalCache: -store DIR composing with -remote URL. The
// tiered run fills the local Disk cache from remote hits (read-through),
// so a third run finds everything locally; and a fresh computation lands
// in both tiers (write-through).
func TestRemoteTieredLocalCache(t *testing.T) {
	matrix := comp.Matrix()

	shared, err := store.Open(t.TempDir(), EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(store.Handler(shared))
	defer srv.Close()

	// Seed the shared server from a plain remote-only run.
	seed := newSuite()
	seed.Cache = NewCache()
	r0, err := store.NewRemote(srv.URL, EngineVersion, remoteOpts())
	if err != nil {
		t.Fatal(err)
	}
	seed.Cache.SetStore(r0)
	seedRes, err := seed.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(seedRes)

	// Tiered run: fresh local dir in front of the shared server. Every hit
	// comes over the wire and is filled into the local tier.
	localDir := t.TempDir()
	openLocal := func() *store.Disk {
		d, err := store.Open(localDir, EngineVersion)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	tiered := newSuite()
	tiered.Cache = NewCache()
	r1, err := store.NewRemote(srv.URL, EngineVersion, remoteOpts())
	if err != nil {
		t.Fatal(err)
	}
	tiered.Cache.SetStore(store.Tier(openLocal(), r1))
	tieredRes, err := tiered.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if got := matrixFingerprint(tieredRes); got != want {
		t.Error("tiered matrix differs from the seeded run")
	}
	if m := tiered.Cache.Metrics(); m.Builds != 0 {
		t.Errorf("tiered run materialized %d executables, want 0", m.Builds)
	}
	if rm := r1.Metrics(); rm.Hits == 0 {
		t.Errorf("tiered run never reached the remote: %+v", rm)
	}

	// Third run: local tier only — the read-through fill must have made
	// the shared server unnecessary.
	local := newSuite()
	local.Cache = NewCache()
	local.Cache.SetStore(openLocal())
	localRes, err := local.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if got := matrixFingerprint(localRes); got != want {
		t.Error("local-only matrix differs after read-through fill")
	}
	m := local.Cache.Metrics()
	if m.Builds != 0 || m.Store.Hits == 0 || m.Store.Misses != 0 {
		t.Errorf("local-only run after fill: %+v", m)
	}
}

// TestRemoteFaultsRecomputeAndSelfHeal drives the matrix through a flaky
// transport: scripted 503s, stalls, truncations, corruptions, and
// wrong-engine fences are injected into the warm run's lookups. Every
// fault must degrade to a recompute — output byte-identical to the clean
// run at j∈{1,8} under -race, run never failed — and the write-through
// must self-heal, so a final clean run is fully covered again.
func TestRemoteFaultsRecomputeAndSelfHeal(t *testing.T) {
	matrix := comp.Matrix()

	disk, err := store.Open(t.TempDir(), EngineVersion)
	if err != nil {
		t.Fatal(err)
	}
	flaky := storetest.NewFlaky(store.Handler(disk))
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	newClient := func() *store.Remote {
		r, err := store.NewRemote(srv.URL, EngineVersion, remoteOpts())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cold := newSuite()
	cold.Cache = NewCache()
	cold.Cache.SetStore(newClient())
	coldRes, err := cold.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(coldRes)

	script := []storetest.Fault{
		storetest.Err503, storetest.Err503, storetest.Stall,
		storetest.Truncate, storetest.Corrupt, storetest.WrongEngine,
		storetest.Corrupt, storetest.Err503, storetest.Truncate,
	}
	for _, j := range []int{1, 8} {
		flaky.Push(script...)
		warm := newSuite()
		warm.Cache = NewCache()
		remote := newClient()
		warm.Cache.SetStore(remote)
		if j > 1 {
			warm.Pool = exec.New(j)
		}
		warmRes, err := warm.RunMatrix(matrix)
		if err != nil {
			t.Fatalf("j=%d: a faulted run failed instead of recomputing: %v", j, err)
		}
		if got := matrixFingerprint(warmRes); got != want {
			t.Errorf("j=%d: faulted run differs from the clean run", j)
		}
		if flaky.Pending() > 0 {
			t.Fatalf("j=%d: matrix finished with %d scripted faults unserved — script too long for the workload", j, flaky.Pending())
		}
		if rm := remote.Metrics(); rm.Errors == 0 {
			t.Errorf("j=%d: no degraded lookups recorded against a faulty transport: %+v", j, rm)
		}
	}

	// Self-heal: the recomputed entries were written through, so a clean
	// client is fully covered — zero builds, zero store misses.
	clean := newSuite()
	clean.Cache = NewCache()
	clean.Cache.SetStore(newClient())
	cleanRes, err := clean.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if got := matrixFingerprint(cleanRes); got != want {
		t.Error("post-heal matrix differs")
	}
	if m := clean.Cache.Metrics(); m.Builds != 0 || m.Store.Misses != 0 {
		t.Errorf("faults did not self-heal: %+v", m)
	}
}
