package comp

// Binary-compatibility hazards. The paper found that "when icpc and g++
// object files were linked together, the resulting executable would
// sometimes fail with a segmentation fault" (§3.3), driving the ~20% File
// Bisect failure rate for icpc, and that some symbol-level "Frankenbinaries"
// crash for every compiler (Table 2: g++ 51/78, icpc 585/778, clang 24/24
// Symbol Bisect successes). The hazards below are deterministic functions
// of the compilation and the file, so a given bisect run either always
// works or always crashes — matching how a real incompatibility behaves.

// FileMixHazard reports whether an executable that mixes object file `file`
// compiled by `variable` with the remaining files compiled by `baseline`
// crashes at startup. Only cross-vendor mixes are hazardous.
func FileMixHazard(variable, baseline Compilation, file string) bool {
	if !crossVendor(variable.Compiler, baseline.Compiler) {
		return false
	}
	// Only the Intel/GNU combination exhibited the segfaults in the study
	// (§3.3); the IBM compiler interoperated with g++ objects in the
	// Laghos searches.
	if variable.Compiler != ICPC && baseline.Compiler != ICPC {
		return false
	}
	// ~1.5% of (compilation, file) pairs are poisoned; with tens of files
	// per program, roughly a fifth of icpc bisect runs hit at least one.
	return hash64(variable.Compiler+"|"+variable.OptLevel+"|"+variable.Switches,
		baseline.Compiler, file, "abi-file")%64 == 0
}

// SymbolMixHazard reports whether the strong/weak symbol-override executable
// for the given file crashes. Symbol mixing is riskier than file mixing
// (two copies of the same translation unit coexist), so it can fail even
// within one vendor. Rates per compiler are personality parameters tuned to
// the paper's Table 2.
func SymbolMixHazard(variable Compilation, file string) bool {
	var pct int
	switch variable.Compiler {
	case GCC:
		pct = 30
	case Clang:
		pct = 0
	case ICPC:
		pct = 22
	case XLC:
		pct = 0 // the Laghos symbol searches all linked and ran (§3.4)
	default:
		pct = 10
	}
	return gate(pct,
		variable.Compiler+"|"+variable.OptLevel+"|"+variable.Switches,
		file, "abi-symbol")
}

// crossVendor reports whether two compilers come from different vendors
// with distinct C++ runtime implementations.
func crossVendor(a, b string) bool {
	if a == b {
		return false
	}
	vendor := func(c string) string {
		switch c {
		case GCC, Clang:
			return "gnu-compatible"
		case ICPC:
			return "intel"
		case XLC:
			return "ibm"
		default:
			return c
		}
	}
	return vendor(a) != vendor(b)
}
