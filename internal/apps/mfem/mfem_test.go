package mfem

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/flit"
	"repro/internal/link"
)

// baseMachine returns a machine for the g++ -O0 trusted build.
func baseMachine(t *testing.T) *link.Machine {
	t.Helper()
	ex, err := link.FullBuild(Program(), comp.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	m, err := ex.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProgramValid(t *testing.T) {
	p := Program()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p != Program() {
		t.Fatal("Program() is not a singleton")
	}
	st := p.Stats()
	if st.SourceFiles < 25 {
		t.Fatalf("only %d source files", st.SourceFiles)
	}
	if st.TotalFunctions < 60 {
		t.Fatalf("only %d functions", st.TotalFunctions)
	}
	// Every callee reference must resolve (no typos in the registry).
	for _, s := range p.Symbols() {
		for _, c := range s.Callees {
			if p.Symbol(c) == nil {
				t.Errorf("symbol %s lists unknown callee %s", s.Name, c)
			}
		}
	}
}

func TestExampleCalleesReachable(t *testing.T) {
	p := Program()
	for i := 1; i <= 19; i++ {
		r := p.Reachable(exampleSymbol(i))
		if len(r) < 2 && i != 12 && i != 18 {
			t.Errorf("example %d reaches only %d symbols", i, len(r))
		}
	}
}

func TestVectorKernels(t *testing.T) {
	m := baseMachine(t)
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if got := Dot(m, x, y); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	if got := Norml2(m, []float64{3, 4}); got != 5 {
		t.Fatalf("Norml2 = %g", got)
	}
	if got := Sum(m, x); got != 6 {
		t.Fatalf("Sum = %g", got)
	}
	dst := make([]float64, 3)
	Add(m, dst, x, y)
	if dst[2] != 9 {
		t.Fatalf("Add wrong: %v", dst)
	}
	Subtract(m, dst, y, x)
	if dst[0] != 3 {
		t.Fatalf("Subtract wrong: %v", dst)
	}
	Scale(m, 2, dst)
	if dst[0] != 6 {
		t.Fatalf("Scale wrong: %v", dst)
	}
	z := []float64{1, 1, 1}
	Axpy(m, 2, x, z)
	if z[2] != 7 {
		t.Fatalf("Axpy wrong: %v", z)
	}
	v := []float64{3, 4}
	n := Normalize(m, v)
	if n != 5 || math.Abs(v[0]-0.6) > 1e-15 {
		t.Fatalf("Normalize: n=%g v=%v", n, v)
	}
	zero := []float64{0, 0}
	if Normalize(m, zero) != 0 {
		t.Fatal("Normalize(0) should return 0")
	}
	if got := DistanceTo(m, x, y); math.Abs(got-math.Sqrt(27)) > 1e-14 {
		t.Fatalf("DistanceTo = %g", got)
	}
	if got := Max(m, []float64{2, 9, 4}); got != 9 {
		t.Fatalf("Max = %g", got)
	}
	if got := Max(m, nil); got != 0 {
		t.Fatalf("Max(nil) = %g", got)
	}
	if m.Depth() != 0 {
		t.Fatalf("machine stack leaked: depth %d", m.Depth())
	}
}

func TestDenseKernels(t *testing.T) {
	m := baseMachine(t)
	d := NewDense(2, 2)
	d.Set(0, 0, 1)
	d.Set(0, 1, 2)
	d.Set(1, 0, 3)
	d.Set(1, 1, 4)
	y := make([]float64, 2)
	DenseMult(m, d, []float64{1, 1}, y)
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("DenseMult = %v", y)
	}
	DenseMultTranspose(m, d, []float64{1, 1}, y)
	if y[0] != 4 || y[1] != 6 {
		t.Fatalf("DenseMultTranspose = %v", y)
	}
	if got := Det2(m, d); got != -2 {
		t.Fatalf("Det2 = %g", got)
	}
	if got := Trace(m, d); got != 5 {
		t.Fatalf("Trace = %g", got)
	}
	if got := FNorm(m, d); math.Abs(got-math.Sqrt(30)) > 1e-14 {
		t.Fatalf("FNorm = %g", got)
	}
	// M += a·A·Aᵀ with A = d: A·Aᵀ = [[5,11],[11,25]].
	mm := NewDense(2, 2)
	AddMultAAt(m, 2, d, mm)
	if mm.At(0, 0) != 10 || mm.At(0, 1) != 22 || mm.At(1, 1) != 50 {
		t.Fatalf("AddMultAAt = %+v", mm.A)
	}
	inv := NewDense(2, 2)
	inv.Set(0, 0, 4)
	inv.Set(0, 1, 7)
	inv.Set(1, 0, 2)
	inv.Set(1, 1, 6)
	det := Invert2x2(m, inv)
	if det != 10 {
		t.Fatalf("Invert2x2 det = %g", det)
	}
	if math.Abs(inv.At(0, 0)-0.6) > 1e-15 || math.Abs(inv.At(0, 1)+0.7) > 1e-15 {
		t.Fatalf("Invert2x2 wrong: %+v", inv.A)
	}
	l := NewDense(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 4)
	b := []float64{4, 10}
	LSolve(m, l, b)
	if b[0] != 2 || b[1] != 2 {
		t.Fatalf("LSolve = %v", b)
	}
}

func TestSparseKernels(t *testing.T) {
	m := baseMachine(t)
	// [[2,-1,0],[-1,2,-1],[0,-1,2]]
	a := &CSR{N: 3,
		RowPtr: []int{0, 2, 5, 7},
		Col:    []int{0, 1, 0, 1, 2, 1, 2},
		Val:    []float64{2, -1, -1, 2, -1, -1, 2},
	}
	y := make([]float64, 3)
	SpMult(m, a, []float64{1, 2, 3}, y)
	if y[0] != 0 || y[1] != 0 || y[2] != 4 {
		t.Fatalf("SpMult = %v", y)
	}
	SpAddMult(m, 2, a, []float64{1, 2, 3}, y)
	if y[2] != 12 {
		t.Fatalf("SpAddMult = %v", y)
	}
	d := make([]float64, 3)
	SpGetDiag(m, a, d)
	if d[0] != 2 || d[1] != 2 || d[2] != 2 {
		t.Fatalf("SpGetDiag = %v", d)
	}
	if got := SpInnerProduct(m, a, []float64{1, 0, 0}, []float64{1, 0, 0}); got != 2 {
		t.Fatalf("SpInnerProduct = %g", got)
	}
	// Jacobi and Gauss-Seidel reduce the residual of A x = b.
	b := []float64{1, 1, 1}
	x := make([]float64, 3)
	for i := 0; i < 120; i++ {
		JacobiSmooth(m, a, b, x, 0.8)
	}
	r := make([]float64, 3)
	SpMult(m, a, x, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-9 {
			t.Fatalf("Jacobi did not converge: r=%v", r)
		}
	}
	x2 := make([]float64, 3)
	for i := 0; i < 40; i++ {
		GaussSeidel(m, a, b, x2)
	}
	SpMult(m, a, x2, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-9 {
			t.Fatalf("Gauss-Seidel did not converge: r=%v", r)
		}
	}
}

func TestMeshAndTransforms(t *testing.T) {
	m := baseMachine(t)
	mesh := MakeCartesian1D(m, 4, 2)
	if len(mesh.X) != 5 || mesh.X[0] != 0 || mesh.X[4] != 2 {
		t.Fatalf("mesh nodes: %v", mesh.X)
	}
	if got := ElementSize1D(m, mesh, 1); got != 0.5 {
		t.Fatalf("ElementSize1D = %g", got)
	}
	if got := IsoMap1D(m, mesh, 0, 0.5); got != 0.25 {
		t.Fatalf("IsoMap1D = %g", got)
	}
	if got := IsoWeight1D(m, mesh, 0); got != 0.5 {
		t.Fatalf("IsoWeight1D = %g", got)
	}
	m2 := MakeCartesian2D(m, 2, 2, 1, 1)
	if m2.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d", m2.NumNodes())
	}
	nd := m2.ElemNodes(1, 1)
	if nd != [4]int{4, 5, 8, 7} {
		t.Fatalf("ElemNodes = %v", nd)
	}
	px, py := IsoMap2D(m, m2, 0, 0, 0.5, 0.5)
	if math.Abs(px-0.25) > 1e-15 || math.Abs(py-0.25) > 1e-15 {
		t.Fatalf("IsoMap2D = (%g,%g)", px, py)
	}
	if got := IsoWeight2D(m, m2, 0, 0); math.Abs(got-0.25) > 1e-15 {
		t.Fatalf("IsoWeight2D = %g", got)
	}
	before := append([]float64(nil), mesh.X...)
	PerturbNodes1D(m, mesh, 0.1)
	if mesh.X[0] != before[0] || mesh.X[4] != before[4] {
		t.Fatal("PerturbNodes moved boundary nodes")
	}
	// Node 1 sits at x=0.5 where the x(1-x) bump is nonzero (node 2 is at
	// x=1.0, a root of the bump on this [0,2] mesh).
	if mesh.X[1] == before[1] {
		t.Fatal("PerturbNodes did not move interior nodes")
	}
}

func TestShapesPartitionOfUnity(t *testing.T) {
	m := baseMachine(t)
	for _, x := range []float64{0, 0.25, 0.5, 1} {
		n0, n1 := Shape1D(m, x)
		if math.Abs(n0+n1-1) > 1e-15 {
			t.Fatalf("1D shapes at %g sum to %g", x, n0+n1)
		}
		for _, y := range []float64{0, 0.3, 1} {
			sh := Shape2D(m, x, y)
			s := sh[0] + sh[1] + sh[2] + sh[3]
			if math.Abs(s-1) > 1e-15 {
				t.Fatalf("2D shapes at (%g,%g) sum to %g", x, y, s)
			}
		}
	}
	// Gradients sum to zero (partition of unity differentiated).
	ds := DShape2D(m, 0.3, 0.7)
	var gx, gy float64
	for k := 0; k < 4; k++ {
		gx += ds[k][0]
		gy += ds[k][1]
	}
	if math.Abs(gx) > 1e-15 || math.Abs(gy) > 1e-15 {
		t.Fatalf("gradient sums: %g %g", gx, gy)
	}
}

func TestQuadratureExactness(t *testing.T) {
	m := baseMachine(t)
	// Gauss2 integrates cubics exactly on [0,1]: ∫x³ = 1/4.
	pts, wts := Gauss2(m)
	var s float64
	for q := range pts {
		s += wts[q] * pts[q] * pts[q] * pts[q]
	}
	if math.Abs(s-0.25) > 1e-14 {
		t.Fatalf("Gauss2 ∫x³ = %g", s)
	}
	// Gauss3 integrates x⁵ exactly: 1/6.
	p3, w3 := Gauss3(m)
	s = 0
	for q := range p3 {
		s += w3[q] * math.Pow(p3[q], 5)
	}
	if math.Abs(s-1.0/6) > 1e-14 {
		t.Fatalf("Gauss3 ∫x⁵ = %g", s)
	}
}

func TestMassMatrixRowSums(t *testing.T) {
	// Row sums of the 1-D mass matrix with c=1 integrate the hats:
	// total sum equals the domain length.
	m := baseMachine(t)
	mesh := MakeCartesian1D(m, 8, 1)
	mass := AssembleMass1D(m, mesh, One1D)
	var total float64
	for _, v := range mass.Val {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("mass entries sum to %g, want 1", total)
	}
}

func TestPoisson1DAgainstExact(t *testing.T) {
	// -u'' = 1, u(0)=u(1)=0 has u(x) = x(1-x)/2; nodal FE values are exact
	// for piecewise-linear elements on this problem.
	m := baseMachine(t)
	mesh := MakeCartesian1D(m, 16, 1)
	k := AssembleDiffusion1D(m, mesh, One1D)
	b := AssembleRHS1D(m, mesh, One1D)
	u := make([]float64, mesh.N+1)
	it := CGSolve(m, k, b, u, 1e-12, 200)
	if it == 0 {
		t.Fatal("CG did no iterations")
	}
	for i, x := range mesh.X {
		exact := x * (1 - x) / 2
		if math.Abs(u[i]-exact) > 1e-9 {
			t.Fatalf("u(%g) = %g, want %g", x, u[i], exact)
		}
	}
}

func TestPoisson2DSymmetryAndConvergence(t *testing.T) {
	m := baseMachine(t)
	mesh := MakeCartesian2D(m, 6, 6, 1, 1)
	k := AssembleDiffusion2D(m, mesh, One2D)
	b := AssembleRHS2D(m, mesh, One2D)
	u := make([]float64, mesh.NumNodes())
	CGSolve(m, k, b, u, 1e-11, 300)
	// Residual actually small.
	r := make([]float64, len(u))
	SpMult(m, k, u, r)
	for i := range r {
		if math.Abs(r[i]-b[i]) > 1e-8 {
			t.Fatalf("2D Poisson residual %g at %d", r[i]-b[i], i)
		}
	}
	// Solution symmetric about the domain center.
	s := mesh.Nx + 1
	center := u[3*s+3]
	if center <= 0 {
		t.Fatal("center value not positive")
	}
	if math.Abs(u[2*s+3]-u[4*s+3]) > 1e-8 || math.Abs(u[3*s+2]-u[3*s+4]) > 1e-8 {
		t.Fatal("2D solution not symmetric")
	}
}

func TestPowerIterationOnSPDMatrix(t *testing.T) {
	m := baseMachine(t)
	mesh := MakeCartesian1D(m, 12, 1)
	k := AssembleDiffusion1D(m, mesh, One1D)
	x := make([]float64, mesh.N+1)
	for i := range x {
		x[i] = 1
	}
	lambda := PowerIterationRun(m, k, x, 50)
	// Largest eigenvalue of the (Dirichlet-modified) stiffness matrix is
	// positive and bounded by the max row sum.
	if lambda <= 0 {
		t.Fatalf("lambda = %g", lambda)
	}
	var maxRow float64
	for i := 0; i < k.N; i++ {
		var s float64
		for _, v := range k.Val[k.RowPtr[i]:k.RowPtr[i+1]] {
			s += math.Abs(v)
		}
		if s > maxRow {
			maxRow = s
		}
	}
	if lambda > maxRow+1e-9 {
		t.Fatalf("lambda %g exceeds Gershgorin bound %g", lambda, maxRow)
	}
}

func TestAllExamplesRunDeterministically(t *testing.T) {
	p := Program()
	ex, err := link.FullBuild(p, comp.Baseline())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range AllCases() {
		r1, err := flit.RunAll(tc, ex)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name(), err)
		}
		if len(r1.Vec) == 0 {
			t.Fatalf("%s produced no values", tc.Name())
		}
		for i, v := range r1.Vec {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s value %d is %g", tc.Name(), i, v)
			}
		}
		r2, err := flit.RunAll(tc, ex)
		if err != nil {
			t.Fatal(err)
		}
		if flit.L2Diff(r1, r2) != 0 {
			t.Fatalf("%s not deterministic", tc.Name())
		}
	}
}

func TestInvariantExamplesNeverVary(t *testing.T) {
	p := Program()
	for _, n := range []int{12, 18} {
		tc := NewCase(n)
		base, err := link.FullBuild(p, comp.Baseline())
		if err != nil {
			t.Fatal(err)
		}
		want, err := flit.RunAll(tc, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range comp.Matrix() {
			ex, err := link.FullBuild(p, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := flit.RunAll(tc, ex)
			if err != nil {
				t.Fatalf("%s under %s: %v", tc.Name(), c, err)
			}
			if d := flit.L2Diff(want, got); d != 0 {
				t.Fatalf("invariant %s varied under %s: %g", tc.Name(), c, d)
			}
		}
	}
}

func TestExample13LargeRelativeError(t *testing.T) {
	p := Program()
	tc := NewCase(13)
	base, _ := link.FullBuild(p, comp.Baseline())
	want, err := flit.RunAll(tc, base)
	if err != nil {
		t.Fatal(err)
	}
	// The finding-2 compilations: FMA/AVX2 style.
	fmaComp := comp.Compilation{Compiler: comp.GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	ex, _ := link.FullBuild(p, fmaComp)
	got, err := flit.RunAll(tc, ex)
	if err != nil {
		t.Fatal(err)
	}
	rel := flit.L2Diff(want, got) / want.Norm()
	if rel < 0.5 {
		t.Fatalf("example 13 relative error %g under %s; want chaotic O(1) divergence", rel, fmaComp)
	}
	if math.IsInf(rel, 0) || math.IsNaN(rel) {
		t.Fatalf("example 13 produced non-finite deviation %g", rel)
	}
}

func TestParallelRunsDifferButAreDeterministic(t *testing.T) {
	p := Program()
	base, _ := link.FullBuild(p, comp.Baseline())
	tc := NewCase(2)
	seq, err := flit.RunAll(tc, base)
	if err != nil {
		t.Fatal(err)
	}
	par := tc.WithProcs(4)
	p1, err := flit.RunAll(par, base)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := flit.RunAll(par, base)
	if err != nil {
		t.Fatal(err)
	}
	if flit.L2Diff(p1, p2) != 0 {
		t.Fatal("parallel run not deterministic")
	}
	if flit.L2Diff(seq, p1) == 0 {
		t.Fatal("3-rank domain decomposition produced bitwise-equal results; " +
			"accumulation order should have changed")
	}
}

func TestStripOrderCoversAllElements(t *testing.T) {
	mesh := &Mesh2D{Nx: 7, Ny: 3}
	for np := 2; np <= 5; np++ {
		order := stripOrder(mesh, np)
		if len(order) != mesh.Nx*mesh.Ny {
			t.Fatalf("np=%d: order has %d elements, want %d", np, len(order), mesh.Nx*mesh.Ny)
		}
		seen := map[int]bool{}
		for _, e := range order {
			if seen[e] {
				t.Fatalf("np=%d: duplicate element %d", np, e)
			}
			seen[e] = true
		}
	}
	if stripOrder(mesh, 1) != nil {
		t.Fatal("np=1 should keep row-major order")
	}
}

func TestNewCasePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCase(20)
}
