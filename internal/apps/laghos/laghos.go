// Package laghos is a miniature Lagrangian compressible-gas-dynamics proxy
// in the shape of the Laghos application of the paper's case study (§3.4 and
// the §1 motivating example): staggered-grid hydrodynamics with an ideal-gas
// EOS, artificial viscosity, and nodal force/energy updates.
//
// It reproduces the two real defects the paper root-caused:
//
//  1. An exact `q == 0.0` comparison in UpdateQuadratureData. Under FMA
//     contraction the symmetric cross-term a·b − b·a, exactly zero in strict
//     arithmetic, leaves a one-rounding residual, so the viscous branch
//     flips and the simulation diverges by ~11% in the energy norm — the
//     xlc++ -O3 incident.
//  2. The `#define xsw(a,b) a^=b^=a^=b` XOR-swap macro, undefined behavior
//     in C++, which the IBM compiler miscompiles into NaN-producing code
//     (the "all results were NaN" public-branch bug, found as the two
//     visible symbols closest to the issue).
package laghos

import (
	"math"
	"sync"

	"repro/internal/comp"
	"repro/internal/link"
	"repro/internal/prog"
)

var (
	buildOnce sync.Once
	theProg   *prog.Program
)

// Program returns the static description of the mini-Laghos source tree.
func Program() *prog.Program {
	buildOnce.Do(func() { theProg = buildProgram() })
	return theProg
}

func buildProgram() *prog.Program {
	p := prog.New("laghos")
	p.AddFile("laghos.cpp",
		&prog.Symbol{Name: "main_laghos", Exported: true, Work: 6, FPOps: 10, SLOC: 90,
			Features: prog.Features{ShortExpr: true},
			Callees: []string{"ComputeVolume", "LagrangianHydroOperator::ComputeDt",
				"LagrangianHydroOperator::UpdateQuadratureData",
				"LagrangianHydroOperator::ForceMult",
				"LagrangianHydroOperator::SolveVelocity",
				"LagrangianHydroOperator::SolveEnergy",
				"TimeIntegrator::SwapLevels", "TimeIntegrator::RotateBuffers",
				"EnergyNorm"}},
		&prog.Symbol{Name: "EnergyNorm", Exported: true, Work: 2, FPOps: 3, SLOC: 8,
			Features: prog.Features{Reduction: true, SqrtLibm: true}},
	)
	p.AddFile("laghos_solver.cpp",
		&prog.Symbol{Name: "LagrangianHydroOperator::UpdateQuadratureData", Exported: true,
			Work: 8, FPOps: 14, SLOC: 48,
			Features: prog.Features{MulAdd: true, Branch: true, Division: true, Hot: true},
			Callees:  []string{"EOS::Pressure", "EOS::SoundSpeed"}},
		&prog.Symbol{Name: "LagrangianHydroOperator::ForceMult", Exported: true,
			Work: 6, FPOps: 8, SLOC: 26,
			Features: prog.Features{Reduction: true, MulAdd: true},
			Callees:  []string{"ForcePA::Assemble"}},
		&prog.Symbol{Name: "LagrangianHydroOperator::SolveVelocity", Exported: true,
			Work: 5, FPOps: 6, SLOC: 20,
			Features: prog.Features{MulAdd: true, Division: true},
			Callees:  []string{"MassPA::Assemble"}},
		&prog.Symbol{Name: "LagrangianHydroOperator::SolveEnergy", Exported: true,
			Work: 5, FPOps: 8, SLOC: 24,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "LagrangianHydroOperator::ComputeDt", Exported: true,
			Work: 2, FPOps: 4, SLOC: 14,
			Features: prog.Features{Division: true, Branch: true},
			Callees:  []string{"EOS::SoundSpeed"}},
	)
	p.AddFile("laghos_assembly.cpp",
		&prog.Symbol{Name: "ForcePA::Assemble", Exported: true, Work: 5, FPOps: 6, SLOC: 28,
			Features: prog.Features{Reduction: true, MulAdd: true}},
		&prog.Symbol{Name: "MassPA::Assemble", Exported: true, Work: 4, FPOps: 4, SLOC: 22,
			Features: prog.Features{Reduction: true}},
	)
	p.AddFile("eos.cpp",
		&prog.Symbol{Name: "EOS::Pressure", Exported: true, Work: 2, FPOps: 2, SLOC: 6,
			Features: prog.Features{ShortExpr: true}},
		&prog.Symbol{Name: "EOS::SoundSpeed", Exported: true, Work: 2, FPOps: 4, SLOC: 7,
			Features: prog.Features{SqrtLibm: true, Division: true}},
	)
	p.AddFile("laghos_utils.cpp",
		&prog.Symbol{Name: "TimeIntegrator::SwapLevels", Exported: true, Work: 1, FPOps: 1, SLOC: 9},
		&prog.Symbol{Name: "TimeIntegrator::RotateBuffers", Exported: true, Work: 1, FPOps: 1, SLOC: 11},
		&prog.Symbol{Name: "ComputeVolume", Exported: true, Work: 2, FPOps: 2, SLOC: 8,
			Features: prog.Features{Reduction: true}},
		&prog.Symbol{Name: "MinElementWidth", Exported: true, Work: 1, FPOps: 1, SLOC: 9},
	)
	if err := p.Validate(); err != nil {
		panic("laghos: invalid program: " + err.Error())
	}
	return p
}

// Options configures a simulation variant.
type Options struct {
	// NaNBug enables the public-branch XOR-swap macro: the two
	// TimeIntegrator symbols are miscompiled into NaN-poisoning code by the
	// IBM compiler (undefined behavior made concrete).
	NaNBug bool
	// EpsilonFix replaces the exact q == 0.0 comparison with an
	// epsilon-based one — the developers' fix, which restores agreement
	// with the trusted results even under xlc++ -O3.
	EpsilonFix bool
	// Cells and Steps size the simulation; zero values take the study
	// defaults (32 cells, 30 steps).
	Cells, Steps int
}

func (o Options) withDefaults() Options {
	if o.Cells == 0 {
		o.Cells = 32
	}
	if o.Steps == 0 {
		o.Steps = 30
	}
	return o
}

// State is the hydrodynamic state: nodes carry velocity and position, cells
// carry density and specific internal energy.
type State struct {
	X   []float64 // node positions (Cells+1)
	V   []float64 // node velocities
	Rho []float64 // cell densities
	E   []float64 // cell energies
}

const gamma = 5.0 / 3.0

// Simulate runs the mini-Laghos problem and returns the final state.
// The setup is a Sedov-flavored energy deposition: one hot cell drives a
// shock into a cold gas.
func Simulate(m *link.Machine, opt Options, seed float64) *State {
	opt = opt.withDefaults()
	_, done := m.Fn("main_laghos")
	defer done()

	n := opt.Cells
	st := &State{
		X:   make([]float64, n+1),
		V:   make([]float64, n+1),
		Rho: make([]float64, n),
		E:   make([]float64, n),
	}
	for i := 0; i <= n; i++ {
		st.X[i] = float64(i) / float64(n)
	}
	for c := 0; c < n; c++ {
		st.Rho[c] = 1 + 0.05*seed*float64(c%3)
		st.E[c] = 1.0e4
	}
	st.E[0] = 1.6e4 // the deposition
	st.E[1] = 1.3e4

	for step := 0; step < opt.Steps; step++ {
		dt := ComputeDt(m, st)
		p, q := UpdateQuadratureData(m, st, opt)
		f := ForceMult(m, st, p, q)
		SolveVelocity(m, st, f, dt)
		SolveEnergy(m, st, p, q, dt)
		SwapLevels(m, st, opt)
		RotateBuffers(m, st, opt)
		for i := range st.X {
			st.X[i] += dt * st.V[i] // node motion in the driver (strict)
		}
	}
	return st
}

// ComputeDt returns the CFL-limited timestep.
func ComputeDt(m *link.Machine, st *State) float64 {
	env, done := m.Fn("LagrangianHydroOperator::ComputeDt")
	defer done()
	dt := math.Inf(1)
	for c := range st.Rho {
		h := env.Sub(st.X[c+1], st.X[c])
		cs := SoundSpeed(m, st.Rho[c], st.E[c])
		cand := env.Div(h, cs)
		if cand < dt {
			dt = cand
		}
	}
	return 0.04 * dt
}

// Pressure evaluates the ideal-gas EOS p = (γ−1)ρe.
func Pressure(m *link.Machine, rho, e float64) float64 {
	env, done := m.Fn("EOS::Pressure")
	defer done()
	return env.Mul(env.Mul(gamma-1, rho), e)
}

// SoundSpeed returns c = sqrt(γp/ρ).
func SoundSpeed(m *link.Machine, rho, e float64) float64 {
	env, done := m.Fn("EOS::SoundSpeed")
	defer done()
	p := Pressure(m, rho, e)
	return env.Sqrt(env.Div(env.Mul(gamma, p), rho))
}

// UpdateQuadratureData computes per-cell pressure and artificial viscosity.
// It contains the paper's root cause: qzero is the symmetric cross-term
// h·Δv − Δv·h, identically zero in strict arithmetic but a one-rounding
// residual under FMA contraction; the exact q == 0.0 comparison then takes
// the viscous branch, which switches on an O(1) heating term.
func UpdateQuadratureData(m *link.Machine, st *State, opt Options) (p, q []float64) {
	env, done := m.Fn("LagrangianHydroOperator::UpdateQuadratureData")
	defer done()
	n := len(st.Rho)
	p = make([]float64, n)
	q = make([]float64, n)
	for c := 0; c < n; c++ {
		p[c] = Pressure(m, st.Rho[c], st.E[c])
		h := env.Sub(st.X[c+1], st.X[c])
		dv := env.Sub(st.V[c+1], st.V[c])
		// Velocity-gradient correction: strict evaluation computes
		// (big + dv) - big where big absorbs dv entirely, an exact zero.
		// Reassociation (xlc++ -O3 without -qstrict=vectorprecision)
		// evaluates (big - big) + dv and resurrects dv, leaving a tiny
		// nonzero correction.
		const absorb = 1e18
		qzero := env.Mul(1e-14, env.Sum3(absorb, dv, -absorb))
		var qc float64
		if dv < 0 {
			// Physical compression: full Von Neumann-Richtmyer viscosity.
			cs := SoundSpeed(m, st.Rho[c], st.E[c])
			qc = env.Add(
				env.Mul(env.Mul(0.5, st.Rho[c]), env.Mul(dv, dv)),
				env.Mul(env.Mul(0.1, st.Rho[c]), env.Mul(cs, env.Abs(dv))))
		} else {
			qc = qzero
		}
		var quiet bool
		if opt.EpsilonFix {
			quiet = math.Abs(qc) <= 1e-10 // the developers' fix
		} else {
			quiet = qc == 0.0 // the bug: exact comparison to 0.0
		}
		if !quiet {
			// The viscous limiter: an O(1) term, not scaled by qc — this
			// is why a tiny residual changes the answer by percents.
			qc = env.MulAdd(env.Mul(st.Rho[c], h),
				env.Mul(2e4, env.Abs(dv)+0.02), qc)
		}
		q[c] = qc
	}
	return p, q
}

// ForceMult maps cell stresses to nodal forces.
func ForceMult(m *link.Machine, st *State, p, q []float64) []float64 {
	env, done := m.Fn("LagrangianHydroOperator::ForceMult")
	defer done()
	sigma := AssembleForce(m, p, q)
	n := len(st.Rho)
	f := make([]float64, n+1)
	for i := 1; i < n; i++ {
		f[i] = env.Sub(sigma[i-1], sigma[i])
	}
	f[0] = env.Neg(sigma[0])
	f[n] = sigma[n-1]
	return f
}

// AssembleForce combines pressure and viscosity into the cell stress.
func AssembleForce(m *link.Machine, p, q []float64) []float64 {
	env, done := m.Fn("ForcePA::Assemble")
	defer done()
	out := make([]float64, len(p))
	for c := range p {
		// Stress with a small quadratic stabilization term: p + q + εq².
		out[c] = env.MulAdd(env.Mul(1e-7, q[c]), q[c], env.Add(p[c], q[c]))
	}
	return out
}

// NodalMass lumps cell masses onto nodes.
func NodalMass(m *link.Machine, st *State) []float64 {
	env, done := m.Fn("MassPA::Assemble")
	defer done()
	n := len(st.Rho)
	mass := make([]float64, n+1)
	for c := 0; c < n; c++ {
		h := env.Sub(st.X[c+1], st.X[c])
		half := env.Mul(0.5, env.Mul(st.Rho[c], h))
		mass[c] = env.Add(mass[c], half)
		mass[c+1] = env.Add(mass[c+1], half)
	}
	return mass
}

// SolveVelocity advances nodal velocities: v += dt·F/m.
func SolveVelocity(m *link.Machine, st *State, f []float64, dt float64) {
	env, done := m.Fn("LagrangianHydroOperator::SolveVelocity")
	defer done()
	mass := NodalMass(m, st)
	for i := range st.V {
		st.V[i] = env.MulAdd(dt, env.Div(f[i], mass[i]), st.V[i])
	}
	// Rigid-wall boundary conditions.
	st.V[0] = 0
	st.V[len(st.V)-1] = 0
}

// SolveEnergy advances cell energies with the pdV work plus viscous heating.
func SolveEnergy(m *link.Machine, st *State, p, q []float64, dt float64) {
	env, done := m.Fn("LagrangianHydroOperator::SolveEnergy")
	defer done()
	for c := range st.E {
		h := env.Sub(st.X[c+1], st.X[c])
		dv := env.Sub(st.V[c+1], st.V[c])
		rate := env.Div(env.Mul(env.Add(p[c], q[c]), dv), env.Mul(st.Rho[c], h))
		// Negative energies (the physical impossibility the Laghos
		// developers observed under xlc++ -O3) are deliberately not
		// clamped: FLiT's compare is what flags them.
		st.E[c] = env.MulAdd(-dt, rate, st.E[c])
	}
}

// SwapLevels is the first of the two symbols carrying the XOR-swap macro.
// With the public-branch bug active, the IBM compiler turns the UB into
// NaN-poisoned buffers.
func SwapLevels(m *link.Machine, st *State, opt Options) {
	_, done := m.Fn("TimeIntegrator::SwapLevels")
	defer done()
	if opt.NaNBug && m.Comp().Compiler == comp.XLC {
		for i := range st.E {
			st.E[i] = math.NaN()
		}
	}
}

// RotateBuffers is the second symbol using the macro.
func RotateBuffers(m *link.Machine, st *State, opt Options) {
	_, done := m.Fn("TimeIntegrator::RotateBuffers")
	defer done()
	if opt.NaNBug && m.Comp().Compiler == comp.XLC {
		for i := range st.V {
			st.V[i] = math.NaN()
		}
	}
}

// EnergyNorm returns the ℓ2 norm of the cell energies — the quantity the
// motivating example reports (129,664.9 vs 144,174.9).
func EnergyNorm(m *link.Machine, e []float64) float64 {
	env, done := m.Fn("EnergyNorm")
	defer done()
	return env.Norm2(e)
}

// Volume returns the total domain volume (a sanity diagnostic).
func Volume(m *link.Machine, st *State) float64 {
	env, done := m.Fn("ComputeVolume")
	defer done()
	widths := make([]float64, len(st.Rho))
	for c := range widths {
		widths[c] = env.Sub(st.X[c+1], st.X[c])
	}
	return env.Sum(widths)
}

// MinWidth returns the smallest cell width.
func MinWidth(m *link.Machine, st *State) float64 {
	env, done := m.Fn("MinElementWidth")
	defer done()
	min := math.Inf(1)
	for c := range st.Rho {
		if w := env.Sub(st.X[c+1], st.X[c]); w < min {
			min = w
		}
	}
	return min
}
