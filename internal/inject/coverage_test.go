package inject

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/apps/lulesh"
	"repro/internal/bisect"
	"repro/internal/exec"
	"repro/internal/flit"
	"repro/internal/fp"
	"repro/internal/link"
)

func TestEpsFromSumNeverZero(t *testing.T) {
	// Hashes whose top 53 bits vanish must not produce ε = 0 — the paper
	// draws from (0,1), and an exactly-zero perturbation would silently
	// turn an injection into a no-op.
	if got := epsFromSum(0); got != 0.5 {
		t.Fatalf("epsFromSum(0) = %g, want the 0.5 fallback", got)
	}
	if got := epsFromSum(2047); got != 0.5 { // still zero after >>11
		t.Fatalf("epsFromSum(2047) = %g, want the 0.5 fallback", got)
	}
	if got := epsFromSum(^uint64(0)); got <= 0 || got >= 1 {
		t.Fatalf("epsFromSum(max) = %g outside (0,1)", got)
	}
}

// failingCase delegates to the real lulesh test but starts returning
// errors after `allow` executions — a deterministic way to break the
// detection run, the injected run, or the bisect search specifically.
type failingCase struct {
	flit.TestCase
	allow int
	runs  int
}

var errSimFault = errors.New("inject test: simulated execution fault")

func (c *failingCase) Run(input []float64, m *link.Machine) (flit.Result, error) {
	c.runs++
	if c.runs > c.allow {
		return flit.Result{}, errSimFault
	}
	return c.TestCase.Run(input, m)
}

func TestRunOneErrorPaths(t *testing.T) {
	// A measurable site: this exact injection scores Exact in the happy
	// path, so every stage of RunOne is genuinely exercised before the
	// planted fault trips.
	site := Site{Symbol: "CalcAccelerationForNodes", OpIndex: 2}
	base := lulesh.NewCase()
	chunks := len(base.GetDefaultInput()) / base.GetInputsPerRun()
	if chunks < 1 {
		t.Fatal("lulesh case has no input chunks")
	}

	cases := []struct {
		name  string
		allow int // executions before the fault
	}{
		{"baseline run fails", 0},
		{"injected run fails", chunks},
		{"bisect search fails", 2 * chunks},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := study()
			s.Test = &failingCase{TestCase: lulesh.NewCase(), allow: tc.allow}
			rep := s.RunOne(site, fp.InjMul)
			if rep.Err == nil {
				t.Fatalf("fault after %d runs was swallowed: outcome %s", tc.allow, rep.Outcome)
			}
			if !strings.Contains(rep.Err.Error(), errSimFault.Error()) {
				t.Fatalf("unexpected error: %v", rep.Err)
			}
			if tc.allow == 2*chunks && rep.Outcome != Missed {
				t.Fatalf("a failed bisect search scored %s, want missed", rep.Outcome)
			}
		})
	}
}

func TestScoreEdgeCases(t *testing.T) {
	s := study()
	const target = "CalcAccelerationForNodes"
	targetFile := s.Prog.MustSymbol(target).File

	if got := s.score(target, []string{"main"}, nil); got != Wrong {
		t.Errorf("unrelated blame scored %s, want wrong", got)
	}
	// No symbol-level blame, but the file search flagged the right file
	// and symbol search could not go deeper: an indirect localization.
	shallow := &bisect.Report{Files: []bisect.FileFinding{
		{File: targetFile, Status: bisect.SymbolsCrashed},
	}}
	if got := s.score(target, nil, shallow); got != Indirect {
		t.Errorf("file-level localization scored %s, want indirect", got)
	}
	// Symbol search DID run inside the file and still blamed nothing:
	// the injection was missed, not indirectly found.
	deep := &bisect.Report{Files: []bisect.FileFinding{
		{File: targetFile, Status: bisect.SymbolsFound},
	}}
	if got := s.score(target, nil, deep); got != Missed {
		t.Errorf("empty symbol search scored %s, want missed", got)
	}
	if got := s.score(target, nil, &bisect.Report{}); got != Missed {
		t.Errorf("empty report scored %s, want missed", got)
	}
}

func TestSummaryZeroDenominators(t *testing.T) {
	var s Summary
	if got := s.AvgExecs(); got != 0 {
		t.Errorf("AvgExecs with no bisects = %g, want 0", got)
	}
	if got := s.Precision(); !math.IsNaN(got) {
		t.Errorf("Precision with no positives = %g, want NaN", got)
	}
	if got := s.Recall(); !math.IsNaN(got) {
		t.Errorf("Recall with no positives or misses = %g, want NaN", got)
	}
}

func TestRunEnumeratesSitesWhenNil(t *testing.T) {
	// Run(nil) must enumerate the full site space itself; the shard keeps
	// the owned slice tiny so the test stays fast.
	s := study()
	s.Cache = flit.NewCache()
	s.Shard = exec.Shard{Index: 0, Count: 877}
	sum := s.Run(nil)
	want := len(exec.Shard{Index: 0, Count: 877}.Indices(
		len(EnumerateSites(s.Prog)) * len(fp.AllInjectOps)))
	if sum.Total != want {
		t.Fatalf("sharded Run(nil) scored %d injections, want %d", sum.Total, want)
	}
}
