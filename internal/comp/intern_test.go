package comp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fp"
)

// TestKeyInterning: Key returns the same (shared) string for equal
// compilation values, including injection plans compared by contents
// rather than by pointer — WithInjection allocates a fresh plan every
// call, and the intern table must still collapse them.
func TestKeyInterning(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O3", Switches: "-mavx2 -mfma"}
	k1, k2 := c.Key(), c.Key()
	if k1 != k2 {
		t.Fatalf("keys differ: %q vs %q", k1, k2)
	}
	inj := fp.Injection{OpIndex: 3, Op: fp.InjMul, Eps: 0.421875}
	a := c.WithInjection("Dot", inj)
	b := c.WithInjection("Dot", inj)
	if a.Inject == b.Inject {
		t.Fatal("test premise broken: WithInjection shared a pointer")
	}
	if a.Key() != b.Key() {
		t.Fatalf("value-equal injected compilations got distinct keys:\n%q\n%q", a.Key(), b.Key())
	}
	if a.Key() != a.buildKey() {
		t.Fatalf("interned key %q != serialized key %q", a.Key(), a.buildKey())
	}
}

// TestInjectedKeyExactEpsilon: epsilons that agree to three significant
// digits — which a rounded decimal rendering would conflate — and signed
// zeros and NaN payloads all keep distinct keys, because the key carries
// the IEEE-754 bit pattern.
func TestInjectedKeyExactEpsilon(t *testing.T) {
	c := Compilation{Compiler: Clang, OptLevel: "-O2"}
	pairs := [][2]float64{
		{0.1234567, 0.1234568},
		{0.5, math.Nextafter(0.5, 1)},
		{0.0, math.Copysign(0, -1)},
		{math.NaN(), math.Float64frombits(math.Float64bits(math.NaN()) ^ 2)},
	}
	for _, p := range pairs {
		ka := c.WithInjection("S", fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: p[0]}).Key()
		kb := c.WithInjection("S", fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: p[1]}).Key()
		if ka == kb {
			t.Errorf("eps %v and %v collided on key %q", p[0], p[1], ka)
		}
	}
	// Determinism across repeated calls, NaN included (NaN defeats ==, so
	// the intern table must address it by bits, not by float equality).
	n := c.WithInjection("S", fp.Injection{OpIndex: 0, Op: fp.InjDiv, Eps: math.NaN()})
	if n.Key() != n.Key() {
		t.Error("NaN-epsilon key not deterministic")
	}
}

// TestInjectedKeyEscapesOpByte: the injected operation byte is free-form
// (fp.InjectOp is a byte); structural characters in it must not break the
// key format.
func TestInjectedKeyEscapesOpByte(t *testing.T) {
	c := Compilation{Compiler: GCC, OptLevel: "-O2"}
	hostile := c.WithInjection("S", fp.Injection{OpIndex: 0, Op: fp.InjectOp('|'), Eps: 0.5})
	clean := c.WithInjection("S", fp.Injection{OpIndex: 0, Op: fp.InjAdd, Eps: 0.5})
	if hostile.Key() == clean.Key() {
		t.Fatal("hostile op byte collided with a clean one")
	}
	if strings.Count(hostile.Key(), "|") != strings.Count(clean.Key(), "|") {
		t.Fatalf("op byte leaked a structural '|' into %q", hostile.Key())
	}
}

// TestKeyDistinguishesInjectionFields: every field of an injection plan is
// identity-bearing.
func TestKeyDistinguishesInjectionFields(t *testing.T) {
	c := Compilation{Compiler: ICPC, OptLevel: "-O1"}
	base := c.WithInjection("S", fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: 0.25})
	for name, other := range map[string]Compilation{
		"clean":     c,
		"symbol":    c.WithInjection("T", fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: 0.25}),
		"op-index":  c.WithInjection("S", fp.Injection{OpIndex: 2, Op: fp.InjAdd, Eps: 0.25}),
		"operation": c.WithInjection("S", fp.Injection{OpIndex: 1, Op: fp.InjSub, Eps: 0.25}),
		"epsilon":   c.WithInjection("S", fp.Injection{OpIndex: 1, Op: fp.InjAdd, Eps: 0.375}),
		"fpic":      base.WithFPIC(),
	} {
		if other.Key() == base.Key() {
			t.Errorf("%s variant shares key %q", name, base.Key())
		}
	}
}
