package fp

import "math"

// Approximate math kernels modeling vector-math libraries (Intel SVML, IBM
// MASS). Real vector libraries trade the last ulp or two for speed; these
// kernels do the same thing deterministically, so that linking them in (the
// paper's "Intel link step" effect) changes results by O(1 ulp) without any
// randomness.

// approxSqrt computes sqrt via a single-precision reciprocal-sqrt seed
// refined with two Newton iterations in double precision — the classic
// vectorized sqrt sequence. It is within ~2 ulps of correctly rounded and
// differs from math.Sqrt on a large fraction of inputs.
func approxSqrt(x float64) float64 {
	if x == 0 || math.IsInf(x, 1) || math.IsNaN(x) || x < 0 {
		return math.Sqrt(x)
	}
	// Single-precision seed for 1/sqrt(x).
	y := float64(1 / math.Sqrt(float64(float32(x))))
	// Newton iterations for r = 1/sqrt(x): r' = r*(1.5 - 0.5*x*r*r).
	y = y * (1.5 - 0.5*x*y*y)
	y = y * (1.5 - 0.5*x*y*y)
	return x * y
}

// approxExp evaluates exp with a faithfully-rounded (not correctly-rounded)
// final step: the correctly rounded result is nudged by one ulp on a
// deterministic subset of inputs, modeling a 1-ulp vector library.
func approxExp(x float64) float64 {
	r := math.Exp(x)
	return nudge(r, x)
}

// approxLog is the logarithm counterpart of approxExp.
func approxLog(x float64) float64 {
	r := math.Log(x)
	return nudge(r, x)
}

// nudge moves r one ulp toward +inf or -inf on roughly half of all inputs,
// selected by the low mantissa bits of the argument. This is a deterministic
// stand-in for "faithful rounding": the result is always one of the two
// doubles bracketing the exact value.
func nudge(r, arg float64) float64 {
	if math.IsNaN(r) || math.IsInf(r, 0) || r == 0 {
		return r
	}
	bits := math.Float64bits(arg)
	switch bits & 3 {
	case 1:
		return math.Nextafter(r, math.Inf(1))
	case 3:
		return math.Nextafter(r, math.Inf(-1))
	default:
		return r
	}
}
