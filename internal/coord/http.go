package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Wire protocol of the coordinator (served by Handler, spoken by Client),
// mounted beside the object-store protocol on the same mux so one URL
// serves both scheduling and results. Every scheduling call is scoped to
// a campaign by ID in the path:
//
//	GET  /v1/coord/campaigns                      → 200 []CampaignInfo
//	POST /v1/coord/campaigns   {command,shards}   → 200 submitResponse
//	                                                (idempotent by spec)
//	POST /v1/coord/gc          {keep,dry_run}     → 200 GCResult
//	POST /v1/coord/<id>/lease      {worker}                → 200 leaseResponse
//	POST /v1/coord/<id>/heartbeat  {worker,lease_id,shard} → 200, 409 lease lost
//	POST /v1/coord/<id>/release    {worker,lease_id,shard} → 200 (idempotent)
//	POST /v1/coord/<id>/complete   {worker,lease_id,shard,
//	                                artifact: <shard JSON>} → 200 {state:
//	                                                         ok|done, all_done,
//	                                                         all_terminal},
//	                                                         400 bad artifact
//	POST /v1/coord/<id>/fail       {worker,lease_id,shard,
//	                                error,excerpt}          → 200 {state: ok,
//	                                                         quarantined,
//	                                                         campaign_failed,
//	                                                         all_terminal},
//	                                                         409 lease lost
//	GET  /v1/coord/<id>/status                             → 200 Status
//
// An unknown campaign ID answers 404 — a worker skips it and re-lists
// (GC may have retired the campaign under it). Every request carries the
// client's engine version in X-Flit-Engine and is fenced against the
// coordinator's — the same per-request fence the object protocol
// applies, because a worker built from a different engine would compute
// artifacts that are not interchangeable. 409 is the one
// coordination-specific status: the lease named in the request is no
// longer the shard's current one, and the worker must abandon the shard.
const (
	coordPathPrefix = "/v1/coord/"
	engineHeader    = "X-Flit-Engine"
)

// StatusLeaseLost is the HTTP rendering of ErrLeaseLost.
const StatusLeaseLost = http.StatusConflict

// leaseRequest is the body of every campaign-scoped mutating call;
// complete additionally carries the shard artifact verbatim, fail the
// structured failure report.
type leaseRequest struct {
	Worker   string          `json:"worker"`
	LeaseID  string          `json:"lease_id,omitempty"`
	Shard    int             `json:"shard"`
	Artifact json.RawMessage `json:"artifact,omitempty"`
	Error    string          `json:"error,omitempty"`
	Excerpt  string          `json:"excerpt,omitempty"`
}

// leaseResponse answers a lease, complete, or fail call: State is
// "granted" (Grant fields are set), "wait", "ok", "done", or "failed"
// (the campaign is terminally failed — the worker moves on exactly as
// for done). AllDone rides along so the worker that lands a
// coordinator's final completion learns it without another poll;
// AllTerminal is the drain signal that also counts failed campaigns, so
// a fleet facing a poisoned tenancy stops instead of spinning — a
// `-exit-when-done` coordinator may stop accepting connections the
// moment the last shard reaches a terminal state.
type leaseResponse struct {
	State          string   `json:"state"`
	Shard          int      `json:"shard,omitempty"`
	Count          int      `json:"count,omitempty"`
	Command        []string `json:"command,omitempty"`
	LeaseID        string   `json:"lease_id,omitempty"`
	TTLMS          int64    `json:"ttl_ms,omitempty"`
	AllDone        bool     `json:"all_done,omitempty"`
	AllTerminal    bool     `json:"all_terminal,omitempty"`
	Quarantined    bool     `json:"quarantined,omitempty"`
	CampaignFailed bool     `json:"campaign_failed,omitempty"`
}

// submitRequest is the body of a campaign submission. The engine is
// implied by the fenced header; the spec is (command, shards), plus an
// optional per-campaign attempt budget (0 = coordinator default, not
// part of the campaign's identity).
type submitRequest struct {
	Command     []string `json:"command"`
	Shards      int      `json:"shards"`
	MaxAttempts int      `json:"max_attempts,omitempty"`
}

// submitResponse names the campaign a submission landed on. Created is
// false when the spec already named a held campaign — submission is
// idempotent.
type submitResponse struct {
	ID      string `json:"id"`
	Created bool   `json:"created"`
}

// gcRequest is the body of a server-side retirement pass.
type gcRequest struct {
	Keep   int  `json:"keep"`
	DryRun bool `json:"dry_run"`
}

// maxRequestBody bounds a coordinator request body. Shard artifacts are
// the largest payload and share the object store's envelope bound.
const maxRequestBody = 64 << 20

// Handler serves the coordinator protocol for c. Mount it at the root of
// the same mux as store.Handler — the paths do not overlap.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(coordPathPrefix, func(w http.ResponseWriter, r *http.Request) {
		serveCoord(c, w, r)
	})
	return mux
}

func serveCoord(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	if got := r.Header.Get(engineHeader); got != c.engine {
		http.Error(w, fmt.Sprintf("coord: coordinator is engine %q, request is %q", c.engine, got),
			http.StatusPreconditionFailed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, coordPathPrefix)
	switch rest {
	case "campaigns":
		serveCampaigns(c, w, r)
		return
	case "gc":
		serveGC(c, w, r)
		return
	}
	id, op, ok := strings.Cut(rest, "/")
	if !ok || id == "" {
		http.NotFound(w, r)
		return
	}
	if op == "status" {
		if r.Method != http.MethodGet {
			http.Error(w, "status wants GET", http.StatusMethodNotAllowed)
			return
		}
		st, err := c.Status(id)
		if err != nil {
			answer(w, err)
			return
		}
		writeJSON(w, st)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "coordinator calls want POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil || int64(len(body)) > maxRequestBody {
		http.Error(w, "coord: unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	var req leaseRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "coord: malformed request body", http.StatusBadRequest)
		return
	}
	switch op {
	case "lease":
		g, state, err := c.Lease(id, req.Worker)
		if err != nil {
			answer(w, err)
			return
		}
		resp := leaseResponse{State: "wait"}
		switch state {
		case Granted:
			resp = leaseResponse{State: "granted", Shard: g.Shard, Count: g.Count,
				Command: g.Command, LeaseID: g.LeaseID, TTLMS: g.TTL.Milliseconds()}
		case Done:
			resp.State = "done"
		case Failed:
			resp.State = "failed"
		}
		writeJSON(w, resp)
	case "heartbeat":
		answer(w, c.Heartbeat(id, req.Worker, req.LeaseID, req.Shard))
	case "release":
		answer(w, c.Release(id, req.Worker, req.LeaseID, req.Shard))
	case "complete":
		if len(req.Artifact) == 0 {
			http.Error(w, "coord: completion carries no artifact", http.StatusBadRequest)
			return
		}
		campaignDone, allDone, allTerminal, err := c.Complete(id, req.Worker, req.LeaseID, req.Shard, req.Artifact)
		if err != nil {
			answer(w, err)
			return
		}
		resp := leaseResponse{State: "ok", AllDone: allDone, AllTerminal: allTerminal}
		if campaignDone {
			resp.State = "done"
		}
		writeJSON(w, resp)
	case "fail":
		quarantined, campaignFailed, allTerminal, err := c.Fail(id, req.Worker, req.LeaseID, req.Shard, req.Error, req.Excerpt)
		if err != nil {
			answer(w, err)
			return
		}
		writeJSON(w, leaseResponse{State: "ok", Quarantined: quarantined,
			CampaignFailed: campaignFailed, AllTerminal: allTerminal})
	default:
		http.NotFound(w, r)
	}
}

// serveCampaigns lists the tenancy (GET) or submits a campaign (POST).
func serveCampaigns(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, c.Campaigns())
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil || int64(len(body)) > maxRequestBody {
			http.Error(w, "coord: unreadable or oversized request body", http.StatusBadRequest)
			return
		}
		var req submitRequest
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "coord: malformed request body", http.StatusBadRequest)
			return
		}
		id, created, err := c.Submit(Spec{Engine: c.engine, Command: req.Command,
			Shards: req.Shards, MaxAttempts: req.MaxAttempts})
		if err != nil {
			answer(w, err)
			return
		}
		writeJSON(w, submitResponse{ID: id, Created: created})
	default:
		http.Error(w, "campaigns wants GET or POST", http.StatusMethodNotAllowed)
	}
}

// serveGC runs a server-side retirement pass.
func serveGC(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "gc wants POST", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
	if err != nil || int64(len(body)) > maxRequestBody {
		http.Error(w, "coord: unreadable or oversized request body", http.StatusBadRequest)
		return
	}
	var req gcRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "coord: malformed request body", http.StatusBadRequest)
		return
	}
	res, err := c.GC(req.Keep, req.DryRun)
	if err != nil {
		answer(w, err)
		return
	}
	writeJSON(w, res)
}

// answer maps a coordinator-method error to its HTTP status: lease loss is
// the worker's 409 signal to abandon the shard; an unknown campaign is
// 404 (GC may have retired it — the worker re-lists); a validation
// failure is the client's fault (400); anything else is the server's (500).
func answer(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		w.WriteHeader(http.StatusOK)
	case errors.Is(err, ErrLeaseLost):
		http.Error(w, err.Error(), StatusLeaseLost)
	case errors.Is(err, ErrNoCampaign):
		http.Error(w, err.Error(), http.StatusNotFound)
	case IsBadRequest(err):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data)
}
