package coord

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/exec"
)

// Runner executes one leased shard of the campaign command and returns
// the exported shard artifact, verbatim JSON. The CLI supplies the
// experiments-engine implementation; tests supply fakes and saboteurs.
// The artifact must be a deterministic function of (command, shard) —
// in particular, unstamped — so that two workers completing the same
// shard converge on identical bytes.
type Runner func(command []string, shard exec.Shard) ([]byte, error)

// WorkerOptions tunes the worker loop. The zero value is production-shaped.
type WorkerOptions struct {
	// Name identifies this worker in coordinator state (default "worker").
	Name string
	// PollEvery is the pause between lease attempts while every shard is
	// taken (default 500ms).
	PollEvery time.Duration
	// Log receives one line per lifecycle event (nil discards).
	Log io.Writer
}

func (o *WorkerOptions) withDefaults() {
	if o.Name == "" {
		o.Name = "worker"
	}
	if o.PollEvery <= 0 {
		o.PollEvery = 500 * time.Millisecond
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
}

// WorkerStats summarizes one worker's campaign participation.
type WorkerStats struct {
	// Completed counts shards this worker ran and successfully reported.
	Completed int
	// Lost counts shards this worker ran to completion but whose lease was
	// lost along the way — the artifact upload was skipped because another
	// worker owns the shard now. The work is not wasted: run results were
	// written through to the shared store as they were computed.
	Lost int
}

// Work runs the worker loop against a coordinator: lease a shard, run it
// under a heartbeat, upload the artifact, repeat until the campaign is
// done. Cancelling ctx drains: a shard already running is finished and
// reported (the drivers are not interruptible and the work is worth
// keeping), a lease merely held is released, and the loop returns
// ctx.Err(). A lost lease (expiry or supersession while running) abandons
// only the upload and continues the loop. Transient coordinator errors
// have already consumed the client's retry budget when they surface here,
// so they terminate the loop rather than spin on a dead service.
func Work(ctx context.Context, cl *Client, run Runner, opts WorkerOptions) (WorkerStats, error) {
	opts.withDefaults()
	var stats WorkerStats
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		g, state, err := cl.Lease(opts.Name)
		if err != nil {
			return stats, err
		}
		switch state {
		case Done:
			fmt.Fprintf(opts.Log, "%s: campaign complete (%d shards run here, %d lost)\n",
				opts.Name, stats.Completed, stats.Lost)
			return stats, nil
		case Wait:
			fmt.Fprintf(opts.Log, "%s: all shards leased; polling\n", opts.Name)
			select {
			case <-ctx.Done():
			case <-time.After(opts.PollEvery):
			}
			continue
		}
		if err := ctx.Err(); err != nil {
			// Drained between lease and run: hand the untouched shard back.
			_ = cl.Release(opts.Name, g.LeaseID, g.Shard)
			return stats, err
		}
		fmt.Fprintf(opts.Log, "%s: leased shard %d/%d (%s)\n", opts.Name, g.Shard, g.Count, g.LeaseID)
		lost, done, err := runShard(ctx, cl, run, g, opts, &stats)
		if err != nil {
			return stats, err
		}
		if lost {
			fmt.Fprintf(opts.Log, "%s: lease %s lost; shard %d abandoned to its new owner\n",
				opts.Name, g.LeaseID, g.Shard)
		} else {
			fmt.Fprintf(opts.Log, "%s: shard %d complete\n", opts.Name, g.Shard)
		}
		if done {
			// This completion finished the campaign. Don't go back for one
			// more lease: under -exit-when-done the coordinator may already
			// be draining, and that poll would race its shutdown.
			fmt.Fprintf(opts.Log, "%s: campaign complete (%d shards run here, %d lost)\n",
				opts.Name, stats.Completed, stats.Lost)
			return stats, nil
		}
	}
}

// runShard executes one granted shard under a heartbeat goroutine and
// reports the result. Returns lost=true when the lease was lost and the
// completion was skipped; done=true when this completion was the
// campaign's last.
func runShard(ctx context.Context, cl *Client, run Runner, g Grant,
	opts WorkerOptions, stats *WorkerStats) (lost, done bool, err error) {
	// Heartbeat at a third of the TTL: two beats may be dropped before the
	// lease is at risk. The goroutine stops at shard end or lease loss;
	// it deliberately ignores ctx so a draining worker keeps its lease
	// alive while it finishes the shard.
	hbCtx, stopHB := context.WithCancel(context.Background())
	var hbLost bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		interval := g.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
			}
			if err := cl.Heartbeat(opts.Name, g.LeaseID, g.Shard); err != nil {
				// Lease loss is terminal for the heartbeat; so is an exhausted
				// retry budget (the lease will expire anyway — treat the shard
				// as lost rather than report over a dead coordinator).
				if !errors.Is(err, ErrLeaseLost) {
					fmt.Fprintf(opts.Log, "%s: heartbeat failed: %v\n", opts.Name, err)
				}
				hbLost = true
				return
			}
		}
	}()
	artifact, runErr := run(g.Command, exec.Shard{Index: g.Shard, Count: g.Count})
	stopHB()
	wg.Wait()
	if runErr != nil {
		// A run failure is deterministic (the drivers are): releasing and
		// retrying would loop forever, so surface it.
		_ = cl.Release(opts.Name, g.LeaseID, g.Shard)
		return false, false, fmt.Errorf("coord: running shard %d: %w", g.Shard, runErr)
	}
	if hbLost {
		stats.Lost++
		return true, false, nil
	}
	done, err = cl.Complete(opts.Name, g.LeaseID, g.Shard, artifact)
	if err != nil {
		if errors.Is(err, ErrLeaseLost) {
			stats.Lost++
			return true, false, nil
		}
		return false, false, err
	}
	stats.Completed++
	return false, done, nil
}
