package store

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store/storetest"
)

// fastOpts shrinks every transport knob so hostile tests finish in
// milliseconds: tiny backoffs, a 40ms attempt timeout (the harness stalls
// for 150ms), and a bounded overall deadline.
func fastOpts() *RemoteOptions {
	return &RemoteOptions{
		Attempts:       4,
		BaseDelay:      time.Millisecond,
		MaxDelay:       4 * time.Millisecond,
		AttemptTimeout: 40 * time.Millisecond,
		Deadline:       2 * time.Second,
	}
}

// newServed opens a Disk store in a temp dir and serves it over a flaky
// wrapper with an initially empty fault script.
func newServed(t *testing.T) (*Disk, *storetest.Flaky, *httptest.Server) {
	t.Helper()
	d, err := Open(t.TempDir(), testEngine)
	if err != nil {
		t.Fatal(err)
	}
	flaky := storetest.NewFlaky(Handler(d))
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)
	return d, flaky, srv
}

func newRemote(t *testing.T, url string, opts *RemoteOptions) *Remote {
	t.Helper()
	if opts == nil {
		opts = fastOpts()
	}
	r, err := NewRemote(url, testEngine, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRemoteRoundTrip(t *testing.T) {
	disk, _, srv := newServed(t)
	r := newRemote(t, srv.URL, nil)

	key := "run\x00hostile key \x00 with NULs / slashes?&#"
	payload := []byte(`{"key":"k","scalar":1}`)
	if _, ok := r.Get(key); ok {
		t.Fatal("Get on an empty store reported a hit")
	}
	if err := r.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	// The entry really landed in the served Disk store.
	if data, ok := disk.Get(key); !ok || string(data) != string(payload) {
		t.Fatalf("served Disk store holds %q, %v", data, ok)
	}

	// A second client sharing only the URL — the cross-machine story.
	r2 := newRemote(t, srv.URL, nil)
	if got, ok := r2.Get(key); !ok || string(got) != string(payload) {
		t.Fatalf("second client Get = %q, %v", got, ok)
	}

	m := r.Metrics()
	if m.Hits != 1 || m.Misses != 1 || m.Puts != 1 || m.Errors != 0 || m.Retries != 0 {
		t.Errorf("metrics %+v; want hits=1 misses=1 puts=1 errors=0 retries=0", m)
	}
}

// TestRemoteConditionalPut: re-offering a key the server already holds is
// a no-op answered 204 — the entry file's mtime must not move (a PUT storm
// from many warm workers must not look like fresh writes to GC).
func TestRemoteConditionalPut(t *testing.T) {
	disk, _, srv := newServed(t)
	r := newRemote(t, srv.URL, nil)
	if err := r.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	path := disk.path("k")
	before, err := fileModTime(path)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := r.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	after, err := fileModTime(path)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before) {
		t.Errorf("conditional PUT rewrote the entry: mtime %v -> %v", before, after)
	}
	if m := r.Metrics(); m.Puts != 2 {
		t.Errorf("both puts should count as successful: %+v", m)
	}
}

// TestRemoteEngineFence: a client from a different engine version gets the
// distinct fence status on both verbs, never data; the client degrades the
// Get to a miss and surfaces the Put as an error.
func TestRemoteEngineFence(t *testing.T) {
	_, _, srv := newServed(t)
	good := newRemote(t, srv.URL, nil)
	if err := good.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}

	foreign, err := NewRemote(srv.URL, "flit-engine/other", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := foreign.Get("k"); ok {
		t.Fatal("foreign-engine client read a result through the fence")
	}
	if err := foreign.Put("k2", []byte(`2`)); err == nil ||
		!strings.Contains(err.Error(), "fenced") {
		t.Fatalf("foreign-engine Put error = %v; want a fence rejection", err)
	}
	m := foreign.Metrics()
	if m.Errors != 2 || m.Retries != 0 {
		t.Errorf("fence must be terminal, not retried: %+v", m)
	}

	// The wire status is the distinct one, so clients can tell fence from miss.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+remoteKeyPath("k"), nil)
	req.Header.Set(engineHeader, "flit-engine/other")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != StatusEngineMismatch {
		t.Errorf("fence status = %d; want %d", resp.StatusCode, StatusEngineMismatch)
	}
	if got := resp.Header.Get(engineHeader); got != testEngine {
		t.Errorf("fence response advertises engine %q; want %q", got, testEngine)
	}
}

// TestRemoteFaultModesDegradeToMiss scripts every transport fault the
// harness knows in front of a store that really holds the key: each one
// must read as a miss (fail-open), and the first clean request after the
// script drains must serve the true hit again.
func TestRemoteFaultModesDegradeToMiss(t *testing.T) {
	for _, fault := range []storetest.Fault{
		storetest.Err503, storetest.Stall, storetest.Truncate,
		storetest.Corrupt, storetest.WrongEngine,
	} {
		t.Run(fault.String(), func(t *testing.T) {
			_, flaky, srv := newServed(t)
			r := newRemote(t, srv.URL, nil)
			if err := r.Put("k", []byte(`{"v":1}`)); err != nil {
				t.Fatal(err)
			}
			// Enough copies of the fault to exhaust every retry.
			for i := 0; i < fastOpts().Attempts; i++ {
				flaky.Push(fault)
			}
			if data, ok := r.Get("k"); ok {
				t.Fatalf("fault %v yielded a hit: %q", fault, data)
			}
			if m := r.Metrics(); m.Errors == 0 {
				t.Errorf("fault %v: degraded miss not counted as error: %+v", fault, m)
			}
			if flaky.Pending() > 0 && fault != storetest.Err503 && fault != storetest.Stall {
				// Terminal faults must not be retried: one request consumed.
				if got := flaky.Served(fault); got != 1 {
					t.Errorf("terminal fault %v served %d times; want 1", fault, got)
				}
			}
			flaky.Push() // no-op; script may still hold unconsumed faults for retried kinds
			for flaky.Pending() > 0 {
				r.Get("k") // drain leftovers
			}
			if data, ok := r.Get("k"); !ok || string(data) != `{"v":1}` {
				t.Fatalf("clean request after fault %v = %q, %v; want the true entry", fault, data, ok)
			}
		})
	}
}

// TestRemoteRetriesHeal: transient 503s are retried with backoff and the
// operation still succeeds, counting the retries.
func TestRemoteRetriesHeal(t *testing.T) {
	_, flaky, srv := newServed(t)
	r := newRemote(t, srv.URL, nil)
	if err := r.Put("k", []byte(`7`)); err != nil {
		t.Fatal(err)
	}
	flaky.Push(storetest.Err503, storetest.Err503)
	if data, ok := r.Get("k"); !ok || string(data) != `7` {
		t.Fatalf("Get through transient 503s = %q, %v", data, ok)
	}
	m := r.Metrics()
	if m.Retries != 2 || m.Hits != 1 {
		t.Errorf("metrics %+v; want retries=2 hits=1", m)
	}

	flaky.Push(storetest.Err503)
	if err := r.Put("k2", []byte(`8`)); err != nil {
		t.Fatalf("Put through a transient 503: %v", err)
	}
	if m := r.Metrics(); m.Retries != 3 {
		t.Errorf("Put retry not counted: %+v", m)
	}
}

// TestRemotePutExhausted: a server that never recovers fails the Put with
// an error (the caller's cache counts it and moves on) and a dead server
// (connection refused) degrades the same way on both verbs.
func TestRemotePutExhausted(t *testing.T) {
	_, flaky, srv := newServed(t)
	r := newRemote(t, srv.URL, nil)
	for i := 0; i < 8; i++ {
		flaky.Push(storetest.Err503)
	}
	if err := r.Put("k", []byte(`1`)); err == nil {
		t.Fatal("Put against a permanently failing server reported success")
	}
	if m := r.Metrics(); m.Errors != 1 || m.Retries != int64(fastOpts().Attempts-1) {
		t.Errorf("metrics %+v; want errors=1 retries=%d", m, fastOpts().Attempts-1)
	}

	srv.Close() // now nothing listens: connection refused
	dead := newRemote(t, srv.URL, nil)
	if _, ok := dead.Get("k"); ok {
		t.Fatal("Get against a dead server reported a hit")
	}
	if err := dead.Put("k", []byte(`1`)); err == nil {
		t.Fatal("Put against a dead server reported success")
	}
}

// TestRemoteDeadlineBounds: the per-operation deadline caps total time
// even when every attempt stalls.
func TestRemoteDeadlineBounds(t *testing.T) {
	_, flaky, srv := newServed(t)
	opts := fastOpts()
	opts.Deadline = 120 * time.Millisecond
	opts.Attempts = 100
	r := newRemote(t, srv.URL, opts)
	if err := r.Put("k", []byte(`1`)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		flaky.Push(storetest.Stall)
	}
	start := time.Now()
	if _, ok := r.Get("k"); ok {
		t.Fatal("stalled server yielded a hit")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("deadline did not bound the operation: took %v", took)
	}
}

// TestRemoteOversizedBody: a response larger than MaxBody never becomes a
// hit (and never panics), however honest the rest of the envelope is.
func TestRemoteOversizedBody(t *testing.T) {
	_, _, srv := newServed(t)
	opts := fastOpts()
	opts.MaxBody = 16
	r := newRemote(t, srv.URL, opts)
	big := []byte(fmt.Sprintf(`{"pad":%q}`, strings.Repeat("x", 256)))
	if err := r.Put("k", big); err != nil {
		// The tiny MaxBody also caps the PUT echo read; storing may still
		// succeed — either way the Get below must not produce a hit.
		t.Logf("Put: %v", err)
	}
	if data, ok := r.Get("k"); ok {
		t.Fatalf("oversized body served as a hit: %d bytes", len(data))
	}
}

// TestRemoteConcurrent hammers one server from many goroutines (the -j
// fan-out shape) under -race: every Get answer must be either a miss or
// the exact stored payload.
func TestRemoteConcurrent(t *testing.T) {
	_, flaky, srv := newServed(t)
	flaky.Push(storetest.Err503, storetest.Truncate, storetest.Corrupt, storetest.Stall)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := newRemote(t, srv.URL, nil)
			for i := 0; i < 5; i++ {
				key := fmt.Sprintf("k%d", i)
				payload := fmt.Sprintf(`{"i":%d}`, i)
				r.Put(key, []byte(payload))
				if data, ok := r.Get(key); ok && string(data) != payload {
					t.Errorf("g%d: Get(%s) = %q; want %q or a miss", g, key, data, payload)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestHandlerRejectsDamage: the serving side's own trust boundary —
// malformed paths, wrong methods, and uploads whose checksum disagrees
// with their body must be rejected and never stored.
func TestHandlerRejectsDamage(t *testing.T) {
	disk, _, srv := newServed(t)
	do := func(method, path string, body string, hdr map[string]string) int {
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(engineHeader, testEngine)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := do(http.MethodGet, remotePathPrefix+"not-base64!!!", "", nil); got != http.StatusBadRequest {
		t.Errorf("malformed key path: %d; want 400", got)
	}
	if got := do(http.MethodGet, remotePathPrefix, "", nil); got != http.StatusBadRequest {
		t.Errorf("empty key path: %d; want 400", got)
	}
	if got := do(http.MethodDelete, remoteKeyPath("k"), "", nil); got != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: %d; want 405", got)
	}
	// A PUT whose declared checksum does not match the body (a torn upload).
	if got := do(http.MethodPut, remoteKeyPath("k"), `{"v":1}`,
		map[string]string{sumHeader: sumHex([]byte("something else"))}); got != http.StatusBadRequest {
		t.Errorf("checksum-mismatched PUT: %d; want 400", got)
	}
	if _, ok := disk.Get("k"); ok {
		t.Fatal("a damaged upload was stored")
	}
	// And one without any checksum at all.
	if got := do(http.MethodPut, remoteKeyPath("k"), `{"v":1}`, nil); got != http.StatusBadRequest {
		t.Errorf("sum-less PUT: %d; want 400", got)
	}
}

func TestNewRemoteRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"", "not a url", "ftp://host/x", "http://", "://x", "relative/path"} {
		if _, err := NewRemote(bad, testEngine, nil); err == nil {
			t.Errorf("NewRemote(%q) accepted", bad)
		}
	}
	r, err := NewRemote("http://example.com/prefix/", testEngine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.URL() != "http://example.com/prefix" {
		t.Errorf("URL = %q; want trailing slash trimmed", r.URL())
	}
	if r.Engine() != testEngine {
		t.Errorf("Engine = %q", r.Engine())
	}
}

func TestTierComposition(t *testing.T) {
	if Tier() != nil || Tier(nil, nil) != nil {
		t.Fatal("empty tier composition should be nil (no store)")
	}
	solo := NewMem(0)
	if got := Tier(nil, solo); got != Store(solo) {
		t.Fatal("single-survivor composition should unwrap")
	}

	local, shared := NewMem(0), NewMem(0)
	tier := Tier(local, shared)

	// Write-through: both tiers hold the entry.
	if err := tier.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := local.Get("k"); !ok {
		t.Error("write-through missed the local tier")
	}
	if _, ok := shared.Get("k"); !ok {
		t.Error("write-through missed the shared tier")
	}

	// Read-through fill: a key only the deep tier holds lands in the local
	// tier after one lookup.
	shared.Put("deep", []byte("d"))
	if data, ok := tier.Get("deep"); !ok || string(data) != "d" {
		t.Fatalf("Get(deep) = %q, %v", data, ok)
	}
	if data, ok := local.Get("deep"); !ok || string(data) != "d" {
		t.Errorf("read-through did not fill the local tier: %q, %v", data, ok)
	}

	if _, ok := tier.Get("absent"); ok {
		t.Error("miss in every tier reported a hit")
	}

	// A failing tier must not block the others: puts still land locally,
	// and the error is reported.
	failing := Tier(local, failStore{})
	if err := failing.Put("k2", []byte("v2")); err == nil {
		t.Error("failing deep tier's Put error swallowed")
	}
	if _, ok := local.Get("k2"); !ok {
		t.Error("local tier skipped after a deep-tier failure")
	}
}

// failStore errors every Put and misses every Get.
type failStore struct{}

func (failStore) Get(string) ([]byte, bool) { return nil, false }
func (failStore) Put(string, []byte) error  { return fmt.Errorf("failStore: down") }

func fileModTime(path string) (time.Time, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return time.Time{}, err
	}
	return fi.ModTime(), nil
}
