package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/flit"
)

// TestMFEMStudySmoke replays the §3.1–§3.3 study end to end: Table 1,
// Figures 5 and 6, and the Finding 2 bisect must all render.
func TestMFEMStudySmoke(t *testing.T) {
	var b strings.Builder
	if err := run(&b, experiments.Default()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 1 — compiler summary:",
		"Figure 5 —",
		"Figure 6 —",
		"bisecting Example13",
		// Finding 2: the single-function blame.
		"AddMult_a_AAt",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestMFEMStudyShardMergeEquivalence is the study-scale acceptance proof:
// the full §3.1–§3.3 regeneration — 244-compilation matrix, Table 1,
// Figures 5/6, and the Finding 2 bisect — run as two shards and merged is
// byte-identical to the unsharded run, with every matrix evaluation
// answered from the shard artifacts.
func TestMFEMStudyShardMergeEquivalence(t *testing.T) {
	var want strings.Builder
	if err := run(&want, experiments.NewEngine(1)); err != nil {
		t.Fatal(err)
	}

	const n = 2
	arts := make([]*flit.Artifact, n)
	for i := 0; i < n; i++ {
		eng := experiments.NewEngine(2)
		eng.SetShard(exec.Shard{Index: i, Count: n})
		if err := run(io.Discard, eng); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		// Round-trip through JSON bytes — the merge consumes exactly what a
		// remote shard would ship.
		var buf bytes.Buffer
		if err := eng.ExportArtifact([]string{"mfem-study"}).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		a, err := flit.ReadArtifact(&buf)
		if err != nil {
			t.Fatal(err)
		}
		arts[i] = a
	}

	merged := experiments.NewEngine(1)
	if err := merged.ImportArtifacts(arts...); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := run(&got, merged); err != nil {
		t.Fatalf("merged replay: %v", err)
	}
	if got.String() != want.String() {
		t.Error("merged study output differs from the unsharded run")
	}
	// The matrix evaluations must all come from the artifacts; only the
	// replayed Finding 2 bisect (adaptive, not matrix-shardable) may
	// compute — and both shards ran it too, so even that should hit.
	if m := merged.CacheMetrics(); m.Runs.Misses != 0 {
		t.Errorf("merged replay recomputed %d runs; shards did not cover the study", m.Runs.Misses)
	}
}
