package bisect

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/comp"
	"repro/internal/exec"
)

// Speculative-vs-sequential equivalence: a speculating Searcher must
// produce the identical findings AND the identical paper execution count
// as the sequential one at every parallelism — speculation buys wall-clock
// only. Run under -race (scripts/ci.sh), these tests also prove the
// background evaluation engine is data-race-free.

func equalFindings(t *testing.T, ctx string, seq, spec []Finding) {
	t.Helper()
	if len(seq) != len(spec) {
		t.Fatalf("%s: %d findings (seq) != %d (spec)", ctx, len(seq), len(spec))
	}
	for i := range seq {
		if seq[i] != spec[i] {
			t.Fatalf("%s: finding %d: %+v (seq) != %+v (spec)", ctx, i, seq[i], spec[i])
		}
	}
}

func TestSpeculativeAllEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, j := range []int{2, 8} {
		sub := exec.New(j).Submitter()
		for trial := 0; trial < 60; trial++ {
			n := 1 + rng.Intn(200)
			k := rng.Intn(min(n, 8) + 1)
			items := makeItems(n)
			blamed := pickBlame(items, k, rng)
			fn := blameTest(items, blamed)

			seq := NewSearcher(fn)
			seqFound, seqErr := seq.All(items)
			spec := NewSpeculativeSearcher(fn, sub)
			specFound, specErr := spec.All(items)

			if (seqErr == nil) != (specErr == nil) {
				t.Fatalf("j=%d trial %d: err %v (seq) vs %v (spec)", j, trial, seqErr, specErr)
			}
			equalFindings(t, "All", seqFound, specFound)
			if seq.Execs() != spec.Execs() {
				t.Fatalf("j=%d trial %d (n=%d k=%d): paper execs %d (seq) != %d (spec)",
					j, trial, n, k, seq.Execs(), spec.Execs())
			}
			if seq.SpecExecs() != 0 {
				t.Fatalf("sequential searcher reports %d speculative execs", seq.SpecExecs())
			}
		}
	}
}

func TestSpeculativeBiggestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sub := exec.New(8).Submitter()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(160)
		kBlame := 1 + rng.Intn(6)
		items := makeItems(n)
		blamed := pickBlame(items, kBlame, rng)
		fn := blameTest(items, blamed)
		for _, k := range []int{1, 2, 3, 0} {
			seq := NewSearcher(fn)
			seqFound, err := seq.Biggest(items, k)
			if err != nil {
				t.Fatal(err)
			}
			spec := NewSpeculativeSearcher(fn, sub)
			specFound, err := spec.Biggest(items, k)
			if err != nil {
				t.Fatal(err)
			}
			equalFindings(t, "Biggest", seqFound, specFound)
			if seq.Execs() != spec.Execs() {
				t.Fatalf("trial %d k=%d: paper execs %d (seq) != %d (spec)",
					trial, k, seq.Execs(), spec.Execs())
			}
		}
	}
}

// TestSpeculativeErrorEquivalence: a deterministic Test error must abort
// the speculative search exactly where it aborts the sequential one — same
// error identity, same paper count — even though background probes may
// have hit the error too (errors are never memoized, matching the
// sequential "every crashed attempt counts" accounting).
func TestSpeculativeErrorEquivalence(t *testing.T) {
	boom := errors.New("segfault")
	items := makeItems(32)
	fn := func(set []string) (float64, error) {
		if len(set) <= 2 {
			return 0, boom
		}
		return 1, nil
	}
	seq := NewSearcher(fn)
	_, seqErr := seq.All(items)
	spec := NewSpeculativeSearcher(fn, exec.New(8).Submitter())
	_, specErr := spec.All(items)
	if !errors.Is(seqErr, boom) || !errors.Is(specErr, boom) {
		t.Fatalf("errors differ: %v (seq) vs %v (spec)", seqErr, specErr)
	}
	if seq.Execs() != spec.Execs() {
		t.Fatalf("paper execs at abort: %d (seq) != %d (spec)", seq.Execs(), spec.Execs())
	}
}

// TestSpeculativeSearcherNilSubmitter: a nil submitter degrades to the
// plain sequential Searcher, byte for byte and count for count.
func TestSpeculativeSearcherNilSubmitter(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items := makeItems(64)
	blamed := pickBlame(items, 4, rng)
	fn := blameTest(items, blamed)
	a := NewSearcher(fn)
	b := NewSpeculativeSearcher(fn, nil)
	fa, err := a.All(items)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.All(items)
	if err != nil {
		t.Fatal(err)
	}
	equalFindings(t, "nil submitter", fa, fb)
	if a.Execs() != b.Execs() || b.SpecExecs() != 0 {
		t.Fatalf("execs %d/%d spec %d", a.Execs(), b.Execs(), b.SpecExecs())
	}
}

// TestSpeculationPerformsExtraWork: with slow evaluations and real blame,
// the speculative engine does run background probes (SpecExecs > 0) and
// still reports the sequential answer. This pins down that speculation is
// actually engaged — equivalence alone would also pass if it were inert.
func TestSpeculationPerformsExtraWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := makeItems(128)
	blamed := pickBlame(items, 4, rng)
	inner := blameTest(items, blamed)
	fn := func(set []string) (float64, error) {
		time.Sleep(200 * time.Microsecond) // let background probes overlap
		return inner(set)
	}
	s := NewSpeculativeSearcher(fn, exec.New(8).Submitter())
	found, err := s.All(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 4 {
		t.Fatalf("found %d items, want 4", len(found))
	}
	if s.SpecExecs() == 0 {
		t.Fatal("speculation never ran a background probe")
	}
	ref := NewSearcher(inner)
	if _, err := ref.All(items); err != nil {
		t.Fatal(err)
	}
	if s.Execs() != ref.Execs() {
		t.Fatalf("paper execs %d != sequential %d", s.Execs(), ref.Execs())
	}
}

// TestDriverSpeculativeEquivalence runs the full hierarchical search with
// a speculating pool against the sequential driver for every variable
// compilation of the driver program: identical Reports (files, symbols,
// statuses, the paper's Execs) are required; only SpecExecs may differ.
func TestDriverSpeculativeEquivalence(t *testing.T) {
	p := driverProgram()
	vars := variableCompilations(t, p)
	for _, vc := range vars {
		seqSearch := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(), Variable: vc}
		seqReport, seqErr := seqSearch.Run()
		specSearch := &Search{Prog: p, Test: driverTest{}, Baseline: comp.Baseline(),
			Variable: vc, Pool: exec.New(8)}
		specReport, specErr := specSearch.Run()
		if (seqErr == nil) != (specErr == nil) {
			t.Fatalf("%s: err %v (seq) vs %v (spec)", vc, seqErr, specErr)
		}
		if seqReport.Execs != specReport.Execs {
			t.Errorf("%s: paper execs %d (seq) != %d (spec)", vc, seqReport.Execs, specReport.Execs)
		}
		if seqReport.SpecExecs != 0 {
			t.Errorf("%s: sequential driver reports %d speculative execs", vc, seqReport.SpecExecs)
		}
		if len(seqReport.Files) != len(specReport.Files) {
			t.Fatalf("%s: %d files (seq) != %d (spec)", vc, len(seqReport.Files), len(specReport.Files))
		}
		for i := range seqReport.Files {
			sf, pf := seqReport.Files[i], specReport.Files[i]
			if sf.File != pf.File || sf.Value != pf.Value || sf.Status != pf.Status {
				t.Errorf("%s file %d: (%s %g %v) != (%s %g %v)",
					vc, i, sf.File, sf.Value, sf.Status, pf.File, pf.Value, pf.Status)
			}
			if len(sf.Symbols) != len(pf.Symbols) {
				t.Fatalf("%s %s: %d symbols != %d", vc, sf.File, len(sf.Symbols), len(pf.Symbols))
			}
			for j := range sf.Symbols {
				if sf.Symbols[j] != pf.Symbols[j] {
					t.Errorf("%s %s symbol %d: %v != %v", vc, sf.File, j, sf.Symbols[j], pf.Symbols[j])
				}
			}
		}
	}
}

// TestKeyCanonicalAcrossOrders: the id-based memo keys must stay
// order-independent (the memoization contract canonical() provided) while
// building in O(n) for the order-preserving subsets the search generates.
func TestKeyCanonicalAcrossOrders(t *testing.T) {
	s := NewSearcher(func([]string) (float64, error) { return 0, nil })
	k1 := s.key([]string{"b", "a", "c"})
	k2 := s.key([]string{"c", "b", "a"})
	k3 := s.key([]string{"a", "b", "c"})
	if k1 != k2 || k2 != k3 {
		t.Fatalf("permutations keyed differently: %q %q %q", k1, k2, k3)
	}
	if s.key([]string{"a", "b"}) == k1 {
		t.Fatal("subset collides with superset")
	}
	if s.key([]string{"a", "a"}) == s.key([]string{"a"}) {
		t.Fatal("duplicate items collide with the singleton")
	}
}

// BenchmarkSpeculativeSearcher measures the latency win on a Test function
// dominated by waiting (as real program executions are): the speculative
// engine overlaps the sequential halving chain's probes, so even a
// single-CPU host shows the effect.
func BenchmarkSpeculativeSearcher(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	items := makeItems(96)
	blamed := pickBlame(items, 3, rng)
	inner := blameTest(items, blamed)
	fn := func(set []string) (float64, error) {
		time.Sleep(100 * time.Microsecond)
		return inner(set)
	}
	run := func(b *testing.B, mk func() *Searcher) {
		for i := 0; i < b.N; i++ {
			s := mk()
			if _, err := s.All(items); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("sequential", func(b *testing.B) {
		run(b, func() *Searcher { return NewSearcher(fn) })
	})
	b.Run("speculative-j8", func(b *testing.B) {
		run(b, func() *Searcher { return NewSpeculativeSearcher(fn, exec.New(8).Submitter()) })
	})
}
