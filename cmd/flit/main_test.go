package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/comp"
)

func TestParseCompilation(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    comp.Compilation
		wantErr bool
	}{
		{
			name: "compiler and level",
			in:   "g++ -O2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O2"},
		},
		{
			name: "single switch",
			in:   "g++ -O3 -mavx2",
			want: comp.Compilation{Compiler: "g++", OptLevel: "-O3", Switches: "-mavx2"},
		},
		{
			name: "multiple switches joined",
			in:   "icpc -O2 -fp-model fast=2",
			want: comp.Compilation{Compiler: "icpc", OptLevel: "-O2", Switches: "-fp-model fast=2"},
		},
		{
			name: "extra whitespace",
			in:   "  clang++   -O1  ",
			want: comp.Compilation{Compiler: "clang++", OptLevel: "-O1"},
		},
		{name: "empty", in: "", wantErr: true},
		{name: "only compiler", in: "g++", wantErr: true},
		{name: "only whitespace", in: "   ", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parseCompilation(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseCompilation(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseCompilation(%q): %v", tt.in, err)
			}
			if got != tt.want {
				t.Errorf("parseCompilation(%q) = %+v, want %+v", tt.in, got, tt.want)
			}
		})
	}
}

func TestRunUsageExit(t *testing.T) {
	tests := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string // substring expected on stderr
	}{
		{name: "no arguments", args: nil, wantCode: 2, wantErr: "usage:"},
		{name: "unknown subcommand", args: []string{"frobnicate"}, wantCode: 2, wantErr: "usage:"},
		{name: "bisect without flags", args: []string{"bisect"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect missing comp", args: []string{"bisect", "-test", "Example13"}, wantCode: 1,
			wantErr: "bisect requires -test and -comp"},
		{name: "bisect malformed compilation", args: []string{"bisect", "-test", "Example13", "-comp", "g++"},
			wantCode: 1, wantErr: "want 'compiler -Olevel"},
		{name: "run with unknown flag", args: []string{"run", "-bogus"}, wantCode: 2,
			wantErr: "flag provided but not defined"},
		{name: "bisect with bad j value", args: []string{"bisect", "-j", "x"}, wantCode: 2,
			wantErr: "invalid value"},
		{name: "experiments unknown name", args: []string{"experiments", "no-such-table"}, wantCode: 1,
			wantErr: `unknown experiment "no-such-table"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tt.args, &stdout, &stderr)
			if code != tt.wantCode {
				t.Errorf("run(%v) = %d, want %d (stderr: %s)", tt.args, code, tt.wantCode, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.wantErr) {
				t.Errorf("stderr %q does not contain %q", stderr.String(), tt.wantErr)
			}
			// Flag-parse diagnostics come from the FlagSet itself and must
			// not be echoed a second time by the dispatcher.
			if n := strings.Count(stderr.String(), tt.wantErr); n > 1 {
				t.Errorf("diagnostic %q printed %d times", tt.wantErr, n)
			}
		})
	}
}

// TestHelpExitsZero: an explicit -h prints usage and succeeds, matching
// the conventional contract scripts rely on.
func TestHelpExitsZero(t *testing.T) {
	for _, sub := range []string{"run", "bisect", "experiments"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{sub, "-h"}, &stdout, &stderr); code != 0 {
			t.Errorf("%s -h: exit %d, want 0", sub, code)
		}
		if !strings.Contains(stderr.String(), "-j int") {
			t.Errorf("%s -h: usage not printed: %q", sub, stderr.String())
		}
	}
}

// TestExperimentsSubcommand drives a cheap experiment end to end through
// the real dispatcher, including the -j flag.
func TestExperimentsSubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"experiments", "-j", "2", "table3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"=== table3 ===", "source files", "total functions"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBisectSubcommandUnknownTest validates the test-name check behind
// fully-formed flags.
func TestBisectSubcommandUnknownTest(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-test", "Example99", "-comp", "g++ -O3"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `unknown test "Example99"`) {
		t.Errorf("stderr: %s", stderr.String())
	}
}

// TestBisectSubcommandEndToEnd root-causes Example13 under an FMA-enabling
// compilation — Finding 2's blame must appear on stdout.
func TestBisectSubcommandEndToEnd(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"bisect", "-j", "4", "-test", "Example13", "-comp", "g++ -O3 -mavx2 -mfma"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "executions:") {
		t.Errorf("missing execution count:\n%s", out)
	}
	if !strings.Contains(out, "AddMult_a_AAt") {
		t.Errorf("Finding 2 blame (AddMult_a_AAt) not reported:\n%s", out)
	}
}
