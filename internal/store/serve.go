package store

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Handler returns the HTTP serving side of a Disk store: the other end of
// the Remote client's wire protocol, mounted by `flit store serve`. It is
// a thin, stateless shim over the Disk backend, so every durability
// property is inherited rather than re-implemented — writes are the same
// atomic temp+rename, reads go through the same envelope validation (a
// corrupt on-disk entry serves a 404, not a lie), and the engine fence
// the Disk manifest enforces at Open is re-checked per request against
// the client's X-Flit-Engine header, answered with StatusEngineMismatch
// so a foreign client can tell a fence from a miss.
func Handler(d *Disk) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(remotePathPrefix, func(w http.ResponseWriter, req *http.Request) {
		serveObject(d, w, req)
	})
	return mux
}

// serveObject handles one GET or PUT of /v1/objects/<base64url(key)>.
func serveObject(d *Disk, w http.ResponseWriter, req *http.Request) {
	w.Header().Set(engineHeader, d.Engine())
	key, ok := remoteKeyFromPath(req.URL.Path)
	if !ok {
		http.Error(w, "store: malformed object path", http.StatusBadRequest)
		return
	}
	if got := req.Header.Get(engineHeader); got != d.Engine() {
		http.Error(w, fmt.Sprintf("store: this store is fenced to engine %q, request is from %q: results are not interchangeable",
			d.Engine(), got), StatusEngineMismatch)
		return
	}
	switch req.Method {
	case http.MethodGet:
		data, ok := d.Get(key)
		if !ok {
			http.Error(w, "store: no such entry", http.StatusNotFound)
			return
		}
		buf, err := json.Marshal(entry{Engine: d.Engine(), Key: key, Sum: sumHex(data), Data: json.RawMessage(data)})
		if err != nil {
			http.Error(w, "store: encoding envelope: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(sumHeader, sumHex(data))
		w.Write(buf)
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, DefaultMaxBody))
		if err != nil {
			http.Error(w, "store: reading payload: "+err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		// The declared checksum must match what actually arrived: a torn or
		// bit-flipped upload is rejected, never stored. (The same check the
		// client applies to downloads, pointed the other way.)
		if sum := req.Header.Get(sumHeader); sum != sumHex(body) {
			http.Error(w, "store: payload checksum mismatch", http.StatusBadRequest)
			return
		}
		// Conditional PUT: a key the store already holds a valid entry for
		// is a no-op — entries are pure functions of their key, so the
		// bytes on disk are already the bytes being offered.
		if _, ok := d.Get(key); ok {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		if err := d.Put(key, body); err != nil {
			http.Error(w, "store: persisting entry: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "store: only GET and PUT", http.StatusMethodNotAllowed)
	}
}
