# Tier-1+ gate for the reproduction (see ROADMAP.md). `make ci` is what the
# repository considers green; scripts/ci.sh is the same gate as a script.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is concurrent; everything must be race-clean at every -j.
race:
	$(GO) test -race ./...

# One iteration of the cheap benchmarks: keeps the harness compiling and
# running without paying for the full study regeneration.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkTable3CodeStats|BenchmarkMotivation' -benchtime 1x .

# The full benchmark suite regenerates every table and figure of the paper
# and times the parallel engine (BenchmarkParallelEngineSweep).
bench:
	$(GO) test -run NONE -bench . -benchtime 1x .
