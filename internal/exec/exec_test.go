package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestPoolWorkers(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool workers = %d, want 1", nilPool.Workers())
	}
	if (&Pool{}).Workers() != 1 {
		t.Errorf("zero pool workers = %d, want 1", (&Pool{}).Workers())
	}
	if Sequential().Workers() != 1 {
		t.Errorf("Sequential workers = %d, want 1", Sequential().Workers())
	}
	if New(4).Workers() != 4 {
		t.Errorf("New(4) workers = %d, want 4", New(4).Workers())
	}
	if New(0).Workers() < 1 {
		t.Errorf("New(0) workers = %d, want >= 1", New(0).Workers())
	}
}

func TestForEachRunsAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		const n = 100
		var seen [n]atomic.Int32
		err := p.ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, max atomic.Int32
	err := p.ForEach(64, func(i int) error {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Errorf("observed %d concurrent evaluations, bound is %d", got, workers)
	}
}

func TestForEachDeterministicError(t *testing.T) {
	// The lowest failing index must win regardless of worker count —
	// matching what a sequential loop would have stopped on.
	for _, workers := range []int{1, 4} {
		p := New(workers)
		err := p.ForEach(50, func(i int) error {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return fmt.Errorf("failed at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "failed at 3" {
			t.Errorf("workers=%d: err = %v, want failure of index 3", workers, err)
		}
	}
}

func TestMapOrdersResultsBySubmission(t *testing.T) {
	for _, workers := range []int{1, 5} {
		p := New(workers)
		out, err := Map(p, 40, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(New(4), 10, func(i int) (int, error) {
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Fatalf("out = %v, want nil on error", out)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache[int]()
	var computed atomic.Int32
	p := New(8)
	err := p.ForEach(64, func(i int) error {
		v, err := c.Do("shared", func() (int, error) {
			computed.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			return fmt.Errorf("got %d, %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 1 {
		t.Errorf("compute ran %d times, want 1", got)
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d keys, want 1", c.Len())
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != 63 {
		t.Errorf("stats = %d hits / %d misses, want 63/1", hits, misses)
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache[int]()
	boom := errors.New("deterministic failure")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Do("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1 (errors are memoized)", calls)
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache[string]
	calls := 0
	for i := 0; i < 2; i++ {
		v, err := c.Do("k", func() (string, error) {
			calls++
			return "v", nil
		})
		if err != nil || v != "v" {
			t.Fatal(v, err)
		}
	}
	if calls != 2 {
		t.Errorf("nil cache memoized (calls = %d)", calls)
	}
	if c.Len() != 0 {
		t.Error("nil cache Len != 0")
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache[int]()
	out, err := Map(New(6), 30, func(i int) (int, error) {
		return c.Do(fmt.Sprintf("key-%d", i%10), func() (int, error) {
			return i % 10, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i%10 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i%10)
		}
	}
	if c.Len() != 10 {
		t.Errorf("cache holds %d keys, want 10", c.Len())
	}
}
