package experiments

import (
	"fmt"
	"strings"
)

// Sweep runs the experiments suite end to end — the MFEM matrix with
// Table 1 and Figures 5/6, the Table 2 bisect characterization (capped at
// sweepTable2Limit searches per compiler; `flit experiments table2` runs
// all of them), the Laghos case study (motivation, Table 4, NaN bug), and a
// sampled LULESH injection campaign — on a fresh engine with the given
// parallelism, and renders everything into one digest string.
//
// The digest is the reproduction's end-to-end determinism witness: because
// every evaluation is a pure function of (compilation, test) and results
// are collected in submission order, Sweep(1) and Sweep(n) return
// byte-identical strings. The equivalence tests assert exactly that, and
// the benchmarks time it at different -j values.
func Sweep(parallelism int) (string, error) {
	return NewEngine(parallelism).SweepDigest()
}

// SweepDigest renders the full experiments suite of this engine.
func (e *Engine) SweepDigest() (string, error) {
	var b strings.Builder

	rows, err := e.Table1()
	if err != nil {
		return "", fmt.Errorf("table1: %w", err)
	}
	b.WriteString("== Table 1 ==\n")
	b.WriteString(RenderTable1(rows))

	fig5, err := e.Figure5()
	if err != nil {
		return "", fmt.Errorf("figure5: %w", err)
	}
	repro := 0
	for _, r := range fig5 {
		if r.FastestIsReproducible {
			repro++
		}
	}
	fmt.Fprintf(&b, "== Figure 5 ==\nfastest-reproducible: %d of 19\n", repro)

	fig6, err := e.Figure6()
	if err != nil {
		return "", fmt.Errorf("figure6: %w", err)
	}
	b.WriteString("== Figure 6 ==\n")
	for _, r := range fig6 {
		fmt.Fprintf(&b, "ex%02d variable=%d min=%.6g med=%.6g max=%.6g\n",
			r.Example, r.VariableComps, r.MinErr, r.MedianErr, r.MaxErr)
	}

	t2, total, err := e.Table2(sweepTable2Limit)
	if err != nil {
		return "", fmt.Errorf("table2: %w", err)
	}
	fmt.Fprintf(&b, "== Table 2 (first %d searches per compiler) ==\nvariable pairs: %d\n",
		sweepTable2Limit, total)
	b.WriteString(RenderTable2(t2))

	mo, err := RunMotivation()
	if err != nil {
		return "", fmt.Errorf("motivation: %w", err)
	}
	fmt.Fprintf(&b, "== Motivation ==\nrel-diff=%.6g speedup=%.6g\n",
		mo.RelDiff, mo.SpeedupFactor)

	t4, err := e.Table4()
	if err != nil {
		return "", fmt.Errorf("table4: %w", err)
	}
	b.WriteString("== Table 4 ==\n")
	b.WriteString(RenderTable4(t4))

	nan, err := e.RunNaNBug()
	if err != nil {
		return "", fmt.Errorf("nan bug: %w", err)
	}
	fmt.Fprintf(&b, "== NaN bug ==\nexecs=%d symbols=%v\n", nan.Execs, nan.Symbols)

	t5, err := e.Table5(sweepTable5Stride)
	if err != nil {
		return "", fmt.Errorf("table5: %w", err)
	}
	fmt.Fprintf(&b, "== Table 5 (sampled, stride %d) ==\n", sweepTable5Stride)
	b.WriteString(RenderTable5(t5))

	return b.String(), nil
}

// Sweep sampling knobs: enough work that every subsystem (matrix runner,
// file/symbol bisect, injection campaign) contributes materially, small
// enough that the equivalence test can afford to run the sweep twice under
// the race detector.
const (
	sweepTable2Limit  = 30
	sweepTable5Stride = 13
)
