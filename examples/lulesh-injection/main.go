// lulesh-injection reproduces the paper's §3.5 controlled-injection study
// on a sampled site set: plant x OP' ε perturbations at static FP
// instructions of the mini-LULESH proxy, ask FLiT Bisect to find them, and
// score precision/recall. Run `flit experiments table5` (or the
// BenchmarkTable5Injection bench) for the full 4,376-run campaign.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/apps/lulesh"
	"repro/internal/experiments"
	"repro/internal/fp"
	"repro/internal/inject"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	sites := inject.EnumerateSites(lulesh.Program())
	fmt.Fprintf(w, "enumerated %d injection sites (paper: 1,094); %d total runs with 4 OP' each\n",
		len(sites), len(sites)*4)

	// A couple of illustrative single injections first.
	study := experiments.LULESHStudy()
	for _, probe := range []struct {
		site inject.Site
		op   fp.InjectOp
	}{
		{inject.Site{Symbol: "CalcAccelerationForNodes", OpIndex: 2}, fp.InjMul},
		{inject.Site{Symbol: "CalcEnergyForElems", OpIndex: 5}, fp.InjAdd},
		{inject.Site{Symbol: "CalcElemNodeNormals", OpIndex: 0}, fp.InjDiv},
	} {
		rep := study.RunOne(probe.site, probe.op)
		if rep.Err != nil {
			return rep.Err
		}
		fmt.Fprintf(w, "  inject %c at %s op%d: %s (execs %d, found %v)\n",
			byte(probe.op), probe.site.Symbol, probe.site.OpIndex,
			rep.Outcome, rep.Execs, rep.Found)
	}

	// Sampled campaign: every 7th site x 4 operations.
	fmt.Fprintln(w, "\nsampled campaign (every 7th site):")
	sum, err := experiments.Table5(7)
	if err != nil {
		return err
	}
	fmt.Fprint(w, experiments.RenderTable5(sum))
	return nil
}
