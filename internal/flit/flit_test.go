package flit

import (
	"math"
	"testing"

	"repro/internal/comp"
	"repro/internal/link"
	"repro/internal/prog"
)

// miniProgram is a synthetic application: Kernel computes a long dot
// product (reduction, mul-add) so vectorizing/contracting compilations
// perturb it; Smooth is value-safe straight arithmetic.
func miniProgram() *prog.Program {
	p := prog.New("mini")
	p.AddFile("kernel.cpp",
		&prog.Symbol{Name: "Kernel", Exported: true, Work: 5, FPOps: 8,
			Features: prog.Features{Reduction: true, MulAdd: true, ShortExpr: true}},
	)
	p.AddFile("smooth.cpp",
		&prog.Symbol{Name: "Smooth", Exported: true, Work: 2, FPOps: 4},
	)
	return p
}

// dotTest exercises Kernel through the FLiT TestCase protocol.
type dotTest struct {
	prog *prog.Program
}

func (d *dotTest) Name() string         { return "DotTest" }
func (d *dotTest) Root() string         { return "Kernel" }
func (d *dotTest) GetInputsPerRun() int { return 4 }
func (d *dotTest) GetDefaultInput() []float64 {
	in := make([]float64, 8) // 2 data-driven chunks of 4
	for i := range in {
		in[i] = 0.1*float64(i) + 0.05
	}
	return in
}

func (d *dotTest) Run(input []float64, m *link.Machine) (Result, error) {
	env, done := m.Fn("Kernel")
	defer done()
	xs := make([]float64, 600)
	ys := make([]float64, 600)
	seed := input[0] + input[1]
	for i := range xs {
		xs[i] = math.Sin(seed + float64(i)*input[2])
		ys[i] = math.Cos(seed - float64(i)*input[3])
	}
	v := env.Dot(xs, ys)
	w := env.Sum3(v, input[0], input[1])
	return VecResult([]float64{v, w}), nil
}

func (d *dotTest) Compare(baseline, other Result) float64 {
	return L2Diff(baseline, other)
}

func newSuite() *Suite {
	p := miniProgram()
	return &Suite{
		Prog:      p,
		Tests:     []TestCase{&dotTest{prog: p}},
		Baseline:  comp.Baseline(),
		Reference: comp.PerfReference(),
	}
}

func TestL2Diff(t *testing.T) {
	a := VecResult([]float64{1, 2, 3})
	b := VecResult([]float64{1, 2, 3})
	if L2Diff(a, b) != 0 {
		t.Fatal("identical vectors not equal")
	}
	c := VecResult([]float64{1, 2, 4})
	if L2Diff(a, c) != 1 {
		t.Fatalf("L2Diff = %g, want 1", L2Diff(a, c))
	}
	if !math.IsInf(L2Diff(a, VecResult([]float64{1, 2})), 1) {
		t.Fatal("length mismatch should be +Inf")
	}
	if !math.IsInf(L2Diff(a, ScalarResult(1)), 1) {
		t.Fatal("kind mismatch should be +Inf")
	}
	if L2Diff(ScalarResult(2), ScalarResult(2.5)) != 0.5 {
		t.Fatal("scalar diff wrong")
	}
	if !math.IsInf(L2Diff(ScalarResult(1), ScalarResult(math.NaN())), 1) {
		t.Fatal("NaN should be maximal disagreement")
	}
	if !math.IsInf(L2Diff(a, VecResult([]float64{1, math.NaN(), 3})), 1) {
		t.Fatal("NaN element should be maximal disagreement")
	}
}

func TestRoundSig(t *testing.T) {
	cases := []struct {
		x    float64
		n    int
		want float64
	}{
		{123456, 2, 120000},
		{123456, 3, 123000},
		{0.0012345, 2, 0.0012},
		{-9876.5, 3, -9880},
		{0, 5, 0},
		{1.5, 0, 1.5}, // n<=0: unchanged
	}
	for _, c := range cases {
		if got := RoundSig(c.x, c.n); math.Abs(got-c.want) > math.Abs(c.want)*1e-12 {
			t.Errorf("RoundSig(%g,%d) = %g, want %g", c.x, c.n, got, c.want)
		}
	}
	if !math.IsNaN(RoundSig(math.NaN(), 3)) {
		t.Error("RoundSig(NaN) should stay NaN")
	}
	if !math.IsInf(RoundSig(math.Inf(1), 3), 1) {
		t.Error("RoundSig(Inf) should stay Inf")
	}
}

func TestDigitL2Diff(t *testing.T) {
	a := ScalarResult(129664.9)
	b := ScalarResult(129664.3) // differs only beyond 6 significant digits
	if DigitL2Diff(4)(a, b) != 0 {
		t.Fatal("4-digit compare saw a difference")
	}
	if DigitL2Diff(0)(a, b) == 0 {
		t.Fatal("full-precision compare missed the difference")
	}
	c := ScalarResult(144174.9) // 11.2% off: visible at 2 digits
	if DigitL2Diff(2)(a, c) == 0 {
		t.Fatal("2-digit compare missed an 11% difference")
	}
}

func TestResultNorm(t *testing.T) {
	if VecResult([]float64{3, 4}).Norm() != 5 {
		t.Fatal("vec norm wrong")
	}
	if ScalarResult(-7).Norm() != 7 {
		t.Fatal("scalar norm wrong")
	}
}

func TestRunAllDataDriven(t *testing.T) {
	s := newSuite()
	ex, err := link.FullBuild(s.Prog, s.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunAll(s.Tests[0], ex)
	if err != nil {
		t.Fatal(err)
	}
	// 2 chunks x 2 values each.
	if len(r.Vec) != 4 {
		t.Fatalf("data-driven result has %d values, want 4", len(r.Vec))
	}
}

func TestBaselineComparesEqualToItself(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix([]comp.Compilation{s.Baseline})
	if err != nil {
		t.Fatal(err)
	}
	runs := res.ForTest("DotTest")
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].Variable() || runs[0].CompareVal != 0 {
		t.Fatalf("baseline vs itself: compare = %g", runs[0].CompareVal)
	}
}

func TestMatrixFindsVariability(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	stats := res.CompilerRunStats()
	total := 0
	for _, c := range []string{comp.GCC, comp.Clang, comp.ICPC} {
		v := stats[c]
		if v[1] == 0 {
			t.Fatalf("no runs recorded for %s", c)
		}
		total += v[0]
	}
	if total == 0 {
		t.Fatal("the full matrix produced no variability at all")
	}
	// icpc must be the most variable compiler; clang the least (Table 1).
	if !(stats[comp.ICPC][0] > stats[comp.GCC][0] && stats[comp.GCC][0] >= stats[comp.Clang][0]) {
		t.Fatalf("variability ordering wrong: %v", stats)
	}
	// Plain higher gcc opt levels stay bitwise equal.
	for _, rr := range res.ForTest("DotTest") {
		if rr.Comp.Compiler == comp.GCC && rr.Comp.Switches == "" && rr.Variable() {
			t.Fatalf("plain %s produced variability", rr.Comp)
		}
	}
}

func TestSpeedupAndSorting(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix()[:80])
	if err != nil {
		t.Fatal(err)
	}
	sorted := res.SortedBySpeed("DotTest")
	if len(sorted) == 0 {
		t.Fatal("no sorted runs")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Time < sorted[i].Time {
			t.Fatal("SortedBySpeed not slowest-first")
		}
	}
	// -O0 must be slower than -O2 reference: speedup < 1.
	for _, rr := range sorted {
		if rr.Comp == comp.Baseline() && res.Speedup(rr) >= 1 {
			t.Fatalf("-O0 speedup %g >= 1", res.Speedup(rr))
		}
	}
}

func TestBestAverageCompilation(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	for _, compiler := range []string{comp.GCC, comp.Clang, comp.ICPC} {
		best, avg := res.BestAverageCompilation(compiler)
		if best.Compiler != compiler {
			t.Fatalf("best compilation for %s is %s", compiler, best)
		}
		if avg <= 0.9 {
			t.Fatalf("best average speedup for %s = %g, implausibly slow", compiler, avg)
		}
		if best.OptLevel == "-O0" {
			t.Fatalf("best compilation for %s is -O0", compiler)
		}
	}
}

func TestFastestEqualAndVariable(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	eq, ok := res.FastestEqual("DotTest", comp.GCC)
	if !ok {
		t.Fatal("no bitwise-equal gcc run found")
	}
	if eq.Variable() {
		t.Fatal("FastestEqual returned a variable run")
	}
	v, ok := res.FastestVariable("DotTest", "")
	if !ok {
		t.Fatal("no variable run found")
	}
	if !v.Variable() {
		t.Fatal("FastestVariable returned an equal run")
	}
	if _, ok := res.FastestVariable("NoSuchTest", ""); ok {
		t.Fatal("unknown test should report no runs")
	}
}

func TestErrorSpread(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	min, med, max, ok := res.ErrorSpread("DotTest")
	if !ok {
		t.Fatal("no variable runs for spread")
	}
	if !(min <= med && med <= max) {
		t.Fatalf("spread out of order: %g %g %g", min, med, max)
	}
	if max <= 0 {
		t.Fatal("max relative error should be positive")
	}
	if _, _, _, ok := res.ErrorSpread("NoSuchTest"); ok {
		t.Fatal("unknown test should have no spread")
	}
}

func TestVariableRunsConsistency(t *testing.T) {
	s := newSuite()
	res, err := s.RunMatrix(comp.Matrix())
	if err != nil {
		t.Fatal(err)
	}
	vr := res.VariableRuns()
	stats := res.CompilerRunStats()
	want := stats[comp.GCC][0] + stats[comp.Clang][0] + stats[comp.ICPC][0]
	if len(vr) != want {
		t.Fatalf("VariableRuns %d != per-compiler sum %d", len(vr), want)
	}
	for _, rr := range vr {
		if !rr.Variable() {
			t.Fatal("non-variable run in VariableRuns")
		}
	}
}

func TestDeterministicMatrix(t *testing.T) {
	s := newSuite()
	m := comp.Matrix()[:30]
	r1, err := s.RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.RunMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	a, b := r1.ForTest("DotTest"), r2.ForTest("DotTest")
	for i := range a {
		if a[i].CompareVal != b[i].CompareVal || a[i].Time != b[i].Time {
			t.Fatalf("matrix run not deterministic at %s", a[i].Comp)
		}
	}
}
