package bisect

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// blameTest builds a synthetic Test function satisfying both search
// assumptions: each blamed item i contributes a distinct weight 2^-i, so
// every subset of the blame set has a unique positive magnitude
// (Assumption 1) and every blamed singleton tests positive (Assumption 2).
func blameTest(items []string, blamed map[string]float64) TestFn {
	return func(set []string) (float64, error) {
		var v float64
		for _, it := range set {
			v += blamed[it]
		}
		return v, nil
	}
}

func makeItems(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "item" + string(rune('A'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
	}
	return out
}

func pickBlame(items []string, k int, rng *rand.Rand) map[string]float64 {
	blamed := map[string]float64{}
	perm := rng.Perm(len(items))
	for i := 0; i < k; i++ {
		blamed[items[perm[i]]] = math.Pow(2, -float64(i+1))
	}
	return blamed
}

func TestAllFindsExactBlameSet(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		k := rng.Intn(min(n, 8) + 1)
		items := makeItems(n)
		blamed := pickBlame(items, k, rng)
		s := NewSearcher(blameTest(items, blamed))
		found, err := s.All(items)
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d): %v", trial, n, k, err)
		}
		if len(found) != k {
			t.Fatalf("trial %d: found %d items, want %d", trial, len(found), k)
		}
		for _, f := range found {
			if blamed[f.Item] == 0 {
				t.Fatalf("trial %d: false positive %s", trial, f.Item)
			}
			if f.Value != blamed[f.Item] {
				t.Fatalf("trial %d: value %g != weight %g", trial, f.Value, blamed[f.Item])
			}
		}
		// Sorted by decreasing magnitude.
		if !sort.SliceIsSorted(found, func(i, j int) bool { return found[i].Value > found[j].Value }) {
			t.Fatalf("trial %d: findings not sorted", trial)
		}
	}
}

func TestAllComplexityBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 16 + rng.Intn(200)
		k := 1 + rng.Intn(6)
		items := makeItems(n)
		blamed := pickBlame(items, k, rng)
		s := NewSearcher(blameTest(items, blamed))
		if _, err := s.All(items); err != nil {
			t.Fatal(err)
		}
		// O(k log N) with the verification overhead of ~1+k extra runs.
		logN := math.Log2(float64(n)) + 1
		bound := int(2*float64(k)*logN) + k + 8
		if s.Execs() > bound {
			t.Fatalf("n=%d k=%d: %d executions exceeds bound %d", n, k, s.Execs(), bound)
		}
	}
}

func TestAllEmptyBlame(t *testing.T) {
	items := makeItems(20)
	s := NewSearcher(blameTest(items, nil))
	found, err := s.All(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 0 {
		t.Fatalf("found %v for benign program", found)
	}
	// Test(all) plus the verification run Test(∅).
	if s.Execs() != 2 {
		t.Fatalf("benign search used %d executions, want 2", s.Execs())
	}
}

func TestAllSingleItem(t *testing.T) {
	items := []string{"only"}
	s := NewSearcher(blameTest(items, map[string]float64{"only": 0.5}))
	found, err := s.All(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Item != "only" {
		t.Fatalf("found = %v", found)
	}
}

func TestAllDetectsCoupledElements(t *testing.T) {
	// Two elements that only act jointly: Assumption 2 violated. The
	// base-case assertion must fire — never a silent wrong answer.
	items := makeItems(16)
	coupled := map[string]bool{items[3]: true, items[11]: true}
	fn := func(set []string) (float64, error) {
		cnt := 0
		for _, it := range set {
			if coupled[it] {
				cnt++
			}
		}
		if cnt >= 2 {
			return 1.0, nil
		}
		return 0, nil
	}
	s := NewSearcher(fn)
	_, err := s.All(items)
	var ae *AssumptionError
	if !errors.As(err, &ae) {
		t.Fatalf("coupled blame: err = %v, want AssumptionError", err)
	}
}

func TestAllDetectsUnattributableVariability(t *testing.T) {
	// Test is positive even for the empty set (link-step variability).
	fn := func(set []string) (float64, error) { return 0.25 + float64(len(set)), nil }
	s := NewSearcher(fn)
	_, err := s.All(makeItems(4))
	var ae *AssumptionError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want AssumptionError", err)
	}
}

func TestAllDetectsNonUniqueError(t *testing.T) {
	// Assumption 1 violated: removing a blamed element does not change the
	// Test value (two elements mask each other), so the verification
	// assertion Test(items)==Test(found) fails or a singleton won't
	// reproduce. Either way an AssumptionError must surface.
	items := makeItems(8)
	a, b := items[1], items[5]
	fn := func(set []string) (float64, error) {
		has := map[string]bool{}
		for _, it := range set {
			has[it] = true
		}
		switch {
		case has[a] && has[b]:
			return 0.75, nil // same magnitude as a alone: masks b
		case has[a]:
			return 0.75, nil
		case has[b]:
			return 0.5, nil
		}
		return 0, nil
	}
	s := NewSearcher(fn)
	found, err := s.All(items)
	if err == nil {
		// The search may still stumble into the right answer; if it claims
		// success both elements must be present.
		names := map[string]bool{}
		for _, f := range found {
			names[f.Item] = true
		}
		if !names[a] || !names[b] {
			t.Fatalf("silent wrong answer: %v", found)
		}
	}
}

func TestTestRejectsNegativeMetric(t *testing.T) {
	s := NewSearcher(func(set []string) (float64, error) { return -1, nil })
	if _, err := s.Test([]string{"x"}); err == nil {
		t.Fatal("negative metric accepted")
	}
}

func TestMemoization(t *testing.T) {
	calls := 0
	s := NewSearcher(func(set []string) (float64, error) { calls++; return 0, nil })
	for i := 0; i < 5; i++ {
		if _, err := s.Test([]string{"b", "a"}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Test([]string{"a", "b"}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("underlying Test ran %d times, want 1 (memoized, order-independent)", calls)
	}
	if s.Execs() != 1 {
		t.Fatalf("Execs = %d, want 1", s.Execs())
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("segfault")
	s := NewSearcher(func(set []string) (float64, error) {
		if len(set) <= 2 {
			return 0, boom
		}
		return 1, nil
	})
	_, err := s.All(makeItems(8))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped segfault", err)
	}
}

func TestBiggestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 8 + rng.Intn(120)
		kBlame := 1 + rng.Intn(7)
		items := makeItems(n)
		blamed := pickBlame(items, kBlame, rng)
		// True ranking: by weight descending.
		type bw struct {
			item string
			w    float64
		}
		var truth []bw
		for it, w := range blamed {
			truth = append(truth, bw{it, w})
		}
		sort.Slice(truth, func(i, j int) bool { return truth[i].w > truth[j].w })

		k := 1 + rng.Intn(3)
		s := NewSearcher(blameTest(items, blamed))
		found, err := s.Biggest(items, k)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := min(k, kBlame)
		if len(found) != wantLen {
			t.Fatalf("trial %d: Biggest(%d) returned %d findings, want %d",
				trial, k, len(found), wantLen)
		}
		for i, f := range found {
			if f.Item != truth[i].item {
				t.Fatalf("trial %d: rank %d is %s (%g), want %s (%g)",
					trial, i, f.Item, f.Value, truth[i].item, truth[i].w)
			}
		}
	}
}

func TestBiggestAllEquivalentCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := makeItems(64)
	blamed := pickBlame(items, 5, rng)
	s := NewSearcher(blameTest(items, blamed))
	found, err := s.Biggest(items, 0) // k<=0 means all
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 5 {
		t.Fatalf("Biggest(all) found %d, want 5", len(found))
	}
}

func TestBiggestEarlyExitSavesExecutions(t *testing.T) {
	items := makeItems(256)
	rng := rand.New(rand.NewSource(3))
	blamed := pickBlame(items, 8, rng)
	sAll := NewSearcher(blameTest(items, blamed))
	if _, err := sAll.All(items); err != nil {
		t.Fatal(err)
	}
	sTop := NewSearcher(blameTest(items, blamed))
	if _, err := sTop.Biggest(items, 1); err != nil {
		t.Fatal(err)
	}
	if sTop.Execs() >= sAll.Execs() {
		t.Fatalf("Biggest(1) used %d executions, All used %d — no early-exit benefit",
			sTop.Execs(), sAll.Execs())
	}
}

func TestBiggestEmptyAndBenign(t *testing.T) {
	s := NewSearcher(blameTest(nil, nil))
	found, err := s.Biggest(nil, 3)
	if err != nil || found != nil {
		t.Fatalf("empty items: %v %v", found, err)
	}
	items := makeItems(10)
	s2 := NewSearcher(blameTest(items, nil))
	found2, err := s2.Biggest(items, 3)
	if err != nil || len(found2) != 0 {
		t.Fatalf("benign items: %v %v", found2, err)
	}
}

func TestAssumptionErrorMessage(t *testing.T) {
	e := &AssumptionError{Msg: "boom"}
	if e.Error() == "" {
		t.Fatal("empty message")
	}
	e2 := &AssumptionError{Msg: "boom", Items: []string{"x"}}
	if e2.Error() == e.Error() {
		t.Fatal("items not included in message")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
