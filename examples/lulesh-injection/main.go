// lulesh-injection reproduces the paper's §3.5 controlled-injection study
// on a sampled site set: plant x OP' ε perturbations at static FP
// instructions of the mini-LULESH proxy, ask FLiT Bisect to find them, and
// score precision/recall. Run `flit experiments table5` (or the
// BenchmarkTable5Injection bench) for the full 4,376-run campaign.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/lulesh"
	"repro/internal/experiments"
	"repro/internal/fp"
	"repro/internal/inject"
)

func main() {
	sites := inject.EnumerateSites(lulesh.Program())
	fmt.Printf("enumerated %d injection sites (paper: 1,094); %d total runs with 4 OP' each\n",
		len(sites), len(sites)*4)

	// A couple of illustrative single injections first.
	study := experiments.LULESHStudy()
	for _, probe := range []struct {
		site inject.Site
		op   fp.InjectOp
	}{
		{inject.Site{Symbol: "CalcAccelerationForNodes", OpIndex: 2}, fp.InjMul},
		{inject.Site{Symbol: "CalcEnergyForElems", OpIndex: 5}, fp.InjAdd},
		{inject.Site{Symbol: "CalcElemNodeNormals", OpIndex: 0}, fp.InjDiv},
	} {
		rep := study.RunOne(probe.site, probe.op)
		if rep.Err != nil {
			log.Fatal(rep.Err)
		}
		fmt.Printf("  inject %c at %s op%d: %s (execs %d, found %v)\n",
			byte(probe.op), probe.site.Symbol, probe.site.OpIndex,
			rep.Outcome, rep.Execs, rep.Found)
	}

	// Sampled campaign: every 7th site x 4 operations.
	fmt.Println("\nsampled campaign (every 7th site):")
	sum, err := experiments.Table5(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTable5(sum))
}
