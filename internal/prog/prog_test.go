package prog

import (
	"strings"
	"testing"
)

func sample() *Program {
	p := New("sample")
	p.AddFile("vector.cpp",
		&Symbol{Name: "Dot", Exported: true, Work: 2, FPOps: 4, SLOC: 10,
			Features: Features{Reduction: true, MulAdd: true}},
		&Symbol{Name: "Norm", Exported: true, Work: 1, FPOps: 2, SLOC: 6,
			Callees: []string{"Dot", "sqrtHelper"}},
		&Symbol{Name: "sqrtHelper", Exported: false, Work: 1, FPOps: 1, SLOC: 4,
			Features: Features{SqrtLibm: true}},
	)
	p.AddFile("solver.cpp",
		&Symbol{Name: "CG", Exported: true, Work: 10, FPOps: 20, SLOC: 60,
			Callees: []string{"Dot", "Norm", "applyA"}},
		&Symbol{Name: "applyA", Exported: false, Work: 5, FPOps: 8, SLOC: 25,
			Callees: []string{"innerKernel"}},
		&Symbol{Name: "innerKernel", Exported: false, Work: 3, FPOps: 6, SLOC: 12},
	)
	return p
}

func TestAddFileAndLookup(t *testing.T) {
	p := sample()
	if got := len(p.Files()); got != 2 {
		t.Fatalf("Files() = %d, want 2", got)
	}
	if p.Symbol("Dot") == nil || p.Symbol("Dot").File != "vector.cpp" {
		t.Fatal("Dot not registered correctly")
	}
	if p.Symbol("nope") != nil {
		t.Fatal("unknown symbol should be nil")
	}
	if p.File("solver.cpp") == nil || p.File("missing.cpp") != nil {
		t.Fatal("File lookup wrong")
	}
	names := p.FileNames()
	if names[0] != "vector.cpp" || names[1] != "solver.cpp" {
		t.Fatalf("FileNames order wrong: %v", names)
	}
}

func TestDuplicateFilePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "duplicate file") {
			t.Fatalf("expected duplicate-file panic, got %v", r)
		}
	}()
	p := sample()
	p.AddFile("vector.cpp")
}

func TestDuplicateSymbolPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "duplicate symbol") {
			t.Fatalf("expected duplicate-symbol panic, got %v", r)
		}
	}()
	p := sample()
	p.AddFile("other.cpp", &Symbol{Name: "Dot"})
}

func TestMustSymbolPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sample().MustSymbol("missing")
}

func TestDefaultWork(t *testing.T) {
	p := New("w")
	p.AddFile("a.cpp", &Symbol{Name: "f"})
	if p.Symbol("f").Work != 1 {
		t.Fatalf("default work = %g, want 1", p.Symbol("f").Work)
	}
}

func TestSymbolsSorted(t *testing.T) {
	p := sample()
	syms := p.Symbols()
	for i := 1; i < len(syms); i++ {
		if syms[i-1].Name >= syms[i].Name {
			t.Fatalf("Symbols not sorted: %s >= %s", syms[i-1].Name, syms[i].Name)
		}
	}
	if len(syms) != 6 {
		t.Fatalf("len(Symbols) = %d, want 6", len(syms))
	}
}

func TestExportedSymbols(t *testing.T) {
	p := sample()
	exp := p.ExportedSymbols("solver.cpp")
	if len(exp) != 1 || exp[0].Name != "CG" {
		t.Fatalf("ExportedSymbols(solver.cpp) = %v", exp)
	}
	if got := p.ExportedSymbols("missing.cpp"); got != nil {
		t.Fatalf("missing file should return nil, got %v", got)
	}
}

func TestReachableClosure(t *testing.T) {
	p := sample()
	r := p.Reachable("CG")
	want := []string{"CG", "Dot", "Norm", "applyA", "innerKernel", "sqrtHelper"}
	if len(r) != len(want) {
		t.Fatalf("Reachable(CG) has %d symbols, want %d: %v", len(r), len(want), r)
	}
	for _, w := range want {
		if r[w] == nil {
			t.Fatalf("Reachable(CG) missing %s", w)
		}
	}
	// Unknown callees are ignored.
	p2 := New("x")
	p2.AddFile("a.cpp", &Symbol{Name: "f", Callees: []string{"std::sort", "g"}},
		&Symbol{Name: "g"})
	r2 := p2.Reachable("f")
	if len(r2) != 2 {
		t.Fatalf("unknown callee not ignored: %v", r2)
	}
}

func TestReachableUnknownRoot(t *testing.T) {
	p := sample()
	if got := p.Reachable("missing"); len(got) != 0 {
		t.Fatalf("Reachable(missing) = %v, want empty", got)
	}
}

func TestExportedAncestor(t *testing.T) {
	p := sample()
	// Exported symbol is its own ancestor.
	if got := p.ExportedAncestor("CG"); got != "CG" {
		t.Fatalf("ExportedAncestor(CG) = %q", got)
	}
	// innerKernel <- applyA (internal) <- CG (exported).
	if got := p.ExportedAncestor("innerKernel"); got != "CG" {
		t.Fatalf("ExportedAncestor(innerKernel) = %q, want CG", got)
	}
	// sqrtHelper is called by Norm (exported) directly.
	if got := p.ExportedAncestor("sqrtHelper"); got != "Norm" {
		t.Fatalf("ExportedAncestor(sqrtHelper) = %q, want Norm", got)
	}
	if got := p.ExportedAncestor("missing"); got != "" {
		t.Fatalf("ExportedAncestor(missing) = %q, want empty", got)
	}
	// Orphan internal symbol with no callers.
	p.AddFile("orphan.cpp", &Symbol{Name: "lonely"})
	if got := p.ExportedAncestor("lonely"); got != "" {
		t.Fatalf("ExportedAncestor(lonely) = %q, want empty", got)
	}
}

func TestStats(t *testing.T) {
	p := sample()
	st := p.Stats()
	if st.SourceFiles != 2 || st.TotalFunctions != 6 {
		t.Fatalf("stats files/functions: %+v", st)
	}
	if st.AvgFuncsPerFile != 3 {
		t.Fatalf("AvgFuncsPerFile = %g, want 3", st.AvgFuncsPerFile)
	}
	if st.SLOC != 10+6+4+60+25+12 {
		t.Fatalf("SLOC = %d", st.SLOC)
	}
	if st.ExportedFuncs != 3 {
		t.Fatalf("ExportedFuncs = %d, want 3", st.ExportedFuncs)
	}
	if st.TotalFPOps != 4+2+1+20+8+6 {
		t.Fatalf("TotalFPOps = %d", st.TotalFPOps)
	}
	empty := New("e")
	if s := empty.Stats(); s.AvgFuncsPerFile != 0 {
		t.Fatalf("empty program stats: %+v", s)
	}
}

func TestValidate(t *testing.T) {
	p := sample()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	p.Symbol("Dot").FPOps = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative FPOps accepted")
	}
	p.Symbol("Dot").FPOps = 4
	p.Symbol("CG").File = "wrong.cpp"
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched file accepted")
	}
}

func TestFeaturesAny(t *testing.T) {
	if (Features{}).Any() {
		t.Fatal("empty Features reported Any")
	}
	for _, f := range []Features{
		{MulAdd: true}, {Reduction: true}, {Division: true},
		{SqrtLibm: true}, {ShortExpr: true}, {Branch: true},
	} {
		if !f.Any() {
			t.Fatalf("Features %+v not Any", f)
		}
	}
}
