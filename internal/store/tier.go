package store

import "errors"

// tiered composes stores into a read-through/write-through hierarchy:
// the local Disk cache in front of a shared Remote is the intended shape,
// but any stores compose. Gets consult tiers in order and a hit from a
// deeper tier is filled forward into every tier above it (best-effort —
// the fill is an optimization, the hit is already validated); Puts write
// through to every tier, so a fresh computation lands both in the local
// cache and on the shared server.
type tiered struct {
	tiers []Store
}

// Tier composes stores first-to-last into one read-through/write-through
// Store. Nil tiers are dropped; a single survivor is returned unwrapped
// and zero survivors return nil (no store at all).
func Tier(tiers ...Store) Store {
	kept := make([]Store, 0, len(tiers))
	for _, s := range tiers {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return &tiered{tiers: kept}
	}
}

// Get returns the first tier's answer for key, filling shallower tiers on
// a deeper hit so the next lookup stops earlier.
func (t *tiered) Get(key string) ([]byte, bool) {
	for i, s := range t.tiers {
		data, ok := s.Get(key)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			// Best-effort read-through fill: a failed local write costs the
			// next lookup a remote round trip, nothing else.
			_ = t.tiers[j].Put(key, data)
		}
		return data, true
	}
	return nil, false
}

// Put writes through to every tier. All tiers are attempted even after a
// failure — a dead remote must not stop the local cache from persisting —
// and the joined error reports every tier that did fail.
func (t *tiered) Put(key string, data []byte) error {
	var errs []error
	for _, s := range t.tiers {
		if err := s.Put(key, data); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
