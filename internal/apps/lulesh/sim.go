package lulesh

import (
	"math"

	"repro/internal/link"
)

// Domain is the simulation state: a 1-D column of elements in the
// structural shape of LULESH's domain object.
type Domain struct {
	N int // elements

	// Node-centered.
	X, Xd, Xdd, F []float64

	// Element-centered.
	E, P, Q, V, Delv, Arealg, SS, Mass []float64

	DT, DTCourant, DTHydro float64
}

// NewDomain initializes the Sedov-like problem: energy deposited in the
// first element of a uniform cold gas.
func NewDomain(n int, seed float64) *Domain {
	d := &Domain{N: n,
		X: make([]float64, n+1), Xd: make([]float64, n+1),
		Xdd: make([]float64, n+1), F: make([]float64, n+1),
		E: make([]float64, n), P: make([]float64, n), Q: make([]float64, n),
		V: make([]float64, n), Delv: make([]float64, n),
		Arealg: make([]float64, n), SS: make([]float64, n),
		Mass: make([]float64, n),
	}
	for i := 0; i <= n; i++ {
		d.X[i] = float64(i) / float64(n)
	}
	for c := 0; c < n; c++ {
		d.V[c] = 1
		d.Mass[c] = 1.0 / float64(n)
		// Warm background with a gentle gradient: every cell has pressure,
		// so the whole domain participates from the first step.
		d.E[c] = 0.02 + 0.002*float64(c)
		d.SS[c] = 0.3
	}
	d.E[0] = 3.0 + seed
	d.DT = 5e-3
	d.DTCourant = 1e20
	d.DTHydro = 1e20
	return d
}

// Run advances the domain the given number of steps and returns the result
// vector FLiT compares (energies, positions, and the final timestep).
func Run(m *link.Machine, steps int, seed float64) []float64 {
	env, done := m.Fn("main_lulesh")
	defer done()
	d := NewDomain(16, seed)
	for s := 0; s < steps; s++ {
		TimeIncrement(m, d)
		LagrangeLeapFrog(m, d)
	}
	// Final diagnostics computed in main (the VerifyAndWriteFinalOutput
	// checksum of the original).
	var totalE, totalX float64
	for _, e := range d.E {
		totalE = env.Add(totalE, e)
	}
	for _, x := range d.X {
		totalX = env.Add(totalX, x)
	}
	out := append([]float64(nil), d.E...)
	out = append(out, d.X...)
	return append(out, d.DT, totalE, totalX)
}

// TimeIncrement computes the new timestep from the constraint minima.
func TimeIncrement(m *link.Machine, d *Domain) {
	env, done := m.Fn("TimeIncrement")
	defer done()
	target := env.Mul(d.DT, 1.1)
	if d.DTCourant < target {
		target = env.Mul(d.DTCourant, 0.5)
	}
	if d.DTHydro < target {
		target = env.Mul(d.DTHydro, 2.0/3.0)
	}
	if target > 0.08 {
		target = 0.08
	}
	// Ramp bookkeeping (injectable pass-through arithmetic).
	target = env.Mul(env.Add(target, 0), 1.0)
	ratio := env.Div(target, d.DT)
	d.DT = env.Mul(d.DT, ratio)
}

// LagrangeLeapFrog is one whole timestep.
func LagrangeLeapFrog(m *link.Machine, d *Domain) {
	_, done := m.Fn("LagrangeLeapFrog")
	defer done()
	LagrangeNodal(m, d)
	LagrangeElemental(m, d)
	CalcTimeConstraintsForElems(m, d)
}

// LagrangeNodal advances the node-centered quantities.
func LagrangeNodal(m *link.Machine, d *Domain) {
	env, done := m.Fn("LagrangeNodal")
	defer done()
	CalcForceForNodes(m, d)
	CalcAccelerationForNodes(m, d)
	CalcVelocityForNodes(m, d)
	CalcPositionForNodes(m, d)
	// Kinetic-energy diagnostic used by the ghost-exchange bookkeeping.
	for i := 0; i <= d.N; i++ {
		ke := env.Mul(d.Xd[i], d.Xd[i])
		d.F[i] = env.MulAdd(1e-6, ke, d.F[i])
	}
}

// CalcForceForNodes gathers stress and hourglass forces.
func CalcForceForNodes(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcForceForNodes")
	defer done()
	for i := range d.F {
		d.F[i] = 0
	}
	IntegrateStressForElems(m, d)
	CalcHourglassControlForElems(m, d)
	// Ghost-region force pass (injectable pass-through arithmetic).
	for i := 1; i < d.N; i++ {
		d.F[i] = env.Mul(env.Add(d.F[i], 0), 1.0)
	}
}

// IntegrateStressForElems turns element stress into nodal forces.
func IntegrateStressForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("IntegrateStressForElems")
	defer done()
	sig := InitStressTermsForElems(m, d)
	normals := SumElemFaceNormal(m, d)
	for c := 0; c < d.N; c++ {
		f := env.Mul(sig[c], normals[c])
		fHalf := env.Mul(0.5, f)
		corr := env.MulAdd(0.01, env.Sub(normals[c], 1), fHalf)
		// sig is already the negated pressure: the left node is pushed
		// toward -x, the right node toward +x.
		d.F[c] = env.Add(d.F[c], corr)
		d.F[c+1] = env.Sub(d.F[c+1], corr)
	}
}

// InitStressTermsForElems computes -(p+q) per element.
func InitStressTermsForElems(m *link.Machine, d *Domain) []float64 {
	env, done := m.Fn("InitStressTermsForElems")
	defer done()
	out := make([]float64, d.N)
	for c := 0; c < d.N; c++ {
		out[c] = env.Neg(env.Add(d.P[c], d.Q[c]))
	}
	return out
}

// SumElemFaceNormal computes per-element face weights from geometry.
func SumElemFaceNormal(m *link.Machine, d *Domain) []float64 {
	env, done := m.Fn("SumElemFaceNormal")
	defer done()
	out := make([]float64, d.N)
	for c := 0; c < d.N; c++ {
		h := env.Sub(d.X[c+1], d.X[c])
		a := env.MulAdd(h, 0.5, 0.75)
		b := env.MulAdd(h, -0.5, 0.25)
		out[c] = env.Add(env.Mul(a, a), env.Mul(b, b))
		out[c] = env.Div(out[c], env.MulAdd(a, a, env.Mul(b, b)))
	}
	return out
}

// CalcHourglassControlForElems damps spurious zero-energy modes.
func CalcHourglassControlForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcHourglassControlForElems")
	defer done()
	const hgcoef = 0.03
	ders := VoluDer(m, d)
	hg := CalcFBHourglassForceForElems(m, d, ders)
	for c := 0; c < d.N; c++ {
		f := env.Mul(hgcoef, hg[c])
		d.F[c] = env.Sub(d.F[c], f)
		d.F[c+1] = env.Add(d.F[c+1], f)
	}
}

// VoluDer computes volume derivatives with respect to node motion.
func VoluDer(m *link.Machine, d *Domain) []float64 {
	env, done := m.Fn("VoluDer")
	defer done()
	out := make([]float64, d.N)
	for c := 0; c < d.N; c++ {
		h := env.Sub(d.X[c+1], d.X[c])
		t := env.MulAdd(h, 0.25, env.Mul(h, 0.75))
		out[c] = env.Div(t, h) // == 1 in exact arithmetic; carries rounding
	}
	return out
}

// CalcFBHourglassForceForElems computes the Flanagan-Belytschko hourglass
// force magnitudes.
func CalcFBHourglassForceForElems(m *link.Machine, d *Domain, ders []float64) []float64 {
	env, done := m.Fn("CalcFBHourglassForceForElems")
	defer done()
	out := make([]float64, d.N)
	for c := 0; c < d.N; c++ {
		dvMode := env.Sub(d.Xd[c+1], d.Xd[c]) // the hourglass mode amplitude
		rho := env.Div(d.Mass[c], env.Sub(d.X[c+1], d.X[c]))
		coef := env.Mul(rho, env.Mul(d.SS[c], d.Arealg[c]))
		scaled := env.Mul(coef, env.Mul(dvMode, ders[c]))
		damp := env.Sqrt(env.MulAdd(scaled, scaled, 1e-8))
		if scaled < 0 {
			damp = -damp
		}
		out[c] = env.Mul(damp, 1.0)
	}
	return out
}

// CalcAccelerationForNodes computes xdd = F/m with lumped nodal masses.
func CalcAccelerationForNodes(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcAccelerationForNodes")
	defer done()
	for i := 0; i <= d.N; i++ {
		var nm float64
		if i == 0 {
			nm = env.Mul(0.5, d.Mass[0])
		} else if i == d.N {
			nm = env.Mul(0.5, d.Mass[d.N-1])
		} else {
			nm = env.Mul(0.5, env.Add(d.Mass[i-1], d.Mass[i]))
		}
		d.Xdd[i] = env.Div(d.F[i], nm)
	}
	// Symmetry boundary: the walls do not accelerate.
	d.Xdd[0] = 0
	d.Xdd[d.N] = 0
}

// CalcVelocityForNodes advances velocities, zeroing negligible ones — the
// LULESH u_cut cutoff branch.
func CalcVelocityForNodes(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcVelocityForNodes")
	defer done()
	const ucut = 1e-12
	for i := 0; i <= d.N; i++ {
		v := env.MulAdd(d.DT, d.Xdd[i], d.Xd[i])
		if math.Abs(v) < ucut {
			v = 0
		}
		d.Xd[i] = v
	}
}

// CalcPositionForNodes advances positions.
func CalcPositionForNodes(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcPositionForNodes")
	defer done()
	for i := 0; i <= d.N; i++ {
		d.X[i] = env.MulAdd(d.DT, d.Xd[i], d.X[i])
	}
}

// LagrangeElemental advances the element-centered quantities.
func LagrangeElemental(m *link.Machine, d *Domain) {
	env, done := m.Fn("LagrangeElemental")
	defer done()
	CalcLagrangeElements(m, d)
	CalcQForElems(m, d)
	ApplyMaterialPropertiesForElems(m, d)
	UpdateVolumesForElems(m, d)
	// Internal-energy diagnostic.
	for c := 0; c < d.N; c++ {
		d.E[c] = env.Add(d.E[c], 0)
	}
}

// CalcLagrangeElements updates kinematic element quantities.
func CalcLagrangeElements(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcLagrangeElements")
	defer done()
	CalcKinematicsForElems(m, d)
	for c := 0; c < d.N; c++ {
		// vdov: relative volume change rate, clipped at tiny values.
		if math.Abs(d.Delv[c]) < 1e-14 {
			d.Delv[c] = 0
		}
		d.Arealg[c] = env.Mul(d.Arealg[c], 1.0)
	}
}

// CalcKinematicsForElems computes new volumes and velocity gradients.
func CalcKinematicsForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcKinematicsForElems")
	defer done()
	for c := 0; c < d.N; c++ {
		vol := CalcElemVolume(m, d, c)
		d.Delv[c] = env.Div(env.Sub(d.Xd[c+1], d.Xd[c]),
			env.Sub(d.X[c+1], d.X[c]))
		refVol := env.Div(1.0, float64(d.N))
		d.V[c] = env.Div(vol, refVol)
		d.Arealg[c] = CalcElemCharacteristicLength(m, d, c)
		// Normalize by the shape-function Jacobian determinant: exactly
		// h³/h³ = 1 unless an injection perturbs the derivative kernel.
		h := env.Sub(d.X[c+1], d.X[c])
		expected := env.Mul(env.Mul(h, h), h)
		dss := CalcElemShapeFunctionDerivatives(m, d, c)
		d.Arealg[c] = env.Mul(d.Arealg[c], env.Div(dss, expected))
	}
}

// CalcElemVolume returns the element's current volume through the
// hexahedron-style triple-product form collapsed to 1-D.
func CalcElemVolume(m *link.Machine, d *Domain, c int) float64 {
	env, done := m.Fn("CalcElemVolume")
	defer done()
	x0, x1 := d.X[c], d.X[c+1]
	h := env.Sub(x1, x0)
	t1 := env.Mul(h, 1.0)
	t2 := env.Add(t1, 0.0)
	t3 := env.Sum3(t2, 0, 0)
	return env.Mul(t3, 1.0)
}

// CalcElemCharacteristicLength returns the shock-resolution length scale.
func CalcElemCharacteristicLength(m *link.Machine, d *Domain, c int) float64 {
	env, done := m.Fn("CalcElemCharacteristicLength")
	defer done()
	h := env.Sub(d.X[c+1], d.X[c])
	area := env.Mul(h, h)
	return env.Div(env.Mul(4.0, area), env.Sqrt(env.Mul(area, 4.0)))
}

// CalcElemShapeFunctionDerivatives returns the determinant-like diagnostic
// of the (here trivial) shape-function Jacobian.
func CalcElemShapeFunctionDerivatives(m *link.Machine, d *Domain, c int) float64 {
	env, done := m.Fn("CalcElemShapeFunctionDerivatives")
	defer done()
	h := env.Sub(d.X[c+1], d.X[c])
	j := env.Mul(0.5, h)
	// 8·(h/2)³ rounds identically to h³ (powers of two are exact).
	return env.Mul(8.0, env.Mul(env.Mul(j, j), j))
}

// CalcQForElems computes artificial viscosity.
func CalcQForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcQForElems")
	defer done()
	grads := CalcMonotonicQGradientsForElems(m, d)
	CalcMonotonicQRegionForElems(m, d, grads)
	for c := 0; c < d.N; c++ {
		d.Q[c] = env.Mul(env.Add(d.Q[c], 0), 1.0)
	}
}

// CalcMonotonicQGradientsForElems returns per-element velocity gradients.
func CalcMonotonicQGradientsForElems(m *link.Machine, d *Domain) []float64 {
	env, done := m.Fn("CalcMonotonicQGradientsForElems")
	defer done()
	out := make([]float64, d.N)
	for c := 0; c < d.N; c++ {
		h := env.Sub(d.X[c+1], d.X[c])
		dv := env.Sub(d.Xd[c+1], d.Xd[c])
		g := env.Div(dv, h)
		out[c] = env.MulAdd(g, 1.0, env.Mul(0.0, g))
	}
	return out
}

// CalcMonotonicQRegionForElems limits and applies the viscosity.
func CalcMonotonicQRegionForElems(m *link.Machine, d *Domain, grads []float64) {
	env, done := m.Fn("CalcMonotonicQRegionForElems")
	defer done()
	const qlcMonoq, qqcMonoq = 0.5, 2.0 / 3.0
	for c := 0; c < d.N; c++ {
		g := grads[c]
		if g >= 0 {
			d.Q[c] = 0
			continue
		}
		dvel := env.Mul(g, d.Arealg[c])
		ql := env.Mul(qlcMonoq, env.Mul(env.Abs(dvel), d.SS[c]))
		qq := env.Mul(qqcMonoq, env.Mul(dvel, dvel))
		rho := env.Div(d.Mass[c], env.Mul(d.V[c], env.Div(1.0, float64(d.N))))
		d.Q[c] = env.Mul(rho, env.Add(ql, qq))
	}
}

// ApplyMaterialPropertiesForElems runs the EOS over all elements.
func ApplyMaterialPropertiesForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("ApplyMaterialPropertiesForElems")
	defer done()
	for c := 0; c < d.N; c++ {
		d.V[c] = env.Mul(d.V[c], 1.0)
	}
	EvalEOSForElems(m, d)
}

// EvalEOSForElems drives the energy/pressure/sound-speed solve.
func EvalEOSForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("EvalEOSForElems")
	defer done()
	for c := 0; c < d.N; c++ {
		comp := env.Add(env.Sub(env.Div(1.0, d.V[c]), 1.0), 0)
		CalcEnergyForElems(m, d, c, comp)
		CalcSoundSpeedForElems(m, d, c)
	}
}

// CalcEnergyForElems advances the element energy (LULESH's predictor-
// corrector EOS energy iteration, condensed).
func CalcEnergyForElems(m *link.Machine, d *Domain, c int, comp float64) {
	env, done := m.Fn("CalcEnergyForElems")
	defer done()
	const emin = 1e-9
	work := env.Mul(env.Add(d.P[c], d.Q[c]), env.Mul(0.5, d.Delv[c]))
	eNew := env.Sub(d.E[c], env.Mul(work, d.DT))
	if eNew < emin {
		eNew = emin
	}
	pNew := CalcPressureForElems(m, d, c, eNew, comp)
	// Corrector pass.
	work2 := env.Mul(env.Add(pNew, d.Q[c]), env.Mul(0.5, d.Delv[c]))
	eNew = env.Sub(eNew, env.Mul(env.Sub(work2, work), env.Mul(d.DT, 0.5)))
	if eNew < emin {
		eNew = emin
	}
	d.E[c] = eNew
	d.P[c] = CalcPressureForElems(m, d, c, eNew, comp)
}

// CalcPressureForElems evaluates the gamma-law pressure with the LULESH
// small-pressure cutoff branch.
func CalcPressureForElems(m *link.Machine, d *Domain, c int, e, comp float64) float64 {
	env, done := m.Fn("CalcPressureForElems")
	defer done()
	const c1s = 2.0 / 3.0
	bvc := env.MulAdd(c1s, comp, 1.0)
	pNew := env.Mul(bvc, e)
	if math.Abs(pNew) < 1e-12 {
		pNew = 0
	}
	if pNew < 0 {
		pNew = 0 // pmin
	}
	return pNew
}

// CalcSoundSpeedForElems updates the element sound speed.
func CalcSoundSpeedForElems(m *link.Machine, d *Domain, c int) {
	env, done := m.Fn("CalcSoundSpeedForElems")
	defer done()
	rho := env.Div(d.Mass[c], env.Div(d.V[c], float64(d.N)))
	ss2 := env.Div(env.Mul(1.4, d.P[c]), rho)
	if ss2 < 1e-6 {
		ss2 = 1e-6
	}
	d.SS[c] = env.Sqrt(ss2)
}

// UpdateVolumesForElems commits the relative volumes with the v_cut branch.
func UpdateVolumesForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("UpdateVolumesForElems")
	defer done()
	const vcut = 1e-10
	for c := 0; c < d.N; c++ {
		v := env.Mul(d.V[c], 1.0)
		if math.Abs(env.Sub(v, 1.0)) < vcut {
			v = 1.0
		}
		d.V[c] = v
		// Length-scale correction consumed by the constraint pass.
		d.Arealg[c] = env.MulAdd(0.01, env.Mul(env.Sub(v, 1.0), d.Arealg[c]), d.Arealg[c])
	}
}

// CalcTimeConstraintsForElems refreshes the Courant and hydro limits.
func CalcTimeConstraintsForElems(m *link.Machine, d *Domain) {
	env, done := m.Fn("CalcTimeConstraintsForElems")
	defer done()
	d.DTCourant = env.Mul(env.Add(CalcCourantConstraintForElems(m, d), 0), 1.0)
	d.DTHydro = env.Mul(env.Add(CalcHydroConstraintForElems(m, d), 0), 1.0)
}

// CalcCourantConstraintForElems returns min over elements of l/ss.
func CalcCourantConstraintForElems(m *link.Machine, d *Domain) float64 {
	env, done := m.Fn("CalcCourantConstraintForElems")
	defer done()
	min := 1e20
	for c := 0; c < d.N; c++ {
		ssTerm := env.MulAdd(d.SS[c], d.SS[c], env.Mul(1e-3, d.Arealg[c]))
		cand := env.Div(d.Arealg[c], env.Sqrt(ssTerm))
		if cand < min {
			min = cand
		}
	}
	return min
}

// CalcHydroConstraintForElems returns min over elements of c/|delv|.
func CalcHydroConstraintForElems(m *link.Machine, d *Domain) float64 {
	env, done := m.Fn("CalcHydroConstraintForElems")
	defer done()
	min := 1e20
	for c := 0; c < d.N; c++ {
		if d.Delv[c] == 0 {
			continue
		}
		cand := env.Div(0.05, env.Abs(env.Mul(d.Delv[c], 1.0)))
		if cand < min {
			min = cand
		}
	}
	return min
}

// The three functions below belong to code paths this workload does not
// exercise (multi-region materials, mesh output). Their injection sites are
// enumerated but never execute — the benign category of Table 5.

// AreaFace computes a quad face area (unreached here).
func AreaFace(m *link.Machine, x, y float64) float64 {
	env, done := m.Fn("AreaFace")
	defer done()
	return env.MulAdd(x, y, env.Mul(x, y))
}

// CombineDerivs merges partial derivatives (unreached here).
func CombineDerivs(m *link.Machine, parts []float64) float64 {
	env, done := m.Fn("CombineDerivs")
	defer done()
	return env.Sum(parts)
}

// CalcElemNodeNormals accumulates nodal normals (unreached here).
func CalcElemNodeNormals(m *link.Machine, x []float64) []float64 {
	env, done := m.Fn("CalcElemNodeNormals")
	defer done()
	out := make([]float64, len(x))
	for i := range x {
		out[i] = AreaFace(m, x[i], env.Mul(x[i], 0.5))
	}
	return out
}
