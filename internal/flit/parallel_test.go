package flit

import (
	"fmt"
	"testing"

	"repro/internal/comp"
	"repro/internal/exec"
	"repro/internal/link"
)

// matrixFingerprint renders every cell of a matrix run into a canonical
// string, including error text, so two Results can be compared exactly.
func matrixFingerprint(r *Results) string {
	out := ""
	for _, test := range r.TestNames() {
		for _, rr := range r.ForTest(test) {
			errs := ""
			if rr.Err != nil {
				errs = rr.Err.Error()
			}
			out += fmt.Sprintf("%s|%s|%.17g|%.17g|%.17g|%s\n",
				rr.Test, rr.Comp.Key(), rr.CompareVal, rr.RelativeErr, rr.Time, errs)
		}
	}
	return out
}

// TestRunMatrixParallelEquivalence: the matrix runner must produce
// bit-identical Results — same cells, same order, same values — at any
// worker count, with and without the build/run cache.
func TestRunMatrixParallelEquivalence(t *testing.T) {
	matrix := comp.Matrix()

	base := newSuite()
	seqRes, err := base.RunMatrix(matrix)
	if err != nil {
		t.Fatal(err)
	}
	want := matrixFingerprint(seqRes)

	for _, cfg := range []struct {
		name  string
		pool  *exec.Pool
		cache *Cache
	}{
		{"j8-cached", exec.New(8), NewCache()},
		{"j8-uncached", exec.New(8), nil},
		{"j1-cached", exec.Sequential(), NewCache()},
	} {
		s := newSuite()
		s.Pool, s.Cache = cfg.pool, cfg.cache
		res, err := s.RunMatrix(matrix)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if got := matrixFingerprint(res); got != want {
			t.Errorf("%s: matrix fingerprint differs from sequential run", cfg.name)
		}
	}
}

// TestCacheRunAllMemoizes: repeated (executable, test) evaluations through
// a Cache run once and return the identical result.
func TestCacheRunAllMemoizes(t *testing.T) {
	s := newSuite()
	ex, err := link.FullBuild(s.Prog, s.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache()
	first, err := cache.RunAll(s.Tests[0], ex)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cache.RunAll(s.Tests[0], ex)
	if err != nil {
		t.Fatal(err)
	}
	if L2Diff(first, again) != 0 {
		t.Error("cached result differs from first run")
	}
	hits, misses := cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A nil cache is valid and simply runs.
	var nc *Cache
	r, err := nc.RunAll(s.Tests[0], ex)
	if err != nil || L2Diff(first, r) != 0 {
		t.Errorf("nil-cache RunAll: %v (diff %g)", err, L2Diff(first, r))
	}
	// Cost memoization returns the model value.
	if got, want := cache.Cost(ex, "Kernel"), ex.Cost("Kernel"); got != want {
		t.Errorf("cached cost %g != %g", got, want)
	}
}

// TestTestKeyUnwrapsCompareOverrides: metric overrides share the underlying
// run identity; distinct cases keep distinct keys.
func TestTestKeyUnwrapsCompareOverrides(t *testing.T) {
	base := &dotTest{}
	if TestKey(base) != "DotTest" {
		t.Errorf("TestKey = %q", TestKey(base))
	}
	wrapped := WithCompare(base, DigitL2Diff(3))
	if TestKey(wrapped) != "DotTest" {
		t.Errorf("TestKey(wrapped) = %q, want DotTest", TestKey(wrapped))
	}
	double := WithCompare(wrapped, DigitL2Diff(5))
	if TestKey(double) != "DotTest" {
		t.Errorf("TestKey(double-wrapped) = %q, want DotTest", TestKey(double))
	}
}
