package mfem

import "repro/internal/link"

// Finite elements (fe.cpp), quadrature (quadrature.cpp), element
// transformations (eltrans.cpp), and coefficients (coeff.cpp).

// Shape1D evaluates the two linear hat functions at reference point x∈[0,1].
func Shape1D(m *link.Machine, x float64) (n0, n1 float64) {
	env, done := m.Fn("FE::Shape1D")
	defer done()
	return env.Sub(1, x), x
}

// DShape1D returns the reference derivatives of the linear hats.
func DShape1D(m *link.Machine) (d0, d1 float64) {
	_, done := m.Fn("FE::DShape1D")
	defer done()
	return -1, 1
}

// Shape2D evaluates the four bilinear shape functions at (x,y)∈[0,1]².
func Shape2D(m *link.Machine, x, y float64) [4]float64 {
	env, done := m.Fn("FE::Shape2D")
	defer done()
	n0x, n1x := Shape1D(m, x)
	n0y, n1y := Shape1D(m, y)
	return [4]float64{
		env.Mul(n0x, n0y),
		env.Mul(n1x, n0y),
		env.Mul(n1x, n1y),
		env.Mul(n0x, n1y),
	}
}

// DShape2D returns the reference gradients of the bilinear shape functions
// as a 4×2 array [shape][dx,dy].
func DShape2D(m *link.Machine, x, y float64) [4][2]float64 {
	env, done := m.Fn("FE::DShape2D")
	defer done()
	n0x, n1x := Shape1D(m, x)
	n0y, n1y := Shape1D(m, y)
	d0, d1 := DShape1D(m)
	return [4][2]float64{
		{env.Mul(d0, n0y), env.Mul(n0x, d0)},
		{env.Mul(d1, n0y), env.Mul(n1x, d0)},
		{env.Mul(d1, n1y), env.Mul(n1x, d1)},
		{env.Mul(d0, n1y), env.Mul(n0x, d1)},
	}
}

// Gauss2 returns the 2-point Gauss-Legendre rule on [0,1].
func Gauss2(m *link.Machine) (pts, wts [2]float64) {
	env, done := m.Fn("QuadRule::Gauss2")
	defer done()
	r := env.Div(1, env.Mul(env.Sqrt(3), 2)) // 1/(2*sqrt(3))
	pts[0] = env.Sub(0.5, r)
	pts[1] = env.Add(0.5, r)
	wts[0], wts[1] = 0.5, 0.5
	return pts, wts
}

// Gauss3 returns the 3-point Gauss-Legendre rule on [0,1].
func Gauss3(m *link.Machine) (pts, wts [3]float64) {
	env, done := m.Fn("QuadRule::Gauss3")
	defer done()
	r := env.Mul(0.5, env.Sqrt(env.Div(3, 5)))
	pts[0] = env.Sub(0.5, r)
	pts[1] = 0.5
	pts[2] = env.Add(0.5, r)
	w := env.Div(5, 18)
	wts[0], wts[2] = w, w
	wts[1] = env.Div(4, 9)
	return pts, wts
}

// MapToInterval maps a reference point t∈[0,1] onto [a,b].
func MapToInterval(m *link.Machine, t, a, b float64) float64 {
	env, done := m.Fn("QuadRule::MapToInterval")
	defer done()
	return env.MulAdd(t, env.Sub(b, a), a)
}

// IsoMap1D maps a reference point inside element e to physical space.
func IsoMap1D(m *link.Machine, mesh *Mesh1D, e int, t float64) float64 {
	env, done := m.Fn("IsoTrans::Map1D")
	defer done()
	return env.MulAdd(t, env.Sub(mesh.X[e+1], mesh.X[e]), mesh.X[e])
}

// IsoWeight1D returns the 1-D Jacobian (element width).
func IsoWeight1D(m *link.Machine, mesh *Mesh1D, e int) float64 {
	env, done := m.Fn("IsoTrans::Weight1D")
	defer done()
	return env.Sub(mesh.X[e+1], mesh.X[e])
}

// IsoMap2D maps a reference point in element (ex,ey) to physical space
// using the bilinear shape functions.
func IsoMap2D(m *link.Machine, mesh *Mesh2D, ex, ey int, x, y float64) (px, py float64) {
	env, done := m.Fn("IsoTrans::Map2D")
	defer done()
	sh := Shape2D(m, x, y)
	nodes := mesh.ElemNodes(ex, ey)
	xs := make([]float64, 4)
	ys := make([]float64, 4)
	for k, n := range nodes {
		xs[k] = mesh.X[n]
		ys[k] = mesh.Y[n]
	}
	return env.Dot(sh[:], xs), env.Dot(sh[:], ys)
}

// IsoWeight2D returns the Jacobian determinant of the bilinear map for a
// structured element (constant per element on a Cartesian mesh).
func IsoWeight2D(m *link.Machine, mesh *Mesh2D, ex, ey int) float64 {
	env, done := m.Fn("IsoTrans::Weight2D")
	defer done()
	nodes := mesh.ElemNodes(ex, ey)
	dx := env.Sub(mesh.X[nodes[1]], mesh.X[nodes[0]])
	dy := env.Sub(mesh.Y[nodes[3]], mesh.Y[nodes[0]])
	return env.Mul(dx, dy)
}

// CoeffPoly evaluates the polynomial coefficient 1 + x(2 + 3x) used by the
// projection examples (Horner form: mul-add chain).
func CoeffPoly(m *link.Machine, x float64) float64 {
	env, done := m.Fn("Coefficient::Poly")
	defer done()
	return env.MulAdd(x, env.MulAdd(x, 3, 2), 1)
}

// CoeffRunge evaluates 1/(1+25x²).
func CoeffRunge(m *link.Machine, x float64) float64 {
	env, done := m.Fn("Coefficient::Runge")
	defer done()
	return env.Div(1, env.MulAdd(env.Mul(25, x), x, 1))
}

// CoeffSqrtRadius evaluates sqrt(x²+y²+0.25): a libm-bearing coefficient,
// so examples using it pick up Intel link-step variability.
func CoeffSqrtRadius(m *link.Machine, x, y float64) float64 {
	env, done := m.Fn("Coefficient::SqrtRadius")
	defer done()
	return env.Sqrt(env.MulAdd(x, x, env.MulAdd(y, y, 0.25)))
}

// CoeffExpDecay evaluates exp(-2x): the second libm-bearing coefficient.
func CoeffExpDecay(m *link.Machine, x float64) float64 {
	env, done := m.Fn("Coefficient::ExpDecay")
	defer done()
	return env.Exp(env.Mul(-2, x))
}
