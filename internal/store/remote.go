package store

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// Wire protocol of the remote store (served by Handler, spoken by Remote):
//
//	GET  /v1/objects/<base64url(key)>   → 200 + JSON envelope, 404 miss,
//	                                      412 engine fence
//	PUT  /v1/objects/<base64url(key)>   → 201 stored, 204 already present,
//	                                      412 engine fence, 400 damaged
//
// Keys are the engine's injective plan keys and contain NUL separators, so
// they travel base64url-encoded in the path. Every request carries the
// client's engine version in the X-Flit-Engine header and every response
// echoes the server's — the same fence the Disk manifest enforces, applied
// per request because the two processes share no filesystem. A GET body is
// the same JSON envelope the Disk backend stores (engine + key + payload
// SHA-256 + payload), and the client re-validates all three fields against
// what it asked for: a lying, truncating, or bit-flipping server reads as
// a miss, never as a result.
const (
	remotePathPrefix = "/v1/objects/"
	engineHeader     = "X-Flit-Engine"
	sumHeader        = "X-Flit-Sum"
)

// StatusEngineMismatch is the distinct status the serving side answers
// when the client's engine version does not match the store's — the
// remote form of the Disk manifest rejection at Open, surfaced per
// request so a mixed fleet fails loudly instead of trading results.
const StatusEngineMismatch = http.StatusPreconditionFailed

// DefaultMaxBody bounds how many payload bytes one remote envelope may
// carry in either direction. Run records are small; a response this large
// is a misbehaving server and reads as a miss.
const DefaultMaxBody = 64 << 20

// remoteKeyPath maps a store key to its URL path.
func remoteKeyPath(key string) string {
	return remotePathPrefix + base64.RawURLEncoding.EncodeToString([]byte(key))
}

// remoteKeyFromPath inverts remoteKeyPath; ok is false for anything that
// is not one well-formed object path.
func remoteKeyFromPath(path string) (string, bool) {
	enc, found := strings.CutPrefix(path, remotePathPrefix)
	if !found || enc == "" || strings.Contains(enc, "/") {
		return "", false
	}
	raw, err := base64.RawURLEncoding.DecodeString(enc)
	if err != nil {
		return "", false
	}
	return string(raw), true
}

// decodeEnvelope validates raw as exactly one complete JSON envelope for
// (engine, key) and returns its payload. Every failure mode — truncation,
// trailing garbage, an engine or key that is not the one requested, a
// payload whose SHA-256 disagrees with the declared sum — is an error the
// caller turns into a miss; this is the trust boundary FuzzRemoteDecode
// hammers.
func decodeEnvelope(raw []byte, engine, key string) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	var e entry
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("store: remote envelope: %w", err)
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		return nil, errors.New("store: remote envelope: trailing data after envelope")
	}
	if e.Engine != engine {
		return nil, fmt.Errorf("store: remote envelope from engine %q, want %q", e.Engine, engine)
	}
	if e.Key != key {
		return nil, errors.New("store: remote envelope answers a different key")
	}
	if e.Sum != sumHex(e.Data) {
		return nil, errors.New("store: remote envelope payload checksum mismatch")
	}
	return e.Data, nil
}

// RemoteOptions tunes a Remote's transport behavior. The zero value of
// every field selects a production-shaped default; tests shrink the
// delays and deadlines to milliseconds.
type RemoteOptions struct {
	// Client issues the requests (nil uses a plain http.Client; per-attempt
	// timeouts come from AttemptTimeout, not Client.Timeout).
	Client *http.Client
	// Attempts is the total tries per operation, first try included
	// (1 = no retries; 0 = the default 4). Only 5xx responses, connection
	// errors, and timeouts are retried — a 404 is an honest miss and an
	// engine fence will not heal by asking again.
	Attempts int
	// BaseDelay is the first retry backoff (default 50ms); each retry
	// doubles it up to MaxDelay (default 2s), with jitter on the upper
	// half so a fleet of workers does not stampede a recovering server.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// AttemptTimeout bounds each individual request, stalled bodies
	// included (default 5s).
	AttemptTimeout time.Duration
	// Deadline bounds one whole operation across all its retries and
	// backoffs (default 30s). An exhausted deadline degrades to a miss.
	Deadline time.Duration
	// MaxBody bounds the accepted response payload (default DefaultMaxBody).
	MaxBody int64
}

// WithDefaults returns a copy with every zero field filled with its
// production default — the effective values a client runs with, for
// -stats reporting and for protocols (the coordinator's) that reuse this
// transport discipline.
func (o RemoteOptions) WithDefaults() RemoteOptions {
	o.withDefaults()
	return o
}

// withDefaults fills zero fields in place.
func (o *RemoteOptions) withDefaults() {
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Attempts <= 0 {
		o.Attempts = 4
	}
	if o.BaseDelay <= 0 {
		o.BaseDelay = 50 * time.Millisecond
	}
	if o.MaxDelay <= 0 {
		o.MaxDelay = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 5 * time.Second
	}
	if o.Deadline <= 0 {
		o.Deadline = 30 * time.Second
	}
	if o.MaxBody <= 0 {
		o.MaxBody = DefaultMaxBody
	}
}

// RemoteMetrics is a Remote's transport-counter snapshot: what the CLI's
// -stats prints as the "remote:" line. Hits and Misses count Gets by
// outcome (every degraded failure is also a Miss — fail-open means the
// campaign saw a miss, Errors records that it was not an honest one);
// Retries counts re-sent requests across both verbs.
type RemoteMetrics struct {
	Hits    int64
	Misses  int64
	Puts    int64
	Retries int64
	Errors  int64
}

// Remote is the HTTP client Store backend: the cross-machine form of the
// Disk store, addressed by URL instead of directory. It upholds the same
// contract one tier further out — engine-version fencing per request,
// client-side re-validation of every envelope, and corruption-as-miss —
// plus the transport discipline networked code needs: bounded retries
// with exponential backoff and jitter on 5xx/timeouts/connection errors,
// a total per-operation deadline, and fail-open semantics. A dead,
// lying, or flailing server costs recomputation time, never a wrong
// result and never a failed campaign.
type Remote struct {
	base   string // URL prefix, no trailing slash
	engine string
	opts   RemoteOptions

	hits    atomic.Int64
	misses  atomic.Int64
	puts    atomic.Int64
	retries atomic.Int64
	errors  atomic.Int64
}

// NewRemote returns a Remote speaking to the store served at baseURL
// (scheme + host[:port], with any path prefix the server mounts the
// protocol under), fenced to the given engine version. opts may be nil.
func NewRemote(baseURL, engine string, opts *RemoteOptions) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote URL %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote URL %q: want http(s)://host[:port]", baseURL)
	}
	r := &Remote{base: strings.TrimRight(u.String(), "/"), engine: engine}
	if opts != nil {
		r.opts = *opts
	}
	r.opts.withDefaults()
	return r, nil
}

// URL returns the remote store's base URL.
func (r *Remote) URL() string { return r.base }

// Engine returns the engine version the client fences every request to.
func (r *Remote) Engine() string { return r.engine }

// Options returns the effective transport options — the defaults-filled
// values the client actually runs with, for -stats reporting.
func (r *Remote) Options() RemoteOptions { return r.opts }

// Metrics snapshots the transport counters.
func (r *Remote) Metrics() RemoteMetrics {
	return RemoteMetrics{
		Hits:    r.hits.Load(),
		Misses:  r.misses.Load(),
		Puts:    r.puts.Load(),
		Retries: r.retries.Load(),
		Errors:  r.errors.Load(),
	}
}

// retryable reports whether one attempt's failure may heal on a re-send:
// transport errors (connection refused/reset, timeouts) and 5xx server
// responses. Everything else — an honest 404, an engine fence, a
// malformed envelope — is a terminal answer for this operation.
func retryable(err error, status int) bool {
	if err != nil {
		return true
	}
	return status >= 500
}

// backoff computes the sleep before retry attempt (0-based): exponential
// from BaseDelay capped at MaxDelay, with jitter over the upper half.
func (o *RemoteOptions) backoff(attempt int) time.Duration {
	d := o.BaseDelay
	for i := 0; i < attempt && d < o.MaxDelay; i++ {
		d *= 2
	}
	if d > o.MaxDelay {
		d = o.MaxDelay
	}
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// sleep waits for d or the context, whichever ends first.
func sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// Attempt is one HTTP request's outcome, normalized for the Retry loop.
type Attempt struct {
	Status int
	Body   []byte
	Err    error
}

// Retry runs one operation under o's transport discipline — the same
// bounded-retry/backoff/deadline loop the Remote store speaks, exported
// so the campaign coordinator's client upholds it too. issue builds and
// sends one attempt under its own per-attempt timeout; terminal answers
// return immediately, retryable failures (transport errors and 5xx) back
// off and re-send while attempts and the operation deadline last. onRetry
// (may be nil) is called before each re-send — the metrics hook. The
// final attempt's result is returned with exhausted=true when it was
// still retryable: the caller's cue to degrade (miss for a Get, error for
// a Put) rather than report an answer. Zero option fields take their
// production defaults.
//
// ctx bounds the whole operation alongside the Deadline option: a caller
// that is draining (a SIGTERM'd worker mid-poll) cancels ctx and the loop
// stops at once — mid-backoff, mid-attempt — instead of riding out up to
// the full 30s deadline against a service nobody is waiting on.
func (o RemoteOptions) Retry(ctx context.Context, issue func(ctx context.Context) Attempt, onRetry func()) (res Attempt, exhausted bool) {
	o.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, o.Deadline)
	defer cancel()
	for attempt := 0; ; attempt++ {
		actx, acancel := context.WithTimeout(ctx, o.AttemptTimeout)
		res = issue(actx)
		acancel()
		if !retryable(res.Err, res.Status) {
			return res, false
		}
		if attempt+1 >= o.Attempts || ctx.Err() != nil {
			return res, true
		}
		if onRetry != nil {
			onRetry()
		}
		sleep(ctx, o.backoff(attempt))
		if ctx.Err() != nil {
			return res, true
		}
	}
}

// do runs the retry loop for one operation, counting re-sends in the
// Remote's metrics.
func (r *Remote) do(ctx context.Context, issue func(ctx context.Context) Attempt) (res Attempt, exhausted bool) {
	return r.opts.Retry(ctx, issue, func() { r.retries.Add(1) })
}

// send issues one HTTP request and reads a size-capped body.
func (r *Remote) send(ctx context.Context, method, key string, body []byte) Attempt {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.base+remoteKeyPath(key), reader)
	if err != nil {
		return Attempt{Err: err}
	}
	req.Header.Set(engineHeader, r.engine)
	if body != nil {
		req.Header.Set(sumHeader, sumHex(body))
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return Attempt{Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, r.opts.MaxBody+1))
	if err != nil {
		// A stalled or reset body after good headers is still a transport
		// failure of this attempt.
		return Attempt{Err: err}
	}
	if int64(len(data)) > r.opts.MaxBody {
		// An oversized envelope is a misbehaving server: keep the status so
		// the verb logic runs, but drop the body so it can never decode
		// into a hit.
		return Attempt{Status: resp.StatusCode}
	}
	return Attempt{Status: resp.StatusCode, Body: data}
}

// Get fetches and re-validates the envelope stored under key. Fail-open:
// every failure mode — absent, fenced, corrupt, oversized, server down,
// retries exhausted — is reported as a miss, so the caller recomputes and
// a write-through self-heals the entry; Errors distinguishes honest
// misses from degraded ones in the metrics. Get satisfies the Store
// interface and so carries no context; callers that need cancellation
// (a draining worker) use GetCtx.
func (r *Remote) Get(key string) ([]byte, bool) {
	return r.GetCtx(context.Background(), key)
}

// GetCtx is Get under a caller context: cancelling ctx aborts the retry
// loop immediately (degrading to a miss) instead of riding out the
// operation deadline.
func (r *Remote) GetCtx(ctx context.Context, key string) ([]byte, bool) {
	res, exhausted := r.do(ctx, func(ctx context.Context) Attempt {
		return r.send(ctx, http.MethodGet, key, nil)
	})
	switch {
	case exhausted:
		r.misses.Add(1)
		r.errors.Add(1)
		return nil, false
	case res.Status == http.StatusNotFound:
		r.misses.Add(1)
		return nil, false
	case res.Status != http.StatusOK:
		// Engine fence (412) and any other surprise: degraded miss.
		r.misses.Add(1)
		r.errors.Add(1)
		return nil, false
	}
	data, err := decodeEnvelope(res.Body, r.engine, key)
	if err != nil {
		r.misses.Add(1)
		r.errors.Add(1)
		return nil, false
	}
	r.hits.Add(1)
	return data, true
}

// Put uploads the payload under key. The server stores it only when the
// declared SHA-256 matches what arrived, and no-ops when it already holds
// a valid entry for the key. A failed Put returns an error but must not
// fail the caller's run — the computed value is already correct in
// memory; the cache layer counts the error and moves on. Put satisfies
// the Store interface; PutCtx is the cancellable form.
func (r *Remote) Put(key string, data []byte) error {
	return r.PutCtx(context.Background(), key, data)
}

// PutCtx is Put under a caller context: cancelling ctx aborts the retry
// loop immediately (the upload is abandoned, counted as an error).
func (r *Remote) PutCtx(ctx context.Context, key string, data []byte) error {
	res, exhausted := r.do(ctx, func(ctx context.Context) Attempt {
		return r.send(ctx, http.MethodPut, key, data)
	})
	switch {
	case exhausted:
		r.errors.Add(1)
		if res.Err != nil {
			return fmt.Errorf("store: remote put: retries exhausted: %w", res.Err)
		}
		return fmt.Errorf("store: remote put: retries exhausted (last status %d)", res.Status)
	case res.Status == http.StatusCreated, res.Status == http.StatusNoContent, res.Status == http.StatusOK:
		r.puts.Add(1)
		return nil
	case res.Status == StatusEngineMismatch:
		r.errors.Add(1)
		return fmt.Errorf("store: remote store is fenced to a different engine (engine %q rejected)", r.engine)
	default:
		r.errors.Add(1)
		return fmt.Errorf("store: remote put: unexpected status %d", res.Status)
	}
}
