package coord_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/exec"
	"repro/internal/flit"
)

// TestFailBudgetQuarantineAndTerminalFailure drives the containment
// state machine end to end: a deterministically failing shard is
// quarantined after exactly the configured attempt budget, the campaign
// reaches terminal failed once every shard is settled, the Done channel
// fires so fleets drain, and the failure reports carry the worker,
// attempt number, error, and excerpt.
func TestFailBudgetQuarantineAndTerminalFailure(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 2, MaxAttempts: 2})
	id := ids[0]
	// Grants hand out the first available shard, so a failed-but-not-yet-
	// quarantined shard is re-granted immediately: the burn order is
	// shard 0 twice (quarantined on the second), then shard 1 twice.
	wantShard := []int{0, 0, 1, 1}
	for i, want := range wantShard {
		g, state, err := c.Lease(id, "w1")
		if err != nil || state != coord.Granted {
			t.Fatalf("lease %d: state=%v err=%v", i, state, err)
		}
		if g.Shard != want {
			t.Fatalf("lease %d granted shard %d, want %d", i, g.Shard, want)
		}
		quarantined, failed, allTerminal, err := c.Fail(id, "w1", g.LeaseID, g.Shard,
			fmt.Sprintf("boom on shard %d", g.Shard), "stack excerpt\nline two")
		if err != nil {
			t.Fatalf("fail %d: %v", i, err)
		}
		wantQ := i%2 == 1 // budget is exactly 2: the second failure quarantines
		if quarantined != wantQ {
			t.Fatalf("fail %d (shard %d): quarantined=%v, want %v", i, g.Shard, quarantined, wantQ)
		}
		wantFailed := i == 3
		if failed != wantFailed || allTerminal != wantFailed {
			t.Fatalf("fail %d: failed=%v allTerminal=%v, want %v", i, failed, allTerminal, wantFailed)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done() did not fire on a terminally failed tenancy — -exit-when-done would hang")
	}
	if _, state, err := c.Lease(id, "w2"); err != nil || state != coord.Failed {
		t.Fatalf("lease on failed campaign: state=%v err=%v, want Failed", state, err)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || !st.Failed || st.Complete || st.Validated {
		t.Fatalf("status = %+v, want state=failed", st)
	}
	if len(st.Quarantined) != 2 || st.Quarantined[0] != 0 || st.Quarantined[1] != 1 {
		t.Fatalf("quarantined = %v, want [0 1]", st.Quarantined)
	}
	for i, n := range st.Attempts {
		if n != 2 {
			t.Fatalf("shard %d attempts = %d, want 2", i, n)
		}
	}
	if !strings.Contains(st.Problem, "shard 0") || !strings.Contains(st.Problem, "shard 1") ||
		!strings.Contains(st.Problem, "boom on shard 1") {
		t.Fatalf("problem %q does not name the quarantined shards and last errors", st.Problem)
	}
	if len(st.Failures) != 4 {
		t.Fatalf("failures = %d, want 4 (2 shards x 2 attempts)", len(st.Failures))
	}
	for _, f := range st.Failures {
		if f.Worker != "w1" || f.Attempt < 1 || f.Attempt > 2 ||
			!strings.Contains(f.Error, fmt.Sprintf("boom on shard %d", f.Shard)) ||
			!strings.Contains(f.Excerpt, "stack excerpt") {
			t.Fatalf("failure report %+v is missing worker/attempt/error/excerpt", f)
		}
	}
	infos := c.Campaigns()
	if !infos[0].Failed || infos[0].Quarantined != 2 || infos[0].FailReports != 4 {
		t.Fatalf("campaign info = %+v, want failed with 2 quarantined and 4 reports", infos[0])
	}
	if c.FailReports() != 4 || c.QuarantinedShards() != 2 {
		t.Fatalf("fleet counters = %d reports / %d quarantined, want 4/2",
			c.FailReports(), c.QuarantinedShards())
	}
}

// TestFailPartialCampaignStaysDiagnosable: one shard quarantines, the
// other completes — the campaign is terminally failed (not complete),
// its problem names exactly the poisoned shard, and the healthy shard's
// artifact is on disk for forensics.
func TestFailPartialCampaignStaysDiagnosable(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 2, MaxAttempts: 1})
	id := ids[0]
	srv, _ := serveCampaign(t, c)
	run := runner(t, srv.URL, 2)
	g0, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	quarantined, failed, _, err := c.Fail(id, "w1", g0.LeaseID, g0.Shard, "poisoned", "")
	if err != nil || !quarantined {
		t.Fatalf("fail under budget 1: quarantined=%v err=%v, want immediate quarantine", quarantined, err)
	}
	if failed {
		t.Fatal("campaign failed while a schedulable shard remains")
	}
	g1, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease after quarantine: state=%v err=%v (quarantined shard re-leased?)", state, err)
	}
	if g1.Shard == g0.Shard {
		t.Fatalf("quarantined shard %d was re-leased", g0.Shard)
	}
	art, err := run(campaignCommand, exec.Shard{Index: g1.Shard, Count: g1.Count})
	if err != nil {
		t.Fatal(err)
	}
	campaignDone, _, allTerminal, err := c.Complete(id, "w1", g1.LeaseID, g1.Shard, art)
	if err != nil {
		t.Fatal(err)
	}
	if campaignDone {
		t.Fatal("campaign reported complete with a quarantined shard")
	}
	if !allTerminal {
		t.Fatal("completion settling the last schedulable shard did not report allTerminal")
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || st.Done != 1 {
		t.Fatalf("status = state %q done %d, want failed with 1 done", st.State, st.Done)
	}
	if !strings.Contains(st.Problem, fmt.Sprintf("shard %d", g0.Shard)) ||
		!strings.Contains(st.Problem, "poisoned") {
		t.Fatalf("problem %q does not name shard %d and its last error", st.Problem, g0.Shard)
	}
}

// TestReleaseRefundsAttempt pins the drain semantics: a voluntary
// release hands the shard back untouched, so it must not burn budget —
// otherwise a fleet draining repeatedly would quarantine healthy shards.
func TestReleaseRefundsAttempt(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 1, MaxAttempts: 1})
	id := ids[0]
	for i := 0; i < 5; i++ {
		g, state, err := c.Lease(id, "w1")
		if err != nil || state != coord.Granted {
			t.Fatalf("lease %d: state=%v err=%v (release burned the budget?)", i, state, err)
		}
		if err := c.Release(id, "w1", g.LeaseID, g.Shard); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts[0] != 0 || len(st.Quarantined) != 0 {
		t.Fatalf("after 5 lease/release cycles: attempts=%d quarantined=%v, want 0 and none",
			st.Attempts[0], st.Quarantined)
	}
}

// TestFailRequiresLiveLeaseAndError: a stale lease's failure report is
// refused with ErrLeaseLost (the new owner will file its own), and an
// empty error is a bad request — a report with nothing in it is not a
// report.
func TestFailRequiresLiveLeaseAndError(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 1})
	id := ids[0]
	g, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	if _, _, _, err := c.Fail(id, "w1", g.LeaseID, g.Shard, "  ", ""); err == nil {
		t.Fatal("blank-error failure report accepted")
	}
	if _, _, _, err := c.Fail(id, "w1", "L-stale", g.Shard, "boom", ""); !errors.Is(err, coord.ErrLeaseLost) {
		t.Fatalf("stale-lease fail = %v, want ErrLeaseLost", err)
	}
	st, _ := c.Status(id)
	if len(st.Failures) != 0 {
		t.Fatalf("refused reports were recorded: %+v", st.Failures)
	}
	if _, _, _, err := c.Fail(id, "w1", g.LeaseID, g.Shard, "boom", ""); err != nil {
		t.Fatalf("live-lease fail: %v", err)
	}
}

// TestExpiryConsumesBudget drives the crash path with an injected clock:
// a worker that takes a lease and dies costs the shard an attempt — the
// sweep synthesizes a failure report — and enough crashed attempts
// quarantine the shard exactly like reported failures do.
func TestExpiryConsumesBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second, Now: clock},
		coord.Spec{Command: campaignCommand, Shards: 1, MaxAttempts: 2})
	id := ids[0]
	if _, state, err := c.Lease(id, "w1"); err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	now = now.Add(11 * time.Second)
	// w2's poll sweeps the expiry (attempt 1 consumed, 1 < 2: re-leased).
	if _, state, err := c.Lease(id, "w2"); err != nil || state != coord.Granted {
		t.Fatalf("re-lease after first expiry: state=%v err=%v", state, err)
	}
	now = now.Add(11 * time.Second)
	// Attempt 2 expires too: budget exhausted, shard quarantined, campaign failed.
	if _, state, err := c.Lease(id, "w3"); err != nil || state != coord.Failed {
		t.Fatalf("lease after second expiry: state=%v err=%v, want Failed", state, err)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 1 || st.Attempts[0] != 2 {
		t.Fatalf("status = %+v, want shard 0 quarantined after 2 attempts", st)
	}
	if len(st.Failures) != 2 {
		t.Fatalf("failures = %d, want 2 synthesized expiry reports", len(st.Failures))
	}
	for _, f := range st.Failures {
		if !strings.Contains(f.Error, "lease expired") {
			t.Fatalf("synthesized report %+v does not say the lease expired", f)
		}
	}
	if n := c.Releases(); n != 2 {
		t.Fatalf("releases = %d, want 2 (expiries still count as re-leases)", n)
	}
}

// TestLateCompletionLiftsQuarantine: completion is accepted even for a
// quarantined shard — a real validated artifact trumps failure history,
// so a straggler that finally finishes un-poisons the shard and the
// campaign completes and validates.
func TestLateCompletionLiftsQuarantine(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 1, MaxAttempts: 1})
	id := ids[0]
	srv, _ := serveCampaign(t, c)
	run := runner(t, srv.URL, 2)
	g, state, err := c.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	art, err := run(campaignCommand, exec.Shard{Index: g.Shard, Count: g.Count})
	if err != nil {
		t.Fatal(err)
	}
	if quarantined, failed, _, err := c.Fail(id, "w1", g.LeaseID, g.Shard, "flaky timeout", ""); err != nil || !quarantined || !failed {
		t.Fatalf("fail: quarantined=%v failed=%v err=%v, want terminal failure", quarantined, failed, err)
	}
	// The same worker's upload lands late, under its now-cleared lease.
	campaignDone, _, _, err := c.Complete(id, "w1", g.LeaseID, g.Shard, art)
	if err != nil || !campaignDone {
		t.Fatalf("late completion on quarantined shard: done=%v err=%v", campaignDone, err)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "complete" || st.Failed || !st.Validated || len(st.Quarantined) != 0 {
		t.Fatalf("status after redeeming completion = %+v, want complete+validated, no quarantine", st)
	}
	// The failure history is kept for forensics even though the shard redeemed.
	if len(st.Failures) != 1 {
		t.Fatalf("failure history = %d entries, want 1", len(st.Failures))
	}
}

// TestFailureContainmentSurvivesRestart proves the journal v3
// round-trip: attempts, quarantine flags, failure reports, and the
// terminal failed state all survive reopening the coordinator directory,
// and a quarantined shard is never resurrected as leasable.
func TestFailureContainmentSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := coord.New(dir, coord.Options{LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c1.Submit(coord.Spec{Command: campaignCommand, Shards: 2, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, state, err := c1.Lease(id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	if _, _, _, err := c1.Fail(id, "w1", g.LeaseID, g.Shard, "deterministic crash", "goroutine 1 [running]:\nmain.main()"); err != nil {
		t.Fatal(err)
	}

	c2, err := coord.New(dir, coord.Options{LeaseTTL: 10 * time.Second})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	st, err := c2.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 1 || st.Quarantined[0] != g.Shard || st.Attempts[g.Shard] != 1 {
		t.Fatalf("restarted status = %+v, want shard %d quarantined after 1 attempt", st, g.Shard)
	}
	if len(st.Failures) != 1 || st.Failures[0].Error != "deterministic crash" ||
		!strings.Contains(st.Failures[0].Excerpt, "goroutine 1") || st.Failures[0].Worker != "w1" {
		t.Fatalf("restarted failure report = %+v, want the original", st.Failures)
	}
	if c2.FailReports() != 1 {
		t.Fatalf("restarted fail reports = %d, want 1", c2.FailReports())
	}
	// The quarantined shard must not come back leasable: the only grant
	// left is the healthy shard, then Wait.
	g2, state, err := c2.Lease(id, "w2")
	if err != nil || state != coord.Granted || g2.Shard == g.Shard {
		t.Fatalf("post-restart lease = shard %d state %v err %v, want the healthy shard", g2.Shard, state, err)
	}
	if _, state, _ := c2.Lease(id, "w3"); state != coord.Wait {
		t.Fatalf("post-restart second lease state = %v, want Wait (quarantined shard resurrected?)", state)
	}
}

// TestFailReportsAreBoundedAndTruncated: error text and excerpts are
// clipped and only the newest reports per shard are kept, so a
// crash-looping shard cannot grow the journal without bound.
func TestFailReportsAreBoundedAndTruncated(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 1, MaxAttempts: 1000})
	id := ids[0]
	longErr := strings.Repeat("E", 4096)
	longExcerpt := "HEAD-MARKER\n" + strings.Repeat("x", 8192) + "\nTAIL-MARKER"
	for i := 0; i < 20; i++ {
		g, state, err := c.Lease(id, "w1")
		if err != nil || state != coord.Granted {
			t.Fatalf("lease %d: state=%v err=%v", i, state, err)
		}
		if _, _, _, err := c.Fail(id, "w1", g.LeaseID, g.Shard, fmt.Sprintf("%d-%s", i, longErr), longExcerpt); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failures) != 8 {
		t.Fatalf("kept %d failure reports, want the newest 8", len(st.Failures))
	}
	for _, f := range st.Failures {
		if len(f.Error) > 600 || len(f.Excerpt) > 2200 {
			t.Fatalf("report not truncated: error %d bytes, excerpt %d bytes", len(f.Error), len(f.Excerpt))
		}
		if !strings.Contains(f.Excerpt, "TAIL-MARKER") || strings.Contains(f.Excerpt, "HEAD-MARKER") {
			t.Fatalf("excerpt truncation kept the head, want the tail: %.80q", f.Excerpt)
		}
	}
	// Newest-kept: the last report's error starts with the last index.
	last := st.Failures[len(st.Failures)-1]
	if !strings.HasPrefix(last.Error, "19-") {
		t.Fatalf("newest report = %.20q, want the 19th failure", last.Error)
	}
	if c.FailReports() != 20 {
		t.Fatalf("fail report counter = %d, want all 20 counted even though 8 kept", c.FailReports())
	}
}

// TestWorkContinuesPastRunnerError pins the PR 10 bugfix: before, the
// worker loop returned an error on the first Runner failure, so one
// poisoned shard took down every worker that leased it. Now the worker
// reports the failure and keeps draining — the healthy campaign on the
// same tenancy completes byte-identically, the poisoned one quarantines.
func TestWorkContinuesPastRunnerError(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 2},
		coord.Spec{Command: secondCommand, Shards: 2, MaxAttempts: 2})
	healthyID, poisonedID := ids[0], ids[1]
	srv, _ := serveCampaign(t, c)
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	real := runner(t, srv.URL, 2)
	run := func(command []string, shard exec.Shard) ([]byte, error) {
		if coord.CommandString(command) == coord.CommandString(secondCommand) && shard.Index == 1 {
			return nil, errors.New("injected deterministic failure")
		}
		return real(command, shard)
	}
	stats, err := coord.Work(context.Background(), cl, run,
		coord.WorkerOptions{Name: "w1", PollEvery: 5 * time.Millisecond,
			RunAttempts: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("worker died on a poisoned shard: %v", err)
	}
	if stats.Completed != 3 || stats.Failed != 2 {
		t.Fatalf("stats = %+v, want 3 completed and 2 failed (budget 2)", stats)
	}
	if got, want := mergedOutput(t, c, healthyID, campaignCommand, 2), unshardedOutput(t, campaignCommand, 2); got != want {
		t.Fatal("healthy campaign merge is not byte-identical to the unsharded run")
	}
	st, err := c.Status(poisonedID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || len(st.Quarantined) != 1 || st.Quarantined[0] != 1 {
		t.Fatalf("poisoned campaign status = %+v, want failed with shard 1 quarantined", st)
	}
	for _, f := range st.Failures {
		if !strings.Contains(f.Error, "injected deterministic failure") {
			t.Fatalf("failure report %+v lost the runner's error", f)
		}
	}
}

// TestWorkerPanicContainment: a Runner that panics on exactly one shard
// costs attempts, not workers — the other shards complete, the panic
// message and stack land in the failure report, and no goroutines leak.
func TestWorkerPanicContainment(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 3, MaxAttempts: 1})
	id := ids[0]
	srv, _ := serveCampaign(t, c)
	opts := fastOpts()
	opts.Client = &http.Client{}
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, opts)
	if err != nil {
		t.Fatal(err)
	}
	real := runner(t, srv.URL, 2)
	// Baseline after the server and transports exist: keep-alive and
	// listener goroutines belong to the harness, heartbeat goroutines to
	// the worker — only the latter may not leak.
	before := runtime.NumGoroutine()
	run := func(command []string, shard exec.Shard) ([]byte, error) {
		if shard.Index == 1 {
			panic("poisoned input in shard 1")
		}
		return real(command, shard)
	}
	stats, err := coord.Work(context.Background(), cl, run,
		coord.WorkerOptions{Name: "w1", PollEvery: 5 * time.Millisecond,
			RunAttempts: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("worker died on a panicking shard: %v", err)
	}
	if stats.Completed != 2 || stats.Failed != 1 {
		t.Fatalf("stats = %+v, want 2 completed, 1 failed", stats)
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done != 2 || len(st.Quarantined) != 1 || st.Quarantined[0] != 1 {
		t.Fatalf("status = %+v, want shards 0,2 done and shard 1 quarantined", st)
	}
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %+v, want exactly one", st.Failures)
	}
	f := st.Failures[0]
	if !strings.Contains(f.Error, "runner panicked") || !strings.Contains(f.Error, "poisoned input in shard 1") {
		t.Fatalf("failure error %q does not carry the panic", f.Error)
	}
	if !strings.Contains(f.Excerpt, "goroutine") {
		t.Fatalf("failure excerpt %.120q is not a stack trace", f.Excerpt)
	}
	// Heartbeat goroutines must all have drained. Park the transports'
	// idle keep-alive connections first, then allow the runtime a beat.
	opts.Client.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestWorkerLocalRetryAbsorbsTransientFailure: a shard that fails once
// and then succeeds is retried locally under the same lease and
// completes — no failure report reaches the coordinator, no budget is
// spent beyond the one grant.
func TestWorkerLocalRetryAbsorbsTransientFailure(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 2})
	id := ids[0]
	srv, _ := serveCampaign(t, c)
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	real := runner(t, srv.URL, 2)
	var mu sync.Mutex
	flaked := map[int]bool{}
	run := func(command []string, shard exec.Shard) ([]byte, error) {
		mu.Lock()
		first := !flaked[shard.Index]
		flaked[shard.Index] = true
		mu.Unlock()
		if first {
			return nil, errors.New("transient wobble")
		}
		return real(command, shard)
	}
	stats, err := coord.Work(context.Background(), cl, run,
		coord.WorkerOptions{Name: "w1", PollEvery: 5 * time.Millisecond,
			RunAttempts: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 2 || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want 2 completed, 0 failed", stats)
	}
	if c.FailReports() != 0 {
		t.Fatalf("local retries leaked %d failure reports to the coordinator", c.FailReports())
	}
	st, err := c.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "complete" || !st.Validated {
		t.Fatalf("status = %+v, want complete+validated", st)
	}
}

// TestFailOverHTTP drives the fail path through the wire protocol: the
// client's Fail reaches the coordinator, a stale lease answers 409, and
// the lease response on a failed campaign reads "failed".
func TestFailOverHTTP(t *testing.T) {
	c, ids := newCoord(t, coord.Options{LeaseTTL: 10 * time.Second},
		coord.Spec{Command: campaignCommand, Shards: 1, MaxAttempts: 1})
	id := ids[0]
	srv, _ := serveCampaign(t, c)
	cl, err := coord.NewClient(srv.URL, flit.EngineVersion, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	g, state, err := cl.Lease(ctx, id, "w1")
	if err != nil || state != coord.Granted {
		t.Fatalf("lease: state=%v err=%v", state, err)
	}
	if _, _, _, err := cl.Fail(ctx, id, "w1", "L-stale", g.Shard, "boom", ""); !errors.Is(err, coord.ErrLeaseLost) {
		t.Fatalf("stale fail over HTTP = %v, want ErrLeaseLost", err)
	}
	quarantined, failed, allTerminal, err := cl.Fail(ctx, id, "w1", g.LeaseID, g.Shard,
		"boom", "panic: boom\n\ngoroutine 7 [running]:")
	if err != nil || !quarantined || !failed || !allTerminal {
		t.Fatalf("fail over HTTP = q=%v f=%v t=%v err=%v, want all true", quarantined, failed, allTerminal, err)
	}
	if _, state, err := cl.Lease(ctx, id, "w2"); err != nil || state != coord.Failed {
		t.Fatalf("lease over HTTP on failed campaign: state=%v err=%v, want Failed", state, err)
	}
	st, err := cl.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "failed" || len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Excerpt, "goroutine 7") {
		t.Fatalf("status over HTTP = %+v, want the failure report with its excerpt", st)
	}
}
